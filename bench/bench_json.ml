(* Machine-readable benchmark output.

   The harness prints human-oriented tables; CI wants numbers it can diff
   and archive.  [set_path] arms the emitter (it stays inert otherwise),
   sections push one row per measured configuration, and [write] dumps
   everything as a single JSON document:

     { "rows": [ { "section": "incremental",
                   "config": { "units": "2000", ... },
                   "ticks_per_s": 123.4,
                   "phases": { "decision_s": 0.1, ... } }, ... ] }

   Hand-rolled serialization: the only values are strings and finite
   floats, and the toolchain has no JSON library to lean on. *)

let path : string option ref = ref None
let rows : string list ref = ref [] (* serialized rows, newest first *)

let set_path (p : string) : unit = path := Some p
let enabled () : bool = Option.is_some !path

(* Where the document will land, for sections that archive companion
   files (e.g. the telemetry metrics JSON) next to it. *)
let current_path () : string option = !path

let escape (s : string) : string =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_string (s : string) : string = "\"" ^ escape s ^ "\""

let json_float (f : float) : string =
  (* JSON has no NaN/Infinity; a degenerate measurement becomes null *)
  if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let json_object (fields : (string * string) list) : string =
  "{" ^ String.concat ", " (List.map (fun (k, v) -> json_string k ^ ": " ^ v) fields) ^ "}"

(* One measured configuration: [config] identifies it (evaluator, units,
   churn, ...), [phases] carries the per-phase second splits. *)
let emit ~(section : string) ~(config : (string * string) list) ~(ticks_per_s : float)
    ~(phases : (string * float) list) : unit =
  if enabled () then
    rows :=
      json_object
        [
          ("section", json_string section);
          ("config", json_object (List.map (fun (k, v) -> (k, json_string v)) config));
          ("ticks_per_s", json_float ticks_per_s);
          ("phases", json_object (List.map (fun (k, v) -> (k, json_float v)) phases));
        ]
      :: !rows

let write () : unit =
  match !path with
  | None -> ()
  | Some p ->
    let oc = open_out p in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc "{\n  \"rows\": [\n";
        List.iteri
          (fun i row ->
            output_string oc "    ";
            output_string oc row;
            if i < List.length !rows - 1 then output_string oc ",";
            output_string oc "\n")
          (List.rev !rows);
        output_string oc "  ]\n}\n");
    Fmt.pr "@.json: %d rows written to %s@." (List.length !rows) p
