(* The benchmark harness: regenerates every experiment in the paper's
   evaluation (Section 6) plus the ablations DESIGN.md commits to.

     dune exec bench/main.exe            -- quick pass over everything
     dune exec bench/main.exe -- full    -- the paper-scale sweeps
     dune exec bench/main.exe -- fig10 capacity density \
         ablate-divisible ablate-sweep ablate-nn ablate-combine phases \
         parallel micro

   Absolute numbers differ from the paper's 2 GHz Core Duo C++ engine; the
   *shape* is what reproduces: the naive evaluator is quadratic in the unit
   count, the indexed evaluator is n log n, the crossover sits at tiny army
   sizes, and the gap passes an order of magnitude by several hundred
   units.  EXPERIMENTS.md records paper-vs-measured for each experiment. *)

open Sgl

let pr = Fmt.pr
let line () = pr "%s@." (String.make 78 '-')

let header title =
  pr "@.";
  line ();
  pr "%s@." title;
  line ()

(* ------------------------------------------------------------------ *)
(* Shared battle-driving helpers *)

(* Per-tick decision+action+post+move seconds of a battle simulation. *)
let battle_seconds ~(evaluator : Simulation.evaluator_kind) ~(n : int) ~(density : float)
    ~(ticks : int) : float * Simulation.report =
  let scenario =
    Battle.Scenario.setup ~density ~per_side:(Battle.Scenario.standard_mix (n / 2)) ()
  in
  let sim = Battle.Scenario.simulation ~evaluator scenario in
  (* warm one tick outside the clock so compilation noise stays out *)
  Simulation.step sim;
  let (), seconds = Timer.timed (fun () -> Simulation.run sim ~ticks) in
  (seconds /. float_of_int ticks, Simulation.report sim)

(* How many ticks to average over, given how slow one tick will be. *)
let ticks_for ~evaluator ~n =
  match evaluator with
  | Simulation.Naive -> if n >= 4000 then 2 else if n >= 1000 then 3 else 10
  | Simulation.Indexed | Simulation.Parallel _ | Simulation.Fused ->
    if n >= 8000 then 3 else 10

(* ------------------------------------------------------------------ *)
(* Figure 10: total time versus number of units, naive vs indexed *)

let fig10 ~full () =
  header
    "Figure 10 - total time for 500 clock ticks vs number of units (1% density)";
  pr "(per-tick time measured, scaled to the paper's 500 ticks)@.@.";
  let naive_sizes = if full then [ 250; 500; 1000; 2000; 4000; 8000 ] else [ 250; 500; 1000; 2000 ] in
  let indexed_sizes =
    if full then [ 250; 500; 1000; 2000; 4000; 8000; 12000; 14000 ]
    else [ 250; 500; 1000; 2000; 4000; 8000; 12000 ]
  in
  let measure evaluator n =
    let per_tick, r = battle_seconds ~evaluator ~n ~density:0.01 ~ticks:(ticks_for ~evaluator ~n) in
    Bench_json.emit ~section:"fig10"
      ~config:
        [ ("evaluator", Simulation.evaluator_name evaluator); ("units", string_of_int n) ]
      ~ticks_per_s:(1. /. per_tick)
      ~phases:
        [
          ("decision_s", r.Simulation.decision_s);
          ("build_s", r.Simulation.build_s);
          ("post_s", r.Simulation.post_s);
          ("movement_s", r.Simulation.movement_s);
          ("death_s", r.Simulation.death_s);
        ];
    per_tick *. 500.
  in
  let naive = List.map (fun n -> (n, measure Simulation.Naive n)) naive_sizes in
  let indexed = List.map (fun n -> (n, measure Simulation.Indexed n)) indexed_sizes in
  pr "%8s %18s %18s %10s@." "units" "naive (s/500t)" "indexed (s/500t)" "speedup";
  List.iter
    (fun (n, ti) ->
      match List.assoc_opt n naive with
      | Some tn -> pr "%8d %18.2f %18.2f %9.1fx@." n tn ti (tn /. ti)
      | None -> pr "%8d %18s %18.2f %10s@." n "-" ti "-")
    indexed;
  (* the paper's shape claims, verified numerically *)
  let ratio series a b =
    match (List.assoc_opt a series, List.assoc_opt b series) with
    | Some ta, Some tb -> tb /. ta
    | _ -> nan
  in
  pr "@.growth when units double (1000 -> 2000): naive %.1fx (quadratic ~4x), indexed %.1fx (n log n ~2x)@."
    (ratio naive 1000 2000) (ratio indexed 1000 2000)

(* ------------------------------------------------------------------ *)
(* Section 6.1 capacity: largest army at >= 10 ticks per second *)

let capacity ~full () =
  header "Section 6.1 - capacity at 10 ticks/second (tick budget 100 ms)";
  let budget = 0.1 in
  let max_probe evaluator = match (evaluator, full) with
    | Simulation.Naive, false -> 4_000
    | Simulation.Naive, true -> 16_000
    | (Simulation.Indexed | Simulation.Parallel _ | Simulation.Fused), false -> 32_000
    | (Simulation.Indexed | Simulation.Parallel _ | Simulation.Fused), true -> 64_000
  in
  let tick_time evaluator n =
    let per_tick, _ = battle_seconds ~evaluator ~n ~density:0.01 ~ticks:2 in
    per_tick
  in
  let find evaluator =
    let cap = max_probe evaluator in
    (* double until over budget (or the probe cap), then bisect *)
    let rec grow n = if n >= cap || tick_time evaluator n > budget then n else grow (n * 2) in
    let hi = grow 125 in
    if hi >= cap && tick_time evaluator cap <= budget then (cap, true)
    else begin
      let rec bisect lo hi =
        if hi - lo <= max 8 (lo / 16) then lo
        else begin
          let mid = (lo + hi) / 2 in
          if tick_time evaluator mid <= budget then bisect mid hi else bisect lo mid
        end
      in
      (bisect (hi / 2) hi, false)
    end
  in
  let report name evaluator =
    let n, capped = find evaluator in
    pr "%-8s sustains 10 ticks/s up to ~%d units%s@." name n
      (if capped then " (probe cap reached; the true capacity is higher)" else "")
  in
  report "naive" Simulation.Naive;
  report "indexed" Simulation.Indexed;
  pr "@.(paper, 2 GHz C++: naive < 1100 units, indexed > 12000; the ~10x ratio@.";
  pr " between the two capacities is the reproducible claim)@."

(* ------------------------------------------------------------------ *)
(* Section 6.1 density sweep: 500 units, density 0.5% .. 8% *)

let density_sweep () =
  header "Section 6.1 - unit density sweep (500 units, 5 ticks each)";
  pr "%10s %16s %16s@." "density" "naive (s/tick)" "indexed (s/tick)";
  List.iter
    (fun d ->
      let tn, _ = battle_seconds ~evaluator:Simulation.Naive ~n:500 ~density:d ~ticks:5 in
      let ti, _ = battle_seconds ~evaluator:Simulation.Indexed ~n:500 ~density:d ~ticks:5 in
      pr "%9.1f%% %16.4f %16.4f@." (d *. 100.) tn ti)
    [ 0.005; 0.01; 0.02; 0.04; 0.08 ];
  pr "@.(the paper reports neither algorithm is particularly sensitive to density)@."

(* ------------------------------------------------------------------ *)
(* Ablation machinery: evaluate one aggregate instance over a random
   integer-lattice point set through the real evaluator plumbing. *)

let ablation_schema () =
  Schema.create
    [
      Schema.attr "key" Value.TInt;
      Schema.attr "player" Value.TInt;
      Schema.attr "posx" Value.TFloat;
      Schema.attr "posy" Value.TFloat;
      Schema.attr "health" Value.TFloat;
      Schema.attr "range" Value.TFloat;
      Schema.attr ~tag:Schema.Sum "damage" Value.TFloat;
    ]

let ablation_units ?side schema ~n ~range =
  let prng = Prng.create 99 in
  let side =
    match side with
    | Some s -> s
    | None -> int_of_float (sqrt (float_of_int n /. 0.01))
  in
  Array.init n (fun i ->
      Tuple.of_list schema
        [
          Value.Int i;
          Value.Int (i mod 2);
          Value.Float (float_of_int (Prng.int prng ~bound:side [ i; 1 ]));
          Value.Float (float_of_int (Prng.int prng ~bound:side [ i; 2 ]));
          Value.Float (float_of_int (10 + Prng.int prng ~bound:90 [ i; 3 ]));
          Value.Float range;
          Value.Float 0.;
        ])

(* Time evaluating [agg] once for every unit (all units probe). *)
let time_agg_batch ~schema ~units (agg : Aggregate.t) ~(kind : [ `Naive | `Indexed ]) : float =
  let aggregates = [| agg |] in
  let ev =
    match kind with
    | `Naive -> Eval.naive ~schema ~aggregates
    | `Indexed -> Eval.indexed ~schema ~aggregates ()
  in
  ev.Eval.begin_tick units;
  let rands = Array.map (fun _ -> fun (_ : int) -> 0) units in
  let (), seconds =
    Timer.timed (fun () -> ignore (ev.Eval.eval_agg ~agg_id:0 ~rows:units ~rands))
  in
  seconds

let box_where ~range_expr =
  let open Expr in
  [
    Cmp (Ge, EAttr 2, Binop (Sub, UAttr 2, range_expr));
    Cmp (Le, EAttr 2, Binop (Add, UAttr 2, range_expr));
    Cmp (Ge, EAttr 3, Binop (Sub, UAttr 3, range_expr));
    Cmp (Le, EAttr 3, Binop (Add, UAttr 3, range_expr));
    Cmp (Ne, EAttr 1, UAttr 1);
  ]

(* A1: prefix-aggregate leaves vs enumerate-the-box vs full scan. *)
let ablate_divisible () =
  header "Ablation A1 - divisible aggregate: prefix leaves vs enumeration vs scan";
  pr "(count of enemies in a 240-wide box on a fixed 300x300 battlefield: the@.";
  pr " dense-combat regime where the box holds a constant fraction of the army,@.";
  pr " so the enumeration term k grows linearly with n)@.@.";
  let schema = ablation_schema () in
  let range = 120. in
  let fast =
    Aggregate.make ~name:"count_box" ~kinds:[ Aggregate.Count ]
      ~where_:(box_where ~range_expr:(Expr.Const (Value.Float range))) ()
  in
  (* semantically identical, but the tautological residual mentions both u
     and e, so the planner must take the enumerate-and-filter path *)
  let tautology =
    Expr.Cmp
      ( Expr.Gt,
        Expr.Binop (Expr.Add, Expr.EAttr 4, Expr.Binop (Expr.Mul, Expr.UAttr 2, Expr.Const (Value.Float 0.))),
        Expr.Const (Value.Float 0.) )
  in
  let enum =
    Aggregate.make ~name:"count_box_enum" ~kinds:[ Aggregate.Count ]
      ~where_:(tautology :: box_where ~range_expr:(Expr.Const (Value.Float range)))
      ()
  in
  pr "%8s %14s %14s %14s@." "units" "prefix (s)" "enumerate (s)" "scan (s)";
  List.iter
    (fun n ->
      let units = ablation_units ~side:300 schema ~n ~range in
      let t_fast = time_agg_batch ~schema ~units fast ~kind:`Indexed in
      let t_enum = time_agg_batch ~schema ~units enum ~kind:`Indexed in
      let t_scan = time_agg_batch ~schema ~units fast ~kind:`Naive in
      pr "%8d %14.4f %14.4f %14.4f@." n t_fast t_enum t_scan)
    [ 1000; 2000; 4000; 8000 ];
  pr "@.(enumeration pays O(k) per probe once boxes fill up - the \"k is large\"@.";
  pr " argument of Section 5.3.1; prefix leaves stay polylogarithmic)@."

(* A2: sweep-line min/max vs enumeration vs scan. *)
let ablate_sweep () =
  header "Ablation A2 - constant-range ARGMIN: sweep-line vs enumeration vs scan";
  let schema = ablation_schema () in
  let range = 25. in
  let mk range_expr name =
    Aggregate.make ~name
      ~kinds:[ Aggregate.Arg_min { objective = Expr.EAttr 4; result = Expr.EAttr 0 } ]
      ~where_:(box_where ~range_expr)
      ~default:(Expr.Const (Value.Int (-1)))
      ()
  in
  (* constant range -> sweep; the same range read from an attribute is not
     provably constant, so the planner falls back to enumeration *)
  let sweep = mk (Expr.Const (Value.Float range)) "weakest_const" in
  let enum = mk (Expr.UAttr 5) "weakest_attr" in
  pr "%8s %14s %14s %14s@." "units" "sweep (s)" "enumerate (s)" "scan (s)";
  List.iter
    (fun n ->
      let units = ablation_units schema ~n ~range in
      let t_sweep = time_agg_batch ~schema ~units sweep ~kind:`Indexed in
      let t_enum = time_agg_batch ~schema ~units enum ~kind:`Indexed in
      let t_scan = time_agg_batch ~schema ~units sweep ~kind:`Naive in
      pr "%8d %14.4f %14.4f %14.4f@." n t_sweep t_enum t_scan)
    [ 1000; 2000; 4000; 8000 ]

(* A3: kD-tree nearest neighbour vs scan. *)
let ablate_nn () =
  header "Ablation A3 - nearest enemy: kD-tree vs scan";
  let schema = ablation_schema () in
  let nearest =
    Aggregate.make ~name:"nearest_enemy"
      ~kinds:
        [
          Aggregate.Nearest
            {
              ex = Expr.EAttr 2;
              ey = Expr.EAttr 3;
              ux = Expr.UAttr 2;
              uy = Expr.UAttr 3;
              result = Expr.EAttr 0;
            };
        ]
      ~where_:[ Expr.Cmp (Expr.Ne, Expr.EAttr 1, Expr.UAttr 1) ]
      ~default:(Expr.Const (Value.Int (-1)))
      ()
  in
  pr "%8s %14s %14s %10s@." "units" "kd-tree (s)" "scan (s)" "speedup";
  List.iter
    (fun n ->
      let units = ablation_units schema ~n ~range:25. in
      let t_kd = time_agg_batch ~schema ~units nearest ~kind:`Indexed in
      let t_scan = time_agg_batch ~schema ~units nearest ~kind:`Naive in
      pr "%8d %14.4f %14.4f %9.1fx@." n t_kd t_scan (t_scan /. t_kd))
    [ 1000; 2000; 4000; 8000 ]

(* A5: Section 5.4 - combining area effects via an effect-center index. *)
let ablate_combine () =
  header "Ablation A5 - area-of-effect combination: effect-center index vs pairwise";
  pr "(every unit projects a healing aura every tick: the worst case for (+))@.@.";
  let schema =
    Schema.create
      [
        Schema.attr "key" Value.TInt;
        Schema.attr "player" Value.TInt;
        Schema.attr "posx" Value.TFloat;
        Schema.attr "posy" Value.TFloat;
        Schema.attr ~tag:Schema.Max "inaura" Value.TFloat;
      ]
  in
  let source =
    {|
action Aura(u) {
  on all(u.player = e.player
         and e.posx >= u.posx - 8.0 and e.posx <= u.posx + 8.0
         and e.posy >= u.posy - 8.0 and e.posy <= u.posy + 8.0) {
    inaura <- 5;
  }
}
script healer(u) { perform Aura(u); }
|}
  in
  let prog = compile ~schema source in
  let compiled = Exec.compile prog in
  let run kind n =
    let prng = Prng.create 5 in
    let side = int_of_float (sqrt (float_of_int n /. 0.02)) in
    let units =
      Array.init n (fun i ->
          Tuple.of_list schema
            [
              Value.Int i;
              Value.Int (i mod 2);
              Value.Float (float_of_int (Prng.int prng ~bound:side [ i; 1 ]));
              Value.Float (float_of_int (Prng.int prng ~bound:side [ i; 2 ]));
              Value.Float 0.;
            ])
    in
    let evaluator =
      match kind with
      | `Naive -> Eval.naive ~schema ~aggregates:prog.Core_ir.aggregates
      | `Indexed -> Eval.indexed ~schema ~aggregates:prog.Core_ir.aggregates ()
    in
    let groups = [ { Exec.script = "healer"; members = Array.init n (fun i -> i) } ] in
    let (), seconds =
      Timer.timed (fun () ->
          ignore (Exec.run_tick compiled ~evaluator ~units ~groups ~rand_for:(fun ~key:_ _ -> 0)))
    in
    seconds
  in
  pr "%8s %16s %14s %10s@." "units" "indexed (s)" "pairwise (s)" "speedup";
  List.iter
    (fun n ->
      let ti = run `Indexed n and tn = run `Naive n in
      pr "%8d %16.4f %14.4f %9.1fx@." n ti tn (tn /. ti))
    [ 1000; 2000; 4000; 8000 ]

(* A4: where does the indexed tick go? (Section 6's phase split) *)
let phases () =
  header "Ablation A4 - indexed tick phase split (battle, 2000 units, 10 ticks)";
  let per_tick, r = battle_seconds ~evaluator:Simulation.Indexed ~n:2000 ~density:0.01 ~ticks:10 in
  Bench_json.emit ~section:"phases"
    ~config:[ ("evaluator", "indexed"); ("units", "2000") ]
    ~ticks_per_s:(1. /. per_tick)
    ~phases:
      [
        ("decision_s", r.Simulation.decision_s);
        ("build_s", r.Simulation.build_s);
        ("post_s", r.Simulation.post_s);
        ("movement_s", r.Simulation.movement_s);
        ("death_s", r.Simulation.death_s);
      ];
  let total = r.Simulation.total_s in
  let pct x = 100. *. x /. total in
  pr "decision (probe)   : %7.3fs  (%4.1f%%)@."
    (r.Simulation.decision_s -. r.Simulation.build_s)
    (pct (r.Simulation.decision_s -. r.Simulation.build_s));
  pr "index building     : %7.3fs  (%4.1f%%)  [%d structures built]@." r.Simulation.build_s
    (pct r.Simulation.build_s) r.Simulation.index_builds;
  pr "post-processing    : %7.3fs  (%4.1f%%)@." r.Simulation.post_s (pct r.Simulation.post_s);
  pr "movement           : %7.3fs  (%4.1f%%)@." r.Simulation.movement_s
    (pct r.Simulation.movement_s);
  pr "death/resurrection : %7.3fs  (%4.1f%%)@." r.Simulation.death_s (pct r.Simulation.death_s);
  pr "index probes       : %d@." r.Simulation.index_probes;
  pr "@.(the paper: \"the overhead of index construction is quite low\" - with@.";
  pr " access-path sharing enabled, probes dominate and full per-tick rebuilds@.";
  pr " keep the whole tick at n log n)@."

(* A6: sharing one tree across divisible queries (Section 6's engine
   design) vs a private tree per aggregate instance. *)
let ablate_share () =
  header "Ablation A6 - shared index groups vs per-instance trees (battle sim)";
  pr "(Section 6: \"all divisible queries share the same range tree\")@.@.";
  let run ~share n =
    let scenario =
      Battle.Scenario.setup ~density:0.01 ~per_side:(Battle.Scenario.standard_mix (n / 2)) ()
    in
    let prog = Battle.Scripts.compile () in
    let schema = prog.Core_ir.schema in
    let evaluator = Eval.indexed ~share ~schema ~aggregates:prog.Core_ir.aggregates () in
    let compiled = Exec.compile prog in
    let units = scenario.Battle.Scenario.units in
    let kind_ix = Schema.find schema "kind" in
    let groups =
      let buckets = Hashtbl.create 4 in
      Array.iteri
        (fun i u ->
          let name =
            Battle.Scripts.script_for
              (Battle.D20.class_of_id (Value.to_int (Tuple.get u kind_ix)))
          in
          Hashtbl.replace buckets name (i :: (try Hashtbl.find buckets name with Not_found -> [])))
        units;
      Hashtbl.fold
        (fun script members acc ->
          { Exec.script; members = Array.of_list (List.rev members) } :: acc)
        buckets []
    in
    let ticks = 5 in
    let (), seconds =
      Timer.timed (fun () ->
          for tick = 0 to ticks - 1 do
            ignore
              (Exec.run_tick compiled ~evaluator ~units ~groups
                 ~rand_for:(fun ~key i -> (key * 31) + i + tick))
          done)
    in
    (seconds /. float_of_int ticks, evaluator.Eval.stats)
  in
  pr "%8s %14s %12s %14s %12s@." "units" "shared (s/t)" "builds" "private (s/t)" "builds";
  List.iter
    (fun n ->
      let ts, ss = run ~share:true n in
      let tp, sp = run ~share:false n in
      pr "%8d %14.4f %12d %14.4f %12d@." n ts ss.Eval.index_builds tp sp.Eval.index_builds)
    [ 1000; 2000; 4000 ]

(* ------------------------------------------------------------------ *)
(* Parallel decision phase: sequential indexed vs domain-pool fan-out *)

(* Decision-phase seconds per tick, measured from the engine's own phase
   timer so movement/post noise stays out of the scaling curve. *)
let decision_per_tick ~(evaluator : Simulation.evaluator_kind) ~(n : int) ~(ticks : int) : float =
  let scenario =
    Battle.Scenario.setup ~density:0.01 ~per_side:(Battle.Scenario.standard_mix (n / 2)) ()
  in
  let sim = Battle.Scenario.simulation ~evaluator scenario in
  (* warm one tick outside the measurement: compilation, pool spin-up *)
  Simulation.step sim;
  let before = (Simulation.report sim).Simulation.decision_s in
  Simulation.run sim ~ticks;
  let after = (Simulation.report sim).Simulation.decision_s in
  (after -. before) /. float_of_int ticks

let parallel_scaling ~full () =
  header "Parallel decision phase - domain-pool fan-out vs sequential indexed";
  pr "(decision-phase wall time per tick; results are bit-identical across@.";
  pr " domain counts by construction - the differential suite pins that)@.@.";
  let sizes = if full then [ 2_000; 10_000; 20_000 ] else [ 1_000; 4_000; 10_000 ] in
  let domain_counts = [ 1; 2; 4; 8 ] in
  pr "%8s %14s" "units" "seq (s/t)";
  List.iter (fun d -> pr " %13s" (Printf.sprintf "%dd (s/t)" d)) domain_counts;
  pr " %10s@." "4d speedup";
  List.iter
    (fun n ->
      let ticks = ticks_for ~evaluator:Simulation.Indexed ~n in
      let emit label t =
        Bench_json.emit ~section:"parallel"
          ~config:[ ("evaluator", label); ("units", string_of_int n) ]
          ~ticks_per_s:(1. /. t)
          ~phases:[ ("decision_s", t) ]
      in
      let seq = decision_per_tick ~evaluator:Simulation.Indexed ~n ~ticks in
      emit "indexed" seq;
      let par =
        List.map
          (fun domains ->
            let t = decision_per_tick ~evaluator:(Simulation.Parallel { domains }) ~n ~ticks in
            emit (Printf.sprintf "parallel:%d" domains) t;
            (domains, t))
          domain_counts
      in
      pr "%8d %14.4f" n seq;
      List.iter (fun (_, t) -> pr " %13.4f" t) par;
      let four = List.assoc 4 par in
      pr " %9.2fx@." (seq /. four))
    sizes;
  pr "@.(on a single-core host the fan-out can only add overhead; the curve@.";
  pr " is still useful as a regression bound on that overhead)@."

(* ------------------------------------------------------------------ *)
(* Fault tolerance: guard overhead and degradation recovery latency *)

let faults_bench () =
  header "Fault tolerance - guard overhead and recovery latency (battle sim)";
  pr "(per-tick time under each fault policy with no faults firing: the@.";
  pr " quarantine guards add a per-group accumulator merge, degrade adds a@.";
  pr " snapshot of three references - both should sit within run noise)@.@.";
  let n = 2_000 and ticks = 10 in
  let per_tick ?fault_policy () =
    let scenario =
      Battle.Scenario.setup ~density:0.01 ~per_side:(Battle.Scenario.standard_mix (n / 2)) ()
    in
    let sim =
      Battle.Scenario.simulation ?fault_policy ~evaluator:Simulation.Indexed scenario
    in
    Simulation.step sim;
    let (), seconds = Timer.timed (fun () -> Simulation.run sim ~ticks) in
    seconds /. float_of_int ticks
  in
  let base = per_tick () in
  pr "%-28s %12s %10s@." "policy (no faults)" "s/tick" "vs fail";
  List.iter
    (fun (name, policy) ->
      let t = per_tick ~fault_policy:policy () in
      pr "%-28s %12.4f %9.2fx@." name t (t /. base))
    [
      ("fail (baseline)", Simulation.Fail);
      ("quarantine", Simulation.Quarantine_script);
      ("degrade", Simulation.Degrade);
    ];
  (* Recovery latency: arm an injection that fires mid-run and measure the
     tick that absorbs the rollback + demotion + retry. *)
  pr "@.recovery latency (degrade, %d units, fault on tick 6 of %d):@." n ticks;
  List.iter
    (fun (label, evaluator, point) ->
      Fun.protect ~finally:Fault_inject.reset (fun () ->
          Fault_inject.reset ();
          let scenario =
            Battle.Scenario.setup ~density:0.01
              ~per_side:(Battle.Scenario.standard_mix (n / 2))
              ()
          in
          let sim =
            Battle.Scenario.simulation ~fault_policy:Simulation.Degrade ~evaluator scenario
          in
          Simulation.step sim;
          let healthy = ref 0. and faulty = ref 0. and after = ref 0. in
          for t = 2 to ticks + 1 do
            Fault_inject.reset ();
            if t = 6 then Fault_inject.arm ~point Fault_inject.Always;
            let (), seconds = Timer.timed (fun () -> Simulation.step sim) in
            if t < 6 then healthy := !healthy +. seconds
            else if t = 6 then faulty := seconds
            else after := !after +. seconds
          done;
          pr "  %-26s healthy %.4fs/t, faulty tick %.4fs, after %.4fs/t (%d retries)@."
            (label ^ " @ " ^ point)
            (!healthy /. 4.) !faulty
            (!after /. float_of_int (ticks - 5))
            (Simulation.retries sim)))
    [
      ("indexed->naive", Simulation.Indexed, "eval.member");
      ("parallel->indexed", Simulation.Parallel { domains = 2 }, "pool.lane");
    ];
  pr "@.(the faulty tick pays the failed partial tick plus a full retry on the@.";
  pr " weaker evaluator; every later tick runs at the weaker evaluator's pace)@."

(* ------------------------------------------------------------------ *)
(* Incremental index maintenance: the cross-tick structure cache *)

(* A low-churn sentry scenario, built to separate the cache's two rebuild
   regimes.  A handful of scouts (player 0) probe a box-count aggregate
   partitioned by player; a churn-sized band of wanderers (player 1)
   marches one cell per tick; the bulk of the army (player 2) never moves
   and never acts.  Warm ticks rebuild only the wanderers' partition —
   the statics' structures revalidate through the delta summary — while
   cold ticks rebuild everything.  Every unit owns its own grid row, so
   movement never collides and ticks stay non-structural. *)
let incremental_schema () =
  Schema.create
    [
      Schema.attr "key" Value.TInt;
      Schema.attr "player" Value.TInt;
      Schema.attr "posx" Value.TFloat;
      Schema.attr "posy" Value.TFloat;
      Schema.attr ~tag:Schema.Sum "movevect_x" Value.TFloat;
      Schema.attr ~tag:Schema.Sum "movevect_y" Value.TFloat;
      Schema.attr ~tag:Schema.Sum "seen" Value.TFloat;
    ]

let incremental_source =
  {|
aggregate NearOthers(u) {
  count(*)
  where e.player <> u.player
    and e.posx >= u.posx - 40.0 and e.posx <= u.posx + 40.0
    and e.posy >= u.posy - 40.0 and e.posy <= u.posy + 40.0
}

action Mark(u) { on self { seen <- 1; } }
action Drift(u) { on self { movevect_x <- 1; } }

script scout(u) {
  let c = NearOthers(u);
  if c >= 0 then { perform Mark(u); }
}
script wanderer(u) { perform Drift(u); }
|}

let incremental_scouts = 32
let incremental_width = 4096

let incremental_units schema ~(n : int) ~(churn : float) : Sgl.Tuple.t array =
  let wanderers = int_of_float (churn *. float_of_int (n - incremental_scouts)) in
  Array.init n (fun i ->
      let player, x =
        if i < incremental_scouts then (0, 2000)
        else if i < incremental_scouts + wanderers then (1, 100 + (i mod 50))
        else (2, 400 + (i * 7 mod 3200))
      in
      Tuple.of_list schema
        [
          Value.Int i;
          Value.Int player;
          Value.Float (float_of_int x);
          Value.Float (float_of_int i);
          Value.Float 0.;
          Value.Float 0.;
          Value.Float 0.;
        ])

let incremental_sim ~(index_cache : bool) ~(evaluator : Simulation.evaluator_kind) ~(n : int)
    ~(churn : float) : Simulation.t =
  let schema = incremental_schema () in
  let prog = compile ~schema incremental_source in
  let player_ix = Schema.find schema "player" in
  let config =
    {
      Simulation.prog;
      script_of =
        (fun u ->
          match Value.to_int (Tuple.get u player_ix) with
          | 0 -> Some "scout"
          | 1 -> Some "wanderer"
          | _ -> None);
      postprocess =
        Postprocess.make ~schema ~updates:[] ~remove_when:(Expr.Const (Value.Bool false));
      movement =
        Some
          {
            Movement.posx = Schema.find schema "posx";
            posy = Schema.find schema "posy";
            mvx = Schema.find schema "movevect_x";
            mvy = Schema.find schema "movevect_y";
            speed = 1.5;
            speed_attr = None;
            width = incremental_width;
            height = n;
          };
      death = Simulation.Remove;
      seed = 7;
      optimize = true;
    }
  in
  Simulation.create ~index_cache config ~evaluator ~units:(incremental_units schema ~n ~churn)

(* Ticks per second plus the final report; one warm-up tick outside the
   clock (compilation, pool spin-up, the unavoidable first cold build). *)
let incremental_rate ~index_cache ~evaluator ~n ~churn ~ticks : float * Simulation.report =
  let sim = incremental_sim ~index_cache ~evaluator ~n ~churn in
  Simulation.step sim;
  let (), seconds = Timer.timed (fun () -> Simulation.run sim ~ticks) in
  (float_of_int ticks /. seconds, Simulation.report sim)

let incremental ~full () =
  header "Incremental maintenance - warm cross-tick structure cache vs cold rebuild";
  pr "(sentry scenario: %d scouts probe box counts over a mostly static army;@."
    incremental_scouts;
  pr " churn = fraction of units moving per tick.  Warm revalidates cached@.";
  pr " structures against the tick's delta summary, cold rebuilds per tick.@.";
  pr " Unit states are bit-identical either way - the differential suite pins it.)@.@.";
  let sizes = if full then [ 2_000; 8_000; 20_000 ] else [ 2_000; 8_000 ] in
  let churns = [ 0.01; 0.10; 0.50 ] in
  let evaluators =
    [ ("indexed", Simulation.Indexed); ("parallel:2", Simulation.Parallel { domains = 2 }) ]
  in
  pr "%-11s %8s %7s %14s %14s %8s %10s@." "evaluator" "units" "churn" "warm (t/s)"
    "cold (t/s)" "speedup" "reuses";
  List.iter
    (fun (ev_name, evaluator) ->
      List.iter
        (fun n ->
          List.iter
            (fun churn ->
              let ticks = if n >= 20_000 then 5 else 10 in
              let warm, wr = incremental_rate ~index_cache:true ~evaluator ~n ~churn ~ticks in
              let cold, cr = incremental_rate ~index_cache:false ~evaluator ~n ~churn ~ticks in
              pr "%-11s %8d %6.0f%% %14.1f %14.1f %7.2fx %10d@." ev_name n (churn *. 100.)
                warm cold (warm /. cold) wr.Simulation.index_reuses;
              let emit label rate (r : Simulation.report) =
                Bench_json.emit ~section:"incremental"
                  ~config:
                    [
                      ("evaluator", ev_name);
                      ("units", string_of_int n);
                      ("churn", Printf.sprintf "%.2f" churn);
                      ("cache", label);
                    ]
                  ~ticks_per_s:rate
                  ~phases:
                    [
                      ("decision_s", r.Simulation.decision_s);
                      ("build_s", r.Simulation.build_s);
                      ("post_s", r.Simulation.post_s);
                      ("movement_s", r.Simulation.movement_s);
                      ("death_s", r.Simulation.death_s);
                      ("index_builds", float_of_int r.Simulation.index_builds);
                      ("index_reuses", float_of_int r.Simulation.index_reuses);
                    ]
              in
              emit "warm" warm wr;
              emit "cold" cold cr)
            churns)
        sizes)
    evaluators;
  pr "@.(warm wins grow with army size and shrink with churn: the statics'@.";
  pr " range trees are the O(n log n) build cost the delta summary avoids)@."

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the index kernels *)

let micro () =
  header "Micro-benchmarks (Bechamel, monotonic clock; ns per run)";
  let open Bechamel in
  let open Toolkit in
  let prng = Prng.create 31 in
  let n = 4096 in
  let xs = Array.init n (fun i -> float_of_int (Prng.int prng ~bound:1000 [ i; 1 ])) in
  let ys = Array.init n (fun i -> float_of_int (Prng.int prng ~bound:1000 [ i; 2 ])) in
  let vals = Array.init n (fun i -> float_of_int (Prng.int prng ~bound:100 [ i; 3 ])) in
  let ids = Array.init n (fun i -> i) in
  let stats id = [| 1.; vals.(id) |] in
  let cascade = Cascade_tree.build ~x:(Array.get xs) ~y:(Array.get ys) ~stats ~m:2 ids in
  let layered =
    Range_tree.build ~dims:[ Array.get xs; Array.get ys ] ~stats:(Some stats) ~m:2 ids
  in
  let kd = Kd_tree.build ~x:(Array.get xs) ~y:(Array.get ys) ids in
  let seg = Segment_tree.build ~neutral:0. ~op:( +. ) vals in
  let box q =
    ( Interval.make ~lo:(xs.(q) -. 50.) ~hi:(xs.(q) +. 50.) (),
      Interval.make ~lo:(ys.(q) -. 50.) ~hi:(ys.(q) +. 50.) () )
  in
  let counter = ref 0 in
  let next () =
    counter := (!counter + 1) land (n - 1);
    !counter
  in
  let tests =
    [
      Test.make ~name:"cascade_build_4096"
        (Staged.stage (fun () ->
             ignore (Cascade_tree.build ~x:(Array.get xs) ~y:(Array.get ys) ~stats ~m:2 ids)));
      Test.make ~name:"cascade_probe"
        (Staged.stage (fun () ->
             let q = next () in
             let ivx, ivy = box q in
             ignore (Cascade_tree.query cascade ~x:ivx ~y:ivy)));
      Test.make ~name:"layered_probe"
        (Staged.stage (fun () ->
             let q = next () in
             let ivx, ivy = box q in
             ignore (Range_tree.query_stats layered [ ivx; ivy ])));
      Test.make ~name:"kd_build_4096"
        (Staged.stage (fun () -> ignore (Kd_tree.build ~x:(Array.get xs) ~y:(Array.get ys) ids)));
      Test.make ~name:"kd_nearest"
        (Staged.stage (fun () ->
             let q = next () in
             ignore (Kd_tree.nearest kd ~qx:xs.(q) ~qy:ys.(q))));
      Test.make ~name:"segment_tree_query"
        (Staged.stage (fun () ->
             let q = next () in
             ignore (Segment_tree.query seg ~lo:(q / 2) ~hi:n)));
      Test.make ~name:"segment_tree_update"
        (Staged.stage (fun () ->
             let q = next () in
             Segment_tree.set seg q vals.(q)));
      Test.make ~name:"prng_script_random"
        (Staged.stage (fun () -> ignore (Prng.script_random prng ~tick:3 ~key:(next ()) 1)));
      Test.make ~name:"naive_scan_4096"
        (Staged.stage (fun () ->
             let q = next () in
             let acc = ref 0 in
             for i = 0 to n - 1 do
               if Float.abs (xs.(i) -. xs.(q)) <= 50. && Float.abs (ys.(i) -. ys.(q)) <= 50. then
                 incr acc
             done;
             ignore !acc));
    ]
  in
  let grouped = Test.make_grouped ~name:"sgl" tests in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  pr "%-30s %14s@." "kernel" "ns/run";
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some (t :: _) -> pr "%-30s %14.1f@." name t
      | Some [] | None -> pr "%-30s %14s@." name "n/a")
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Telemetry: instrumentation overhead on the formation battle.

   Three passes over the same workload: ambient registry disabled (the
   shipped default — every call site pays one atomic load), registry
   enabled (--metrics), and registry + span tracer (--trace-spans).  The
   telemetry-off pass is the one the <2% overhead budget is judged
   against; with --json armed, the metrics document of the instrumented
   pass is archived next to the bench rows. *)

let telemetry_bench () =
  header "Telemetry - instrumentation overhead (indexed evaluator, 2000 units)";
  let n = 2000 and density = 0.01 and ticks = 20 in
  let measure mode ~pre ~post =
    pre ();
    let per_tick, r = battle_seconds ~evaluator:Simulation.Indexed ~n ~density ~ticks in
    post ();
    Bench_json.emit ~section:"telemetry"
      ~config:[ ("mode", mode); ("units", string_of_int n) ]
      ~ticks_per_s:(1. /. per_tick)
      ~phases:
        [
          ("decision_s", r.Simulation.decision_s);
          ("build_s", r.Simulation.build_s);
          ("post_s", r.Simulation.post_s);
          ("movement_s", r.Simulation.movement_s);
          ("death_s", r.Simulation.death_s);
        ];
    (mode, per_tick)
  in
  let nothing () = () in
  let off = measure "off" ~pre:(fun () -> Telemetry.set_enabled false) ~post:nothing in
  let metrics =
    measure "metrics"
      ~pre:(fun () ->
        Telemetry.reset ();
        Telemetry.set_enabled true)
      ~post:(fun () ->
        match Bench_json.current_path () with
        | None -> ()
        | Some p ->
          let mp = p ^ ".metrics.json" in
          Telemetry.Registry.write_json Telemetry.default ~path:mp;
          pr "telemetry: metrics archived to %s@." mp)
  in
  let spans =
    measure "metrics+spans"
      ~pre:(fun () ->
        Telemetry.reset ();
        Telemetry.set_enabled true;
        Telemetry.Span.start ())
      ~post:(fun () ->
        pr "telemetry: %d span events recorded@." (Telemetry.Span.count ());
        Telemetry.Span.stop ())
  in
  Telemetry.set_enabled false;
  let _, t_off = off in
  pr "@.%-16s %12s %10s@." "mode" "ticks/s" "overhead";
  List.iter
    (fun (mode, per_tick) ->
      pr "%-16s %12.1f %9.1f%%@." mode (1. /. per_tick) ((per_tick /. t_off -. 1.) *. 100.))
    [ off; metrics; spans ]

(* ------------------------------------------------------------------ *)
(* Observability: flight recorder + live endpoint overhead.

   Same workload as the telemetry bench, four passes: no observer (the
   shipped default), the flight ring alone, ring + streaming dump sink
   (flushed per tick), and ring + the HTTP server bound with a client
   polling /metrics and /health throughout the run.  The off pass is the
   baseline the obs-on numbers are judged against — it must match the
   no-obs engine exactly (the observer hook is a single option check).
   The obs-on passes pay one O(n) state digest per commit, which is the
   dominant cost; ring append, sink flush and a polling client are noise
   on top of it. *)

let obs_bench () =
  header "Observability - flight recorder and live endpoint overhead (indexed, 2000 units)";
  let n = 2000 and density = 0.01 and ticks = 20 in
  let measure mode ~(attach : Simulation.t -> unit -> unit) =
    let scenario =
      Battle.Scenario.setup ~density ~per_side:(Battle.Scenario.standard_mix (n / 2)) ()
    in
    let sim = Battle.Scenario.simulation ~evaluator:Simulation.Indexed scenario in
    Simulation.step sim;
    let detach = attach sim in
    let (), seconds = Timer.timed (fun () -> Simulation.run sim ~ticks) in
    detach ();
    let r = Simulation.report sim in
    let per_tick = seconds /. float_of_int ticks in
    Bench_json.emit ~section:"obs"
      ~config:[ ("mode", mode); ("units", string_of_int n) ]
      ~ticks_per_s:(1. /. per_tick)
      ~phases:
        [
          ("decision_s", r.Simulation.decision_s);
          ("build_s", r.Simulation.build_s);
          ("post_s", r.Simulation.post_s);
          ("movement_s", r.Simulation.movement_s);
          ("death_s", r.Simulation.death_s);
        ];
    (mode, per_tick)
  in
  let prog = Battle.Scripts.compile () in
  let off = measure "off" ~attach:(fun _ () -> ()) in
  let flight =
    measure "flight" ~attach:(fun sim ->
        let live = Obs.Live.create ~flight_capacity:1024 ~sim ~prog () in
        fun () -> Obs.Live.stop live)
  in
  let sink =
    measure "flight+sink" ~attach:(fun sim ->
        let path = Filename.temp_file "sgl_bench_flight" ".dump" in
        let live = Obs.Live.create ~flight_capacity:1024 ~dump_path:path ~sim ~prog () in
        fun () ->
          Obs.Live.stop live;
          (try Sys.remove path with Sys_error _ -> ()))
  in
  let http =
    measure "flight+http" ~attach:(fun sim ->
        let live = Obs.Live.create ~flight_capacity:1024 ~sim ~prog () in
        let port = Obs.Live.serve live ~port:0 in
        let polling = Atomic.make true in
        let get target =
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
              let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" target in
              ignore (Unix.write_substring fd req 0 (String.length req));
              let chunk = Bytes.create 4096 in
              let rec drain () = if Unix.read fd chunk 0 4096 > 0 then drain () in
              drain ())
        in
        let client =
          Thread.create
            (fun () ->
              while Atomic.get polling do
                (try
                   get "/metrics";
                   get "/health"
                 with Unix.Unix_error _ -> ());
                Thread.delay 0.005
              done)
            ()
        in
        fun () ->
          Atomic.set polling false;
          Thread.join client;
          Obs.Live.stop live)
  in
  let _, t_off = off in
  pr "@.%-16s %12s %10s@." "mode" "ticks/s" "overhead";
  List.iter
    (fun (mode, per_tick) ->
      pr "%-16s %12.1f %9.1f%%@." mode (1. /. per_tick) ((per_tick /. t_off -. 1.) *. 100.))
    [ off; flight; sink; http ]

(* ------------------------------------------------------------------ *)
(* Fused kernels: compiled decision execution vs interpreted plan walking.

   A decision-heavy scenario: every unit runs a scalar steering script —
   long expression chains over tuning constants, one cheap uniform
   aggregate per batch — so the decision phase is dominated by the
   per-row work the fused backend compiles away (plan walking, context
   allocation, re-evaluating constant subtrees) rather than by index
   probes, which cost the same under every backend. *)

let fused_schema () =
  Schema.create
    [
      Schema.attr "key" Value.TInt;
      Schema.attr "player" Value.TInt;
      Schema.attr "posx" Value.TFloat;
      Schema.attr "posy" Value.TFloat;
      Schema.attr "health" Value.TFloat;
      Schema.attr "morale" Value.TFloat;
      Schema.attr ~tag:Schema.Sum "movevect_x" Value.TFloat;
      Schema.attr ~tag:Schema.Sum "movevect_y" Value.TFloat;
    ]

let fused_source =
  (* The tuning formulas k1..k6 are arithmetic over the script constants
     only, and they are spliced INLINE at every use site (a [let] would
     pin them to a register, and constant folding does not cross register
     binds).  Each occurrence is a pure-constant subtree: the fused
     backend folds it to one literal at specialization time, while the
     interpreter re-walks the whole tree for every row on every tick.
     The later formulas textually contain the earlier ones, so the trees
     compound - exactly the "tuning arithmetic around the data" shape
     hand-written steering scripts exhibit. *)
  let k1 = "((WX + WY) * (1.0 - DRIFT) + (WX * 8.0 - WY * (DRIFT + 0.5)) * (WX + DRIFT * WY))" in
  let k2 =
    "((DRIFT * DRIFT - WX * WY) * (1.0 + WX + WY) + max(WX, WY) * abs(DRIFT - WX * 2.0))"
  in
  let k3 =
    Printf.sprintf
      "(max(%s, %s) * (1.0 - WX * DRIFT) + min(%s, %s) * (WY + DRIFT * DRIFT * WX))" k1 k2 k1 k2
  in
  let k4 =
    Printf.sprintf
      "(abs(%s - %s * DRIFT) * (WX * (1.0 + DRIFT) - WY * (1.0 - DRIFT)) + max(%s * WX, %s * WY) \
       * (DRIFT + WX * (1.0 - WY * 2.0)))"
      k1 k2 k3 k1
  in
  let k5 =
    Printf.sprintf
      "((%s + %s * (WX - WY * DRIFT)) * (1.0 + DRIFT * DRIFT) - min(%s * WX, %s * (DRIFT + WY)) \
       * abs(1.0 - %s * DRIFT))"
      k4 k3 k4 k2 k1
  in
  let k6 =
    Printf.sprintf
      "(max(%s, %s * (1.0 - DRIFT)) * (WY + WX * DRIFT * DRIFT) + abs(%s - %s + %s * WX) * \
       (DRIFT * (1.0 - WX) * (1.0 - WY)))"
      k5 k4 k5 k4 k3
  in
  Printf.sprintf
    {|
const WX = 0.046875;
const WY = 0.03125;
const DRIFT = 0.25;

aggregate SpreadX(u) { stddev(e.posx) where e.player = 0 default 0.0 }

action Advance(u, vx, vy) {
  on self { movevect_x <- vx; movevect_y <- vy; }
}
action Hold(u, p) {
  on self { movevect_x <- 0.0 - p; }
}

script main(u) {
  let s = SpreadX(u);
  let px = u.posx * %s - u.posy * %s + (u.posx - u.posy) * (WX * (1.0 - DRIFT) + WY * DRIFT);
  let py = u.posy * %s + u.posx * %s - (u.posy - u.posx) * (WY * (1.0 - DRIFT) + WX * DRIFT);
  let wob = abs(px - py) + max(px, py) * (1.0 - WX * DRIFT) + u.morale * %s;
  let bias = min(px * %s - py * %s, py * %s - px * %s) + abs(wob - %s) * (DRIFT * (1.0 - WY));
  let gain = max(0.0 - wob, wob * (1.0 - WX)) + s * WY + abs(u.health * %s - bias * %s);
  if gain > u.health * %s then {
    if wob > gain * %s then { perform Advance(u, px * DRIFT + bias * %s, py * DRIFT + %s); }
    else { perform Advance(u, py * DRIFT - %s, px * DRIFT - bias * %s); }
  } else {
    perform Hold(u, gain * DRIFT + wob * %s + bias * %s);
  }
}
|}
    k1 k2 k1 k2 k3 k3 k2 k4 k1 k6 k1 k4 k5 k3 k2 k6 k4 k1 k2 k3

let fused_units schema ~n =
  let prng = Prng.create 17 in
  let side = int_of_float (sqrt (float_of_int n /. 0.01)) in
  Array.init n (fun i ->
      Tuple.of_list schema
        [
          Value.Int i;
          Value.Int (i mod 2);
          Value.Float (float_of_int (Prng.int prng ~bound:side [ i; 1 ]));
          Value.Float (float_of_int (Prng.int prng ~bound:side [ i; 2 ]));
          Value.Float (float_of_int (10 + Prng.int prng ~bound:90 [ i; 3 ]));
          Value.Float (float_of_int (Prng.int prng ~bound:4 [ i; 4 ]));
          Value.Float 0.;
          Value.Float 0.;
        ])

let fused_sim ?(columnar = true) ~(index_cache : bool)
    ~(evaluator : Simulation.evaluator_kind) ~(n : int) () : Simulation.t =
  let schema = fused_schema () in
  let prog = compile ~schema fused_source in
  let config =
    {
      Simulation.prog;
      script_of = (fun _ -> Some "main");
      postprocess =
        Postprocess.make ~schema ~updates:[] ~remove_when:(Expr.Const (Value.Bool false));
      movement =
        Some
          {
            Movement.posx = Schema.find schema "posx";
            posy = Schema.find schema "posy";
            mvx = Schema.find schema "movevect_x";
            mvy = Schema.find schema "movevect_y";
            speed = 2.;
            speed_attr = None;
            width = 2048;
            height = 2048;
          };
      death = Simulation.Remove;
      seed = 13;
      optimize = true;
    }
  in
  Simulation.create ~index_cache ~columnar config ~evaluator ~units:(fused_units schema ~n)

(* Decision-phase seconds per tick from the engine's phase timer, one
   warm-up tick outside the clock (compilation, kernel specialization). *)
let fused_decision ~index_cache ~evaluator ~n ~ticks : float * Simulation.report =
  let sim = fused_sim ~index_cache ~evaluator ~n () in
  Simulation.step sim;
  let before = (Simulation.report sim).Simulation.decision_s in
  Simulation.run sim ~ticks;
  let r = Simulation.report sim in
  ((r.Simulation.decision_s -. before) /. float_of_int ticks, r)

let fused_bench ~full () =
  header "Fused kernels - compiled decision execution vs interpreted plan walking";
  pr "(scalar steering scenario: the decision phase is per-row expression@.";
  pr " work plus one uniform aggregate per batch.  The kernels are pinned@.";
  pr " bit-identical to every other evaluator by the conformance suite;@.";
  pr " only the time changes.)@.@.";
  let sizes = if full then [ 2_000; 8_000; 12_000; 20_000 ] else [ 2_000; 8_000; 12_000 ] in
  let evaluators =
    [
      ("indexed", Simulation.Indexed);
      ("parallel:2", Simulation.Parallel { domains = 2 });
      ("fused", Simulation.Fused);
    ]
  in
  pr "%8s %6s" "units" "cache";
  List.iter (fun (name, _) -> pr " %13s" (name ^ " (s/t)")) evaluators;
  pr " %12s@." "fused gain";
  List.iter
    (fun n ->
      let ticks = if n >= 8_000 then 5 else 10 in
      List.iter
        (fun index_cache ->
          let results =
            List.map
              (fun (name, evaluator) ->
                let t, r = fused_decision ~index_cache ~evaluator ~n ~ticks in
                Bench_json.emit ~section:"fused"
                  ~config:
                    [
                      ("evaluator", name);
                      ("units", string_of_int n);
                      ("cache", if index_cache then "warm" else "cold");
                    ]
                  ~ticks_per_s:(1. /. t)
                  ~phases:
                    [
                      ("decision_s", t);
                      ("build_s", r.Simulation.build_s);
                      ("post_s", r.Simulation.post_s);
                      ("movement_s", r.Simulation.movement_s);
                      ("death_s", r.Simulation.death_s);
                    ];
                (name, t))
              evaluators
          in
          pr "%8d %6s" n (if index_cache then "warm" else "cold");
          List.iter (fun (_, t) -> pr " %13.4f" t) results;
          pr " %11.2fx@." (List.assoc "indexed" results /. List.assoc "fused" results))
        [ true; false ])
    sizes;
  pr "@.(the gain is the interpreter constant factor the kernels remove:@.";
  pr " no plan walk, no per-evaluation context, constant subtrees folded@.";
  pr " at specialization time.  Index-probe-bound workloads gain less -@.";
  pr " probes cost the same under every backend.)@."

(* ------------------------------------------------------------------ *)
(* Columnar store: the struct-of-arrays access path vs boxed rows.

   The full battle scenario — real kd/segment/cascade index builds every
   tick — run with the columnar mirror handed to the decision phase
   ("columnar") and withheld ("boxed", [~columnar:false] — the
   pre-columnar access path: every read boxes a [Value.t] out of a
   tuple).  Storage and results are identical either way; only the
   access path changes. *)

let columnar_run ~columnar ~evaluator ~n ~ticks : float * float =
  let scenario =
    Battle.Scenario.setup ~density:0.01 ~per_side:(Battle.Scenario.standard_mix (n / 2)) ()
  in
  let sim = Battle.Scenario.simulation ~columnar ~evaluator scenario in
  Simulation.step sim;
  let r0 = Simulation.report sim in
  Simulation.run sim ~ticks;
  let r = Simulation.report sim in
  ( (r.Simulation.decision_s -. r0.Simulation.decision_s) /. float_of_int ticks,
    (r.Simulation.build_s -. r0.Simulation.build_s) /. float_of_int ticks )

let columnar_bench ~full () =
  header "Columnar store - struct-of-arrays access path vs boxed rows";
  pr "(one warm-up tick outside the clock; decision_s includes build_s.@.";
  pr " The two access paths are pinned bit-identical by the conformance@.";
  pr " and engine suites; only the time changes.)@.@.";
  let sizes = [ 12_000; 100_000 ] in
  let evaluators ~n =
    (* the naive evaluator is O(n^2) per tick on this scenario and ignores
       the mirror anyway; measured at 12k to document the ~1x, skipped at
       100k (it would dominate the wall clock without informing anything) *)
    (if n <= 12_000 then [ ("naive", Simulation.Naive) ] else [])
    @ [
        ("indexed", Simulation.Indexed);
        ("parallel:2", Simulation.Parallel { domains = 2 });
        ("fused", Simulation.Fused);
      ]
  in
  pr "%8s %12s %14s %14s %9s %14s %14s@." "units" "evaluator" "boxed (s/t)" "columnar (s/t)"
    "gain" "boxed bld" "columnar bld";
  List.iter
    (fun n ->
      let evs = evaluators ~n in
      List.iter
        (fun (name, evaluator) ->
          let ticks =
            if name = "naive" then 1 else if n >= 100_000 then (if full then 3 else 2) else 5
          in
          let measure columnar =
            let d, b = columnar_run ~columnar ~evaluator ~n ~ticks in
            Bench_json.emit ~section:"columnar"
              ~config:
                [
                  ("evaluator", name);
                  ("units", string_of_int n);
                  ("access", if columnar then "columnar" else "boxed");
                ]
              ~ticks_per_s:(1. /. d)
              ~phases:[ ("decision_s", d); ("build_s", b) ];
            (d, b)
          in
          let bd, bb = measure false in
          let cd, cb = measure true in
          pr "%8d %12s %14.4f %14.4f %8.2fx %14.4f %14.4f@." n name bd cd (bd /. cd) bb cb)
        evs;
      if n > 12_000 then pr "%8d %12s %s@." n "naive" "(skipped: O(n^2) per tick)")
    sizes;
  pr "@.(the gain is boxing removed from the hot loops: index builds scan@.";
  pr " contiguous float arrays instead of pulling Value.t out of every@.";
  pr " tuple, and fused kernels load bind operands straight from the@.";
  pr " typed columns.  The naive evaluator takes no columnar path, so@.";
  pr " its ratio documents measurement noise.)@."

(* ------------------------------------------------------------------ *)
(* Durable state: checkpoint/journal overhead on the 12k-unit battle.

   Baseline is the shipped default (persistence off).  The durable
   passes pay one CRC-framed journal append (+ fsync unless disarmed)
   per committed tick, plus a full-state snapshot every [every] ticks —
   cadence 10 is checkpoint-heavy, cadence 100 isolates the journal
   cost (only the arming snapshot lands inside the run).  Ambient
   telemetry is enabled for every pass (same tax everywhere) so the
   persist.* metrics carry checkpoint write times and journal volume. *)

let persist_bench () =
  header "Durable state - checkpoint/journal overhead (indexed evaluator, 12000 units)";
  let n = 12_000 and density = 0.01 and ticks = 40 in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  let fresh_dir tag =
    let dir = Filename.concat (Filename.get_temp_dir_name ()) ("sgl-bench-persist-" ^ tag) in
    rm_rf dir;
    Sys.mkdir dir 0o755;
    dir
  in
  let measure ~mode ~every ~fsync () =
    Telemetry.reset ();
    Telemetry.set_enabled true;
    let scenario =
      Battle.Scenario.setup ~density ~per_side:(Battle.Scenario.standard_mix (n / 2)) ()
    in
    let sim = Battle.Scenario.simulation ~evaluator:Simulation.Indexed scenario in
    (* warm one tick outside the clock; the arming snapshot of the
       durable passes stays outside it too *)
    Simulation.step sim;
    let dir = Option.map fresh_dir (if every >= 0 then Some mode else None) in
    Option.iter (fun dir -> Simulation.checkpoint_every ~fsync sim ~dir ~every) dir;
    let (), seconds = Timer.timed (fun () -> Simulation.run sim ~ticks) in
    Simulation.detach_persistence sim;
    let counter name =
      match List.assoc_opt name (Telemetry.Registry.counters Telemetry.default) with
      | Some v -> v
      | None -> 0
    in
    let ckpt =
      match List.assoc_opt "persist.checkpoint_ns" (Telemetry.Registry.histograms Telemetry.default) with
      | Some s -> s
      | None ->
        {
          Telemetry.count = 0;
          mean = 0.;
          stddev = 0.;
          min = 0.;
          max = 0.;
          total = 0.;
          p50 = 0.;
          p90 = 0.;
          p99 = 0.;
        }
    in
    let journal_bytes = counter "persist.journal_bytes" in
    Telemetry.set_enabled false;
    Option.iter rm_rf dir;
    let per_tick = seconds /. float_of_int ticks in
    Bench_json.emit ~section:"persist"
      ~config:
        [
          ("mode", mode);
          ("units", string_of_int n);
          ("every", string_of_int every);
          ("fsync", string_of_bool fsync);
        ]
      ~ticks_per_s:(1. /. per_tick)
      ~phases:
        [
          ("checkpoint_mean_s", ckpt.Telemetry.mean /. 1e9);
          ("checkpoint_max_s", ckpt.Telemetry.max /. 1e9);
          ("checkpoint_total_s", ckpt.Telemetry.total /. 1e9);
          ("checkpoints", float_of_int ckpt.Telemetry.count);
          ("journal_bytes_per_tick", float_of_int journal_bytes /. float_of_int ticks);
        ];
    (mode, per_tick, ckpt, journal_bytes)
  in
  (* every = -1 encodes "persistence off" (the baseline) *)
  let rows =
    [
      measure ~mode:"off" ~every:(-1) ~fsync:false ();
      measure ~mode:"every=10" ~every:10 ~fsync:true ();
      measure ~mode:"every=100" ~every:100 ~fsync:true ();
      measure ~mode:"every=10,nofsync" ~every:10 ~fsync:false ();
    ]
  in
  let _, t_off, _, _ = List.hd rows in
  pr "@.%-18s %10s %9s %7s %12s %12s@." "mode" "ticks/s" "overhead" "ckpts" "ckpt mean ms" "jrnl B/tick";
  List.iter
    (fun (mode, per_tick, ckpt, journal_bytes) ->
      pr "%-18s %10.1f %8.1f%% %7d %12.2f %12.0f@." mode (1. /. per_tick)
        ((per_tick /. t_off -. 1.) *. 100.)
        ckpt.Telemetry.count (ckpt.Telemetry.mean /. 1e6)
        (float_of_int journal_bytes /. float_of_int ticks))
    rows;
  pr "@.(the journal append is tens of bytes per tick; the snapshot is@.";
  pr " tens of milliseconds at this population and amortizes with the@.";
  pr " cadence, so the durability tax stays in the single-digit percent@.";
  pr " range - overhead spreads beyond that are run-to-run noise.)@."

(* ------------------------------------------------------------------ *)
(* Driver *)

let everything ~full () =
  fig10 ~full ();
  capacity ~full ();
  density_sweep ();
  ablate_divisible ();
  ablate_sweep ();
  ablate_nn ();
  ablate_combine ();
  ablate_share ();
  phases ();
  parallel_scaling ~full ();
  incremental ~full ();
  fused_bench ~full ();
  columnar_bench ~full ();
  faults_bench ();
  telemetry_bench ();
  obs_bench ();
  persist_bench ();
  micro ()

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* [--json PATH] arms the machine-readable emitter and is stripped before
     section dispatch, so it composes with any section list. *)
  let rec extract_json acc = function
    | "--json" :: path :: rest ->
      Bench_json.set_path path;
      List.rev_append acc rest
    | [ "--json" ] ->
      Fmt.epr "--json requires an output path@.";
      exit 1
    | x :: rest -> extract_json (x :: acc) rest
    | [] -> List.rev acc
  in
  let args = extract_json [] args in
  pr "SGL benchmark harness - reproduction of White et al., SIGMOD 2007@.";
  Fun.protect ~finally:Bench_json.write (fun () ->
      match args with
      | [] | [ "quick" ] -> everything ~full:false ()
      | [ "full" ] -> everything ~full:true ()
      | names ->
        List.iter
          (function
            | "fig10" -> fig10 ~full:false ()
            | "fig10-full" -> fig10 ~full:true ()
            | "capacity" -> capacity ~full:false ()
            | "density" -> density_sweep ()
            | "ablate-divisible" -> ablate_divisible ()
            | "ablate-sweep" -> ablate_sweep ()
            | "ablate-nn" -> ablate_nn ()
            | "ablate-combine" -> ablate_combine ()
            | "ablate-share" -> ablate_share ()
            | "phases" -> phases ()
            | "parallel" -> parallel_scaling ~full:false ()
            | "parallel-full" -> parallel_scaling ~full:true ()
            | "incremental" -> incremental ~full:false ()
            | "incremental-full" -> incremental ~full:true ()
            | "fused" -> fused_bench ~full:false ()
            | "fused-full" -> fused_bench ~full:true ()
            | "columnar" -> columnar_bench ~full:false ()
            | "columnar-full" -> columnar_bench ~full:true ()
            | "faults" -> faults_bench ()
            | "telemetry" -> telemetry_bench ()
            | "obs" -> obs_bench ()
            | "persist" -> persist_bench ()
            | "micro" -> micro ()
            | other ->
              Fmt.epr "unknown benchmark %S@." other;
              exit 1)
          names)
