(* battle_sim — run the Section 3.2 battle simulation from the command
   line, with either aggregate evaluator.

     dune exec bin/battle_sim.exe -- --units 1000 --ticks 100 --evaluator indexed
     dune exec bin/battle_sim.exe -- --units 5000 --evaluator parallel --domains 4
*)

open Cmdliner
open Sgl

(* --print-flight: load a flight-recorder dump and print a JSON summary,
   so shell scripts (crash-recovery, the obs smoke job) never parse the
   binary format themselves. *)
let print_flight_summary (path : string) : int =
  match Obs.Flight.load ~path with
  | Error e ->
    Fmt.epr "flight: cannot load %s: %s@." path e;
    2
  | Ok (records, torn) ->
    let first_tick =
      match records with [] -> -1 | s :: _ -> s.Simulation.s_tick
    in
    let last = match List.rev records with [] -> None | s :: _ -> Some s in
    let last_tick = match last with None -> -1 | Some s -> s.Simulation.s_tick in
    Fmt.pr "{\"records\": %d, \"torn\": %b, \"first_tick\": %d, \"last_tick\": %d, \"last\": %s}@."
      (List.length records) torn first_tick last_tick
      (match last with None -> "null" | Some s -> Obs.Flight.sample_json s);
    0

let run units ticks evaluator domains density seed optimize resurrect index_cache verbose ascii
    trace fault_policy injects metrics trace_spans explain_plans ckpt_dir ckpt_every do_restore
    no_fsync sleep_ms obs_port flight_cap dump_flight print_flight summary_json =
  match print_flight with
  | Some path -> print_flight_summary path
  | None ->
  let evaluator_kind =
    match (evaluator, domains) with
    (* --domains N forces the parallel evaluator regardless of --evaluator *)
    | _, n when n > 0 -> Simulation.Parallel { domains = n }
    | "naive", _ -> Simulation.Naive
    | "indexed", _ -> Simulation.Indexed
    | "fused", _ -> Simulation.Fused
    | "parallel", _ -> Simulation.Parallel { domains = Domain.recommended_domain_count () }
    | other, _ ->
      Fmt.failwith "unknown evaluator %S (expected naive, indexed, fused or parallel)" other
  in
  let fault_policy =
    match fault_policy with
    | "fail" -> Simulation.Fail
    | "quarantine" -> Simulation.Quarantine_script
    | "degrade" -> Simulation.Degrade
    | other ->
      Fmt.failwith "unknown fault policy %S (expected fail, quarantine or degrade)" other
  in
  Fault_inject.reset ();
  List.iter
    (fun arg ->
      match Fault_inject.parse_arg arg with
      | Error msg -> Fmt.failwith "--inject %s: %s" arg msg
      | Ok (point, spec) ->
        if not (List.mem point Fault_inject.points) then
          Fmt.failwith "--inject %s: unknown point %S (known: %s)" arg point
            (String.concat ", " Fault_inject.points);
        Fault_inject.arm ~point spec)
    injects;
  let obs_enabled = obs_port <> None || flight_cap > 0 || dump_flight <> None in
  (* Telemetry: --metrics, --explain and the live endpoint need the
     ambient registry live; --trace-spans starts the span tracer.  All of
     them leave unit states bit-identical — telemetry never feeds back
     into the simulation. *)
  if metrics <> None || explain_plans || obs_enabled then begin
    Telemetry.set_enabled true;
    Telemetry.reset ()
  end;
  if trace_spans <> None then Telemetry.Span.start ();
  let scenario =
    Battle.Scenario.setup ~density ~per_side:(Battle.Scenario.standard_mix (units / 2)) ()
  in
  Fmt.pr "battlefield %dx%d, %d units, density %.1f%%, evaluator %s, fault policy %s@."
    scenario.Battle.Scenario.width scenario.Battle.Scenario.height
    (Array.length scenario.Battle.Scenario.units)
    (density *. 100.)
    (Simulation.evaluator_name evaluator_kind)
    (Simulation.fault_policy_name fault_policy);
  let sim =
    if do_restore then begin
      let dir =
        match ckpt_dir with
        | Some dir -> dir
        | None -> Fmt.failwith "--restore requires --checkpoint-dir"
      in
      (* recovery rebuilds the exact scenario config (same seed, scripts,
         grid) so the deterministic journal replay is bit-identical *)
      let config = Battle.Scenario.sim_config ~optimize ~seed ~resurrect scenario in
      match
        Simulation.restore ~fault_policy ~index_cache config ~evaluator:evaluator_kind ~dir
      with
      | Error e -> Fmt.failwith "restore failed: %s" e
      | Ok (sim, info) ->
        Fmt.pr "restored: checkpoint tick=%d, replayed %d journal tick(s)%s%s@."
          info.Simulation.restored_tick info.Simulation.replayed
          (if info.Simulation.generations_skipped > 0 then
             Fmt.str ", fell back past %d corrupt generation(s)" info.Simulation.generations_skipped
           else "")
          (if info.Simulation.journal_torn then ", torn journal tail discarded" else "");
        sim
    end
    else
      Battle.Scenario.simulation ~optimize ~seed ~resurrect ~fault_policy ~index_cache
        ~evaluator:evaluator_kind scenario
  in
  (match ckpt_dir with
  | Some dir -> Simulation.checkpoint_every ~fsync:(not no_fsync) sim ~dir ~every:ckpt_every
  | None -> ());
  (* The observability layer: flight recorder (+ streamed dump), live
     endpoint, query port.  Installed after persistence is armed so the
     first observed sample already describes a journaled tick. *)
  let live =
    if not obs_enabled then None
    else begin
      let prog = Battle.Scripts.compile () in
      let l =
        Obs.Live.create
          ~flight_capacity:(if flight_cap > 0 then flight_cap else 1024)
          ?dump_path:dump_flight ~sim ~prog ()
      in
      (match obs_port with
      | Some p ->
        let bound = Obs.Live.serve l ~port:p in
        Fmt.pr
          "obs: serving /metrics /stats /ticks /explain /health /query on http://127.0.0.1:%d@."
          bound
      | None -> ());
      Some l
    end
  in
  let start_tick = Simulation.tick_count sim in
  let s = Simulation.schema sim in
  let draw () =
    let w = min 100 scenario.Battle.Scenario.width
    and h = min 30 scenario.Battle.Scenario.height in
    let sx = float_of_int scenario.Battle.Scenario.width /. float_of_int w in
    let sy = float_of_int scenario.Battle.Scenario.height /. float_of_int h in
    let canvas = Array.make_matrix h w ' ' in
    Array.iter
      (fun u ->
        let x, y = Battle.Unit_types.pos_of s u in
        let cx = min (w - 1) (int_of_float (x /. sx)) in
        let cy = min (h - 1) (int_of_float (y /. sy)) in
        let c =
          match (Battle.Unit_types.player_of s u, Battle.Unit_types.klass_of s u) with
          | 0, Battle.D20.Knight -> 'K'
          | 0, Battle.D20.Archer -> 'a'
          | 0, Battle.D20.Healer -> '+'
          | _, Battle.D20.Knight -> 'X'
          | _, Battle.D20.Archer -> 'x'
          | _, Battle.D20.Healer -> '*'
        in
        canvas.(cy).(cx) <- c)
      (Simulation.units sim);
    Array.iter (fun row -> Fmt.pr "%s@." (String.init w (Array.get row))) canvas
  in
  let tracer =
    Option.map
      (fun path ->
        Trace.create ~path ~schema:s
          ~attrs:[ "key"; "player"; "kind"; "posx"; "posy"; "health" ])
      trace
  in
  Option.iter (fun t -> Trace.record t ~tick:start_tick (Simulation.units sim)) tracer;
  let wall = Timer.create () in
  Timer.start wall;
  (* The single exit path.  Whatever happens in the tick loop — a normal
     finish, a [Fault.Error] under the fail policy (exit 3), or an
     exception escaping a persistence hook — the journal is closed with no
     half-written tail, the trace file is flushed and closed, and the
     metrics/span documents are written.  A crash test must never report a
     corrupt observability file as a failure of the thing under test. *)
  let finalize () =
    Timer.stop wall;
    Simulation.detach_persistence sim;
    (* Uninstall the observer, close the streamed dump (its tail is
       already on disk frame by frame), stop the endpoint. *)
    Option.iter
      (fun l ->
        Obs.Live.stop l;
        Option.iter
          (fun path ->
            Fmt.pr "flight: %d record(s) streamed to %s@."
              (Obs.Flight.total (Obs.Live.flight l))
              path)
          dump_flight)
      live;
    Option.iter
      (fun tr ->
        Trace.close tr;
        Fmt.pr "trace: %d rows written to %s@." (Trace.rows tr) (Option.get trace))
      tracer;
    (match metrics with
    | None -> ()
    | Some path ->
      Telemetry.Registry.write_json Telemetry.default ~path;
      Fmt.pr "metrics: written to %s@." path);
    match trace_spans with
    | None -> ()
    | Some path ->
      Telemetry.Span.stop ();
      Telemetry.Span.write ~path;
      Fmt.pr "trace-spans: %d events written to %s@." (Telemetry.Span.count ()) path
  in
  let failed =
    Fun.protect ~finally:finalize (fun () ->
        try
          for t = start_tick + 1 to ticks do
            Simulation.step sim;
            if sleep_ms > 0 then Unix.sleepf (float_of_int sleep_ms /. 1000.);
            Option.iter (fun tr -> Trace.record tr ~tick:t (Simulation.units sim)) tracer;
            if verbose && t mod (max 1 (ticks / 10)) = 0 then begin
              let r = Simulation.report sim in
              Fmt.pr "tick %4d: %d units, %d deaths so far, %.3fs elapsed@." t
                r.Simulation.n_units r.Simulation.deaths (Timer.elapsed wall)
            end
          done;
          false
        with Fault.Error f ->
          Fmt.epr "fault: %a@." Fault.pp f;
          true)
  in
  (* The automatic black-box dump on fault exit: when nothing streamed
     the flight to disk, the ring is written now so the forensics are
     not lost with the process. *)
  (match live with
  | Some l when failed && dump_flight = None ->
    let path = "flight.dump" in
    Obs.Live.dump l ~path;
    Fmt.pr "flight: %d record(s) dumped to %s@." (Obs.Flight.length (Obs.Live.flight l)) path
  | _ -> ());
  if ascii then draw ();
  let r = Simulation.report sim in
  Fmt.pr "@.%a@." Simulation.pp_report r;
  (match Simulation.faults sim with
  | [] -> ()
  | fs ->
    Fmt.pr "fault log (%d retained of %d):@." (List.length fs) (Simulation.fault_count sim);
    List.iter (fun f -> Fmt.pr "  %a@." Fault.pp f) fs);
  if explain_plans then begin
    let prog = Battle.Scripts.compile () in
    Fmt.pr "@.%s" (Eval.explain ~schema:s ~aggregates:prog.Core_ir.aggregates ())
  end;
  (* The deterministic state fingerprint: everything on this line is a
     pure function of (scenario, seed, ticks), so an interrupted-and-
     recovered run must reproduce it byte for byte. *)
  Fmt.pr "final state: tick=%d units=%d digest=%s deaths=%d resurrections=%d quarantined=[%s]@."
    (Simulation.tick_count sim)
    (Array.length (Simulation.units sim))
    (Sgl.Persist.Crc32.to_hex (Simulation.state_digest sim))
    r.Simulation.deaths r.Simulation.resurrections
    (String.concat "," r.Simulation.quarantined);
  let elapsed = Timer.elapsed wall in
  let done_ticks = Simulation.tick_count sim - start_tick in
  let ticks_per_s =
    if done_ticks > 0 && elapsed > 1e-9 then float_of_int done_ticks /. elapsed else 0.
  in
  if done_ticks > 0 && elapsed > 1e-9 then
    Fmt.pr "wall clock: %.3fs (%.1f ticks/s)@." elapsed ticks_per_s
  else Fmt.pr "wall clock: %.3fs@." elapsed;
  (* The machine-readable twin of the "final state:" line, so scripts
     assert on JSON fields instead of grepping human output. *)
  (match summary_json with
  | None -> ()
  | Some path ->
    let body =
      Printf.sprintf
        "{\"tick\": %d, \"units\": %d, \"digest\": %s, \"deaths\": %d, \"resurrections\": %d, \
         \"faults\": %d, \"quarantined\": [%s], \"evaluator\": %s, \"elapsed_s\": %s, \
         \"ticks_per_s\": %s, \"failed\": %b}\n"
        (Simulation.tick_count sim)
        (Array.length (Simulation.units sim))
        (Telemetry.json_string (Sgl.Persist.Crc32.to_hex (Simulation.state_digest sim)))
        r.Simulation.deaths r.Simulation.resurrections r.Simulation.faults
        (String.concat ", " (List.map Telemetry.json_string r.Simulation.quarantined))
        (Telemetry.json_string (Simulation.evaluator_name (Simulation.current_evaluator sim)))
        (Telemetry.json_float elapsed) (Telemetry.json_float ticks_per_s) failed
    in
    if path = "-" then print_string body
    else begin
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc body);
      Fmt.pr "summary: written to %s@." path
    end);
  if failed then 3 else 0

let units_arg = Arg.(value & opt int 500 & info [ "units"; "n" ] ~doc:"Total units across both armies.")
let ticks_arg = Arg.(value & opt int 100 & info [ "ticks"; "t" ] ~doc:"Clock ticks to simulate.")

let evaluator_arg =
  Arg.(
    value
    & opt string "indexed"
    & info [ "evaluator"; "e" ]
        ~doc:"Aggregate evaluator: naive, indexed, fused (plans compiled into closure kernels \
              over the indexed evaluator), or parallel (indexed with the decision phase fanned \
              out over OCaml domains).")

let domains_arg =
  Arg.(
    value
    & opt int 0
    & info [ "domains" ]
        ~doc:"Run the parallel evaluator over this many domains (0: follow --evaluator; \
              'parallel' without --domains uses the recommended domain count).")

let density_arg =
  Arg.(value & opt float 0.01 & info [ "density" ] ~doc:"Fraction of grid squares occupied.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Root random seed.")
let optimize_arg = Arg.(value & flag & info [ "no-optimize" ] ~doc:"Disable plan rewriting.")
let resurrect_arg = Arg.(value & flag & info [ "no-resurrect" ] ~doc:"Let the dead stay dead.")

let index_cache_arg =
  Arg.(
    value
    & flag
    & info [ "no-index-cache" ]
        ~doc:"Rebuild every index structure from scratch each tick instead of revalidating \
              last tick's structures against the tick's delta summary.  Results are \
              bit-identical either way; only build work changes.")
let verbose_arg = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Progress every ~10% of ticks.")
let ascii_arg = Arg.(value & flag & info [ "draw" ] ~doc:"Draw the final battlefield as ASCII art.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE" ~doc:"Record a per-tick CSV trace of every unit to $(docv).")

let fault_policy_arg =
  Arg.(
    value
    & opt string "fail"
    & info [ "fault-policy" ]
        ~doc:"What a tick does when a phase raises: fail (rollback and abort), quarantine \
              (exclude the failing script group and keep going), or degrade (demote the \
              evaluator fused/parallel -> indexed -> naive and retry the tick).")

let inject_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "inject" ] ~docv:"POINT:SPEC"
        ~doc:"Arm a fault-injection point, e.g. eval.member:count=3, exec.group:always, \
              pool.lane:p=0.1,seed=7.  Repeatable.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Enable the telemetry registry and write its counters, gauges and histograms as \
              JSON to $(docv) after the run.")

let trace_spans_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-spans" ] ~docv:"FILE"
        ~doc:"Record per-tick, per-phase, per-script-group and per-operator spans and write \
              them in Chrome trace-event format to $(docv) (load at chrome://tracing or \
              ui.perfetto.dev).")

let explain_arg =
  Arg.(
    value
    & flag
    & info [ "explain" ]
        ~doc:"After the run, print every compiled aggregate plan annotated with live run \
              counters: rows scanned, index probes, prefix-aggregate answers vs. enumerations \
              vs. sweeps, and cache reuse per index group.")

let checkpoint_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint-dir" ] ~docv:"DIR"
        ~doc:"Arm durable state: append a CRC-framed journal record after every committed tick \
              and write checkpoint generations into $(docv) (created if missing).  A crashed \
              run restarts from where it left off with $(b,--restore).")

let checkpoint_every_arg =
  Arg.(
    value
    & opt int 25
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:"Ticks between checkpoint generations (with --checkpoint-dir; 0 keeps only the \
              initial generation and relies on journal replay).")

let restore_arg =
  Arg.(
    value
    & flag
    & info [ "restore" ]
        ~doc:"Recover from --checkpoint-dir instead of starting fresh: load the newest \
              checkpoint generation that passes checksum validation (falling back past corrupt \
              ones), deterministically replay the journal, then continue to --ticks.  The \
              final state is bit-identical to an uninterrupted run.")

let no_fsync_arg =
  Arg.(
    value
    & flag
    & info [ "no-fsync" ]
        ~doc:"Skip fsync on journal appends and checkpoint writes (faster, but a crash can \
              lose recent ticks; recovery still works from whatever reached the disk).")

let sleep_ms_arg =
  Arg.(
    value
    & opt int 0
    & info [ "sleep-ms" ] ~docv:"MS"
        ~doc:"Sleep $(docv) milliseconds after each tick.  For crash-recovery tests that need \
              to kill the process mid-run at a predictable point.")

let obs_port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "obs-port" ] ~docv:"PORT"
        ~doc:"Serve the live observability endpoint on 127.0.0.1:$(docv) while the battle runs: \
              /metrics (Prometheus), /stats (JSON), /ticks (flight-recorder tail), /explain \
              (live-annotated plans), /health (readiness + anomaly flags) and /query (read-only \
              SGL aggregate over the last committed tick).  0 picks an ephemeral port (printed \
              at startup).")

let flight_cap_arg =
  Arg.(
    value
    & opt int 0
    & info [ "flight-recorder" ] ~docv:"N"
        ~doc:"Keep a ring of the last $(docv) per-tick commit records (phase timings, counter \
              deltas, population, state digest).  Implied with capacity 1024 by --obs-port or \
              --dump-flight.")

let dump_flight_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dump-flight" ] ~docv:"FILE"
        ~doc:"Stream every flight-recorder record to $(docv) as it commits (CRC-framed binary, \
              flushed per record), so even a SIGKILL leaves a loadable black box.  Read it back \
              with --print-flight.")

let print_flight_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "print-flight" ] ~docv:"FILE"
        ~doc:"Load a flight-recorder dump and print a JSON summary (record count, torn flag, \
              first/last tick, last record), then exit without running a battle.")

let summary_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "summary-json" ] ~docv:"FILE"
        ~doc:"Write the final state as JSON (tick, units, digest, deaths, resurrections, \
              quarantined, ticks/s, failed) to $(docv); '-' writes to stdout.  The \
              machine-readable twin of the 'final state:' line.")

let cmd =
  let doc = "run the SGL battle simulation (knights, archers, healers)" in
  Cmd.v
    (Cmd.info "battle_sim" ~version:Sgl.version ~doc)
    Term.(
      const
        (fun u t e dom d s no_opt no_res no_cache v a tr fp inj m sp ex cd ce rst nf slp op fc
             dfl pfl sj ->
          run u t e dom d s (not no_opt) (not no_res) (not no_cache) v a tr fp inj m sp ex cd ce
            rst nf slp op fc dfl pfl sj)
      $ units_arg $ ticks_arg $ evaluator_arg $ domains_arg $ density_arg $ seed_arg
      $ optimize_arg $ resurrect_arg $ index_cache_arg $ verbose_arg $ ascii_arg $ trace_arg
      $ fault_policy_arg $ inject_arg $ metrics_arg $ trace_spans_arg $ explain_arg
      $ checkpoint_dir_arg $ checkpoint_every_arg $ restore_arg $ no_fsync_arg $ sleep_ms_arg
      $ obs_port_arg $ flight_cap_arg $ dump_flight_arg $ print_flight_arg $ summary_json_arg)

let () = exit (Cmd.eval' cmd)
