(* sgl_check — the SGL compiler driver.

   Parses, type-checks, normalizes and resolves an .sgl file against the
   battle schema (the default) and reports what the optimizer would do:
   the aggregate instance table with chosen index strategies and the
   optimized per-script plans.

     dune exec bin/sgl_check.exe -- examples/scripts/patrol.sgl --explain

   With --lint it runs the static analyzer instead: effect-race rules
   (R00x), plan translation validation (V00x), performance lints (P00x),
   interval value-range findings (N00x) and shard-locality findings
   (S00x), reported one grep-friendly line per finding or as a JSON array
   (--lint-json).  --werror promotes warnings to the failing exit code
   (infos never gate).  --battle lints the built-in battle scripts instead
   of a file.

   With --footprint (text) or --footprint-json it prints each script's
   shard-locality certificate from the footprint analysis: attributes
   read and written, the class of every aggregate read region and effect
   clause, and the conservative interaction radii. *)

open Cmdliner
open Sgl

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

type dump = Summary | Tokens | Ast | Normal | Core | Explain | Lint | Footprint

(* The engine phases downstream of script evaluation: the battle
   post-processing query plus the movement integrator's vector reads.
   Effects consumed only there are still live (not R004). *)
let post_reads schema =
  List.sort_uniq compare
    (Schema.find schema "movevect_x" :: Schema.find schema "movevect_y"
    :: Postprocess.reads (Postprocess.battle_spec ~schema))

let run_lint ~(path : string) ~(source : string) ~(json : bool) ~(werror : bool)
    ~(no_post_reads : bool) : int =
  let schema = Battle.Unit_types.schema () in
  let consts = Battle.Scripts.constants in
  let post_reads = if no_post_reads then [] else post_reads schema in
  match Analysis.Driver.analyze_source ~consts ~post_reads ~schema source with
  | Error msg ->
    Fmt.epr "%s: %s@." path msg;
    1
  | Ok diags ->
    if json then print_string (Analysis.Diagnostic.to_json ~file:path diags)
    else begin
      List.iter (fun d -> Fmt.pr "%s@." (Analysis.Diagnostic.to_string ~file:path d)) diags;
      let c = Analysis.Diagnostic.count diags in
      Fmt.pr "%s: %d error(s), %d warning(s), %d info(s)@." path c.Analysis.Diagnostic.errors
        c.Analysis.Diagnostic.warnings c.Analysis.Diagnostic.infos
    end;
    let c = Analysis.Diagnostic.count diags in
    if c.Analysis.Diagnostic.errors > 0 then 1
    else if werror && c.Analysis.Diagnostic.warnings > 0 then 1
    else 0

(* Shard-locality certificates for every script of the compiled program.
   Purely informational (exit 0): the gating view of the same analysis is
   the S-rules under --lint. *)
let run_footprint ~(source : string) ~(json : bool) : int =
  let schema = Battle.Unit_types.schema () in
  let consts = Battle.Scripts.constants in
  let prog = compile ~consts ~schema source in
  let certs = Analysis.Footprint.certify prog in
  if json then print_string (Analysis.Footprint.certs_to_json certs)
  else List.iter (fun c -> Fmt.pr "%a@." Analysis.Footprint.pp_cert c) certs;
  0

let run (path : string option) (battle : bool) (dump : dump) (json : bool) (fjson : bool)
    (werror : bool) (no_post_reads : bool) : int =
  let path, source =
    if battle then ("<battle built-ins>", Battle.Scripts.source)
    else
      match path with
      | Some p -> (p, read_file p)
      | None ->
        Fmt.epr "sgl_check: a FILE argument (or --battle) is required@.";
        exit 2
  in
  let schema = Battle.Unit_types.schema () in
  let consts = Battle.Scripts.constants in
  let dump = if json then Lint else if fjson then Footprint else dump in
  try
    match dump with
    | Lint -> run_lint ~path ~source ~json ~werror ~no_post_reads
    | Footprint -> run_footprint ~source ~json:fjson
    | Tokens ->
      List.iter
        (fun (lx : Lexer.lexed) ->
          Fmt.pr "%3d:%-3d %s@." lx.Lexer.line lx.Lexer.col (Lexer.token_name lx.Lexer.token))
        (Lexer.tokenize source);
      0
    | Ast ->
      Fmt.pr "%s@." (Pretty.program_to_string (Compile.parse source));
      0
    | Normal ->
      let ast = Compile.parse source in
      Typecheck.check ~consts ~schema ast;
      Fmt.pr "%s@." (Pretty.program_to_string (Normalize.normalize ast));
      0
    | Core ->
      let prog = compile ~consts ~schema source in
      Array.iteri
        (fun i agg -> Fmt.pr "agg#%d = %a@." i Aggregate.pp agg)
        prog.Core_ir.aggregates;
      List.iter
        (fun (s : Core_ir.script) ->
          Fmt.pr "@.script %s:@.%a@." s.Core_ir.name Core_ir.pp s.Core_ir.body)
        prog.Core_ir.scripts;
      0
    | Explain ->
      Fmt.pr "%s@." (explain ~consts ~schema source);
      0
    | Summary ->
      let prog = compile ~consts ~schema source in
      let n_scripts = List.length prog.Core_ir.scripts in
      let n_aggs = Array.length prog.Core_ir.aggregates in
      let strategies =
        Array.to_list prog.Core_ir.aggregates
        |> List.map (fun agg -> Agg_plan.strategy_name (Agg_plan.analyze schema agg))
        |> List.sort_uniq compare
      in
      Fmt.pr "%s: OK (%d entry scripts, %d aggregate instances; strategies: %s)@." path n_scripts
        n_aggs
        (String.concat ", " strategies);
      0
  with
  | Compile.Compile_error e ->
    Fmt.epr "%s: %s@." path (Compile.error_to_string e);
    1
  | Typecheck.Type_error m ->
    Fmt.epr "%s: type error: %s@." path m;
    1
  | Lexer.Lex_error m ->
    Fmt.epr "%s: lexical error: %s@." path m;
    1
  | Parser.Parse_error m ->
    Fmt.epr "%s: parse error: %s@." path m;
    1

let path_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"SGL source file")

let battle_arg =
  Arg.(value & flag & info [ "battle" ] ~doc:"Operate on the built-in battle scripts instead of a file.")

let dump_arg =
  let flags =
    [
      (Tokens, Arg.info [ "dump-tokens" ] ~doc:"Print the token stream.");
      (Ast, Arg.info [ "dump-ast" ] ~doc:"Pretty-print the parsed program.");
      (Normal, Arg.info [ "dump-normal" ] ~doc:"Pretty-print the normal form (aggregates hoisted into lets).");
      (Core, Arg.info [ "dump-core" ] ~doc:"Print the resolved core IR and aggregate instances.");
      (Explain, Arg.info [ "explain" ] ~doc:"Print optimized plans and index strategies.");
      (Lint, Arg.info [ "lint" ] ~doc:"Run the static analyzer (races, plan validation, performance lints, value ranges, shard locality).");
      (Footprint, Arg.info [ "footprint" ] ~doc:"Print per-script shard-locality certificates (reads/writes, region and effect classes, interaction radii).");
    ]
  in
  Arg.(value & vflag Summary flags)

let json_arg =
  Arg.(value & flag & info [ "lint-json" ] ~doc:"With --lint, emit diagnostics as a JSON array.")

let fjson_arg =
  Arg.(
    value & flag
    & info [ "footprint-json" ] ~doc:"Emit the shard-locality certificates as a JSON array (implies --footprint).")

let werror_arg =
  Arg.(value & flag & info [ "werror" ] ~doc:"With --lint, exit non-zero on warnings too (infos never gate).")

let no_post_reads_arg =
  Arg.(
    value & flag
    & info [ "no-post-reads" ]
        ~doc:
          "With --lint, assume no engine post-processing consumes effects: R004 (dead \
           effect) fires for any effect attribute no script reads.")

let cmd =
  let doc = "check, explain and lint SGL scripts (Scalable Games Language)" in
  Cmd.v
    (Cmd.info "sgl_check" ~version:Sgl.version ~doc)
    Term.(
      const run $ path_arg $ battle_arg $ dump_arg $ json_arg $ fjson_arg $ werror_arg
      $ no_post_reads_arg)

let () = exit (Cmd.eval' cmd)
