(* sgl_check — the SGL compiler driver.

   Parses, type-checks, normalizes and resolves an .sgl file against the
   battle schema (the default) and reports what the optimizer would do:
   the aggregate instance table with chosen index strategies and the
   optimized per-script plans.

     dune exec bin/sgl_check.exe -- examples/scripts/patrol.sgl --explain
*)

open Cmdliner
open Sgl

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

type dump = Summary | Tokens | Ast | Normal | Core | Explain

let run (path : string) (dump : dump) : int =
  let source = read_file path in
  let schema = Battle.Unit_types.schema () in
  let consts = Battle.Scripts.constants in
  try
    match dump with
    | Tokens ->
      List.iter
        (fun (lx : Lexer.lexed) ->
          Fmt.pr "%3d:%-3d %s@." lx.Lexer.line lx.Lexer.col (Lexer.token_name lx.Lexer.token))
        (Lexer.tokenize source);
      0
    | Ast ->
      Fmt.pr "%s@." (Pretty.program_to_string (Compile.parse source));
      0
    | Normal ->
      let ast = Compile.parse source in
      Typecheck.check ~consts ~schema ast;
      Fmt.pr "%s@." (Pretty.program_to_string (Normalize.normalize ast));
      0
    | Core ->
      let prog = compile ~consts ~schema source in
      Array.iteri
        (fun i agg -> Fmt.pr "agg#%d = %a@." i Aggregate.pp agg)
        prog.Core_ir.aggregates;
      List.iter
        (fun (s : Core_ir.script) ->
          Fmt.pr "@.script %s:@.%a@." s.Core_ir.name Core_ir.pp s.Core_ir.body)
        prog.Core_ir.scripts;
      0
    | Explain ->
      Fmt.pr "%s@." (explain ~consts ~schema source);
      0
    | Summary ->
      let prog = compile ~consts ~schema source in
      let n_scripts = List.length prog.Core_ir.scripts in
      let n_aggs = Array.length prog.Core_ir.aggregates in
      let strategies =
        Array.to_list prog.Core_ir.aggregates
        |> List.map (fun agg -> Agg_plan.strategy_name (Agg_plan.analyze schema agg))
        |> List.sort_uniq compare
      in
      Fmt.pr "%s: OK (%d entry scripts, %d aggregate instances; strategies: %s)@." path n_scripts
        n_aggs
        (String.concat ", " strategies);
      0
  with
  | Compile.Compile_error e ->
    Fmt.epr "%s: %s@." path (Compile.error_to_string e);
    1
  | Typecheck.Type_error m ->
    Fmt.epr "%s: type error: %s@." path m;
    1
  | Lexer.Lex_error m ->
    Fmt.epr "%s: lexical error: %s@." path m;
    1
  | Parser.Parse_error m ->
    Fmt.epr "%s: parse error: %s@." path m;
    1

let path_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"SGL source file")

let dump_arg =
  let flags =
    [
      (Tokens, Arg.info [ "dump-tokens" ] ~doc:"Print the token stream.");
      (Ast, Arg.info [ "dump-ast" ] ~doc:"Pretty-print the parsed program.");
      (Normal, Arg.info [ "dump-normal" ] ~doc:"Pretty-print the normal form (aggregates hoisted into lets).");
      (Core, Arg.info [ "dump-core" ] ~doc:"Print the resolved core IR and aggregate instances.");
      (Explain, Arg.info [ "explain" ] ~doc:"Print optimized plans and index strategies.");
    ]
  in
  Arg.(value & vflag Summary flags)

let cmd =
  let doc = "check and explain SGL scripts (Scalable Games Language)" in
  Cmd.v (Cmd.info "sgl_check" ~version:Sgl.version ~doc) Term.(const run $ path_arg $ dump_arg)

let () = exit (Cmd.eval' cmd)
