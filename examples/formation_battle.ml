(* The full Section 3.2 battle: knights, archers and healers with the
   coordination behaviours the paper motivates — archers keeping the
   knights between themselves and the enemy, knights closing ranks by
   positional standard deviation, healers projecting non-stackable auras.

   The run narrates the battle and then verifies the formation claim: on
   average, each side's archers stand behind its knights relative to the
   enemy centroid.

   Run with:  dune exec examples/formation_battle.exe *)

open Sgl

let mean xs = if xs = [] then nan else List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stats_of sim =
  let s = Simulation.schema sim in
  let units = Simulation.units sim in
  let by_class player klass =
    Array.to_list units
    |> List.filter (fun u ->
           Battle.Unit_types.player_of s u = player && Battle.Unit_types.klass_of s u = klass)
  in
  (s, units, by_class)

let () =
  let per_side = Battle.Scenario.standard_mix 120 in
  let scenario = Battle.Scenario.setup ~density:0.02 ~per_side () in
  Fmt.pr "Battlefield: %dx%d, %d units per side (%d knights, %d archers, %d healers)@.@."
    scenario.Battle.Scenario.width scenario.Battle.Scenario.height
    (Battle.Scenario.army_size per_side) per_side.Battle.Scenario.knights
    per_side.Battle.Scenario.archers per_side.Battle.Scenario.healers;
  let sim = Battle.Scenario.simulation ~resurrect:false ~evaluator:Simulation.Indexed scenario in
  Fmt.pr "%5s | %28s | %28s@." "tick" "player 0 (K/A/H, avg hp)" "player 1 (K/A/H, avg hp)";
  let describe () =
    let s, _, by_class = stats_of sim in
    let side player =
      let k = by_class player Battle.D20.Knight in
      let a = by_class player Battle.D20.Archer in
      let h = by_class player Battle.D20.Healer in
      let hp =
        mean (List.map (Battle.Unit_types.health_of s) (List.concat [ k; a; h ]))
      in
      Fmt.str "%3d/%3d/%3d  hp=%5.1f" (List.length k) (List.length a) (List.length h) hp
    in
    (side 0, side 1)
  in
  for t = 0 to 60 do
    if t mod 10 = 0 then begin
      let p0, p1 = describe () in
      Fmt.pr "%5d | %28s | %28s@." t p0 p1
    end;
    Simulation.step sim
  done;
  (* Formation check: for each side, archers should sit farther from the
     enemy centroid than their knights do. *)
  let s, units, by_class = stats_of sim in
  let centroid_of list =
    let xs = List.map (fun u -> fst (Battle.Unit_types.pos_of s u)) list in
    let ys = List.map (fun u -> snd (Battle.Unit_types.pos_of s u)) list in
    Vec2.make (mean xs) (mean ys)
  in
  ignore units;
  Fmt.pr "@.Formation after the battle (archers should shelter behind knights):@.";
  List.iter
    (fun player ->
      let enemy =
        centroid_of
          (List.concat
             [
               by_class (1 - player) Battle.D20.Knight;
               by_class (1 - player) Battle.D20.Archer;
               by_class (1 - player) Battle.D20.Healer;
             ])
      in
      let kd =
        mean
          (List.map
             (fun u ->
               let x, y = Battle.Unit_types.pos_of s u in
               Vec2.dist (Vec2.make x y) enemy)
             (by_class player Battle.D20.Knight))
      in
      let ad =
        mean
          (List.map
             (fun u ->
               let x, y = Battle.Unit_types.pos_of s u in
               Vec2.dist (Vec2.make x y) enemy)
             (by_class player Battle.D20.Archer))
      in
      Fmt.pr "  player %d: knights at %.1f from the enemy, archers at %.1f (%s)@." player kd ad
        (if ad >= kd then "archers behind" else "formation broken"))
    [ 0; 1 ];
  let r = Simulation.report sim in
  Fmt.pr "@.%a@." Simulation.pp_report r
