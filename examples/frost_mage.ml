(* Absolute "set" effects with priorities (Section 2.2):

     "a freeze spell may set a character's speed to 0.  In these instances,
      the effect is given a priority.  Thus they are nonstackable effects
      determined by maximum priority."

   Frost mages freeze every enemy in a cone of cold (priority 1, speed 0);
   one archmage casts Greater Haste on the same targets (priority 2, speed
   3).  The combination operator keeps only the highest-priority effect per
   unit, so hasted units outrun the freeze no matter how many mages overlap
   them — order-independently, which is what lets the engine process all
   casters simultaneously.

   Run with:  dune exec examples/frost_mage.exe *)

open Sgl

let schema =
  Schema.create
    [
      Schema.attr "key" Value.TInt;
      Schema.attr "player" Value.TInt;
      Schema.attr "rank" Value.TInt; (* 0 = grunt, 1 = frost mage, 2 = archmage *)
      Schema.attr "posx" Value.TFloat;
      Schema.attr "posy" Value.TFloat;
      Schema.attr "speed" Value.TFloat;
      Schema.attr "base_speed" Value.TFloat;
      Schema.attr ~tag:Schema.Sum "movevect_x" Value.TFloat;
      Schema.attr ~tag:Schema.Sum "movevect_y" Value.TFloat;
      Schema.attr ~tag:Schema.Pmax "setspeed" Value.TVec; (* (priority, value) *)
    ]

let behaviour =
  {|
action ConeOfCold(u) {
  on all(e.player <> u.player
         and e.posx >= u.posx - 8.0 and e.posx <= u.posx + 8.0
         and e.posy >= u.posy - 8.0 and e.posy <= u.posy + 8.0) {
    setspeed <- (1.0, 0.0);     # priority 1: frozen solid
  }
}

action GreaterHaste(u) {
  on all(e.player <> u.player and e.rank = 0
         and e.posx >= u.posx - 6.0 and e.posx <= u.posx + 6.0
         and e.posy >= u.posy - 3.0 and e.posy <= u.posy + 3.0) {
    setspeed <- (2.0, 3.0);     # priority 2 overrides any freeze
  }
}

action March(u) {
  on self { movevect_x <- 5; }
}

script grunt(u) { perform March(u); }
script frost_mage(u) { perform ConeOfCold(u); }
script archmage(u) { perform GreaterHaste(u); }
|}

let make ~key ~player ~rank ~x ~y =
  Tuple.of_list schema
    [
      Value.Int key; Value.Int player; Value.Int rank; Value.Float x; Value.Float y;
      Value.Float 2.; Value.Float 2.; Value.Float 0.; Value.Float 0.;
      Value.Vec (Vec2.make 0. 0.);
    ]

let () =
  let units =
    [|
      (* player 0: marching grunts at x = 10 *)
      make ~key:0 ~player:0 ~rank:0 ~x:10. ~y:4.; (* frozen only *)
      make ~key:1 ~player:0 ~rank:0 ~x:10. ~y:8.; (* frozen AND hasted *)
      make ~key:2 ~player:0 ~rank:0 ~x:10. ~y:40.; (* out of everyone's range *)
      (* player 1: two overlapping frost mages and one archmage *)
      make ~key:10 ~player:1 ~rank:1 ~x:14. ~y:5.;
      make ~key:11 ~player:1 ~rank:1 ~x:13. ~y:7.;
      make ~key:12 ~player:1 ~rank:2 ~x:12. ~y:8.;
    |]
  in
  (* the frost cones cover grunts 0 and 1; the archmage's tighter haste
     window covers only grunt 1, whose priority-2 effect beats the freeze *)
  let speed = Schema.find schema "speed" and setspeed = Schema.find schema "setspeed" in
  let base_speed = Schema.find schema "base_speed" in
  let open Expr in
  (* speed := base when no set-effect arrived (priority 0), else the set
     value; hit = min(1, max(0, priority)) *)
  let hit = MinOf (Const (Value.Float 1.), MaxOf (Const (Value.Float 0.), VecX (EAttr setspeed))) in
  let new_speed =
    Binop
      ( Add,
        Binop (Mul, UAttr base_speed, Binop (Sub, Const (Value.Float 1.), hit)),
        Binop (Mul, VecY (EAttr setspeed), hit) )
  in
  let post =
    Postprocess.make ~schema ~updates:[ (speed, new_speed) ]
      ~remove_when:(Const (Value.Bool false))
  in
  let rank = Schema.find schema "rank" in
  let config =
    {
      Simulation.prog = compile ~schema behaviour;
      script_of =
        (fun u ->
          Some
            (match Value.to_int (Tuple.get u rank) with
            | 1 -> "frost_mage"
            | 2 -> "archmage"
            | _ -> "grunt"));
      postprocess = post;
      movement =
        Some
          {
            Movement.posx = Schema.find schema "posx";
            posy = Schema.find schema "posy";
            mvx = Schema.find schema "movevect_x";
            mvy = Schema.find schema "movevect_y";
            speed = 3.;
            speed_attr = Some speed;
            width = 80;
            height = 48;
          };
      death = Simulation.Remove;
      seed = 8;
      optimize = true;
    }
  in
  let sim = Simulation.create config ~evaluator:Simulation.Indexed ~units in
  let describe label =
    Fmt.pr "%s@." label;
    Array.iter
      (fun u ->
        if Value.to_int (Tuple.get u rank) = 0 then begin
          let x, _ = (Value.to_float (Tuple.get u 3), ()) in
          Fmt.pr "  grunt %d: x=%4.0f speed=%g@."
            (Value.to_int (Tuple.get u 0))
            x
            (Value.to_float (Tuple.get u speed))
        end)
      (Simulation.units sim)
  in
  describe "before:";
  for _ = 1 to 2 do
    Simulation.step sim
  done;
  describe "after 2 ticks (freeze p1, haste p2, max priority wins):";
  Fmt.pr
    "@.grunt 0 froze in place; grunt 1 was in both auras but haste (priority 2)@.\
     overrode the freeze (priority 1); grunt 2 marched at its own pace.@."
