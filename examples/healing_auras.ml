(* Non-stackable area effects (Sections 2.2 and 5.4).

   Three healers stand in overlapping range of one wounded knight.  Because
   healing auras combine by MAX — not SUM — the knight is healed once per
   tick, no matter how many auras cover it.  A stackable (SUM) damage field
   laid over the same spot shows the contrast.

   The demo runs the same tick through the naive path (every healer scans
   every unit) and the indexed path (one Section 5.4 effect-center index)
   and shows the combined effects are identical.

   Run with:  dune exec examples/healing_auras.exe *)

open Sgl

let schema =
  Schema.create
    [
      Schema.attr "key" Value.TInt;
      Schema.attr "player" Value.TInt;
      Schema.attr "kind" Value.TInt; (* 0 = knight, 1 = healer, 2 = firemage *)
      Schema.attr "posx" Value.TFloat;
      Schema.attr "posy" Value.TFloat;
      Schema.attr "health" Value.TFloat;
      Schema.attr "max_health" Value.TFloat;
      Schema.attr "reload" Value.TInt;
      Schema.attr "cooldown" Value.TInt;
      Schema.attr ~tag:Schema.Max "weaponused" Value.TInt;
      Schema.attr ~tag:Schema.Sum "movevect_x" Value.TFloat;
      Schema.attr ~tag:Schema.Sum "movevect_y" Value.TFloat;
      Schema.attr ~tag:Schema.Sum "damage" Value.TFloat;
      Schema.attr ~tag:Schema.Max "inaura" Value.TFloat;
    ]

let behaviour =
  {|
action HealAura(u) {
  on all(u.player = e.player
         and e.posx >= u.posx - 5.0 and e.posx <= u.posx + 5.0
         and e.posy >= u.posy - 5.0 and e.posy <= u.posy + 5.0) {
    inaura <- 10;
  }
}

action FireField(u) {
  on all(e.player <> u.player
         and e.posx >= u.posx - 5.0 and e.posx <= u.posx + 5.0
         and e.posy >= u.posy - 5.0 and e.posy <= u.posy + 5.0) {
    damage <- 4;
  }
}

script healer(u) { perform HealAura(u); }
script firemage(u) { perform FireField(u); }
script knight(u) { skip; }
|}

let make ~key ~player ~kind ~x ~y ~health =
  Tuple.of_list schema
    [
      Value.Int key; Value.Int player; Value.Int kind; Value.Float x; Value.Float y;
      Value.Float health; Value.Float 100.; Value.Int 1; Value.Int 0; Value.Int 0;
      Value.Float 0.; Value.Float 0.; Value.Float 0.; Value.Float 0.;
    ]

let units () =
  [|
    (* a wounded knight at the center of three overlapping auras *)
    make ~key:0 ~player:0 ~kind:0 ~x:10. ~y:10. ~health:40.;
    make ~key:1 ~player:0 ~kind:1 ~x:7. ~y:10. ~health:100.;
    make ~key:2 ~player:0 ~kind:1 ~x:13. ~y:10. ~health:100.;
    make ~key:3 ~player:0 ~kind:1 ~x:10. ~y:13. ~health:100.;
    (* two enemy fire mages whose fields DO stack over the knight *)
    make ~key:4 ~player:1 ~kind:2 ~x:10. ~y:7. ~health:100.;
    make ~key:5 ~player:1 ~kind:2 ~x:12. ~y:8. ~health:100.;
  |]

let run_one_tick evaluator =
  let prog = compile ~schema behaviour in
  let kind_ix = Schema.find schema "kind" in
  let config =
    {
      Simulation.prog;
      script_of =
        (fun u ->
          match Value.to_int (Tuple.get u kind_ix) with
          | 1 -> Some "healer"
          | 2 -> Some "firemage"
          | _ -> Some "knight");
      postprocess = Postprocess.battle_spec ~schema;
      movement = None;
      death = Simulation.Remove;
      seed = 3;
      optimize = true;
    }
  in
  let sim = Simulation.create config ~evaluator ~units:(units ()) in
  Simulation.step sim;
  Simulation.units sim

let () =
  Fmt.pr "A knight at 40/100 health sits inside THREE friendly healing auras@.";
  Fmt.pr "(max-combined, +10 each) and TWO enemy fire fields (sum-combined, 4 each).@.@.";
  let show name units =
    let health_ix = Schema.find schema "health" in
    let knight = units.(0) in
    Fmt.pr "%-8s -> knight health after one tick: %g  (40 + 10 heal - 8 fire = 42)@." name
      (Value.to_float (Tuple.get knight health_ix))
  in
  let naive = run_one_tick Simulation.Naive in
  let indexed = run_one_tick Simulation.Indexed in
  show "naive" naive;
  show "indexed" indexed;
  let same = Array.for_all2 Tuple.equal naive indexed in
  Fmt.pr "@.naive and indexed produced %s states.@."
    (if same then "identical" else "DIFFERENT (bug!)")
