(* The modding story (Section 2.1): behaviour lives in data files that
   players can replace without recompiling anything.

   This demo loads [examples/scripts/patrol.sgl] from disk at run time,
   compiles it against the battle schema, and lets knights run the modded
   behaviour instead of their built-in script.  Swap the file's contents
   and the game changes — the paper's "AMAI replaces Warcraft III's combat
   AI" workflow.

   Run with:  dune exec examples/modding.exe [path-to-script.sgl]
*)

open Sgl

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let default_candidates =
  [ "examples/scripts/patrol.sgl"; "../examples/scripts/patrol.sgl"; "scripts/patrol.sgl" ]

let () =
  let path =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else begin
      match List.find_opt Sys.file_exists default_candidates with
      | Some p -> p
      | None ->
        Fmt.epr "cannot find patrol.sgl; pass a script path explicitly@.";
        exit 1
    end
  in
  let source = read_file path in
  let schema = Battle.Unit_types.schema () in
  Fmt.pr "Loading mod %S (%d bytes of SGL)...@." path (String.length source);
  let prog =
    try compile ~consts:Battle.Scripts.constants ~schema source with
    | Compile.Compile_error e ->
      Fmt.epr "mod rejected: %s@." (Compile.error_to_string e);
      exit 1
  in
  let entry =
    match prog.Core_ir.scripts with
    | s :: _ -> s.Core_ir.name
    | [] ->
      Fmt.epr "mod defines no runnable script@.";
      exit 1
  in
  Fmt.pr "mod OK: entry script %S, %d aggregate instances@.@." entry
    (Array.length prog.Core_ir.aggregates);
  (* a small neutral arena: every unit runs the modded behaviour *)
  let units =
    Array.init 40 (fun i ->
        (* a single faction: this is a patrol exercise, not a battle *)
        Battle.Unit_types.make_unit schema ~key:i ~player:0
          ~klass:(if i mod 5 = 0 then Battle.D20.Healer else Battle.D20.Knight)
          ~x:(4 + (i * 3 mod 48))
          ~y:(4 + (i * 7 mod 24)))
  in
  (* wound some units so the patrol has someone to escort *)
  let health_ix = Schema.find schema "health" in
  Array.iteri (fun i u -> if i mod 4 = 1 then Tuple.set u health_ix (Value.Float 15.)) units;
  let config =
    {
      Simulation.prog;
      script_of = (fun _ -> Some entry);
      postprocess = Postprocess.battle_spec ~schema;
      movement =
        Some
          {
            Movement.posx = Schema.find schema "posx";
            posy = Schema.find schema "posy";
            mvx = Schema.find schema "movevect_x";
            mvy = Schema.find schema "movevect_y";
            speed = 2.;
            speed_attr = None;
            width = 56;
            height = 32;
          };
      death = Simulation.Remove;
      seed = 99;
      optimize = true;
    }
  in
  let sim = Simulation.create config ~evaluator:Simulation.Indexed ~units in
  (* measure how tightly the patrol converges on the wounded *)
  let mean_dist_to_wounded () =
    let current = Simulation.units sim in
    let wounded =
      Array.to_list current
      |> List.filter (fun u -> Value.to_float (Tuple.get u health_ix) < 30.)
      |> List.map (Battle.Unit_types.pos_of schema)
    in
    if wounded = [] then nan
    else begin
      let total = ref 0. and n = ref 0 in
      Array.iter
        (fun u ->
          if Value.to_float (Tuple.get u health_ix) >= 30. then begin
            let x, y = Battle.Unit_types.pos_of schema u in
            let d =
              List.fold_left
                (fun acc (wx, wy) -> Float.min acc (Vec2.dist (Vec2.make x y) (Vec2.make wx wy)))
                infinity wounded
            in
            total := !total +. d;
            incr n
          end)
        current;
      !total /. float_of_int !n
    end
  in
  Fmt.pr "%6s %30s@." "tick" "mean distance to nearest wounded";
  for t = 0 to 20 do
    if t mod 4 = 0 then Fmt.pr "%6d %30.2f@." t (mean_dist_to_wounded ());
    Simulation.step sim
  done;
  Fmt.pr "@.The escorts converge on the wounded - behaviour that shipped in a data file.@."
