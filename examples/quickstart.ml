(* Quickstart: a complete data-driven game in ~100 lines.

   Two teams of "drones" chase each other's centroid and zap the nearest
   opponent.  Everything a game needs is here: a schema with effect tags,
   behaviour written in SGL, the indexed engine, and a tick loop.

   Run with:  dune exec examples/quickstart.exe *)

open Sgl

let schema =
  Schema.create
    [
      Schema.attr "key" Value.TInt;
      Schema.attr "player" Value.TInt;
      Schema.attr "posx" Value.TFloat;
      Schema.attr "posy" Value.TFloat;
      Schema.attr "health" Value.TFloat;
      Schema.attr "max_health" Value.TFloat;
      Schema.attr "reload" Value.TInt;
      Schema.attr "cooldown" Value.TInt;
      Schema.attr ~tag:Schema.Max "weaponused" Value.TInt;
      Schema.attr ~tag:Schema.Sum "movevect_x" Value.TFloat;
      Schema.attr ~tag:Schema.Sum "movevect_y" Value.TFloat;
      Schema.attr ~tag:Schema.Sum "damage" Value.TFloat;
      Schema.attr ~tag:Schema.Max "inaura" Value.TFloat;
    ]

(* Behaviour is data, not code: this string could live in a mod file. *)
let behaviour =
  {|
aggregate EnemyCentroid(u) {
  (avg(e.posx), avg(e.posy))
  where e.player <> u.player
  default (u.posx, u.posy)
}

aggregate NearestEnemy(u) {
  nearest(e.posx, e.posy, u.posx, u.posy; e.key)
  where e.player <> u.player
    and e.posx >= u.posx - 4.0 and e.posx <= u.posx + 4.0
    and e.posy >= u.posy - 4.0 and e.posy <= u.posy + 4.0
  default -1
}

action Zap(u, target) {
  on key(target) { damage <- 5 + (random(1) mod 6); }
  on self { weaponused <- 1; }
}

action MoveToward(u, tx, ty) {
  on self { movevect_x <- tx - u.posx; movevect_y <- ty - u.posy; }
}

script drone(u) {
  let target = NearestEnemy(u);
  if target >= 0 and u.cooldown = 0 then {
    perform Zap(u, target);
  } else {
    let c = EnemyCentroid(u);
    perform MoveToward(u, c.x, c.y);
  }
}
|}

let make_drone ~key ~player ~x ~y =
  Tuple.of_list schema
    [
      Value.Int key; Value.Int player; Value.Float x; Value.Float y; Value.Float 30.;
      Value.Float 30.; Value.Int 2; Value.Int 0; Value.Int 0; Value.Float 0.; Value.Float 0.;
      Value.Float 0.; Value.Float 0.;
    ]

let () =
  let prog = compile ~schema behaviour in
  let units =
    Array.init 24 (fun i ->
        let player = i mod 2 in
        make_drone ~key:i ~player
          ~x:(if player = 0 then float_of_int (2 + (i / 2)) else float_of_int (28 - (i / 2)))
          ~y:(float_of_int (4 + (i mod 8))))
  in
  let config =
    {
      Simulation.prog;
      script_of = (fun _ -> Some "drone");
      postprocess = Postprocess.battle_spec ~schema;
      movement =
        Some
          {
            Movement.posx = Schema.find schema "posx";
            posy = Schema.find schema "posy";
            mvx = Schema.find schema "movevect_x";
            mvy = Schema.find schema "movevect_y";
            speed = 1.5;
            speed_attr = None;
            width = 32;
            height = 16;
          };
      death = Simulation.Remove;
      seed = 2026;
      optimize = true;
    }
  in
  let sim = Simulation.create config ~evaluator:Simulation.Indexed ~units in
  let survivors player =
    Array.fold_left
      (fun acc u ->
        if Value.to_int (Tuple.get u (Schema.find schema "player")) = player then acc + 1 else acc)
      0 (Simulation.units sim)
  in
  Fmt.pr "tick | team 0 | team 1@.";
  for t = 0 to 30 do
    if t mod 5 = 0 then Fmt.pr "%4d | %6d | %6d@." t (survivors 0) (survivors 1);
    Simulation.step sim
  done;
  Fmt.pr "@.How the compiler executed the drone script:@.%s@." (explain ~schema behaviour)
