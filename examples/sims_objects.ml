(* The Sims 2 bottleneck from the paper's introduction (Section 2.1):

     "A character in a room with a large number of objects can slow the
      game down perceptibly ... because the game is querying each of the
      objects in the room to determine which one currently satisfies the
      character's needs."

   Here characters and household objects share one environment relation.
   Every tick each character runs an ARGMAX over the objects it can reach —
   naively an O(characters x objects) scan, exactly the behaviour the
   console port papered over with a "feng shui meter".  The indexed engine
   answers the same query through a constant-window index, so adding
   objects stays cheap.

   Run with:  dune exec examples/sims_objects.exe *)

open Sgl

let schema =
  Schema.create
    [
      Schema.attr "key" Value.TInt;
      Schema.attr "kind" Value.TInt; (* 0 = character, 1 = object *)
      Schema.attr "posx" Value.TFloat;
      Schema.attr "posy" Value.TFloat;
      Schema.attr "need" Value.TFloat; (* comfort level, decays every tick *)
      Schema.attr "utility" Value.TFloat; (* how satisfying the object is *)
      Schema.attr ~tag:Schema.Sum "movevect_x" Value.TFloat;
      Schema.attr ~tag:Schema.Sum "movevect_y" Value.TFloat;
      Schema.attr ~tag:Schema.Max "satisfy" Value.TFloat;
    ]

let behaviour =
  {|
# the best (most satisfying) object within reach of the character
aggregate BestObjectUtility(u) {
  max(e.utility)
  where e.kind = 1
    and e.posx >= u.posx - 10.0 and e.posx <= u.posx + 10.0
    and e.posy >= u.posy - 10.0 and e.posy <= u.posy + 10.0
  default 0.0
}

aggregate BestObjectPos(u) {
  argmax(e.utility; (e.posx, e.posy))
  where e.kind = 1
    and e.posx >= u.posx - 10.0 and e.posx <= u.posx + 10.0
    and e.posy >= u.posy - 10.0 and e.posy <= u.posy + 10.0
  default (u.posx, u.posy)
}

action UseObject(u, amount) {
  on self { satisfy <- amount; }
}

action WalkToward(u, tx, ty) {
  on self { movevect_x <- tx - u.posx; movevect_y <- ty - u.posy; }
}

script sim_character(u) {
  if u.need < 60.0 then {
    let best = BestObjectUtility(u);
    if best > 0.0 then {
      let p = BestObjectPos(u);
      let near = abs(p.x - u.posx) + abs(p.y - u.posy);
      if near <= 2.0 then {
        perform UseObject(u, best);
      } else {
        perform WalkToward(u, p.x, p.y);
      }
    }
  }
}
|}

let make ~key ~kind ~x ~y ~need ~utility =
  Tuple.of_list schema
    [
      Value.Int key; Value.Int kind; Value.Float x; Value.Float y; Value.Float need;
      Value.Float utility; Value.Float 0.; Value.Float 0.; Value.Float 0.;
    ]

let build_household ~characters ~objects =
  let prng = Prng.create 4 in
  let side = 48 in
  Array.init (characters + objects) (fun i ->
      if i < characters then
        make ~key:i ~kind:0
          ~x:(float_of_int (Prng.int prng ~bound:side [ i; 1 ]))
          ~y:(float_of_int (Prng.int prng ~bound:side [ i; 2 ]))
          ~need:(float_of_int (30 + Prng.int prng ~bound:40 [ i; 3 ]))
          ~utility:0.
      else
        make ~key:i ~kind:1
          ~x:(float_of_int (Prng.int prng ~bound:side [ i; 4 ]))
          ~y:(float_of_int (Prng.int prng ~bound:side [ i; 5 ]))
          ~need:0.
          ~utility:(float_of_int (2 + Prng.int prng ~bound:8 [ i; 6 ])))

let simulation ~evaluator ~units =
  let prog = compile ~schema behaviour in
  let kind_ix = Schema.find schema "kind" in
  let need = Schema.find schema "need" and satisfy = Schema.find schema "satisfy" in
  (* need := clamp(0, 100, need - 2 + satisfaction); objects never change *)
  let open Expr in
  let post =
    Postprocess.make ~schema
      ~updates:
        [
          ( need,
            MinOf
              ( Const (Value.Float 100.),
                MaxOf
                  ( Const (Value.Float 0.),
                    Binop (Add, Binop (Sub, UAttr need, Const (Value.Float 2.)), EAttr satisfy) )
              ) );
        ]
      ~remove_when:(Const (Value.Bool false))
  in
  let config =
    {
      Simulation.prog;
      script_of =
        (fun u -> if Value.to_int (Tuple.get u kind_ix) = 0 then Some "sim_character" else None);
      postprocess = post;
      movement =
        Some
          {
            Movement.posx = Schema.find schema "posx";
            posy = Schema.find schema "posy";
            mvx = Schema.find schema "movevect_x";
            mvy = Schema.find schema "movevect_y";
            speed = 2.;
            speed_attr = None;
            width = 64;
            height = 64;
          };
      death = Simulation.Remove;
      seed = 11;
      optimize = true;
    }
  in
  Simulation.create config ~evaluator ~units

let mean_need sim =
  let kind_ix = Schema.find schema "kind" and need_ix = Schema.find schema "need" in
  let total = ref 0. and n = ref 0 in
  Array.iter
    (fun u ->
      if Value.to_int (Tuple.get u kind_ix) = 0 then begin
        total := !total +. Value.to_float (Tuple.get u need_ix);
        incr n
      end)
    (Simulation.units sim);
  !total /. float_of_int !n

let () =
  Fmt.pr "A household of Sims seeking the most satisfying object in reach.@.@.";
  let sim = simulation ~evaluator:Simulation.Indexed ~units:(build_household ~characters:30 ~objects:300) in
  Fmt.pr "%6s %18s@." "tick" "mean comfort need";
  for t = 0 to 40 do
    if t mod 8 = 0 then Fmt.pr "%6d %18.1f@." t (mean_need sim);
    Simulation.step sim
  done;
  Fmt.pr "@.The paper's bottleneck: tick cost as the room fills with objects@.";
  Fmt.pr "(100 characters, 10 ticks each):@.@.";
  Fmt.pr "%10s %14s %14s %10s@." "objects" "naive (s)" "indexed (s)" "speedup";
  List.iter
    (fun objects ->
      let time evaluator =
        let sim = simulation ~evaluator ~units:(build_household ~characters:100 ~objects) in
        let (), s = Timer.timed (fun () -> Simulation.run sim ~ticks:10) in
        s
      in
      let tn = time Simulation.Naive and ti = time Simulation.Indexed in
      Fmt.pr "%10d %14.4f %14.4f %9.1fx@." objects tn ti (tn /. ti))
    [ 250; 500; 1000; 2000; 4000 ];
  Fmt.pr "@.No feng shui meter required.@."
