(* The paper's introductory example (Section 1 and 3): units flee when the
   count of marching skeletons they can see exceeds their morale.

   Naively this is the O(n^2) pattern the paper opens with — every unit
   counts every skeleton.  The indexed engine shares one prefix-aggregate
   range tree across all units, turning the tick into O(n log n).  This
   example runs both engines on the same horde and reports that behaviour
   and timing diverge exactly as the paper promises.

   Run with:  dune exec examples/skeleton_fear.exe *)

open Sgl

let schema =
  Schema.create
    [
      Schema.attr "key" Value.TInt;
      Schema.attr "player" Value.TInt; (* 0 = villagers, 1 = skeletons *)
      Schema.attr "posx" Value.TFloat;
      Schema.attr "posy" Value.TFloat;
      Schema.attr "sight" Value.TFloat;
      Schema.attr "morale" Value.TInt;
      Schema.attr ~tag:Schema.Sum "movevect_x" Value.TFloat;
      Schema.attr ~tag:Schema.Sum "movevect_y" Value.TFloat;
    ]

let behaviour =
  {|
aggregate SkeletonsInSight(u) {
  count(*)
  where e.player = 1
    and e.posx >= u.posx - u.sight and e.posx <= u.posx + u.sight
    and e.posy >= u.posy - u.sight and e.posy <= u.posy + u.sight
}

aggregate SkeletonCentroid(u) {
  (avg(e.posx), avg(e.posy))
  where e.player = 1
    and e.posx >= u.posx - u.sight and e.posx <= u.posx + u.sight
    and e.posy >= u.posy - u.sight and e.posy <= u.posy + u.sight
  default (u.posx, u.posy)
}

action Flee(u, fx, fy) {
  on self { movevect_x <- u.posx - fx; movevect_y <- u.posy - fy; }
}

action March(u) {
  on self { movevect_x <- 0 - 1; movevect_y <- 0; }
}

script villager(u) {
  let c = SkeletonsInSight(u);
  if c > u.morale then {
    let sc = SkeletonCentroid(u);
    perform Flee(u, sc.x, sc.y);
  }
}

script skeleton(u) {
  perform March(u);
}
|}

let make ~key ~player ~x ~y ~morale =
  Tuple.of_list schema
    [
      Value.Int key; Value.Int player; Value.Float x; Value.Float y; Value.Float 12.;
      Value.Int morale; Value.Float 0.; Value.Float 0.;
    ]

let build_world n =
  (* villagers on the left, a skeleton horde marching in from the right *)
  let villagers =
    Array.init (n / 2) (fun i ->
        make ~key:i ~player:0
          ~x:(float_of_int (5 + (i mod 20)))
          ~y:(float_of_int (5 + (i / 20)))
          ~morale:(3 + (i mod 5)))
  in
  let skeletons =
    Array.init (n / 2) (fun i ->
        make ~key:(1000000 + i) ~player:1
          ~x:(float_of_int (40 + (i mod 20)))
          ~y:(float_of_int (5 + (i / 20)))
          ~morale:0)
  in
  Array.append villagers skeletons

let run ~evaluator ~n ~ticks =
  let prog = compile ~schema behaviour in
  let player_ix = Schema.find schema "player" in
  let config =
    {
      Simulation.prog;
      script_of =
        (fun u -> Some (if Value.to_int (Tuple.get u player_ix) = 0 then "villager" else "skeleton"));
      postprocess =
        Postprocess.make ~schema ~updates:[] ~remove_when:(Expr.Const (Value.Bool false));
      movement =
        Some
          {
            Movement.posx = Schema.find schema "posx";
            posy = Schema.find schema "posy";
            mvx = Schema.find schema "movevect_x";
            mvy = Schema.find schema "movevect_y";
            speed = 1.;
            speed_attr = None;
            width = 400;
            height = 200;
          };
      death = Simulation.Remove;
      seed = 7;
      optimize = true;
    }
  in
  let sim = Simulation.create config ~evaluator ~units:(build_world n) in
  let (), seconds = Timer.timed (fun () -> Simulation.run sim ~ticks) in
  (sim, seconds)

let mean_villager_x sim =
  let units = Simulation.units sim in
  let player_ix = Schema.find schema "player" and posx_ix = Schema.find schema "posx" in
  let sum = ref 0. and n = ref 0 in
  Array.iter
    (fun u ->
      if Value.to_int (Tuple.get u player_ix) = 0 then begin
        sum := !sum +. Value.to_float (Tuple.get u posx_ix);
        incr n
      end)
    units;
  !sum /. float_of_int !n

let () =
  Fmt.pr "The skeleton horde advances; villagers flee when the count in sight@.";
  Fmt.pr "exceeds their morale (the paper's introductory O(n^2) aggregate).@.@.";
  let sim, _ = run ~evaluator:Simulation.Indexed ~n:400 ~ticks:0 in
  let x0 = mean_villager_x sim in
  let sim, _ = run ~evaluator:Simulation.Indexed ~n:400 ~ticks:25 in
  let x1 = mean_villager_x sim in
  Fmt.pr "mean villager x before: %.1f   after 25 ticks: %.1f   (%s)@.@." x0 x1
    (if x1 < x0 then "they fled the horde" else "they held their ground");
  Fmt.pr "%-8s %12s %12s %8s@." "units" "naive (s)" "indexed (s)" "speedup";
  List.iter
    (fun n ->
      let _, t_naive = run ~evaluator:Simulation.Naive ~n ~ticks:10 in
      let _, t_indexed = run ~evaluator:Simulation.Indexed ~n ~ticks:10 in
      Fmt.pr "%-8d %12.3f %12.3f %7.1fx@." n t_naive t_indexed (t_naive /. t_indexed))
    [ 200; 400; 800; 1600 ]
