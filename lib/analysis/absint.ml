(* Interval abstract interpretation over SGL values.

   The domain is a reduced product across the four runtime types of
   [Value.t]: an integer interval, a float interval with an explicit
   may-be-nan flag, a pair of booleans (may-be-true / may-be-false) and a
   per-axis pair of float intervals for vectors.  A component being absent
   means "no concrete value of that type is possible here".

   Soundness contract (checked by the qcheck law in test_absint):
   whenever concrete evaluation of an expression succeeds, the resulting
   value is a member of the abstract result; and whenever the abstract
   evaluator reports "no error possible", concrete evaluation does not
   raise.  The converse directions are deliberately approximate.

   Two sharp edges shape the arithmetic:
   - OCaml ints wrap silently on overflow, so interval corner arithmetic
     is only valid for small magnitudes; anything near the 63-bit edge
     falls to top.  Likewise float<->int conversions are only exact below
     2^53, so float-derived int bounds are applied only in that range.
   - Float corner arithmetic is sound because the concrete operations are
     the same weakly monotone rounded IEEE ops, but nan can appear away
     from corners (inf - inf, 0 * inf, x / 0), so those cases are
     detected explicitly. *)

open Sgl_relalg
open Sgl_lang

(* ------------------------------------------------------------------ *)
(* Domain *)

type ibnd = Ninf | I of int | Pinf

(* Float axis: [lo, hi] plus a nan flag.  The numeric part is empty iff
   lo > hi (canonically lo = +inf, hi = -inf). *)
type axis = { lo : float; hi : float; nan : bool }

type t = {
  ints : (ibnd * ibnd) option;
  floats : axis option;
  btrue : bool;
  bfalse : bool;
  vec : (axis * axis) option;
}

let empty_axis = { lo = infinity; hi = neg_infinity; nan = false }
let full_axis = { lo = neg_infinity; hi = infinity; nan = true }
let axis_has_num a = a.lo <= a.hi
let axis_is_empty a = (not (axis_has_num a)) && not a.nan

let bot = { ints = None; floats = None; btrue = false; bfalse = false; vec = None }

let top =
  {
    ints = Some (Ninf, Pinf);
    floats = Some full_axis;
    btrue = true;
    bfalse = true;
    vec = Some (full_axis, full_axis);
  }

let is_bot v =
  v.ints = None
  && (match v.floats with None -> true | Some a -> axis_is_empty a)
  && (not v.btrue) && (not v.bfalse)
  && match v.vec with
     | None -> true
     | Some (x, y) -> axis_is_empty x || axis_is_empty y

let norm_axis a = if axis_is_empty a then None else Some a

let norm v =
  let floats = Option.bind v.floats norm_axis in
  let vec =
    match v.vec with
    | Some (x, y) when not (axis_is_empty x || axis_is_empty y) -> Some (x, y)
    | _ -> None
  in
  { v with floats; vec }

(* Bound helpers *)

let ib_to_f = function Ninf -> neg_infinity | I k -> float_of_int k | Pinf -> infinity
let ib_le a b = ib_to_f a <= ib_to_f b
let ib_min a b = if ib_le a b then a else b
let ib_max a b = if ib_le a b then b else a

(* Magnitude guards against silent int wrap-around: corner arithmetic on
   bounds within [small] cannot overflow for +/-, within [sm31] for *. *)
let small k = k > -(1 lsl 61) && k < 1 lsl 61
let sm31 k = k > -(1 lsl 31) && k < 1 lsl 31

(* float -> int bound conversion, only in the range where float<->int
   round-trips are exact (|v| < 2^52). *)
let ib_lower_of_float v =
  if v = neg_infinity then Some Ninf
  else if Float.abs v <= 4.5e15 then Some (I (int_of_float (Float.ceil v)))
  else None

let ib_upper_of_float v =
  if v = infinity then Some Pinf
  else if Float.abs v <= 4.5e15 then Some (I (int_of_float (Float.floor v)))
  else None

let of_value (v : Value.t) : t =
  match v with
  | Value.Int k -> { bot with ints = Some (I k, I k) }
  | Value.Float f ->
    if Float.is_nan f then { bot with floats = Some { empty_axis with nan = true } }
    else { bot with floats = Some { lo = f; hi = f; nan = false } }
  | Value.Bool b -> { bot with btrue = b; bfalse = not b }
  | Value.Vec { Sgl_util.Vec2.x; y } ->
    let ax f =
      if Float.is_nan f then { empty_axis with nan = true } else { lo = f; hi = f; nan = false }
    in
    { bot with vec = Some (ax x, ax y) }

let join_axis a b =
  { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi; nan = a.nan || b.nan }

let opt_join j a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (j a b)

let join a b =
  norm
    {
      ints = opt_join (fun (lo1, hi1) (lo2, hi2) -> (ib_min lo1 lo2, ib_max hi1 hi2)) a.ints b.ints;
      floats = opt_join join_axis a.floats b.floats;
      btrue = a.btrue || b.btrue;
      bfalse = a.bfalse || b.bfalse;
      vec = opt_join (fun (x1, y1) (x2, y2) -> (join_axis x1 x2, join_axis y1 y2)) a.vec b.vec;
    }

let axis_mem f a = if Float.is_nan f then a.nan else a.lo <= f && f <= a.hi

let mem (v : Value.t) (d : t) : bool =
  match v with
  | Value.Int k -> (
    match d.ints with
    | None -> false
    | Some (lo, hi) -> ib_to_f lo <= float_of_int k && float_of_int k <= ib_to_f hi)
  | Value.Float f -> ( match d.floats with None -> false | Some a -> axis_mem f a)
  | Value.Bool b -> if b then d.btrue else d.bfalse
  | Value.Vec { Sgl_util.Vec2.x; y } -> (
    match d.vec with None -> false | Some (ax, ay) -> axis_mem x ax && axis_mem y ay)

(* [singleton d] is the unique concrete value [d] denotes, if any.  Float
   singletons require bit equality of the bounds so that folding to the
   constant can never change results (e.g. -0. vs 0.). *)
let singleton (d : t) : Value.t option =
  let no_bool = (not d.btrue) && not d.bfalse in
  let no_float = match d.floats with None -> true | Some a -> axis_is_empty a in
  let no_vec = d.vec = None in
  match d.ints with
  | Some (I lo, I hi) when lo = hi && no_bool && no_float && no_vec -> Some (Value.Int lo)
  | Some _ -> None
  | None -> (
    match d.floats with
    | Some { lo; hi; nan = false }
      when Int64.equal (Int64.bits_of_float lo) (Int64.bits_of_float hi) && no_bool && no_vec ->
      Some (Value.Float lo)
    | Some _ -> None
    | None ->
      if no_vec && d.btrue && not d.bfalse then Some (Value.Bool true)
      else if no_vec && d.bfalse && not d.btrue then Some (Value.Bool false)
      else None)

(* Numeric view: ints and floats merged into one float axis, the order
   [Value.compare_num] actually compares in.  float_of_int is monotone,
   so widening int bounds into floats is sound. *)
let num_view (d : t) : axis =
  let from_ints =
    match d.ints with
    | None -> empty_axis
    | Some (lo, hi) -> { lo = ib_to_f lo; hi = ib_to_f hi; nan = false }
  in
  match d.floats with None -> from_ints | Some a -> join_axis from_ints a

let num_bounds (d : t) : (float * float) option =
  let a = num_view d in
  if axis_has_num a then Some (a.lo, a.hi) else None

let may_nan (d : t) : bool =
  (match d.floats with Some a -> a.nan | None -> false)
  || match d.vec with Some (x, y) -> x.nan || y.nan | None -> false

(* ------------------------------------------------------------------ *)
(* Integer interval arithmetic *)

let iadd (lo1, hi1) (lo2, hi2) =
  let lo =
    match (lo1, lo2) with
    | Ninf, _ | _, Ninf -> Ninf
    | Pinf, _ | _, Pinf -> Pinf
    | I x, I y -> if small x && small y then I (x + y) else Ninf
  in
  let hi =
    match (hi1, hi2) with
    | Pinf, _ | _, Pinf -> Pinf
    | Ninf, _ | _, Ninf -> Ninf
    | I x, I y -> if small x && small y then I (x + y) else Pinf
  in
  (lo, hi)

let ineg (lo, hi) =
  let neg_b = function
    | Ninf -> Some Pinf
    | Pinf -> Some Ninf
    | I k -> if small k then Some (I (-k)) else None
  in
  match (neg_b hi, neg_b lo) with
  | Some l, Some h -> (l, h)
  | _ -> (Ninf, Pinf)

let isub a b = iadd a (ineg b)

let imul (lo1, hi1) (lo2, hi2) =
  let all_small = List.for_all (function I k -> sm31 k | _ -> false) [ lo1; hi1; lo2; hi2 ] in
  if not all_small then
    if lo1 = I 0 && hi1 = I 0 then (I 0, I 0)
    else if lo2 = I 0 && hi2 = I 0 then (I 0, I 0)
    else if lo1 = I 1 && hi1 = I 1 then (lo2, hi2)
    else if lo2 = I 1 && hi2 = I 1 then (lo1, hi1)
    else (Ninf, Pinf)
  else
    let prods =
      List.concat_map
        (fun a -> List.map (fun b -> match (a, b) with I x, I y -> x * y | _ -> 0) [ lo2; hi2 ])
        [ lo1; hi1 ]
    in
    let lo = List.fold_left min (List.hd prods) (List.tl prods) in
    let hi = List.fold_left max (List.hd prods) (List.tl prods) in
    (I lo, I hi)

(* Integer division x / y with OCaml truncation toward zero.  Returns the
   result interval (None when the divisor is exactly {0}, i.e. a definite
   raise) and whether 0 may be in the divisor (a possible raise). *)
let idiv (lo1, hi1) (lo2, hi2) : (ibnd * ibnd) option * bool =
  let may_zero = ib_to_f lo2 <= 0. && 0. <= ib_to_f hi2 in
  let x_small = match (lo1, hi1) with I a, I b -> small a && small b | _ -> false in
  let div_part (dl, dh) : (ibnd * ibnd) option =
    if ib_to_f dl > ib_to_f dh then None
    else if not x_small then Some (Ninf, Pinf)
    else
      (* For a fixed small x, x/y is extremal at the divisor's finite
         ends and tends to 0 as |y| grows, so an infinite end contributes
         the corner candidate 0. *)
      let ends = List.filter_map (function I k when k <> 0 -> Some k | _ -> None) [ dl; dh ] in
      let qs0 = if List.exists (function Ninf | Pinf -> true | _ -> false) [ dl; dh ] then [ 0 ] else [] in
      let xs = match (lo1, hi1) with I a, I b -> [ a; b ] | _ -> [] in
      let qs = qs0 @ List.concat_map (fun x -> List.map (fun y -> x / y) ends) xs in
      match qs with
      | [] -> Some (Ninf, Pinf)
      | q :: rest ->
        let lo = List.fold_left min q rest and hi = List.fold_left max q rest in
        Some (I lo, I hi)
  in
  let pos = div_part (ib_max lo2 (I 1), hi2) in
  let neg = div_part (lo2, ib_min hi2 (I (-1))) in
  match (pos, neg) with
  | None, None -> (None, may_zero)
  | Some p, None | None, Some p -> (Some p, may_zero)
  | Some (l1, h1), Some (l2, h2) -> (Some (ib_min l1 l2, ib_max h1 h2), may_zero)

(* Euclidean mod: the result is always in [0, |y| - 1].  Returns None
   when the divisor is exactly {0}. *)
let imod ((lo2, hi2) : ibnd * ibnd) : (ibnd * ibnd) option * bool =
  let may_zero = ib_to_f lo2 <= 0. && 0. <= ib_to_f hi2 in
  if lo2 = I 0 && hi2 = I 0 then (None, true)
  else
    let maxabs =
      match (lo2, hi2) with
      | I a, I b when small a && small b -> I (max (abs a) (abs b) - 1)
      | _ -> Pinf
    in
    (Some (I 0, maxabs), may_zero)

(* ------------------------------------------------------------------ *)
(* Float interval arithmetic *)

let contains0 a = axis_has_num a && a.lo <= 0. && 0. <= a.hi
let has_inf a = axis_has_num a && (a.lo = neg_infinity || a.hi = infinity)

(* Corner evaluation for a weakly monotone rounded op.  Corners producing
   nan set the nan flag; operand nan always propagates. *)
let corners2 (f : float -> float -> float) a b =
  if not (axis_has_num a && axis_has_num b) then { empty_axis with nan = a.nan || b.nan }
  else begin
    let lo = ref infinity and hi = ref neg_infinity and nan = ref (a.nan || b.nan) in
    List.iter
      (fun x ->
        List.iter
          (fun y ->
            let v = f x y in
            if Float.is_nan v then nan := true
            else begin
              if v < !lo then lo := v;
              if v > !hi then hi := v
            end)
          [ b.lo; b.hi ])
      [ a.lo; a.hi ];
    { lo = !lo; hi = !hi; nan = !nan }
  end

let fadd = corners2 ( +. )
let fsub = corners2 ( -. )

let fmul a b =
  let r = corners2 ( *. ) a b in
  (* 0 * inf = nan can hide away from corners (0 interior to one side). *)
  if (contains0 a && has_inf b) || (contains0 b && has_inf a) then { r with nan = true } else r

let fdiv a b =
  if not (axis_has_num a && axis_has_num b) then { empty_axis with nan = a.nan || b.nan }
  else if contains0 b then full_axis (* x /. 0. = ±inf, 0. /. 0. = nan *)
  else
    let r = corners2 ( /. ) a b in
    if has_inf a && has_inf b then { r with nan = true } else r

let fneg a = if not (axis_has_num a) then a else { lo = -.a.hi; hi = -.a.lo; nan = a.nan }

let fabs a =
  if not (axis_has_num a) then a
  else if a.lo >= 0. then a
  else if a.hi <= 0. then { lo = -.a.hi; hi = -.a.lo; nan = a.nan }
  else { lo = 0.; hi = Float.max (-.a.lo) a.hi; nan = a.nan }

let fsqrt a =
  if not (axis_has_num a) then a
  else
    let nan = a.nan || a.lo < 0. in
    if a.hi < 0. then { empty_axis with nan }
    else { lo = sqrt (Float.max 0. a.lo); hi = sqrt a.hi; nan }

(* ------------------------------------------------------------------ *)
(* Abstract expression evaluation *)

type alarm = Div_by_zero | Sqrt_neg

type ctx = { u : int -> t; e : (int -> t) option }

let int_top = { bot with ints = Some (Ninf, Pinf) }
let float_top = { bot with floats = Some full_axis }
let bool_top = { bot with btrue = true; bfalse = true }
let vec_top = { bot with vec = Some (full_axis, full_axis) }

let of_axis a = norm { bot with floats = Some a }

let has_ints d = d.ints <> None
let has_floats d = match d.floats with Some a -> not (axis_is_empty a) | None -> false
let has_bool d = d.btrue || d.bfalse
let has_vec d = d.vec <> None
let has_num d = has_ints d || has_floats d
let only_num d = (not (has_bool d)) && not (has_vec d)
let only_int d = has_ints d && (not (has_floats d)) && only_num d

let typed_top (ty : Value.ty) : t =
  match ty with
  | Value.TInt -> int_top
  | Value.TFloat -> float_top
  | Value.TBool -> bool_top
  | Value.TVec -> vec_top

(* Possible outcomes of [Float.compare (to_float a) (to_float b)] over
   numeric views, with nan ordered below all numbers and equal to
   itself: (may_lt, may_eq, may_gt). *)
let orderings (a : axis) (b : axis) : bool * bool * bool =
  let may_lt = ref false and may_eq = ref false and may_gt = ref false in
  if a.nan && b.nan then may_eq := true;
  if a.nan && axis_has_num b then may_lt := true;
  if b.nan && axis_has_num a then may_gt := true;
  if axis_has_num a && axis_has_num b then begin
    if a.lo < b.hi then may_lt := true;
    if a.hi > b.lo then may_gt := true;
    if a.lo <= b.hi && b.lo <= a.hi then may_eq := true;
    (* Float.compare distinguishes -0. from 0. while the interval cannot:
       a shared singleton 0 may still order either way. *)
    if a.lo = a.hi && b.lo = b.hi && a.lo = b.lo && a.lo = 0. then begin
      may_lt := true;
      may_gt := true
    end
  end;
  (!may_lt, !may_eq, !may_gt)

let bool_abs may_t may_f = { bot with btrue = may_t; bfalse = may_f }

(* Abstract [Value.equal] (total, never raises). *)
let abs_equal (a : t) (b : t) : t =
  let may_true =
    (let va = num_view a and vb = num_view b in
     axis_has_num va && axis_has_num vb && va.lo <= vb.hi && vb.lo <= va.hi)
    || (a.btrue && b.btrue) || (a.bfalse && b.bfalse)
    || (match (a.vec, b.vec) with
       | Some (x1, y1), Some (x2, y2) ->
         x1.lo <= x2.hi && x2.lo <= x1.hi && y1.lo <= y2.hi && y2.lo <= y1.hi
       | _ -> false)
  in
  let may_false =
    (match (singleton a, singleton b) with
    | Some va, Some vb -> not (Value.equal va vb)
    | _ -> true)
    || may_nan a || may_nan b
  in
  bool_abs may_true may_false

(* Clamp the numeric parts from above / below (min/max, refinement). *)
let clamp_hi (d : t) (cap : float) : t =
  let ints =
    Option.map
      (fun (lo, hi) ->
        match ib_upper_of_float cap with Some b -> (lo, ib_min hi b) | None -> (lo, hi))
      d.ints
  in
  let floats = Option.map (fun a -> { a with hi = Float.min a.hi cap }) d.floats in
  norm { d with ints; floats }

let clamp_lo (d : t) (floor : float) : t =
  let ints =
    Option.map
      (fun (lo, hi) ->
        match ib_lower_of_float floor with Some b -> (ib_max lo b, hi) | None -> (lo, hi))
      d.ints
  in
  let floats = Option.map (fun a -> { a with lo = Float.max a.lo floor }) d.floats in
  norm { d with ints; floats }

let abs_binop ~raise_alarm (op : Expr.binop) ~(square : bool) (va : t) (vb : t) : t * bool =
  let ii f = match (va.ints, vb.ints) with Some a, Some b -> Some (f a b) | _ -> None in
  (* Float part of a numeric mix: any int/float combination involving at
     least one float operand. *)
  let float_mix f =
    if (has_floats va && has_num vb) || (has_floats vb && has_num va) then
      norm_axis (f (num_view va) (num_view vb))
    else None
  in
  let addsub iop fop =
    let ints = ii iop in
    let floats = float_mix fop in
    let vec =
      match (va.vec, vb.vec) with
      | Some (x1, y1), Some (x2, y2) -> Some (fop x1 x2, fop y1 y2)
      | _ -> None
    in
    let ok = (has_num va && has_num vb) || (has_vec va && has_vec vb) in
    let err =
      has_bool va || has_bool vb || (has_vec va && has_num vb) || (has_num va && has_vec vb)
    in
    if ok then (norm { bot with ints; floats; vec }, err) else (bot, true)
  in
  match op with
  | Expr.Add -> addsub iadd fadd
  | Expr.Sub -> addsub isub fsub
  | Expr.Mul ->
    let ints =
      let r = ii imul in
      if square then
        (* x * x >= 0 when the multiplication cannot wrap *)
        Option.map
          (fun (lo, hi) ->
            match va.ints with
            | Some (I a, I b) when sm31 a && sm31 b -> (ib_max lo (I 0), hi)
            | _ -> (lo, hi))
          r
      else r
    in
    let floats =
      let r = float_mix fmul in
      if square then
        Option.map (fun a -> if axis_has_num a then { a with lo = Float.max a.lo 0. } else a) r
      else r
    in
    let vec =
      let parts =
        (match (va.vec, has_num vb) with
        | Some (x, y), true ->
          let k = num_view vb in
          [ (fmul k x, fmul k y) ]
        | _ -> [])
        @
        match (vb.vec, has_num va) with
        | Some (x, y), true ->
          let k = num_view va in
          [ (fmul k x, fmul k y) ]
        | _ -> []
      in
      match parts with
      | [] -> None
      | [ p ] -> Some p
      | (x1, y1) :: rest ->
        Some
          (List.fold_left
             (fun (x, y) (x', y') -> (join_axis x x', join_axis y y'))
             (x1, y1) rest)
    in
    let ok =
      (has_num va && has_num vb) || (has_vec va && has_num vb) || (has_num va && has_vec vb)
    in
    let err = has_bool va || has_bool vb || (has_vec va && has_vec vb) in
    if ok then (norm { bot with ints; floats; vec }, err) else (bot, true)
  | Expr.Div ->
    let ints, int_zero =
      match (va.ints, vb.ints) with
      | Some a, Some b -> idiv a b
      | _ -> (None, false)
    in
    if has_ints va && has_ints vb && int_zero then raise_alarm Div_by_zero;
    let floats = float_mix fdiv in
    let vec, vec_zero =
      match (va.vec, has_num vb) with
      | Some (x, y), true ->
        let k = num_view vb in
        let mz = contains0 k in
        if k.lo = 0. && k.hi = 0. && not k.nan then (None, true)
        else (Some (fdiv x k, fdiv y k), mz)
      | _ -> (None, false)
    in
    if has_vec va && has_num vb && vec_zero then raise_alarm Div_by_zero;
    let ok = (has_num va && has_num vb) || (has_vec va && has_num vb) in
    let err =
      has_bool va || has_bool vb || has_vec vb
      || (has_ints va && has_ints vb && int_zero)
      || (has_vec va && vec_zero)
    in
    if ok then (norm { bot with ints; floats; vec }, err) else (bot, true)
  | Expr.Mod ->
    (* Both operands must be Int at runtime. *)
    let ints, mz = match vb.ints with Some b -> imod b | None -> (None, false) in
    if has_ints va && has_ints vb then begin
      if mz then raise_alarm Div_by_zero;
      let definitely_ints = only_int va && only_int vb in
      match ints with
      | Some r -> ({ bot with ints = Some r }, mz || not definitely_ints)
      | None -> (bot, true)
    end
    else (bot, true)

let abs_cmp (op : Expr.cmpop) (va : t) (vb : t) : t * bool =
  match op with
  | Expr.Eq -> (abs_equal va vb, false)
  | Expr.Ne ->
    let e = abs_equal va vb in
    (bool_abs e.bfalse e.btrue, false)
  | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge ->
    (* compare_num raises on bool/vec operands *)
    let err = has_bool va || has_vec va || has_bool vb || has_vec vb in
    let a = num_view va and b = num_view vb in
    if (axis_has_num a || a.nan) && (axis_has_num b || b.nan) then begin
      let lt, eq, gt = orderings a b in
      let mt, mf =
        match op with
        | Expr.Lt -> (lt, eq || gt)
        | Expr.Le -> (lt || eq, gt)
        | Expr.Gt -> (gt, lt || eq)
        | Expr.Ge -> (gt || eq, lt)
        | Expr.Eq | Expr.Ne -> assert false
      in
      (bool_abs mt mf, err)
    end
    else (bot, true)

let rec eval ?(alarm : (alarm -> unit) option) (ctx : ctx) (expr : Expr.t) : t * bool =
  let ev e = eval ?alarm ctx e in
  let raise_alarm a = match alarm with Some f -> f a | None -> () in
  match expr with
  | Expr.Const v -> (of_value v, false)
  | Expr.UAttr i -> (ctx.u i, false)
  | Expr.EAttr i -> (
    match ctx.e with None -> (bot, true) | Some e -> (e i, false))
  | Expr.Binop (op, a, b) ->
    let va, ea = ev a and vb, eb = ev b in
    if is_bot va || is_bot vb then (bot, true)
    else
      let v, e_op = abs_binop ~raise_alarm op ~square:(op = Expr.Mul && a = b) va vb in
      (v, ea || eb || e_op)
  | Expr.Cmp (op, a, b) ->
    let va, ea = ev a and vb, eb = ev b in
    if is_bot va || is_bot vb then (bot, true)
    else
      let v, e_op = abs_cmp op va vb in
      (v, ea || eb || e_op)
  | Expr.And (a, b) ->
    let va, ea = ev a in
    let err_a = ea || has_num va || has_vec va in
    if not va.btrue then (bool_abs false va.bfalse, err_a)
    else
      let vb, eb = ev b in
      let err_b = eb || has_num vb || has_vec vb in
      (bool_abs (va.btrue && vb.btrue) (va.bfalse || vb.bfalse), err_a || err_b)
  | Expr.Or (a, b) ->
    let va, ea = ev a in
    let err_a = ea || has_num va || has_vec va in
    if not va.bfalse then (bool_abs va.btrue false, err_a)
    else
      let vb, eb = ev b in
      let err_b = eb || has_num vb || has_vec vb in
      (bool_abs (va.btrue || vb.btrue) (va.bfalse && vb.bfalse), err_a || err_b)
  | Expr.Not a ->
    let va, ea = ev a in
    (bool_abs va.bfalse va.btrue, ea || has_num va || has_vec va)
  | Expr.Neg a ->
    let va, ea = ev a in
    let ints = Option.map ineg va.ints in
    let floats = Option.map fneg va.floats in
    let vec = Option.map (fun (x, y) -> (fneg x, fneg y)) va.vec in
    (norm { bot with ints; floats; vec }, ea || has_bool va)
  | Expr.VecOf (a, b) ->
    let va, ea = ev a and vb, eb = ev b in
    let err = ea || eb || has_bool va || has_vec va || has_bool vb || has_vec vb in
    if has_num va && has_num vb then ({ bot with vec = Some (num_view va, num_view vb) }, err)
    else (bot, true)
  | Expr.VecX a ->
    let va, ea = ev a in
    let err = ea || has_num va || has_bool va in
    (match va.vec with Some (x, _) -> (of_axis x, err) | None -> (bot, true))
  | Expr.VecY a ->
    let va, ea = ev a in
    let err = ea || has_num va || has_bool va in
    (match va.vec with Some (_, y) -> (of_axis y, err) | None -> (bot, true))
  | Expr.Abs a ->
    let va, ea = ev a in
    let err = ea || has_bool va || has_vec va in
    let ints =
      Option.map
        (fun (lo, hi) ->
          match (lo, hi) with
          | I l, I h when small l && small h ->
            if l >= 0 then (I l, I h)
            else if h <= 0 then (I (-h), I (-l))
            else (I 0, I (max (-l) h))
          | _ -> (Ninf, Pinf) (* abs min_int wraps negative *))
        va.ints
    in
    let floats = Option.map fabs va.floats in
    if has_num va then (norm { bot with ints; floats }, err) else (bot, true)
  | Expr.Sqrt a ->
    let va, ea = ev a in
    let err = ea || has_bool va || has_vec va in
    if has_num va || may_nan va then begin
      let view = num_view va in
      if view.nan || view.lo < 0. then raise_alarm Sqrt_neg;
      (of_axis (fsqrt view), err)
    end
    else (bot, true)
  | Expr.MinOf (a, b) ->
    let va, ea = ev a and vb, eb = ev b in
    let err = ea || eb || has_bool va || has_vec va || has_bool vb || has_vec vb in
    let num_a = has_num va || may_nan va and num_b = has_num vb || may_nan vb in
    if num_a && num_b then begin
      let strip d = { d with btrue = false; bfalse = false; vec = None } in
      let j = join (strip va) (strip vb) in
      (* The result is one operand; nan is below all numbers, so even a
         nan pick respects the numeric cap min(hi_a, hi_b). *)
      let j = clamp_hi j (Float.min (num_view va).hi (num_view vb).hi) in
      (j, err)
    end
    else (bot, true)
  | Expr.MaxOf (a, b) ->
    let va, ea = ev a and vb, eb = ev b in
    let err = ea || eb || has_bool va || has_vec va || has_bool vb || has_vec vb in
    let num_a = has_num va || may_nan va and num_b = has_num vb || may_nan vb in
    if num_a && num_b then begin
      let strip d = { d with btrue = false; bfalse = false; vec = None } in
      let j = join (strip va) (strip vb) in
      (* The floor max(lo_a, lo_b) only holds when neither side can be
         nan: a nan operand makes max return the other side unchanged. *)
      let j =
        if may_nan va || may_nan vb then j
        else clamp_lo j (Float.max (num_view va).lo (num_view vb).lo)
      in
      (j, err)
    end
    else (bot, true)
  | Expr.Random a ->
    let va, ea = ev a in
    let err = ea || has_bool va || has_vec va in
    if has_num va || may_nan va then (int_top, err) else (bot, true)

(* ------------------------------------------------------------------ *)
(* Aggregate result intervals *)

(* Outward relative widening absorbing the different summation orders of
   the naive vs indexed evaluators (avg and stddev divide accumulated
   rounded sums). *)
let widen_lo v = if Float.is_finite v then v -. (Float.abs v *. 1e-6) -. Float.min_float else v
let widen_hi v = if Float.is_finite v then v +. (Float.abs v *. 1e-6) +. Float.min_float else v

(* Accumulated float sums can overflow to infinity only when individual
   magnitudes approach max_float / count; below this threshold any
   physically realizable unit count keeps the accumulator finite. *)
let acc_overflows v = Float.abs v > 1e140

let eval_aggregate ?alarm ~(ctx : ctx) ~(eenv : int -> t) (agg : Aggregate.t) : t * bool =
  let body_ctx = { ctx with e = Some eenv } in
  let ev_body e = eval ?alarm body_ctx e in
  let ev_outer e = eval ?alarm ctx e in
  let where_err =
    List.fold_left
      (fun acc c ->
        let v, e = ev_body c in
        acc || e || has_num v || has_vec v)
      false
      (Predicate.conjuncts agg.Aggregate.where_)
  in
  let eval_kind (k : Aggregate.kind) : t * bool =
    match k with
    | Aggregate.Count -> ({ bot with ints = Some (I 0, Pinf) }, false)
    | Aggregate.Sum e ->
      let v, err = ev_body e in
      let err = err || has_bool v || has_vec v in
      let x = num_view v in
      if axis_has_num x || x.nan then begin
        (* The empty sum is 0.  Rounded addition of same-sign values is
           monotone, so a one-sided sign bound survives summation; mixed
           signs lose both bounds and (via overflow in both directions)
           may produce nan. *)
        let lo = if axis_has_num x && x.lo >= 0. then 0. else neg_infinity in
        let hi = if axis_has_num x && x.hi <= 0. then 0. else infinity in
        let nan = x.nan || (lo = neg_infinity && hi = infinity) in
        (of_axis { lo; hi; nan }, err)
      end
      else (bot, true)
    | Aggregate.Avg e ->
      let v, err = ev_body e in
      let err = err || has_bool v || has_vec v in
      let x = num_view v in
      if axis_has_num x || x.nan then
        let lo = if acc_overflows x.lo then neg_infinity else widen_lo x.lo in
        let hi = if acc_overflows x.hi then infinity else widen_hi x.hi in
        let nan = x.nan || (lo = neg_infinity && hi = infinity) in
        (of_axis { lo; hi; nan }, err)
      else (bot, true)
    | Aggregate.Std_dev e ->
      let v, err = ev_body e in
      let err = err || has_bool v || has_vec v in
      let x = num_view v in
      if axis_has_num x || x.nan then
        (* stddev <= spread of the values; the slack term absorbs the
           catastrophic cancellation in s2/n - mean^2 (relative to the
           magnitude of the values, not the spread). *)
        let maxabs = Float.max (Float.abs x.lo) (Float.abs x.hi) in
        let hi =
          if acc_overflows maxabs || not (Float.is_finite maxabs) then infinity
          else widen_hi ((x.hi -. x.lo) +. (maxabs *. 1e-3))
        in
        (of_axis { lo = 0.; hi; nan = x.nan || hi = infinity }, err)
      else (bot, true)
    | Aggregate.Min_agg e | Aggregate.Max_agg e ->
      let v, err = ev_body e in
      let err = err || has_bool v || has_vec v in
      let x = num_view v in
      if axis_has_num x || x.nan then (of_axis x, err) else (bot, true)
    | Aggregate.Arg_min { objective; result } | Aggregate.Arg_max { objective; result } ->
      let vo, eo = ev_body objective in
      let vr, er = ev_body result in
      (vr, eo || er || has_bool vo || has_vec vo)
    | Aggregate.Nearest { ex; ey; ux; uy; result } ->
      let ve1, e1 = ev_body ex and ve2, e2 = ev_body ey in
      let vu1, e3 = ev_outer ux and vu2, e4 = ev_outer uy in
      let coord_err v = has_bool v || has_vec v in
      let vr, er = ev_body result in
      ( vr,
        e1 || e2 || e3 || e4 || er || coord_err ve1 || coord_err ve2 || coord_err vu1
        || coord_err vu2 )
  in
  let default_val, default_err =
    match agg.Aggregate.default with
    | None -> (bot, true) (* an empty selection raises *)
    | Some d -> ev_outer d
  in
  match agg.Aggregate.kinds with
  | [ k ] ->
    let v, err = eval_kind k in
    (join v default_val, where_err || err || default_err)
  | [ k1; k2 ] ->
    let v1, err1 = eval_kind k1 and v2, err2 = eval_kind k2 in
    let a1 = num_view v1 and a2 = num_view v2 in
    let pair_err = has_bool v1 || has_vec v1 || has_bool v2 || has_vec v2 in
    let vec_val =
      if (axis_has_num a1 || a1.nan) && (axis_has_num a2 || a2.nan) then
        { bot with vec = Some (a1, a2) }
      else bot
    in
    (join vec_val default_val, where_err || err1 || err2 || pair_err || default_err)
  | _ -> (top, true)

(* ------------------------------------------------------------------ *)
(* Environments *)

let of_range (ty : Value.ty) ((lo, hi) : float * float) : t =
  match ty with
  | Value.TInt ->
    let b_lo = Option.value (ib_lower_of_float lo) ~default:Ninf in
    let b_hi = Option.value (ib_upper_of_float hi) ~default:Pinf in
    { bot with ints = Some (b_lo, b_hi) }
  | Value.TFloat -> { bot with floats = Some { lo; hi; nan = false } }
  | Value.TVec -> { bot with vec = Some ({ lo; hi; nan = false }, { lo; hi; nan = false }) }
  | Value.TBool -> bool_top

(* Abstract store for the schema attributes.  [trust_ranges] decides
   whether declared ranges (and declared types) are believed: the lint /
   certificate side trusts them — they are the documented contract —
   while the engine-side folding oracles do not, because tests may build
   stores whose tuples violate the declarations, and a misfolded kernel
   would corrupt execution rather than just mis-lint. *)
let schema_env ~trust_ranges (schema : Schema.t) : int -> t =
  let n = Schema.arity schema in
  let slots =
    Array.init n (fun i ->
        if not trust_ranges then top
        else
          match Schema.range_at schema i with
          | Some r -> of_range (Schema.ty_at schema i) r
          | None -> typed_top (Schema.ty_at schema i))
  in
  fun i -> if i >= 0 && i < n then slots.(i) else top

(* Flat register map for a script: walk the body in program order and
   join the abstract value of every Let/Let_agg into its slot (slot =
   arity + let depth).  Position-independent, hence valid for plans the
   optimizer has sunk: sinking never moves a binder below a use of its
   slot. *)
let script_env ~(senv : int -> t) (prog : Core_ir.program) (s : Core_ir.script) : int -> t =
  let arity = Schema.arity prog.Core_ir.schema in
  let regs : (int, t) Hashtbl.t = Hashtbl.create 16 in
  let lookup i =
    if i < arity then senv i
    else match Hashtbl.find_opt regs i with Some v -> v | None -> top
  in
  let ctx = { u = lookup; e = None } in
  let bind slot v =
    let v' = match Hashtbl.find_opt regs slot with Some old -> join old v | None -> v in
    Hashtbl.replace regs slot v'
  in
  let rec go depth (a : Core_ir.t) =
    match a with
    | Core_ir.Skip | Core_ir.Effects _ -> ()
    | Core_ir.Let (e, k) ->
      let v, _ = eval ctx e in
      bind (arity + depth) v;
      go (depth + 1) k
    | Core_ir.Let_agg (i, k) ->
      let agg = prog.Core_ir.aggregates.(i) in
      let v, _ = eval_aggregate ~ctx ~eenv:senv agg in
      bind (arity + depth) v;
      go (depth + 1) k
    | Core_ir.Seq (a, b) ->
      go depth a;
      go depth b
    | Core_ir.If (_, a, b) ->
      go depth a;
      go depth b
  in
  go 0 s.Core_ir.body;
  lookup

(* ------------------------------------------------------------------ *)
(* Oracles for the optimizer *)

type oracle = {
  prove : string -> Expr.t -> bool option;
  fold : string -> Expr.t -> Value.t option;
}

let no_oracle = { prove = (fun _ _ -> None); fold = (fun _ _ -> None) }

let make_oracle ?(trust_ranges = false) (prog : Core_ir.program) : oracle =
  let senv = schema_env ~trust_ranges prog.Core_ir.schema in
  let envs : (string, int -> t) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun s -> Hashtbl.replace envs s.Core_ir.name (script_env ~senv prog s))
    prog.Core_ir.scripts;
  let env_of script =
    match Hashtbl.find_opt envs script with Some e -> e | None -> fun _ -> top
  in
  (* Both oracles bail on expressions mentioning e: those run under
     varying environment tuples (or raise with e = None), so no
     script-level fact about them is meaningful.  Random is fine: the
     per-tick PRNG is a pure function of its index, so skipping the call
     is unobservable. *)
  let prove script e =
    if Expr.mentions_e e then None
    else
      let v, err = eval { u = env_of script; e = None } e in
      if err then None
      else
        match singleton v with
        | Some (Value.Bool b) -> Some b
        | _ -> None
  in
  let fold script e =
    if Expr.mentions_e e then None
    else
      let v, err = eval { u = env_of script; e = None } e in
      if err then None else singleton v
  in
  { prove; fold }

(* ------------------------------------------------------------------ *)
(* Path-sensitive analysis: refinement, diagnostics, and site maps *)

module IMap = Map.Make (Int)

type info = {
  info_script : string;
  effect_sites : (Core_ir.effect_clause * (int -> t)) list;
  agg_sites : (int * (int -> t)) list;
  diags : Diagnostic.t list;
}

let negate_cmp = function
  | Expr.Eq -> Expr.Ne
  | Expr.Ne -> Expr.Eq
  | Expr.Lt -> Expr.Ge
  | Expr.Le -> Expr.Gt
  | Expr.Gt -> Expr.Le
  | Expr.Ge -> Expr.Lt

let flip_cmp = function
  | Expr.Eq -> Expr.Eq
  | Expr.Ne -> Expr.Ne
  | Expr.Lt -> Expr.Gt
  | Expr.Le -> Expr.Ge
  | Expr.Gt -> Expr.Lt
  | Expr.Ge -> Expr.Le

(* Narrow the abstract value [d] of a slot known to satisfy
   [slot `op` rhs].  An ordering comparison reaching its branch implies
   compare_num did not raise, so the slot was numeric; nan handling
   follows Float.compare's total order (nan below all numbers). *)
let narrow_by_cmp (d : t) (op : Expr.cmpop) (rhs : t) : t =
  let r = num_view rhs in
  if (not (axis_has_num r)) || r.nan then d
  else
    let numeric_only = { d with btrue = false; bfalse = false; vec = None } in
    match op with
    | Expr.Ge | Expr.Gt ->
      (* nan >= number is false, so a true branch also rules out nan *)
      let d = clamp_lo numeric_only r.lo in
      { d with floats = Option.map (fun a -> { a with nan = false }) d.floats }
    | Expr.Le | Expr.Lt ->
      (* nan <= number is true: nan survives the true branch *)
      clamp_hi numeric_only r.hi
    | Expr.Eq ->
      (* Value.equal never raises, so slot may still be bool/vec unless
         rhs is purely numeric. *)
      if only_num rhs && not (may_nan rhs) then begin
        let d = clamp_lo (clamp_hi numeric_only r.hi) r.lo in
        { d with floats = Option.map (fun a -> { a with nan = false }) d.floats }
      end
      else d
    | Expr.Ne -> d

let rec refine (env : t IMap.t) (guard : Expr.t) (pol : bool) (lookup : int -> t) : t IMap.t =
  match (guard, pol) with
  | Expr.And (a, b), true -> refine (refine env a true lookup) b true lookup
  | Expr.Or (a, b), false -> refine (refine env a false lookup) b false lookup
  | Expr.Not a, _ -> refine env a (not pol) lookup
  | Expr.Cmp (op, Expr.UAttr s, rhs), _ when not (Expr.mentions_e rhs) ->
    refine_cmp env s op rhs pol lookup
  | Expr.Cmp (op, lhs, Expr.UAttr s), _ when not (Expr.mentions_e lhs) ->
    refine_cmp env s (flip_cmp op) lhs pol lookup
  | _ -> env

and refine_cmp env s op rhs pol lookup =
  let op = if pol then op else negate_cmp op in
  let cur = match IMap.find_opt s env with Some v -> v | None -> lookup s in
  let ctx =
    { u = (fun i -> match IMap.find_opt i env with Some v -> v | None -> lookup i); e = None }
  in
  let rv, rerr = eval ctx rhs in
  if rerr then env else IMap.add s (narrow_by_cmp cur op rv) env

let analyze_script ?(pos_of = fun (_ : string) -> Ast.no_pos) ~trust_ranges
    (prog : Core_ir.program) (s : Core_ir.script) : info =
  let schema = prog.Core_ir.schema in
  let arity = Schema.arity schema in
  let senv = schema_env ~trust_ranges schema in
  let base = script_env ~senv prog s in
  let pos = pos_of s.Core_ir.name in
  let diags = ref [] in
  let seen = Hashtbl.create 8 in
  let add_diag ~rule fmt =
    Fmt.kstr
      (fun msg ->
        if not (Hashtbl.mem seen (rule, msg)) then begin
          Hashtbl.add seen (rule, msg) ();
          diags := Rules.diag ~pos ~context:s.Core_ir.name ~rule "%s" msg :: !diags
        end)
      fmt
  in
  let effect_sites = ref [] and agg_sites = ref [] in
  let alarm_handler where = function
    | Div_by_zero -> add_diag ~rule:"N001" "possible division by zero in %s" where
    | Sqrt_neg -> add_diag ~rule:"N002" "sqrt of a possibly negative value in %s" where
  in
  let rec go depth (env : t IMap.t) (a : Core_ir.t) : t IMap.t =
    let lookup i = match IMap.find_opt i env with Some v -> v | None -> base i in
    let ctx_of env =
      { u = (fun i -> match IMap.find_opt i env with Some v -> v | None -> base i); e = None }
    in
    match a with
    | Core_ir.Skip -> env
    | Core_ir.Let (e, k) ->
      let v, _ = eval ~alarm:(alarm_handler "a let binding") (ctx_of env) e in
      go (depth + 1) (IMap.add (arity + depth) v env) k
    | Core_ir.Let_agg (i, k) ->
      let agg = prog.Core_ir.aggregates.(i) in
      agg_sites := (i, lookup) :: !agg_sites;
      let v, _ =
        eval_aggregate
          ~alarm:(alarm_handler (Fmt.str "aggregate %s" agg.Aggregate.name))
          ~ctx:(ctx_of env) ~eenv:senv agg
      in
      go (depth + 1) (IMap.add (arity + depth) v env) k
    | Core_ir.Seq (a, b) ->
      let env = go depth env a in
      go depth env b
    | Core_ir.If (c, a, b) ->
      let vc, cerr = eval ~alarm:(alarm_handler "an if condition") (ctx_of env) c in
      (* N003: the guard is decided by interval facts alone.  Guards not
         mentioning any state are P005's territory (constant folding). *)
      if
        (not cerr)
        && (Expr.mentions_u c || Expr.mentions_e c || Expr.mentions_random c)
        && has_bool vc
        && (not (vc.btrue && vc.bfalse))
        && not (has_num vc || has_vec vc)
      then
        add_diag ~rule:"N003" "condition %a is always %b by interval analysis" Expr.pp c
          vc.btrue;
      let env_t = refine env c true lookup in
      let env_f = refine env c false lookup in
      let out_t = go depth env_t a in
      let out_f = go depth env_f b in
      (* Branch-refined schema slots rejoin to their pre-branch values;
         registers bound inside the branches merge by join (they are
         lexically dead afterwards anyway). *)
      IMap.merge
        (fun k l r ->
          match (IMap.find_opt k env, l, r) with
          | Some pre, _, _ -> Some pre
          | None, Some x, Some y -> Some (join x y)
          | None, Some x, None | None, None, Some x -> Some x
          | None, None, None -> None)
        out_t out_f
    | Core_ir.Effects clauses ->
      List.iter
        (fun (c : Core_ir.effect_clause) ->
          effect_sites := (c, lookup) :: !effect_sites;
          let ectx = { u = lookup; e = Some senv } in
          (match c.Core_ir.target with
          | Core_ir.Self -> ()
          | Core_ir.Key e ->
            ignore (eval ~alarm:(alarm_handler "an effect key expression") { ectx with e = None } e)
          | Core_ir.All p ->
            List.iter
              (fun conj -> ignore (eval ~alarm:(alarm_handler "an effect condition") ectx conj))
              (Predicate.conjuncts p));
          List.iter
            (fun (_, upd) -> ignore (eval ~alarm:(alarm_handler "an effect update") ectx upd))
            c.Core_ir.updates)
        clauses;
      env
  in
  ignore (go 0 IMap.empty s.Core_ir.body);
  {
    info_script = s.Core_ir.name;
    effect_sites = List.rev !effect_sites;
    agg_sites = List.rev !agg_sites;
    diags = List.rev !diags;
  }

(* Value-range rules (N001/N002/N003) over every script, trusting the
   schema's declared ranges. *)
let check ?pos_of (prog : Core_ir.program) : Diagnostic.t list =
  List.concat_map
    (fun s -> (analyze_script ?pos_of ~trust_ranges:true prog s).diags)
    prog.Core_ir.scripts

(* ------------------------------------------------------------------ *)
(* Pretty-printing *)

let pp_ibnd ppf = function
  | Ninf -> Fmt.string ppf "-inf"
  | Pinf -> Fmt.string ppf "+inf"
  | I k -> Fmt.int ppf k

let pp_axis ppf a =
  if not (axis_has_num a) then Fmt.string ppf (if a.nan then "nan" else "empty")
  else Fmt.pf ppf "[%g, %g]%s" a.lo a.hi (if a.nan then "?nan" else "")

let pp ppf (d : t) =
  if is_bot d then Fmt.string ppf "bot"
  else begin
    let parts = ref [] in
    (match d.ints with
    | Some (lo, hi) -> parts := Fmt.str "int[%a, %a]" pp_ibnd lo pp_ibnd hi :: !parts
    | None -> ());
    (match d.floats with
    | Some a when not (axis_is_empty a) -> parts := Fmt.str "float%a" pp_axis a :: !parts
    | _ -> ());
    (match (d.btrue, d.bfalse) with
    | true, true -> parts := "bool" :: !parts
    | true, false -> parts := "true" :: !parts
    | false, true -> parts := "false" :: !parts
    | false, false -> ());
    (match d.vec with
    | Some (x, y) -> parts := Fmt.str "vec(%a, %a)" pp_axis x pp_axis y :: !parts
    | None -> ());
    Fmt.(list ~sep:(any " | ") string) ppf (List.rev !parts)
  end
