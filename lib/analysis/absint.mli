(** Interval abstract interpretation over SGL values (the [Absint]
    domain the locality certificates and the optimizer's interval-fact
    oracles are built on).

    The abstract domain is a reduced product over the four runtime types
    of {!Sgl_relalg.Value.t}: integer interval, float interval with a
    may-be-nan flag, boolean possibility pair, and per-axis float
    intervals for vectors.

    Soundness contract: whenever concrete evaluation succeeds, its value
    is a {!mem}ber of the abstract result; whenever the abstract
    evaluator reports "no error", concrete evaluation does not raise. *)

open Sgl_relalg
open Sgl_lang

type t

val top : t
val bot : t
val is_bot : t -> bool
val of_value : Value.t -> t
val join : t -> t -> t

(** [mem v d]: is the concrete value [v] contained in [d]? *)
val mem : Value.t -> t -> bool

(** The unique concrete value [d] denotes, if any.  Float singletons
    require bit-identical bounds, so folding to the constant can never
    change results (-0. vs 0.). *)
val singleton : t -> Value.t option

(** Bounds of the numeric (int ∪ float) part in {!Value.compare_num}
    order, when non-empty. *)
val num_bounds : t -> (float * float) option

val may_nan : t -> bool
val pp : t Fmt.t

(** Runtime failures the abstract evaluator can anticipate. *)
type alarm = Div_by_zero | Sqrt_neg

(** Abstract evaluation context: a total map for unit slots (schema
    attributes and let registers) and an optional one for environment
    attributes ([None] means any [e.*] reference is an error). *)
type ctx = { u : int -> t; e : (int -> t) option }

(** [eval ?alarm ctx e] returns the abstract value together with a
    may-raise flag.  [alarm] is invoked for each possible
    division-by-zero / sqrt-of-negative found on the way. *)
val eval : ?alarm:(alarm -> unit) -> ctx -> Expr.t -> t * bool

(** Abstract result of an aggregate: [eenv] describes the scanned
    environment tuples, [ctx] the calling unit (for [Nearest] anchors and
    the default expression). *)
val eval_aggregate : ?alarm:(alarm -> unit) -> ctx:ctx -> eenv:(int -> t) -> Aggregate.t -> t * bool

(** Abstract store for the schema attributes.  With [trust_ranges] the
    declared {!Schema.attr} ranges and types are believed (lint /
    certificate side); without it every slot is top (engine-side folding
    oracles, which must stay sound against stores that violate the
    declarations). *)
val schema_env : trust_ranges:bool -> Schema.t -> int -> t

(** Flow-insensitive register map for one script: unit slots below the
    schema arity resolve through [senv], let/aggregate registers to the
    join of their bind sites.  Valid at any program point, including
    plans the optimizer has re-ordered. *)
val script_env : senv:(int -> t) -> Core_ir.program -> Core_ir.script -> int -> t

(** Interval-fact oracles handed to the optimizer.  [prove script guard]
    decides a boolean guard when interval facts settle it; [fold script
    expr] produces the constant an expression always evaluates to.  Both
    answer [None] for expressions mentioning [e.*] or when any runtime
    error is possible. *)
type oracle = {
  prove : string -> Expr.t -> bool option;
  fold : string -> Expr.t -> Value.t option;
}

val no_oracle : oracle

(** [trust_ranges] defaults to [false]: engine-side folding must not
    believe advisory schema ranges. *)
val make_oracle : ?trust_ranges:bool -> Core_ir.program -> oracle

(** Result of the path-sensitive per-script analysis: the abstract store
    (path-refined, as a total slot map) at every effect clause and every
    aggregate call site, plus value-range diagnostics
    (N001 division-by-zero, N002 sqrt-of-negative, N003 guard decided by
    interval facts). *)
type info = {
  info_script : string;
  effect_sites : (Core_ir.effect_clause * (int -> t)) list;
  agg_sites : (int * (int -> t)) list;
  diags : Diagnostic.t list;
}

val analyze_script :
  ?pos_of:(string -> Ast.pos) -> trust_ranges:bool -> Core_ir.program -> Core_ir.script -> info

(** N001/N002/N003 over every script of the program, trusting declared
    ranges. *)
val check : ?pos_of:(string -> Ast.pos) -> Core_ir.program -> Diagnostic.t list
