(* Structured diagnostics: what every analysis pass emits.

   A diagnostic names the rule that fired, carries the resolved severity,
   the source position (when the pass could recover one through the AST)
   and the enclosing declaration, and renders both human-readable — one
   line per finding, grep-friendly — and as JSON for tooling.  The JSON
   emitter is hand-rolled like the bench harness's; CI parses the output,
   so CI is the parser of record. *)

open Sgl_lang

type severity = Error | Warn | Info

let severity_name = function
  | Error -> "error"
  | Warn -> "warning"
  | Info -> "info"

type t = {
  rule : string; (* rule id, e.g. "R001" *)
  severity : severity;
  pos : Ast.pos; (* [Ast.no_pos] when no source location is known *)
  context : string option; (* enclosing declaration (script, aggregate, action) *)
  message : string;
}

let make ~rule ~severity ?(pos = Ast.no_pos) ?context message =
  { rule; severity; pos; context; message }

(* Stable report order: position, then severity (errors first), then rule. *)
let severity_rank = function
  | Error -> 0
  | Warn -> 1
  | Info -> 2

let compare_diag (a : t) (b : t) : int =
  let c = compare (a.pos.Ast.line, a.pos.Ast.col) (b.pos.Ast.line, b.pos.Ast.col) in
  if c <> 0 then c
  else begin
    let c = compare (severity_rank a.severity) (severity_rank b.severity) in
    if c <> 0 then c else compare (a.rule, a.message) (b.rule, b.message)
  end

let sort (ds : t list) : t list = List.sort compare_diag ds

type counts = { errors : int; warnings : int; infos : int }

let count (ds : t list) : counts =
  List.fold_left
    (fun c d ->
      match d.severity with
      | Error -> { c with errors = c.errors + 1 }
      | Warn -> { c with warnings = c.warnings + 1 }
      | Info -> { c with infos = c.infos + 1 })
    { errors = 0; warnings = 0; infos = 0 } ds

(* ------------------------------------------------------------------ *)
(* Human-readable rendering *)

let pp ?(file = "") ppf (d : t) =
  let pp_loc ppf () =
    if file <> "" then Fmt.pf ppf "%s:" file;
    if d.pos <> Ast.no_pos then Fmt.pf ppf "%d:%d:" d.pos.Ast.line d.pos.Ast.col
  in
  let pp_ctx ppf () =
    match d.context with
    | Some c -> Fmt.pf ppf " [%s]" c
    | None -> ()
  in
  Fmt.pf ppf "%a %s %s%a: %s" pp_loc () (severity_name d.severity) d.rule pp_ctx () d.message

let to_string ?file (d : t) = Fmt.str "%a" (pp ?file) d

(* ------------------------------------------------------------------ *)
(* JSON rendering *)

let json_escape (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json_object ?(file = "") (d : t) : string =
  let fields =
    [
      (if file = "" then None else Some (Fmt.str {|"file": "%s"|} (json_escape file)));
      Some (Fmt.str {|"rule": "%s"|} (json_escape d.rule));
      Some (Fmt.str {|"severity": "%s"|} (severity_name d.severity));
      Some (Fmt.str {|"line": %d|} d.pos.Ast.line);
      Some (Fmt.str {|"col": %d|} d.pos.Ast.col);
      Option.map (fun c -> Fmt.str {|"context": "%s"|} (json_escape c)) d.context;
      Some (Fmt.str {|"message": "%s"|} (json_escape d.message));
    ]
  in
  "{" ^ String.concat ", " (List.filter_map Fun.id fields) ^ "}"

(* The whole report: a JSON array, one object per diagnostic. *)
let to_json ?file (ds : t list) : string =
  match ds with
  | [] -> "[]\n"
  | ds ->
    "[\n  " ^ String.concat ",\n  " (List.map (to_json_object ?file) ds) ^ "\n]\n"
