(** Structured diagnostics emitted by the analysis passes, rendered
    human-readable (one grep-friendly line per finding) and as JSON. *)

open Sgl_lang

type severity = Error | Warn | Info

val severity_name : severity -> string

type t = {
  rule : string; (* rule id, e.g. "R001" *)
  severity : severity;
  pos : Ast.pos; (* [Ast.no_pos] when no source location is known *)
  context : string option; (* enclosing declaration *)
  message : string;
}

val make :
  rule:string -> severity:severity -> ?pos:Ast.pos -> ?context:string -> string -> t

(** Stable report order: position, then severity (errors first), then rule. *)
val sort : t list -> t list

type counts = { errors : int; warnings : int; infos : int }

val count : t list -> counts

val pp : ?file:string -> Format.formatter -> t -> unit
val to_string : ?file:string -> t -> string

(** One JSON object per diagnostic, assembled into an array by {!to_json}. *)
val to_json_object : ?file:string -> t -> string

val to_json : ?file:string -> t list -> string
