(* The lint driver: run every pass family over one SGL program and merge
   the diagnostics.

   Pipeline for surface programs ([analyze_ast] / [analyze_source]):

   1. AST lints (P004/P005) — they need the un-normalized text.
   2. Collect-all typechecking.  Each diagnostic is mapped onto the rule
      catalogue: const-write rejections become R001 (the typechecker is
      the front line of the effect-race family for SGL source), everything
      else is T001.
   3. If any error-severity diagnostic exists, stop: the later passes need
      a well-typed program to compile.
   4. Compile to closed core IR, then run the effect-race detector, the
      aggregate strategy lints, the interval analysis (N rules), the
      footprint analysis (S rules), and the plan translation validator —
      the latter with a range-trusting interval-fact prover plugged in, so
      the most aggressive guard-discharging rewrite is itself validated.

   Core-IR programs assembled through the library API (which never meet
   the typechecker) go straight to step 4 via [analyze_core]. *)

open Sgl_relalg
open Sgl_lang

(* The typechecker's const-write rejection is rule R001 wearing its
   front-line hat; match on the stable fragment of the message. *)
let is_const_write_message m =
  let needle = "is const and cannot be the subject of an effect" in
  let nl = String.length needle and ml = String.length m in
  let rec at i = i + nl <= ml && (String.sub m i nl = needle || at (i + 1)) in
  at 0

let of_type_diagnostic (d : Typecheck.diagnostic) : Diagnostic.t =
  let rule = if is_const_write_message d.Typecheck.message then "R001" else "T001" in
  Rules.diag ~pos:d.Typecheck.pos ~rule "%s" d.Typecheck.message

let analyze_core ?(post_reads : int list = []) ?(pos_of : string -> Ast.pos = fun _ -> Ast.no_pos)
    (prog : Core_ir.program) : Diagnostic.t list =
  let oracle = Absint.make_oracle ~trust_ranges:true prog in
  Diagnostic.sort
    (Effect_race.check ~post_reads ~pos_of prog
    @ Perf_lint.check_aggregates ~pos_of prog
    @ Perf_lint.check_kernels ~pos_of prog
    @ Absint.check ~pos_of prog
    @ Footprint.check ~pos_of prog
    @ Plan_check.validate_program ~pos_of ~prove:oracle.Absint.prove prog)

let analyze_ast ?(consts : (string * Value.t) list = []) ?(post_reads : int list = [])
    ~(schema : Schema.t) (prog : Ast.program) : Diagnostic.t list =
  let ast_diags = Perf_lint.check_ast ~consts prog in
  let type_diags = List.map of_type_diagnostic (Typecheck.check_all ~consts ~schema prog) in
  let front = ast_diags @ type_diags in
  if List.exists (fun (d : Diagnostic.t) -> d.Diagnostic.severity = Diagnostic.Error) front
  then Diagnostic.sort front
  else begin
    let pos_of name =
      match Ast.find_decl prog name with
      | Some d -> Ast.decl_pos d
      | None -> Ast.no_pos
    in
    let core = Compile.compile_ast ~consts ~schema prog in
    let oracle = Absint.make_oracle ~trust_ranges:true core in
    Diagnostic.sort
      (front
      @ Effect_race.check ~post_reads ~pos_of core
      @ Perf_lint.check_aggregates ~pos_of core
      @ Perf_lint.check_kernels ~pos_of core
      @ Absint.check ~pos_of core
      @ Footprint.check ~pos_of core
      @ Plan_check.validate_program ~pos_of ~prove:oracle.Absint.prove core)
  end

let analyze_source ?consts ?post_reads ~schema (source : string) :
    (Diagnostic.t list, string) result =
  match Compile.parse source with
  | prog -> Ok (analyze_ast ?consts ?post_reads ~schema prog)
  | exception Compile.Compile_error e -> Error (Compile.error_to_string e)
