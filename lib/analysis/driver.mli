(** The lint driver: every pass family over one program, diagnostics
    merged and sorted ({!Diagnostic.sort}). *)

open Sgl_relalg
open Sgl_lang

(** Map one collect-all typechecker diagnostic onto the rule catalogue:
    const-write rejections become R001, everything else T001. *)
val of_type_diagnostic : Typecheck.diagnostic -> Diagnostic.t

(** Core-IR passes only (effect races, aggregate strategy lints, plan
    validation) — for programs assembled through the library API, which
    never meet the typechecker.  [post_reads] as in
    {!Effect_race.check}. *)
val analyze_core :
  ?post_reads:int list ->
  ?pos_of:(string -> Ast.pos) ->
  Core_ir.program ->
  Diagnostic.t list

(** Full pipeline over a parsed program: AST lints, collect-all
    typechecking, then (only when no error-severity diagnostic was
    produced) compilation and the core-IR passes. *)
val analyze_ast :
  ?consts:(string * Value.t) list ->
  ?post_reads:int list ->
  schema:Schema.t ->
  Ast.program ->
  Diagnostic.t list

(** [analyze_source] parses first; a lex/parse failure is returned as
    [Error message] since there is no program to attach diagnostics to. *)
val analyze_source :
  ?consts:(string * Value.t) list ->
  ?post_reads:int list ->
  schema:Schema.t ->
  string ->
  (Diagnostic.t list, string) result
