(* Effect-commutativity race detection (rules R001-R004).

   The engine's determinism argument (Section 4.2 / 5.1, and the parallel
   decision phase built on it) is: every effect contribution combines
   through the per-attribute ⊕, which is associative and commutative, so
   the tick's outcome is independent of evaluation and chunk-merge order.
   That argument has a static precondition nothing enforced until now —
   scripts must only write attributes that *have* a ⊕ (non-const tags),
   and reads must not assume same-tick visibility of effects.  This pass
   computes per-script read/write attribute sets over the closed core IR
   and flags the violations:

   - R001: an effect updates a const-tagged attribute.  Const is exactly
     "no combination rule": the resolver rejects this for SGL source, but
     programs assembled through the library API reach the executor
     unchecked.
   - R002: a const-tagged attribute is writable from multiple units — a
     key/all target (any unit can hit any row) or several distinct write
     sites.  Under [run_tick_parallel] the surviving value would depend on
     chunk order; this is the write-write race the ⊕ tags exist to
     prevent.
   - R003: a script reads an effect attribute some script writes in the
     same tick.  Decision-phase reads observe the pre-tick snapshot, so
     the value is well-defined but one tick stale — a correctness hazard
     game designers trip over.
   - R004: an effect attribute is written but never read — neither by any
     script nor by the post-processing/movement read set.  The
     contribution is computed, combined, and discarded every tick. *)

open Sgl_relalg
open Sgl_lang

type target_kind = K_self | K_key | K_all

let target_kind_name = function
  | K_self -> "self"
  | K_key -> "key"
  | K_all -> "all"

type write = {
  attr : int;
  target : target_kind;
}

type summary = {
  script : string;
  reads : int list; (* schema attributes read (via u or e), sorted *)
  writes : write list; (* effect-clause updates, in body order *)
}

(* Schema attributes an expression reads: u-slots below the schema arity
   (higher slots are let registers) plus every e-slot. *)
let expr_reads ~(arity : int) (e : Expr.t) : int list =
  List.filter (fun s -> s < arity) (Expr.u_slots e) @ Expr.e_slots e

let agg_reads ~arity (agg : Aggregate.t) : int list =
  let kind_exprs = function
    | Aggregate.Count -> []
    | Aggregate.Sum e | Aggregate.Avg e | Aggregate.Std_dev e | Aggregate.Min_agg e
    | Aggregate.Max_agg e ->
      [ e ]
    | Aggregate.Arg_min { objective; result } | Aggregate.Arg_max { objective; result } ->
      [ objective; result ]
    | Aggregate.Nearest { ex; ey; ux; uy; result } -> [ ex; ey; ux; uy; result ]
  in
  let exprs =
    List.concat_map kind_exprs agg.Aggregate.kinds
    @ Predicate.conjuncts agg.Aggregate.where_
    @ Option.to_list agg.Aggregate.default
  in
  List.concat_map (expr_reads ~arity) exprs

let summarize_script (prog : Core_ir.program) (s : Core_ir.script) : summary =
  let arity = Schema.arity prog.Core_ir.schema in
  let reads = ref [] and writes = ref [] in
  let read e = reads := expr_reads ~arity e @ !reads in
  let rec go = function
    | Core_ir.Skip -> ()
    | Core_ir.Let (e, k) ->
      read e;
      go k
    | Core_ir.Let_agg (i, k) ->
      if i >= 0 && i < Array.length prog.Core_ir.aggregates then
        reads := agg_reads ~arity prog.Core_ir.aggregates.(i) @ !reads;
      go k
    | Core_ir.Seq (a, b) ->
      go a;
      go b
    | Core_ir.If (c, a, b) ->
      read c;
      go a;
      go b
    | Core_ir.Effects clauses ->
      List.iter
        (fun (c : Core_ir.effect_clause) ->
          let target =
            match c.Core_ir.target with
            | Core_ir.Self -> K_self
            | Core_ir.Key e ->
              read e;
              K_key
            | Core_ir.All p ->
              List.iter read (Predicate.conjuncts p);
              K_all
          in
          List.iter
            (fun (attr, e) ->
              read e;
              writes := { attr; target } :: !writes)
            c.Core_ir.updates)
        clauses
  in
  go s.Core_ir.body;
  {
    script = s.Core_ir.name;
    reads = List.sort_uniq compare !reads;
    writes = List.rev !writes;
  }

let summarize (prog : Core_ir.program) : summary list =
  List.map (summarize_script prog) prog.Core_ir.scripts

(* ------------------------------------------------------------------ *)
(* Rules *)

(* [pos_of name] recovers the source position of a declaration when the
   program came from SGL text; API-assembled programs analyze at
   [Ast.no_pos]. *)
let check ?(post_reads : int list = []) ?(pos_of : string -> Ast.pos = fun _ -> Ast.no_pos)
    (prog : Core_ir.program) : Diagnostic.t list =
  let schema = prog.Core_ir.schema in
  let summaries = summarize prog in
  let out = ref [] in
  let emit d = out := d :: !out in
  let name_of a = Schema.name_at schema a in
  (* R001 + R002: const-tagged write sites. *)
  let const_sites = Hashtbl.create 8 in
  List.iter
    (fun s ->
      List.iter
        (fun w ->
          if Schema.tag_at schema w.attr = Schema.Const then begin
            Hashtbl.replace const_sites w.attr
              ((s.script, w.target) :: Option.value ~default:[] (Hashtbl.find_opt const_sites w.attr));
            emit
              (Rules.diag ~pos:(pos_of s.script) ~context:s.script ~rule:"R001"
                 "effect writes const-tagged attribute %S (target %s): const has no \
                  combination rule, the contribution cannot merge through ⊕"
                 (name_of w.attr) (target_kind_name w.target))
          end)
        s.writes)
    summaries;
  Hashtbl.iter
    (fun attr sites ->
      let sites = List.rev sites in
      let multi_unit = List.exists (fun (_, t) -> t <> K_self) sites in
      if multi_unit || List.length sites > 1 then begin
        let script, _ = List.hd sites in
        emit
          (Rules.diag ~pos:(pos_of script) ~context:script ~rule:"R002"
             "const-tagged attribute %S is writable from multiple units (%s): without a \
              commutative ⊕ the surviving value depends on parallel chunk order"
             (name_of attr)
             (String.concat ", "
                (List.map (fun (s, t) -> Fmt.str "%s/%s" s (target_kind_name t)) sites)))
      end)
    const_sites;
  (* R003: same-tick reads of pending effects. *)
  let written_by attr =
    List.filter_map
      (fun s -> if List.exists (fun w -> w.attr = attr) s.writes then Some s.script else None)
      summaries
  in
  let effect_attrs = Schema.effect_indices schema in
  List.iter
    (fun s ->
      List.iter
        (fun attr ->
          if List.mem attr s.reads then begin
            match written_by attr with
            | [] -> ()
            | writers ->
              emit
                (Rules.diag ~pos:(pos_of s.script) ~context:s.script ~rule:"R003"
                   "script reads effect attribute %S which is written in the same tick \
                    (by %s); the read observes the pre-tick value"
                   (name_of attr) (String.concat ", " writers))
          end)
        effect_attrs)
    summaries;
  (* R004: effect writes nobody consumes. *)
  let all_reads =
    List.sort_uniq compare (post_reads @ List.concat_map (fun s -> s.reads) summaries)
  in
  let dead = Hashtbl.create 8 in
  List.iter
    (fun s ->
      List.iter
        (fun w ->
          if
            Schema.tag_at schema w.attr <> Schema.Const
            && (not (List.mem w.attr all_reads))
            && not (Hashtbl.mem dead (s.script, w.attr))
          then begin
            Hashtbl.replace dead (s.script, w.attr) ();
            emit
              (Rules.diag ~pos:(pos_of s.script) ~context:s.script ~rule:"R004"
                 "effect on %S is dead: no script reads it and the post-processing \
                  query ignores it"
                 (name_of w.attr))
          end)
        s.writes)
    summaries;
  List.rev !out
