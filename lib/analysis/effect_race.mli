(** Effect-commutativity race detection (rules R001-R004): per-script
    read/write attribute sets over the closed core IR, checked against the
    ⊕-safety preconditions the parallel decision phase and the incremental
    index cache assume. *)

open Sgl_lang

type target_kind = K_self | K_key | K_all

val target_kind_name : target_kind -> string

type write = {
  attr : int;
  target : target_kind;
}

type summary = {
  script : string;
  reads : int list; (* schema attributes read (via u or e), sorted *)
  writes : write list; (* effect-clause updates, in body order *)
}

val summarize_script : Core_ir.program -> Core_ir.script -> summary
val summarize : Core_ir.program -> summary list

(** Run R001-R004.  [post_reads] lists the effect attributes the engine's
    post-processing/movement phases consume (see
    {!Sgl_engine.Postprocess.reads}); omitting it treats every effect as
    unconsumed downstream.  [pos_of] recovers a declaration's source
    position (defaults to {!Ast.no_pos}). *)
val check :
  ?post_reads:int list ->
  ?pos_of:(string -> Ast.pos) ->
  Core_ir.program ->
  Diagnostic.t list
