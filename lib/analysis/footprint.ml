(* Footprint analysis: per-script shard-locality certificates.

   A certificate answers the question the halo/ghost-region protocol of a
   sharded simulation must ask statically: which attributes does the
   script read and write, through which target classes do its effects
   land, and how far from the acting unit can any read or write reach?

   Spatial reach is derived syntactically from the window form the index
   planner already recognizes — bounds of shape [u.axis ± δ] on a spatial
   attribute — with δ's magnitude bounded by interval analysis
   ({!Absint}) at the (path-refined) program point.  The syntactic match
   matters: interval arithmetic on [e.posx - u.posx] would lose the
   correlation between the two and always answer "unbounded".

   Rules:
   - S001 (info): an aggregate reads an unbounded region;
   - S002 (warn): an All-target effect has no bounded spatial window;
   - S003 (warn): a Key-target expression is not provably inside the key
     attribute's range ([0, +inf) when the schema declares none — engine
     keys are assigned from 0). *)

open Sgl_relalg
open Sgl_lang

type region =
  | R_keyed
  | R_windowed of (string * float) list (* spatial axis, radius *)
  | R_global of string (* reason *)

type eclass =
  | C_self
  | C_key of bool (* target proven inside the key range *)
  | C_all_bounded of (string * float) list
  | C_all_unbounded of string

type cert = {
  script : string;
  reads : string list;
  writes : (string * string) list; (* attribute, target-kind name *)
  regions : (string * region) list; (* aggregate name, read region *)
  effects : eclass list; (* one per effect clause, body order *)
  read_radius : float option; (* None = unbounded *)
  write_radius : float option; (* None = unbounded *)
  shard_local : bool; (* every effect lands within a bounded radius *)
}

(* ------------------------------------------------------------------ *)
(* Spatial window extraction *)

(* The spatial dimensions of the schema: the conventional position
   attributes the battle store and the examples use. *)
let spatial_axes (schema : Schema.t) : (string * int) list =
  List.filter_map
    (fun name ->
      match Schema.find_opt schema name with
      | Some i when Schema.ty_at schema i = Value.TFloat -> Some (name, i)
      | _ -> None)
    [ "posx"; "posy" ]

let abs_ctx uenv = { Absint.u = uenv; e = None }

(* Upper bound on |delta| at the site, when finite and nan-free. *)
let delta_radius ~(uenv : int -> Absint.t) (d : Expr.t) : float option =
  if Expr.mentions_e d then None
  else
    let v, err = Absint.eval (abs_ctx uenv) d in
    if err || Absint.may_nan v then None
    else
      match Absint.num_bounds v with
      | Some (lo, hi) ->
        let r = Float.max (Float.abs lo) (Float.abs hi) in
        if Float.is_finite r then Some r else None
      | None -> None

(* Radius of one range bound when it has the window form [u.axis ± δ].
   Either direction of the offset is accepted for either bound: the
   resulting region is always contained in [u.axis - r, u.axis + r]. *)
let bound_radius ~uenv ~(axis_slot : int) (b : Predicate.bound) : float option =
  match b.Predicate.value with
  | Expr.UAttr i when i = axis_slot -> Some 0.
  | Expr.Binop ((Expr.Add | Expr.Sub), Expr.UAttr i, d) when i = axis_slot ->
    delta_radius ~uenv d
  | Expr.Binop (Expr.Add, d, Expr.UAttr i) when i = axis_slot -> delta_radius ~uenv d
  | _ -> None

(* A spatial axis is windowed when both a lower and an upper bound in
   window form constrain it; the axis radius is the larger offset. *)
let axis_window ~uenv ~(axis_slot : int) (cls : Predicate.classified) : float option =
  let best bounds =
    List.fold_left
      (fun acc (a, b) ->
        if a <> axis_slot then acc
        else
          match (acc, bound_radius ~uenv ~axis_slot b) with
          | Some r1, Some r2 -> Some (Float.min r1 r2)
          | None, r | r, None -> r)
      None bounds
  in
  match (best cls.Predicate.lowers, best cls.Predicate.uppers) with
  | Some r1, Some r2 -> Some (Float.max r1 r2)
  | _ -> None

(* Classify a conjunctive predicate over (u, e): routed by key equality,
   contained in a spatial window around the unit, or global. *)
let classify_pred ~(schema : Schema.t) ~uenv (p : Predicate.t) :
    [ `Keyed of Expr.t | `Windowed of (string * float) list | `Global of string ] =
  let cls = Predicate.classify p in
  match List.assoc_opt (Schema.key_index schema) cls.Predicate.cat_eqs with
  | Some e -> `Keyed e
  | None -> (
    match spatial_axes schema with
    | [] -> `Global "schema declares no spatial attributes"
    | axes -> (
      let windows =
        List.map
          (fun (name, slot) -> (name, axis_window ~uenv ~axis_slot:slot cls))
          axes
      in
      match List.find_opt (fun (_, w) -> w = None) windows with
      | Some (name, _) -> `Global (Fmt.str "no bounded window on %s" name)
      | None -> `Windowed (List.map (fun (n, w) -> (n, Option.get w)) windows)))

(* Is the key-naming expression provably inside the key attribute's
   range?  Without a declared range the contract is still [0, +inf):
   every engine path (scenario construction, checkpoint restore) assigns
   keys from 0. *)
let key_in_range ~(schema : Schema.t) ~uenv (e : Expr.t) : bool =
  let lo, hi =
    match Schema.range_at schema (Schema.key_index schema) with
    | Some r -> r
    | None -> (0., infinity)
  in
  (not (Expr.mentions_e e))
  &&
  let v, err = Absint.eval (abs_ctx uenv) e in
  (not err)
  && (not (Absint.may_nan v))
  && match Absint.num_bounds v with Some (vlo, vhi) -> vlo >= lo && vhi <= hi | None -> false

(* ------------------------------------------------------------------ *)
(* Certificates *)

let radius_of_regions regions =
  List.fold_left
    (fun acc (_, r) ->
      match (acc, r) with
      | None, _ -> None
      | _, R_global _ -> None
      | Some a, R_keyed -> Some a
      | Some a, R_windowed ws ->
        Some (List.fold_left (fun m (_, r) -> Float.max m r) a ws))
    (Some 0.) regions

let radius_of_effects effects =
  List.fold_left
    (fun acc e ->
      match (acc, e) with
      | None, _ -> None
      | _, (C_all_unbounded _ | C_key false) -> None
      | Some a, (C_self | C_key true) -> Some a
      | Some a, C_all_bounded ws ->
        Some (List.fold_left (fun m (_, r) -> Float.max m r) a ws))
    (Some 0.) effects

let certify_script ?(pos_of = fun (_ : string) -> Ast.no_pos) (prog : Core_ir.program)
    (s : Core_ir.script) : cert * Diagnostic.t list =
  let schema = prog.Core_ir.schema in
  let info = Absint.analyze_script ~pos_of ~trust_ranges:true prog s in
  let pos = pos_of s.Core_ir.name in
  let diags = ref [] in
  let add ~rule fmt =
    Fmt.kstr
      (fun msg -> diags := Rules.diag ~pos ~context:s.Core_ir.name ~rule "%s" msg :: !diags)
      fmt
  in
  let regions =
    List.map
      (fun (i, uenv) ->
        let agg = prog.Core_ir.aggregates.(i) in
        let region =
          match classify_pred ~schema ~uenv agg.Aggregate.where_ with
          | `Keyed _ -> R_keyed
          | `Windowed ws -> R_windowed ws
          | `Global reason ->
            add ~rule:"S001" "aggregate %s reads an unbounded region (%s)"
              agg.Aggregate.name reason;
            R_global reason
        in
        (agg.Aggregate.name, region))
      info.Absint.agg_sites
  in
  let effects =
    List.map
      (fun ((c : Core_ir.effect_clause), uenv) ->
        match c.Core_ir.target with
        | Core_ir.Self -> C_self
        | Core_ir.Key e ->
          let proven = key_in_range ~schema ~uenv e in
          if not proven then
            add ~rule:"S003" "key expression %a may escape the proven key range" Expr.pp e;
          C_key proven
        | Core_ir.All p -> (
          match classify_pred ~schema ~uenv p with
          | `Keyed e ->
            let proven = key_in_range ~schema ~uenv e in
            if not proven then
              add ~rule:"S003" "key expression %a may escape the proven key range" Expr.pp e;
            C_key proven
          | `Windowed ws -> C_all_bounded ws
          | `Global reason ->
            add ~rule:"S002" "all-target effect has no bounded spatial window (%s)" reason;
            C_all_unbounded reason))
      info.Absint.effect_sites
  in
  let summary = Effect_race.summarize_script prog s in
  let reads = List.map (Schema.name_at schema) summary.Effect_race.reads in
  let writes =
    List.sort_uniq compare
      (List.map
         (fun (w : Effect_race.write) ->
           ( Schema.name_at schema w.Effect_race.attr,
             Effect_race.target_kind_name w.Effect_race.target ))
         summary.Effect_race.writes)
  in
  (* Aggregates are recorded per call site; identical (name, region)
     entries add nothing to the certificate, but the same aggregate can
     legitimately appear twice when path refinement classifies two sites
     differently.  Effect classes stay per clause in body order.  The
     same first-occurrence dedup applies to the diagnostics: one finding
     per distinct message, not one per site. *)
  let dedup xs =
    List.rev (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs)
  in
  let regions = dedup regions in
  let write_radius = radius_of_effects effects in
  let cert =
    {
      script = s.Core_ir.name;
      reads;
      writes;
      regions;
      effects;
      read_radius = radius_of_regions regions;
      write_radius;
      shard_local = write_radius <> None;
    }
  in
  (cert, dedup (List.rev !diags))

let certify (prog : Core_ir.program) : cert list =
  List.map (fun s -> fst (certify_script prog s)) prog.Core_ir.scripts

let check ?pos_of (prog : Core_ir.program) : Diagnostic.t list =
  List.concat_map (fun s -> snd (certify_script ?pos_of prog s)) prog.Core_ir.scripts

(* ------------------------------------------------------------------ *)
(* Rendering *)

let region_class = function
  | R_keyed -> "keyed"
  | R_windowed _ -> "windowed"
  | R_global _ -> "global"

let eclass_name = function
  | C_self -> "self"
  | C_key true -> "key"
  | C_key false -> "key-unproven"
  | C_all_bounded _ -> "all-bounded"
  | C_all_unbounded _ -> "all-unbounded"

let pp_radius ppf = function
  | None -> Fmt.string ppf "unbounded"
  | Some r -> Fmt.pf ppf "%g" r

let pp_windows ppf ws =
  Fmt.(list ~sep:(any ", ") (pair ~sep:(any " ") string (fmt "%g"))) ppf ws

let pp_cert ppf (c : cert) =
  Fmt.pf ppf "@[<v>script %s: %s (write radius %a, read radius %a)@," c.script
    (if c.shard_local then "shard-local" else "unbounded")
    pp_radius c.write_radius pp_radius c.read_radius;
  Fmt.pf ppf "  reads: %a@," Fmt.(list ~sep:(any ", ") string) c.reads;
  Fmt.pf ppf "  writes: %a@,"
    Fmt.(list ~sep:(any "; ") (pair ~sep:(any " via ") string string))
    c.writes;
  List.iter
    (fun (name, r) ->
      match r with
      | R_keyed -> Fmt.pf ppf "  aggregate %s: keyed@," name
      | R_windowed ws -> Fmt.pf ppf "  aggregate %s: windowed (%a)@," name pp_windows ws
      | R_global reason -> Fmt.pf ppf "  aggregate %s: global (%s)@," name reason)
    c.regions;
  List.iter
    (fun e ->
      match e with
      | C_self -> Fmt.pf ppf "  effect self@,"
      | C_key proven ->
        Fmt.pf ppf "  effect key: %s@," (if proven then "proven in-range" else "UNPROVEN")
      | C_all_bounded ws -> Fmt.pf ppf "  effect all: bounded (%a)@," pp_windows ws
      | C_all_unbounded reason -> Fmt.pf ppf "  effect all: UNBOUNDED (%s)@," reason)
    c.effects;
  Fmt.pf ppf "@]"

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_radius = function None -> "null" | Some r -> Fmt.str "%g" r

let json_windows ws =
  String.concat ","
    (List.map (fun (n, r) -> Fmt.str {|{"axis":"%s","radius":%g}|} (json_escape n) r) ws)

let cert_to_json (c : cert) : string =
  let regions =
    String.concat ","
      (List.map
         (fun (name, r) ->
           let extra =
             match r with
             | R_keyed -> ""
             | R_windowed ws -> Fmt.str {|,"windows":[%s]|} (json_windows ws)
             | R_global reason -> Fmt.str {|,"reason":"%s"|} (json_escape reason)
           in
           Fmt.str {|{"aggregate":"%s","class":"%s"%s}|} (json_escape name) (region_class r)
             extra)
         c.regions)
  in
  let effects =
    String.concat ","
      (List.map
         (fun e ->
           let extra =
             match e with
             | C_self | C_key _ -> ""
             | C_all_bounded ws -> Fmt.str {|,"windows":[%s]|} (json_windows ws)
             | C_all_unbounded reason -> Fmt.str {|,"reason":"%s"|} (json_escape reason)
           in
           Fmt.str {|{"class":"%s"%s}|} (eclass_name e) extra)
         c.effects)
  in
  let strings xs = String.concat "," (List.map (fun s -> Fmt.str {|"%s"|} (json_escape s)) xs) in
  let writes =
    String.concat ","
      (List.map
         (fun (a, t) ->
           Fmt.str {|{"attr":"%s","target":"%s"}|} (json_escape a) (json_escape t))
         c.writes)
  in
  Fmt.str
    {|{"script":"%s","shard_local":%b,"read_radius":%s,"write_radius":%s,"reads":[%s],"writes":[%s],"regions":[%s],"effects":[%s]}|}
    (json_escape c.script) c.shard_local (json_radius c.read_radius)
    (json_radius c.write_radius) (strings c.reads) writes regions effects

let certs_to_json (cs : cert list) : string =
  Fmt.str "[%s]" (String.concat "," (List.map cert_to_json cs))
