(** Footprint analysis: per-script shard-locality certificates (rules
    S001-S003), the static contract a sharded/distributed simulation's
    halo protocol builds against.

    A certificate records the attributes a script reads and writes, the
    class of every aggregate read region (key-routed, spatially windowed
    around the unit, or global) and of every effect clause (self,
    key-routed, spatially bounded all, or unbounded all), plus
    conservative interaction radii derived by interval analysis. *)

open Sgl_relalg
open Sgl_lang

type region =
  | R_keyed
  | R_windowed of (string * float) list (* spatial axis, radius *)
  | R_global of string (* reason *)

type eclass =
  | C_self
  | C_key of bool (* target proven inside the key range *)
  | C_all_bounded of (string * float) list
  | C_all_unbounded of string

type cert = {
  script : string;
  reads : string list;
  writes : (string * string) list; (* attribute, target-kind name *)
  regions : (string * region) list; (* aggregate name, read region *)
  effects : eclass list; (* one per effect clause, body order *)
  read_radius : float option; (* None = unbounded *)
  write_radius : float option; (* None = unbounded *)
  shard_local : bool; (* every effect lands within a bounded radius *)
}

(** The spatial dimensions used for window detection: the conventional
    float attributes ["posx"]/["posy"] when the schema declares them. *)
val spatial_axes : Schema.t -> (string * int) list

(** One script's certificate together with its S001-S003 findings. *)
val certify_script :
  ?pos_of:(string -> Ast.pos) -> Core_ir.program -> Core_ir.script -> cert * Diagnostic.t list

(** Certificates for every script of the program. *)
val certify : Core_ir.program -> cert list

(** S001-S003 over every script. *)
val check : ?pos_of:(string -> Ast.pos) -> Core_ir.program -> Diagnostic.t list

val region_class : region -> string
val eclass_name : eclass -> string
val pp_cert : cert Fmt.t
val cert_to_json : cert -> string
val certs_to_json : cert list -> string
