(* Performance lints (rules P001-P006).

   The aggregate-level rules are tied to [Agg_plan.analyze] — the same
   classification the indexed evaluator uses — so a lint fires exactly
   when the executor will pay the cost it describes:

   - P001: the instance fell back to [Naive_only] — an O(n) scan per
     probe, O(n²) per tick over the group;
   - P002: an indexable instance kept a probe residual, so the index
     narrows the candidate set but every candidate is filtered per probe;
   - P003: an extremal (min/max/argmin/argmax) component whose window is
     not a constant symmetric box — no sweep-line, the range-tree box is
     walked per probe.

   The AST-level rules catch script text the optimizer will silently
   discard:

   - P004: a let binding never read in its continuation;
   - P005: an if-condition that folds to a constant (literals, consts and
     pure builtins only), leaving one arm dead.

   P006 looks at what the fused backend will actually compile: a scalar
   bind specializes to a typed-column load only under the eligibility
   rules of [Loop_ir.Compile.boxed_binds]; anything else keeps the kernel
   materializing boxed tuples inside its per-row loop. *)

open Sgl_relalg
open Sgl_lang
open Sgl_qopt

(* ------------------------------------------------------------------ *)
(* Aggregate strategy lints (P001-P003) over the closed program *)

let check_aggregates ?(pos_of : string -> Ast.pos = fun _ -> Ast.no_pos)
    (prog : Core_ir.program) : Diagnostic.t list =
  let schema = prog.Core_ir.schema in
  let out = ref [] in
  Array.iteri
    (fun i (agg : Aggregate.t) ->
      let name = agg.Aggregate.name in
      let pos = pos_of name in
      let emit rule fmt =
        Fmt.kstr (fun m -> out := Rules.diag ~pos ~context:name ~rule "%s" m :: !out) fmt
      in
      match Agg_plan.analyze schema agg with
      | Agg_plan.Uniform -> ()
      | Agg_plan.Naive_only reason ->
        emit "P001" "aggregate instance #%d falls back to an O(n) scan per probe: %s" i reason
      | Agg_plan.Indexed { components; sweep; enumerate; access; _ } ->
        if enumerate then
          emit "P002"
            "aggregate instance #%d keeps %d probe-dependent residual conjunct(s): the \
             index enumerates its box and filters per probe (%s)"
            i
            (List.length access.Agg_plan.probe_residual)
            (Agg_plan.describe schema (Agg_plan.analyze schema agg))
        else if
          sweep = None
          && List.exists
               (function
                 | Agg_plan.C_extremal _ -> true
                 | Agg_plan.C_divisible _ | Agg_plan.C_nearest _ -> false)
               components
        then
          emit "P003"
            "aggregate instance #%d has a %s component without a constant symmetric \
             window: no sweep-line, the range-tree box is walked per probe"
            i
            (String.concat "/"
               (List.filter_map
                  (function
                    | Agg_plan.C_extremal { kind } -> Some (Aggregate.kind_name kind)
                    | Agg_plan.C_divisible _ | Agg_plan.C_nearest _ -> None)
                  components)))
    prog.Core_ir.aggregates;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Fused-kernel lint (P006) over the lowered loop programs *)

let check_kernels ?(pos_of : string -> Ast.pos = fun _ -> Ast.no_pos)
    (prog : Core_ir.program) : Diagnostic.t list =
  let schema = prog.Core_ir.schema in
  let aggs = prog.Core_ir.aggregates in
  List.concat_map
    (fun (s : Core_ir.script) ->
      let name = s.Core_ir.name in
      let loop =
        Loop_ir.Lower.lower (Rewrite.optimize ~aggs (Plan.of_core schema s.Core_ir.body))
      in
      match Loop_ir.Compile.boxed_binds ~schema loop with
      | [] -> []
      | boxed ->
        [
          Rules.diag ~pos:(pos_of name) ~context:name ~rule:"P006"
            "%d scalar bind(s) (%s) stay on the boxed-row path: the fused kernel \
             materializes tuples inside its per-row loop instead of loading typed columns"
            (List.length boxed)
            (String.concat ", " (List.map (fun (slot, _) -> Printf.sprintf "r%d" slot) boxed));
        ])
    prog.Core_ir.scripts

(* ------------------------------------------------------------------ *)
(* AST lints (P004, P005) over the surface program *)

(* Free occurrence of a variable in a term.  The typechecker rejects
   rebinding, so no shadowing discipline is needed on well-typed input. *)
let rec term_mentions (v : string) (t : Ast.term) : bool =
  match t with
  | Ast.T_int _ | Ast.T_float _ | Ast.T_bool _ -> false
  | Ast.T_var (n, _) -> n = v
  | Ast.T_dot (b, _, _) -> term_mentions v b
  | Ast.T_binop (_, a, b) | Ast.T_cmp (_, a, b) | Ast.T_and (a, b) | Ast.T_or (a, b)
  | Ast.T_vec (a, b) ->
    term_mentions v a || term_mentions v b
  | Ast.T_not a | Ast.T_neg a -> term_mentions v a
  | Ast.T_call (_, args, _) -> List.exists (term_mentions v) args

let rec action_mentions (v : string) (a : Ast.action) : bool =
  match a with
  | Ast.A_skip -> false
  | Ast.A_let (_, t, k) -> term_mentions v t || action_mentions v k
  | Ast.A_seq (a, b) -> action_mentions v a || action_mentions v b
  | Ast.A_if (c, a, b) -> term_mentions v c || action_mentions v a || action_mentions v b
  | Ast.A_perform (_, args, _) -> List.exists (term_mentions v) args

(* Pure builtins fold; [random] does not, and any unit/environment access
   or user declaration call keeps the term live. *)
let foldable_builtins = [ "abs"; "sqrt"; "min"; "max"; "norm"; "dist" ]

let rec foldable ~(consts : string -> bool) (t : Ast.term) : bool =
  match t with
  | Ast.T_int _ | Ast.T_float _ | Ast.T_bool _ -> true
  | Ast.T_var (n, _) -> consts n
  | Ast.T_dot (b, _, _) -> foldable ~consts b (* vec component of a foldable vec *)
  | Ast.T_binop (_, a, b) | Ast.T_cmp (_, a, b) | Ast.T_and (a, b) | Ast.T_or (a, b)
  | Ast.T_vec (a, b) ->
    foldable ~consts a && foldable ~consts b
  | Ast.T_not a | Ast.T_neg a -> foldable ~consts a
  | Ast.T_call (n, args, _) ->
    List.mem n foldable_builtins && List.for_all (foldable ~consts) args

let check_ast ?(consts : (string * Value.t) list = []) (prog : Ast.program) : Diagnostic.t list
    =
  let const_names = Hashtbl.create 16 in
  List.iter (fun (n, _) -> Hashtbl.replace const_names n ()) consts;
  List.iter
    (function
      | Ast.D_const (n, _) -> Hashtbl.replace const_names n ()
      | Ast.D_aggregate _ | Ast.D_action _ | Ast.D_script _ -> ())
    prog;
  let is_const n = Hashtbl.mem const_names n in
  let out = ref [] in
  let check_body ~context body =
    let rec go = function
      | Ast.A_skip -> ()
      | Ast.A_let (v, rhs, k) ->
        if not (action_mentions v k) then begin
          let pos =
            match Ast.pos_of_term rhs with
            | p when p = Ast.no_pos -> Ast.pos_of_action k
            | p -> p
          in
          out :=
            Rules.diag ~pos ~context ~rule:"P004"
              "let binding %S is never read; the optimizer drops it as a dead column" v
            :: !out
        end;
        go k
      | Ast.A_seq (a, b) ->
        go a;
        go b
      | Ast.A_if (c, a, b) ->
        if foldable ~consts:is_const c then begin
          let pos =
            match Ast.pos_of_term c with
            | p when p = Ast.no_pos -> Ast.pos_of_action a
            | p -> p
          in
          out :=
            Rules.diag ~pos ~context ~rule:"P005"
              "condition %S folds to a constant: one branch is dead"
              (Pretty.term_to_string c)
            :: !out
        end;
        go a;
        go b
      | Ast.A_perform _ -> ()
    in
    go body
  in
  List.iter
    (function
      | Ast.D_script { name; body; _ } -> check_body ~context:name body
      | Ast.D_const _ | Ast.D_aggregate _ | Ast.D_action _ -> ())
    prog;
  List.rev !out
