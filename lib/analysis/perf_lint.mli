(** Performance lints (rules P001-P006): aggregate instances that defeat
    the index planner (tied to {!Sgl_qopt.Agg_plan.analyze}), script
    text the optimizer will silently discard, and binds the fused
    backend cannot specialize to columnar loads. *)

open Sgl_lang
open Sgl_relalg

(** P001 (naive scan fallback), P002 (enumerating probe residual), P003
    (extremal component without a sweepable window) per aggregate
    instance of the closed program. *)
val check_aggregates :
  ?pos_of:(string -> Ast.pos) -> Core_ir.program -> Diagnostic.t list

(** P004 (dead let binding), P005 (constant-foldable condition) over the
    surface AST.  [consts] are driver-supplied constants (same list passed
    to {!Sgl_lang.Compile.compile}); [D_const] declarations are picked up
    from the program itself. *)
val check_ast : ?consts:(string * Value.t) list -> Ast.program -> Diagnostic.t list

(** P006 (bind stays on the boxed-row path) per script of the closed
    program: each script's optimized plan is lowered through
    {!Sgl_qopt.Loop_ir.Lower} and its
    {!Sgl_qopt.Loop_ir.Compile.boxed_binds} reported — the binds for
    which the fused kernel materializes boxed tuples inside its per-row
    loop even when a columnar mirror is available. *)
val check_kernels : ?pos_of:(string -> Ast.pos) -> Core_ir.program -> Diagnostic.t list
