(** Performance lints (rules P001-P005): aggregate instances that defeat
    the index planner (tied to {!Sgl_qopt.Agg_plan.analyze}) and script
    text the optimizer will silently discard. *)

open Sgl_lang
open Sgl_relalg

(** P001 (naive scan fallback), P002 (enumerating probe residual), P003
    (extremal component without a sweepable window) per aggregate
    instance of the closed program. *)
val check_aggregates :
  ?pos_of:(string -> Ast.pos) -> Core_ir.program -> Diagnostic.t list

(** P004 (dead let binding), P005 (constant-foldable condition) over the
    surface AST.  [consts] are driver-supplied constants (same list passed
    to {!Sgl_lang.Compile.compile}); [D_const] declarations are picked up
    from the program itself. *)
val check_ast : ?consts:(string * Value.t) list -> Ast.program -> Diagnostic.t list
