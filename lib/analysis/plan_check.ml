(* Plan translation validation (rules V001, V002, V003).

   The optimizer's rewrites (lazy aggregate placement, dead-column
   elimination, constant pruning — Section 5.2) are validated per script
   rather than trusted, in the spirit of bag-semantics compilers that
   check optimizer output against the unrewritten query:

   - V001 (shape): the optimized plan must be executable — every register
     read is bound by an enclosing [Bind] or is a schema attribute, binds
     land above the schema arity, aggregate instance ids are in range,
     selection conditions range over the probing unit only, and every
     emitted effect targets an in-range, non-const attribute.
   - V002 (⊕-equivalence): the multiset of guarded effects is preserved.
     Rewrites move binds, never acts, so each [Act] must appear in both
     plans under the same set of (polarity, condition) guards — modulo
     constant guards, which pruning legally discharges: a tautological
     guard disappears, an unsatisfiable one deletes the act it guards.
     Because effects combine through the associative-commutative ⊕,
     guarded-act multiset equality implies tick-outcome equality; clause
     equality also pins the written attributes, hence the ⊕ tags
     ("tag-preserving"). *)

open Sgl_relalg
open Sgl_lang
open Sgl_qopt

module IntSet = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* V001: executable shape *)

let validate_shape ~(schema : Schema.t) ~(aggs : Aggregate.t array) ~(script : string)
    ?(pos = Ast.no_pos) (p : Plan.t) : Diagnostic.t list =
  let arity = Schema.arity schema in
  let out = ref [] in
  let emit fmt = Fmt.kstr (fun m -> out := Rules.diag ~pos ~context:script ~rule:"V001" "%s" m :: !out) fmt in
  let check_expr ~bound ~what e =
    List.iter
      (fun s ->
        if s >= arity && not (IntSet.mem s bound) then
          emit "%s reads register r%d before any bind defines it" what s)
      (Expr.u_slots e);
    List.iter
      (fun s ->
        if s < 0 || s >= arity then emit "%s references out-of-schema environment slot e%d" what s)
      (Expr.e_slots e)
  in
  let rec go bound = function
    | Plan.Nop -> ()
    | Plan.Bind (slot, binder, k) ->
      if slot < arity then emit "bind writes schema slot r%d (arity %d)" slot arity;
      (match binder with
      | Plan.Bind_expr e -> check_expr ~bound ~what:"bind expression" e
      | Plan.Bind_agg i ->
        if i < 0 || i >= Array.length aggs then
          emit "bind references unknown aggregate instance #%d" i
        else
          List.iter
            (fun s ->
              if s >= arity && not (IntSet.mem s bound) then
                emit "aggregate instance #%d reads register r%d before any bind defines it" i s)
            (Plan.agg_instance_slots aggs.(i)));
      go (IntSet.add slot bound) k
    | Plan.Select (c, a, b) ->
      check_expr ~bound ~what:"selection condition" c;
      if Expr.mentions_e c then emit "selection condition ranges over the environment tuple e";
      go bound a;
      go bound b
    | Plan.Both plans -> List.iter (go bound) plans
    | Plan.Act clauses ->
      List.iter
        (fun (cl : Core_ir.effect_clause) ->
          (match cl.Core_ir.target with
          | Core_ir.Self -> ()
          | Core_ir.Key e ->
            check_expr ~bound ~what:"key target" e;
            if Expr.mentions_e e then emit "key target ranges over the environment tuple e"
          | Core_ir.All p ->
            List.iter (check_expr ~bound ~what:"all-target condition") (Predicate.conjuncts p));
          List.iter
            (fun (attr, e) ->
              if attr < 0 || attr >= arity then emit "effect targets out-of-schema attribute #%d" attr
              else if Schema.tag_at schema attr = Schema.Const then
                emit "effect targets const-tagged attribute %S" (Schema.name_at schema attr);
              check_expr ~bound ~what:"effect contribution" e)
            cl.Core_ir.updates)
        clauses
  in
  go IntSet.empty p;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* V002: guarded-effect ⊕-equivalence *)

(* Normalize one guarded act: drop guards that pruning legally discharges
   (a constant-true condition taken on its true branch, constant-false on
   its false branch, and any condition [prove] decides — the same facts
   [Rewrite.simplify ~prove] prunes with), return [None] for acts behind
   an unsatisfiable guard (pruning deletes them), and set-normalize what
   remains — sinking never duplicates a guard, but nested duplicates
   compare equal either way. *)
let normalize_guarded ?(prove = fun (_ : Expr.t) -> None)
    ((guards, clauses) : Plan.guard list * Core_ir.effect_clause list) :
    ((bool * Expr.t) list * Core_ir.effect_clause list) option =
  let rec walk acc = function
    | [] -> Some acc
    | (polarity, Expr.Const (Value.Bool b)) :: rest ->
      if b = polarity then walk acc rest (* tautological guard: discharged *)
      else None (* unreachable act: pruned *)
    | ((polarity, g) as guard) :: rest -> begin
      match prove g with
      | Some b -> if b = polarity then walk acc rest else None
      | None -> walk (guard :: acc) rest
    end
  in
  Option.map (fun gs -> (List.sort_uniq compare gs, clauses)) (walk [] guards)

let guarded_effects ?prove (p : Plan.t) :
    ((bool * Expr.t) list * Core_ir.effect_clause list) list =
  List.sort compare (List.filter_map (normalize_guarded ?prove) (Plan.guarded_acts p))

let validate_rewrite ~(script : string) ?(pos = Ast.no_pos) ?prove ~(original : Plan.t)
    ~(optimized : Plan.t) () : Diagnostic.t list =
  let before = guarded_effects ?prove original and after = guarded_effects ?prove optimized in
  if before = after then []
  else begin
    let count = List.length in
    [
      Rules.diag ~pos ~context:script ~rule:"V002"
        "rewrite changed the guarded effect structure: %d reachable act(s) before, %d \
         after — the optimized plan is not ⊕-equivalent to the translation"
        (count before) (count after);
    ]
  end

(* ------------------------------------------------------------------ *)
(* V003: lowering ⊕-equivalence *)

(* The fused backend's [Loop_ir.Lower] splits every [Act]'s clause list —
   self/key clauses fuse into passes, area clauses become batch ops — so
   the comparison runs at *clause* granularity: each (guard set, clause)
   pair of the plan must survive into the loop program and vice versa.
   Clause-multiset equality under ⊕-commutativity implies the compiled
   kernel contributes exactly the plan's effects. *)
let clause_effects ?prove (gas : (Plan.guard list * Core_ir.effect_clause list) list) :
    ((bool * Expr.t) list * Core_ir.effect_clause) list =
  List.sort compare
    (List.concat_map
       (fun ga ->
         match normalize_guarded ?prove ga with
         | None -> []
         | Some (gs, clauses) -> List.map (fun c -> (gs, c)) clauses)
       gas)

let validate_lowering ~(script : string) ?(pos = Ast.no_pos) ?prove (optimized : Plan.t) :
    Diagnostic.t list =
  let lowered = Loop_ir.Lower.lower optimized in
  let want = clause_effects ?prove (Plan.guarded_acts optimized) in
  let got =
    clause_effects ?prove (List.map (fun (g, c) -> (g, [ c ])) (Loop_ir.guarded_clauses lowered))
  in
  if want = got then []
  else
    [
      Rules.diag ~pos ~context:script ~rule:"V003"
        "lowering changed the guarded effect structure: %d clause(s) in the plan, %d in the \
         loop program — the fused kernel is not ⊕-equivalent to its source plan"
        (List.length want) (List.length got);
    ]

(* ------------------------------------------------------------------ *)
(* Whole-program validation *)

let validate_program ?(optimize = true) ?(pos_of : string -> Ast.pos = fun _ -> Ast.no_pos)
    ?(prove : string -> Expr.t -> bool option = fun _ _ -> None) (prog : Core_ir.program) :
    Diagnostic.t list =
  let schema = prog.Core_ir.schema in
  let aggs = prog.Core_ir.aggregates in
  List.concat_map
    (fun (s : Core_ir.script) ->
      let name = s.Core_ir.name in
      let pos = pos_of name in
      let prove = prove name in
      let original = Plan.of_core schema s.Core_ir.body in
      let optimized = if optimize then Rewrite.optimize ~prove ~aggs original else original in
      validate_shape ~schema ~aggs ~script:name ~pos optimized
      @ validate_rewrite ~script:name ~pos ~prove ~original ~optimized ()
      @ validate_lowering ~script:name ~pos ~prove optimized)
    prog.Core_ir.scripts
