(** Plan translation validation (rules V001, V002): every optimizer output
    must be executable (registers bound before use, effects on tagged
    in-range attributes) and ⊕-equivalent in guarded-effect structure to
    the unrewritten translation. *)

open Sgl_relalg
open Sgl_lang
open Sgl_qopt

(** V001: executable shape of one plan. *)
val validate_shape :
  schema:Schema.t ->
  aggs:Aggregate.t array ->
  script:string ->
  ?pos:Ast.pos ->
  Plan.t ->
  Diagnostic.t list

(** Normalized multiset of guarded effects: each reachable [Act] with its
    set-normalized non-constant guards (constant guards are discharged the
    way pruning does).  Exposed for tests. *)
val guarded_effects :
  Plan.t -> ((bool * Sgl_relalg.Expr.t) list * Core_ir.effect_clause list) list

(** V002: guarded-effect ⊕-equivalence of a rewrite. *)
val validate_rewrite :
  script:string ->
  ?pos:Ast.pos ->
  original:Plan.t ->
  optimized:Plan.t ->
  unit ->
  Diagnostic.t list

(** Translate every script, rewrite it (unless [optimize] is [false]), and
    run both checks on the result. *)
val validate_program :
  ?optimize:bool -> ?pos_of:(string -> Ast.pos) -> Core_ir.program -> Diagnostic.t list
