(** Plan translation validation (rules V001, V002, V003): every optimizer
    output must be executable (registers bound before use, effects on
    tagged in-range attributes), ⊕-equivalent in guarded-effect structure
    to the unrewritten translation, and preserved by the fused backend's
    lowering to the loop IR. *)

open Sgl_relalg
open Sgl_lang
open Sgl_qopt

(** V001: executable shape of one plan. *)
val validate_shape :
  schema:Schema.t ->
  aggs:Aggregate.t array ->
  script:string ->
  ?pos:Ast.pos ->
  Plan.t ->
  Diagnostic.t list

(** Normalized multiset of guarded effects: each reachable [Act] with its
    set-normalized non-constant guards (constant guards — and guards the
    optional [prove] decides — are discharged the way pruning does).
    Exposed for tests. *)
val guarded_effects :
  ?prove:(Expr.t -> bool option) ->
  Plan.t ->
  ((bool * Sgl_relalg.Expr.t) list * Core_ir.effect_clause list) list

(** V002: guarded-effect ⊕-equivalence of a rewrite.  When the rewrite ran
    with an interval-fact prover, the same [prove] must be supplied here so
    both sides discharge the same guards. *)
val validate_rewrite :
  script:string ->
  ?pos:Ast.pos ->
  ?prove:(Expr.t -> bool option) ->
  original:Plan.t ->
  optimized:Plan.t ->
  unit ->
  Diagnostic.t list

(** V003: lowering ⊕-equivalence — the loop program {!Sgl_qopt.Loop_ir}
    lowers from the optimized plan must carry the same guarded effect
    clauses (compared at clause granularity, since lowering splits an
    [Act]'s clause list into fused emissions and batch AoE ops). *)
val validate_lowering :
  script:string -> ?pos:Ast.pos -> ?prove:(Expr.t -> bool option) -> Plan.t -> Diagnostic.t list

(** Translate every script, rewrite it (unless [optimize] is [false]), and
    run all three checks on the result.  [prove], indexed by script name,
    feeds interval facts into the rewrite and — symmetrically — into the
    guard normalization of both validators. *)
val validate_program :
  ?optimize:bool ->
  ?pos_of:(string -> Ast.pos) ->
  ?prove:(string -> Expr.t -> bool option) ->
  Core_ir.program ->
  Diagnostic.t list
