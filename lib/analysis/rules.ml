(* The lint rule catalogue: every rule the analyzer can fire, with its
   default severity and the rationale shown in documentation.

   Rule families:
   - T: type diagnostics surfaced through the collect-all typechecker;
   - R: effect-race detection — the ⊕-safety conditions the parallel
     decision phase and the incremental index cache silently assume;
   - V: plan translation validation — the optimizer's rewrites are checked,
     not trusted;
   - P: performance lints tied to [Agg_plan.analyze] and plan structure;
   - S: shard-locality findings from the footprint analysis — how far a
     script's reads and effects can reach across the map;
   - N: numeric value-range findings from interval abstract
     interpretation ([Absint]).

   Waiving: rules carry no per-site suppression (scripts are small); a
   build that accepts a finding documents it and runs without [--werror],
   which only promotes warnings — infos never gate. *)

type t = {
  id : string;
  severity : Diagnostic.severity;
  title : string;
  rationale : string;
}

let all : t list =
  [
    {
      id = "T001";
      severity = Diagnostic.Error;
      title = "type error";
      rationale =
        "the declaration violates the SGL typing rules (unknown name, arity, \
         boolean/numeric confusion, reserved binding, recursion)";
    };
    {
      id = "R001";
      severity = Diagnostic.Error;
      title = "effect on const attribute";
      rationale =
        "const-tagged attributes have no combination rule: contributions cannot merge \
         through the tick's ⊕, so the write is rejected before it can race";
    };
    {
      id = "R002";
      severity = Diagnostic.Error;
      title = "const write-write race";
      rationale =
        "a const-tagged attribute is writable from multiple units (key/all target or \
         several effect sites): with no commutative ⊕ the surviving value depends on \
         parallel chunk order";
    };
    {
      id = "R003";
      severity = Diagnostic.Warn;
      title = "read of same-tick pending effect";
      rationale =
        "the script reads an effect attribute that is also written this tick; decision \
         reads observe the pre-tick value, so the effect lands one tick late";
    };
    {
      id = "R004";
      severity = Diagnostic.Warn;
      title = "dead effect write";
      rationale =
        "the effect attribute is never read by any script or by the post-processing \
         query: the contribution is computed, combined, and discarded";
    };
    {
      id = "V001";
      severity = Diagnostic.Error;
      title = "malformed plan";
      rationale =
        "the optimized plan reads an unbound register, binds below the schema arity, \
         references an unknown aggregate instance, or emits an effect on a const or \
         out-of-range attribute";
    };
    {
      id = "V002";
      severity = Diagnostic.Error;
      title = "rewrite changed effect structure";
      rationale =
        "translation validation: the optimized plan's guarded effects are not \
         ⊕-equivalent to the unrewritten plan's — an optimizer rewrite changed what \
         the script contributes";
    };
    {
      id = "V003";
      severity = Diagnostic.Error;
      title = "lowering changed effect structure";
      rationale =
        "translation validation for the fused backend: the loop program lowered from the \
         optimized plan does not carry the same guarded effect clauses — the compiled \
         kernel would contribute different effects than the plan it was specialized from";
    };
    {
      id = "P001";
      severity = Diagnostic.Warn;
      title = "aggregate falls back to O(n) scan";
      rationale =
        "no index strategy serves the instance (e.g. Random in the selection, or a \
         component depending on the probing unit): every probe scans all units";
    };
    {
      id = "P002";
      severity = Diagnostic.Info;
      title = "probe residual forces enumeration";
      rationale =
        "a conjunct mentioning the probing unit survived access-path classification: \
         the index narrows the box but every candidate is still filtered per probe";
    };
    {
      id = "P003";
      severity = Diagnostic.Info;
      title = "extremal aggregate without sweep window";
      rationale =
        "min/max-style components only stream in O(log n) under a constant symmetric \
         window; a unit-dependent window walks the range-tree box per probe";
    };
    {
      id = "P004";
      severity = Diagnostic.Warn;
      title = "dead let binding";
      rationale =
        "the bound value is never read; the optimizer drops it, but the script text \
         says something the program does not do";
    };
    {
      id = "P005";
      severity = Diagnostic.Warn;
      title = "constant condition";
      rationale =
        "the branch condition folds to a constant (literals and consts only): one arm \
         is dead and the test costs a per-unit evaluation before rewriting";
    };
    {
      id = "P006";
      severity = Diagnostic.Info;
      title = "fused bind falls back to tuple materialization";
      rationale =
        "a scalar bind is not float-guaranteed over column-backed attributes (random, \
         comparisons, integer arithmetic, environment reads), so the fused kernel \
         materializes boxed tuples inside its per-row loop instead of loading typed \
         columns";
    };
    {
      id = "S001";
      severity = Diagnostic.Info;
      title = "unbounded read region";
      rationale =
        "an aggregate scans environment tuples without a key equality or a bounded \
         spatial window: under sharding every probe crosses all shards (global reads \
         such as army centroids are often intentional, hence informational)";
    };
    {
      id = "S002";
      severity = Diagnostic.Warn;
      title = "unbounded all-target effect";
      rationale =
        "an All-target effect clause has no bounded spatial window: the write set \
         spans every shard, so the script cannot run shard-locally";
    };
    {
      id = "S003";
      severity = Diagnostic.Warn;
      title = "key expression may escape proven bounds";
      rationale =
        "a Key-target effect names a unit through an expression whose interval is not \
         contained in the key attribute's declared range: the routed write may miss \
         or land on an arbitrary shard";
    };
    {
      id = "N001";
      severity = Diagnostic.Warn;
      title = "possible division by zero";
      rationale =
        "interval analysis cannot exclude a zero divisor in an int or vector division, \
         which raises at runtime and aborts the tick";
    };
    {
      id = "N002";
      severity = Diagnostic.Warn;
      title = "sqrt of possibly negative value";
      rationale =
        "the operand's interval includes negative values: sqrt yields nan, which then \
         poisons comparisons (nan orders below every number) and stored positions";
    };
    {
      id = "N003";
      severity = Diagnostic.Warn;
      title = "guard subsumed by interval facts";
      rationale =
        "the branch condition is always true or always false given schema ranges and \
         derived intervals (beyond what constant folding sees): one arm is dead";
    };
  ]

let find (id : string) : t option = List.find_opt (fun r -> r.id = id) all

(* Default severity of a rule id; unknown ids report as errors so a typo in
   a pass cannot silently demote a finding. *)
let severity (id : string) : Diagnostic.severity =
  match find id with
  | Some r -> r.severity
  | None -> Diagnostic.Error

let diag ?pos ?context ~rule fmt =
  Fmt.kstr (fun message -> Diagnostic.make ~rule ~severity:(severity rule) ?pos ?context message) fmt
