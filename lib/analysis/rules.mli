(** The lint rule catalogue: ids, default severities, rationale.  The
    documentation table in INTERNALS.md is generated from this list's
    contents (kept in sync by the test suite). *)

type t = {
  id : string;
  severity : Diagnostic.severity;
  title : string;
  rationale : string;
}

val all : t list
val find : string -> t option

(** Default severity; unknown rule ids report as [Error]. *)
val severity : string -> Diagnostic.severity

(** Build a diagnostic carrying rule [rule]'s default severity. *)
val diag :
  ?pos:Sgl_lang.Ast.pos ->
  ?context:string ->
  rule:string ->
  ('a, Format.formatter, unit, Diagnostic.t) format4 ->
  'a
