(* d20-style combat mechanics (Section 3.2: "we use the game mechanics in
   the pen-and-paper d20 system").

   The SGL scripts encode the same rules arithmetically; this module is the
   single source of truth for the numbers, exported to the scripts as SGL
   constants so the OCaml mechanics and the scripted mechanics can never
   drift apart.  Armor class is 10 + armor; an attack hits when
   d20 + attack bonus >= AC; damage is a weapon die plus a strength bonus,
   reduced by the target's damage reduction (armored units "take less
   damage from the attacks of others"). *)

type unit_class = Knight | Archer | Healer

let class_id = function
  | Knight -> 0
  | Archer -> 1
  | Healer -> 2

let class_of_id = function
  | 0 -> Knight
  | 1 -> Archer
  | 2 -> Healer
  | n -> invalid_arg (Printf.sprintf "D20.class_of_id: %d" n)

let class_name = function
  | Knight -> "knight"
  | Archer -> "archer"
  | Healer -> "healer"

type profile = {
  klass : unit_class;
  max_health : int;
  armor : int; (* adds to AC and to damage reduction *)
  attack_bonus : int;
  damage_die : int; (* dX weapon die; 0 = cannot attack *)
  damage_bonus : int;
  attack_range : float; (* arm's reach for knights, long for archers *)
  sight : float;
  reload : int; (* cooldown ticks after acting *)
  morale : int;
}

let knight =
  {
    klass = Knight;
    max_health = 60;
    armor = 4;
    attack_bonus = 4;
    damage_die = 8;
    damage_bonus = 3;
    attack_range = 2.;
    sight = 16.;
    reload = 1;
    morale = 8;
  }

let archer =
  {
    klass = Archer;
    max_health = 36;
    armor = 1;
    attack_bonus = 3;
    damage_die = 6;
    damage_bonus = 1;
    attack_range = 12.;
    sight = 20.;
    reload = 2;
    morale = 4;
  }

let healer =
  {
    klass = Healer;
    max_health = 30;
    armor = 1;
    attack_bonus = 0;
    damage_die = 0;
    damage_bonus = 0;
    attack_range = 0.;
    sight = 16.;
    reload = 3;
    morale = 3;
  }

let profile_of = function
  | Knight -> knight
  | Archer -> archer
  | Healer -> healer

let armor_class armor = 10 + armor

(* Resolve one attack given two rolls in [0, 999999] (the SGL Random
   stream): returns the damage dealt.  Mirrors the formula inside the
   MeleeStrike / ArcherShot actions exactly. *)
let attack_damage ~(attack_bonus : int) ~(damage_die : int) ~(damage_bonus : int)
    ~(target_armor : int) ~(roll_hit : int) ~(roll_damage : int) : int =
  let d20 = (roll_hit mod 20) + 1 in
  let hit = if d20 + attack_bonus >= armor_class target_armor then 1 else 0 in
  let dmg = (roll_damage mod damage_die) + 1 + damage_bonus - (target_armor / 2) in
  hit * max 1 dmg

let heal_aura_strength = 8
let heal_range = 6.
let melee_threat_range = 3.
let walk_dist_per_tick = 2.
let wounded_fraction_num = 7 (* wounded when health * 10 < max_health * 7 *)
