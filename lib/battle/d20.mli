(** d20-style combat mechanics (Section 3.2): the single source of truth
    for the case study's numbers, exported to the SGL scripts as constants
    so scripted and OCaml-side mechanics cannot drift. *)

type unit_class = Knight | Archer | Healer

val class_id : unit_class -> int

(** Raises [Invalid_argument] on an unknown id. *)
val class_of_id : int -> unit_class

val class_name : unit_class -> string

type profile = {
  klass : unit_class;
  max_health : int;
  armor : int;
  attack_bonus : int;
  damage_die : int; (* 0 = cannot attack *)
  damage_bonus : int;
  attack_range : float;
  sight : float;
  reload : int;
  morale : int;
}

val knight : profile
val archer : profile
val healer : profile
val profile_of : unit_class -> profile

(** AC = 10 + armor. *)
val armor_class : int -> int

(** Resolve one attack from two raw random rolls; mirrors the arithmetic
    encoding inside the MeleeStrike / ArcherShot actions exactly (property-
    tested equal). *)
val attack_damage :
  attack_bonus:int ->
  damage_die:int ->
  damage_bonus:int ->
  target_armor:int ->
  roll_hit:int ->
  roll_damage:int ->
  int

val heal_aura_strength : int
val heal_range : float
val melee_threat_range : float
val walk_dist_per_tick : float

(** A unit is wounded when health * 10 < max_health * this. *)
val wounded_fraction_num : int
