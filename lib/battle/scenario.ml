(* Battle scenario construction and simulation assembly.

   Mirrors the paper's experimental setup (Section 6): two players on an
   integer grid whose size is chosen to hold the unit density at a target
   percentage of occupied squares; armies arranged with knights in front,
   archers behind, healers in the rear; dead units resurrected at uniform
   random positions so the workload stays constant. *)

open Sgl_util
open Sgl_relalg
open Sgl_engine

type army = {
  knights : int;
  archers : int;
  healers : int;
}

let army_size a = a.knights + a.archers + a.healers

(* The paper's default mix: mostly knights, some archers, few healers. *)
let standard_mix n =
  let knights = n / 2 in
  let archers = (n * 3) / 10 in
  let healers = n - knights - archers in
  { knights; archers; healers }

type t = {
  schema : Schema.t;
  units : Tuple.t array;
  width : int;
  height : int;
  density : float;
}

(* Column-major deployment of one army in its half of the field. *)
let deploy (s : Schema.t) ~(army : army) ~(player : int) ~(width : int) ~(height : int)
    ~(next_key : int ref) (out : Tuple.t Varray.t) : unit =
  (* player 0 faces right from the left edge; player 1 faces left *)
  let columns klass count ~x0 ~dx =
    let placed = ref 0 in
    let col = ref 0 in
    while !placed < count do
      let x = x0 + (dx * !col) in
      let rows = min (count - !placed) height in
      let y0 = (height - rows) / 2 in
      for r = 0 to rows - 1 do
        let key = !next_key in
        incr next_key;
        Varray.push out (Unit_types.make_unit s ~key ~player ~klass ~x ~y:(y0 + r));
        incr placed
      done;
      incr col
    done
  in
  let front = if player = 0 then (width / 2) - 4 else (width / 2) + 4 in
  let dx = if player = 0 then -2 else 2 in
  columns D20.Knight army.knights ~x0:front ~dx;
  let knight_cols = ((army.knights + height - 1) / height) * 2 in
  columns D20.Archer army.archers ~x0:(front + (dx * (knight_cols + 1))) ~dx;
  let archer_cols = ((army.archers + height - 1) / height) * 2 in
  columns D20.Healer army.healers ~x0:(front + (dx * (knight_cols + archer_cols + 2))) ~dx

(* [setup ~density ~per_side] builds a two-player battlefield whose grid
   holds the occupancy at [density] (fraction of squares occupied). *)
let setup ?(density = 0.01) ~(per_side : army) () : t =
  let s = Unit_types.schema () in
  let n = 2 * army_size per_side in
  (* a 2:1 battlefield with width * height ~ n / density *)
  let area = float_of_int n /. density in
  let height = max 8 (int_of_float (ceil (sqrt (area /. 2.)))) in
  let width = max 16 (int_of_float (ceil (area /. float_of_int height))) in
  let out = Varray.create [||] in
  let next_key = ref 0 in
  deploy s ~army:per_side ~player:0 ~width ~height ~next_key out;
  deploy s ~army:per_side ~player:1 ~width ~height ~next_key out;
  { schema = s; units = Varray.to_array out; width; height; density }

(* The simulation configuration over the scenario — shared between fresh
   assembly and checkpoint recovery, which must rebuild the exact same
   config (same seed, same scripts, same movement grid) for the journal
   replay to be bit-identical. *)
let sim_config ?(optimize = true) ?(seed = 42) ?(resurrect = true) (t : t) : Simulation.config =
  let s = t.schema in
  let prog = Scripts.compile () in
  let kind_ix = Schema.find s "kind" in
  let script_of u =
    Some (Scripts.script_for (D20.class_of_id (Value.to_int (Tuple.get u kind_ix))))
  in
  let movement =
    {
      Movement.posx = Schema.find s "posx";
      posy = Schema.find s "posy";
      mvx = Schema.find s "movevect_x";
      mvy = Schema.find s "movevect_y";
      speed = D20.walk_dist_per_tick;
      speed_attr = None;
      width = t.width;
      height = t.height;
    }
  in
  {
    Simulation.prog;
    script_of;
    postprocess = Postprocess.battle_spec ~schema:s;
    movement = Some movement;
    death =
      (if resurrect then
         Simulation.Resurrect
           { health = Schema.find s "health"; max_health = Schema.find s "max_health" }
       else Simulation.Remove);
    seed;
    optimize;
  }

(* Assemble a full simulation over the scenario. *)
let simulation ?optimize ?seed ?resurrect ?fault_policy ?index_cache ?columnar
    ~(evaluator : Simulation.evaluator_kind) (t : t) : Simulation.t =
  let config = sim_config ?optimize ?seed ?resurrect t in
  Simulation.create ?fault_policy ?index_cache ?columnar config ~evaluator ~units:t.units
