(** Battle scenario construction mirroring the paper's experimental setup
    (Section 6): density-controlled grids, front-line deployment, and the
    resurrection rule that keeps the workload constant. *)

open Sgl_relalg
open Sgl_engine

type army = {
  knights : int;
  archers : int;
  healers : int;
}

val army_size : army -> int

(** Half knights, 30% archers, the rest healers. *)
val standard_mix : int -> army

type t = {
  schema : Schema.t;
  units : Tuple.t array;
  width : int;
  height : int;
  density : float;
}

(** [setup ~density ~per_side ()] deploys two mirrored armies on a 2:1 grid
    sized to hold the occupied-cell fraction at [density]. *)
val setup : ?density:float -> per_side:army -> unit -> t

(** The simulation configuration over the scenario (battle scripts,
    post-processing, movement, death rule).  Checkpoint recovery rebuilds
    the same config — same seed, scripts and grid — and hands it to
    {!Simulation.restore}; [simulation] is [Simulation.create] over it. *)
val sim_config :
  ?optimize:bool -> ?seed:int -> ?resurrect:bool -> t -> Simulation.config

(** Assemble the full simulation: battle scripts, post-processing, movement,
    death rule (resurrection by default).  [index_cache] and [columnar]
    are forwarded to {!Simulation.create} (cross-tick index structure
    reuse and the struct-of-arrays access path, both on by default). *)
val simulation :
  ?optimize:bool ->
  ?seed:int ->
  ?resurrect:bool ->
  ?fault_policy:Simulation.fault_policy ->
  ?index_cache:bool ->
  ?columnar:bool ->
  evaluator:Simulation.evaluator_kind ->
  t ->
  Simulation.t
