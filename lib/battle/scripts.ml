(* The battle simulation's SGL program (Section 3.2).

   Every behaviour from the case study is here: knights strike the weakest
   enemy in arm's reach and close ranks using the positional standard
   deviation; archers fire at range and keep the knight centroid between
   themselves and the enemy centroid; healers project a non-stackable
   healing aura over wounded allies and retreat from danger.  Wounded
   knights seek the nearest allied healer (the paper's "find the nearest
   healer" kD-tree query).

   The numeric constants come from {!D20}, injected through the compiler's
   [consts] parameter so OCaml-side mechanics and scripts cannot drift. *)

open Sgl_relalg

let constants : (string * Value.t) list =
  let p c = D20.profile_of c in
  [
    ("KIND_KNIGHT", Value.Int (D20.class_id D20.Knight));
    ("KIND_ARCHER", Value.Int (D20.class_id D20.Archer));
    ("KIND_HEALER", Value.Int (D20.class_id D20.Healer));
    ("K_ATTACK_BONUS", Value.Int (p D20.Knight).D20.attack_bonus);
    ("K_DAMAGE_DIE", Value.Int (p D20.Knight).D20.damage_die);
    ("K_DAMAGE_BONUS", Value.Int (p D20.Knight).D20.damage_bonus);
    ("A_ATTACK_BONUS", Value.Int (p D20.Archer).D20.attack_bonus);
    ("A_DAMAGE_DIE", Value.Int (p D20.Archer).D20.damage_die);
    ("A_DAMAGE_BONUS", Value.Int (p D20.Archer).D20.damage_bonus);
    ("MELEE_RANGE", Value.Float (p D20.Knight).D20.attack_range);
    ("ARCHER_RANGE", Value.Float (p D20.Archer).D20.attack_range);
    ("MELEE_THREAT_RANGE", Value.Float D20.melee_threat_range);
    ("HEAL_RANGE", Value.Float D20.heal_range);
    ("HEAL_DANGER_RANGE", Value.Float 4.);
    ("HEAL_AURA", Value.Int D20.heal_aura_strength);
    ("WOUNDED_NUM", Value.Int D20.wounded_fraction_num);
  ]

let source =
  {|
# ---------------------------------------------------------------- aggregates

aggregate CountEnemiesInSight(u) {
  count(*)
  where e.player <> u.player
    and e.posx >= u.posx - u.sight and e.posx <= u.posx + u.sight
    and e.posy >= u.posy - u.sight and e.posy <= u.posy + u.sight
}

aggregate EnemyCentroidInSight(u) {
  (avg(e.posx), avg(e.posy))
  where e.player <> u.player
    and e.posx >= u.posx - u.sight and e.posx <= u.posx + u.sight
    and e.posy >= u.posy - u.sight and e.posy <= u.posy + u.sight
  default (u.posx, u.posy)
}

aggregate WeakestEnemyInMelee(u) {
  argmin(e.health; e.key)
  where e.player <> u.player
    and e.posx >= u.posx - MELEE_RANGE and e.posx <= u.posx + MELEE_RANGE
    and e.posy >= u.posy - MELEE_RANGE and e.posy <= u.posy + MELEE_RANGE
  default -1
}

aggregate WeakestEnemyInArcherRange(u) {
  argmin(e.health; e.key)
  where e.player <> u.player
    and e.posx >= u.posx - ARCHER_RANGE and e.posx <= u.posx + ARCHER_RANGE
    and e.posy >= u.posy - ARCHER_RANGE and e.posy <= u.posy + ARCHER_RANGE
  default -1
}

aggregate CountEnemiesInMelee(u) {
  count(*)
  where e.player <> u.player
    and e.posx >= u.posx - MELEE_THREAT_RANGE and e.posx <= u.posx + MELEE_THREAT_RANGE
    and e.posy >= u.posy - MELEE_THREAT_RANGE and e.posy <= u.posy + MELEE_THREAT_RANGE
}

aggregate EnemyCentroidInMelee(u) {
  (avg(e.posx), avg(e.posy))
  where e.player <> u.player
    and e.posx >= u.posx - MELEE_THREAT_RANGE and e.posx <= u.posx + MELEE_THREAT_RANGE
    and e.posy >= u.posy - MELEE_THREAT_RANGE and e.posy <= u.posy + MELEE_THREAT_RANGE
  default (u.posx, u.posy)
}

aggregate KnightCentroid(u) {
  (avg(e.posx), avg(e.posy))
  where e.player = u.player and e.kind = KIND_KNIGHT
  default (u.posx, u.posy)
}

aggregate KnightSpreadX(u) {
  stddev(e.posx) where e.player = u.player and e.kind = KIND_KNIGHT default 0.0
}

aggregate KnightSpreadY(u) {
  stddev(e.posy) where e.player = u.player and e.kind = KIND_KNIGHT default 0.0
}

aggregate KnightCount(u) {
  count(*) where e.player = u.player and e.kind = KIND_KNIGHT
}

aggregate KnightsNear(u, cx, cy, r) {
  count(*)
  where e.player = u.player and e.kind = KIND_KNIGHT
    and e.posx >= cx - r and e.posx <= cx + r
    and e.posy >= cy - r and e.posy <= cy + r
}

aggregate NearestAlliedHealer(u) {
  nearest(e.posx, e.posy, u.posx, u.posy; (e.posx, e.posy))
  where e.player = u.player and e.kind = KIND_HEALER
  default (u.posx, u.posy)
}

aggregate CountWoundedAlliesInHealRange(u) {
  count(*)
  where e.player = u.player
    and e.posx >= u.posx - HEAL_RANGE and e.posx <= u.posx + HEAL_RANGE
    and e.posy >= u.posy - HEAL_RANGE and e.posy <= u.posy + HEAL_RANGE
    and e.health * 10 < e.max_health * WOUNDED_NUM
}

aggregate WoundedAllyCentroidInSight(u) {
  (avg(e.posx), avg(e.posy))
  where e.player = u.player
    and e.posx >= u.posx - u.sight and e.posx <= u.posx + u.sight
    and e.posy >= u.posy - u.sight and e.posy <= u.posy + u.sight
    and e.health * 10 < e.max_health * WOUNDED_NUM
  default (u.posx, u.posy)
}

aggregate CountEnemiesNear(u, r) {
  count(*)
  where e.player <> u.player
    and e.posx >= u.posx - r and e.posx <= u.posx + r
    and e.posy >= u.posy - r and e.posy <= u.posy + r
}

aggregate EnemyCentroidNear(u, r) {
  (avg(e.posx), avg(e.posy))
  where e.player <> u.player
    and e.posx >= u.posx - r and e.posx <= u.posx + r
    and e.posy >= u.posy - r and e.posy <= u.posy + r
  default (u.posx, u.posy)
}

# ------------------------------------------------------------------ actions

action MeleeStrike(u, tkey) {
  on key(tkey) {
    damage <- max(0, min(1, (random(1) mod 20) + 2 + K_ATTACK_BONUS - (10 + e.armor)))
              * max(1, (random(2) mod K_DAMAGE_DIE) + 1 + K_DAMAGE_BONUS - e.armor / 2);
  }
  on self { weaponused <- 1; }
}

action ArcherShot(u, tkey) {
  on key(tkey) {
    damage <- max(0, min(1, (random(3) mod 20) + 2 + A_ATTACK_BONUS - (10 + e.armor)))
              * max(1, (random(4) mod A_DAMAGE_DIE) + 1 + A_DAMAGE_BONUS - e.armor / 2);
  }
  on self { weaponused <- 1; }
}

action HealAura(u) {
  on all(u.player = e.player
         and e.posx >= u.posx - HEAL_RANGE and e.posx <= u.posx + HEAL_RANGE
         and e.posy >= u.posy - HEAL_RANGE and e.posy <= u.posy + HEAL_RANGE) {
    inaura <- HEAL_AURA;
  }
  on self { weaponused <- 1; }
}

action MoveToward(u, tx, ty) {
  on self {
    movevect_x <- tx - u.posx;
    movevect_y <- ty - u.posy;
  }
}

action MoveAwayFrom(u, tx, ty) {
  on self {
    movevect_x <- u.posx - tx;
    movevect_y <- u.posy - ty;
  }
}

# ------------------------------------------------------------------ scripts

script knight(u) {
  if u.cooldown = 0 then {
    let target = WeakestEnemyInMelee(u);
    if target >= 0 then {
      perform MeleeStrike(u, target);
    } else {
      perform knight_move(u);
    }
  } else {
    perform knight_move(u);
  }
}

script knight_move(u) {
  # wounded knights fall back toward the nearest allied healer
  if u.health * 10 < u.max_health * WOUNDED_NUM then {
    let hpos = NearestAlliedHealer(u);
    perform MoveToward(u, hpos.x, hpos.y);
  } else {
    let seen = CountEnemiesInSight(u);
    if seen > 0 then {
      let ec = EnemyCentroidInSight(u);
      perform MoveToward(u, ec.x, ec.y);
    } else {
      # close ranks (Section 3.2): if fewer than half the knights stand
      # within two standard deviations of the centroid, regroup
      let kc = KnightCentroid(u);
      let sx = KnightSpreadX(u);
      let sy = KnightSpreadY(u);
      let r = 2.0 * max(sx, sy);
      let near = KnightsNear(u, kc.x, kc.y, r);
      let total = KnightCount(u);
      if near * 2 < total then {
        perform MoveToward(u, kc.x, kc.y);
      }
    }
  }
}

script archer(u) {
  let threat = CountEnemiesInMelee(u);
  if threat > 0 then {
    let ec = EnemyCentroidInMelee(u);
    perform MoveAwayFrom(u, ec.x, ec.y);
  } else {
    if u.cooldown = 0 then {
      let target = WeakestEnemyInArcherRange(u);
      if target >= 0 then {
        perform ArcherShot(u, target);
      } else {
        perform archer_reposition(u);
      }
    } else {
      perform archer_reposition(u);
    }
  }
}

script archer_reposition(u) {
  # stand on the line enemy centroid -> knight centroid, behind the knights
  let ec = EnemyCentroidInSight(u);
  let kc = KnightCentroid(u);
  let goal = kc + (kc - ec) * 0.5;
  perform MoveToward(u, goal.x, goal.y);
}

script healer(u) {
  let danger = CountEnemiesNear(u, HEAL_DANGER_RANGE);
  if danger > 0 then {
    let ec = EnemyCentroidNear(u, HEAL_DANGER_RANGE);
    perform MoveAwayFrom(u, ec.x, ec.y);
  } else {
    let wounded = CountWoundedAlliesInHealRange(u);
    if wounded > 0 and u.cooldown = 0 then {
      perform HealAura(u);
    } else {
      let wc = WoundedAllyCentroidInSight(u);
      perform MoveToward(u, wc.x, wc.y);
    }
  }
}
|}

(* The entry script each unit class runs. *)
let script_for (klass : D20.unit_class) : string =
  match klass with
  | D20.Knight -> "knight"
  | D20.Archer -> "archer"
  | D20.Healer -> "healer"

(* Compile the battle program against the battle schema. *)
let compile () : Sgl_lang.Core_ir.program =
  Sgl_lang.Compile.compile ~consts:constants ~schema:(Unit_types.schema ()) source
