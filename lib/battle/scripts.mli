(** The Section 3.2 battle behaviours, written in SGL: knights strike the
    weakest enemy in reach and close ranks by positional standard
    deviation; archers fire at range and shelter behind the knight
    centroid; healers project non-stackable auras; wounded knights seek the
    nearest allied healer. *)

open Sgl_relalg

(** Engine constants injected into the compiler (derived from {!D20}). *)
val constants : (string * Value.t) list

(** The full SGL program text. *)
val source : string

(** Entry script per unit class. *)
val script_for : D20.unit_class -> string

(** Compile {!source} against {!Unit_types.schema}. *)
val compile : unit -> Sgl_lang.Core_ir.program
