(* The battle simulation's environment schema and unit construction.

   Positions are kept on an integer lattice (stored in float attributes),
   so every aggregate over positions is exact and the naive and indexed
   engines stay bit-for-bit identical. *)

open Sgl_relalg

(* Declared attribute ranges are the contract the interval analyses lean
   on: keys are assigned from 0, unit classes and armor are non-negative
   profile data, positions live on the non-negative map lattice (movement
   only ever targets in-bounds cells and resurrection re-places on the
   grid).  Health is deliberately unranged — it transiently goes negative
   before the death rule fires.  Likewise morale/reload/cooldown, which
   post-processing decays. *)
let inf = infinity

(* Finite upper bounds for the profile-sourced attributes, computed from
   the profiles themselves so the declared contract cannot drift from the
   data.  attack_range and sight bound the footprint analysis's
   interaction radii, so their finiteness is load-bearing. *)
let max_profile f =
  List.fold_left
    (fun m c -> Float.max m (f (D20.profile_of c)))
    0.
    [ D20.Knight; D20.Archer; D20.Healer ]

let schema () : Schema.t =
  Schema.create
    [
      Schema.attr ~range:(0., inf) "key" Value.TInt;
      Schema.attr ~range:(0., inf) "player" Value.TInt;
      Schema.attr ~range:(0., inf) "kind" Value.TInt; (* D20.class_id *)
      Schema.attr ~range:(0., inf) "posx" Value.TFloat;
      Schema.attr ~range:(0., inf) "posy" Value.TFloat;
      Schema.attr "health" Value.TFloat;
      Schema.attr
        ~range:(0., max_profile (fun p -> float_of_int p.D20.max_health))
        "max_health" Value.TFloat;
      Schema.attr
        ~range:(0., max_profile (fun p -> float_of_int p.D20.armor))
        "armor" Value.TInt;
      Schema.attr
        ~range:(0., max_profile (fun p -> p.D20.attack_range))
        "attack_range" Value.TFloat;
      Schema.attr ~range:(0., max_profile (fun p -> p.D20.sight)) "sight" Value.TFloat;
      Schema.attr "morale" Value.TInt;
      Schema.attr "reload" Value.TInt;
      Schema.attr "cooldown" Value.TInt;
      (* effect attributes *)
      Schema.attr ~tag:Schema.Max "weaponused" Value.TInt;
      Schema.attr ~tag:Schema.Sum "movevect_x" Value.TFloat;
      Schema.attr ~tag:Schema.Sum "movevect_y" Value.TFloat;
      Schema.attr ~tag:Schema.Sum "damage" Value.TFloat;
      Schema.attr ~tag:Schema.Max "inaura" Value.TFloat;
    ]

let make_unit (s : Schema.t) ~(key : int) ~(player : int) ~(klass : D20.unit_class) ~(x : int)
    ~(y : int) : Tuple.t =
  let p = D20.profile_of klass in
  Tuple.of_list s
    [
      Value.Int key;
      Value.Int player;
      Value.Int (D20.class_id klass);
      Value.Float (float_of_int x);
      Value.Float (float_of_int y);
      Value.Float (float_of_int p.D20.max_health);
      Value.Float (float_of_int p.D20.max_health);
      Value.Int p.D20.armor;
      Value.Float p.D20.attack_range;
      Value.Float p.D20.sight;
      Value.Int p.D20.morale;
      Value.Int p.D20.reload;
      Value.Int 0;
      Value.Int 0;
      Value.Float 0.;
      Value.Float 0.;
      Value.Float 0.;
      Value.Float 0.;
    ]

let klass_of (s : Schema.t) (u : Tuple.t) : D20.unit_class =
  D20.class_of_id (Value.to_int (Tuple.get u (Schema.find s "kind")))

let player_of (s : Schema.t) (u : Tuple.t) : int = Value.to_int (Tuple.get u (Schema.find s "player"))
let health_of (s : Schema.t) (u : Tuple.t) : float = Value.to_float (Tuple.get u (Schema.find s "health"))
let pos_of (s : Schema.t) (u : Tuple.t) : float * float =
  ( Value.to_float (Tuple.get u (Schema.find s "posx")),
    Value.to_float (Tuple.get u (Schema.find s "posy")) )
