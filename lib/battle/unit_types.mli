(** The battle simulation's environment schema and unit construction.
    Positions live on an integer lattice so every aggregate is exact and
    the naive and indexed engines stay bit-for-bit identical. *)

open Sgl_relalg

val schema : unit -> Schema.t

val make_unit :
  Schema.t -> key:int -> player:int -> klass:D20.unit_class -> x:int -> y:int -> Tuple.t

val klass_of : Schema.t -> Tuple.t -> D20.unit_class
val player_of : Schema.t -> Tuple.t -> int
val health_of : Schema.t -> Tuple.t -> float
val pos_of : Schema.t -> Tuple.t -> float * float
