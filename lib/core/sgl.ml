(* SGL — Scalable Games Language.

   The single public entry point.  A game built on this library:

   1. declares an environment schema ({!Schema}) whose effect attributes
      carry combination tags (sum / max / min);
   2. writes unit behaviour in SGL ({!Compile} turns source into a closed
      core program; the battle scripts in {!Battle.Scripts} are a worked
      example);
   3. assembles a {!Simulation} with a post-processing query, a movement
      configuration and a death rule, choosing the naive or the indexed
      aggregate evaluator;
   4. steps the simulation one clock tick at a time.

   See README.md for a quickstart and DESIGN.md for the paper mapping. *)

(* Utilities *)
module Prng = Sgl_util.Prng
module Fault_inject = Sgl_util.Fault_inject
module Vec2 = Sgl_util.Vec2
module Varray = Sgl_util.Varray
module Stats = Sgl_util.Stats
module Timer = Sgl_util.Timer
module Telemetry = Sgl_util.Telemetry
module Domain_pool = Sgl_util.Domain_pool

(* Relational substrate *)
module Value = Sgl_relalg.Value
module Schema = Sgl_relalg.Schema
module Tuple = Sgl_relalg.Tuple
module Relation = Sgl_relalg.Relation
module Expr = Sgl_relalg.Expr
module Predicate = Sgl_relalg.Predicate
module Aggregate = Sgl_relalg.Aggregate
module Combine = Sgl_relalg.Combine
module Delta = Sgl_relalg.Delta
module Algebra = Sgl_relalg.Algebra

(* Index structures *)
module Interval = Sgl_index.Interval
module Segment_tree = Sgl_index.Segment_tree
module Range_tree = Sgl_index.Range_tree
module Cascade_tree = Sgl_index.Cascade_tree
module Kd_tree = Sgl_index.Kd_tree
module Sweepline = Sgl_index.Sweepline
module Cat_index = Sgl_index.Cat_index

(* The language *)
module Ast = Sgl_lang.Ast
module Lexer = Sgl_lang.Lexer
module Parser = Sgl_lang.Parser
module Typecheck = Sgl_lang.Typecheck
module Normalize = Sgl_lang.Normalize
module Resolve = Sgl_lang.Resolve
module Core_ir = Sgl_lang.Core_ir
module Compile = Sgl_lang.Compile
module Pretty = Sgl_lang.Pretty
module Interp = Sgl_lang.Interp

(* Query optimization *)
module Plan = Sgl_qopt.Plan
module Rewrite = Sgl_qopt.Rewrite
module Agg_plan = Sgl_qopt.Agg_plan
module Eval = Sgl_qopt.Eval
module Exec = Sgl_qopt.Exec
module Loop_ir = Sgl_qopt.Loop_ir

(* Static analysis *)
module Analysis = struct
  module Diagnostic = Sgl_analysis.Diagnostic
  module Rules = Sgl_analysis.Rules
  module Effect_race = Sgl_analysis.Effect_race
  module Plan_check = Sgl_analysis.Plan_check
  module Perf_lint = Sgl_analysis.Perf_lint
  module Absint = Sgl_analysis.Absint
  module Footprint = Sgl_analysis.Footprint
  module Driver = Sgl_analysis.Driver
end

(* Durable state *)
module Persist = struct
  module Crc32 = Sgl_util.Crc32
  module Codec = Sgl_persist.Codec
  module Checkpoint = Sgl_persist.Checkpoint
  module Journal = Sgl_persist.Journal
end

(* The discrete simulation engine *)
module Postprocess = Sgl_engine.Postprocess
module Movement = Sgl_engine.Movement
module Simulation = Sgl_engine.Simulation
module Trace = Sgl_engine.Trace
module Fault = Sgl_engine.Fault

(* Live observability: flight recorder, diagnostics endpoint, query port *)
module Obs = struct
  module Flight = Sgl_obs.Flight
  module Prometheus = Sgl_obs.Prometheus
  module Query = Sgl_obs.Query
  module Health = Sgl_obs.Health
  module Server = Sgl_obs.Server
  module Live = Sgl_obs.Live
end

(* The battle case study *)
module Battle = struct
  module D20 = Sgl_battle.D20
  module Unit_types = Sgl_battle.Unit_types
  module Scripts = Sgl_battle.Scripts
  module Scenario = Sgl_battle.Scenario
end

(* ------------------------------------------------------------------ *)
(* Convenience layer *)

(* [compile ?consts ~schema source] compiles SGL source text. *)
let compile = Sgl_lang.Compile.compile

(* [explain ?consts ~schema source] pretty-prints the optimized plan and
   the index strategy chosen for every aggregate instance — the tool a
   designer uses to understand what the compiler made of a script. *)
let explain ?(consts = []) ~schema source : string =
  let prog = Sgl_lang.Compile.compile ~consts ~schema source in
  let compiled = Sgl_qopt.Exec.compile prog in
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  Fmt.pf ppf "@[<v>== aggregate instances ==@,";
  Array.iteri
    (fun i agg ->
      Fmt.pf ppf "agg#%d %a -> %s@," i Sgl_relalg.Aggregate.pp agg
        (Sgl_qopt.Agg_plan.strategy_name (Sgl_qopt.Agg_plan.analyze schema agg)))
    prog.Sgl_lang.Core_ir.aggregates;
  Fmt.pf ppf "@,== optimized plans ==@,";
  List.iter
    (fun (s : Sgl_lang.Core_ir.script) ->
      match Sgl_qopt.Exec.find_plan compiled s.Sgl_lang.Core_ir.name with
      | Some plan ->
        Fmt.pf ppf "@,script %s:@,  @[<v>%a@]@," s.Sgl_lang.Core_ir.name Sgl_qopt.Plan.pp plan
      | None -> ())
    prog.Sgl_lang.Core_ir.scripts;
  Fmt.pf ppf "@]@.";
  Buffer.contents buf

let version = "1.0.0"
