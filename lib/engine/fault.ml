(* Structured simulation faults.

   Any exception escaping a tick phase is wrapped into a [Fault.t] carrying
   everything an operator needs to reproduce and triage it: the tick, the
   phase, the script group (when attributable), the evaluator that was
   running, the raw exception and its backtrace, and how many further lane
   failures the domain pool suppressed behind the one re-raised.

   Faults accumulate in a bounded in-memory [Log]: a long-running world
   under a permissive fault policy must not leak memory while a bad script
   fails every tick, so the log keeps the first [capacity] faults verbatim
   and thereafter only counts. *)

type phase =
  | Decision
  | Post
  | Movement
  | Death

let phase_name = function
  | Decision -> "decision"
  | Post -> "post"
  | Movement -> "movement"
  | Death -> "death"

type t = {
  tick : int;
  phase : phase;
  script : string option; (* the failing script group, when attributable *)
  evaluator : string;
  exn : exn;
  message : string;
  backtrace : string;
  suppressed : int; (* further lane failures hidden behind [exn] *)
}

exception Error of t

let make ~(tick : int) ~(phase : phase) ?script ~(evaluator : string) ?(suppressed = 0)
    (exn : exn) (bt : Printexc.raw_backtrace) : t =
  {
    tick;
    phase;
    script;
    evaluator;
    exn;
    message = Printexc.to_string exn;
    backtrace = Printexc.raw_backtrace_to_string bt;
    suppressed;
  }

let pp ppf (f : t) =
  Fmt.pf ppf "tick %d [%s/%s]%a: %s%a" f.tick (phase_name f.phase) f.evaluator
    (fun ppf -> function None -> () | Some s -> Fmt.pf ppf " script %s" s)
    f.script f.message
    (fun ppf n -> if n > 0 then Fmt.pf ppf " (+%d suppressed lane failures)" n)
    f.suppressed

let () =
  Printexc.register_printer (function
    | Error f -> Some (Fmt.str "Fault.Error(%a)" pp f)
    | _ -> None)

module Log = struct
  type fault = t

  type t = {
    capacity : int;
    entries : fault Sgl_util.Varray.t;
    mutable total : int;
  }

  let create ?(capacity = 64) () : t =
    if capacity < 1 then invalid_arg "Fault.Log.create: capacity must be positive";
    {
      capacity;
      entries =
        Sgl_util.Varray.create
          {
            tick = 0; phase = Decision; script = None; evaluator = ""; exn = Not_found;
            message = ""; backtrace = ""; suppressed = 0;
          };
      total = 0;
    }

  let push (log : t) (f : fault) : unit =
    log.total <- log.total + 1;
    if Sgl_util.Varray.length log.entries < log.capacity then Sgl_util.Varray.push log.entries f

  let to_list (log : t) : fault list = Sgl_util.Varray.to_list log.entries
  let total (log : t) : int = log.total
  let dropped (log : t) : int = log.total - Sgl_util.Varray.length log.entries
end
