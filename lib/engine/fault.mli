(** Structured simulation faults and the bounded in-memory fault log.

    A fault wraps an exception that escaped a tick phase with the context
    needed to reproduce it: tick, phase, script group (when attributable),
    evaluator kind, the exception and its backtrace, and the number of
    additional domain-pool lane failures suppressed behind it. *)

type phase =
  | Decision
  | Post
  | Movement
  | Death

val phase_name : phase -> string

type t = {
  tick : int;
  phase : phase;
  script : string option;
  evaluator : string;
  exn : exn;
  message : string;
  backtrace : string;
  suppressed : int;
}

(** Raised by {!Simulation.step} under the [Fail] policy (and by [Degrade]
    once no weaker evaluator remains): the original exception, in context. *)
exception Error of t

val make :
  tick:int ->
  phase:phase ->
  ?script:string ->
  evaluator:string ->
  ?suppressed:int ->
  exn ->
  Printexc.raw_backtrace ->
  t

val pp : t Fmt.t

(** A bounded fault log: keeps the first [capacity] faults verbatim and
    thereafter only counts, so a script failing every tick for hours cannot
    exhaust memory. *)
module Log : sig
  type fault = t
  type t

  val create : ?capacity:int -> unit -> t

  val push : t -> fault -> unit
  val to_list : t -> fault list

  (** Faults ever pushed, including dropped ones. *)
  val total : t -> int

  val dropped : t -> int
end
