(* The movement phase (Section 6): "Units attempt to move in directions
   they have decided on earlier.  This is done in random order, with
   collision detection and very simple pathfinding rules."

   The world is an integer grid with at most one unit per cell (the paper's
   density experiments measure "percent of game grid squares occupied").
   Each unit's decided movement vector is clamped to its per-tick speed and
   rounded to a destination cell; if the cell is taken, simple pathfinding
   tries shorter and axis-aligned alternatives before giving up.  Positions
   therefore remain integral, which keeps every float computation exact and
   the naive and indexed evaluators bit-for-bit identical. *)

open Sgl_util
open Sgl_relalg

type config = {
  posx : int; (* state attributes *)
  posy : int;
  mvx : int; (* effect attributes carrying the decided vector *)
  mvy : int;
  speed : float; (* WALK_DIST_PER_TICK *)
  speed_attr : int option; (* per-unit speed override (e.g. a freeze effect) *)
  width : int; (* grid bounds: cells [0, width) x [0, height) *)
  height : int;
}

type grid = {
  config : config;
  cells : (int, int) Hashtbl.t; (* (x, y) encoded -> unit key *)
}

let encode g x y = (y * g.config.width) + x

let in_bounds g x y = x >= 0 && x < g.config.width && y >= 0 && y < g.config.height

let occupied g x y = Hashtbl.mem g.cells (encode g x y)

let make_grid (config : config) ~(schema : Schema.t) (units : Tuple.t array) : grid =
  let g = { config; cells = Hashtbl.create (Array.length units * 2) } in
  Array.iter
    (fun u ->
      let x = Value.to_int (Tuple.get u config.posx) and y = Value.to_int (Tuple.get u config.posy) in
      Hashtbl.replace g.cells (encode g x y) (Tuple.key schema u))
    units;
  g

let move_unit g ~key ~from_:(x0, y0) ~to_:(x1, y1) =
  Hashtbl.remove g.cells (encode g x0 y0);
  Hashtbl.replace g.cells (encode g x1 y1) key

(* A free random cell, for resurrection (Section 6).  Rejection-samples
   deterministically from the tick PRNG; gives up (returning None) on a
   full grid. *)
let random_free_cell g (prng : Prng.t) ~(tick : int) ~(salt : int) : (int * int) option =
  let rec try_ n =
    if n > 10_000 then None
    else begin
      let x = Prng.int prng ~bound:g.config.width [ tick; salt; n; 11 ] in
      let y = Prng.int prng ~bound:g.config.height [ tick; salt; n; 13 ] in
      if occupied g x y then try_ (n + 1) else Some (x, y)
    end
  in
  try_ 0

(* Candidate destinations in decreasing preference: the full clamped step,
   the half step, each axis alone, then staying put. *)
let candidates ?speed (config : config) ~(x : int) ~(y : int) ~(vx : float) ~(vy : float) :
    (int * int) list =
  let speed = Option.value speed ~default:config.speed in
  let v = Vec2.clamp_norm speed (Vec2.make vx vy) in
  let full = (x + int_of_float (Float.round v.Vec2.x), y + int_of_float (Float.round v.Vec2.y)) in
  let half =
    ( x + int_of_float (Float.round (v.Vec2.x /. 2.)),
      y + int_of_float (Float.round (v.Vec2.y /. 2.)) )
  in
  let x_only = (x + int_of_float (Float.round v.Vec2.x), y) in
  let y_only = (x, y + int_of_float (Float.round v.Vec2.y)) in
  List.filter (fun c -> c <> (x, y)) [ full; half; x_only; y_only ]

(* Execute the phase: mutates the position attributes of [units] in place
   and returns the grid (reused by death handling).  Each successful move
   is recorded against [delta] (posx/posy + unit key) when given, so the
   cross-tick index cache knows which spatial structures went stale. *)
let run ?(delta : Delta.t option) (config : config) ~(schema : Schema.t) ~(prng : Prng.t)
    ~(tick : int) ~(units : Tuple.t array) ~(acc : Combine.Acc.t) : grid =
  let g = make_grid config ~schema units in
  let order = Array.init (Array.length units) (fun i -> i) in
  Prng.shuffle_in_place prng [ tick; 17 ] order;
  Array.iter
    (fun i ->
      let u = units.(i) in
      let key = Tuple.key schema u in
      match Combine.Acc.find_opt acc key with
      | None -> ()
      | Some effects ->
        let vx = Value.to_float (Tuple.get effects config.mvx) in
        let vy = Value.to_float (Tuple.get effects config.mvy) in
        if vx <> 0. || vy <> 0. then begin
          let x = Value.to_int (Tuple.get u config.posx) in
          let y = Value.to_int (Tuple.get u config.posy) in
          let speed =
            match config.speed_attr with
            | None -> config.speed
            | Some i -> Float.min config.speed (Value.to_float (Tuple.get u i))
          in
          let dest =
            List.find_opt
              (fun (cx, cy) -> in_bounds g cx cy && not (occupied g cx cy))
              (candidates ~speed config ~x ~y ~vx ~vy)
          in
          match dest with
          | None -> () (* blocked on every side: wait for the next tick *)
          | Some (cx, cy) ->
            move_unit g ~key ~from_:(x, y) ~to_:(cx, cy);
            Tuple.set u config.posx (Value.Float (float_of_int cx));
            Tuple.set u config.posy (Value.Float (float_of_int cy));
            (match delta with
            | None -> ()
            | Some d ->
              if cx <> x then Delta.record d ~attr:config.posx ~key;
              if cy <> y then Delta.record d ~attr:config.posy ~key)
        end)
    order;
  g
