(** The movement phase (Section 6): random order, collision detection on an
    integer grid, simple pathfinding. *)

open Sgl_util
open Sgl_relalg

type config = {
  posx : int;
  posy : int;
  mvx : int;
  mvy : int;
  speed : float; (* max cells per tick *)
  speed_attr : int option; (* per-unit speed override (capped by [speed]) *)
  width : int;
  height : int;
}

(** Occupancy grid: at most one unit per cell. *)
type grid

val make_grid : config -> schema:Schema.t -> Tuple.t array -> grid
val in_bounds : grid -> int -> int -> bool
val occupied : grid -> int -> int -> bool
val move_unit : grid -> key:int -> from_:int * int -> to_:int * int -> unit

(** Deterministic rejection-sampled free cell, for resurrection; [None] on a
    (nearly) full grid. *)
val random_free_cell : grid -> Prng.t -> tick:int -> salt:int -> (int * int) option

(** Candidate destinations in decreasing preference (full step, half step,
    each axis alone). *)
val candidates : ?speed:float -> config -> x:int -> y:int -> vx:float -> vy:float -> (int * int) list

(** Execute the phase: mutate positions in place, return the grid.  Each
    successful move records posx/posy + unit key against [delta] when
    given (cross-tick index cache bookkeeping). *)
val run :
  ?delta:Delta.t ->
  config ->
  schema:Schema.t ->
  prng:Prng.t ->
  tick:int ->
  units:Tuple.t array ->
  acc:Combine.Acc.t ->
  grid
