(* The post-processing step (Example 4.1): apply the tick's combined
   effects to the unit state.

   The step is itself a query — "SELECT u.key, ..., u.health - u.damage +
   u.inaura AS health ... FROM E u" — so we keep it programmable: each
   state attribute gets an update expression over [u] (the old state) and
   [e] (the unit's combined-effect row).  Movement is excluded here; the
   movement phase (Section 6) owns positions. *)

open Sgl_relalg

type t = {
  updates : (int * Expr.t) list; (* state attr := expr(u = old state, e = effects) *)
  remove_when : Expr.t; (* e.g. health <= 0: the unit dies *)
}

exception Postprocess_error of string

let make ~(schema : Schema.t) ~(updates : (int * Expr.t) list) ~(remove_when : Expr.t) : t =
  List.iter
    (fun (i, _) ->
      if Schema.tag_at schema i <> Schema.Const then
        raise
          (Postprocess_error
             (Fmt.str "post-processing writes state, but %S is an effect attribute"
                (Schema.name_at schema i))))
    updates;
  { updates; remove_when }

(* Effect attributes the step consumes: the [e]-slots of its update
   expressions and death rule.  The static analyzer treats any other
   effect attribute a script writes as a dead contribution. *)
let reads (t : t) : int list =
  List.sort_uniq compare
    (List.concat_map (fun (_, e) -> Expr.e_slots e) t.updates @ Expr.e_slots t.remove_when)

(* The unit's combined-effect row: initialized zeros folded with whatever
   the accumulator collected (max-tagged attrs see max(0, contribution),
   matching the paper's initialize-to-zero semantics). *)
let effects_row (schema : Schema.t) (acc : Combine.Acc.t) (key : int) : Tuple.t =
  let row = Tuple.create schema in
  (match Combine.Acc.find_opt acc key with
  | None -> ()
  | Some contributions ->
    List.iter
      (fun i ->
        let zero = Value.zero_of (Schema.ty_at schema i) in
        Tuple.set row i (Schema.combine_values schema i zero (Tuple.get contributions i)))
      (Schema.effect_indices schema));
  row

(* Apply the step.  Returns the new state row for each unit plus whether it
   survived; effect attributes of the new state are reset to zero.  When
   [delta] is given, every update whose written value differs from the old
   one is recorded against it (attribute and unit key) — the mutation-side
   half of the cross-tick index cache's contract: a change this phase fails
   to record would let a stale structure survive. *)
let apply ?(delta : Delta.t option) (t : t) ~(schema : Schema.t)
    ~(rand_for : key:int -> int -> int) ~(units : Tuple.t array) ~(acc : Combine.Acc.t) :
    (Tuple.t * bool) array =
  Sgl_util.Fault_inject.hit "post.apply";
  Array.map
    (fun u ->
      let key = Tuple.key schema u in
      let effects = effects_row schema acc key in
      let ctx = { Expr.u; e = Some effects; rand = rand_for ~key } in
      let out = Tuple.copy u in
      List.iter
        (fun (i, expr) ->
          let v = Expr.eval ctx expr in
          (match delta with
          | Some d when not (Value.equal v (Tuple.get u i)) -> Delta.record d ~attr:i ~key
          | _ -> ());
          Tuple.set out i v)
        t.updates;
      let alive = not (Expr.eval_bool ctx t.remove_when) in
      (out, alive))
    units

(* ------------------------------------------------------------------ *)
(* A ready-made specification for battle-style schemas: the Example 4.1
   query minus movement.  The cooldown restarts from the unit's own
   "reload" attribute when it acted this tick. *)
let battle_spec ~(schema : Schema.t) : t =
  let a name = Schema.find schema name in
  let health = a "health"
  and max_health = a "max_health"
  and cooldown = a "cooldown"
  and damage = a "damage"
  and inaura = a "inaura"
  and reload = a "reload"
  and weaponused = a "weaponused" in
  let open Expr in
  let new_health =
    (* min(max_health, health - damage + inaura), never healed beyond the
       initial health (Section 3.2) *)
    MinOf
      ( UAttr max_health,
        Binop (Add, Binop (Sub, UAttr health, EAttr damage), EAttr inaura) )
  in
  let new_cooldown =
    (* max(0, cooldown - 1) + weaponused * u.reload *)
    Binop
      ( Add,
        MaxOf (Const (Value.Int 0), Binop (Sub, UAttr cooldown, Const (Value.Int 1))),
        Binop (Mul, EAttr weaponused, UAttr reload) )
  in
  make ~schema
    ~updates:[ (health, new_health); (cooldown, new_cooldown) ]
    ~remove_when:(Cmp (Le, UAttr health, Binop (Add, EAttr damage, Neg (EAttr inaura))))
