(** The post-processing step (Example 4.1): a programmable query applying
    the tick's combined effects to unit state. *)

open Sgl_relalg

type t

exception Postprocess_error of string

(** [make ~schema ~updates ~remove_when] builds a step.  Each update writes
    a *state* (const-tagged) attribute from an expression over [u] (the old
    state) and [e] (the unit's combined-effect row); [remove_when] decides
    death.  Raises {!Postprocess_error} if an update targets an effect
    attribute. *)
val make : schema:Schema.t -> updates:(int * Expr.t) list -> remove_when:Expr.t -> t

(** Effect attributes the step consumes: the [e]-slots of its update
    expressions and death rule (sorted, deduplicated).  Used by the static
    analyzer's dead-effect lint. *)
val reads : t -> int list

(** The unit's combined-effect row: initialized zeros folded with the
    accumulator's contributions. *)
val effects_row : Schema.t -> Combine.Acc.t -> int -> Tuple.t

(** Apply the step to every unit; returns each new state row paired with
    whether the unit survived.  When [delta] is given, each update that
    actually changes the attribute's value is recorded against it
    (attribute + unit key) for the cross-tick index cache. *)
val apply :
  ?delta:Delta.t ->
  t ->
  schema:Schema.t ->
  rand_for:(key:int -> int -> int) ->
  units:Tuple.t array ->
  acc:Combine.Acc.t ->
  (Tuple.t * bool) array

(** Ready-made battle-style step: health := min(max_health, health - damage
    + inaura); cooldown := max(0, cooldown-1) + weaponused * reload; death
    when health would drop to zero.  Requires attributes named health,
    max_health, cooldown, damage, inaura, reload, weaponused. *)
val battle_spec : schema:Schema.t -> t
