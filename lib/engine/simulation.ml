(* The discrete simulation engine (Sections 2.2 and 6).

   Each clock tick runs the paper's phases:

   1. decision + action — the optimized plans execute set-at-a-time over
      every scripted unit; index building happens inside the pluggable
      evaluator and is accounted separately (the paper's two index-building
      phases);
   2. post-processing — the Example 4.1 query applies combined effects to
      unit state;
   3. movement — random order, collision detection, simple pathfinding;
   4. death — dead units are removed, or "resurrected at a position chosen
      uniformly at random" to keep the workload constant (Section 6). *)

open Sgl_util
open Sgl_relalg
open Sgl_lang
open Sgl_qopt

type death_rule =
  | Remove
  | Resurrect of { health : int; max_health : int }

type config = {
  prog : Core_ir.program;
  script_of : Tuple.t -> string option; (* None: the unit acts as "empty" *)
  postprocess : Postprocess.t;
  movement : Movement.config option;
  death : death_rule;
  seed : int;
  optimize : bool; (* run the Section 5.2 plan rewrites *)
}

type evaluator_kind =
  | Naive
  | Indexed
  | Parallel of { domains : int } (* chunked decision phase over a domain pool *)

let evaluator_name = function
  | Naive -> "naive"
  | Indexed -> "indexed"
  | Parallel { domains } -> Printf.sprintf "parallel:%d" domains

(* The engine behind a simulation: one evaluator driven sequentially, or a
   family of evaluators fanned out over a shared domain pool. *)
type engine =
  | Seq of Eval.t
  | Par of { pool : Domain_pool.t; family : Eval.family }

type timings = {
  decision : Timer.t; (* includes index building; see evaluator stats *)
  post : Timer.t;
  movement : Timer.t;
  death : Timer.t;
}

type t = {
  config : config;
  compiled : Exec.compiled;
  engine : engine;
  prng : Prng.t;
  mutable units : Tuple.t array;
  mutable tick : int;
  timings : timings;
  mutable deaths : int;
  mutable resurrections : int;
}

let create (config : config) ~(evaluator : evaluator_kind) ~(units : Tuple.t array) : t =
  let schema = config.prog.Core_ir.schema in
  let aggregates = config.prog.Core_ir.aggregates in
  let engine =
    match evaluator with
    | Naive -> Seq (Eval.naive ~schema ~aggregates)
    | Indexed -> Seq (Eval.indexed ~schema ~aggregates ())
    | Parallel { domains } ->
      (* Pools are shared process-wide by size: repeated simulations reuse
         the same worker domains instead of exhausting the runtime's
         domain budget. *)
      let pool = Domain_pool.shared ~domains in
      let family = Eval.indexed_family ~schema ~aggregates ~chunks:(Domain_pool.size pool) () in
      Par { pool; family }
  in
  {
    config;
    compiled = Exec.compile ~optimize:config.optimize config.prog;
    engine;
    prng = Prng.create config.seed;
    units = Array.map Tuple.copy units;
    tick = 0;
    timings =
      { decision = Timer.create (); post = Timer.create (); movement = Timer.create ();
        death = Timer.create () };
    deaths = 0;
    resurrections = 0;
  }

let schema t = t.config.prog.Core_ir.schema
let units t = t.units
let tick_count t = t.tick

(* Partition the current units into script groups. *)
let groups (t : t) : Exec.group list =
  let by_script : (string, int Varray.t) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  Array.iteri
    (fun i u ->
      match t.config.script_of u with
      | None -> ()
      | Some name -> begin
        match Hashtbl.find_opt by_script name with
        | Some bucket -> Varray.push bucket i
        | None ->
          let bucket = Varray.create 0 in
          Varray.push bucket i;
          Hashtbl.add by_script name bucket;
          order := name :: !order
      end)
    t.units;
  List.rev_map
    (fun name -> { Exec.script = name; members = Varray.to_array (Hashtbl.find by_script name) })
    !order

let step (t : t) : unit =
  let sch = schema t in
  let tick = t.tick in
  let rand_for ~key i = Prng.script_random t.prng ~tick ~key i in
  (* decision + action *)
  let acc =
    Timer.record t.timings.decision (fun () ->
        match t.engine with
        | Seq evaluator ->
          Exec.run_tick t.compiled ~evaluator ~units:t.units ~groups:(groups t) ~rand_for
        | Par { pool; family } ->
          Exec.run_tick_parallel t.compiled ~pool ~family ~units:t.units ~groups:(groups t)
            ~rand_for)
  in
  (* post-processing *)
  let results =
    Timer.record t.timings.post (fun () ->
        Postprocess.apply t.config.postprocess ~schema:sch ~rand_for ~units:t.units ~acc)
  in
  let alive = Varray.create [||] and dead = Varray.create [||] in
  Array.iter
    (fun (row, survived) -> if survived then Varray.push alive row else Varray.push dead row)
    results;
  let alive_units = Varray.to_array alive in
  (* movement over the survivors *)
  let grid =
    Timer.record t.timings.movement (fun () ->
        Option.map
          (fun mconfig ->
            Movement.run mconfig ~schema:sch ~prng:t.prng ~tick ~units:alive_units ~acc)
          t.config.movement)
  in
  (* death handling *)
  let final =
    Timer.record t.timings.death (fun () ->
        match t.config.death with
        | Remove ->
          t.deaths <- t.deaths + Varray.length dead;
          alive_units
        | Resurrect { health; max_health } ->
          t.deaths <- t.deaths + Varray.length dead;
          let revived =
            Array.map
              (fun row ->
                let out = Tuple.copy row in
                Tuple.set out health (Tuple.get out max_health);
                (match (grid, t.config.movement) with
                | Some g, Some mconfig -> begin
                  let key = Tuple.key sch out in
                  match Movement.random_free_cell g t.prng ~tick ~salt:key with
                  | Some (x, y) ->
                    Tuple.set out mconfig.Movement.posx (Value.Float (float_of_int x));
                    Tuple.set out mconfig.Movement.posy (Value.Float (float_of_int y));
                    Movement.move_unit g ~key
                      ~from_:
                        ( Value.to_int (Tuple.get row mconfig.Movement.posx),
                          Value.to_int (Tuple.get row mconfig.Movement.posy) )
                      ~to_:(x, y)
                  | None -> ()
                end
                | _ -> ());
                t.resurrections <- t.resurrections + 1;
                out)
              (Varray.to_array dead)
          in
          Array.append alive_units revived)
  in
  t.units <- final;
  t.tick <- t.tick + 1

let run (t : t) ~(ticks : int) : unit =
  (* Fix the target tick up front: [step] can grow or shrink [t.units]
     (death, resurrection), and the bound must not depend on anything a
     tick mutates. *)
  let target = t.tick + ticks in
  while t.tick < target do
    step t
  done

(* ------------------------------------------------------------------ *)
(* Reporting *)

type report = {
  ticks : int;
  n_units : int;
  decision_s : float;
  build_s : float; (* portion of decision spent building indexes *)
  post_s : float;
  movement_s : float;
  death_s : float;
  total_s : float;
  index_builds : int;
  index_probes : int;
  naive_scans : int;
  uniform_hits : int;
  deaths : int;
  resurrections : int;
}

let report (t : t) : report =
  let s =
    match t.engine with
    | Seq evaluator -> evaluator.Eval.stats
    | Par { family; _ } -> Eval.family_stats family
  in
  let decision_s = Timer.elapsed t.timings.decision in
  let post_s = Timer.elapsed t.timings.post in
  let movement_s = Timer.elapsed t.timings.movement in
  let death_s = Timer.elapsed t.timings.death in
  {
    ticks = t.tick;
    n_units = Array.length t.units;
    decision_s;
    build_s = s.Eval.build_seconds;
    post_s;
    movement_s;
    death_s;
    total_s = decision_s +. post_s +. movement_s +. death_s;
    index_builds = s.Eval.index_builds;
    index_probes = s.Eval.index_probes;
    naive_scans = s.Eval.naive_scans;
    uniform_hits = s.Eval.uniform_hits;
    deaths = t.deaths;
    resurrections = t.resurrections;
  }

let pp_report ppf (r : report) =
  Fmt.pf ppf
    "@[<v>ticks=%d units=%d total=%.3fs (decision=%.3fs [build=%.3fs] post=%.3fs move=%.3fs \
     death=%.3fs)@,builds=%d probes=%d scans=%d uniform=%d deaths=%d resurrections=%d@]"
    r.ticks r.n_units r.total_s r.decision_s r.build_s r.post_s r.movement_s r.death_s
    r.index_builds r.index_probes r.naive_scans r.uniform_hits r.deaths r.resurrections
