(* The discrete simulation engine (Sections 2.2 and 6).

   Each clock tick runs the paper's phases:

   1. decision + action — the optimized plans execute set-at-a-time over
      every scripted unit; index building happens inside the pluggable
      evaluator and is accounted separately (the paper's two index-building
      phases);
   2. post-processing — the Example 4.1 query applies combined effects to
      unit state;
   3. movement — random order, collision detection, simple pathfinding;
   4. death — dead units are removed, or "resurrected at a position chosen
      uniformly at random" to keep the workload constant (Section 6). *)

open Sgl_util
open Sgl_relalg
open Sgl_lang
open Sgl_qopt

type death_rule =
  | Remove
  | Resurrect of { health : int; max_health : int }

type config = {
  prog : Core_ir.program;
  script_of : Tuple.t -> string option; (* None: the unit acts as "empty" *)
  postprocess : Postprocess.t;
  movement : Movement.config option;
  death : death_rule;
  seed : int;
  optimize : bool; (* run the Section 5.2 plan rewrites *)
}

type evaluator_kind =
  | Naive
  | Indexed
  | Parallel of { domains : int } (* chunked decision phase over a domain pool *)
  | Fused (* plans lowered to the loop IR and compiled into kernels *)

let evaluator_name = function
  | Naive -> "naive"
  | Indexed -> "indexed"
  | Parallel { domains } -> Printf.sprintf "parallel:%d" domains
  | Fused -> "fused"

(* What [step] does when a tick phase raises (ticks are transactional:
   the pre-tick state is always intact when the policy gets to decide). *)
type fault_policy =
  | Fail (* roll back, re-raise with context *)
  | Quarantine_script (* a failing script group is excluded and reported *)
  | Degrade (* demote the evaluator parallel -> indexed -> naive and retry *)

let fault_policy_name = function
  | Fail -> "fail"
  | Quarantine_script -> "quarantine"
  | Degrade -> "degrade"

(* The next-weaker evaluator of the demotion chain.  Fused demotes to the
   interpreted indexed evaluator: same index structures, no kernels. *)
let demotion = function
  | Fused -> Some Indexed
  | Parallel _ -> Some Indexed
  | Indexed -> Some Naive
  | Naive -> None

(* The engine behind a simulation: one evaluator driven sequentially, a
   family of evaluators fanned out over a shared domain pool, or one
   evaluator driven through the fused kernels. *)
type engine =
  | Seq of Eval.t
  | Par of { pool : Domain_pool.t; family : Eval.family }
  | Fus of { evaluator : Eval.t; kernels : Exec.fused }

(* Global mirror in the ambient registry (gated, off by default) so
   --metrics output carries rollbacks next to the evaluator counters; the
   per-simulation registry below is the report's source of truth. *)
let tel_rollbacks = Telemetry.counter "sim.rollbacks"

(* Durable-state telemetry (ambient registry, gated like the rest). *)
let tel_checkpoints = Telemetry.counter "persist.checkpoints"
let tel_journal_records = Telemetry.counter "persist.journal_records"
let tel_journal_bytes = Telemetry.counter "persist.journal_bytes"
let tel_recoveries = Telemetry.counter "persist.recoveries"
let tel_fallbacks = Telemetry.counter "persist.fallbacks"
let tel_replayed = Telemetry.counter "persist.replayed_ticks"
let tel_checkpoint_ns = Telemetry.histogram "persist.checkpoint_ns"

module Checkpoint = Sgl_persist.Checkpoint
module Journal = Sgl_persist.Journal
module Codec = Sgl_persist.Codec

(* Armed durable persistence: a journal record per committed tick, a new
   checkpoint generation every [p_every] ticks (0: only the generation
   written when arming). *)
type persistence = {
  p_dir : string;
  p_every : int;
  p_fsync : bool;
  p_keep : int;
  mutable p_base : int; (* tick of the newest durable checkpoint *)
  mutable p_journal : Journal.writer option;
}

type timings = {
  decision : Timer.t; (* includes index building; see evaluator stats *)
  post : Timer.t;
  movement : Timer.t;
  death : Timer.t;
}

(* What one committed tick did, as deltas against the previous commit.
   Handed to the observer (the flight recorder) right after the
   durability hooks, so a sample describes exactly the state a crash
   would recover to.  Everything here is derived from state the engine
   already tracks; the digest is the only extra per-tick cost, and it is
   computed only when an observer is installed. *)
type tick_sample = {
  s_tick : int;
  s_units : int;
  s_digest : int; (* Codec.units_digest of the committed unit array *)
  s_tick_s : float; (* wall-clock of the whole step, retries included *)
  s_decision_s : float;
  s_post_s : float;
  s_movement_s : float;
  s_death_s : float;
  s_deaths : int;
  s_resurrections : int;
  s_faults : int;
  s_rollbacks : int;
  s_retries : int;
  s_demotions : int;
  s_index_builds : int;
  s_index_reuses : int;
  s_evaluator : string; (* evaluator that committed the tick *)
}

type t = {
  config : config;
  compiled : Exec.compiled;
  mutable engine : engine; (* replaced when [Degrade] demotes *)
  mutable evaluator : evaluator_kind;
  policy : fault_policy;
  prng : Prng.t;
  mutable units : Tuple.t array;
  (* Columnar mirror of [units] (struct-of-arrays, one typed column per
     schema attribute).  [units] stays authoritative; the mirror is
     refreshed copy-on-write at each commit point, keyed by the tick's
     dirty-attribute delta, and handed to the decision phase as the
     evaluators' and kernels' contiguous access path.  A faulting tick
     never refreshes it, so after rollback it still mirrors the restored
     unit array. *)
  store : Colstore.t;
  columnar : bool; (* hand the mirror to the decision phase as an access path *)
  index_cache : bool; (* hand deltas to the evaluator across ticks *)
  (* What the last committed tick changed, relative to the unit array its
     decision phase saw.  Consumed by the next tick's [begin_tick]/
     [prepare]; cleared on rollback, so a retried or failed tick always
     reopens the cache cold rather than against a delta whose mutations
     were undone. *)
  mutable pending_delta : Delta.t option;
  (* Per-column CRCs behind the last state digest, tagged with the tick it
     was computed at.  Lets the next commit's digest recompute only the
     columns the tick dirtied (same [Delta] contract the columnar mirror's
     copy-on-write refresh trusts) and recombine the rest.  Dropped on
     restore; a missing or stale entry falls back to a full pass. *)
  mutable digest_cache : (int * Codec.digest_cache) option;
  mutable tick : int;
  timings : timings;
  (* The per-simulation telemetry registry: always enabled, private to
     this simulation, the single source of truth for the report's engine
     counters.  Counters (not mutable fields) so the transactional tick
     can snapshot/restore them with [Counter.value]/[Counter.set] and so
     they read uniformly with the ambient registry's metrics. *)
  tel : Telemetry.Registry.t;
  c_deaths : Telemetry.counter;
  c_resurrections : Telemetry.counter;
  c_retries : Telemetry.counter; (* tick retries performed by Degrade *)
  c_rollbacks : Telemetry.counter; (* snapshot restores after a fault *)
  c_faults : Telemetry.counter; (* faults observed (log may drop some) *)
  c_suppressed : Telemetry.counter; (* secondary failures hidden by a re-raise *)
  h_tick_s : Telemetry.histogram; (* per-tick wall-clock, feeds report percentiles *)
  (* The per-commit observer (None by default).  The engine never depends
     on what it does; nothing it can reach feeds back into unit state, so
     runs are bit-identical with and without one installed. *)
  mutable observer : (tick_sample -> unit) option;
  (* fault-tolerance state *)
  fault_log : Fault.Log.t;
  mutable phase : Fault.phase; (* the phase currently executing, for context *)
  mutable quarantined : string list; (* script groups excluded from future ticks *)
  mutable degradations : (int * string * string) list; (* tick, from, to *)
  mutable retired_stats : Eval.eval_stats; (* totals of engines retired by demotion *)
  mutable persist : persistence option; (* armed by [checkpoint_every] *)
}

let make_engine ~(schema : Schema.t) ~(aggregates : Aggregate.t array)
    ~(compiled : Exec.compiled) (evaluator : evaluator_kind) : engine =
  match evaluator with
  | Naive -> Seq (Eval.naive ~schema ~aggregates)
  | Indexed -> Seq (Eval.indexed ~schema ~aggregates ())
  | Parallel { domains } ->
    (* Pools are shared process-wide by size: repeated simulations reuse
       the same worker domains instead of exhausting the runtime's
       domain budget. *)
    let pool = Domain_pool.shared ~domains in
    let family = Eval.indexed_family ~schema ~aggregates ~chunks:(Domain_pool.size pool) () in
    Par { pool; family }
  | Fused ->
    (* Kernels specialize the plans, not the evaluator: the indexed
       evaluator underneath still owns aggregate evaluation, AoE
       combination and the cross-tick index cache.  The interval-fact
       folding oracle runs with untrusted schema ranges (the engine must
       stay correct on stores that violate the declared contracts), so it
       only discharges expressions that are constant on *every* store. *)
    let oracle = Sgl_analysis.Absint.make_oracle compiled.Exec.prog in
    Fus
      {
        evaluator = Eval.indexed ~schema ~aggregates ();
        kernels = Exec.fuse ~fold:oracle.Sgl_analysis.Absint.fold compiled;
      }

let create ?(fault_policy = Fail) ?(fault_log_capacity = 64) ?(index_cache = true)
    ?(columnar = true) (config : config) ~(evaluator : evaluator_kind)
    ~(units : Tuple.t array) : t =
  let schema = config.prog.Core_ir.schema in
  let aggregates = config.prog.Core_ir.aggregates in
  let tel = Telemetry.Registry.create ~enabled:true () in
  (* Interval facts for the optimizer's guard pruning.  Untrusted ranges:
     folding decisions must hold on any store, declared contracts or not.
     The cross-evaluator conformance harness and V002 validation (which
     discharges guards with this same prover) keep the hook honest. *)
  let oracle = Sgl_analysis.Absint.make_oracle config.prog in
  let compiled =
    Exec.compile ~optimize:config.optimize ~prove:oracle.Sgl_analysis.Absint.prove config.prog
  in
  {
    config;
    compiled;
    engine = make_engine ~schema ~aggregates ~compiled evaluator;
    evaluator;
    policy = fault_policy;
    prng = Prng.create config.seed;
    units = Array.map Tuple.copy units;
    (* decomposed into columns at build time; shares nothing with [units] *)
    store = Colstore.of_tuples schema units;
    columnar;
    index_cache;
    pending_delta = None;
    digest_cache = None;
    tick = 0;
    timings =
      { decision = Timer.create (); post = Timer.create (); movement = Timer.create ();
        death = Timer.create () };
    tel;
    c_deaths = Telemetry.Registry.counter tel "sim.deaths";
    c_resurrections = Telemetry.Registry.counter tel "sim.resurrections";
    c_retries = Telemetry.Registry.counter tel "sim.retries";
    c_rollbacks = Telemetry.Registry.counter tel "sim.rollbacks";
    c_faults = Telemetry.Registry.counter tel "sim.faults";
    c_suppressed = Telemetry.Registry.counter tel "sim.suppressed";
    h_tick_s = Telemetry.Registry.histogram tel "sim.tick_seconds";
    observer = None;
    fault_log = Fault.Log.create ~capacity:fault_log_capacity ();
    phase = Fault.Decision;
    quarantined = [];
    degradations = [];
    retired_stats = Eval.fresh_stats ();
    persist = None;
  }

let schema t = t.config.prog.Core_ir.schema
let units t = t.units
let tick_count t = t.tick

(* Partition the current units into script groups. *)
let groups (t : t) : Exec.group list =
  let by_script : (string, int Varray.t) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  Array.iteri
    (fun i u ->
      match t.config.script_of u with
      | None -> ()
      | Some name -> begin
        match Hashtbl.find_opt by_script name with
        | Some bucket -> Varray.push bucket i
        | None ->
          let bucket = Varray.create 0 in
          Varray.push bucket i;
          Hashtbl.add by_script name bucket;
          order := name :: !order
      end)
    t.units;
  List.rev_map
    (fun name -> { Exec.script = name; members = Varray.to_array (Hashtbl.find by_script name) })
    !order
  |> List.filter (fun (g : Exec.group) -> not (List.mem g.Exec.script t.quarantined))

(* ------------------------------------------------------------------ *)
(* Fault bookkeeping *)

let add_stats (dst : Eval.eval_stats) (src : Eval.eval_stats) : unit =
  dst.Eval.index_builds <- dst.Eval.index_builds + src.Eval.index_builds;
  dst.Eval.index_probes <- dst.Eval.index_probes + src.Eval.index_probes;
  dst.Eval.naive_scans <- dst.Eval.naive_scans + src.Eval.naive_scans;
  dst.Eval.uniform_hits <- dst.Eval.uniform_hits + src.Eval.uniform_hits;
  dst.Eval.index_reuses <- dst.Eval.index_reuses + src.Eval.index_reuses;
  dst.Eval.build_seconds <- dst.Eval.build_seconds +. src.Eval.build_seconds

let engine_stats = function
  | Seq evaluator -> evaluator.Eval.stats
  | Par { family; _ } -> Eval.family_stats family
  | Fus { evaluator; _ } -> evaluator.Eval.stats

let quarantine (t : t) (gf : Exec.group_fault) : unit =
  if not (List.mem gf.Exec.gf_script t.quarantined) then
    t.quarantined <- t.quarantined @ [ gf.Exec.gf_script ];
  Telemetry.Counter.incr t.c_faults;
  Telemetry.Counter.add t.c_suppressed gf.Exec.gf_suppressed;
  Telemetry.Span.instant ~cat:"fault" "quarantine";
  Fault.Log.push t.fault_log
    (Fault.make ~tick:t.tick ~phase:Fault.Decision ~script:gf.Exec.gf_script
       ~evaluator:(evaluator_name t.evaluator) ~suppressed:gf.Exec.gf_suppressed gf.Exec.gf_exn
       gf.Exec.gf_backtrace)

(* Demote to the next-weaker evaluator, retiring the current engine's
   counters so the report stays cumulative across the whole run. *)
let demote (t : t) (weaker : evaluator_kind) : unit =
  Telemetry.Span.instant ~cat:"fault" "demote";
  add_stats t.retired_stats (engine_stats t.engine);
  t.degradations <-
    t.degradations @ [ (t.tick, evaluator_name t.evaluator, evaluator_name weaker) ];
  let schema = t.config.prog.Core_ir.schema in
  t.engine <-
    make_engine ~schema ~aggregates:t.config.prog.Core_ir.aggregates ~compiled:t.compiled weaker;
  t.evaluator <- weaker

(* ------------------------------------------------------------------ *)
(* Durable state: snapshots and the commit journal *)

(* The deterministic engine counters a recovered run must agree on with an
   uninterrupted one.  Timings and index statistics are deliberately
   absent: they describe work done, not simulation state. *)
let counter_snapshot (t : t) : (string * int) list =
  [
    ("deaths", Telemetry.Counter.value t.c_deaths);
    ("resurrections", Telemetry.Counter.value t.c_resurrections);
    ("faults", Telemetry.Counter.value t.c_faults);
    ("retries", Telemetry.Counter.value t.c_retries);
    ("rollbacks", Telemetry.Counter.value t.c_rollbacks);
    ("suppressed", Telemetry.Counter.value t.c_suppressed);
  ]

let state_of (t : t) : Checkpoint.state =
  {
    Checkpoint.tick = t.tick;
    seed = t.config.seed;
    (* the counter-mode PRNG's position is (seed, tick): both are here *)
    cache_epoch = (if t.index_cache then t.tick else 0);
    units = t.units;
    quarantined = t.quarantined;
    counters = counter_snapshot t;
    degradations = t.degradations;
  }

(* CRC-32 of the canonical encoding of the current unit array — the
   fingerprint journal records and recovery differentials compare.

   Incremental: when the last digest describes the previous tick and the
   committed tick's delta summary is available and non-structural, only
   the dirtied columns are re-encoded; everything else recombines from
   the cached per-column CRCs.  Structural ticks (deaths, resurrections),
   rollbacks and cache-off runs fall back to the full pass, and recovery
   verification always recomputes from scratch, cross-checking the
   incremental path against the journaled values every replayed tick. *)
let state_digest (t : t) : int =
  match t.digest_cache with
  | Some (tick, cache) when tick = t.tick -> Codec.digest_of_cache cache
  | prev ->
    let cache =
      match (prev, t.pending_delta) with
      | Some (tick, cache), Some d when tick = t.tick - 1 && not (Delta.structural d) ->
        Codec.units_digest_incremental cache ~dirty:(Delta.dirty_attrs d) t.units
      | _ -> Codec.units_digest_cache t.units
    in
    t.digest_cache <- Some (t.tick, cache);
    Codec.digest_of_cache cache

(* Write a checkpoint generation now, then rotate the journal onto it.
   Ordering matters for crash safety: the new generation is durable before
   the old journal closes, so at every instant some checkpoint + journal
   chain reaches the last committed tick. *)
let checkpoint_now (t : t) : unit =
  match t.persist with
  | None -> invalid_arg "Simulation.checkpoint_now: persistence is not armed"
  | Some p ->
    Telemetry.Span.with_ ~cat:"persist" "checkpoint" @@ fun () ->
    let t0 = Timer.now_ns () in
    let (_ : string) = Checkpoint.save ~dir:p.p_dir ~fsync:p.p_fsync ~schema:(schema t) (state_of t) in
    Option.iter Journal.close p.p_journal;
    p.p_base <- t.tick;
    p.p_journal <- Some (Journal.create ~dir:p.p_dir ~base:t.tick ~fsync:p.p_fsync);
    Checkpoint.prune ~dir:p.p_dir ~keep:p.p_keep;
    Telemetry.Counter.incr tel_checkpoints;
    Telemetry.Histogram.observe tel_checkpoint_ns
      (Int64.to_float (Int64.sub (Timer.now_ns ()) t0))

(* One journal record for the tick that just committed. *)
let journal_commit (t : t) (p : persistence) : unit =
  match p.p_journal with
  | None -> ()
  | Some w ->
    let structural, dirty_attrs, dirty_keys =
      match t.pending_delta with
      | Some d -> (Delta.structural d, Delta.dirty_attrs d, Delta.dirty_key_count d)
      | None ->
        (* no summary recorded (cache off / rolled back): claim everything
           changed — over-reporting is sound, here as in the index cache *)
        (true, [], 0)
    in
    let before = Journal.bytes_written w in
    Journal.append w
      {
        Journal.j_tick = t.tick;
        j_units = Array.length t.units;
        j_digest = state_digest t;
        j_deaths = Telemetry.Counter.value t.c_deaths;
        j_resurrections = Telemetry.Counter.value t.c_resurrections;
        j_structural = structural;
        j_dirty_attrs = dirty_attrs;
        j_dirty_keys = dirty_keys;
      };
    Telemetry.Counter.incr tel_journal_records;
    Telemetry.Counter.add tel_journal_bytes (Journal.bytes_written w - before)

(* ------------------------------------------------------------------ *)
(* The tick *)

(* One attempt at the tick's phases.  Raises whatever a phase raises; on
   success [t.units] holds the post-tick state and the tick counter has
   advanced.  Crucially for the transactional wrapper in [step], nothing
   here mutates the pre-tick state: plans work on full-width row copies,
   post-processing copies every row before updating it, movement and
   resurrection mutate only those copies, and [t.units] is swapped as the
   last action of the attempt. *)
let run_phases (t : t) : unit =
  let sch = schema t in
  let tick = t.tick in
  let rand_for ~key i = Prng.script_random t.prng ~tick ~key i in
  (* The incoming delta (what the previous committed tick changed) keeps
     the evaluator's index cache warm; the outgoing one records what this
     tick changes, for the next.  With the cache disabled neither exists
     and every tick opens cold. *)
  let delta_in = if t.index_cache then t.pending_delta else None in
  let delta_out = if t.index_cache then Some (Delta.create sch) else None in
  (* The columnar mirror is committed alongside [t.units]; mid-restore or
     after a half-applied refresh it may not cover the array, in which
     case the tick simply runs on boxed reads. *)
  let cols =
    if
      t.columnar
      && Colstore.length t.store = Array.length t.units
      && Colstore.rectangular t.store
    then Some t.store
    else None
  in
  (* decision + action *)
  t.phase <- Fault.Decision;
  let acc =
    Telemetry.Span.with_ ~cat:"phase" "decision" @@ fun () ->
    Timer.record t.timings.decision (fun () ->
        match (t.policy, t.engine) with
        | (Fail | Degrade), Seq evaluator ->
          Exec.run_tick ?delta:delta_in ?cols t.compiled ~evaluator ~units:t.units
            ~groups:(groups t) ~rand_for
        | (Fail | Degrade), Par { pool; family } ->
          Exec.run_tick_parallel ?delta:delta_in ?cols t.compiled ~pool ~family ~units:t.units
            ~groups:(groups t) ~rand_for
        | (Fail | Degrade), Fus { evaluator; kernels } ->
          Exec.run_tick_fused ?delta:delta_in ?cols t.compiled ~fused:kernels ~evaluator
            ~units:t.units ~groups:(groups t) ~rand_for
        | Quarantine_script, engine ->
          (* per-group guards: a failing group contributes an empty effect
             bag this tick and is excluded from future ones *)
          let acc, faults =
            match engine with
            | Seq evaluator ->
              Exec.run_tick_guarded ?delta:delta_in ?cols t.compiled ~evaluator ~units:t.units
                ~groups:(groups t) ~rand_for
            | Par { pool; family } ->
              Exec.run_tick_parallel_guarded ?delta:delta_in ?cols t.compiled ~pool ~family
                ~units:t.units ~groups:(groups t) ~rand_for
            | Fus { evaluator; kernels } ->
              Exec.run_tick_fused_guarded ?delta:delta_in ?cols t.compiled ~fused:kernels
                ~evaluator ~units:t.units ~groups:(groups t) ~rand_for
          in
          List.iter (quarantine t) faults;
          acc)
  in
  (* post-processing *)
  t.phase <- Fault.Post;
  let results =
    Telemetry.Span.with_ ~cat:"phase" "post" @@ fun () ->
    Timer.record t.timings.post (fun () ->
        Postprocess.apply ?delta:delta_out t.config.postprocess ~schema:sch ~rand_for
          ~units:t.units ~acc)
  in
  let alive = Varray.create [||] and dead = Varray.create [||] in
  Array.iter
    (fun (row, survived) -> if survived then Varray.push alive row else Varray.push dead row)
    results;
  let alive_units = Varray.to_array alive in
  (* movement over the survivors *)
  t.phase <- Fault.Movement;
  let grid =
    Telemetry.Span.with_ ~cat:"phase" "movement" @@ fun () ->
    Timer.record t.timings.movement (fun () ->
        Option.map
          (fun mconfig ->
            Movement.run ?delta:delta_out mconfig ~schema:sch ~prng:t.prng ~tick
              ~units:alive_units ~acc)
          t.config.movement)
  in
  (* death handling *)
  t.phase <- Fault.Death;
  let final =
    Telemetry.Span.with_ ~cat:"phase" "death" @@ fun () ->
    Timer.record t.timings.death (fun () ->
        match t.config.death with
        | Remove ->
          Telemetry.Counter.add t.c_deaths (Varray.length dead);
          alive_units
        | Resurrect { health; max_health } ->
          Telemetry.Counter.add t.c_deaths (Varray.length dead);
          let revived =
            Array.map
              (fun row ->
                let out = Tuple.copy row in
                Tuple.set out health (Tuple.get out max_health);
                (match (grid, t.config.movement) with
                | Some g, Some mconfig -> begin
                  let key = Tuple.key sch out in
                  match Movement.random_free_cell g t.prng ~tick ~salt:key with
                  | Some (x, y) ->
                    Tuple.set out mconfig.Movement.posx (Value.Float (float_of_int x));
                    Tuple.set out mconfig.Movement.posy (Value.Float (float_of_int y));
                    Movement.move_unit g ~key
                      ~from_:
                        ( Value.to_int (Tuple.get row mconfig.Movement.posx),
                          Value.to_int (Tuple.get row mconfig.Movement.posy) )
                      ~to_:(x, y)
                  | None -> ()
                end
                | _ -> ());
                Telemetry.Counter.incr t.c_resurrections;
                out)
              (Varray.to_array dead)
          in
          Array.append alive_units revived)
  in
  (* Any death reorders or re-populates the array, so positional data ids
     stop naming the same units: structural.  (Resurrection also rewrites
     health and positions, which structural subsumes.) *)
  if Varray.length dead > 0 then Option.iter Delta.record_structural delta_out;
  t.units <- final;
  (* Commit the columnar mirror copy-on-write: clean columns (per the
     tick's dirty-attribute summary) keep their arrays, dirty ones rebuild
     into fresh arrays.  Runs only on the success path — a faulting tick
     leaves the mirror on the pre-tick state the rollback restores. *)
  Colstore.refresh ?delta:delta_out t.store final;
  t.pending_delta <- delta_out;
  t.tick <- t.tick + 1

(* Transactional tick.  The pre-tick state is three references — the unit
   array (whose rows no phase mutates in place; see [run_phases]) and two
   counters — so the snapshot is O(1) and the fault-free path pays only
   the exception handler.  On a fault: restore the snapshot, log the fault
   with full context, then apply the policy.  [Degrade] retries the tick
   under the next-weaker evaluator; since every PRNG draw is keyed by
   [~tick ~key], the retry is bit-identical to a healthy run of that
   evaluator. *)
(* Cumulative evaluator statistics across demotions: retired engines'
   totals plus the live engine's. *)
let cumulative_stats (t : t) : Eval.eval_stats =
  let s = Eval.fresh_stats () in
  add_stats s t.retired_stats;
  add_stats s (engine_stats t.engine);
  s

(* Counter values and cumulative timings captured before a step, so the
   observer's sample can report per-tick deltas. *)
type pre_step = {
  pre_deaths : int;
  pre_resurrections : int;
  pre_faults : int;
  pre_rollbacks : int;
  pre_retries : int;
  pre_demotions : int;
  pre_decision_s : float;
  pre_post_s : float;
  pre_movement_s : float;
  pre_death_s : float;
  pre_builds : int;
  pre_reuses : int;
}

let pre_step_of (t : t) : pre_step =
  let s = cumulative_stats t in
  {
    pre_deaths = Telemetry.Counter.value t.c_deaths;
    pre_resurrections = Telemetry.Counter.value t.c_resurrections;
    pre_faults = Telemetry.Counter.value t.c_faults;
    pre_rollbacks = Telemetry.Counter.value t.c_rollbacks;
    pre_retries = Telemetry.Counter.value t.c_retries;
    pre_demotions = List.length t.degradations;
    pre_decision_s = Timer.elapsed t.timings.decision;
    pre_post_s = Timer.elapsed t.timings.post;
    pre_movement_s = Timer.elapsed t.timings.movement;
    pre_death_s = Timer.elapsed t.timings.death;
    pre_builds = s.Eval.index_builds;
    pre_reuses = s.Eval.index_reuses;
  }

let sample_of (t : t) (pre : pre_step) ~(tick_s : float) : tick_sample =
  let s = cumulative_stats t in
  {
    s_tick = t.tick;
    s_units = Array.length t.units;
    s_digest = state_digest t;
    s_tick_s = tick_s;
    s_decision_s = Timer.elapsed t.timings.decision -. pre.pre_decision_s;
    s_post_s = Timer.elapsed t.timings.post -. pre.pre_post_s;
    s_movement_s = Timer.elapsed t.timings.movement -. pre.pre_movement_s;
    s_death_s = Timer.elapsed t.timings.death -. pre.pre_death_s;
    s_deaths = Telemetry.Counter.value t.c_deaths - pre.pre_deaths;
    s_resurrections = Telemetry.Counter.value t.c_resurrections - pre.pre_resurrections;
    s_faults = Telemetry.Counter.value t.c_faults - pre.pre_faults;
    s_rollbacks = Telemetry.Counter.value t.c_rollbacks - pre.pre_rollbacks;
    s_retries = Telemetry.Counter.value t.c_retries - pre.pre_retries;
    s_demotions = List.length t.degradations - pre.pre_demotions;
    s_index_builds = s.Eval.index_builds - pre.pre_builds;
    s_index_reuses = s.Eval.index_reuses - pre.pre_reuses;
    s_evaluator = evaluator_name t.evaluator;
  }

let step (t : t) : unit =
  (* Captured before the attempt so the observer (if any) can report
     per-tick deltas; [pre] costs nothing when no observer is installed. *)
  let t_start = Timer.now_ns () in
  let pre = match t.observer with None -> None | Some _ -> Some (pre_step_of t) in
  let units0 = t.units
  and deaths0 = Telemetry.Counter.value t.c_deaths
  and resurrections0 = Telemetry.Counter.value t.c_resurrections in
  let rec attempt () =
    let phases () =
      (* The tick's root span; the per-tick name is built only when the
         tracer is on, so the disabled path stays allocation-free. *)
      if Telemetry.Span.enabled () then
        Telemetry.Span.with_ ~cat:"sim" (Printf.sprintf "tick:%d" t.tick) (fun () ->
            run_phases t)
      else run_phases t
    in
    match phases () with
    | () -> ()
    | exception exn ->
      let bt = Printexc.get_raw_backtrace () in
      let suppressed =
        match t.engine with
        | Par { pool; _ } -> Domain_pool.suppressed_failures pool
        | Seq _ | Fus _ -> 0
      in
      let fault =
        Fault.make ~tick:t.tick ~phase:t.phase ~evaluator:(evaluator_name t.evaluator)
          ~suppressed exn bt
      in
      Fault.Log.push t.fault_log fault;
      Telemetry.Counter.incr t.c_faults;
      Telemetry.Counter.add t.c_suppressed suppressed;
      Telemetry.Span.instant ~cat:"fault" "rollback";
      t.units <- units0;
      (* Swap the mirror's column pointers back to the restored state.
         Usually a no-op rebuild of identical content (the failed attempt
         never reached the commit refresh), but it also repairs a refresh
         that itself faulted half-way. *)
      Colstore.refresh t.store units0;
      (* [set] writes through the enabled gate: the snapshot restore must
         happen whatever the registry state, like the field writes did. *)
      Telemetry.Counter.set t.c_deaths deaths0;
      Telemetry.Counter.set t.c_resurrections resurrections0;
      Telemetry.Counter.incr t.c_rollbacks;
      Telemetry.Counter.incr tel_rollbacks;
      (* The failed attempt's mutations were undone, so its delta (and the
         one it consumed) no longer describe reality: the retry — and the
         tick after a policy absorbs the fault — must open the index cache
         cold.  The epoch stamp makes any structure the failed attempt
         left behind read as a miss. *)
      t.pending_delta <- None;
      let fail () = Printexc.raise_with_backtrace (Fault.Error fault) bt in
      (match t.policy with
      | Fail -> fail ()
      | Quarantine_script ->
        (* group faults were absorbed by the guards; anything reaching here
           is not attributable to one script, so quarantine cannot help *)
        fail ()
      | Degrade -> begin
        match demotion t.evaluator with
        | None -> fail ()
        | Some weaker ->
          demote t weaker;
          Telemetry.Counter.incr t.c_retries;
          attempt ()
      end)
  in
  attempt ();
  (* Durability hooks run only for a committed tick: a failed attempt was
     rolled back before the policy re-raised, so the journal never sees a
     state the simulation did not keep. *)
  (match t.persist with
  | None -> ()
  | Some p ->
    journal_commit t p;
    if p.p_every > 0 && t.tick - p.p_base >= p.p_every then checkpoint_now t);
  let tick_s = Int64.to_float (Int64.sub (Timer.now_ns ()) t_start) /. 1e9 in
  Telemetry.Histogram.observe t.h_tick_s tick_s;
  (* The observer runs last, after the durability hooks: its sample
     describes a tick the journal has already committed, so a flight
     record never gets ahead of recoverable state. *)
  match (t.observer, pre) with
  | Some f, Some pre -> f (sample_of t pre ~tick_s)
  | _ -> ()

let run (t : t) ~(ticks : int) : unit =
  (* Fix the target tick up front: [step] can grow or shrink [t.units]
     (death, resurrection), and the bound must not depend on anything a
     tick mutates. *)
  let target = t.tick + ticks in
  while t.tick < target do
    step t
  done

(* ------------------------------------------------------------------ *)
(* Durable state: arming and recovery *)

let checkpoint_every ?(fsync = true) ?(keep = 2) (t : t) ~(dir : string) ~(every : int) : unit =
  (match t.persist with
  | Some p ->
    Option.iter Journal.close p.p_journal;
    p.p_journal <- None
  | None -> ());
  t.persist <- Some { p_dir = dir; p_every = every; p_fsync = fsync; p_keep = keep;
                      p_base = t.tick; p_journal = None };
  (* an initial durable generation, so recovery always has a base *)
  checkpoint_now t

let detach_persistence (t : t) : unit =
  match t.persist with
  | None -> ()
  | Some p ->
    Option.iter Journal.close p.p_journal;
    p.p_journal <- None;
    t.persist <- None

type restore_info = {
  restored_tick : int; (* the checkpoint generation recovery loaded *)
  replayed : int; (* journal ticks re-executed on top of it *)
  generations_skipped : int; (* newer generations rejected as corrupt/unreadable *)
  journal_torn : bool; (* the journal chain ended in a torn record *)
}

(* Recovery: newest valid checkpoint generation + deterministic replay of
   the journal chain.  Replay re-executes [step] — every PRNG draw is a
   pure function of (seed, tick, key, i), so the re-run is bit-identical
   to the crashed one — and each replayed tick is verified against the
   journaled fingerprint before the next is attempted. *)
let restore ?fault_policy ?fault_log_capacity ?index_cache (config : config)
    ~(evaluator : evaluator_kind) ~(dir : string) : (t * restore_info, string) result =
  let schema = config.prog.Core_ir.schema in
  match Checkpoint.load_latest ~schema ~dir with
  | Error e -> Error e
  | Ok (st, generations_skipped) ->
    if st.Checkpoint.seed <> config.seed then
      Error
        (Printf.sprintf "checkpoint was taken under seed %d, config has seed %d — replay would diverge"
           st.Checkpoint.seed config.seed)
    else begin
      let t =
        create ?fault_policy ?fault_log_capacity ?index_cache config ~evaluator
          ~units:st.Checkpoint.units
      in
      t.tick <- st.Checkpoint.tick;
      t.quarantined <- st.Checkpoint.quarantined;
      t.degradations <- st.Checkpoint.degradations;
      let set_counter name c =
        match List.assoc_opt name st.Checkpoint.counters with
        | Some v -> Telemetry.Counter.set c v
        | None -> ()
      in
      set_counter "deaths" t.c_deaths;
      set_counter "resurrections" t.c_resurrections;
      set_counter "faults" t.c_faults;
      set_counter "retries" t.c_retries;
      set_counter "rollbacks" t.c_rollbacks;
      set_counter "suppressed" t.c_suppressed;
      (* Replay the journal chain: every journal whose base is at or after
         the loaded generation, oldest first.  The chain exists because
         rotation happens at checkpoint time — journal [base=B] covers
         exactly the ticks between generation B and the next one. *)
      let bases =
        if Sys.file_exists dir then
          Sys.readdir dir |> Array.to_list
          |> List.filter_map Journal.base_of_filename
          |> List.filter (fun b -> b >= st.Checkpoint.tick)
          |> List.sort compare
        else []
      in
      let replayed = ref 0 and torn = ref false and error = ref None in
      let verify (e : Journal.entry) =
        if Array.length t.units <> e.Journal.j_units
           || Codec.units_digest t.units <> e.Journal.j_digest
           || Telemetry.Counter.value t.c_deaths <> e.Journal.j_deaths
           || Telemetry.Counter.value t.c_resurrections <> e.Journal.j_resurrections
        then
          error :=
            Some
              (Printf.sprintf
                 "replay diverged at tick %d: journal has units=%d digest=%08x, replay produced units=%d digest=%08x"
                 e.Journal.j_tick e.Journal.j_units e.Journal.j_digest (Array.length t.units)
                 (Codec.units_digest t.units))
      in
      (try
         List.iter
           (fun base ->
             if !error = None && not !torn then begin
               let entries, t_torn = Journal.read ~dir ~base in
               List.iter
                 (fun (e : Journal.entry) ->
                   if !error = None && not !torn then
                     if e.Journal.j_tick <= t.tick then () (* already in the snapshot *)
                     else if e.Journal.j_tick = t.tick + 1 then begin
                       Telemetry.Span.with_ ~cat:"persist" "replay" (fun () -> step t);
                       incr replayed;
                       verify e
                     end
                     else
                       (* a gap means records are missing: stop like a tear
                          rather than replay past unverifiable ticks *)
                       torn := true)
                 entries;
               if t_torn then torn := true
             end)
           bases
       with
      | Codec.Corrupt msg -> error := Some (Printf.sprintf "journal unreadable: %s" msg)
      | Fault.Error f -> error := Some (Printf.sprintf "fault during replay: %s" (Fmt.str "%a" Fault.pp f))
      | Fault_inject.Injected { point; count } ->
        error := Some (Printf.sprintf "injected read fault at %s (call %d)" point count));
      match !error with
      | Some e -> Error e
      | None ->
        Telemetry.Counter.incr tel_recoveries;
        Telemetry.Counter.add tel_fallbacks generations_skipped;
        Telemetry.Counter.add tel_replayed !replayed;
        Ok
          ( t,
            {
              restored_tick = st.Checkpoint.tick;
              replayed = !replayed;
              generations_skipped;
              journal_torn = !torn;
            } )
    end

(* ------------------------------------------------------------------ *)
(* Reporting *)

type report = {
  ticks : int;
  n_units : int;
  decision_s : float;
  build_s : float; (* portion of decision spent building indexes *)
  post_s : float;
  movement_s : float;
  death_s : float;
  total_s : float;
  index_builds : int;
  index_probes : int;
  naive_scans : int;
  uniform_hits : int;
  index_reuses : int; (* structures the cross-tick cache carried over *)
  deaths : int;
  resurrections : int;
  faults : int; (* faults observed, including any the bounded log dropped *)
  retries : int; (* tick retries performed by the Degrade policy *)
  rollbacks : int; (* snapshot restores performed after faults *)
  suppressed : int; (* secondary failures hidden behind re-raised ones *)
  quarantined : string list;
  degradations : (int * string * string) list; (* tick, from, to *)
  tick_p50_s : float; (* per-tick wall-clock percentiles (sim.tick_seconds) *)
  tick_p90_s : float;
  tick_p99_s : float;
}

let faults (t : t) : Fault.t list = Fault.Log.to_list t.fault_log
let fault_count (t : t) : int = Telemetry.Counter.value t.c_faults
let quarantined_scripts (t : t) : string list = t.quarantined
let degradations (t : t) : (int * string * string) list = t.degradations
let retries (t : t) : int = Telemetry.Counter.value t.c_retries
let current_evaluator (t : t) : evaluator_kind = t.evaluator

(* The per-simulation registry, for archiving next to the ambient
   registry's metrics or asserting on engine counters in tests. *)
let telemetry (t : t) : Telemetry.Registry.t = t.tel

(* Install (or remove) the per-commit observer.  Single slot: the flight
   recorder composes the fan-out itself. *)
let set_observer (t : t) (f : (tick_sample -> unit) option) : unit = t.observer <- f

(* The delta the last committed tick recorded (None before the first tick,
   after a rollback, or with the cache disabled).  Exposed so differential
   tests can check it against the ground-truth [Delta.of_tuples]. *)
let last_delta (t : t) : Delta.t option = t.pending_delta

let report (t : t) : report =
  let s = cumulative_stats t in
  let ts = Telemetry.Histogram.snapshot t.h_tick_s in
  let decision_s = Timer.elapsed t.timings.decision in
  let post_s = Timer.elapsed t.timings.post in
  let movement_s = Timer.elapsed t.timings.movement in
  let death_s = Timer.elapsed t.timings.death in
  {
    ticks = t.tick;
    n_units = Array.length t.units;
    decision_s;
    build_s = s.Eval.build_seconds;
    post_s;
    movement_s;
    death_s;
    total_s = decision_s +. post_s +. movement_s +. death_s;
    index_builds = s.Eval.index_builds;
    index_probes = s.Eval.index_probes;
    naive_scans = s.Eval.naive_scans;
    uniform_hits = s.Eval.uniform_hits;
    index_reuses = s.Eval.index_reuses;
    deaths = Telemetry.Counter.value t.c_deaths;
    resurrections = Telemetry.Counter.value t.c_resurrections;
    faults = Telemetry.Counter.value t.c_faults;
    retries = Telemetry.Counter.value t.c_retries;
    rollbacks = Telemetry.Counter.value t.c_rollbacks;
    suppressed = Telemetry.Counter.value t.c_suppressed;
    quarantined = t.quarantined;
    degradations = t.degradations;
    tick_p50_s = ts.Telemetry.p50;
    tick_p90_s = ts.Telemetry.p90;
    tick_p99_s = ts.Telemetry.p99;
  }

let pp_report ppf (r : report) =
  Fmt.pf ppf
    "@[<v>ticks=%d units=%d total=%.3fs (decision=%.3fs [build=%.3fs] post=%.3fs move=%.3fs \
     death=%.3fs)@,tick p50=%.2fms p90=%.2fms p99=%.2fms@,builds=%d reuses=%d probes=%d scans=%d \
     uniform=%d deaths=%d resurrections=%d"
    r.ticks r.n_units r.total_s r.decision_s r.build_s r.post_s r.movement_s r.death_s
    (r.tick_p50_s *. 1e3) (r.tick_p90_s *. 1e3) (r.tick_p99_s *. 1e3) r.index_builds
    r.index_reuses r.index_probes r.naive_scans r.uniform_hits r.deaths r.resurrections;
  (* fault-free runs keep the pre-fault-layer report byte-identical *)
  if r.faults > 0 || r.retries > 0 || r.quarantined <> [] || r.degradations <> [] then
    Fmt.pf ppf "@,faults=%d retries=%d rollbacks=%d suppressed=%d quarantined=[%s] degraded=[%s]"
      r.faults r.retries r.rollbacks r.suppressed
      (String.concat "," r.quarantined)
      (String.concat ","
         (List.map (fun (tick, from_, to_) -> Fmt.str "t%d:%s->%s" tick from_ to_) r.degradations));
  Fmt.pf ppf "@]"
