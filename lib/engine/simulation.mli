(** The discrete simulation engine (Sections 2.2 and 6): per tick, the
    decision+action phases (set-at-a-time, with index building inside the
    pluggable evaluator), the post-processing query, the movement phase,
    and death handling (removal or uniform-random resurrection). *)

open Sgl_util
open Sgl_relalg
open Sgl_lang

type death_rule =
  | Remove
  | Resurrect of { health : int; max_health : int }

type config = {
  prog : Core_ir.program;
  script_of : Tuple.t -> string option; (* [None]: the unit performs the empty action *)
  postprocess : Postprocess.t;
  movement : Movement.config option;
  death : death_rule;
  seed : int;
  optimize : bool;
}

type evaluator_kind =
  | Naive
  | Indexed
  | Parallel of { domains : int }
      (** The indexed evaluator with the decision phase fanned out over a
          shared pool of [domains] OCaml domains (clamped to [\[1, 64\]]).
          Produces tick-for-tick the same unit states as [Indexed] for any
          domain count: chunks merge through the combination operator (+),
          which is associative and commutative. *)
  | Fused
      (** The indexed evaluator driven through fused kernels: every plan
          is lowered to the loop IR ({!Sgl_qopt.Loop_ir}) and compiled
          once at startup into closure-composed kernels, eliminating the
          per-row plan walking and evaluation-context allocation of the
          interpreted backends.  Produces tick-for-tick the same unit
          states as [Indexed] (rule V003 validates every lowering); under
          [Degrade] it demotes to [Indexed], then [Naive]. *)

val evaluator_name : evaluator_kind -> string

(** What {!step} does when a tick phase raises.  Ticks are transactional:
    the pre-tick state is snapshotted at tick start and restored before
    the policy applies, so no policy ever observes a half-applied tick.

    - [Fail] (the default): re-raise as {!Fault.Error} with full context.
    - [Quarantine_script]: per-group guards make a failing script group
      contribute an empty effect bag this tick; the group is excluded from
      every later tick and reported.  Faults not attributable to one group
      (index building, post-processing, movement, death) still fail.
    - [Degrade]: demote the evaluator along fused/parallel -> indexed ->
      naive and retry the tick.  Every PRNG draw is keyed by [~tick ~key], so
      the retried tick is bit-identical to a healthy run of the weaker
      evaluator; when even naive fails, re-raise. *)
type fault_policy =
  | Fail
  | Quarantine_script
  | Degrade

val fault_policy_name : fault_policy -> string

type t

(** [create ?fault_policy ?fault_log_capacity ?index_cache ?columnar
    config ~evaluator ~units] assembles a simulation.  [fault_policy]
    defaults to [Fail]; [fault_log_capacity] bounds the in-memory fault
    log (default 64 — later faults are counted but not retained).
    [index_cache] (default [true]) hands each tick's delta summary to the
    next tick's evaluator so index structures over untouched attributes
    survive across ticks; [false] restores rebuild-every-tick behaviour.
    [columnar] (default [true]) hands the struct-of-arrays mirror of the
    unit array to the decision phase — index builds scan typed columns
    and fused kernels load float operands directly; [false] keeps every
    read on the boxed row path (the benchmark baseline).  Every setting
    combination produces bit-identical unit states — both switches only
    trade access-path work. *)
val create :
  ?fault_policy:fault_policy ->
  ?fault_log_capacity:int ->
  ?index_cache:bool ->
  ?columnar:bool ->
  config ->
  evaluator:evaluator_kind ->
  units:Tuple.t array ->
  t

val schema : t -> Schema.t

(** The current unit state (do not mutate). *)
val units : t -> Tuple.t array

val tick_count : t -> int
val step : t -> unit
val run : t -> ticks:int -> unit

(** {2 Durable state}

    Armed persistence makes the simulation survive its process: every
    committed tick appends one CRC-framed record to a commit journal
    ({!Sgl_persist.Journal}), and every [every] ticks the full state is
    snapshotted as a new checkpoint generation
    ({!Sgl_persist.Checkpoint}).  Recovery ({!restore}) loads the newest
    generation that passes checksum validation — falling back to older
    generations when a file is corrupt — then deterministically re-executes
    the journaled ticks, verifying each against its journaled fingerprint.
    The replay is bit-identical to the lost run because every PRNG draw is
    a pure function of (seed, tick, key, i) and evaluators are
    differentially pinned equal. *)

(** [checkpoint_every ?fsync ?keep t ~dir ~every] arms persistence: an
    initial checkpoint generation is written immediately, a journal record
    follows every committed tick, and a new generation is cut each [every]
    ticks ([0]: only the arming checkpoint; the journal still grows).
    [fsync] (default [true]) fsyncs every journal append and checkpoint;
    [keep] (default 2) bounds retained generations.  Raises on I/O
    failure, and propagates ["io.checkpoint.write"] /
    ["io.journal.append"] injections. *)
val checkpoint_every : ?fsync:bool -> ?keep:int -> t -> dir:string -> every:int -> unit

(** Cut a checkpoint generation now (persistence must be armed). *)
val checkpoint_now : t -> unit

(** Close the journal and disarm persistence (idempotent).  Call on every
    exit path so the journal's tail record is not torn by process
    teardown. *)
val detach_persistence : t -> unit

(** CRC-32 of the canonical binary encoding of the current unit array —
    the deterministic state fingerprint journal records carry and
    crash-recovery differentials compare. *)
val state_digest : t -> int

type restore_info = {
  restored_tick : int;  (** the checkpoint generation recovery loaded *)
  replayed : int;  (** journal ticks re-executed on top of it *)
  generations_skipped : int;
      (** newer generations rejected as corrupt or unreadable *)
  journal_torn : bool;
      (** the journal chain ended in a torn (mid-append) record *)
}

(** [restore config ~evaluator ~dir] recovers a simulation from [dir]:
    newest valid checkpoint plus deterministic journal replay, each
    replayed tick verified bit-for-bit against its journaled digest.
    [Error] when no generation validates, the checkpoint seed disagrees
    with [config.seed], or replay diverges from the journal.  The
    returned simulation is not armed for persistence — call
    {!checkpoint_every} to resume durability. *)
val restore :
  ?fault_policy:fault_policy ->
  ?fault_log_capacity:int ->
  ?index_cache:bool ->
  config ->
  evaluator:evaluator_kind ->
  dir:string ->
  (t * restore_info, string) result

(** Retained faults, oldest first (bounded by the log capacity). *)
val faults : t -> Fault.t list

(** Faults ever observed, including any the bounded log dropped. *)
val fault_count : t -> int

val quarantined_scripts : t -> string list

(** Demotions performed by the [Degrade] policy: (tick, from, to). *)
val degradations : t -> (int * string * string) list

val retries : t -> int

(** The evaluator currently driving ticks (weaker than the one requested
    at {!create} after a degradation). *)
val current_evaluator : t -> evaluator_kind

(** The simulation's private, always-enabled telemetry registry: the
    source of truth behind the engine counters of {!report}
    ([sim.deaths], [sim.resurrections], [sim.retries], [sim.rollbacks],
    [sim.faults], [sim.suppressed]).  Independent of the ambient
    {!Sgl_util.Telemetry.default}, so concurrent simulations never mix
    counts. *)
val telemetry : t -> Telemetry.Registry.t

(** What one committed tick did, as deltas against the previous commit:
    population, state digest, wall-clock per phase, engine-counter and
    index-statistic deltas, and the evaluator that committed it. *)
type tick_sample = {
  s_tick : int;
  s_units : int;
  s_digest : int;  (** {!Sgl_persist.Codec.units_digest} of the committed units *)
  s_tick_s : float;  (** wall-clock of the whole step, retries included *)
  s_decision_s : float;
  s_post_s : float;
  s_movement_s : float;
  s_death_s : float;
  s_deaths : int;
  s_resurrections : int;
  s_faults : int;
  s_rollbacks : int;
  s_retries : int;
  s_demotions : int;
  s_index_builds : int;
  s_index_reuses : int;
  s_evaluator : string;
}

(** [set_observer t (Some f)] calls [f] with a {!tick_sample} after each
    committed tick, once the durability hooks have run — so a sample
    never describes state a crash could lose beyond the last journal
    record.  The observer cannot reach unit state, so simulations are
    bit-identical with and without one ({!Sgl_obs} pins that with a
    differential).  Per-tick digests are only computed while an observer
    is installed; [set_observer t None] removes it. *)
val set_observer : t -> (tick_sample -> unit) option -> unit

(** The delta summary the last committed tick recorded ([None] before the
    first tick, after a rollback, or with the index cache disabled).  For
    tests: check it against the ground truth {!Sgl_relalg.Delta.of_tuples}
    computes between unit snapshots. *)
val last_delta : t -> Delta.t option

type timings = {
  decision : Timer.t;
  post : Timer.t;
  movement : Timer.t;
  death : Timer.t;
}

type report = {
  ticks : int;
  n_units : int;
  decision_s : float;
  build_s : float;
  post_s : float;
  movement_s : float;
  death_s : float;
  total_s : float;
  index_builds : int;
  index_probes : int;
  naive_scans : int;
  uniform_hits : int;
  index_reuses : int;
      (** structures the cross-tick cache carried over instead of
          rebuilding *)
  deaths : int;
  resurrections : int;
  faults : int;
  retries : int;
  rollbacks : int;
      (** snapshot restores performed after faults (every fault a policy
          absorbs or re-raises rolled the tick back exactly once) *)
  suppressed : int;
      (** secondary failures hidden behind the re-raised one (other lanes,
          other chunks of a quarantined group) *)
  quarantined : string list;
  degradations : (int * string * string) list;
  tick_p50_s : float;
      (** per-tick wall-clock percentiles from the always-on
          [sim.tick_seconds] histogram ({!Sgl_util.Stats.percentile}) *)
  tick_p90_s : float;
  tick_p99_s : float;
}

val report : t -> report
val pp_report : report Fmt.t
