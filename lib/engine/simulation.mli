(** The discrete simulation engine (Sections 2.2 and 6): per tick, the
    decision+action phases (set-at-a-time, with index building inside the
    pluggable evaluator), the post-processing query, the movement phase,
    and death handling (removal or uniform-random resurrection). *)

open Sgl_util
open Sgl_relalg
open Sgl_lang

type death_rule =
  | Remove
  | Resurrect of { health : int; max_health : int }

type config = {
  prog : Core_ir.program;
  script_of : Tuple.t -> string option; (* [None]: the unit performs the empty action *)
  postprocess : Postprocess.t;
  movement : Movement.config option;
  death : death_rule;
  seed : int;
  optimize : bool;
}

type evaluator_kind =
  | Naive
  | Indexed
  | Parallel of { domains : int }
      (** The indexed evaluator with the decision phase fanned out over a
          shared pool of [domains] OCaml domains (clamped to [\[1, 64\]]).
          Produces tick-for-tick the same unit states as [Indexed] for any
          domain count: chunks merge through the combination operator (+),
          which is associative and commutative. *)

val evaluator_name : evaluator_kind -> string

type t

val create : config -> evaluator:evaluator_kind -> units:Tuple.t array -> t
val schema : t -> Schema.t

(** The current unit state (do not mutate). *)
val units : t -> Tuple.t array

val tick_count : t -> int
val step : t -> unit
val run : t -> ticks:int -> unit

type timings = {
  decision : Timer.t;
  post : Timer.t;
  movement : Timer.t;
  death : Timer.t;
}

type report = {
  ticks : int;
  n_units : int;
  decision_s : float;
  build_s : float;
  post_s : float;
  movement_s : float;
  death_s : float;
  total_s : float;
  index_builds : int;
  index_probes : int;
  naive_scans : int;
  uniform_hits : int;
  deaths : int;
  resurrections : int;
}

val report : t -> report
val pp_report : report Fmt.t
