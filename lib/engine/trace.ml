(* Per-tick simulation traces.

   Records selected attributes of every unit after each tick as CSV — the
   raw material for replay tools, balance analysis, and the plots game
   designers actually look at.  One header row, then one row per unit per
   recorded tick. *)

open Sgl_relalg

type t = {
  oc : out_channel;
  schema : Schema.t;
  attrs : int list;
  mutable rows : int;
  mutable closed : bool;
}

exception Trace_error of string

(* Every channel operation funnels through [io]: any [Sys_error] the
   runtime raises (closed descriptor, full disk, revoked permissions)
   resurfaces as [Trace_error], so callers handle one exception type. *)
let io (what : string) (f : unit -> 'a) : 'a =
  try f () with Sys_error msg -> raise (Trace_error (Fmt.str "trace: %s: %s" what msg))

let create ~(path : string) ~(schema : Schema.t) ~(attrs : string list) : t =
  let indexes =
    List.map
      (fun name ->
        match Schema.find_opt schema name with
        | Some i -> i
        | None -> raise (Trace_error (Fmt.str "trace: unknown attribute %S" name)))
      attrs
  in
  let oc = io "open" (fun () -> open_out path) in
  io "write header" (fun () -> output_string oc ("tick," ^ String.concat "," attrs ^ "\n"));
  { oc; schema; attrs = indexes; rows = 0; closed = false }

let value_to_csv (v : Value.t) : string =
  match v with
  | Value.Int i -> string_of_int i
  | Value.Float f -> Printf.sprintf "%g" f
  | Value.Bool b -> if b then "1" else "0"
  | Value.Vec v -> Printf.sprintf "%g:%g" v.Sgl_util.Vec2.x v.Sgl_util.Vec2.y

let record (t : t) ~(tick : int) (units : Tuple.t array) : unit =
  if t.closed then raise (Trace_error "trace: already closed");
  io "write row" (fun () ->
      Array.iter
        (fun u ->
          output_string t.oc (string_of_int tick);
          List.iter
            (fun i ->
              output_char t.oc ',';
              output_string t.oc (value_to_csv (Tuple.get u i)))
            t.attrs;
          output_char t.oc '\n';
          t.rows <- t.rows + 1)
        units)

let rows (t : t) = t.rows

(* Idempotent: the flag flips before the channel closes, so even a
   [close] retried after an I/O failure is a no-op rather than a double
   [close_out]. *)
let close (t : t) : unit =
  if not t.closed then begin
    t.closed <- true;
    io "close" (fun () -> close_out t.oc)
  end

(* Convenience: attach a trace to a simulation and run it. *)
let run_traced ~(path : string) ~(attrs : string list) (sim : Simulation.t) ~(ticks : int) : int =
  let t = create ~path ~schema:(Simulation.schema sim) ~attrs in
  Fun.protect
    ~finally:(fun () -> close t)
    (fun () ->
      record t ~tick:0 (Simulation.units sim);
      for i = 1 to ticks do
        Simulation.step sim;
        record t ~tick:i (Simulation.units sim)
      done;
      rows t)
