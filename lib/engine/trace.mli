(** CSV traces of simulation state, one row per unit per recorded tick. *)

open Sgl_relalg

type t

exception Trace_error of string

(** [create ~path ~schema ~attrs] opens the file and writes the header.
    Raises {!Trace_error} on an unknown attribute name — and, like every
    operation here, on I/O failure (underlying [Sys_error]s resurface as
    {!Trace_error}). *)
val create : path:string -> schema:Schema.t -> attrs:string list -> t

(** Append one row per unit for this tick.  Raises {!Trace_error} if the
    trace is closed. *)
val record : t -> tick:int -> Tuple.t array -> unit

(** Data rows written so far. *)
val rows : t -> int

(** Flush and close the file.  Idempotent: later calls are no-ops. *)
val close : t -> unit

(** Record the initial state, run [ticks] steps recording after each, close
    the trace, and return the row count. *)
val run_traced : path:string -> attrs:string list -> Simulation.t -> ticks:int -> int
