(** CSV traces of simulation state, one row per unit per recorded tick. *)

open Sgl_relalg

type t

exception Trace_error of string

(** [create ~path ~schema ~attrs] opens the file and writes the header.
    Raises {!Trace_error} on an unknown attribute name. *)
val create : path:string -> schema:Schema.t -> attrs:string list -> t

(** Append one row per unit for this tick. *)
val record : t -> tick:int -> Tuple.t array -> unit

(** Data rows written so far. *)
val rows : t -> int

val close : t -> unit

(** Record the initial state, run [ticks] steps recording after each, close
    the trace, and return the row count. *)
val run_traced : path:string -> attrs:string list -> Simulation.t -> ticks:int -> int
