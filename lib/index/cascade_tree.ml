(* Two-dimensional range tree with fractional cascading (Section 5.3.1).

   A balanced tree over the x-sorted points; each canonical node stores its
   points sorted by y together with prefix statistic vectors, plus *bridge*
   pointers into each child's y-array.  A box query binary-searches the y
   interval once at the root and then follows bridges while decomposing the
   x range, so a probe costs O(log n) instead of the plain layered tree's
   O(log^2 n).  This is the structure behind all divisible aggregates in the
   paper's experimental engine ("all such queries share the same range
   tree", Section 6). *)

type node = {
  lo : int;
  hi : int; (* x-sorted positions [lo, hi) *)
  ys : float array; (* y-sorted coords of the node's points *)
  prefix : float array; (* flattened (len+1) * m prefix statistic sums *)
  bridge_l : int array; (* len+1 entries: lower-bound position in left.ys *)
  bridge_r : int array;
  left : node option;
  right : node option;
}

type t = {
  xs : float array; (* x-sorted coordinates *)
  m : int;
  root : node option;
}

(* Linear two-pointer pass: for each element of [parent] (plus a sentinel),
   the first position in [child] holding a value >= it. *)
let bridges parent child =
  let np = Array.length parent and nc = Array.length child in
  let out = Array.make (np + 1) nc in
  let p = ref 0 in
  for i = 0 to np - 1 do
    while !p < nc && child.(!p) < parent.(i) do
      incr p
    done;
    out.(i) <- !p
  done;
  out

let build ~(x : int -> float) ~(y : int -> float) ~(stats : int -> float array) ~(m : int)
    (ids : int array) : t =
  let ids = Array.copy ids in
  Array.sort (fun a b -> Float.compare (x a) (x b)) ids;
  let xs = Array.map x ids in
  (* Build bottom-up; every recursive call also returns the node's points in
     y order so the parent is a linear merge (O(n log n) total). *)
  let prefix_of yids =
    let len = Array.length yids in
    let prefix = Array.make ((len + 1) * m) 0. in
    for i = 0 to len - 1 do
      let s = stats yids.(i) in
      for j = 0 to m - 1 do
        prefix.(((i + 1) * m) + j) <- prefix.((i * m) + j) +. s.(j)
      done
    done;
    prefix
  in
  let merge (ay : float array) (aids : int array) (by : float array) (bids : int array) =
    let na = Array.length ay and nb = Array.length by in
    let ys = Array.make (na + nb) 0. and yids = Array.make (na + nb) 0 in
    let i = ref 0 and j = ref 0 in
    for k = 0 to na + nb - 1 do
      if !j >= nb || (!i < na && ay.(!i) <= by.(!j)) then begin
        ys.(k) <- ay.(!i);
        yids.(k) <- aids.(!i);
        incr i
      end
      else begin
        ys.(k) <- by.(!j);
        yids.(k) <- bids.(!j);
        incr j
      end
    done;
    (ys, yids)
  in
  let rec build_node lo hi : node * float array * int array =
    if hi - lo = 1 then begin
      let ys = [| y ids.(lo) |] and yids = [| ids.(lo) |] in
      let node =
        {
          lo;
          hi;
          ys;
          prefix = prefix_of yids;
          bridge_l = [||];
          bridge_r = [||];
          left = None;
          right = None;
        }
      in
      (node, ys, yids)
    end
    else begin
      let mid = (lo + hi) / 2 in
      let lnode, lys, lids = build_node lo mid in
      let rnode, rys, rids = build_node mid hi in
      let ys, yids = merge lys lids rys rids in
      let node =
        {
          lo;
          hi;
          ys;
          prefix = prefix_of yids;
          bridge_l = bridges ys lys;
          bridge_r = bridges ys rys;
          left = Some lnode;
          right = Some rnode;
        }
      in
      (node, ys, yids)
    end
  in
  let root =
    if Array.length ids = 0 then None
    else begin
      let node, _, _ = build_node 0 (Array.length ids) in
      Some node
    end
  in
  { xs; m; root }

(* Componentwise-sum the statistic vectors of the points in the box. *)
let query (t : t) ~(x : Interval.t) ~(y : Interval.t) : float array =
  let acc = Array.make t.m 0. in
  match t.root with
  | None -> acc
  | Some root ->
    let xa, xb = Interval.positions x t.xs in
    if xb <= xa then acc
    else begin
      (* y positions at the root, as in a plain binary search ... *)
      let ya, yb = Interval.positions y root.ys in
      let add node ya yb =
        if yb > ya then begin
          let p = node.prefix and m = t.m in
          for j = 0 to m - 1 do
            acc.(j) <- acc.(j) +. p.((yb * m) + j) -. p.((ya * m) + j)
          done
        end
      in
      (* ... then carried down through the bridges: no further searches. *)
      let rec visit node ya yb =
        if xb <= node.lo || node.hi <= xa then ()
        else if xa <= node.lo && node.hi <= xb then add node ya yb
        else begin
          (match node.left with
          | Some l -> visit l node.bridge_l.(ya) node.bridge_l.(yb)
          | None -> ());
          match node.right with
          | Some r -> visit r node.bridge_r.(ya) node.bridge_r.(yb)
          | None -> ()
        end
      in
      visit root ya yb;
      acc
    end

let size t = Array.length t.xs
