(** 2-d range tree with fractional cascading and prefix-aggregate levels:
    O(n log n) build, O(log n) per divisible-aggregate box query. *)

type t

(** [build ~x ~y ~stats ~m ids] indexes points [ids] with coordinates
    [(x id, y id)] and m-dimensional statistic vectors [stats id]. *)
val build : x:(int -> float) -> y:(int -> float) -> stats:(int -> float array) -> m:int -> int array -> t

(** Componentwise sum of the statistic vectors of all points inside the
    box. *)
val query : t -> x:Interval.t -> y:Interval.t -> float array

val size : t -> int
