(* Categorical partitioning: the hash-table levels of the layered index
   (Section 5.3.1: "degenerate range components ... can be replaced by a
   hashtable with O(1) look-up").

   Points are split by an integer key vector (e.g. player, unit type); each
   partition lazily builds its own continuous-attribute sub-index.  This is
   how the paper arrives at "6 range trees - one for each player/unit type
   combination". *)

open Sgl_util

type 'a t = {
  partitions : (int list, int Varray.t) Hashtbl.t;
  builder : int array -> 'a;
  cache : (int list, 'a) Hashtbl.t;
}

let create ~(keys : int -> int list) ~(ids : int array) ~(builder : int array -> 'a) : 'a t =
  let partitions = Hashtbl.create 16 in
  Array.iter
    (fun id ->
      let k = keys id in
      match Hashtbl.find_opt partitions k with
      | Some bucket -> Varray.push bucket id
      | None ->
        let bucket = Varray.create 0 in
        Varray.push bucket id;
        Hashtbl.add partitions k bucket)
    ids;
  { partitions; builder; cache = Hashtbl.create 16 }

let partition_keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t.partitions []

let members t key =
  match Hashtbl.find_opt t.partitions key with
  | None -> [||]
  | Some bucket -> Varray.to_array bucket

(* The sub-index of one partition, built on first use and cached. *)
let find t key : 'a option =
  match Hashtbl.find_opt t.cache key with
  | Some sub -> Some sub
  | None ->
    Option.map
      (fun bucket ->
        let sub = t.builder (Varray.to_array bucket) in
        Hashtbl.add t.cache key sub;
        sub)
      (Hashtbl.find_opt t.partitions key)

(* Sub-indexes of every partition whose key satisfies [accept]; this is how
   a disequality like [e.player <> u.player] probes "all other players". *)
let find_matching t ~(accept : int list -> bool) : 'a list =
  let keys = List.filter accept (partition_keys t) in
  List.filter_map (fun k -> find t k) keys

let partition_count t = Hashtbl.length t.partitions

(* Visit every sub-index built so far (and only those): the cross-tick
   cache validates built structures without forcing the lazy ones. *)
let iter_built (f : int list -> 'a -> unit) (t : 'a t) : unit = Hashtbl.iter f t.cache
