(** Categorical partitioning with lazily built per-partition sub-indexes:
    the hash-table levels of the paper's layered indexes. *)

type 'a t

(** [create ~keys ~ids ~builder] partitions [ids] by their key vector;
    [builder] constructs a partition's sub-index from its member ids. *)
val create : keys:(int -> int list) -> ids:int array -> builder:(int array -> 'a) -> 'a t

val partition_keys : 'a t -> int list list
val members : 'a t -> int list -> int array

(** Sub-index of a partition, built on first use; [None] if the partition is
    empty. *)
val find : 'a t -> int list -> 'a option

(** Sub-indexes of every partition accepted by the predicate. *)
val find_matching : 'a t -> accept:(int list -> bool) -> 'a list

val partition_count : 'a t -> int

(** Visit every sub-index built so far, without forcing lazy ones. *)
val iter_built : (int list -> 'a -> unit) -> 'a t -> unit
