(* One dimension of an orthogonal range query: a possibly-open interval.

   The index planner compiles conjuncts like [e.posx >= u.posx - r] into
   intervals per probing unit; strict bounds are preserved so the indexed
   evaluators agree bit-for-bit with the naive scan. *)

open Sgl_util

type t = {
  lo : float;
  lo_strict : bool;
  hi : float;
  hi_strict : bool;
}

let make ?(lo = neg_infinity) ?(lo_strict = false) ?(hi = infinity) ?(hi_strict = false) () =
  { lo; lo_strict; hi; hi_strict }

let everything = make ()

let mem t x =
  (if t.lo_strict then x > t.lo else x >= t.lo)
  && if t.hi_strict then x < t.hi else x <= t.hi

let is_empty t = t.lo > t.hi || (t.lo = t.hi && (t.lo_strict || t.hi_strict))

(* Half-open index range [a, b) of the members of [t] within the sorted
   array [coords]. *)
let positions t (coords : float array) : int * int =
  let a = if t.lo_strict then Search.upper_bound coords t.lo else Search.lower_bound coords t.lo in
  let b = if t.hi_strict then Search.lower_bound coords t.hi else Search.upper_bound coords t.hi in
  (a, max a b)

(* Intersect two intervals over the same attribute. *)
let inter a b =
  let lo, lo_strict =
    if a.lo > b.lo then (a.lo, a.lo_strict)
    else if b.lo > a.lo then (b.lo, b.lo_strict)
    else (a.lo, a.lo_strict || b.lo_strict)
  in
  let hi, hi_strict =
    if a.hi < b.hi then (a.hi, a.hi_strict)
    else if b.hi < a.hi then (b.hi, b.hi_strict)
    else (a.hi, a.hi_strict || b.hi_strict)
  in
  { lo; lo_strict; hi; hi_strict }

let pp ppf t =
  Fmt.pf ppf "%s%g, %g%s"
    (if t.lo_strict then "(" else "[")
    t.lo t.hi
    (if t.hi_strict then ")" else "]")
