(** Possibly-open float intervals: one dimension of an orthogonal range
    query. *)

type t = {
  lo : float;
  lo_strict : bool;
  hi : float;
  hi_strict : bool;
}

val make : ?lo:float -> ?lo_strict:bool -> ?hi:float -> ?hi_strict:bool -> unit -> t

(** The unbounded interval. *)
val everything : t

val mem : t -> float -> bool
val is_empty : t -> bool

(** Half-open index range [\[a, b)] of members within a sorted array. *)
val positions : t -> float array -> int * int

val inter : t -> t -> t
val pp : t Fmt.t
