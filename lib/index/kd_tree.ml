(* 2-d kD-tree for nearest-neighbour aggregates (Section 5.3.2).

   Built per categorical partition (player x unit type in the paper's
   engine); supports an optional per-point filter for residual predicates
   the planner could not push into the partitioning. *)

type node = {
  id : int; (* the splitting point *)
  px : float;
  py : float;
  axis : int; (* 0 = x, 1 = y *)
  left : node option;
  right : node option;
}

type t = { root : node option; count : int }

let build ~(x : int -> float) ~(y : int -> float) (ids : int array) : t =
  let ids = Array.copy ids in
  let coord axis id = if axis = 0 then x id else y id in
  (* Median split by sorting the slice on the current axis.  O(n log^2 n)
     build, O(log n) expected probes. *)
  let rec go lo hi axis =
    if hi <= lo then None
    else begin
      let slice = Array.sub ids lo (hi - lo) in
      Array.sort (fun a b -> Float.compare (coord axis a) (coord axis b)) slice;
      Array.blit slice 0 ids lo (hi - lo);
      let mid = (lo + hi) / 2 in
      let id = ids.(mid) in
      Some
        {
          id;
          px = x id;
          py = y id;
          axis;
          left = go lo mid (1 - axis);
          right = go (mid + 1) hi (1 - axis);
        }
    end
  in
  { root = go 0 (Array.length ids) 0; count = Array.length ids }

let size t = t.count

(* Nearest accepted point to (qx, qy); ties break toward the point visited
   first, matching the naive scan only in distance (callers that need
   deterministic tie-breaks compare ids; see Nearest_eval). *)
let nearest ?(filter = fun _ -> true) t ~qx ~qy : (int * float) option =
  let best = ref None in
  let best_d2 () =
    match !best with
    | None -> infinity
    | Some (_, d2) -> d2
  in
  let consider node =
    if filter node.id then begin
      let dx = node.px -. qx and dy = node.py -. qy in
      let d2 = (dx *. dx) +. (dy *. dy) in
      let better =
        match !best with
        | None -> true
        | Some (bid, bd2) -> d2 < bd2 || (d2 = bd2 && node.id < bid)
      in
      if better then best := Some (node.id, d2)
    end
  in
  let rec go = function
    | None -> ()
    | Some node ->
      consider node;
      let delta = if node.axis = 0 then qx -. node.px else qy -. node.py in
      let near, far = if delta < 0. then (node.left, node.right) else (node.right, node.left) in
      go near;
      (* The far side can only help if the splitting plane is closer than
         the best match so far (<= admits equal-distance, smaller-id points). *)
      if delta *. delta <= best_d2 () then go far
  in
  go t.root;
  !best

(* Visit every point inside the box (used by tests and residual scans). *)
let query_box ?(filter = fun _ -> true) t ~(x : Interval.t) ~(y : Interval.t) (f : int -> unit) :
    unit =
  let rec go = function
    | None -> ()
    | Some node ->
      if Interval.mem x node.px && Interval.mem y node.py && filter node.id then f node.id;
      let c = if node.axis = 0 then node.px else node.py in
      let iv = if node.axis = 0 then x else y in
      (* Prune subtrees wholly outside the box on the splitting axis. *)
      if c >= iv.Interval.lo then go node.left;
      if c <= iv.Interval.hi then go node.right
  in
  go t.root
