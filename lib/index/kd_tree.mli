(** 2-d kD-tree for nearest-neighbour queries (Section 5.3.2). *)

type t

val build : x:(int -> float) -> y:(int -> float) -> int array -> t
val size : t -> int

(** [nearest ?filter t ~qx ~qy] is [Some (id, squared_distance)] of the
    nearest point accepted by [filter] (default: all), or [None] when no
    point qualifies.  Distance ties break toward the smaller id. *)
val nearest : ?filter:(int -> bool) -> t -> qx:float -> qy:float -> (int * float) option

(** Visit every point inside the box that the filter accepts. *)
val query_box :
  ?filter:(int -> bool) -> t -> x:Interval.t -> y:Interval.t -> (int -> unit) -> unit
