(* Layered range trees (Section 5.3.1).

   A tree over dimension 0 whose canonical nodes carry an associated
   structure over the remaining dimensions; the last level is a sorted array
   whose leaves hold *prefix statistic vectors*, so any box aggregate of a
   divisible aggregate is recovered from O(log^d n) prefix differences
   without enumerating the k matching points (Figure 8).

   The same structure answers enumeration queries (reporting ids), which is
   the fallback for non-divisible aggregates and residual predicates. *)

type t =
  | Leaf_level of {
      coords : float array; (* sorted by the last dimension *)
      ids : int array; (* point ids in coord order *)
      prefix : float array array; (* n+1 rows of m statistic sums; [||] rows if stats are unused *)
      m : int;
    }
  | Tree_level of {
      coords : float array; (* sorted by this dimension *)
      root : node option; (* None iff there are no points *)
      m : int;
    }

and node = {
  lo : int;
  hi : int; (* the node covers sorted positions [lo, hi) *)
  assoc : t; (* next-level structure over those points *)
  left : node option;
  right : node option;
}

(* [build ~dims ~stats ids] builds a tree over the points [ids]; [dims]
   gives each dimension's coordinate accessor, [stats] the per-point
   statistic vector (pass [None] for an enumeration-only tree). *)
let rec build ~(dims : (int -> float) list) ~(stats : (int -> float array) option)
    ~(m : int) (ids : int array) : t =
  match dims with
  | [] -> invalid_arg "Range_tree.build: at least one dimension required"
  | [ last ] ->
    let ids = Array.copy ids in
    Array.sort (fun a b -> Float.compare (last a) (last b)) ids;
    let n = Array.length ids in
    let coords = Array.map last ids in
    let prefix =
      match stats with
      | None -> Array.make (n + 1) [||]
      | Some stat ->
        let prefix = Array.make (n + 1) [||] in
        prefix.(0) <- Array.make m 0.;
        for i = 0 to n - 1 do
          let s = stat ids.(i) in
          prefix.(i + 1) <- Array.init m (fun j -> prefix.(i).(j) +. s.(j))
        done;
        prefix
    in
    Leaf_level { coords; ids; prefix; m }
  | first :: rest ->
    let ids = Array.copy ids in
    Array.sort (fun a b -> Float.compare (first a) (first b)) ids;
    let coords = Array.map first ids in
    let rec build_node lo hi =
      if hi <= lo then None
      else begin
        let assoc = build ~dims:rest ~stats ~m (Array.sub ids lo (hi - lo)) in
        if hi - lo = 1 then Some { lo; hi; assoc; left = None; right = None }
        else begin
          let mid = (lo + hi) / 2 in
          Some { lo; hi; assoc; left = build_node lo mid; right = build_node mid hi }
        end
      end
    in
    Tree_level { coords; root = build_node 0 (Array.length ids); m }

(* Sum the statistic vectors of all points inside the box. *)
let query_stats (t : t) (box : Interval.t list) : float array =
  let m =
    match t with
    | Leaf_level l -> l.m
    | Tree_level l -> l.m
  in
  let acc = Array.make m 0. in
  let add_range (prefix : float array array) a b =
    if b > a then begin
      let pa = prefix.(a) and pb = prefix.(b) in
      for j = 0 to Array.length acc - 1 do
        acc.(j) <- acc.(j) +. pb.(j) -. pa.(j)
      done
    end
  in
  let rec go t box =
    match (t, box) with
    | Leaf_level l, [ iv ] ->
      let a, b = Interval.positions iv l.coords in
      add_range l.prefix a b
    | Tree_level { coords; root; _ }, iv :: rest ->
      let a, b = Interval.positions iv coords in
      let rec visit = function
        | None -> ()
        | Some node ->
          if b <= node.lo || node.hi <= a then ()
          else if a <= node.lo && node.hi <= b then go node.assoc rest
          else begin
            visit node.left;
            visit node.right
          end
      in
      visit root
    | Leaf_level _, ([] | _ :: _ :: _) | Tree_level _, [] ->
      invalid_arg "Range_tree.query_stats: box arity does not match tree depth"
  in
  go t box;
  acc

(* Report the id of every point inside the box. *)
let query_enum (t : t) (box : Interval.t list) (f : int -> unit) : unit =
  let rec go t box =
    match (t, box) with
    | Leaf_level l, [ iv ] ->
      let a, b = Interval.positions iv l.coords in
      for i = a to b - 1 do
        f l.ids.(i)
      done
    | Tree_level { coords; root; _ }, iv :: rest ->
      let a, b = Interval.positions iv coords in
      let rec visit = function
        | None -> ()
        | Some node ->
          if b <= node.lo || node.hi <= a then ()
          else if a <= node.lo && node.hi <= b then go node.assoc rest
          else begin
            visit node.left;
            visit node.right
          end
      in
      visit root
    | Leaf_level _, ([] | _ :: _ :: _) | Tree_level _, [] ->
      invalid_arg "Range_tree.query_enum: box arity does not match tree depth"
  in
  go t box

let query_count (t : t) (box : Interval.t list) : int =
  let n = ref 0 in
  query_enum t box (fun _ -> incr n);
  !n

let depth (t : t) =
  let rec go acc = function
    | Leaf_level _ -> acc + 1
    | Tree_level { root = Some n; _ } -> go (acc + 1) n.assoc
    | Tree_level { root = None; _ } -> acc + 1
  in
  go 0 t

let size = function
  | Leaf_level l -> Array.length l.ids
  | Tree_level { coords; _ } -> Array.length coords
