(** Layered range trees with prefix-aggregate leaves (Section 5.3.1,
    Figure 8).

    Supports divisible-aggregate box queries in O(log^d n) and enumeration
    of the matching points in O(log^d n + k). *)

type t

(** [build ~dims ~stats ~m ids] indexes the points [ids].  [dims] gives the
    coordinate accessor for each of the d >= 1 dimensions (outermost first);
    [stats] gives each point's m-dimensional statistic vector, or [None] for
    an enumeration-only tree (then [m] is ignored). *)
val build : dims:(int -> float) list -> stats:(int -> float array) option -> m:int -> int array -> t

(** Componentwise sum of the statistic vectors of all points inside the box
    (one interval per dimension, outermost first). *)
val query_stats : t -> Interval.t list -> float array

(** Visit the id of every point inside the box. *)
val query_enum : t -> Interval.t list -> (int -> unit) -> unit

val query_count : t -> Interval.t list -> int

(** Number of levels (= number of dimensions). *)
val depth : t -> int

(** Number of indexed points. *)
val size : t -> int
