(* A static-topology segment tree over an arbitrary monoid.

   Two roles in this library: the dynamic interval-aggregate index of the
   sweep-line algorithm (values enter and leave as the sweep advances,
   Section 5.3.1), and the non-divisible last level of the layered range
   tree (ablation A2's comparison point). *)

type 'a t = {
  neutral : 'a;
  op : 'a -> 'a -> 'a;
  size : int; (* number of leaves exposed to the caller *)
  base : int; (* power-of-two leaf count *)
  data : 'a array; (* 1-based heap layout; leaves at [base .. base+size) *)
}

let create ~neutral ~op n =
  if n < 0 then invalid_arg "Segment_tree.create: negative size";
  let base = ref 1 in
  while !base < max n 1 do
    base := !base * 2
  done;
  { neutral; op; size = n; base = !base; data = Array.make (2 * !base) neutral }

let size t = t.size

let get t i =
  if i < 0 || i >= t.size then invalid_arg "Segment_tree.get: index out of bounds";
  t.data.(t.base + i)

let set t i v =
  if i < 0 || i >= t.size then invalid_arg "Segment_tree.set: index out of bounds";
  let pos = ref (t.base + i) in
  t.data.(!pos) <- v;
  pos := !pos / 2;
  while !pos >= 1 do
    t.data.(!pos) <- t.op t.data.(2 * !pos) t.data.((2 * !pos) + 1);
    pos := !pos / 2
  done

let clear t i = set t i t.neutral

(* Aggregate of the half-open leaf range [lo, hi). *)
let query t ~lo ~hi =
  if lo < 0 || hi > t.size || lo > hi then
    invalid_arg "Segment_tree.query: bad range";
  let a = ref (t.base + lo) and b = ref (t.base + hi) in
  let left = ref t.neutral and right = ref t.neutral in
  while !a < !b do
    if !a land 1 = 1 then begin
      left := t.op !left t.data.(!a);
      incr a
    end;
    if !b land 1 = 1 then begin
      decr b;
      right := t.op t.data.(!b) !right
    end;
    a := !a / 2;
    b := !b / 2
  done;
  t.op !left !right

let query_all t = query t ~lo:0 ~hi:t.size

(* Bulk initialization in O(n). *)
let build ~neutral ~op (values : 'a array) =
  let t = create ~neutral ~op (Array.length values) in
  Array.blit values 0 t.data t.base (Array.length values);
  for i = t.base - 1 downto 1 do
    t.data.(i) <- op t.data.(2 * i) t.data.((2 * i) + 1)
  done;
  t

let fill t v =
  for i = t.base to t.base + t.size - 1 do
    t.data.(i) <- v
  done;
  for i = t.base + t.size to (2 * t.base) - 1 do
    t.data.(i) <- t.neutral
  done;
  for i = t.base - 1 downto 1 do
    t.data.(i) <- t.op t.data.(2 * i) t.data.((2 * i) + 1)
  done
