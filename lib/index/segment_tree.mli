(** Segment tree over an arbitrary monoid: point update, range aggregate. *)

type 'a t

(** [create ~neutral ~op n] makes a tree of [n] leaves all holding
    [neutral].  [op] must be associative with identity [neutral]. *)
val create : neutral:'a -> op:('a -> 'a -> 'a) -> int -> 'a t

(** O(n) bulk construction. *)
val build : neutral:'a -> op:('a -> 'a -> 'a) -> 'a array -> 'a t

val size : 'a t -> int
val get : 'a t -> int -> 'a

(** O(log n) point update. *)
val set : 'a t -> int -> 'a -> unit

(** Reset a leaf to the neutral element. *)
val clear : 'a t -> int -> unit

(** Aggregate of the half-open range [\[lo, hi)]; O(log n). *)
val query : 'a t -> lo:int -> hi:int -> 'a

val query_all : 'a t -> 'a

(** Set every leaf to [v] in O(n). *)
val fill : 'a t -> 'a -> unit
