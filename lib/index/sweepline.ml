(* Sweep-line evaluation of MIN/MAX aggregates over constant-size ranges
   (Section 5.3.1, Figure 9).

   Min and max are not divisible, so the prefix-aggregate range tree does
   not apply.  But when every probing unit uses the same box half-widths
   (rx, ry) — "units of the same type all have the same weapon and
   visibility range" — we can sweep the queries by y, keep exactly the data
   points whose y lies within ry of the sweep in a segment tree ordered by
   x, and answer each query with one interval-aggregate probe: O((n+q) log n)
   in total instead of O(n*q). *)

type kind = Min | Max

type datum = {
  x : float;
  y : float;
  value : float; (* the objective being minimized / maximized *)
  id : int;
}

type query = {
  qx : float;
  qy : float;
  qid : int; (* caller's slot in the result array *)
}

(* Segment-tree element: best (value, id) seen; [id = -1] is "no point".
   Ties prefer the smaller id so results are deterministic and match the
   naive scan's order-independent answer. *)
let better kind (v1, id1) (v2, id2) =
  if id1 < 0 then (v2, id2)
  else if id2 < 0 then (v1, id1)
  else begin
    let cmp = compare v1 v2 in
    let first =
      match kind with
      | Min -> cmp < 0 || (cmp = 0 && id1 < id2)
      | Max -> cmp > 0 || (cmp = 0 && id1 < id2)
    in
    if first then (v1, id1) else (v2, id2)
  end

(* [run kind ~data ~queries ~rx ~ry ~n_queries] fills, for every query, the
   best datum with |dx| <= rx and |dy| <= ry, or [None]. *)
let run kind ~(data : datum array) ~(queries : query array) ~(rx : float) ~(ry : float)
    ~(n_queries : int) : (int * float) option array =
  let results = Array.make n_queries None in
  let n = Array.length data in
  let data = Array.copy data in
  Array.sort (fun a b -> Float.compare a.y b.y) data;
  (* x order gives each datum its segment-tree slot. *)
  let by_x = Array.init n (fun i -> i) in
  Array.sort (fun a b -> Float.compare data.(a).x data.(b).x) by_x;
  let slot_of = Array.make n 0 in
  Array.iteri (fun slot i -> slot_of.(i) <- slot) by_x;
  let xs = Array.map (fun i -> data.(i).x) by_x in
  let queries = Array.copy queries in
  Array.sort (fun a b -> Float.compare a.qy b.qy) queries;
  let neutral = (nan, -1) in
  let tree = Segment_tree.create ~neutral ~op:(better kind) n in
  (* Data enter when the sweep reaches y - ry and leave after y + ry; both
     frontiers advance monotonically with the query sweep. *)
  let enter = ref 0 and exit_ = ref 0 in
  Array.iter
    (fun q ->
      while !enter < n && data.(!enter).y <= q.qy +. ry do
        let d = data.(!enter) in
        Segment_tree.set tree slot_of.(!enter) (d.value, d.id);
        incr enter
      done;
      while !exit_ < n && data.(!exit_).y < q.qy -. ry do
        Segment_tree.clear tree slot_of.(!exit_);
        incr exit_
      done;
      let a = Sgl_util.Search.lower_bound xs (q.qx -. rx) in
      let b = Sgl_util.Search.upper_bound xs (q.qx +. rx) in
      if b > a then begin
        let value, id = Segment_tree.query tree ~lo:a ~hi:b in
        if id >= 0 then results.(q.qid) <- Some (id, value)
      end)
    queries;
  results
