(** Sweep-line MIN/MAX over constant-size orthogonal ranges (Section 5.3.1,
    Figure 9): O((n+q) log n) for n data points and q queries. *)

type kind = Min | Max

type datum = { x : float; y : float; value : float; id : int }
type query = { qx : float; qy : float; qid : int }

(** [run kind ~data ~queries ~rx ~ry ~n_queries] returns, indexed by each
    query's [qid], [Some (data_id, best_value)] over the data points with
    [|dx| <= rx] and [|dy| <= ry], or [None] when the window is empty.
    Value ties break toward the smaller data id. *)
val run :
  kind ->
  data:datum array ->
  queries:query array ->
  rx:float ->
  ry:float ->
  n_queries:int ->
  (int * float) option array
