(* The flight recorder: a black box for the tick loop.

   A fixed-capacity ring of {!Sgl_engine.Simulation.tick_sample}s, written
   by the simulation thread from the per-commit observer and read by the
   live endpoint (/ticks, /health) and the post-mortem dumpers.  The ring
   is bounded so a week-long run cannot grow it; the mutex is held for an
   array store, so the tick loop never blocks behind a reader for long.

   Two persistent forms share one CRC-framed binary format:

   - [dump] writes the ring's current contents in one shot (the
     on-demand / exit-path black box);
   - a [sink] streams every record to an append-only file at commit time,
     flushing each frame, so a SIGKILL loses at most the record the OS
     had not yet seen — the same durability story as the commit journal,
     minus the fsync (forensics, not recovery, so losing the last frame
     to a power cut is acceptable).

   Each frame is [u32 length | payload | u32 crc].  The loader verifies
   every CRC and stops at the first torn or corrupt frame, returning what
   it read plus a torn flag — truncation tolerance mirrors
   {!Sgl_persist.Journal}. *)

open Sgl_util
open Sgl_engine

type sample = Simulation.tick_sample

let magic = "SGLFLITE"
let version = 1

(* ------------------------------------------------------------------ *)
(* The ring *)

type t = {
  capacity : int;
  buf : sample array; (* slot [i mod capacity]; dummy-filled until written *)
  lock : Mutex.t;
  mutable total : int; (* samples ever recorded *)
}

let dummy : sample =
  {
    Simulation.s_tick = -1;
    s_units = 0;
    s_digest = 0;
    s_tick_s = 0.;
    s_decision_s = 0.;
    s_post_s = 0.;
    s_movement_s = 0.;
    s_death_s = 0.;
    s_deaths = 0;
    s_resurrections = 0;
    s_faults = 0;
    s_rollbacks = 0;
    s_retries = 0;
    s_demotions = 0;
    s_index_builds = 0;
    s_index_reuses = 0;
    s_evaluator = "";
  }

let create ~capacity =
  if capacity <= 0 then invalid_arg "Flight.create: capacity must be positive";
  { capacity; buf = Array.make capacity dummy; lock = Mutex.create (); total = 0 }

let capacity t = t.capacity

let record t (s : sample) : unit =
  Mutex.lock t.lock;
  t.buf.(t.total mod t.capacity) <- s;
  t.total <- t.total + 1;
  Mutex.unlock t.lock

let total t =
  Mutex.lock t.lock;
  let n = t.total in
  Mutex.unlock t.lock;
  n

let length t = min (total t) t.capacity

(* The newest [n] samples, oldest first. *)
let tail ?n t : sample list =
  Mutex.lock t.lock;
  let kept = min t.total t.capacity in
  let want = match n with None -> kept | Some n -> max 0 (min n kept) in
  let out = ref [] in
  for i = t.total - want to t.total - 1 do
    out := t.buf.(i mod t.capacity) :: !out
  done;
  Mutex.unlock t.lock;
  List.rev !out

let last t : sample option =
  Mutex.lock t.lock;
  let s = if t.total = 0 then None else Some t.buf.((t.total - 1) mod t.capacity) in
  Mutex.unlock t.lock;
  s

(* ------------------------------------------------------------------ *)
(* Binary encoding *)

module Codec = Sgl_persist.Codec

let encode_sample (s : sample) : string =
  let w = Codec.W.create ~size:128 () in
  Codec.W.int w s.Simulation.s_tick;
  Codec.W.int w s.s_units;
  Codec.W.int w s.s_digest;
  Codec.W.float w s.s_tick_s;
  Codec.W.float w s.s_decision_s;
  Codec.W.float w s.s_post_s;
  Codec.W.float w s.s_movement_s;
  Codec.W.float w s.s_death_s;
  Codec.W.int w s.s_deaths;
  Codec.W.int w s.s_resurrections;
  Codec.W.int w s.s_faults;
  Codec.W.int w s.s_rollbacks;
  Codec.W.int w s.s_retries;
  Codec.W.int w s.s_demotions;
  Codec.W.int w s.s_index_builds;
  Codec.W.int w s.s_index_reuses;
  Codec.W.str w s.s_evaluator;
  Codec.W.contents w

let decode_sample (payload : string) : sample =
  let r = Codec.R.of_string payload in
  let s_tick = Codec.R.int r in
  let s_units = Codec.R.int r in
  let s_digest = Codec.R.int r in
  let s_tick_s = Codec.R.float r in
  let s_decision_s = Codec.R.float r in
  let s_post_s = Codec.R.float r in
  let s_movement_s = Codec.R.float r in
  let s_death_s = Codec.R.float r in
  let s_deaths = Codec.R.int r in
  let s_resurrections = Codec.R.int r in
  let s_faults = Codec.R.int r in
  let s_rollbacks = Codec.R.int r in
  let s_retries = Codec.R.int r in
  let s_demotions = Codec.R.int r in
  let s_index_builds = Codec.R.int r in
  let s_index_reuses = Codec.R.int r in
  let s_evaluator = Codec.R.str r in
  {
    Simulation.s_tick;
    s_units;
    s_digest;
    s_tick_s;
    s_decision_s;
    s_post_s;
    s_movement_s;
    s_death_s;
    s_deaths;
    s_resurrections;
    s_faults;
    s_rollbacks;
    s_retries;
    s_demotions;
    s_index_builds;
    s_index_reuses;
    s_evaluator;
  }

let frame_of (s : sample) : string =
  let payload = encode_sample s in
  let w = Codec.W.create ~size:(String.length payload + 8) () in
  Codec.W.u32 w (String.length payload);
  Codec.W.raw w payload;
  Codec.W.u32 w (Crc32.string payload);
  Codec.W.contents w

let header () : string =
  let b = Buffer.create 16 in
  Codec.write_header b ~magic ~version;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* One-shot dump and streaming sink *)

let write_all (oc : out_channel) (samples : sample list) : unit =
  output_string oc (header ());
  List.iter (fun s -> output_string oc (frame_of s)) samples

let dump t ~(path : string) : unit =
  let samples = tail t in
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_all oc samples)

type sink = { s_oc : out_channel; mutable s_closed : bool }

let sink_open ~(path : string) : sink =
  let oc = open_out_bin path in
  output_string oc (header ());
  flush oc;
  { s_oc = oc; s_closed = false }

(* Flush per record, no fsync: after SIGKILL the OS still writes what the
   process handed it, so only a machine crash can cost frames. *)
let sink_record (k : sink) (s : sample) : unit =
  if not k.s_closed then begin
    output_string k.s_oc (frame_of s);
    flush k.s_oc
  end

let sink_close (k : sink) : unit =
  if not k.s_closed then begin
    k.s_closed <- true;
    close_out k.s_oc
  end

(* ------------------------------------------------------------------ *)
(* Loading *)

let load ~(path : string) : (sample list * bool, string) result =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | contents -> begin
    let r = Codec.R.of_string contents in
    match Codec.read_header r ~magic ~version with
    | exception Codec.Corrupt e -> Error e
    | () ->
      let out = ref [] and torn = ref false in
      (try
         while Codec.R.remaining r > 0 do
           if Codec.R.remaining r < 4 then begin
             torn := true;
             raise Exit
           end;
           let len = Codec.R.u32 r in
           if Codec.R.remaining r < len + 4 then begin
             torn := true;
             raise Exit
           end;
           let payload = Codec.R.raw r len in
           let crc = Codec.R.u32 r in
           if crc <> Crc32.string payload then begin
             torn := true;
             raise Exit
           end;
           match decode_sample payload with
           | s -> out := s :: !out
           | exception Codec.Corrupt _ ->
             torn := true;
             raise Exit
         done
       with Exit -> ());
      Ok (List.rev !out, !torn)
  end

(* ------------------------------------------------------------------ *)
(* JSON *)

let sample_json (s : sample) : string =
  let f = Telemetry.json_float in
  Printf.sprintf
    "{\"tick\": %d, \"units\": %d, \"digest\": \"%08x\", \"tick_s\": %s, \"decision_s\": %s, \
     \"post_s\": %s, \"movement_s\": %s, \"death_s\": %s, \"deaths\": %d, \"resurrections\": %d, \
     \"faults\": %d, \"rollbacks\": %d, \"retries\": %d, \"demotions\": %d, \"index_builds\": %d, \
     \"index_reuses\": %d, \"evaluator\": %s}"
    s.Simulation.s_tick s.s_units s.s_digest (f s.s_tick_s) (f s.s_decision_s) (f s.s_post_s)
    (f s.s_movement_s) (f s.s_death_s) s.s_deaths s.s_resurrections s.s_faults s.s_rollbacks
    s.s_retries s.s_demotions s.s_index_builds s.s_index_reuses
    (Telemetry.json_string s.s_evaluator)

let to_json (samples : sample list) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b "[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n  ";
      Buffer.add_string b (sample_json s))
    samples;
  if samples <> [] then Buffer.add_char b '\n';
  Buffer.add_string b "]\n";
  Buffer.contents b
