(** The flight recorder: a bounded ring of per-tick commit samples with a
    CRC-framed persistent form — the engine's crash-forensics black box.

    The ring is written by the simulation thread (via the
    {!Sgl_engine.Simulation.set_observer} hook) and read concurrently by
    the live endpoint; persistence comes in two forms over one format: a
    one-shot {!dump} of the ring and an append-only streaming {!sink}
    flushed per record, so even a SIGKILL leaves a loadable file whose
    last frame is the last committed tick the OS saw. *)

open Sgl_engine

type sample = Simulation.tick_sample

type t

(** Raises [Invalid_argument] unless [capacity > 0]. *)
val create : capacity:int -> t

val capacity : t -> int

(** Store one committed tick's sample, evicting the oldest at capacity. *)
val record : t -> sample -> unit

(** Samples ever recorded (monotone; [>= length] once the ring wraps). *)
val total : t -> int

(** Samples currently held ([min total capacity]). *)
val length : t -> int

(** The newest [n] (default: all held) samples, oldest first. *)
val tail : ?n:int -> t -> sample list

val last : t -> sample option

(** {1 Persistent form} *)

(** Write the ring's current contents to [path] (header + one CRC-framed
    record per sample, oldest first). *)
val dump : t -> path:string -> unit

(** An append-only stream of records, flushed per frame.  Independent of
    any ring: the caller feeds it from the observer. *)
type sink

(** Truncates [path] and writes the file header. *)
val sink_open : path:string -> sink

val sink_record : sink -> sample -> unit
val sink_close : sink -> unit

(** [load ~path] reads a dump or sink file back.  The [bool] is a torn
    flag: reading stops at the first truncated or CRC-invalid frame, and
    everything before it is returned — the expected shape after a crash
    mid-write.  [Error] only for an unreadable file or a bad header. *)
val load : path:string -> (sample list * bool, string) result

(** {1 JSON} *)

val sample_json : sample -> string

(** A JSON array of {!sample_json} objects, oldest first. *)
val to_json : sample list -> string
