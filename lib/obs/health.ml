(* Health probes: readiness plus cheap anomaly heuristics over the flight
   recorder's recent window vs the run's own baseline.  Flags are
   advisory (the endpoint stays 200 once ready); they exist so a scraper
   can alert on degradation without parsing full stats. *)

open Sgl_util
open Sgl_engine

(* Recent window: enough ticks to smooth one-off spikes (a checkpoint
   tick), few enough to react within seconds at game tick rates. *)
let window = 32

(* A degraded tick-time flag needs the recent p99 to clear both a
   relative bar vs the whole run's median and an absolute floor, so
   microsecond jitter on a fast sim never trips it. *)
let tick_time_factor = 10.
let tick_time_floor_s = 0.005

let collapse_fraction = 0.10
let reuse_drop_factor = 0.5
let reuse_min_activity = 8

type status = {
  ready : bool; (* at least one committed tick observed *)
  healthy : bool; (* ready and no flags raised *)
  flags : string list;
  tick : int;
  units : int;
  peak_units : int;
  recent_p99_s : float;
  baseline_p50_s : float;
  recent_reuse_rate : float; (* nan when the window had no index activity *)
  overall_reuse_rate : float;
}

let nearest_rank (sorted : float array) (q : float) : float =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(max 0 (min (n - 1) (int_of_float (Float.ceil (q *. float_of_int n)) - 1)))

let rate reuses builds =
  let total = reuses + builds in
  if total = 0 then nan else float_of_int reuses /. float_of_int total

let assess ~(sim : Simulation.t) ~(flight : Flight.t) ~(peak_units : int) : status =
  let recent = Flight.tail ~n:window flight in
  let r = Simulation.report sim in
  match Flight.last flight with
  | None ->
    {
      ready = false;
      healthy = false;
      flags = [];
      tick = 0;
      units = 0;
      peak_units;
      recent_p99_s = nan;
      baseline_p50_s = nan;
      recent_reuse_rate = nan;
      overall_reuse_rate = nan;
    }
  | Some last ->
    let times =
      List.map (fun (s : Flight.sample) -> s.Simulation.s_tick_s) recent |> Array.of_list
    in
    Array.sort compare times;
    let recent_p99_s = nearest_rank times 0.99 in
    let baseline_p50_s = r.Simulation.tick_p50_s in
    let recent_builds =
      List.fold_left (fun a (s : Flight.sample) -> a + s.Simulation.s_index_builds) 0 recent
    and recent_reuses =
      List.fold_left (fun a (s : Flight.sample) -> a + s.Simulation.s_index_reuses) 0 recent
    in
    let recent_reuse_rate = rate recent_reuses recent_builds in
    let overall_reuse_rate = rate r.Simulation.index_reuses r.Simulation.index_builds in
    let flags = ref [] in
    if
      Float.is_finite recent_p99_s && Float.is_finite baseline_p50_s
      && recent_p99_s > tick_time_factor *. baseline_p50_s
      && recent_p99_s > tick_time_floor_s
    then flags := "tick_time_p99_degraded" :: !flags;
    if
      peak_units > 0
      && float_of_int last.Simulation.s_units
         < collapse_fraction *. float_of_int peak_units
    then flags := "population_collapse" :: !flags;
    if
      (not (Float.is_nan overall_reuse_rate))
      && (not (Float.is_nan recent_reuse_rate))
      && recent_builds + recent_reuses >= reuse_min_activity
      && recent_reuse_rate < reuse_drop_factor *. overall_reuse_rate
    then flags := "index_reuse_rate_drop" :: !flags;
    let flags = List.rev !flags in
    {
      ready = true;
      healthy = flags = [];
      flags;
      tick = last.Simulation.s_tick;
      units = last.Simulation.s_units;
      peak_units;
      recent_p99_s;
      baseline_p50_s;
      recent_reuse_rate;
      overall_reuse_rate;
    }

let to_json (s : status) : string =
  let f = Telemetry.json_float in
  Printf.sprintf
    "{\"ready\": %b, \"healthy\": %b, \"flags\": [%s], \"tick\": %d, \"units\": %d, \
     \"peak_units\": %d, \"recent_p99_s\": %s, \"baseline_p50_s\": %s, \"recent_reuse_rate\": %s, \
     \"overall_reuse_rate\": %s}\n"
    s.ready s.healthy
    (String.concat ", " (List.map Telemetry.json_string s.flags))
    s.tick s.units s.peak_units (f s.recent_p99_s) (f s.baseline_p50_s) (f s.recent_reuse_rate)
    (f s.overall_reuse_rate)
