(** Readiness and anomaly flags over the flight recorder's recent window:
    tick-time p99 vs the run's own median, population collapse vs the
    observed peak, and index-reuse-rate drop vs the run's overall
    rate. *)

open Sgl_engine

type status = {
  ready : bool;  (** at least one committed tick observed *)
  healthy : bool;  (** ready and no flags raised *)
  flags : string list;
      (** subset of ["tick_time_p99_degraded"], ["population_collapse"],
          ["index_reuse_rate_drop"] *)
  tick : int;
  units : int;
  peak_units : int;
  recent_p99_s : float;
  baseline_p50_s : float;
  recent_reuse_rate : float;  (** [nan] when the window had no index activity *)
  overall_reuse_rate : float;
}

val assess : sim:Simulation.t -> flight:Flight.t -> peak_units:int -> status
val to_json : status -> string
