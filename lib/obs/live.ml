(* The glue layer: install the per-commit observer on a simulation, fan
   it out to the flight recorder / streaming sink / committed-tick
   snapshot, and serve the six diagnostic endpoints over {!Server}.

   Thread-safety inventory, because the handler runs on the server thread
   while the tick loop runs on the caller's:

   - the flight ring is mutex-guarded;
   - the /query snapshot is an [Atomic.t] holding the committed unit
     array, which the engine never mutates after commit (the next tick
     swaps in fresh copies), so scanning it lock-free is safe;
   - registry counters are atomics, histogram shards are mutexed, and
     [Simulation.report]'s remaining reads are single-word fields of
     immutable values — a racy read sees a slightly stale but
     well-formed value, which is all a diagnostics port needs.

   Nothing the observer or any handler touches can reach unit state or a
   PRNG, so runs are bit-identical with observability on or off; the
   differential test in test_obs pins that. *)

open Sgl_util
open Sgl_lang
open Sgl_qopt
open Sgl_engine

type t = {
  sim : Simulation.t;
  prog : Core_ir.program;
  flight : Flight.t;
  sink : Flight.sink option;
  snapshot : Query.snapshot option Atomic.t;
  peak_units : int Atomic.t;
  mutable server : Server.t option;
}

let observer (t : t) (s : Simulation.tick_sample) : unit =
  Flight.record t.flight s;
  Option.iter (fun k -> Flight.sink_record k s) t.sink;
  Atomic.set t.snapshot
    (Some { Query.q_tick = s.Simulation.s_tick; q_units = Simulation.units t.sim });
  if s.Simulation.s_units > Atomic.get t.peak_units then
    Atomic.set t.peak_units s.Simulation.s_units

let create ?(flight_capacity = 1024) ?dump_path ~(sim : Simulation.t)
    ~(prog : Core_ir.program) () : t =
  let t =
    {
      sim;
      prog;
      flight = Flight.create ~capacity:flight_capacity;
      sink = Option.map (fun path -> Flight.sink_open ~path) dump_path;
      snapshot = Atomic.make None;
      peak_units = Atomic.make (Array.length (Simulation.units sim));
      server = None;
    }
  in
  Simulation.set_observer sim (Some (observer t));
  t

let flight (t : t) : Flight.t = t.flight

let dump (t : t) ~(path : string) : unit = Flight.dump t.flight ~path

(* ------------------------------------------------------------------ *)
(* Endpoint bodies *)

let report_json (t : t) : string =
  let r = Simulation.report t.sim in
  let f = Telemetry.json_float in
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"tick\": %d,\n  \"units\": %d,\n  \"evaluator\": %s,\n"
       r.Simulation.ticks r.Simulation.n_units
       (Telemetry.json_string
          (Simulation.evaluator_name (Simulation.current_evaluator t.sim))));
  Buffer.add_string b
    (Printf.sprintf
       "  \"report\": {\"decision_s\": %s, \"build_s\": %s, \"post_s\": %s, \"movement_s\": %s, \
        \"death_s\": %s, \"total_s\": %s, \"tick_p50_s\": %s, \"tick_p90_s\": %s, \
        \"tick_p99_s\": %s, \"index_builds\": %d, \"index_probes\": %d, \"naive_scans\": %d, \
        \"uniform_hits\": %d, \"index_reuses\": %d, \"deaths\": %d, \"resurrections\": %d, \
        \"faults\": %d, \"retries\": %d, \"rollbacks\": %d, \"suppressed\": %d, \
        \"quarantined\": [%s], \"degradations\": %d},\n"
       (f r.Simulation.decision_s) (f r.Simulation.build_s) (f r.Simulation.post_s)
       (f r.Simulation.movement_s) (f r.Simulation.death_s) (f r.Simulation.total_s)
       (f r.Simulation.tick_p50_s) (f r.Simulation.tick_p90_s) (f r.Simulation.tick_p99_s)
       r.Simulation.index_builds r.Simulation.index_probes r.Simulation.naive_scans
       r.Simulation.uniform_hits r.Simulation.index_reuses r.Simulation.deaths
       r.Simulation.resurrections r.Simulation.faults r.Simulation.retries
       r.Simulation.rollbacks r.Simulation.suppressed
       (String.concat ", " (List.map Telemetry.json_string r.Simulation.quarantined))
       (List.length r.Simulation.degradations));
  Buffer.add_string b "  \"sim\": ";
  Buffer.add_string b (String.trim (Telemetry.Registry.to_json (Simulation.telemetry t.sim)));
  Buffer.add_string b ",\n  \"ambient\": ";
  Buffer.add_string b (String.trim (Telemetry.Registry.to_json Telemetry.default));
  Buffer.add_string b "\n}\n";
  Buffer.contents b

let explain_text (t : t) : string =
  Eval.explain ~schema:t.prog.Core_ir.schema ~aggregates:t.prog.Core_ir.aggregates ()

let json r_status body = { Server.status = r_status; content_type = "application/json"; body }

let handler (t : t) : Server.handler =
 fun ~path ~params ->
  match path with
  | "/metrics" ->
    {
      Server.status = 200;
      content_type = Prometheus.content_type;
      body =
        Prometheus.render
          [ ("ambient", Telemetry.default); ("sim", Simulation.telemetry t.sim) ];
    }
  | "/stats" -> json 200 (report_json t)
  | "/ticks" ->
    let n =
      match List.assoc_opt "n" params with
      | Some v -> ( match int_of_string_opt v with Some n when n > 0 -> n | _ -> 64)
      | None -> 64
    in
    json 200 (Flight.to_json (Flight.tail ~n t.flight))
  | "/explain" ->
    { Server.status = 200; content_type = "text/plain; charset=utf-8"; body = explain_text t }
  | "/health" ->
    let status =
      Health.assess ~sim:t.sim ~flight:t.flight ~peak_units:(Atomic.get t.peak_units)
    in
    json (if status.Health.ready then 200 else 503) (Health.to_json status)
  | "/query" -> begin
    match List.assoc_opt "q" params with
    | None | Some "" -> json 400 "{\"error\": \"missing q parameter\"}\n"
    | Some q -> begin
      match Atomic.get t.snapshot with
      | None -> json 503 "{\"error\": \"no committed tick yet\"}\n"
      | Some snapshot -> begin
        let key = Option.bind (List.assoc_opt "key" params) int_of_string_opt in
        match Query.run ~schema:t.prog.Core_ir.schema ~snapshot ?key q with
        | Ok body -> json 200 body
        | Error e ->
          json 400 (Printf.sprintf "{\"error\": %s}\n" (Telemetry.json_string e))
      end
    end
  end
  | _ ->
    {
      Server.status = 404;
      content_type = "text/plain; charset=utf-8";
      body = "unknown path; try /metrics /stats /ticks /explain /health /query\n";
    }

let serve (t : t) ~(port : int) : int =
  match t.server with
  | Some s -> Server.port s
  | None ->
    let s = Server.start ~port ~handler:(handler t) () in
    t.server <- Some s;
    Server.port s

let stop (t : t) : unit =
  Simulation.set_observer t.sim None;
  Option.iter Flight.sink_close t.sink;
  Option.iter Server.stop t.server;
  t.server <- None
