(** The live observability layer over one running simulation: installs
    the per-commit observer (flight recorder, optional streaming dump
    sink, committed-tick query snapshot) and serves the six diagnostic
    endpoints — [/metrics] (Prometheus), [/stats] (JSON report +
    registries), [/ticks] (flight tail), [/explain] (live-annotated
    plans), [/health] (readiness + anomaly flags), [/query] (read-only
    SGL aggregate over the last committed tick). *)

open Sgl_lang
open Sgl_engine

type t

(** [create ~sim ~prog ()] installs the observer on [sim].
    [flight_capacity] bounds the ring (default 1024 ticks); [dump_path],
    when given, additionally streams every record to that file, flushed
    per frame, so a SIGKILL still leaves a loadable dump. *)
val create :
  ?flight_capacity:int -> ?dump_path:string -> sim:Simulation.t -> prog:Core_ir.program ->
  unit -> t

val flight : t -> Flight.t

(** One-shot dump of the ring's current contents. *)
val dump : t -> path:string -> unit

(** The endpoint dispatcher, exposed for in-process tests. *)
val handler : t -> Server.handler

(** Start the HTTP server (idempotent); returns the bound port (pass
    [port:0] for an ephemeral one). *)
val serve : t -> port:int -> int

(** Uninstall the observer, close the sink, stop the server. *)
val stop : t -> unit
