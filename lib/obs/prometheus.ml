(* Prometheus text exposition (format 0.0.4) over telemetry registries.

   Metric names are the registry's dotted names with non-alphanumerics
   mapped to '_' and an "sgl_" prefix; the owning registry becomes a
   [registry="..."] label, so the ambient process-wide registry and a
   simulation's private one coexist in one scrape.  Histograms render as
   summaries: the merge-exact log-bucket quantiles plus _sum/_count. *)

open Sgl_util

let sanitize (name : string) : string =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let metric_name (name : string) : string = "sgl_" ^ sanitize name

(* Prometheus floats: plain decimal; NaN for undefined. *)
let render_float (v : float) : string =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%.9g" v

type row =
  | Counter of int
  | Gauge of float
  | Summary of Telemetry.histogram_snapshot

(* Group by metric name across registries so each # TYPE header appears
   exactly once, as the exposition format requires. *)
let render (registries : (string * Telemetry.Registry.t) list) : string =
  let rows : (string, (string * row) list ref) Hashtbl.t = Hashtbl.create 64 in
  let order : string list ref = ref [] in
  let push name label row =
    match Hashtbl.find_opt rows name with
    | Some cell -> cell := (label, row) :: !cell
    | None ->
      Hashtbl.add rows name (ref [ (label, row) ]);
      order := name :: !order
  in
  List.iter
    (fun (label, reg) ->
      List.iter (fun (n, v) -> push (metric_name n) label (Counter v)) (Telemetry.Registry.counters reg);
      List.iter (fun (n, v) -> push (metric_name n) label (Gauge v)) (Telemetry.Registry.gauges reg);
      List.iter
        (fun (n, s) -> push (metric_name n) label (Summary s))
        (Telemetry.Registry.histograms reg))
    registries;
  let b = Buffer.create 4096 in
  List.iter
    (fun name ->
      let entries = List.rev !(Hashtbl.find rows name) in
      let ty =
        match entries with
        | (_, Counter _) :: _ -> "counter"
        | (_, Gauge _) :: _ -> "gauge"
        | (_, Summary _) :: _ -> "summary"
        | [] -> "untyped"
      in
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name ty);
      List.iter
        (fun (label, row) ->
          match row with
          | Counter v -> Buffer.add_string b (Printf.sprintf "%s{registry=%S} %d\n" name label v)
          | Gauge v ->
            Buffer.add_string b (Printf.sprintf "%s{registry=%S} %s\n" name label (render_float v))
          | Summary s ->
            List.iter
              (fun (q, v) ->
                Buffer.add_string b
                  (Printf.sprintf "%s{registry=%S,quantile=%S} %s\n" name label q (render_float v)))
              [ ("0.5", s.Telemetry.p50); ("0.9", s.Telemetry.p90); ("0.99", s.Telemetry.p99) ];
            Buffer.add_string b
              (Printf.sprintf "%s_sum{registry=%S} %s\n" name label (render_float s.Telemetry.total));
            Buffer.add_string b
              (Printf.sprintf "%s_count{registry=%S} %d\n" name label s.Telemetry.count))
        entries)
    (List.rev !order);
  Buffer.contents b

let content_type = "text/plain; version=0.0.4"
