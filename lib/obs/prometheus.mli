(** Prometheus text exposition (format 0.0.4) over telemetry
    registries. *)

open Sgl_util

(** ["sgl_" ^ name] with every character outside [[a-zA-Z0-9_:]] mapped
    to ['_']. *)
val metric_name : string -> string

(** [render [(label, registry); ...]] exposes every metric of every
    registry, one [# TYPE] header per metric name, the owning registry
    as a [registry="label"] label.  Counters and gauges map directly;
    histograms render as summaries (quantiles 0.5/0.9/0.99 from
    {!Sgl_util.Stats.percentile}, plus [_sum] and [_count]). *)
val render : (string * Telemetry.Registry.t) list -> string

(** The Content-Type a scrape endpoint should serve. *)
val content_type : string
