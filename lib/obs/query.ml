(* The read-only query port: one SGL aggregate body, compiled through the
   ordinary pipeline and evaluated against a committed tick snapshot.

   The query text is the body of an aggregate declaration — e.g.
   "count(*) where e.health > 0" or "avg(e.posx) where e.player = 0" —
   wrapped into a one-aggregate, one-script program so the existing
   lexer/parser/typechecker/resolver validate it against the live schema.
   Evaluation runs the naive reference evaluator over the snapshot's unit
   array: a committed tick's array is never mutated afterwards (the next
   tick works on copies and swaps), so the server thread can scan it
   without locks while the tick loop runs.

   Isolation argument: the evaluator only reads tuples; the probe context
   carries a constant-zero rand, and queries mentioning random() are
   rejected up front, so a query can neither perturb simulation state nor
   advance any PRNG — obs-on and obs-off runs stay bit-identical. *)

open Sgl_relalg
open Sgl_lang
open Sgl_qopt
open Sgl_util

type snapshot = {
  q_tick : int;
  q_units : Tuple.t array; (* the committed unit array, never mutated *)
}

(* Wrapper names must avoid the "__" prefix (reserved by the
   typechecker); the program is compiled standalone, so they can only
   collide with names inside the query body itself. *)
let wrap (body : string) : string =
  Printf.sprintf
    "aggregate ObsQuery(u) {\n%s\n}\nscript obs_query(u) {\n  let obs_q = ObsQuery(u);\n  skip;\n}\n"
    body

let kind_exprs (k : Aggregate.kind) : Expr.t list =
  match k with
  | Aggregate.Count -> []
  | Sum e | Avg e | Std_dev e | Min_agg e | Max_agg e -> [ e ]
  | Arg_min { objective; result } | Arg_max { objective; result } -> [ objective; result ]
  | Nearest { ex; ey; ux; uy; result } -> [ ex; ey; ux; uy; result ]

let agg_exprs (a : Aggregate.t) : Expr.t list =
  List.concat_map kind_exprs a.Aggregate.kinds
  @ Predicate.conjuncts a.Aggregate.where_
  @ Option.to_list a.Aggregate.default

let correlated (a : Aggregate.t) : bool = List.exists Expr.mentions_u (agg_exprs a)
let draws_random (a : Aggregate.t) : bool = List.exists Expr.mentions_random (agg_exprs a)

let value_json (v : Value.t) : string =
  match v with
  | Value.Int n -> string_of_int n
  | Value.Float f -> Telemetry.json_float f
  | Value.Bool b -> string_of_bool b
  | Value.Vec { Vec2.x; y } ->
    Printf.sprintf "{\"x\": %s, \"y\": %s}" (Telemetry.json_float x) (Telemetry.json_float y)

let run ~(schema : Schema.t) ~(snapshot : snapshot) ?(key : int option) (body : string) :
    (string, string) result =
  match Compile.compile ~schema (wrap body) with
  | exception Compile.Compile_error e -> Error (Compile.error_to_string e)
  | prog -> begin
    match prog.Core_ir.aggregates with
    | [| agg |] ->
      if draws_random agg then Error "random() is not allowed in a read-only query"
      else if Array.length snapshot.q_units = 0 then Error "no committed tick snapshot yet"
      else begin
        let is_correlated = correlated agg in
        let probe =
          if not is_correlated then Ok snapshot.q_units.(0)
          else
            match key with
            | None -> Error "query references u.*: pass &key=<unit key> to pick the probe unit"
            | Some k -> begin
              let slot = Schema.find schema "key" in
              match
                Array.find_opt
                  (fun u -> Value.equal (Tuple.get u slot) (Value.Int k))
                  snapshot.q_units
              with
              | Some u -> Ok u
              | None -> Error (Printf.sprintf "no unit with key %d in the snapshot" k)
            end
        in
        match probe with
        | Error e -> Error e
        | Ok probe -> begin
          let ev = Eval.naive ~schema ~aggregates:[| agg |] in
          ev.Eval.begin_tick snapshot.q_units;
          match
            ev.Eval.eval_agg ~agg_id:0 ~rows:[| probe |] ~rands:[| (fun _ -> 0) |]
          with
          | exception Aggregate.Aggregate_error e -> Error e
          | exception Expr.Eval_error e -> Error e
          | exception Value.Type_error e -> Error e
          | values ->
            Ok
              (Printf.sprintf
                 "{\"tick\": %d, \"units\": %d, \"query\": %s, \"correlated\": %b, \"value\": %s}\n"
                 snapshot.q_tick (Array.length snapshot.q_units) (Telemetry.json_string body)
                 is_correlated (value_json values.(0)))
        end
      end
    | _ -> Error "expected exactly one aggregate expression"
  end
