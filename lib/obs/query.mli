(** The read-only query port: compile one SGL aggregate body via the
    ordinary pipeline and evaluate it against a committed tick
    snapshot. *)

open Sgl_relalg

type snapshot = {
  q_tick : int;
  q_units : Tuple.t array;
      (** a committed tick's unit array — never mutated after commit, so
          safe to scan from another thread *)
}

(** [run ~schema ~snapshot ?key body] wraps [body] (an aggregate body,
    e.g. ["count(*) where e.health > 0"]) in a one-aggregate program,
    compiles it against [schema], and evaluates it with the naive
    reference evaluator over [snapshot].  Correlated queries (mentioning
    [u.*]) need [key] to select the probe unit by its [key] attribute.
    Queries calling [random()] are rejected — the port must not draw
    randomness.  [Ok] is a JSON object string (tick, units, query,
    correlated, value); [Error] is a human-readable reason (compile
    error, missing key, empty snapshot, undefined aggregate). *)
val run :
  schema:Schema.t -> snapshot:snapshot -> ?key:int -> string -> (string, string) result
