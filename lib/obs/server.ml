(* A minimal dependency-free HTTP/1.0 server on a background thread.

   Scope: a diagnostics port, not a web server.  GET only, loopback by
   default, one connection handled at a time (handlers are cheap reads
   over shared state; serializing them keeps every handler free of
   re-entrancy concerns), Connection: close on every response.  The
   accept loop wakes on a select timeout to check the stop flag, so
   [stop] returns within a fraction of a second and joins the thread. *)

type response = { status : int; content_type : string; body : string }

type handler = path:string -> params:(string * string) list -> response

type t = {
  fd : Unix.file_descr;
  port : int;
  stop_flag : bool Atomic.t;
  thread : Thread.t;
}

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Status"

let percent_decode (s : string) : string =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '%' when !i + 2 < n -> begin
      match int_of_string_opt ("0x" ^ String.sub s (!i + 1) 2) with
      | Some code ->
        Buffer.add_char b (Char.chr (code land 0xff));
        i := !i + 2
      | None -> Buffer.add_char b '%'
    end
    | '+' -> Buffer.add_char b ' '
    | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

let parse_target (target : string) : string * (string * string) list =
  match String.index_opt target '?' with
  | None -> (percent_decode target, [])
  | Some q ->
    let path = String.sub target 0 q in
    let query = String.sub target (q + 1) (String.length target - q - 1) in
    let params =
      String.split_on_char '&' query
      |> List.filter_map (fun kv ->
             if kv = "" then None
             else
               match String.index_opt kv '=' with
               | None -> Some (percent_decode kv, "")
               | Some e ->
                 Some
                   ( percent_decode (String.sub kv 0 e),
                     percent_decode (String.sub kv (e + 1) (String.length kv - e - 1)) ))
    in
    (percent_decode path, params)

let write_all (fd : Unix.file_descr) (s : string) : unit =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let respond (fd : Unix.file_descr) (r : response) : unit =
  let head =
    Printf.sprintf
      "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
      r.status (status_text r.status) r.content_type (String.length r.body)
  in
  write_all fd (head ^ r.body)

(* Read until the blank line ending the header block (we ignore request
   bodies: this is a GET-only port), bounded to keep a hostile peer from
   growing the buffer. *)
let read_request (fd : Unix.file_descr) : string option =
  let limit = 16384 in
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 1024 in
  let rec loop () =
    if Buffer.length buf > limit then None
    else begin
      let n = Unix.read fd chunk 0 (Bytes.length chunk) in
      if n = 0 then if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
      else begin
        Buffer.add_subbytes buf chunk 0 n;
        let s = Buffer.contents buf in
        let has_terminator (t : string) : bool =
          let tl = String.length t and sl = String.length s in
          let rec scan i = i + tl <= sl && (String.sub s i tl = t || scan (i + 1)) in
          scan 0
        in
        if has_terminator "\r\n\r\n" || has_terminator "\n\n" then Some s else loop ()
      end
    end
  in
  try loop () with Unix.Unix_error _ -> None

let text_response status body = { status; content_type = "text/plain; charset=utf-8"; body }

let handle_connection (handler : handler) (fd : Unix.file_descr) : unit =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match read_request fd with
      | None -> ()
      | Some request -> begin
        let first_line =
          match String.index_opt request '\n' with
          | None -> request
          | Some i -> String.sub request 0 i
        in
        let response =
          match String.split_on_char ' ' (String.trim first_line) with
          | meth :: _ when meth <> "GET" -> text_response 405 "only GET is supported\n"
          | [ _; target ] | [ _; target; _ ] -> begin
            let path, params = parse_target target in
            match handler ~path ~params with
            | r -> r
            | exception e ->
              text_response 500 (Printf.sprintf "handler error: %s\n" (Printexc.to_string e))
          end
          | _ -> text_response 400 "malformed request line\n"
        in
        try respond fd response with Unix.Unix_error _ -> ()
      end)

let accept_loop (listen_fd : Unix.file_descr) (stop_flag : bool Atomic.t) (handler : handler) :
    unit =
  while not (Atomic.get stop_flag) do
    match Unix.select [ listen_fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> begin
      match Unix.accept listen_fd with
      | fd, _ -> handle_connection handler fd
      | exception Unix.Unix_error _ -> ()
    end
    | exception Unix.Unix_error _ -> ()
  done;
  try Unix.close listen_fd with Unix.Unix_error _ -> ()

let start ?(host = "127.0.0.1") ~(port : int) ~(handler : handler) () : t =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.listen fd 16
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let stop_flag = Atomic.make false in
  let thread = Thread.create (fun () -> accept_loop fd stop_flag handler) () in
  { fd; port; stop_flag; thread }

let port (t : t) : int = t.port

let stop (t : t) : unit =
  if not (Atomic.exchange t.stop_flag true) then Thread.join t.thread
