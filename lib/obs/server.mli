(** A minimal dependency-free HTTP/1.0 server on a background thread —
    the transport under the live observability endpoint.  GET only,
    loopback by default, connections handled serially, every response
    closes the connection. *)

type response = { status : int; content_type : string; body : string }

(** Called on the server thread for every GET.  [params] are the decoded
    query parameters.  An exception becomes a 500. *)
type handler = path:string -> params:(string * string) list -> response

type t

(** [start ~port ~handler ()] binds (port 0 picks an ephemeral port; see
    {!port}), then serves on a background thread.  Raises [Unix_error]
    when the bind fails. *)
val start : ?host:string -> port:int -> handler:handler -> unit -> t

(** The actually bound port. *)
val port : t -> int

(** Stop accepting, close the socket, join the thread.  Idempotent. *)
val stop : t -> unit
