(* Durable full-state snapshots with generations (see checkpoint.mli).

   File layout:

     "SGLCKPT\x01"  u32 version
     sections: META | SCHM | UNIT-or-COLU | QUAR | CNTR | DEGR | END!
     (each: 4-byte tag | u32 len | payload | u32 crc(payload))

   Version 2 (written by this build) stores the unit array columnar: a
   COLU section holding one typed column per schema attribute — bulk
   little-endian blits for int/float/bool columns, boxed values only for
   mixed-tag or vec columns (the same promotion rules as the in-memory
   {!Sgl_relalg.Colstore}, so the encoding stays canonical).  Version 1
   files (row-major UNIT section) load unchanged; both decode to the
   identical unit array, and the journal's [units_digest] is computed
   over materialized rows either way.

   Writes are atomic — encode fully, write a ".tmp" sibling, fsync,
   rename, fsync the directory — so the only artifacts a crash can leave
   are a stale temp file (ignored by readers) or nothing.  Loading
   re-verifies everything: magic, version, per-section CRCs, the END
   terminator (so plain truncation cannot pass), the persisted schema
   against the engine's, and the unit count against the META section. *)

open Sgl_util
open Sgl_relalg

let magic = "SGLCKPT\x01"
let version = 2
let read_versions = [ 1; 2 ]
let inject_point = "io.checkpoint.write"

type state = {
  tick : int;
  seed : int;
  cache_epoch : int;
  units : Tuple.t array;
  quarantined : string list;
  counters : (string * int) list;
  degradations : (int * string * string) list;
}

let path ~dir ~tick = Filename.concat dir (Printf.sprintf "ckpt-%010d.sglc" tick)

(* v2 unit payload: the array decomposed into per-attribute typed columns.
   Deterministic (so still "one state, one byte string"): a column is
   typed exactly when every stored value carries the schema type's
   constructor, boxed otherwise — [Colstore]'s promotion rule. *)
let encode_units_columnar (w : Codec.W.t) ~(schema : Schema.t) (units : Tuple.t array) : unit =
  let store = Colstore.of_tuples schema units in
  if not (Colstore.rectangular store) then
    invalid_arg "Checkpoint.save: units must have schema arity";
  let n = Array.length units in
  Codec.W.u32 w n;
  Codec.W.u16 w (Schema.arity schema);
  for j = 0 to Schema.arity schema - 1 do
    match Colstore.col store j with
    | Colstore.Ints a ->
      Codec.W.u8 w 0;
      let b = Bytes.create (8 * n) in
      for i = 0 to n - 1 do
        Bytes.set_int64_le b (8 * i) (Int64.of_int a.(i))
      done;
      Codec.W.raw w (Bytes.unsafe_to_string b)
    | Colstore.Floats a ->
      Codec.W.u8 w 1;
      let b = Bytes.create (8 * n) in
      for i = 0 to n - 1 do
        Bytes.set_int64_le b (8 * i) (Int64.bits_of_float a.(i))
      done;
      Codec.W.raw w (Bytes.unsafe_to_string b)
    | Colstore.Bools a ->
      Codec.W.u8 w 2;
      Codec.W.raw w (Bytes.sub_string a 0 n)
    | Colstore.Boxed a ->
      Codec.W.u8 w 3;
      for i = 0 to n - 1 do
        Codec.W.value w a.(i)
      done
  done

let decode_units_columnar (u : Codec.R.t) ~(schema : Schema.t) ~(n_units : int) : Tuple.t array =
  let n = Codec.R.u32 u in
  if n <> n_units then Codec.corrupt "unit count mismatch: META says %d, COLU holds %d" n_units n;
  let arity = Codec.R.u16 u in
  if arity <> Schema.arity schema then
    Codec.corrupt "columnar arity mismatch: COLU has %d, schema has %d" arity
      (Schema.arity schema);
  let cols = Array.make arity [||] in
  for j = 0 to arity - 1 do
    cols.(j) <-
      (match Codec.R.u8 u with
      | 0 ->
        let s = Codec.R.raw u (8 * n) in
        Array.init n (fun i -> Value.Int (Int64.to_int (String.get_int64_le s (8 * i))))
      | 1 ->
        let s = Codec.R.raw u (8 * n) in
        Array.init n (fun i -> Value.Float (Int64.float_of_bits (String.get_int64_le s (8 * i))))
      | 2 ->
        let s = Codec.R.raw u n in
        Array.init n (fun i -> Value.Bool (s.[i] <> '\000'))
      | 3 ->
        let a = Array.make n (Value.Int 0) in
        for i = 0 to n - 1 do
          a.(i) <- Codec.R.value u
        done;
        a
      | tag -> Codec.corrupt "unknown column representation %d" tag)
  done;
  Array.init n (fun i -> Array.init arity (fun j -> cols.(j).(i)))

let tick_of_filename (name : string) : int option =
  match Scanf.sscanf_opt name "ckpt-%d.sglc%!" (fun t -> t) with
  | Some t when t >= 0 -> Some t
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Encoding *)

let section (b : Buffer.t) ~(tag : string) (fill : Codec.W.t -> unit) : unit =
  (* one injection hit per section: [count=k] tears the write after k-1
     complete sections, before anything was renamed into place *)
  Fault_inject.hit inject_point;
  let w = Codec.W.create () in
  fill w;
  Codec.write_section b ~tag (Codec.W.contents w)

let encode ~(schema : Schema.t) (st : state) : string =
  let b = Buffer.create (4096 + (64 * Array.length st.units)) in
  Codec.write_header b ~magic ~version;
  section b ~tag:"META" (fun w ->
      Codec.W.int w st.tick;
      Codec.W.int w st.seed;
      Codec.W.int w st.cache_epoch;
      Codec.W.u32 w (Array.length st.units));
  section b ~tag:"SCHM" (fun w -> Codec.W.schema w schema);
  section b ~tag:"COLU" (fun w -> encode_units_columnar w ~schema st.units);
  section b ~tag:"QUAR" (fun w ->
      Codec.W.u16 w (List.length st.quarantined);
      List.iter (Codec.W.str w) st.quarantined);
  section b ~tag:"CNTR" (fun w ->
      Codec.W.u16 w (List.length st.counters);
      List.iter
        (fun (name, v) ->
          Codec.W.str w name;
          Codec.W.int w v)
        st.counters);
  section b ~tag:"DEGR" (fun w ->
      Codec.W.u32 w (List.length st.degradations);
      List.iter
        (fun (tick, from_, to_) ->
          Codec.W.int w tick;
          Codec.W.str w from_;
          Codec.W.str w to_)
        st.degradations);
  Codec.write_section b ~tag:Codec.end_tag "";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Atomic write *)

let fsync_dir (dir : string) : unit =
  (* Make the rename itself durable.  Some filesystems reject fsync on a
     directory fd; that only weakens crash ordering, so ignore it. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let save ~(dir : string) ~(fsync : bool) ~(schema : Schema.t) (st : state) : string =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let body = encode ~schema st in
  let final = path ~dir ~tick:st.tick in
  let tmp = final ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc body;
     flush oc;
     if fsync then Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e);
  (* crash-between-write-and-rename is a real window: model it *)
  Fault_inject.hit inject_point;
  Sys.rename tmp final;
  if fsync then fsync_dir dir;
  final

(* ------------------------------------------------------------------ *)
(* Loading and validation *)

let schema_equal (a : Schema.t) (b : Schema.t) : bool =
  Schema.arity a = Schema.arity b
  && List.for_all2
       (fun (x : Schema.attr) (y : Schema.attr) ->
         String.equal x.Schema.name y.Schema.name
         && x.Schema.ty = y.Schema.ty && x.Schema.tag = y.Schema.tag)
       (Schema.attrs a) (Schema.attrs b)

let find_section (sections : (string * string) list) (tag : string) : Codec.R.t =
  match List.assoc_opt tag sections with
  | Some payload -> Codec.R.of_string payload
  | None -> Codec.corrupt "missing %S section" tag

let load ~(schema : Schema.t) (p : string) : state =
  Fault_inject.hit "io.restore.read";
  let body =
    let ic = open_in_bin p in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let r = Codec.R.of_string body in
  let file_version = Codec.read_header_any r ~magic ~versions:read_versions in
  let sections = Codec.read_sections r in
  let meta = find_section sections "META" in
  let tick = Codec.R.int meta in
  let seed = Codec.R.int meta in
  let cache_epoch = Codec.R.int meta in
  let n_units = Codec.R.u32 meta in
  let persisted_schema = Codec.R.schema (find_section sections "SCHM") in
  if not (schema_equal persisted_schema schema) then
    Codec.corrupt "schema mismatch: checkpoint has %a, engine expects %a" Schema.pp
      persisted_schema Schema.pp schema;
  let units =
    if file_version = 1 then begin
      let u = find_section sections "UNIT" in
      let n = Codec.R.u32 u in
      if n <> n_units then
        Codec.corrupt "unit count mismatch: META says %d, UNIT holds %d" n_units n;
      Array.init n (fun _ -> Codec.R.tuple u)
    end
    else decode_units_columnar (find_section sections "COLU") ~schema ~n_units
  in
  Array.iteri
    (fun i t ->
      if Tuple.arity t <> Schema.arity schema then
        Codec.corrupt "unit %d has arity %d, schema has %d" i (Tuple.arity t)
          (Schema.arity schema))
    units;
  let quarantined =
    let q = find_section sections "QUAR" in
    List.init (Codec.R.u16 q) (fun _ -> Codec.R.str q)
  in
  let counters =
    let c = find_section sections "CNTR" in
    List.init (Codec.R.u16 c) (fun _ ->
        let name = Codec.R.str c in
        let v = Codec.R.int c in
        (name, v))
  in
  let degradations =
    let d = find_section sections "DEGR" in
    List.init (Codec.R.u32 d) (fun _ ->
        let tick = Codec.R.int d in
        let from_ = Codec.R.str d in
        let to_ = Codec.R.str d in
        (tick, from_, to_))
  in
  { tick; seed; cache_epoch; units; quarantined; counters; degradations }

(* ------------------------------------------------------------------ *)
(* Generations *)

let generations ~(dir : string) : int list =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map tick_of_filename
    |> List.sort (fun a b -> compare b a)

let load_latest ~(schema : Schema.t) ~(dir : string) : (state * int, string) result =
  let rec go skipped errors = function
    | [] ->
      let tried =
        match errors with
        | [] -> Printf.sprintf "no checkpoint found in %s" dir
        | es ->
          Printf.sprintf "no loadable checkpoint in %s: %s" dir
            (String.concat "; " (List.rev es))
      in
      Error tried
    | tick :: rest -> begin
      let p = path ~dir ~tick in
      match load ~schema p with
      | st -> Ok (st, skipped)
      | exception Codec.Corrupt msg ->
        go (skipped + 1) (Printf.sprintf "%s: %s" (Filename.basename p) msg :: errors) rest
      | exception Sys_error msg -> go (skipped + 1) (msg :: errors) rest
      | exception Fault_inject.Injected _ ->
        (* an injected read fault stands in for an unreadable disk block *)
        go (skipped + 1)
          (Printf.sprintf "%s: injected read fault" (Filename.basename p) :: errors)
          rest
    end
  in
  go 0 [] (generations ~dir)

let prune ~(dir : string) ~(keep : int) : unit =
  let gens = generations ~dir in
  if List.length gens > keep then begin
    let kept = List.filteri (fun i _ -> i < keep) gens in
    let oldest_kept = List.fold_left min max_int kept in
    List.iteri
      (fun i tick -> if i >= keep then try Sys.remove (path ~dir ~tick) with Sys_error _ -> ())
      gens;
    (* journals older than the oldest surviving generation can no longer
       seed a replay chain *)
    Array.iter
      (fun name ->
        match Journal.base_of_filename name with
        | Some base when base < oldest_kept -> begin
          try Sys.remove (Filename.concat dir name) with Sys_error _ -> ()
        end
        | _ -> ())
      (Sys.readdir dir)
  end
