(** Durable full-state snapshots with generations.

    A checkpoint is one self-contained file: a versioned header and
    CRC-framed sections ({!Codec}) holding everything the engine needs to
    resume a simulation bit-identically — tick counter, PRNG root seed
    (the counter-mode generator's whole position: every draw is a pure
    function of (seed, tick, key, i)), the environment relation, the
    quarantine set, the deterministic engine counters, and the schema the
    units were encoded under.

    Files are written atomically: encode, write to a [".tmp"] sibling,
    fsync, rename into place, fsync the directory.  A crash mid-write can
    therefore never damage an existing generation; it only leaves a stale
    temp file that readers ignore.  Several generations coexist in one
    directory ([ckpt-<tick>.sglc]); {!load_latest} walks them newest
    first, skipping any that fail validation, so one corrupt file costs a
    generation, not the simulation. *)

open Sgl_relalg

type state = {
  tick : int;  (** ticks committed when the snapshot was taken *)
  seed : int;  (** the PRNG root seed (its full position, being counter-mode) *)
  cache_epoch : int;
      (** index-cache generation at snapshot time; restore reopens the
          cache cold, so this is recorded for diagnostics only *)
  units : Tuple.t array;  (** the environment relation, in array order *)
  quarantined : string list;  (** script groups excluded by fault policies *)
  counters : (string * int) list;
      (** deterministic engine counters (deaths, resurrections, ...) *)
  degradations : (int * string * string) list;  (** (tick, from, to) demotions *)
}

(** [path ~dir ~tick] is the generation file name for [tick]. *)
val path : dir:string -> tick:int -> string

(** [save ~dir ~fsync ~schema state] atomically writes the generation for
    [state.tick] and returns its path.  Hits the ["io.checkpoint.write"]
    injection point once per section.  Raises [Sys_error]/[Unix_error] on
    real I/O failure. *)
val save : dir:string -> fsync:bool -> schema:Schema.t -> state -> string

(** [load ~schema path] reads and fully validates one generation: header
    magic and version, every section CRC, and that the persisted schema
    equals [schema].  Raises {!Codec.Corrupt}.  Hits ["io.restore.read"]. *)
val load : schema:Schema.t -> string -> state

(** Generation ticks present in [dir], newest first (temp files
    ignored). *)
val generations : dir:string -> int list

(** [load_latest ~schema ~dir] tries generations newest first and returns
    the first that validates, together with the number of newer
    generations skipped as corrupt or unreadable.  [Error] when the
    directory holds no loadable checkpoint (the message lists what was
    tried). *)
val load_latest : schema:Schema.t -> dir:string -> (state * int, string) result

(** [prune ~dir ~keep] deletes all but the newest [keep] generations and
    any journal files older than the oldest survivor. *)
val prune : dir:string -> keep:int -> unit
