(* The binary codec under durable simulation state.

   Everything is fixed-width little-endian: ints as 64-bit two's
   complement, floats as their IEEE-754 bit pattern, strings with a u32
   length prefix.  The encoding is canonical — one state, one byte string
   — which is what lets a CRC-32 of the encoded unit array stand in for
   the state itself in the journal and in the recovery differentials.

   Decoding is defensive throughout: every read is bounds-checked and
   every declared length is validated against the remaining input before
   it is trusted, so a torn or bit-flipped file surfaces as [Corrupt]
   rather than as an out-of-bounds access or an absurd allocation. *)

open Sgl_util
open Sgl_relalg

exception Corrupt of string

let corrupt fmt = Fmt.kstr (fun s -> raise (Corrupt s)) fmt

(* ------------------------------------------------------------------ *)
(* Writer: a thin layer over Buffer with the canonical encodings. *)

module W = struct
  type t = Buffer.t

  let create ?(size = 1024) () : t = Buffer.create size
  let length = Buffer.length
  let u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

  let u16 b v =
    if v < 0 || v > 0xFFFF then corrupt "u16 out of range: %d" v;
    Buffer.add_uint16_le b v

  let u32 b v =
    if v < 0 || v > 0xFFFFFFFF then corrupt "u32 out of range: %d" v;
    Buffer.add_int32_le b (Int32.of_int v)

  let i64 b v = Buffer.add_int64_le b v
  let int b v = i64 b (Int64.of_int v)
  let float b v = i64 b (Int64.bits_of_float v)

  let str b s =
    u32 b (String.length s);
    Buffer.add_string b s

  let raw b s = Buffer.add_string b s

  let bool b v = u8 b (if v then 1 else 0)

  let value b (v : Value.t) =
    match v with
    | Value.Int i ->
      u8 b 0;
      int b i
    | Value.Float f ->
      u8 b 1;
      float b f
    | Value.Bool x ->
      u8 b 2;
      bool b x
    | Value.Vec { Vec2.x; y } ->
      u8 b 3;
      float b x;
      float b y

  let tuple b (t : Tuple.t) =
    u16 b (Tuple.arity t);
    Array.iter (value b) t

  let ty_code = function
    | Value.TInt -> 0
    | Value.TFloat -> 1
    | Value.TBool -> 2
    | Value.TVec -> 3

  let tag_code = function
    | Schema.Const -> 0
    | Schema.Sum -> 1
    | Schema.Max -> 2
    | Schema.Min -> 3
    | Schema.Pmax -> 4

  let schema b (s : Schema.t) =
    u16 b (Schema.arity s);
    List.iter
      (fun (a : Schema.attr) ->
        str b a.Schema.name;
        u8 b (ty_code a.Schema.ty);
        u8 b (tag_code a.Schema.tag))
      (Schema.attrs s)

  let contents = Buffer.contents
end

(* ------------------------------------------------------------------ *)
(* Reader: a cursor over an immutable string. *)

module R = struct
  type t = { s : string; mutable pos : int }

  let of_string s = { s; pos = 0 }
  let remaining r = String.length r.s - r.pos

  let need r n what =
    if n < 0 || remaining r < n then
      corrupt "truncated input: %s needs %d bytes, %d remain" what n (remaining r)

  let u8 r =
    need r 1 "u8";
    let v = Char.code r.s.[r.pos] in
    r.pos <- r.pos + 1;
    v

  let u16 r =
    need r 2 "u16";
    let v = String.get_uint16_le r.s r.pos in
    r.pos <- r.pos + 2;
    v

  let u32 r =
    need r 4 "u32";
    let v = Int32.to_int (String.get_int32_le r.s r.pos) land 0xFFFFFFFF in
    r.pos <- r.pos + 4;
    v

  let i64 r =
    need r 8 "i64";
    let v = String.get_int64_le r.s r.pos in
    r.pos <- r.pos + 8;
    v

  let int r =
    let v = i64 r in
    (* OCaml ints are 63-bit: a persisted value outside the native range
       cannot round-trip, so reject it rather than silently wrap. *)
    if Int64.of_int (Int64.to_int v) <> v then corrupt "int out of native range: %Ld" v;
    Int64.to_int v

  let float r = Int64.float_of_bits (i64 r)

  let raw r n =
    need r n "raw bytes";
    let v = String.sub r.s r.pos n in
    r.pos <- r.pos + n;
    v

  let str r = raw r (u32 r)

  let bool r =
    match u8 r with
    | 0 -> false
    | 1 -> true
    | v -> corrupt "invalid bool byte %d" v

  let value r : Value.t =
    match u8 r with
    | 0 -> Value.Int (int r)
    | 1 -> Value.Float (float r)
    | 2 -> Value.Bool (bool r)
    | 3 ->
      let x = float r in
      let y = float r in
      Value.Vec (Vec2.make x y)
    | tag -> corrupt "unknown value tag %d" tag

  let tuple r : Tuple.t =
    let n = u16 r in
    need r n "tuple values" (* each value is at least a tag byte *);
    Array.init n (fun _ -> value r)

  let ty_of_code = function
    | 0 -> Value.TInt
    | 1 -> Value.TFloat
    | 2 -> Value.TBool
    | 3 -> Value.TVec
    | c -> corrupt "unknown type code %d" c

  let tag_of_code = function
    | 0 -> Schema.Const
    | 1 -> Schema.Sum
    | 2 -> Schema.Max
    | 3 -> Schema.Min
    | 4 -> Schema.Pmax
    | c -> corrupt "unknown combination-tag code %d" c

  let schema r : Schema.t =
    let n = u16 r in
    let attrs =
      List.init n (fun _ ->
          let name = str r in
          let ty = ty_of_code (u8 r) in
          let tag = tag_of_code (u8 r) in
          Schema.attr ~tag name ty)
    in
    try Schema.create attrs
    with Schema.Schema_error msg -> corrupt "persisted schema invalid: %s" msg
end

(* ------------------------------------------------------------------ *)
(* Section framing *)

let end_tag = "END!"

let write_header b ~(magic : string) ~(version : int) : unit =
  if String.length magic <> 8 then invalid_arg "Codec.write_header: magic must be 8 bytes";
  Buffer.add_string b magic;
  Buffer.add_int32_le b (Int32.of_int version)

let write_section b ~(tag : string) (payload : string) : unit =
  if String.length tag <> 4 then invalid_arg "Codec.write_section: tag must be 4 bytes";
  Buffer.add_string b tag;
  Buffer.add_int32_le b (Int32.of_int (String.length payload));
  Buffer.add_string b payload;
  Buffer.add_int32_le b (Int32.of_int (Crc32.string payload))

let read_header_any (r : R.t) ~(magic : string) ~(versions : int list) : int =
  R.need r 8 "magic";
  let got = String.sub r.R.s r.R.pos 8 in
  if not (String.equal got magic) then corrupt "bad magic %S (want %S)" got magic;
  r.R.pos <- r.R.pos + 8;
  let v = R.u32 r in
  if not (List.mem v versions) then
    corrupt "unsupported version %d (this build reads versions %s)" v
      (String.concat ", " (List.map string_of_int versions));
  v

let read_header (r : R.t) ~(magic : string) ~(version : int) : unit =
  ignore (read_header_any r ~magic ~versions:[ version ])

let read_sections (r : R.t) : (string * string) list =
  let rec go acc =
    R.need r 4 "section tag";
    let tag = String.sub r.R.s r.R.pos 4 in
    r.R.pos <- r.R.pos + 4;
    let len = R.u32 r in
    R.need r len (Printf.sprintf "section %S payload" tag);
    let payload = String.sub r.R.s r.R.pos len in
    r.R.pos <- r.R.pos + len;
    let stored = R.u32 r in
    let actual = Crc32.string payload in
    if stored <> actual then
      corrupt "section %S checksum mismatch: stored %s, computed %s" tag (Crc32.to_hex stored)
        (Crc32.to_hex actual);
    if String.equal tag end_tag then begin
      if R.remaining r <> 0 then corrupt "%d trailing bytes after terminator" (R.remaining r);
      List.rev acc
    end
    else go ((tag, payload) :: acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* State fingerprints *)

(* The digest is the CRC-32 of a canonical *column-major* encoding:

     u32 count | u16 arity | column 0 values | column 1 values | ...

   where a column's bytes are the [W.value] encodings of that attribute
   down the array.  Column-major order is what makes the digest
   incrementally maintainable: the CRC of each column is cached with its
   byte length, and a committed tick that dirtied only a few columns
   (per the {!Sgl_relalg.Delta} summary — the same contract the columnar
   mirror's copy-on-write refresh trusts) recombines cached clean-column
   CRCs with recomputed dirty ones via {!Sgl_util.Crc32.combine} in
   O(dirty data + log clean data) instead of re-encoding the world. *)

type digest_cache = {
  dc_units : int; (* row count the cached columns describe *)
  dc_cols : (int * int) array; (* per column: CRC-32, encoded byte length *)
}

let column_digest (units : Tuple.t array) (j : int) : int * int =
  let b = W.create ~size:(16 * (1 + Array.length units)) () in
  Array.iter (fun (u : Tuple.t) -> W.value b u.(j)) units;
  let s = W.contents b in
  (Crc32.string s, String.length s)

let digest_of_cache (c : digest_cache) : int =
  let hdr = W.create ~size:8 () in
  W.u32 hdr c.dc_units;
  W.u16 hdr (Array.length c.dc_cols);
  Array.fold_left
    (fun acc (crc, len) -> Crc32.combine acc crc ~len_b:len)
    (Crc32.string (W.contents hdr))
    c.dc_cols

let units_digest_cache (units : Tuple.t array) : digest_cache =
  let arity = if Array.length units = 0 then 0 else Tuple.arity units.(0) in
  { dc_units = Array.length units; dc_cols = Array.init arity (column_digest units) }

let units_digest (units : Tuple.t array) : int = digest_of_cache (units_digest_cache units)

let units_digest_incremental (prev : digest_cache) ~(dirty : int list)
    (units : Tuple.t array) : digest_cache =
  let arity = if Array.length units = 0 then 0 else Tuple.arity units.(0) in
  if Array.length units <> prev.dc_units || arity <> Array.length prev.dc_cols then
    (* shape changed under a non-structural claim: recompute rather than
       trust a summary that cannot be right *)
    units_digest_cache units
  else begin
    let cols = Array.copy prev.dc_cols in
    List.iter (fun j -> if j >= 0 && j < arity then cols.(j) <- column_digest units j) dirty;
    { prev with dc_cols = cols }
  end
