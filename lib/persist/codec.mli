(** The binary codec under durable simulation state.

    Fixed-width little-endian encodings wrapped in CRC-framed sections:
    every number is a canonical byte string (ints as 64-bit two's
    complement, floats as IEEE-754 bit patterns), so the encoding of a
    unit array is itself a canonical fingerprint of simulation state —
    {!units_digest} is the integrity check both the journal and the
    differential tests compare.

    Readers never trust the input: every length is bounds-checked against
    the remaining bytes and every section payload is verified against its
    stored CRC-32 before it is decoded.  Any violation raises {!Corrupt}
    with a description of the first inconsistency found. *)

open Sgl_relalg

exception Corrupt of string

val corrupt : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** {1 Writer} *)

module W : sig
  type t

  val create : ?size:int -> unit -> t
  val length : t -> int
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val i64 : t -> int64 -> unit

  (** OCaml int as 64-bit two's complement. *)
  val int : t -> int -> unit

  val float : t -> float -> unit

  (** u32 length prefix + bytes. *)
  val str : t -> string -> unit

  (** Bytes as-is, no length prefix — bulk column blits; pair with
      {!R.raw} and an out-of-band length. *)
  val raw : t -> string -> unit

  val bool : t -> bool -> unit
  val value : t -> Value.t -> unit
  val tuple : t -> Tuple.t -> unit
  val schema : t -> Schema.t -> unit
  val contents : t -> string
end

(** {1 Reader} *)

module R : sig
  type t

  val of_string : string -> t

  (** Bytes not yet consumed. *)
  val remaining : t -> int

  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val i64 : t -> int64
  val int : t -> int
  val float : t -> float
  val str : t -> string

  (** [raw r n] consumes exactly [n] bytes. *)
  val raw : t -> int -> string

  val bool : t -> bool
  val value : t -> Value.t
  val tuple : t -> Tuple.t

  (** Decodes and re-validates the schema invariants (via
      {!Sgl_relalg.Schema.create}); a schema the engine would reject
      reads as corrupt. *)
  val schema : t -> Schema.t
end

(** {1 Section framing}

    A persisted file is a header ([magic] bytes + u32 version) followed by
    sections: a 4-byte tag, a u32 payload length, the payload, and the
    payload's CRC-32.  A well-formed file ends with an empty ["END!"]
    section, so plain truncation is always detectable. *)

val end_tag : string

(** [write_header b ~magic ~version] starts a file; [magic] must be 8
    bytes. *)
val write_header : Buffer.t -> magic:string -> version:int -> unit

(** [write_section b ~tag payload] frames one section; [tag] must be 4
    bytes. *)
val write_section : Buffer.t -> tag:string -> string -> unit

(** [read_header_any r ~magic ~versions] checks the magic, requires the
    version to be one of [versions], and returns it. *)
val read_header_any : R.t -> magic:string -> versions:int list -> int

(** [read_header r ~magic ~version] checks the magic and returns the file
    version after raising {!Corrupt} unless it equals [version]. *)
val read_header : R.t -> magic:string -> version:int -> unit

(** [read_sections r] consumes CRC-verified [(tag, payload)] sections up
    to and excluding the ["END!"] terminator.  Raises {!Corrupt} on a
    truncated file, a bad CRC, or trailing garbage after the
    terminator. *)
val read_sections : R.t -> (string * string) list

(** {1 State fingerprints} *)

(** CRC-32 of the canonical column-major encoding of the unit array —
    bit-identical across evaluators and runs by the engine's determinism
    guarantee.  Column-major so per-column CRCs can be cached and the
    digest of a lightly-changed array re-assembled from them (see
    {!units_digest_incremental}); the full and incremental paths always
    agree. *)
val units_digest : Tuple.t array -> int

(** Per-column CRCs (with encoded byte lengths) behind one digest. *)
type digest_cache

(** Full computation, retaining the per-column CRCs for later
    incremental updates. *)
val units_digest_cache : Tuple.t array -> digest_cache

(** The digest value a cache denotes — equal to [units_digest] of the
    array it was computed from. *)
val digest_of_cache : digest_cache -> int

(** [units_digest_incremental prev ~dirty units] re-derives the cache for
    [units] given [prev] (valid for an array of the same shape) by
    recomputing only the columns listed in [dirty] — sound exactly when
    every column that changed since [prev] is listed (the
    {!Sgl_relalg.Delta} dirty-attribute contract).  Falls back to a full
    recomputation when the row count or arity differs from [prev]. *)
val units_digest_incremental : digest_cache -> dirty:int list -> Tuple.t array -> digest_cache
