(* The per-tick commit journal (see journal.mli for the design).

   File layout:

     "SGLJRNL\x01"  u32 version  u64 base_tick  u32 crc(base_tick bytes)
     record*        where record = u32 len | payload | u32 crc(payload)

   Appends go through a buffered channel followed by flush (+ fsync when
   armed): a record is either wholly on disk or recognizably torn, and
   fsync ordering means record N is durable before N+1 exists. *)

open Sgl_util

let magic = "SGLJRNL\x01"

(* Version 2: [j_digest] is the column-major [Codec.units_digest].
   Version 1 files carry row-major digests that would spuriously diverge
   under replay verification, so they are refused outright. *)
let version = 2

type entry = {
  j_tick : int;
  j_units : int;
  j_digest : int;
  j_deaths : int;
  j_resurrections : int;
  j_structural : bool;
  j_dirty_attrs : int list;
  j_dirty_keys : int;
}

let path ~dir ~base = Filename.concat dir (Printf.sprintf "jrnl-%010d.sglj" base)

let base_of_filename (name : string) : int option =
  match Scanf.sscanf_opt name "jrnl-%d.sglj%!" (fun t -> t) with
  | Some t when t >= 0 -> Some t
  | _ -> None

type writer = {
  oc : out_channel;
  fsync : bool;
  mutable bytes : int;
  mutable closed : bool;
}

let header_string ~(base : int) : string =
  let payload = Codec.W.create ~size:8 () in
  Codec.W.int payload base;
  let p = Codec.W.contents payload in
  let b = Buffer.create 32 in
  Buffer.add_string b magic;
  Buffer.add_int32_le b (Int32.of_int version);
  Buffer.add_string b p;
  Buffer.add_int32_le b (Int32.of_int (Crc32.string p));
  Buffer.contents b

let create ~(dir : string) ~(base : int) ~(fsync : bool) : writer =
  let oc = open_out_bin (path ~dir ~base) in
  let w = { oc; fsync; bytes = 0; closed = false } in
  output_string oc (header_string ~base);
  flush oc;
  if fsync then Unix.fsync (Unix.descr_of_out_channel oc);
  w

let encode_entry (e : entry) : string =
  let b = Codec.W.create ~size:64 () in
  Codec.W.int b e.j_tick;
  Codec.W.u32 b e.j_units;
  Codec.W.u32 b e.j_digest;
  Codec.W.int b e.j_deaths;
  Codec.W.int b e.j_resurrections;
  Codec.W.bool b e.j_structural;
  Codec.W.u16 b (List.length e.j_dirty_attrs);
  List.iter (Codec.W.u16 b) e.j_dirty_attrs;
  Codec.W.u32 b e.j_dirty_keys;
  Codec.W.contents b

let decode_entry (payload : string) : entry =
  let r = Codec.R.of_string payload in
  let j_tick = Codec.R.int r in
  let j_units = Codec.R.u32 r in
  let j_digest = Codec.R.u32 r in
  let j_deaths = Codec.R.int r in
  let j_resurrections = Codec.R.int r in
  let j_structural = Codec.R.bool r in
  let n = Codec.R.u16 r in
  let j_dirty_attrs = List.init n (fun _ -> Codec.R.u16 r) in
  let j_dirty_keys = Codec.R.u32 r in
  { j_tick; j_units; j_digest; j_deaths; j_resurrections; j_structural; j_dirty_attrs;
    j_dirty_keys }

let append (w : writer) (e : entry) : unit =
  Fault_inject.hit "io.journal.append";
  if w.closed then raise (Sys_error "journal: append after close");
  let payload = encode_entry e in
  let b = Buffer.create (String.length payload + 8) in
  Buffer.add_int32_le b (Int32.of_int (String.length payload));
  Buffer.add_string b payload;
  Buffer.add_int32_le b (Int32.of_int (Crc32.string payload));
  output_string w.oc (Buffer.contents b);
  flush w.oc;
  if w.fsync then Unix.fsync (Unix.descr_of_out_channel w.oc);
  w.bytes <- w.bytes + String.length payload

let bytes_written (w : writer) = w.bytes

let close (w : writer) : unit =
  if not w.closed then begin
    w.closed <- true;
    close_out w.oc
  end

(* ------------------------------------------------------------------ *)
(* Reading *)

let read_file (p : string) : string option =
  if not (Sys.file_exists p) then None
  else begin
    Fault_inject.hit "io.restore.read";
    let ic = open_in_bin p in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  end

let read ~(dir : string) ~(base : int) : entry list * bool =
  match read_file (path ~dir ~base) with
  | None -> ([], false)
  | Some s ->
    let r = Codec.R.of_string s in
    Codec.read_header r ~magic ~version;
    let hdr_len = Codec.R.remaining r in
    if hdr_len < 12 then Codec.corrupt "journal header truncated";
    let stored_base = Codec.R.int r in
    let crc = Codec.R.u32 r in
    let expect =
      let b = Codec.W.create ~size:8 () in
      Codec.W.int b stored_base;
      Crc32.string (Codec.W.contents b)
    in
    if crc <> expect then Codec.corrupt "journal header checksum mismatch";
    if stored_base <> base then
      Codec.corrupt "journal base tick %d does not match file name (%d)" stored_base base;
    (* Records: a short or checksum-failing tail is a tear, not an error —
       it is what a crash mid-append is supposed to leave behind. *)
    let acc = ref [] in
    let torn = ref false in
    (try
       while Codec.R.remaining r > 0 do
         let len = Codec.R.u32 r in
         let payload =
           if Codec.R.remaining r < len + 4 then Codec.corrupt "torn record"
           else Codec.R.raw r len
         in
         let crc = Codec.R.u32 r in
         if crc <> Crc32.string payload then Codec.corrupt "record checksum mismatch";
         acc := decode_entry payload :: !acc
       done
     with Codec.Corrupt _ -> torn := true);
    (List.rev !acc, !torn)
