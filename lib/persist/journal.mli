(** The per-tick commit journal.

    One journal file accompanies each checkpoint generation
    ([jrnl-<base>.sglj], where [base] is the generation's tick): after a
    tick commits, one CRC-framed record is appended and the file is
    flushed (and fsynced unless the writer was opened with
    [~fsync:false]).  Recovery is replay-by-re-execution: the engine is
    deterministic from a snapshot, so a record does not carry effects —
    it carries the committed tick's *fingerprint* (canonical-encoding
    digest, population, engine counters) plus the tick's delta summary,
    and the restore path re-runs the tick and verifies it reproduced the
    journaled state bit-for-bit.

    A crash mid-append leaves a torn final record; {!read} returns the
    valid prefix and flags the tear instead of failing, because a torn
    tail is the *expected* shape of a journal after a crash. *)

type entry = {
  j_tick : int;  (** the tick this record commits (post-tick counter) *)
  j_units : int;  (** population after the tick *)
  j_digest : int;  (** {!Codec.units_digest} of the post-tick unit array *)
  j_deaths : int;  (** cumulative deterministic counters, for verification *)
  j_resurrections : int;
  j_structural : bool;  (** the tick's delta summary, when one was recorded *)
  j_dirty_attrs : int list;
  j_dirty_keys : int;
}

val path : dir:string -> base:int -> string

(** Parse a journal file name back to its base tick. *)
val base_of_filename : string -> int option

type writer

(** [create ~dir ~base ~fsync] opens (truncating) the journal for the
    generation at [base] and writes its header. *)
val create : dir:string -> base:int -> fsync:bool -> writer

(** Appends one record, flushes, and fsyncs when armed.  Hits the
    ["io.journal.append"] injection point first.  Raises
    [Sys_error] on I/O failure. *)
val append : writer -> entry -> unit

(** Payload bytes appended so far (excluding header and framing). *)
val bytes_written : writer -> int

(** Idempotent. *)
val close : writer -> unit

(** [read ~dir ~base] returns the valid record prefix of the generation's
    journal and whether a torn tail was discarded.  A missing file reads
    as [([], false)]; a file whose *header* is corrupt raises
    {!Codec.Corrupt} (unlike a torn tail, a bad header means the journal
    cannot be trusted at all).  Hits ["io.restore.read"] once per file
    opened. *)
val read : dir:string -> base:int -> entry list * bool
