(* Index planning for aggregate queries (Section 5.3).

   [analyze] inspects one closed aggregate instance and decides how the
   indexed evaluator may execute it:

   - [Uniform]     — nothing depends on the probing unit: evaluate once per
                     batch and share (the degenerate "centralized AI" case,
                     e.g. the knights' global position stddev);
   - [Divisible]   — count/sum/avg/stddev over an orthogonal range: prefix-
                     aggregate range tree (Figure 8), O(log n) per probe;
   - [Extremal]    — min/max/argmin/argmax: sweep-line when the range size
                     is constant (Figure 9), else enumerate the box;
   - [Nearest_nn]  — nearest-neighbour: kD-tree under the categorical
                     levels (Section 5.3.2);
   - [Naive_only]  — anything the indexes cannot serve exactly (e.g. a
                     Random(...) in the selection).

   Conjuncts split into hash-table partition levels (categorical =/<>),
   range-tree dimensions (bounds of the form  e.A op f(u)), a data filter
   (e-only residuals, applied before the index is built) and a per-probe
   residual (everything else, forcing the enumeration path). *)

open Sgl_relalg

(* One range-tree dimension: bounds are expressions over the probing unit. *)
type box_dim = {
  attr : int;
  lo : Predicate.bound option;
  hi : Predicate.bound option;
}

type access = {
  cat_eqs : (int * Expr.t) list; (* data.attr must equal expr(u) *)
  cat_nes : (int * Expr.t) list; (* data.attr must differ from expr(u) *)
  boxes : box_dim list; (* sorted by attr *)
  data_filter : Predicate.t; (* e-only residuals: pre-filter the data *)
  probe_residual : Predicate.t; (* residuals mentioning u: filter per probe *)
}

(* Constant-size symmetric window, the sweep-line precondition: both box
   dimensions have bounds u.attr -/+ r with the same constant r. *)
type sweep_info = {
  x_center : int; (* u attribute giving the probe x *)
  y_center : int;
  x_data : int; (* data attribute swept on x *)
  y_data : int;
  rx : float;
  ry : float;
}

type component =
  | C_divisible of { kind : Aggregate.kind; stat_offset : int; stat_count : int }
  | C_extremal of { kind : Aggregate.kind }
  | C_nearest of { kind : Aggregate.kind }

type strategy =
  | Uniform
  | Indexed of {
      access : access;
      components : component list;
      stats_exprs : Expr.t list; (* concatenated divisible statistics *)
      sweep : sweep_info option; (* for extremal components *)
      enumerate : bool; (* probe residual present: walk the box *)
    }
  | Naive_only of string (* reason, for diagnostics *)

(* ------------------------------------------------------------------ *)
(* Conjunct canonicalization: move constant offsets across the comparison
   so a bare [EAttr a] lands on the left.  Handles the linear shapes games
   write: e.A op f(u), f(u) op e.A, e.A +/- k op f(u), f(u) op e.A +/- k. *)

let rec peel_eattr (t : Expr.t) : (int * (Expr.t -> Expr.t)) option =
  (* Returns the data attribute and a function rebuilding "the rest moved to
     the other side": peel (EAttr a + k) = Some (a, fun rhs -> rhs - k). *)
  match t with
  | Expr.EAttr a -> Some (a, fun rhs -> rhs)
  | Expr.Binop (Expr.Add, lhs, k) when not (Expr.mentions_e k) ->
    Option.map
      (fun (a, rebuild) -> (a, fun rhs -> rebuild (Expr.Binop (Expr.Sub, rhs, k))))
      (peel_eattr lhs)
  | Expr.Binop (Expr.Sub, lhs, k) when not (Expr.mentions_e k) ->
    Option.map
      (fun (a, rebuild) -> (a, fun rhs -> rebuild (Expr.Binop (Expr.Add, rhs, k))))
      (peel_eattr lhs)
  | _ -> None

let canonicalize_conjunct (c : Expr.t) : Expr.t =
  match c with
  | Expr.Cmp (op, lhs, rhs) -> begin
    let oriented =
      if Expr.mentions_e lhs && not (Expr.mentions_e rhs) then Some (op, lhs, rhs)
      else if Expr.mentions_e rhs && not (Expr.mentions_e lhs) then
        Some (Predicate.flip_cmp op, rhs, lhs)
      else None
    in
    match oriented with
    | None -> c
    | Some (op, e_side, u_side) -> begin
      match peel_eattr e_side with
      | Some (a, rebuild) -> Expr.Cmp (op, Expr.EAttr a, rebuild u_side)
      | None -> c
    end
  end
  | _ -> c

(* ------------------------------------------------------------------ *)
(* Access-path classification *)

let classify_access (schema : Schema.t) (where_ : Predicate.t) : access =
  let canon = List.map canonicalize_conjunct (Predicate.conjuncts where_) in
  let cls = Predicate.classify (Predicate.of_conjuncts canon) in
  (* Only int attributes can be hash levels; others become residuals. *)
  let is_int a = Schema.ty_at schema a = Value.TInt in
  let ok_rhs rhs = not (Expr.mentions_e rhs) in
  let cat_eqs, eq_residuals =
    List.partition (fun (a, rhs) -> is_int a && ok_rhs rhs) cls.Predicate.cat_eqs
  in
  let cat_nes, ne_residuals =
    List.partition (fun (a, rhs) -> is_int a && ok_rhs rhs) cls.Predicate.cat_nes
  in
  let bound_ok (_, (b : Predicate.bound)) = not (Expr.mentions_e b.Predicate.value) in
  let lowers, lo_residuals = List.partition bound_ok cls.Predicate.lowers in
  let uppers, hi_residuals = List.partition bound_ok cls.Predicate.uppers in
  let box_attrs =
    List.sort_uniq compare (List.map fst lowers @ List.map fst uppers)
  in
  (* Multiple bounds on one side of the same attribute: keep the first as
     the tree bound, demote the rest to residuals (rare in practice). *)
  let pick side attr = List.filter (fun (a, _) -> a = attr) side in
  let boxes, extra_residuals =
    List.fold_left
      (fun (boxes, extras) attr ->
        let lo_all = pick lowers attr and hi_all = pick uppers attr in
        let take = function
          | [] -> (None, [])
          | (_, b) :: rest -> (Some b, rest)
        in
        let lo, lo_rest = take lo_all in
        let hi, hi_rest = take hi_all in
        let demote op (a, (b : Predicate.bound)) =
          Expr.Cmp (op b.Predicate.inclusive, Expr.EAttr a, b.Predicate.value)
        in
        let extras' =
          List.map (demote (fun incl -> if incl then Expr.Ge else Expr.Gt)) lo_rest
          @ List.map (demote (fun incl -> if incl then Expr.Le else Expr.Lt)) hi_rest
        in
        (boxes @ [ { attr; lo; hi } ], extras @ extras'))
      ([], []) box_attrs
  in
  let residuals =
    cls.Predicate.residuals
    @ List.map (fun (a, rhs) -> Expr.Cmp (Expr.Eq, Expr.EAttr a, rhs)) eq_residuals
    @ List.map (fun (a, rhs) -> Expr.Cmp (Expr.Ne, Expr.EAttr a, rhs)) ne_residuals
    @ List.map
        (fun (a, (b : Predicate.bound)) ->
          Expr.Cmp ((if b.Predicate.inclusive then Expr.Ge else Expr.Gt), Expr.EAttr a, b.Predicate.value))
        lo_residuals
    @ List.map
        (fun (a, (b : Predicate.bound)) ->
          Expr.Cmp ((if b.Predicate.inclusive then Expr.Le else Expr.Lt), Expr.EAttr a, b.Predicate.value))
        hi_residuals
    @ extra_residuals
  in
  let data_filter, probe_residual =
    List.partition (fun e -> not (Expr.mentions_u e || Expr.mentions_random e)) residuals
  in
  { cat_eqs; cat_nes; boxes; data_filter; probe_residual }

(* ------------------------------------------------------------------ *)
(* Sweep-line applicability *)

let const_offset_bound (b : Predicate.bound option) : (int * float) option =
  (* u.attr - r (lower) or u.attr + r (upper); returns (u attr, r >= 0). *)
  match b with
  | Some { Predicate.value = Expr.UAttr p; inclusive = true } -> Some (p, 0.)
  | Some { Predicate.value = Expr.Binop (Expr.Sub, Expr.UAttr p, Expr.Const c); inclusive = true }
    -> Some (p, Value.to_float c)
  | Some { Predicate.value = Expr.Binop (Expr.Add, Expr.UAttr p, Expr.Const c); inclusive = true }
    -> Some (p, Value.to_float c)
  | _ -> None

let sweep_of_boxes (boxes : box_dim list) : sweep_info option =
  match boxes with
  | [ bx; by ] -> begin
    let dim (b : box_dim) =
      match (const_offset_bound b.lo, const_offset_bound b.hi) with
      | Some (p1, r1), Some (p2, r2) when p1 = p2 && Float.abs (r1 -. r2) < 1e-12 && r1 >= 0. ->
        (* lo = u.p - r, hi = u.p + r: the symmetric window the sweep needs *)
        Some (b.attr, p1, r1)
      | _ -> None
    in
    match (dim bx, dim by) with
    | Some (xd, xc, rx), Some (yd, yc, ry) ->
      Some { x_center = xc; y_center = yc; x_data = xd; y_data = yd; rx; ry }
    | _ -> None
  end
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Whole-aggregate analysis *)

let kind_exprs = function
  | Aggregate.Count -> []
  | Aggregate.Sum e | Aggregate.Avg e | Aggregate.Std_dev e | Aggregate.Min_agg e
  | Aggregate.Max_agg e ->
    [ e ]
  | Aggregate.Arg_min { objective; result } | Aggregate.Arg_max { objective; result } ->
    [ objective; result ]
  | Aggregate.Nearest { ex; ey; ux; uy; result } -> [ ex; ey; ux; uy; result ]

let analyze (schema : Schema.t) (agg : Aggregate.t) : strategy =
  let all_exprs =
    List.concat_map kind_exprs agg.Aggregate.kinds @ Predicate.conjuncts agg.Aggregate.where_
  in
  if List.exists Expr.mentions_random all_exprs then
    Naive_only "selection or aggregate uses Random"
  else if not (List.exists Expr.mentions_u all_exprs) then
    (* Nothing depends on the probing unit: one evaluation serves everyone. *)
    Uniform
  else begin
    let access = classify_access schema agg.Aggregate.where_ in
    let enumerate = access.probe_residual <> [] in
    (* Lay out divisible statistics contiguously across components. *)
    let stats_exprs = ref [] in
    let n_stats = ref 0 in
    let classify_component kind =
      if Aggregate.is_divisible kind then begin
        let stats = Aggregate.stats_of_kind kind in
        if List.exists (fun e -> Expr.mentions_u e) stats then None (* u in the statistic *)
        else begin
          let offset = !n_stats in
          stats_exprs := !stats_exprs @ stats;
          n_stats := !n_stats + List.length stats;
          Some (C_divisible { kind; stat_offset = offset; stat_count = List.length stats })
        end
      end
      else if Aggregate.is_nearest kind then begin
        match kind with
        | Aggregate.Nearest { ex = Expr.EAttr _; ey = Expr.EAttr _; ux; uy; result = _ }
          when (not (Expr.mentions_e ux)) && not (Expr.mentions_e uy) ->
          Some (C_nearest { kind })
        | _ -> None
      end
      else begin
        (* extremal *)
        let objective =
          match kind with
          | Aggregate.Min_agg e | Aggregate.Max_agg e -> Some e
          | Aggregate.Arg_min { objective; _ } | Aggregate.Arg_max { objective; _ } ->
            Some objective
          | _ -> None
        in
        match objective with
        | Some e when not (Expr.mentions_u e) -> Some (C_extremal { kind })
        | _ -> None
      end
    in
    let components = List.map classify_component agg.Aggregate.kinds in
    if List.exists Option.is_none components then
      Naive_only "a component's expressions depend on the probing unit"
    else begin
      let components = List.map Option.get components in
      let has_extremal =
        List.exists (function C_extremal _ -> true | C_divisible _ | C_nearest _ -> false)
          components
      in
      let sweep = if has_extremal && not enumerate then sweep_of_boxes access.boxes else None in
      Indexed { access; components; stats_exprs = !stats_exprs; sweep; enumerate }
    end
  end

let strategy_name = function
  | Uniform -> "uniform"
  | Indexed { sweep = Some _; _ } -> "indexed+sweep"
  | Indexed { enumerate = true; _ } -> "indexed-enumerate"
  | Indexed _ -> "indexed"
  | Naive_only _ -> "naive"

(* One-line access-path description for diagnostics and EXPLAIN: which
   conjuncts became hash levels, range-tree dimensions, data filters and
   per-probe residuals, and how each component executes. *)
let describe (schema : Schema.t) (s : strategy) : string =
  let attr_name a = Schema.name_at schema a in
  match s with
  | Uniform -> "uniform: independent of the probing unit, evaluated once per batch"
  | Naive_only reason -> Fmt.str "naive O(n) scan per probe: %s" reason
  | Indexed { access; components; sweep; enumerate; _ } ->
    let cats =
      List.map (fun (a, _) -> attr_name a ^ "=") access.cat_eqs
      @ List.map (fun (a, _) -> attr_name a ^ "<>") access.cat_nes
    in
    let boxes = List.map (fun (b : box_dim) -> attr_name b.attr) access.boxes in
    let comp = function
      | C_divisible { kind; _ } -> Aggregate.kind_name kind ^ ":prefix-tree"
      | C_extremal { kind } ->
        Aggregate.kind_name kind ^ (if sweep <> None then ":sweep" else ":box-walk")
      | C_nearest { kind } -> Aggregate.kind_name kind ^ ":kd"
    in
    let parts =
      [
        (if cats = [] then None else Some (Fmt.str "hash[%s]" (String.concat " " cats)));
        (if boxes = [] then None else Some (Fmt.str "box[%s]" (String.concat " " boxes)));
        (if access.data_filter = [] then None
         else Some (Fmt.str "data-filter(%d)" (List.length access.data_filter)));
        (if access.probe_residual = [] then None
         else Some (Fmt.str "probe-residual(%d)" (List.length access.probe_residual)));
        (if enumerate then Some "enumerating" else None);
        Some (String.concat "," (List.map comp components));
      ]
    in
    String.concat " " (List.filter_map Fun.id parts)
