(** Index planning for aggregate queries (Section 5.3): classify each
    closed aggregate instance into the strategy the indexed evaluator will
    use. *)

open Sgl_relalg

type box_dim = {
  attr : int;
  lo : Predicate.bound option;
  hi : Predicate.bound option;
}

type access = {
  cat_eqs : (int * Expr.t) list;
  cat_nes : (int * Expr.t) list;
  boxes : box_dim list;
  data_filter : Predicate.t; (* e-only residuals: filter data before indexing *)
  probe_residual : Predicate.t; (* u-dependent residuals: filter per probe *)
}

type sweep_info = {
  x_center : int;
  y_center : int;
  x_data : int;
  y_data : int;
  rx : float;
  ry : float;
}

type component =
  | C_divisible of { kind : Aggregate.kind; stat_offset : int; stat_count : int }
  | C_extremal of { kind : Aggregate.kind }
  | C_nearest of { kind : Aggregate.kind }

type strategy =
  | Uniform (* u-independent: evaluate once per batch *)
  | Indexed of {
      access : access;
      components : component list;
      stats_exprs : Expr.t list;
      sweep : sweep_info option;
      enumerate : bool;
    }
  | Naive_only of string (* reason *)

(** Move constant offsets across a comparison so a bare [e.attr] lands on
    the left (handles the linear shapes game scripts write). *)
val canonicalize_conjunct : Expr.t -> Expr.t

(** Split a conjunctive selection into hash levels, range-tree dimensions,
    data filter and probe residual. *)
val classify_access : Schema.t -> Predicate.t -> access

(** Sweep-line applicability: both dimensions bounded by [u.attr +/- r]
    with equal constant [r]. *)
val sweep_of_boxes : box_dim list -> sweep_info option

val analyze : Schema.t -> Aggregate.t -> strategy
val strategy_name : strategy -> string

(** One-line access-path description (hash levels, range-tree dimensions,
    filters, residuals, per-component execution) for diagnostics. *)
val describe : Schema.t -> strategy -> string
