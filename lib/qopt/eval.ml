(* Pluggable aggregate evaluators (Section 6: "two pluggable versions of
   our aggregate query evaluator").

   [naive]   — every aggregate is a fresh O(n) scan; every area effect is a
               fresh O(n) application: O(n^2) per tick overall.
   [indexed] — per-tick in-memory indexes chosen by [Agg_plan]: shared
               prefix-aggregate range trees for divisible aggregates, the
               sweep-line for constant-window min/max, kD-trees for nearest
               neighbours, and the Section 5.4 index for combining area
               effects; O(n log n) per tick.

   Following Section 6 ("All divisible queries ... share the same range
   tree"), aggregate instances whose access paths agree — same categorical
   partition attributes, same box dimensions, same data filter — share one
   index *group*: one categorical partitioning, one tree per partition whose
   leaves carry the union of every member's statistics.  [indexed ~share:
   false] disables the sharing for the ablation benchmarks.

   Both evaluators must agree *exactly* with the reference interpreter; the
   integration suite checks tick-by-tick equality on integral-coordinate
   workloads, where all float sums are exact. *)

open Sgl_relalg
open Sgl_index
open Sgl_util

type eval_stats = {
  mutable index_builds : int;
  mutable index_probes : int;
  mutable naive_scans : int;
  mutable uniform_hits : int;
  mutable index_reuses : int; (* structures carried across ticks by the cache *)
  mutable build_seconds : float;
}

let fresh_stats () =
  { index_builds = 0; index_probes = 0; naive_scans = 0; uniform_hits = 0; index_reuses = 0;
    build_seconds = 0. }

(* ------------------------------------------------------------------ *)
(* Telemetry.

   [eval_stats] stays the per-evaluator source of truth for the report —
   each family member owns its record, so lanes never contend.  The
   telemetry layer adds *global* counters in the ambient registry (one
   atomic add per already-counted event, gated on one atomic load) plus
   per-aggregate-instance counters that back EXPLAIN: how each instance's
   probes were actually answered — prefix-aggregate lookups, enumerations,
   sweeps, uniform sharing, or naive scans — and how many rows each
   answer touched. *)

let tel_index_build = Telemetry.counter "eval.index_build"
let tel_index_reuse = Telemetry.counter "eval.index_reuse"
let tel_index_probe = Telemetry.counter "eval.index_probe"
let tel_naive_scan = Telemetry.counter "eval.naive_scan"
let tel_build_hist = Telemetry.histogram "eval.index_build_s"

(* Per-aggregate-instance counters (EXPLAIN's row of live statistics).
   Instances are named by position in the program's aggregate array, so
   [explain] can re-derive the same names from the compiled program. *)
type agg_tel = {
  tel_batches : Telemetry.counter; (* eval_agg batches *)
  tel_probes : Telemetry.counter; (* index probes made for this instance *)
  tel_rows : Telemetry.counter; (* rows scanned (naive or enumerated candidates) *)
  tel_prefix : Telemetry.counter; (* probes answered from prefix-aggregate leaves *)
  tel_enum : Telemetry.counter; (* probes answered by enumerate-and-filter *)
  tel_sweep : Telemetry.counter; (* probes answered by a sweep-line pass *)
  tel_uniform : Telemetry.counter; (* batches answered once and shared *)
}

let agg_tel (label : string) : agg_tel =
  let c suffix = Telemetry.counter (Printf.sprintf "agg.%s.%s" label suffix) in
  {
    tel_batches = c "batches";
    tel_probes = c "probes";
    tel_rows = c "rows_scanned";
    tel_prefix = c "prefix_answers";
    tel_enum = c "enum_answers";
    tel_sweep = c "sweep_answers";
    tel_uniform = c "uniform_answers";
  }

let agg_tels (aggregates : Aggregate.t array) : agg_tel array =
  Array.init (Array.length aggregates) (fun i -> agg_tel (string_of_int i))

(* The synthetic AoE aggregates are call-local and unnumbered; they share
   one instance-counter set. *)
let aoe_tel = agg_tel "aoe"

type t = {
  name : string;
  (* [delta] describes what changed since the previous [begin_tick]'s unit
     array; [None] (or a structural delta) forces a cold rebuild of every
     cached structure.  [cols] is the columnar mirror of [units] when the
     caller maintains one — index builds then scan contiguous typed columns
     instead of boxed rows.  Purely an access-path hint: results are
     bit-identical with or without it. *)
  begin_tick : ?delta:Delta.t -> ?cols:Colstore.t -> Tuple.t array -> unit;
  (* Values of aggregate instance [agg_id] for each probing row. *)
  eval_agg : agg_id:int -> rows:Tuple.t array -> rands:(int -> int) array -> Value.t array;
  (* Apply one All-target effect clause, from each contributor row to every
     unit its predicate selects, into the combination accumulator. *)
  apply_aoe :
    pred:Predicate.t ->
    updates:(int * Expr.t) list ->
    contributors:Tuple.t array ->
    contributor_rands:(int -> int) array ->
    acc:Combine.Acc.t ->
    unit;
  stats : eval_stats;
}

let dummy_rand (_ : int) = 0

(* ------------------------------------------------------------------ *)
(* Naive evaluator *)

let naive_core ~(schema : Schema.t) ~(aggregates : Aggregate.t array)
    ~(units : Tuple.t array ref) ~(stats : eval_stats)
    ~(begin_tick : ?delta:Delta.t -> ?cols:Colstore.t -> Tuple.t array -> unit) : t =
  let tels = agg_tels aggregates in
  {
    name = "naive";
    begin_tick;
    eval_agg =
      (fun ~agg_id ~rows ~rands ->
        let agg = aggregates.(agg_id) in
        let tel = tels.(agg_id) in
        Telemetry.Counter.incr tel.tel_batches;
        Telemetry.Counter.add tel.tel_rows (Array.length rows * Array.length !units);
        Array.mapi
          (fun i row ->
            stats.naive_scans <- stats.naive_scans + 1;
            Telemetry.Counter.incr tel_naive_scan;
            Aggregate.eval_naive ~units:!units ~ctx:{ Expr.u = row; e = None; rand = rands.(i) } agg)
          rows);
    apply_aoe =
      (fun ~pred ~updates ~contributors ~contributor_rands ~acc ->
        Array.iteri
          (fun i contributor ->
            stats.naive_scans <- stats.naive_scans + 1;
            Telemetry.Counter.incr tel_naive_scan;
            let rand = contributor_rands.(i) in
            Array.iter
              (fun target ->
                let ctx = { Expr.u = contributor; e = Some target; rand } in
                if Predicate.holds ctx pred then begin
                  let key = Tuple.key schema target in
                  List.iter
                    (fun (attr, expr) ->
                      Combine.Acc.add_attr acc ~base:target ~key attr (Expr.eval ctx expr))
                    updates
                end)
              !units)
          contributors);
    stats;
  }

let naive ~(schema : Schema.t) ~(aggregates : Aggregate.t array) : t =
  let units = ref [||] in
  let stats = fresh_stats () in
  naive_core ~schema ~aggregates ~units ~stats ~begin_tick:(fun ?delta:_ ?cols:_ e -> units := e)

(* ------------------------------------------------------------------ *)
(* Index groups: instances that can share trees *)

(* Instances share a group when they partition the data the same way, box
   the same continuous attributes, and pre-filter the same data subset.
   Per-prober parts (bound expressions, categorical requirements, probe
   residuals) stay per instance. *)
type group = {
  group_id : int;
  cat_attrs : int list; (* sorted partition-key attributes *)
  box_attrs : int list; (* tree dimensions, ascending *)
  data_filter : Predicate.t;
  mutable stats_exprs : Expr.t list; (* deduped union of member statistics *)
  mutable n_stats : int;
  g_reuses : Telemetry.counter; (* per-group cache reuse, for EXPLAIN *)
}

(* Group-scoped reuse counters: [group.<id>.reuses] counts the entry plus
   every per-partition structure the cross-tick cache carried over for
   that group, so EXPLAIN can show cache behaviour per access path. *)
let group_reuse_counter (group_id : int) : Telemetry.counter =
  Telemetry.counter (Printf.sprintf "group.%d.reuses" group_id)

(* A member's view of its group: where its statistics landed. *)
type membership = {
  group : group;
  stat_map : int array; (* instance statistic slot -> group column *)
}

let group_signature (access : Agg_plan.access) =
  let cat_attrs =
    List.sort_uniq compare
      (List.map fst access.Agg_plan.cat_eqs @ List.map fst access.Agg_plan.cat_nes)
  in
  let box_attrs = List.map (fun (b : Agg_plan.box_dim) -> b.Agg_plan.attr) access.Agg_plan.boxes in
  (cat_attrs, box_attrs, access.Agg_plan.data_filter)

(* Add an instance's statistics into a group, deduplicating structurally
   equal expressions so e.g. the shared count column is stored once. *)
let join_group (g : group) (stats_exprs : Expr.t list) : membership =
  let map =
    List.map
      (fun expr ->
        let rec find i = function
          | [] -> None
          | x :: rest -> if x = expr then Some i else find (i + 1) rest
        in
        match find 0 g.stats_exprs with
        | Some i -> i
        | None ->
          g.stats_exprs <- g.stats_exprs @ [ expr ];
          g.n_stats <- g.n_stats + 1;
          g.n_stats - 1)
      stats_exprs
  in
  { group = g; stat_map = Array.of_list map }

(* ------------------------------------------------------------------ *)
(* Built indexes: one per group per tick, partitions lazy *)

type div_struct =
  | Div_total of float array (* no box dims: the partition's statistic sum *)
  | Div_range of Range_tree.t (* 1 or >= 3 dims *)
  | Div_cascade of Cascade_tree.t (* the 2-d fast path *)

type sub_index = {
  members : int array; (* data ids, ascending *)
  mutable divisible : div_struct option;
  mutable enum_tree : Range_tree.t option;
  mutable kds : ((int * int) * Kd_tree.t) list; (* per (ex, ey) coordinate pair *)
}

type built_index = {
  mutable data : Tuple.t array;
  (* [epoch] versions the entry against the owning context's tick counter:
     a cache hit is only valid when the epochs agree, which makes it
     impossible for a retried or rolled-back tick to probe structures the
     per-tick validation pass has not seen (they read as misses and are
     rebuilt).  Entries revalidated across ticks are re-stamped and their
     [data] swapped to the new unit array; the trees themselves bake
     coordinates and statistics at build time, so they stay valid exactly
     when their input attributes are untouched on their members. *)
  mutable epoch : int;
  group : group;
  cat : sub_index Cat_index.t;
  (* Columnar mirror of [data] when the caller maintains one; sub-structure
     builds then read coordinates/statistics from contiguous typed columns.
     Swapped alongside [data] on revalidation. *)
  mutable cols : Colstore.t option;
}

(* Coordinate accessor for attribute [attr] of [bi.data]: a contiguous
   column read when the store mirrors the data and the column is numeric,
   otherwise the boxed row read.  [Colstore.float_reader] guarantees the
   same float as [Value.to_float], so the two paths are bit-identical. *)
let coord_fn (bi : built_index) (attr : int) : int -> float =
  let fallback id = Value.to_float (Tuple.get bi.data.(id) attr) in
  match bi.cols with
  | Some cs when attr < Schema.arity (Colstore.schema cs) -> (
    match Colstore.float_reader cs attr with Some read -> read | None -> fallback)
  | _ -> fallback

(* Per-statistic accessors: a bare attribute reference reads its column
   directly ([Expr.eval_float] of [EAttr j] is [Value.to_float row.(j)],
   which the column reader reproduces exactly); anything else evaluates
   the expression against the boxed row. *)
let stat_fns (bi : built_index) : (int -> float) array =
  Array.of_list
    (List.map
       (fun e ->
         let fallback id =
           Expr.eval_float { Expr.u = [||]; e = Some bi.data.(id); rand = dummy_rand } e
         in
         match (e, bi.cols) with
         | Expr.EAttr j, Some cs when j < Schema.arity (Colstore.schema cs) -> (
           match Colstore.float_reader cs j with Some read -> read | None -> fallback)
         | _ -> fallback)
       bi.group.stats_exprs)

(* Shared build bookkeeping: the evaluator-local stats record, the global
   build counter, and the build-duration histogram. *)
let count_build (st : eval_stats) (t0 : float) : unit =
  let dt = Timer.now () -. t0 in
  st.index_builds <- st.index_builds + 1;
  st.build_seconds <- st.build_seconds +. dt;
  Telemetry.Counter.incr tel_index_build;
  Telemetry.Histogram.observe tel_build_hist dt

let build_index ?(epoch = 0) ?cols (st : eval_stats) ~(group : group) ~(data : Tuple.t array) :
    built_index =
  Fault_inject.hit "index.build";
  let t0 = Timer.now () in
  (* Only trust a columnar mirror that actually covers [data]. *)
  let cols =
    match cols with
    | Some cs when Colstore.length cs = Array.length data && Colstore.rectangular cs -> Some cs
    | _ -> None
  in
  let n = Array.length data in
  let pass id =
    let ctx = { Expr.u = [||]; e = Some data.(id); rand = dummy_rand } in
    Predicate.holds ctx group.data_filter
  in
  let ids = Array.of_list (List.filter pass (List.init n (fun i -> i))) in
  let keys =
    match cols with
    | Some cs ->
      let readers =
        List.map
          (fun a ->
            match Colstore.int_reader cs a with
            | Some r -> r
            | None -> fun id -> Value.to_int (Tuple.get data.(id) a))
          group.cat_attrs
      in
      fun id -> List.map (fun r -> r id) readers
    | None -> fun id -> List.map (fun a -> Value.to_int (Tuple.get data.(id) a)) group.cat_attrs
  in
  let cat =
    Cat_index.create ~keys ~ids ~builder:(fun members ->
        { members; divisible = None; enum_tree = None; kds = [] })
  in
  count_build st t0;
  { data; epoch; group; cat; cols }

(* The partitions a prober may read, given the *instance's* categorical
   requirements. *)
let accepted_partitions (bi : built_index) ~(access : Agg_plan.access) ~(row : Tuple.t)
    ~(rand : int -> int) : sub_index list =
  let ctx = { Expr.u = row; e = None; rand } in
  let need_eq = List.map (fun (a, rhs) -> (a, Expr.eval_int ctx rhs)) access.Agg_plan.cat_eqs in
  let need_ne = List.map (fun (a, rhs) -> (a, Expr.eval_int ctx rhs)) access.Agg_plan.cat_nes in
  let accept key =
    let kv = List.combine bi.group.cat_attrs key in
    List.for_all (fun (a, v) -> List.assoc a kv = v) need_eq
    && List.for_all (fun (a, v) -> List.assoc a kv <> v) need_ne
  in
  Cat_index.find_matching bi.cat ~accept

(* Box intervals for one prober, from the instance's bound expressions. *)
let probe_box (access : Agg_plan.access) ~(row : Tuple.t) ~(rand : int -> int) : Interval.t list =
  let ctx = { Expr.u = row; e = None; rand } in
  List.map
    (fun (b : Agg_plan.box_dim) ->
      let bound side =
        Option.map
          (fun (bd : Predicate.bound) ->
            (Expr.eval_float ctx bd.Predicate.value, not bd.Predicate.inclusive))
          side
      in
      let lo, lo_strict =
        match bound b.Agg_plan.lo with
        | None -> (neg_infinity, false)
        | Some (v, s) -> (v, s)
      in
      let hi, hi_strict =
        match bound b.Agg_plan.hi with
        | None -> (infinity, false)
        | Some (v, s) -> (v, s)
      in
      Interval.make ~lo ~lo_strict ~hi ~hi_strict ())
    access.Agg_plan.boxes

(* The [memoize] flag on the [ensure_*] builders: when false, a missing
   structure is built and returned but NOT stored in [sub].  Members of a
   shared-index family run with [memoize:false] so that — should the eager
   [prebuild] pass ever miss a structure — two domains can never race on
   the [sub_index] fields; they only ever read them.  Sequential
   evaluators (and call-local indexes like the AoE contributor index) pass
   [memoize:true] and keep the original caching behaviour. *)
let ensure_divisible ~(memoize : bool) st (bi : built_index) (sub : sub_index) : div_struct =
  match sub.divisible with
  | Some d -> d
  | None ->
    let t0 = Timer.now () in
    let m = bi.group.n_stats in
    let fns = stat_fns bi in
    let stat id = Array.map (fun f -> f id) fns in
    let coord attr = coord_fn bi attr in
    let d =
      match bi.group.box_attrs with
      | [] ->
        let total = Array.make m 0. in
        Array.iter
          (fun id ->
            let s = stat id in
            for j = 0 to m - 1 do
              total.(j) <- total.(j) +. s.(j)
            done)
          sub.members;
        Div_total total
      | [ a ] -> Div_range (Range_tree.build ~dims:[ coord a ] ~stats:(Some stat) ~m sub.members)
      | [ ax; ay ] ->
        Div_cascade (Cascade_tree.build ~x:(coord ax) ~y:(coord ay) ~stats:stat ~m sub.members)
      | many ->
        Div_range (Range_tree.build ~dims:(List.map coord many) ~stats:(Some stat) ~m sub.members)
    in
    if memoize then sub.divisible <- Some d;
    count_build st t0;
    d

let ensure_enum_tree ~(memoize : bool) st (bi : built_index) (sub : sub_index) : Range_tree.t =
  match sub.enum_tree with
  | Some t -> t
  | None ->
    let t0 = Timer.now () in
    let coord attr = coord_fn bi attr in
    let dims =
      match bi.group.box_attrs with
      | [] -> [ (fun _ -> 0.) ] (* degenerate: everything in one slab *)
      | attrs -> List.map coord attrs
    in
    let t = Range_tree.build ~dims ~stats:None ~m:0 sub.members in
    if memoize then sub.enum_tree <- Some t;
    count_build st t0;
    t

let ensure_kd ~(memoize : bool) st (bi : built_index) ~(ex : int) ~(ey : int) (sub : sub_index) :
    Kd_tree.t =
  match List.assoc_opt (ex, ey) sub.kds with
  | Some t -> t
  | None ->
    let t0 = Timer.now () in
    let coord attr = coord_fn bi attr in
    let t = Kd_tree.build ~x:(coord ex) ~y:(coord ey) sub.members in
    if memoize then sub.kds <- ((ex, ey), t) :: sub.kds;
    count_build st t0;
    t

(* ------------------------------------------------------------------ *)
(* Batch evaluation of one aggregate against one built index *)

let finish_components ~(agg : Aggregate.t) ~(row : Tuple.t) ~(rand : int -> int)
    (per_component : Value.t option list) : Value.t =
  let ctx = { Expr.u = row; e = None; rand } in
  let on_empty () =
    match agg.Aggregate.default with
    | Some d -> Expr.eval ctx d
    | None ->
      raise
        (Aggregate.Aggregate_error
           (Fmt.str "aggregate %s is empty and declares no default" agg.Aggregate.name))
  in
  match per_component with
  | [ Some v ] -> v
  | [ None ] -> on_empty ()
  | [ Some a; Some b ] -> Value.make_vec a b
  | [ _; _ ] -> on_empty ()
  | _ ->
    raise (Aggregate.Aggregate_error (Fmt.str "aggregate %s has invalid arity" agg.Aggregate.name))

(* Deterministic "better" for extremal folds: minimize/maximize the value,
   break ties toward the smaller data id — exactly the naive scan's
   behaviour when data ids are array positions. *)
let fold_best ~(maximize : bool) (best : (float * int) option) (candidate : float * int) :
    (float * int) option =
  match best with
  | None -> Some candidate
  | Some (bv, bid) ->
    let cv, cid = candidate in
    let better =
      if maximize then cv > bv || (cv = bv && cid < bid) else cv < bv || (cv = bv && cid < bid)
    in
    if better then Some candidate else best

let rec eval_indexed_batch st ~(tel : agg_tel) ~(memoize : bool) ~(strategy : Agg_plan.strategy)
    ~(agg : Aggregate.t) ~(membership : membership) ~(bi : built_index)
    ~(rows : Tuple.t array) ~(rands : (int -> int) array) : Value.t array =
  match strategy with
  | Agg_plan.Uniform | Agg_plan.Naive_only _ ->
    invalid_arg "eval_indexed_batch: not an indexed strategy"
  | Agg_plan.Indexed { access; components; stats_exprs = _; sweep; enumerate } ->
    let n_rows = Array.length rows in
    (* Pre-compute sweep results per extremal component when applicable. *)
    let sweep_results : (float * int) option array option =
      match (sweep, components) with
      | Some info, [ C_extremal { kind } ] ->
        let maximize =
          match kind with
          | Aggregate.Max_agg _ | Aggregate.Arg_max _ -> true
          | _ -> false
        in
        let objective =
          match kind with
          | Aggregate.Min_agg e | Aggregate.Max_agg e -> e
          | Aggregate.Arg_min { objective; _ } | Aggregate.Arg_max { objective; _ } -> objective
          | _ -> assert false
        in
        let combined : (float * int) option array = Array.make n_rows None in
        let skind = if maximize then Sweepline.Max else Sweepline.Min in
        (* run one sweep per partition over the probers that accept it *)
        let partition_keys = Cat_index.partition_keys bi.cat in
        List.iter
          (fun key ->
            match Cat_index.find bi.cat key with
            | None -> ()
            | Some sub ->
              let cx = coord_fn bi info.Agg_plan.x_data in
              let cy = coord_fn bi info.Agg_plan.y_data in
              let data =
                Array.map
                  (fun id ->
                    let v =
                      Expr.eval_float
                        { Expr.u = [||]; e = Some bi.data.(id); rand = dummy_rand }
                        objective
                    in
                    { Sweepline.x = cx id; y = cy id; value = v; id })
                  sub.members
              in
              let queries = Varray.create { Sweepline.qx = 0.; qy = 0.; qid = 0 } in
              Array.iteri
                (fun i row ->
                  let accepted = accepted_partitions bi ~access ~row ~rand:rands.(i) in
                  if List.memq sub accepted then
                    Varray.push queries
                      {
                        Sweepline.qx = Value.to_float (Tuple.get row info.Agg_plan.x_center);
                        qy = Value.to_float (Tuple.get row info.Agg_plan.y_center);
                        qid = i;
                      })
                rows;
              let nq = Varray.length queries in
              st.index_probes <- st.index_probes + nq;
              Telemetry.Counter.add tel_index_probe nq;
              Telemetry.Counter.add tel.tel_probes nq;
              let res =
                Sweepline.run skind ~data ~queries:(Varray.to_array queries)
                  ~rx:info.Agg_plan.rx ~ry:info.Agg_plan.ry ~n_queries:n_rows
              in
              Array.iteri
                (fun i r ->
                  match r with
                  | None -> ()
                  | Some (id, v) -> combined.(i) <- fold_best ~maximize combined.(i) (v, id))
                res)
          partition_keys;
        Some combined
      | _ -> None
    in
    Array.mapi
      (fun i row ->
        let rand = rands.(i) in
        let parts = accepted_partitions bi ~access ~row ~rand in
        let box = probe_box access ~row ~rand in
        let per_component =
          List.map
            (fun comp ->
              match comp with
              | Agg_plan.C_divisible { kind; stat_offset; stat_count } ->
                if enumerate then
                  eval_enum_component st ~tel ~memoize ~bi ~access ~row ~rand ~parts ~box kind
                else begin
                  let total = Array.make bi.group.n_stats 0. in
                  List.iter
                    (fun sub ->
                      let d = ensure_divisible ~memoize st bi sub in
                      st.index_probes <- st.index_probes + 1;
                      Telemetry.Counter.incr tel_index_probe;
                      Telemetry.Counter.incr tel.tel_probes;
                      let part =
                        match (d, box) with
                        | Div_total t, _ -> t
                        | Div_range t, ivs -> Range_tree.query_stats t ivs
                        | Div_cascade t, [ ivx; ivy ] -> Cascade_tree.query t ~x:ivx ~y:ivy
                        | Div_cascade _, _ -> assert false
                      in
                      for j = 0 to Array.length total - 1 do
                        total.(j) <- total.(j) +. part.(j)
                      done)
                    parts;
                  Telemetry.Counter.incr tel.tel_prefix;
                  (* pull this instance's statistics out of the group's
                     shared columns *)
                  let mine =
                    Array.init stat_count (fun j -> total.(membership.stat_map.(stat_offset + j)))
                  in
                  Aggregate.finish_divisible kind mine
                end
              | Agg_plan.C_extremal { kind } -> begin
                match sweep_results with
                | Some combined -> begin
                  Telemetry.Counter.incr tel.tel_sweep;
                  match combined.(i) with
                  | None -> None
                  | Some (value, id) -> finish_extremal ~bi ~row ~rand kind value id
                end
                | None ->
                  eval_enum_component st ~tel ~memoize ~bi ~access ~row ~rand ~parts ~box kind
              end
              | Agg_plan.C_nearest { kind } -> begin
                match kind with
                | Aggregate.Nearest { ex = Expr.EAttr exa; ey = Expr.EAttr eya; ux; uy; result }
                  -> begin
                  let ctx = { Expr.u = row; e = None; rand } in
                  let qx = Expr.eval_float ctx ux and qy = Expr.eval_float ctx uy in
                  let residual = access.Agg_plan.probe_residual in
                  let filter id =
                    let e = bi.data.(id) in
                    List.for_all2
                      (fun iv (b : Agg_plan.box_dim) ->
                        Interval.mem iv (Value.to_float (Tuple.get e b.Agg_plan.attr)))
                      box access.Agg_plan.boxes
                    && Predicate.holds { Expr.u = row; e = Some e; rand } residual
                  in
                  let best =
                    List.fold_left
                      (fun best sub ->
                        let kd = ensure_kd ~memoize st bi ~ex:exa ~ey:eya sub in
                        st.index_probes <- st.index_probes + 1;
                        Telemetry.Counter.incr tel_index_probe;
                        Telemetry.Counter.incr tel.tel_probes;
                        match Kd_tree.nearest ~filter kd ~qx ~qy with
                        | None -> best
                        | Some (id, d2) -> begin
                          match best with
                          | Some (bd2, bid) when bd2 < d2 || (bd2 = d2 && bid < id) -> best
                          | _ -> Some (d2, id)
                        end)
                      None parts
                  in
                  match best with
                  | None -> None
                  | Some (_, id) -> Some (Expr.eval { Expr.u = row; e = Some bi.data.(id); rand } result)
                end
                | _ -> assert false
              end)
            components
        in
        finish_components ~agg ~row ~rand per_component)
      rows

(* Enumeration path: report the box contents, filter residuals, and fall
   back to the one-component naive evaluation over the candidates. *)
and eval_enum_component st ~(tel : agg_tel) ~(memoize : bool) ~(bi : built_index)
    ~(access : Agg_plan.access) ~(row : Tuple.t)
    ~(rand : int -> int) ~(parts : sub_index list) ~(box : Interval.t list)
    (kind : Aggregate.kind) : Value.t option =
  let candidates = Varray.create 0 in
  List.iter
    (fun sub ->
      let tree = ensure_enum_tree ~memoize st bi sub in
      st.index_probes <- st.index_probes + 1;
      Telemetry.Counter.incr tel_index_probe;
      Telemetry.Counter.incr tel.tel_probes;
      let ivs = if bi.group.box_attrs = [] then [ Interval.everything ] else box in
      Range_tree.query_enum tree ivs (fun id -> Varray.push candidates id))
    parts;
  let ids = Varray.to_array candidates in
  Array.sort compare ids (* restore data order so ties match the naive scan *);
  Telemetry.Counter.incr tel.tel_enum;
  Telemetry.Counter.add tel.tel_rows (Array.length ids);
  let cand_rows = Array.map (fun id -> bi.data.(id)) ids in
  Aggregate.eval_kind_naive ~units:cand_rows
    ~ctx:{ Expr.u = row; e = None; rand }
    ~where_:access.Agg_plan.probe_residual kind

and finish_extremal ~(bi : built_index) ~(row : Tuple.t) ~(rand : int -> int)
    (kind : Aggregate.kind) (value : float) (id : int) : Value.t option =
  match kind with
  | Aggregate.Min_agg _ | Aggregate.Max_agg _ -> Some (Value.Float value)
  | Aggregate.Arg_min { result; _ } | Aggregate.Arg_max { result; _ } ->
    Some (Expr.eval { Expr.u = row; e = Some bi.data.(id); rand } result)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Uniform evaluation: compute once, share across the batch. *)

let eval_uniform st ~(tel : agg_tel) ~(agg : Aggregate.t) ~(units : Tuple.t array)
    ~(rows : Tuple.t array) ~(rands : (int -> int) array) : Value.t array =
  st.uniform_hits <- st.uniform_hits + 1;
  Telemetry.Counter.incr tel.tel_uniform;
  let ctx = { Expr.u = [||]; e = None; rand = dummy_rand } in
  let per_kind =
    List.map
      (fun kind -> Aggregate.eval_kind_naive ~units ~ctx ~where_:agg.Aggregate.where_ kind)
      agg.Aggregate.kinds
  in
  Array.mapi (fun i row -> finish_components ~agg ~row ~rand:rands.(i) per_kind) rows

(* ------------------------------------------------------------------ *)
(* The indexed evaluator *)

(* Construction state shared by every evaluator built over one per-tick
   index cache.  The plain [indexed] evaluator owns a private context; an
   [indexed_family] shares one context across its members so the parallel
   decision phase probes one set of indexes from every domain. *)
type indexed_ctx = {
  ctx_schema : Schema.t;
  ctx_aggregates : Aggregate.t array;
  strategies : Agg_plan.strategy array;
  memberships : membership option array;
  ctx_units : Tuple.t array ref;
  ctx_cols : Colstore.t option ref; (* columnar mirror of [ctx_units], when published *)
  cache : (int, built_index) Hashtbl.t; (* group id -> built index, epoch-stamped *)
  mutable epoch : int; (* bumped once per [begin_tick]/[prepare] *)
}

let make_indexed_ctx ?(share = true) ~(schema : Schema.t) ~(aggregates : Aggregate.t array) () :
    indexed_ctx =
  let strategies = Array.map (Agg_plan.analyze schema) aggregates in
  (* Assign every Indexed instance to a group; with sharing disabled, each
     instance gets a private group. *)
  let groups : group Varray.t =
    Varray.create
      { group_id = -1; cat_attrs = []; box_attrs = []; data_filter = []; stats_exprs = [];
        n_stats = 0; g_reuses = group_reuse_counter (-1) }
  in
  let memberships : membership option array =
    Array.map
      (fun strategy ->
        match strategy with
        | Agg_plan.Indexed { access; stats_exprs; _ } ->
          let cat_attrs, box_attrs, data_filter = group_signature access in
          let existing =
            if share then begin
              let found = ref None in
              Varray.iter
                (fun g ->
                  if !found = None && g.cat_attrs = cat_attrs && g.box_attrs = box_attrs
                     && g.data_filter = data_filter
                  then found := Some g)
                groups;
              !found
            end
            else None
          in
          let g =
            match existing with
            | Some g -> g
            | None ->
              let gid = Varray.length groups in
              let g =
                { group_id = gid; cat_attrs; box_attrs; data_filter;
                  stats_exprs = []; n_stats = 0; g_reuses = group_reuse_counter gid }
              in
              Varray.push groups g;
              g
          in
          Some (join_group g stats_exprs)
        | Agg_plan.Uniform | Agg_plan.Naive_only _ -> None)
      strategies
  in
  {
    ctx_schema = schema;
    ctx_aggregates = aggregates;
    strategies;
    memberships;
    ctx_units = ref [||];
    ctx_cols = ref None;
    cache = Hashtbl.create 32;
    epoch = 0;
  }

(* ------------------------------------------------------------------ *)
(* Cross-tick cache validation.

   A cached group index was built over last tick's unit array; the delta
   summary says what the intervening mutation phases changed.  Reuse is
   decided structure by structure:

   - the categorical partitioning (and the data-filter pass behind it)
     survives when the partition-key attributes and every attribute the
     data filter reads are globally clean — then the same ids land in the
     same partitions, and only [data] needs swapping to the new array;
   - a per-partition sub-structure survives when its input attributes are
     globally clean, or when none of the partition's members is a dirty
     unit (its inputs may be dirty elsewhere, but not here);
   - everything else is dropped and rebuilt lazily (sequential) or by the
     family's eager prebuild (parallel).

   Structural deltas (death, resurrection, reordering) invalidate
   everything: data ids are positional. *)

let pred_e_attrs (p : Predicate.t) : int list =
  List.concat_map Expr.e_slots (Predicate.conjuncts p)

let any_dirty (d : Delta.t) (attrs : int list) : bool = List.exists (Delta.dirty_attr d) attrs

(* Try to carry [bi] into the new tick described by [delta]; true on
   success (entry re-stamped, sub-structures pruned), false when the whole
   entry must be dropped. *)
let revalidate_index (st : eval_stats) (ctx : indexed_ctx) ~(delta : Delta.t)
    ~(units : Tuple.t array) (bi : built_index) : bool =
  if
    Array.length bi.data <> Array.length units
    || any_dirty delta bi.group.cat_attrs
    || any_dirty delta (pred_e_attrs bi.group.data_filter)
  then false
  else begin
    bi.data <- units;
    bi.cols <- !(ctx.ctx_cols);
    bi.epoch <- ctx.epoch;
    st.index_reuses <- st.index_reuses + 1;
    Telemetry.Counter.incr tel_index_reuse;
    Telemetry.Counter.incr bi.group.g_reuses;
    let schema = ctx.ctx_schema in
    let no_dirty_units = Delta.dirty_key_count delta = 0 in
    let div_clean =
      not
        (any_dirty delta bi.group.box_attrs
        || List.exists (fun e -> any_dirty delta (Expr.e_slots e)) bi.group.stats_exprs)
    in
    let enum_clean = not (any_dirty delta bi.group.box_attrs) in
    Cat_index.iter_built
      (fun _key sub ->
        let partition_clean =
          no_dirty_units
          || not
               (Array.exists
                  (fun id -> Delta.dirty_key delta (Tuple.key schema units.(id)))
                  sub.members)
        in
        let keep kept =
          if kept then begin
            st.index_reuses <- st.index_reuses + 1;
            Telemetry.Counter.incr tel_index_reuse;
            Telemetry.Counter.incr bi.group.g_reuses
          end
        in
        (match sub.divisible with
        | None -> ()
        | Some _ ->
          if div_clean || partition_clean then keep true else sub.divisible <- None);
        (match sub.enum_tree with
        | None -> ()
        | Some _ ->
          if enum_clean || partition_clean then keep true else sub.enum_tree <- None);
        sub.kds <-
          List.filter
            (fun ((ex, ey), _) ->
              let kept =
                partition_clean
                || not (Delta.dirty_attr delta ex || Delta.dirty_attr delta ey)
              in
              keep kept;
              kept)
            sub.kds)
      bi.cat;
    true
  end

(* Open a tick on a shared context: bump the epoch, publish the unit
   array, and either revalidate the cache against the delta or drop it
   cold.  Structures that survive keep their epoch current; everything
   else reads as a miss. *)
let open_tick (ctx : indexed_ctx) (st : eval_stats) ?(delta : Delta.t option)
    ?(cols : Colstore.t option) (units : Tuple.t array) : unit =
  ctx.ctx_units := units;
  (* Only publish a mirror that actually covers [units]; anything else
     (mid-restore, ragged store) falls back to boxed reads everywhere. *)
  ctx.ctx_cols :=
    (match cols with
    | Some cs when Colstore.length cs = Array.length units && Colstore.rectangular cs -> Some cs
    | _ -> None);
  ctx.epoch <- ctx.epoch + 1;
  match delta with
  | None -> Hashtbl.reset ctx.cache
  | Some d when Delta.structural d -> Hashtbl.reset ctx.cache
  | Some d ->
    let stale =
      Hashtbl.fold
        (fun gid bi acc ->
          if revalidate_index st ctx ~delta:d ~units bi then acc else gid :: acc)
        ctx.cache []
    in
    List.iter (Hashtbl.remove ctx.cache) stale

(* Look a membership's group index up in the shared cache.  The returned
   flag is true when the index had to be built *call-locally* (cache miss
   with memoization off): such an index is private to the caller, so the
   caller may memoize sub-structures on it even from a worker domain.
   Entries from an earlier epoch are misses: a quarantine retry or a
   degraded re-run must never probe a structure [open_tick] has not
   revalidated for the current unit array. *)
let group_index (ctx : indexed_ctx) (st : eval_stats) ~(memoize : bool) (m : membership) :
    built_index * bool =
  match Hashtbl.find_opt ctx.cache m.group.group_id with
  | Some bi when bi.epoch = ctx.epoch -> (bi, false)
  | Some _ | None ->
    let bi = build_index ~epoch:ctx.epoch ?cols:!(ctx.ctx_cols) st ~group:m.group ~data:!(ctx.ctx_units) in
    if memoize then Hashtbl.replace ctx.cache m.group.group_id bi;
    (bi, not memoize)

(* One evaluator over a (possibly shared) context.  With [memoize:false]
   the evaluator never writes into shared index state: cache misses build
   call-local structures instead.  Family members run with [memoize:false]
   so every shared structure they touch was published by [prebuild] before
   the domains forked. *)
let indexed_member (ctx : indexed_ctx) ~(name : string) ~(stats : eval_stats) ~(memoize : bool)
    ~(begin_tick : ?delta:Delta.t -> ?cols:Colstore.t -> Tuple.t array -> unit) : t =
  let schema = ctx.ctx_schema in
  let aggregates = ctx.ctx_aggregates in
  let units = ctx.ctx_units in
  let tels = agg_tels aggregates in
  let eval_agg ~agg_id ~rows ~rands =
    (* The injection point of the indexed machinery: absent from the naive
       evaluator, so a [Degrade] retry chain always terminates clean. *)
    Fault_inject.hit "eval.member";
    let agg = aggregates.(agg_id) in
    let tel = tels.(agg_id) in
    Telemetry.Counter.incr tel.tel_batches;
    match ctx.strategies.(agg_id) with
    | Agg_plan.Uniform -> eval_uniform stats ~tel ~agg ~units:!units ~rows ~rands
    | Agg_plan.Naive_only _ ->
      Telemetry.Counter.add tel.tel_rows (Array.length rows * Array.length !units);
      Array.mapi
        (fun i row ->
          stats.naive_scans <- stats.naive_scans + 1;
          Telemetry.Counter.incr tel_naive_scan;
          Aggregate.eval_naive ~units:!units ~ctx:{ Expr.u = row; e = None; rand = rands.(i) } agg)
        rows
    | Agg_plan.Indexed _ as strategy ->
      let membership = Option.get ctx.memberships.(agg_id) in
      let bi, local = group_index ctx stats ~memoize membership in
      eval_indexed_batch stats ~tel ~memoize:(memoize || local) ~strategy ~agg ~membership ~bi
        ~rows ~rands
  in
  (* Area-of-effect combination (Section 5.4): swap the roles of u and e so
     contributors become the data set and affected units the probers, then
     reuse the aggregate machinery per updated attribute. *)
  let apply_aoe ~pred ~updates ~contributors ~contributor_rands ~acc =
    let rec swap (e : Expr.t) : Expr.t =
      match e with
      | Expr.UAttr i -> Expr.EAttr i
      | Expr.EAttr i -> Expr.UAttr i
      | Expr.Const _ -> e
      | Expr.Binop (op, a, b) -> Expr.Binop (op, swap a, swap b)
      | Expr.Cmp (op, a, b) -> Expr.Cmp (op, swap a, swap b)
      | Expr.And (a, b) -> Expr.And (swap a, swap b)
      | Expr.Or (a, b) -> Expr.Or (swap a, swap b)
      | Expr.Not a -> Expr.Not (swap a)
      | Expr.Neg a -> Expr.Neg (swap a)
      | Expr.VecOf (a, b) -> Expr.VecOf (swap a, swap b)
      | Expr.VecX a -> Expr.VecX (swap a)
      | Expr.VecY a -> Expr.VecY (swap a)
      | Expr.Abs a -> Expr.Abs (swap a)
      | Expr.Sqrt a -> Expr.Sqrt (swap a)
      | Expr.MinOf (a, b) -> Expr.MinOf (swap a, swap b)
      | Expr.MaxOf (a, b) -> Expr.MaxOf (swap a, swap b)
      | Expr.Random a -> Expr.Random (swap a)
    in
    let swapped_pred = Predicate.of_conjuncts (List.map swap (Predicate.conjuncts pred)) in
    let naive_fallback () =
      Array.iteri
        (fun i contributor ->
          stats.naive_scans <- stats.naive_scans + 1;
          let rand = contributor_rands.(i) in
          Array.iter
            (fun target ->
              let ctx = { Expr.u = contributor; e = Some target; rand } in
              if Predicate.holds ctx pred then begin
                let key = Tuple.key schema target in
                List.iter
                  (fun (attr, expr) ->
                    Combine.Acc.add_attr acc ~base:target ~key attr (Expr.eval ctx expr))
                  updates
              end)
            !units)
        contributors
    in
    (* Indexable only when no update or conjunct needs the affected unit's
       random stream or mixes roles the planner cannot express. *)
    let updates_indexable =
      List.for_all (fun (_, e) -> (not (Expr.mentions_e e)) && not (Expr.mentions_random e)) updates
    in
    if (not updates_indexable) || List.exists Expr.mentions_random (Predicate.conjuncts pred) then
      naive_fallback ()
    else begin
      (* One synthetic aggregate per updated attribute. *)
      let synthetic (attr, expr) =
        let kind =
          match Schema.tag_at schema attr with
          | Schema.Sum -> Some (Aggregate.Sum (swap expr))
          | Schema.Max -> Some (Aggregate.Max_agg (swap expr))
          | Schema.Min -> Some (Aggregate.Min_agg (swap expr))
          (* priority-set contributions are vec-valued; no index yet *)
          | Schema.Pmax | Schema.Const -> None
        in
        Option.map
          (fun kind ->
            (* Count alongside, to distinguish "no contributors" from a
               legitimate zero sum. *)
            Aggregate.make ~name:"__aoe"
              ~kinds:[ kind; Aggregate.Count ]
              ~where_:swapped_pred
              ~default:(Expr.VecOf (Expr.Const (Value.Float nan), Expr.Const (Value.Float 0.)))
              ())
          kind
      in
      let plans =
        List.map
          (fun (attr, expr) ->
            match synthetic (attr, expr) with
            | None -> None
            | Some agg -> begin
              match Agg_plan.analyze schema agg with
              | Agg_plan.Naive_only _ -> None
              | strategy -> Some (attr, agg, strategy)
            end)
          updates
      in
      if List.exists Option.is_none plans then naive_fallback ()
      else begin
        let probers = !units in
        let prands = Array.map (fun _ -> dummy_rand) probers in
        List.iter
          (fun plan ->
            let attr, agg, strategy = Option.get plan in
            let contribute vals =
              Array.iteri
                (fun i v ->
                  let vec = Value.to_vec v in
                  if vec.Sgl_util.Vec2.y > 0. then
                    Combine.Acc.add_attr acc ~base:probers.(i)
                      ~key:(Tuple.key schema probers.(i))
                      attr (Value.Float vec.Sgl_util.Vec2.x))
                vals
            in
            match strategy with
            | Agg_plan.Naive_only _ -> assert false
            | Agg_plan.Uniform ->
              contribute
                (eval_uniform stats ~tel:aoe_tel ~agg ~units:contributors ~rows:probers
                   ~rands:prands)
            | Agg_plan.Indexed { access; stats_exprs; _ } ->
              (* a fresh single-instance group over the contributor set;
                 the index is call-local, so memoizing on it is safe from
                 any domain *)
              let cat_attrs, box_attrs, data_filter = group_signature access in
              let g =
                { group_id = -1; cat_attrs; box_attrs; data_filter; stats_exprs = []; n_stats = 0;
                  g_reuses = group_reuse_counter (-1) }
              in
              let membership = join_group g stats_exprs in
              let bi = build_index stats ~group:g ~data:contributors in
              contribute
                (eval_indexed_batch stats ~tel:aoe_tel ~memoize:true ~strategy ~agg ~membership
                   ~bi ~rows:probers ~rands:prands))
          plans
      end
    end
  in
  { name; begin_tick; eval_agg; apply_aoe; stats }

let indexed ?(share = true) ~(schema : Schema.t) ~(aggregates : Aggregate.t array) () : t =
  let ctx = make_indexed_ctx ~share ~schema ~aggregates () in
  let stats = fresh_stats () in
  indexed_member ctx ~name:"indexed" ~stats ~memoize:true
    ~begin_tick:(fun ?delta ?cols e -> open_tick ctx stats ?delta ?cols e)

(* ------------------------------------------------------------------ *)
(* Families: the parallel decision phase's snapshot discipline *)

(* Force every index structure any member could reach this tick, so that
   once the domains fork the shared context is read-only.  Mirrors the
   reachability analysis in [eval_indexed_batch]: group indexes and their
   categorical partitions always; per-partition divisible / enumeration /
   kD structures according to the strategy's components (the single-sweep
   extremal case runs the sweep-line per batch and touches no lazy
   per-partition structure). *)
let prebuild (ctx : indexed_ctx) (st : eval_stats) : unit =
  Array.iteri
    (fun agg_id m_opt ->
      match m_opt with
      | None -> ()
      | Some m -> begin
        match ctx.strategies.(agg_id) with
        | Agg_plan.Uniform | Agg_plan.Naive_only _ -> ()
        | Agg_plan.Indexed { components; sweep; enumerate; _ } ->
          let bi, _ = group_index ctx st ~memoize:true m in
          let single_sweep =
            match (sweep, components) with
            | Some _, [ Agg_plan.C_extremal _ ] -> true
            | _ -> false
          in
          List.iter
            (fun key ->
              match Cat_index.find bi.cat key with
              | None -> ()
              | Some sub ->
                List.iter
                  (fun comp ->
                    match comp with
                    | Agg_plan.C_divisible _ ->
                      if enumerate then ignore (ensure_enum_tree ~memoize:true st bi sub)
                      else ignore (ensure_divisible ~memoize:true st bi sub)
                    | Agg_plan.C_extremal _ ->
                      if not single_sweep then ignore (ensure_enum_tree ~memoize:true st bi sub)
                    | Agg_plan.C_nearest { kind } -> begin
                      match kind with
                      | Aggregate.Nearest { ex = Expr.EAttr exa; ey = Expr.EAttr eya; _ } ->
                        ignore (ensure_kd ~memoize:true st bi ~ex:exa ~ey:eya sub)
                      | _ -> ()
                    end)
                  components)
            (Cat_index.partition_keys bi.cat)
      end)
    ctx.memberships

type family = {
  members : t array;
  prepare : ?delta:Delta.t -> ?cols:Colstore.t -> Tuple.t array -> unit;
}

let indexed_family ?(share = true) ~(schema : Schema.t) ~(aggregates : Aggregate.t array)
    ~(chunks : int) () : family =
  let ctx = make_indexed_ctx ~share ~schema ~aggregates () in
  (* A single-member family never has two domains over the context at
     once, so it may memoize like the sequential evaluator; only genuinely
     multi-domain families need the write-free guarantee. *)
  let solo = max 1 chunks = 1 in
  let members =
    Array.init (max 1 chunks) (fun i ->
        indexed_member ctx
          ~name:(Printf.sprintf "indexed#%d" i)
          ~stats:(fresh_stats ()) ~memoize:solo
          ~begin_tick:(fun ?delta:_ ?cols:_ _ -> ()))
  in
  let prepare ?delta ?cols units =
    open_tick ctx members.(0).stats ?delta ?cols units;
    prebuild ctx members.(0).stats
  in
  { members; prepare }

(* ------------------------------------------------------------------ *)
(* EXPLAIN: the compiled per-instance plan annotated with live counters.

   The group assignment in [make_indexed_ctx] is deterministic, so
   rebuilding a context here recovers exactly the instance -> group
   mapping the running evaluator used, and registration-by-name makes
   [agg_tel]/[group_reuse_counter] return the very handles the evaluator
   has been bumping.  The report therefore shows the *chosen* access path
   next to how it actually answered: prefix-aggregate lookups vs.
   enumerations vs. sweeps vs. uniform sharing, rows touched, and what
   the cross-tick cache reused per group. *)

let pp_attr_list ppf attrs = Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",") int) attrs

let explain ?(share = true) ~(schema : Schema.t) ~(aggregates : Aggregate.t array) () : string =
  let ctx = make_indexed_ctx ~share ~schema ~aggregates () in
  let tels = agg_tels aggregates in
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  Fmt.pf ppf "EXPLAIN: %d aggregate instance(s), index sharing %s@."
    (Array.length aggregates)
    (if share then "on" else "off");
  Array.iteri
    (fun i (agg : Aggregate.t) ->
      let tel = tels.(i) in
      let v = Telemetry.Counter.value in
      (match ctx.strategies.(i) with
      | Agg_plan.Uniform ->
        Fmt.pf ppf "  [%d] %s: uniform (answer once per batch, share across probers)@." i
          agg.Aggregate.name
      | Agg_plan.Naive_only reason ->
        Fmt.pf ppf "  [%d] %s: naive scan (%s)@." i agg.Aggregate.name reason
      | Agg_plan.Indexed { components; sweep; enumerate; _ } ->
        let group =
          match ctx.memberships.(i) with
          | Some m -> m.group
          | None -> assert false
        in
        let comp_name = function
          | Agg_plan.C_divisible _ ->
            if enumerate then "divisible(enumerate)" else "divisible(prefix)"
          | Agg_plan.C_extremal _ -> (
            match sweep with
            | Some _ -> "extremal(sweep)"
            | None -> "extremal(enumerate)")
          | Agg_plan.C_nearest _ -> "nearest(kd)"
        in
        Fmt.pf ppf "  [%d] %s: indexed via group %d [%a], cat=%a box=%a@." i agg.Aggregate.name
          group.group_id
          Fmt.(list ~sep:(any " + ") string)
          (List.map comp_name components) pp_attr_list group.cat_attrs pp_attr_list
          group.box_attrs);
      Fmt.pf ppf
        "        live: batches=%d probes=%d rows_scanned=%d prefix=%d enum=%d sweep=%d uniform=%d@."
        (v tel.tel_batches) (v tel.tel_probes) (v tel.tel_rows) (v tel.tel_prefix)
        (v tel.tel_enum) (v tel.tel_sweep) (v tel.tel_uniform))
    aggregates;
  let groups =
    let seen : (int, group) Hashtbl.t = Hashtbl.create 8 in
    Array.iter
      (fun (m_opt : membership option) ->
        match m_opt with
        | Some m when not (Hashtbl.mem seen m.group.group_id) ->
          Hashtbl.add seen m.group.group_id m.group
        | _ -> ())
      ctx.memberships;
    List.sort
      (fun a b -> compare a.group_id b.group_id)
      (Hashtbl.fold (fun _ g acc -> g :: acc) seen [])
  in
  if groups <> [] then begin
    Fmt.pf ppf "  index groups:@.";
    List.iter
      (fun g ->
        let members =
          Array.fold_left
            (fun n (m_opt : membership option) ->
              match m_opt with
              | Some m when m.group.group_id = g.group_id -> n + 1
              | _ -> n)
            0 ctx.memberships
        in
        Fmt.pf ppf "    group %d: cat=%a box=%a members=%d stat_columns=%d cache_reuses=%d@."
          g.group_id pp_attr_list g.cat_attrs pp_attr_list g.box_attrs members g.n_stats
          (Telemetry.Counter.value g.g_reuses))
      groups
  end;
  let b = Telemetry.Histogram.snapshot tel_build_hist in
  Fmt.pf ppf "  totals: index_builds=%d (%.3fs) index_reuses=%d index_probes=%d naive_scans=%d@."
    (Telemetry.Counter.value tel_index_build)
    b.Telemetry.total
    (Telemetry.Counter.value tel_index_reuse)
    (Telemetry.Counter.value tel_index_probe)
    (Telemetry.Counter.value tel_naive_scan);
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let family_stats (fam : family) : eval_stats =
  let out = fresh_stats () in
  Array.iter
    (fun m ->
      out.index_builds <- out.index_builds + m.stats.index_builds;
      out.index_probes <- out.index_probes + m.stats.index_probes;
      out.naive_scans <- out.naive_scans + m.stats.naive_scans;
      out.uniform_hits <- out.uniform_hits + m.stats.uniform_hits;
      out.index_reuses <- out.index_reuses + m.stats.index_reuses;
      out.build_seconds <- out.build_seconds +. m.stats.build_seconds)
    fam.members;
  out
