(** Pluggable aggregate evaluators (Section 6): the naive O(n)-per-query
    scanner and the indexed evaluator driving the Section 5.3/5.4 index
    structures.  Both agree exactly with the reference interpreter. *)

open Sgl_relalg

type eval_stats = {
  mutable index_builds : int;
  mutable index_probes : int;
  mutable naive_scans : int;
  mutable uniform_hits : int;
  mutable index_reuses : int;
      (** structures carried over from the previous tick by the cross-tick
          cache instead of being rebuilt *)
  mutable build_seconds : float;
}

type t = {
  name : string;
  begin_tick : ?delta:Delta.t -> ?cols:Colstore.t -> Tuple.t array -> unit;
      (** Open a tick over [units].  [delta] summarises what changed since
          the previous tick's unit array; when present and non-structural,
          the indexed evaluators revalidate cached structures against it
          instead of dropping them.  Omitting [delta] is always sound: the
          cache goes cold and everything rebuilds.  [cols], when given, is
          a columnar mirror of [units] (same rows, same order): index
          builds then scan contiguous typed columns instead of boxed rows.
          It is purely an access-path hint — results are bit-identical
          with or without it, and a mirror that does not cover [units] is
          ignored. *)
  eval_agg : agg_id:int -> rows:Tuple.t array -> rands:(int -> int) array -> Value.t array;
  apply_aoe :
    pred:Predicate.t ->
    updates:(int * Expr.t) list ->
    contributors:Tuple.t array ->
    contributor_rands:(int -> int) array ->
    acc:Combine.Acc.t ->
    unit;
  stats : eval_stats;
}

val fresh_stats : unit -> eval_stats
val naive : schema:Schema.t -> aggregates:Aggregate.t array -> t

(** [indexed ?share ~schema ~aggregates] builds the Section 5.3/5.4
    evaluator.  With [share] (the default), instances whose access paths
    agree share one index group — Section 6's "all divisible queries share
    the same range tree"; [~share:false] gives every instance private trees
    (the ablation baseline). *)
val indexed : ?share:bool -> schema:Schema.t -> aggregates:Aggregate.t array -> unit -> t

(** A family of indexed evaluators over one shared per-tick index cache,
    for the parallel decision phase: one member per chunk of the unit
    array, each safe to drive from its own domain *after* [prepare] has
    run on the coordinating domain.

    [prepare ?delta units] publishes the tick's snapshot: it opens the
    tick on the shared cache (revalidating against [delta] when given,
    dropping everything otherwise), then eagerly builds every index
    structure any member could reach (group indexes, categorical
    partitions, divisible / enumeration / kD sub-structures), so the
    members' queries never write shared state.  Multi-member families are
    constructed memoization-free: should a structure somehow be missed,
    they rebuild it call-locally rather than racing to publish it.  A
    single-member family memoizes like the sequential evaluator — only
    concurrent members need the write-free guarantee. *)
type family = {
  members : t array;
  prepare : ?delta:Delta.t -> ?cols:Colstore.t -> Tuple.t array -> unit;
}

val indexed_family :
  ?share:bool -> schema:Schema.t -> aggregates:Aggregate.t array -> chunks:int -> unit -> family

(** Counter totals across every member (for reporting). *)
val family_stats : family -> eval_stats

(** [explain ~schema ~aggregates ()] renders the compiled plan of every
    aggregate instance — chosen strategy, index group, access path —
    annotated with the live telemetry counters the evaluators have
    accumulated in {!Sgl_util.Telemetry.default} (batches, probes, rows
    scanned, prefix-aggregate vs. enumeration vs. sweep vs. uniform
    answers, and cache reuse per group).  Group assignment is
    deterministic, so the mapping matches any evaluator built with the
    same [share]/[schema]/[aggregates].  With telemetry disabled all
    counters render as zero. *)
val explain : ?share:bool -> schema:Schema.t -> aggregates:Aggregate.t array -> unit -> string
