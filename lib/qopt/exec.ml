(* Set-at-a-time execution of optimized plans (Section 5).

   One tick's decision + action work for one script: every unit running the
   script becomes a full-width row (schema attributes plus bind registers),
   the plan partitions and extends the row set, and [Act] leaves emit
   effects into a combination accumulator.  All aggregate evaluation and
   area-effect combination is delegated to the pluggable [Eval.t]. *)

open Sgl_relalg
open Sgl_lang

type compiled = {
  prog : Core_ir.program;
  plans : (string * Plan.t) list; (* per entry script *)
  width : int; (* register count for row allocation *)
  rewrites : Rewrite.rewrite_stats;
}

let compile ?(optimize = true) ?(prove = fun (_ : string) (_ : Expr.t) -> None)
    (prog : Core_ir.program) : compiled =
  let schema = prog.Core_ir.schema in
  let stats = Rewrite.no_stats () in
  let plans =
    List.map
      (fun (s : Core_ir.script) ->
        let plan = Plan.of_core schema s.Core_ir.body in
        let plan =
          if optimize then
            Rewrite.optimize ~stats ~prove:(prove s.Core_ir.name) ~aggs:prog.Core_ir.aggregates
              plan
          else plan
        in
        (s.Core_ir.name, plan))
      prog.Core_ir.scripts
  in
  let width =
    List.fold_left (fun acc (_, p) -> max acc (Plan.width schema p)) (Schema.arity schema) plans
  in
  { prog; plans; width; rewrites = stats }

let find_plan (c : compiled) name = List.assoc_opt name c.plans

exception Exec_error of string

(* Telemetry: rows entering each script group's plan and rows surviving to
   an [Act] leaf — the executor-level selectivity EXPLAIN reports next to
   the per-aggregate counters.  Gated on one atomic load when disabled. *)
let tel_rows_in = Sgl_util.Telemetry.counter "exec.group_rows_in"
let tel_rows_out = Sgl_util.Telemetry.counter "exec.group_rows_out"

(* A full-width working row for a unit: schema values copied, registers
   zeroed. *)
let make_row (width : int) (unit_row : Tuple.t) : Tuple.t =
  let row = Array.make width (Value.Int 0) in
  Array.blit unit_row 0 row 0 (Array.length unit_row);
  row

type group = {
  script : string;
  members : int array; (* indexes into the tick's unit array *)
}

(* Execute one plan over its rows, emitting effects into [acc]. *)
let run_plan ~(schema : Schema.t) ~(evaluator : Eval.t) ~(find_key : int -> Tuple.t option)
    ~(acc : Combine.Acc.t) ~(plan : Plan.t) ~(rows : Tuple.t array)
    ~(rands : (int -> int) array) : unit =
  let apply_direct (row : Tuple.t) (rand : int -> int) (c : Core_ir.effect_clause) =
    let emit target =
      let key = Tuple.key schema target in
      let ctx = { Expr.u = row; e = Some target; rand } in
      List.iter
        (fun (attr, expr) -> Combine.Acc.add_attr acc ~base:target ~key attr (Expr.eval ctx expr))
        c.Core_ir.updates
    in
    match c.Core_ir.target with
    | Core_ir.Self -> emit row
    | Core_ir.Key key_expr -> begin
      let key = Expr.eval_int { Expr.u = row; e = None; rand } key_expr in
      match find_key key with
      | None -> ()
      | Some target -> emit target
    end
    | Core_ir.All _ -> assert false
  in
  let rec go (plan : Plan.t) (sel : int array) : unit =
    if Array.length sel > 0 then begin
      match plan with
      | Plan.Nop -> ()
      | Plan.Bind (slot, Plan.Bind_expr e, k) ->
        Array.iter
          (fun i ->
            let row = rows.(i) in
            row.(slot) <- Expr.eval { Expr.u = row; e = None; rand = rands.(i) } e)
          sel;
        go k sel
      | Plan.Bind (slot, Plan.Bind_agg agg_id, k) ->
        let batch_rows = Array.map (fun i -> rows.(i)) sel in
        let batch_rands = Array.map (fun i -> rands.(i)) sel in
        let eval () = evaluator.Eval.eval_agg ~agg_id ~rows:batch_rows ~rands:batch_rands in
        (* Per-operator span; the name is only built when tracing. *)
        let values =
          if Sgl_util.Telemetry.Span.enabled () then
            Sgl_util.Telemetry.Span.with_ ~cat:"op" (Printf.sprintf "agg:%d" agg_id) eval
          else eval ()
        in
        Array.iteri (fun j i -> rows.(i).(slot) <- values.(j)) sel;
        go k sel
      | Plan.Select (c, a, b) ->
        let yes, no =
          Array.to_list sel
          |> List.partition (fun i ->
                 Expr.eval_bool { Expr.u = rows.(i); e = None; rand = rands.(i) } c)
        in
        go a (Array.of_list yes);
        go b (Array.of_list no)
      | Plan.Both plans -> List.iter (fun p -> go p sel) plans
      | Plan.Act clauses ->
        Sgl_util.Telemetry.Counter.add tel_rows_out (Array.length sel);
        List.iter
          (fun (c : Core_ir.effect_clause) ->
            match c.Core_ir.target with
            | Core_ir.Self | Core_ir.Key _ ->
              Array.iter (fun i -> apply_direct rows.(i) rands.(i) c) sel
            | Core_ir.All pred ->
              let contributors = Array.map (fun i -> rows.(i)) sel in
              let contributor_rands = Array.map (fun i -> rands.(i)) sel in
              evaluator.Eval.apply_aoe ~pred ~updates:c.Core_ir.updates ~contributors
                ~contributor_rands ~acc)
          clauses
    end
  in
  go plan (Array.init (Array.length rows) (fun i -> i))

(* The tick's key table: every unit addressable by key for [Core_ir.Key]
   targets.  Built once per tick; read-only afterwards, so worker domains
   may probe it concurrently. *)
let key_table (schema : Schema.t) (units : Tuple.t array) : int -> Tuple.t option =
  let table = Hashtbl.create (Array.length units * 2) in
  Array.iter (fun row -> Hashtbl.replace table (Tuple.key schema row) row) units;
  fun k -> Hashtbl.find_opt table k

(* One group's decision+action work: materialize the members' working rows
   and random streams, then run the group's plan into [acc]. *)
let run_group (c : compiled) ~(schema : Schema.t) ~(evaluator : Eval.t)
    ~(find_key : int -> Tuple.t option) ~(acc : Combine.Acc.t) ~(units : Tuple.t array)
    ~(rand_for : key:int -> int -> int) (g : group) : unit =
  Sgl_util.Fault_inject.hit "exec.group";
  Sgl_util.Telemetry.Counter.add tel_rows_in (Array.length g.members);
  match find_plan c g.script with
  | None -> raise (Exec_error (Fmt.str "no plan for script %S" g.script))
  | Some plan ->
    let body () =
      let rows = Array.map (fun i -> make_row c.width units.(i)) g.members in
      let rands =
        Array.map
          (fun i ->
            let key = Tuple.key schema units.(i) in
            rand_for ~key)
          g.members
      in
      run_plan ~schema ~evaluator ~find_key ~acc ~plan ~rows ~rands
    in
    if Sgl_util.Telemetry.Span.enabled () then
      Sgl_util.Telemetry.Span.with_ ~cat:"exec" ("group:" ^ g.script) body
    else body ()

(* Run a full decision+action pass: each group's script over its members.
   Returns the combined effects of the tick, ready for post-processing.
   [delta] (what changed since the previous tick's unit array) is passed
   straight to the evaluator, which may use it to keep cached index
   structures warm; omitting it only costs rebuilds, never correctness. *)
let run_tick ?delta ?cols (c : compiled) ~(evaluator : Eval.t) ~(units : Tuple.t array)
    ~(groups : group list) ~(rand_for : key:int -> int -> int) : Combine.Acc.t =
  let schema = c.prog.Core_ir.schema in
  evaluator.Eval.begin_tick ?delta ?cols units;
  let find_key = key_table schema units in
  let acc = Combine.Acc.create schema in
  List.iter (run_group c ~schema ~evaluator ~find_key ~acc ~units ~rand_for) groups;
  acc

(* The parallel decision phase.  The unit array is cut into
   [Array.length family.members] contiguous chunks; chunk [k] evaluates
   the intersection of every group with its range on lane [k mod lanes],
   probing the read-only snapshot [family.prepare] just published.  Each
   chunk accumulates into a private [Combine.Acc]; the per-chunk bags are
   folded left-to-right with the accumulator-level (+), whose
   associativity and commutativity make the merged result independent of
   how units were chunked — so any chunk count, including 1, reproduces
   the sequential tick bit-for-bit on integral workloads. *)
let run_tick_parallel ?delta ?cols (c : compiled) ~(pool : Sgl_util.Domain_pool.t)
    ~(family : Eval.family) ~(units : Tuple.t array) ~(groups : group list)
    ~(rand_for : key:int -> int -> int) : Combine.Acc.t =
  let schema = c.prog.Core_ir.schema in
  family.Eval.prepare ?delta ?cols units;
  let find_key = key_table schema units in
  let chunks = Array.length family.Eval.members in
  let ranges = Sgl_util.Domain_pool.chunk_ranges ~n:(Array.length units) ~chunks in
  let run_chunk k =
    let lo, hi = ranges.(k) in
    let evaluator = family.Eval.members.(k) in
    let acc = Combine.Acc.create schema in
    List.iter
      (fun g ->
        (* Group membership need not be sorted: filter, don't slice. *)
        let mine = Array.of_list (List.filter (fun i -> lo <= i && i < hi)
                                    (Array.to_list g.members)) in
        if Array.length mine > 0 then
          run_group c ~schema ~evaluator ~find_key ~acc ~units ~rand_for
            { g with members = mine })
      groups;
    acc
  in
  let accs = Sgl_util.Domain_pool.parallel_map pool run_chunk (Array.init chunks (fun k -> k)) in
  let out = Combine.Acc.create schema in
  Array.iter (fun acc -> Combine.Acc.merge_into ~dst:out acc) accs;
  out

(* ------------------------------------------------------------------ *)
(* Fused execution: the same ticks, driven by specialized kernels.

   [fuse] lowers every plan through [Loop_ir.Lower] and compiles the loop
   programs once; a fused tick then runs each group through its kernel
   instead of walking the plan tree.  The evaluator stays a run-time
   parameter, so fused execution composes with the shared index cache and
   with [Degrade]'s demotion to a weaker evaluator without recompiling. *)

type fused = (string * Loop_ir.Compile.kernel) list

let tel_fused_kernels = Sgl_util.Telemetry.counter "fused.kernels"
let tel_fused_rows = Sgl_util.Telemetry.counter "fused.rows"

let fuse ?(fold = fun (_ : string) (_ : Expr.t) -> None) (c : compiled) : fused =
  let schema = c.prog.Core_ir.schema in
  List.map
    (fun (name, plan) ->
      (name, Loop_ir.Compile.compile ~fold:(fold name) ~schema (Loop_ir.Lower.lower plan)))
    c.plans

(* Mirrors [run_group]: the ["exec.group"] injection point fires first and
   with the same call count as under interpreted execution, so an
   [At_count] fault quarantines the same script whichever backend runs the
   tick; ["fused.kernel"] fires only on this path. *)
let run_group_fused ?cols (c : compiled) ~(schema : Schema.t) ~(fused : fused)
    ~(evaluator : Eval.t) ~(find_key : int -> Tuple.t option) ~(acc : Combine.Acc.t)
    ~(units : Tuple.t array) ~(rand_for : key:int -> int -> int) (g : group) : unit =
  Sgl_util.Fault_inject.hit "exec.group";
  Sgl_util.Telemetry.Counter.add tel_rows_in (Array.length g.members);
  match List.assoc_opt g.script fused with
  | None -> raise (Exec_error (Fmt.str "no fused kernel for script %S" g.script))
  | Some kernel ->
    let body () =
      Sgl_util.Fault_inject.hit "fused.kernel";
      Sgl_util.Telemetry.Counter.add tel_fused_kernels 1;
      Sgl_util.Telemetry.Counter.add tel_fused_rows (Array.length g.members);
      let rows = Array.map (fun i -> make_row c.width units.(i)) g.members in
      let rands =
        Array.map
          (fun i ->
            let key = Tuple.key schema units.(i) in
            rand_for ~key)
          g.members
      in
      kernel
        { Loop_ir.Compile.evaluator; find_key; acc; cols; ids = g.members }
        ~rows ~rands
    in
    if Sgl_util.Telemetry.Span.enabled () then
      Sgl_util.Telemetry.Span.with_ ~cat:"exec" ("kernel:" ^ g.script) body
    else body ()

let run_tick_fused ?delta ?cols (c : compiled) ~(fused : fused) ~(evaluator : Eval.t)
    ~(units : Tuple.t array) ~(groups : group list) ~(rand_for : key:int -> int -> int) :
    Combine.Acc.t =
  let schema = c.prog.Core_ir.schema in
  evaluator.Eval.begin_tick ?delta ?cols units;
  let find_key = key_table schema units in
  let acc = Combine.Acc.create schema in
  List.iter
    (run_group_fused ?cols c ~schema ~fused ~evaluator ~find_key ~acc ~units ~rand_for)
    groups;
  acc

(* ------------------------------------------------------------------ *)
(* Guarded (quarantine-mode) execution.

   Each group accumulates into a *private* effect bag merged into the
   tick's accumulator only when the whole group succeeds, so a group that
   raises mid-plan contributes nothing at all — the per-group transactional
   discipline behind the [Quarantine_script] fault policy.  Because bags
   merge through the combination operator (+), a fault-free guarded tick is
   bit-identical to the unguarded one on integral workloads. *)

type group_fault = {
  gf_script : string;
  gf_exn : exn;
  gf_backtrace : Printexc.raw_backtrace;
  gf_suppressed : int; (* further failures of the same group on other chunks *)
}

let run_tick_guarded ?delta ?cols (c : compiled) ~(evaluator : Eval.t) ~(units : Tuple.t array)
    ~(groups : group list) ~(rand_for : key:int -> int -> int) :
    Combine.Acc.t * group_fault list =
  let schema = c.prog.Core_ir.schema in
  evaluator.Eval.begin_tick ?delta ?cols units;
  let find_key = key_table schema units in
  let acc = Combine.Acc.create schema in
  let faults = ref [] in
  List.iter
    (fun g ->
      let gacc = Combine.Acc.create schema in
      match run_group c ~schema ~evaluator ~find_key ~acc:gacc ~units ~rand_for g with
      | () -> Combine.Acc.merge_into ~dst:acc gacc
      | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        faults :=
          { gf_script = g.script; gf_exn = e; gf_backtrace = bt; gf_suppressed = 0 } :: !faults)
    groups;
  (acc, List.rev !faults)

(* Guarded fused tick: the same per-group transactional discipline as
   [run_tick_guarded], driving the kernels.  A raising kernel contributes
   nothing and is reported under its script name, so [Quarantine_script]
   behaves identically whichever backend runs the tick. *)
let run_tick_fused_guarded ?delta ?cols (c : compiled) ~(fused : fused) ~(evaluator : Eval.t)
    ~(units : Tuple.t array) ~(groups : group list) ~(rand_for : key:int -> int -> int) :
    Combine.Acc.t * group_fault list =
  let schema = c.prog.Core_ir.schema in
  evaluator.Eval.begin_tick ?delta ?cols units;
  let find_key = key_table schema units in
  let acc = Combine.Acc.create schema in
  let faults = ref [] in
  List.iter
    (fun g ->
      let gacc = Combine.Acc.create schema in
      match
        run_group_fused ?cols c ~schema ~fused ~evaluator ~find_key ~acc:gacc ~units ~rand_for g
      with
      | () -> Combine.Acc.merge_into ~dst:acc gacc
      | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        faults :=
          { gf_script = g.script; gf_exn = e; gf_backtrace = bt; gf_suppressed = 0 } :: !faults)
    groups;
  (acc, List.rev !faults)

(* One chunk's verdict on one group. *)
type chunk_outcome =
  | Chunk_skip (* no members of the group in this chunk *)
  | Chunk_ok of Combine.Acc.t
  | Chunk_failed of exn * Printexc.raw_backtrace

let run_tick_parallel_guarded ?delta ?cols (c : compiled) ~(pool : Sgl_util.Domain_pool.t)
    ~(family : Eval.family) ~(units : Tuple.t array) ~(groups : group list)
    ~(rand_for : key:int -> int -> int) : Combine.Acc.t * group_fault list =
  let schema = c.prog.Core_ir.schema in
  family.Eval.prepare ?delta ?cols units;
  let find_key = key_table schema units in
  let chunks = Array.length family.Eval.members in
  let ranges = Sgl_util.Domain_pool.chunk_ranges ~n:(Array.length units) ~chunks in
  let groups_arr = Array.of_list groups in
  let run_chunk k =
    let lo, hi = ranges.(k) in
    let evaluator = family.Eval.members.(k) in
    Array.map
      (fun g ->
        let mine =
          Array.of_list
            (List.filter (fun i -> lo <= i && i < hi) (Array.to_list g.members))
        in
        if Array.length mine = 0 then Chunk_skip
        else begin
          let gacc = Combine.Acc.create schema in
          match
            run_group c ~schema ~evaluator ~find_key ~acc:gacc ~units ~rand_for
              { g with members = mine }
          with
          | () -> Chunk_ok gacc
          | exception e -> Chunk_failed (e, Printexc.get_raw_backtrace ())
        end)
      groups_arr
  in
  let per_chunk =
    Sgl_util.Domain_pool.parallel_map pool run_chunk (Array.init chunks (fun k -> k))
  in
  (* A group's bag merges only when every chunk of it succeeded: a group
     failing on any chunk contributes nothing from any chunk, so quarantine
     semantics do not depend on where the chunk boundaries fell. *)
  let acc = Combine.Acc.create schema in
  let faults = ref [] in
  Array.iteri
    (fun gi g ->
      let failures = ref [] in
      Array.iter
        (fun outcomes ->
          match outcomes.(gi) with
          | Chunk_skip | Chunk_ok _ -> ()
          | Chunk_failed (e, bt) -> failures := (e, bt) :: !failures)
        per_chunk;
      match List.rev !failures with
      | [] ->
        Array.iter
          (fun outcomes ->
            match outcomes.(gi) with
            | Chunk_ok gacc -> Combine.Acc.merge_into ~dst:acc gacc
            | Chunk_skip | Chunk_failed _ -> ())
          per_chunk
      | (e, bt) :: rest ->
        faults :=
          { gf_script = g.script; gf_exn = e; gf_backtrace = bt;
            gf_suppressed = List.length rest }
          :: !faults)
    groups_arr;
  (acc, List.rev !faults)
