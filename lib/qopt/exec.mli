(** Set-at-a-time execution of optimized plans: one tick's decision and
    action phases for the scripted unit groups, with effects combined into
    a {!Sgl_relalg.Combine.Acc}. *)

open Sgl_relalg
open Sgl_lang

type compiled = {
  prog : Core_ir.program;
  plans : (string * Plan.t) list;
  width : int;
  rewrites : Rewrite.rewrite_stats;
}

exception Exec_error of string

(** Translate and (by default) optimize every entry script.  [prove],
    indexed by script name, feeds interval facts into the rewrite's
    condition pruning (see {!Rewrite.simplify}); validation must then run
    with the same prover. *)
val compile :
  ?optimize:bool -> ?prove:(string -> Expr.t -> bool option) -> Core_ir.program -> compiled

val find_plan : compiled -> string -> Plan.t option

(** Full-width working row for a unit. *)
val make_row : int -> Tuple.t -> Tuple.t

type group = {
  script : string;
  members : int array; (* indexes into the tick's unit array *)
}

val run_plan :
  schema:Schema.t ->
  evaluator:Eval.t ->
  find_key:(int -> Tuple.t option) ->
  acc:Combine.Acc.t ->
  plan:Plan.t ->
  rows:Tuple.t array ->
  rands:(int -> int) array ->
  unit

(** Run every group's script; raises {!Exec_error} if a group names an
    unknown script.  [delta] summarises what changed since the previous
    tick's unit array and is forwarded to [evaluator.begin_tick] so the
    cross-tick index cache can revalidate instead of rebuilding; omitting
    it is always sound (cold tick).  [cols], when given, is the columnar
    mirror of [units]: it is forwarded to the evaluator (index builds scan
    typed columns) and, on the fused paths, into the kernels (float binds
    become column loads).  Purely an access-path hint — ticks are
    bit-identical with or without it. *)
val run_tick :
  ?delta:Delta.t ->
  ?cols:Colstore.t ->
  compiled ->
  evaluator:Eval.t ->
  units:Tuple.t array ->
  groups:group list ->
  rand_for:(key:int -> int -> int) ->
  Combine.Acc.t

(** [run_tick_parallel c ~pool ~family ~units ~groups ~rand_for] is
    [run_tick] with the decision phase fanned out over [pool]: the unit
    array is split into one contiguous chunk per family member, each chunk
    evaluated against the read-only index snapshot published by
    [family.prepare], and the per-chunk effect bags folded with the
    combination operator (+).  Because (+) is associative and commutative
    and the chunking is a pure function of [units], the result is
    independent of the chunk count and of domain scheduling.  [delta] is
    forwarded to [family.prepare] like {!run_tick}'s. *)
val run_tick_parallel :
  ?delta:Delta.t ->
  ?cols:Colstore.t ->
  compiled ->
  pool:Sgl_util.Domain_pool.t ->
  family:Eval.family ->
  units:Tuple.t array ->
  groups:group list ->
  rand_for:(key:int -> int -> int) ->
  Combine.Acc.t

(** Fused execution backend: every script's plan lowered through
    {!Loop_ir.Lower} and compiled once into a closure-composed kernel. *)
type fused = (string * Loop_ir.Compile.kernel) list

(** Lower and compile every plan of [compiled].  Done once per scenario;
    the evaluator remains a run-time parameter of the kernels, so the same
    [fused] serves every tick and survives [Degrade] demotion.  [fold],
    indexed by script name, is the interval-fact constant-folding oracle
    handed to {!Loop_ir.Compile.compile}. *)
val fuse : ?fold:(string -> Expr.t -> Value.t option) -> compiled -> fused

(** [run_tick] driven by fused kernels instead of plan walking.
    Bit-identical to {!run_tick} with the same evaluator: kernels mirror
    the interpreter's expression semantics exactly, and the reordering
    introduced by operator fusion only permutes contributions to the
    commutative ⊕-accumulator (rule V003 validates each lowering).  Fires
    the ["fused.kernel"] injection point per group, after ["exec.group"]. *)
val run_tick_fused :
  ?delta:Delta.t ->
  ?cols:Colstore.t ->
  compiled ->
  fused:fused ->
  evaluator:Eval.t ->
  units:Tuple.t array ->
  groups:group list ->
  rand_for:(key:int -> int -> int) ->
  Combine.Acc.t

(** One script group's failure under guarded execution.  [gf_suppressed]
    counts further failures of the same group on other chunks of a
    parallel tick. *)
type group_fault = {
  gf_script : string;
  gf_exn : exn;
  gf_backtrace : Printexc.raw_backtrace;
  gf_suppressed : int;
}

(** [run_tick] with per-group guards: every group accumulates into a
    private effect bag merged only on success, so a raising group
    contributes nothing and execution continues with the remaining groups.
    Returns the combined effects of the surviving groups plus one
    {!group_fault} per failed group, in group order.  Fault-free, the
    result is bit-identical to {!run_tick} on integral workloads (bags
    merge through the associative-commutative (+)). *)
val run_tick_guarded :
  ?delta:Delta.t ->
  ?cols:Colstore.t ->
  compiled ->
  evaluator:Eval.t ->
  units:Tuple.t array ->
  groups:group list ->
  rand_for:(key:int -> int -> int) ->
  Combine.Acc.t * group_fault list

(** Guarded variant of {!run_tick_fused}: per-group private bags, a
    raising kernel reported under its script name — the exact fault
    surface of {!run_tick_guarded}, so quarantine decisions do not depend
    on which backend ran the tick. *)
val run_tick_fused_guarded :
  ?delta:Delta.t ->
  ?cols:Colstore.t ->
  compiled ->
  fused:fused ->
  evaluator:Eval.t ->
  units:Tuple.t array ->
  groups:group list ->
  rand_for:(key:int -> int -> int) ->
  Combine.Acc.t * group_fault list

(** Guarded variant of {!run_tick_parallel}.  A group merges only when
    every chunk of it succeeded, so quarantine semantics are independent
    of chunk boundaries; a group failing on several chunks yields one
    fault with the extra failures counted in [gf_suppressed]. *)
val run_tick_parallel_guarded :
  ?delta:Delta.t ->
  ?cols:Colstore.t ->
  compiled ->
  pool:Sgl_util.Domain_pool.t ->
  family:Eval.family ->
  units:Tuple.t array ->
  groups:group list ->
  rand_for:(key:int -> int -> int) ->
  Combine.Acc.t * group_fault list
