(* The fused loop IR: imperative loop programs lowered from optimized
   plans, compiled once per scenario into closure-composed kernels.

   [Plan.t] execution ([Exec.run_plan]) is tree-at-a-time: each node loops
   over the live selection, every expression evaluation allocates an
   [Expr.ctx], and every [Select] partitions through intermediate lists.
   The loop IR keeps the same batch boundaries the pluggable evaluator
   needs — aggregate binds and area-of-effect combination — but fuses all
   straight-line work (register binds, self/key effect emissions) into
   single passes, and [Compile] turns each pass into one composed closure
   specialized at startup.

   Bit-identity with the interpreter is a hard requirement (the
   conformance harness diffs unit states after 50 ticks), so every closure
   mirrors [Expr.eval] operation-for-operation: same error messages, same
   short-circuiting, same tie-breaking in min/max, and constant folding
   only for [Random]-free subtrees whose value cannot depend on the row —
   with a run-time fallback when folding itself raises, so errors surface
   where the interpreter would raise them. *)

open Sgl_relalg
open Sgl_lang

type step =
  | Bind_col of int * Expr.t
  | Emit of Core_ir.effect_clause

type t =
  | Halt
  | Pass of step list * t
  | Agg_fill of { slot : int; agg_id : int; next : t }
  | Aoe of Core_ir.effect_clause * t
  | Partition of Expr.t * t * t
  | Fanout of t list

(* ------------------------------------------------------------------ *)
(* Inspection *)

let guarded_clauses (p : t) : ((bool * Expr.t) list * Core_ir.effect_clause) list =
  let out = ref [] in
  let rec go guards = function
    | Halt -> ()
    | Pass (steps, k) ->
      List.iter
        (function
          | Emit c -> out := (List.rev guards, c) :: !out
          | Bind_col _ -> ())
        steps;
      go guards k
    | Agg_fill { next; _ } -> go guards next
    | Aoe (c, k) ->
      out := (List.rev guards, c) :: !out;
      go guards k
    | Partition (c, a, b) ->
      go ((true, c) :: guards) a;
      go ((false, c) :: guards) b
    | Fanout ps -> List.iter (go guards) ps
  in
  go [] p;
  List.rev !out

type stats = {
  passes : int;
  fused_steps : int;
  agg_fills : int;
  partitions : int;
  aoes : int;
}

let stats (p : t) : stats =
  let s = ref { passes = 0; fused_steps = 0; agg_fills = 0; partitions = 0; aoes = 0 } in
  let rec go = function
    | Halt -> ()
    | Pass (steps, k) ->
      s := { !s with passes = !s.passes + 1; fused_steps = !s.fused_steps + List.length steps };
      go k
    | Agg_fill { next; _ } ->
      s := { !s with agg_fills = !s.agg_fills + 1 };
      go next
    | Aoe (_, k) ->
      s := { !s with aoes = !s.aoes + 1 };
      go k
    | Partition (_, a, b) ->
      s := { !s with partitions = !s.partitions + 1 };
      go a;
      go b
    | Fanout ps -> List.iter go ps
  in
  go p;
  !s

let pp_step ppf = function
  | Bind_col (slot, e) -> Fmt.pf ppf "r%d := %a" slot Expr.pp e
  | Emit c -> begin
    match c.Core_ir.target with
    | Core_ir.Self -> Fmt.pf ppf "emit self"
    | Core_ir.Key e -> Fmt.pf ppf "emit key(%a)" Expr.pp e
    | Core_ir.All _ -> Fmt.pf ppf "emit all(?)"
  end

let rec pp ppf = function
  | Halt -> Fmt.pf ppf "halt"
  | Pass (steps, k) ->
    Fmt.pf ppf "@[<v 2>pass {%a}@]@,%a" Fmt.(list ~sep:(any "; ") pp_step) steps pp k
  | Agg_fill { slot; agg_id; next } -> Fmt.pf ppf "r%d := agg:%d@,%a" slot agg_id pp next
  | Aoe (_, k) -> Fmt.pf ppf "aoe@,%a" pp k
  | Partition (c, a, b) ->
    Fmt.pf ppf "@[<v 2>partition %a@,then: %a@,else: %a@]" Expr.pp c pp a pp b
  | Fanout ps -> Fmt.pf ppf "@[<v 2>fanout@,%a@]" Fmt.(list ~sep:cut pp) ps

(* ------------------------------------------------------------------ *)
(* Lowering *)

module Lower = struct
  (* Prepend steps to a program, merging into an immediately following
     pass so adjacent straight-line work fuses into one loop. *)
  let pass (steps : step list) (next : t) : t =
    match (steps, next) with
    | [], k -> k
    | steps, Pass (more, k) -> Pass (steps @ more, k)
    | steps, k -> Pass (steps, k)

  (* One [Act]: self/key clauses become fused [Emit] steps; area clauses
     become batch [Aoe] ops.  Splitting a clause list this way reorders
     only the order in which contributions reach the ⊕-accumulator, which
     is commutative — V003 checks the clause multiset survives. *)
  let act (clauses : Core_ir.effect_clause list) : t =
    let emits, aoes =
      List.partition
        (fun (c : Core_ir.effect_clause) ->
          match c.Core_ir.target with
          | Core_ir.Self | Core_ir.Key _ -> true
          | Core_ir.All _ -> false)
        clauses
    in
    let tail = List.fold_right (fun c k -> Aoe (c, k)) aoes Halt in
    pass (List.map (fun c -> Emit c) emits) tail

  (* [Both] arms run over the same selection; arms that are pure passes
     (no batch boundary, no partition) fuse into a single loop.  Per-row
     order across fused arms differs from per-set order across sequential
     arms, but register writes are row-local, random draws are pure
     per-row functions, and emissions meet a commutative ⊕ — so the fused
     pass computes the same effect bag. *)
  let fanout (progs : t list) : t =
    let progs = List.filter (fun p -> p <> Halt) progs in
    let rec merge = function
      | Pass (s1, Halt) :: Pass (s2, Halt) :: rest -> merge (Pass (s1 @ s2, Halt) :: rest)
      | p :: rest -> p :: merge rest
      | [] -> []
    in
    match merge progs with
    | [] -> Halt
    | [ p ] -> p
    | ps -> Fanout ps

  let rec lower (p : Plan.t) : t =
    match p with
    | Plan.Nop -> Halt
    | Plan.Bind (slot, Plan.Bind_expr e, k) -> pass [ Bind_col (slot, e) ] (lower k)
    | Plan.Bind (slot, Plan.Bind_agg agg_id, k) -> Agg_fill { slot; agg_id; next = lower k }
    | Plan.Select (c, a, b) -> Partition (c, lower a, lower b)
    | Plan.Both plans -> fanout (List.map lower plans)
    | Plan.Act clauses -> act clauses
end

(* ------------------------------------------------------------------ *)
(* Compilation: closure composition with constant folding *)

(* Bind_col / Agg_fill write targets, for the columnar-safety check: the
   kernels may only read attributes straight from the columnar store when
   no step overwrites a schema slot of the working rows (registers live at
   slots >= arity, so in practice this always holds for lowered plans). *)
let rec write_slots (p : t) : int list =
  match p with
  | Halt -> []
  | Pass (steps, k) ->
    List.filter_map (function Bind_col (s, _) -> Some s | Emit _ -> None) steps @ write_slots k
  | Agg_fill { slot; next; _ } -> slot :: write_slots next
  | Aoe (_, k) -> write_slots k
  | Partition (_, a, b) -> write_slots a @ write_slots b
  | Fanout ps -> List.concat_map write_slots ps

(* Every scalar bind in the program, in program order. *)
let rec bind_steps (p : t) : (int * Expr.t) list =
  match p with
  | Halt -> []
  | Pass (steps, k) ->
    List.filter_map (function Bind_col (s, e) -> Some (s, e) | Emit _ -> None) steps
    @ bind_steps k
  | Agg_fill { next; _ } -> bind_steps next
  | Aoe (_, k) -> bind_steps k
  | Partition (_, a, b) -> bind_steps a @ bind_steps b
  | Fanout ps -> List.concat_map bind_steps ps

module Compile = struct
  type env = {
    evaluator : Eval.t;
    find_key : int -> Tuple.t option;
    acc : Combine.Acc.t;
    cols : Colstore.t option;
        (* columnar mirror of the unit array; [None] disables column loads *)
    ids : int array;
        (* unit id (row id in [cols]) of each kernel row, parallel to [rows] *)
  }

  type kernel = env -> rows:Tuple.t array -> rands:(int -> int) array -> unit

  (* A compiled expression: either a value known at compile time, or a
     closure over (row, env tuple, random stream) — the same context
     [Expr.eval] threads, minus the per-call record allocation. *)
  type comp =
    | Known of Value.t
    | Dyn of (Tuple.t -> Tuple.t option -> (int -> int) -> Value.t)

  let dyn = function
    | Known v -> fun _ _ _ -> v
    | Dyn f -> f

  let eval_error fmt = Fmt.kstr (fun s -> raise (Expr.Eval_error s)) fmt

  (* Fold a node whose children are all Known by running its closure with
     dummy context (Known children ignore their arguments).  If the fold
     raises — e.g. [abs] of a vector constant — keep the closure so the
     error is raised at run time, exactly where the interpreter raises. *)
  let no_rand (_ : int) = 0

  let fold_node (run : Tuple.t -> Tuple.t option -> (int -> int) -> Value.t) : comp =
    match run [||] None no_rand with
    | v -> Known v
    | exception _ -> Dyn run

  let fold2 ca cb run =
    match (ca, cb) with
    | Known _, Known _ -> fold_node run
    | _ -> Dyn run

  let fold1 ca run =
    match ca with
    | Known _ -> fold_node run
    | Dyn _ -> Dyn run

  (* [fold] is an external constant-folding oracle (interval facts from
     the analysis layer): when it pins [expr] to a single value the node
     compiles to [Known] outright, including over unit-slot reads the
     structural folder below must treat as dynamic.  The oracle is
     value-level only — it never touches effect-clause structure — so
     lowering validation (V003) is unaffected.  Skipping a [Random] call
     is sound here because the per-row streams are pure in the draw
     index. *)
  let rec compile_expr ?(fold = fun (_ : Expr.t) -> None) (expr : Expr.t) : comp =
    let compile_expr e = compile_expr ~fold e in
    match fold expr with
    | Some v -> Known v
    | None -> begin
      match expr with
      | Expr.Const v -> Known v
      | Expr.UAttr i ->
      Dyn
        (fun u _ _ ->
          if i >= Array.length u then eval_error "unit slot %d out of range" i;
          u.(i))
    | Expr.EAttr i ->
      Dyn
        (fun _ e _ ->
          match e with
          | None -> eval_error "e.* reference outside an aggregate or effect body"
          | Some e ->
            if i >= Array.length e then eval_error "env attribute %d out of range" i;
            e.(i))
    | Expr.Binop (op, a, b) ->
      let ca = compile_expr a and cb = compile_expr b in
      let fa = dyn ca and fb = dyn cb in
      fold2 ca cb (fun u e r -> Expr.apply_binop op (fa u e r) (fb u e r))
    | Expr.Cmp (op, a, b) ->
      let ca = compile_expr a and cb = compile_expr b in
      let fa = dyn ca and fb = dyn cb in
      fold2 ca cb (fun u e r -> Value.Bool (Expr.apply_cmp op (fa u e r) (fb u e r)))
    | Expr.And (a, b) ->
      let ca = compile_expr a and cb = compile_expr b in
      let fa = dyn ca and fb = dyn cb in
      fold2 ca cb (fun u e r -> Value.Bool (Value.to_bool (fa u e r) && Value.to_bool (fb u e r)))
    | Expr.Or (a, b) ->
      let ca = compile_expr a and cb = compile_expr b in
      let fa = dyn ca and fb = dyn cb in
      fold2 ca cb (fun u e r -> Value.Bool (Value.to_bool (fa u e r) || Value.to_bool (fb u e r)))
    | Expr.Not a ->
      let ca = compile_expr a in
      let fa = dyn ca in
      fold1 ca (fun u e r -> Value.Bool (not (Value.to_bool (fa u e r))))
    | Expr.Neg a ->
      let ca = compile_expr a in
      let fa = dyn ca in
      fold1 ca (fun u e r -> Value.neg (fa u e r))
    | Expr.VecOf (a, b) ->
      let ca = compile_expr a and cb = compile_expr b in
      let fa = dyn ca and fb = dyn cb in
      fold2 ca cb (fun u e r -> Value.make_vec (fa u e r) (fb u e r))
    | Expr.VecX a ->
      let ca = compile_expr a in
      let fa = dyn ca in
      fold1 ca (fun u e r -> Value.vec_x (fa u e r))
    | Expr.VecY a ->
      let ca = compile_expr a in
      let fa = dyn ca in
      fold1 ca (fun u e r -> Value.vec_y (fa u e r))
    | Expr.Abs a ->
      let ca = compile_expr a in
      let fa = dyn ca in
      fold1 ca (fun u e r ->
          match fa u e r with
          | Value.Int i -> Value.Int (abs i)
          | Value.Float f -> Value.Float (Float.abs f)
          | v -> eval_error "abs of non-number %a" Value.pp v)
    | Expr.Sqrt a ->
      let ca = compile_expr a in
      let fa = dyn ca in
      fold1 ca (fun u e r -> Value.Float (sqrt (Value.to_float (fa u e r))))
    | Expr.MinOf (a, b) ->
      let ca = compile_expr a and cb = compile_expr b in
      let fa = dyn ca and fb = dyn cb in
      fold2 ca cb (fun u e r ->
          let va = fa u e r and vb = fb u e r in
          if Value.compare_num va vb <= 0 then va else vb)
    | Expr.MaxOf (a, b) ->
      let ca = compile_expr a and cb = compile_expr b in
      let fa = dyn ca and fb = dyn cb in
      fold2 ca cb (fun u e r ->
          let va = fa u e r and vb = fb u e r in
          if Value.compare_num va vb >= 0 then va else vb)
      | Expr.Random a ->
        (* Never folds structurally: the draw depends on the row's random
           stream.  (The [fold] oracle above may still discharge it when
           the interval pins the draw, e.g. [random(1)].) *)
        let fa = dyn (compile_expr a) in
        Dyn (fun u e r -> Value.Int (r (Value.to_int (fa u e r))))
    end

  (* ---------------------------------------------------------------- *)
  (* Columnar specialization of scalar binds.

     [float_plan schema e] is [Some mk] when [e] is guaranteed to evaluate
     to [Value.Float] through operations whose interpreter semantics on
     float operands are the plain float primitives — then [mk cols] yields
     an unboxed [int -> float] over row ids (or [None] when a referenced
     column is not physically float-typed, e.g. after a mixed-tag
     promotion).  The operation set is deliberately strict so the column
     path is bit-identical to [Expr.eval]:

     - [UAttr j] for schema slots backed by a [Floats] column reads the
       exact stored float ([Value.to_float] of a [Float] is the identity);
     - [+ - * /] on two float operands are [+. -. *. /.] ([Value.add] &c.
       widen through [to_float]; floats never hit the int or vec cases,
       and float division has no zero check);
     - [Neg]/[Abs]/[Sqrt] on a float are [-.], [Float.abs], [sqrt];
     - [MinOf]/[MaxOf] pick an operand by [Float.compare] (exactly
       [Value.compare_num] on floats, NaNs included).

     Everything else — int arithmetic (stays [Int]), [Mod], [Random],
     comparisons, vec ops, [EAttr], register reads — falls back to the
     boxed closure. *)
  let rec float_plan (schema : Schema.t) (e : Expr.t) :
      (Colstore.t -> (int -> float) option) option =
    let un a op =
      match float_plan schema a with
      | None -> None
      | Some pa ->
        Some
          (fun cs ->
            match pa cs with Some fa -> Some (fun id -> op (fa id)) | None -> None)
    in
    let bin a b op =
      match (float_plan schema a, float_plan schema b) with
      | Some pa, Some pb ->
        Some
          (fun cs ->
            match (pa cs, pb cs) with
            | Some fa, Some fb -> Some (fun id -> op (fa id) (fb id))
            | _ -> None)
      | _ -> None
    in
    match e with
    | Expr.Const (Value.Float f) -> Some (fun _ -> Some (fun _ -> f))
    | Expr.UAttr j when j < Schema.arity schema ->
      Some
        (fun cs ->
          match Colstore.col cs j with
          | Colstore.Floats a -> Some (fun id -> Array.unsafe_get a id)
          | _ -> None)
    | Expr.Binop (Expr.Add, a, b) -> bin a b ( +. )
    | Expr.Binop (Expr.Sub, a, b) -> bin a b ( -. )
    | Expr.Binop (Expr.Mul, a, b) -> bin a b ( *. )
    | Expr.Binop (Expr.Div, a, b) -> bin a b ( /. )
    | Expr.Neg a -> un a (fun x -> -.x)
    | Expr.Abs a -> un a Float.abs
    | Expr.Sqrt a -> un a sqrt
    | Expr.MinOf (a, b) -> bin a b (fun x y -> if Float.compare x y <= 0 then x else y)
    | Expr.MaxOf (a, b) -> bin a b (fun x y -> if Float.compare x y >= 0 then x else y)
    | _ -> None

  (* ---------------------------------------------------------------- *)
  (* Steps and programs *)

  (* One step as a per-row closure, resolved against the env once per
     kernel invocation (the env carries the tick's columnar mirror, which
     changes between invocations).  The trailing [int] is the kernel-row
     index, used to map into [env.ids] for column loads. *)
  let compile_step (schema : Schema.t) ~(columnar : bool) ~fold (step : step) :
      env -> Tuple.t -> (int -> int) -> int -> unit =
    match step with
    | Bind_col (slot, e) ->
      let f = dyn (compile_expr ~fold e) in
      let generic : env -> Tuple.t -> (int -> int) -> int -> unit =
        fun _env -> fun row rand _i -> row.(slot) <- f row None rand
      in
      if not columnar then generic
      else begin
        match float_plan schema e with
        | None -> generic
        | Some mk -> (
          fun env ->
            match env.cols with
            | None -> generic env
            | Some cs -> (
              match mk cs with
              | None -> generic env
              | Some g ->
                let ids = env.ids in
                fun row _rand i -> row.(slot) <- Value.Float (g (Array.unsafe_get ids i))))
      end
    | Emit c ->
      let ups =
        Array.of_list
          (List.map (fun (attr, e) -> (attr, dyn (compile_expr ~fold e))) c.Core_ir.updates)
      in
      let emit env (row : Tuple.t) rand (target : Tuple.t) =
        let key = Tuple.key schema target in
        let e = Some target in
        Array.iter
          (fun (attr, f) -> Combine.Acc.add_attr env.acc ~base:target ~key attr (f row e rand))
          ups
      in
      begin
        match c.Core_ir.target with
        | Core_ir.Self -> fun env -> fun row rand _i -> emit env row rand row
        | Core_ir.Key key_expr ->
          let kf = dyn (compile_expr ~fold key_expr) in
          fun env ->
            fun row rand _i ->
              begin
                match env.find_key (Value.to_int (kf row None rand)) with
                | None -> ()
                | Some target -> emit env row rand target
              end
        | Core_ir.All _ -> invalid_arg "Loop_ir.Compile: area clause in a fused pass"
      end

  let compose fs =
    match fs with
    | [] -> fun _ _ _ -> ()
    | [ f ] -> f
    | f :: rest ->
      List.fold_left
        (fun g f row rand i ->
          g row rand i;
          f row rand i)
        f rest

  type state = { env : env; rows : Tuple.t array; rands : (int -> int) array }

  (* A compiled program runs over an explicit selection of row indexes —
     the loop-IR analogue of [Exec.run_plan]'s [sel].  Callers guarantee
     the selection is non-empty, mirroring the interpreter's skip of empty
     sub-plans (in particular: no aggregate batch is ever evaluated over
     zero rows). *)
  let rec compile_prog (schema : Schema.t) ~(columnar : bool) ~fold (p : t) :
      state -> int array -> unit =
    let compile_prog schema = compile_prog schema ~columnar ~fold in
    match p with
    | Halt -> fun _ _ -> ()
    | Pass (steps, k) ->
      let mks = List.map (compile_step schema ~columnar ~fold) steps in
      let kk = compile_prog schema k in
      fun st sel ->
        (* resolve the steps against this invocation's env (columnar
           mirror, accumulator), then run the fused loop *)
        let f = compose (List.map (fun mk -> mk st.env) mks) in
        Array.iter (fun i -> f st.rows.(i) st.rands.(i) i) sel;
        kk st sel
    | Agg_fill { slot; agg_id; next } ->
      let kk = compile_prog schema next in
      fun st sel ->
        let batch_rows = Array.map (fun i -> st.rows.(i)) sel in
        let batch_rands = Array.map (fun i -> st.rands.(i)) sel in
        let eval () =
          st.env.evaluator.Eval.eval_agg ~agg_id ~rows:batch_rows ~rands:batch_rands
        in
        let values =
          if Sgl_util.Telemetry.Span.enabled () then
            Sgl_util.Telemetry.Span.with_ ~cat:"op" (Printf.sprintf "agg:%d" agg_id) eval
          else eval ()
        in
        Array.iteri (fun j i -> st.rows.(i).(slot) <- values.(j)) sel;
        kk st sel
    | Aoe (c, k) ->
      let pred =
        match c.Core_ir.target with
        | Core_ir.All pred -> pred
        | Core_ir.Self | Core_ir.Key _ ->
          invalid_arg "Loop_ir.Compile: non-area clause in an Aoe op"
      in
      let updates = c.Core_ir.updates in
      let kk = compile_prog schema k in
      fun st sel ->
        let contributors = Array.map (fun i -> st.rows.(i)) sel in
        let contributor_rands = Array.map (fun i -> st.rands.(i)) sel in
        st.env.evaluator.Eval.apply_aoe ~pred ~updates ~contributors ~contributor_rands
          ~acc:st.env.acc;
        kk st sel
    | Partition (c, a, b) ->
      let cf = dyn (compile_expr ~fold c) in
      let ka = compile_prog schema a and kb = compile_prog schema b in
      fun st sel ->
        let n = Array.length sel in
        let yes = Array.make n 0 and no = Array.make n 0 in
        let ny = ref 0 and nn = ref 0 in
        Array.iter
          (fun i ->
            if Value.to_bool (cf st.rows.(i) None st.rands.(i)) then begin
              yes.(!ny) <- i;
              incr ny
            end
            else begin
              no.(!nn) <- i;
              incr nn
            end)
          sel;
        if !ny > 0 then ka st (Array.sub yes 0 !ny);
        if !nn > 0 then kb st (Array.sub no 0 !nn)
    | Fanout ps ->
      let ks = List.map (compile_prog schema) ps in
      fun st sel -> List.iter (fun k -> k st sel) ks

  (* Column loads are sound only while working-row schema slots still
     mirror the store — i.e. no step in the program overwrites a slot
     below the arity.  Lowered plans only bind registers (slots >= arity),
     so this is a safety net, not a working restriction. *)
  let columnar_ok ~(schema : Schema.t) (p : t) : bool =
    List.for_all (fun s -> s >= Schema.arity schema) (write_slots p)

  let boxed_binds ~(schema : Schema.t) (p : t) : (int * Expr.t) list =
    let safe = columnar_ok ~schema p in
    List.filter (fun (_, e) -> (not safe) || Option.is_none (float_plan schema e)) (bind_steps p)

  let compile ?(fold = fun (_ : Expr.t) -> None) ~(schema : Schema.t) (p : t) : kernel =
    let run = compile_prog schema ~columnar:(columnar_ok ~schema p) ~fold p in
    fun env ~rows ~rands ->
      if Array.length rows > 0 then begin
        (* Trust the columnar mirror only when the id map covers the rows
           and stays in range — otherwise drop to boxed reads wholesale. *)
        let env =
          match env.cols with
          | None -> env
          | Some cs ->
            let n = Colstore.length cs in
            if
              Array.length env.ids >= Array.length rows
              && Array.for_all (fun id -> id >= 0 && id < n) env.ids
            then env
            else { env with cols = None }
        in
        run { env; rows; rands } (Array.init (Array.length rows) (fun i -> i))
      end
end
