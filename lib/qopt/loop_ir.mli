(** The fused loop IR (the execution-layer counterpart of {!Plan}).

    A {!Plan.t} walks a set of rows tree-at-a-time: every [Bind] touches
    every live row, every [Select] re-partitions, every [Act] loops again.
    {!Lower} flattens that tree into an imperative loop program whose
    straight-line stretches — scalar binds and self/key effect emissions —
    fuse into a single pass over the live rows, with explicit batch
    boundaries only where the pluggable evaluator genuinely needs a batch
    (aggregate binds, area-of-effect combination).  {!Compile} then
    specializes the loop program once, composing one closure per operation
    into a kernel of type [env -> rows -> rands -> unit]; running a tick
    executes the composed closures with no plan walking, no evaluation-
    context allocation, and constant subexpressions folded away.

    Soundness: effects combine through the associative-commutative-
    idempotent ⊕, and each row's random stream is a pure function keyed by
    [~tick ~key], so fusing per-set passes into per-row passes — and
    splitting one [Act]'s clause list into fused emissions plus batch AoE
    ops — permutes only the order in which contributions meet ⊕.  Rule
    V003 ({!Sgl_analysis.Plan_check}) validates every lowering by
    comparing guarded effect clauses; the conformance harness pins the
    kernels bit-identical against the interpreted evaluators. *)

open Sgl_relalg
open Sgl_lang

(** One operation of a fused pass, applied to each live row in turn. *)
type step =
  | Bind_col of int * Expr.t  (** write register [slot] (extended projection π) *)
  | Emit of Core_ir.effect_clause
      (** accumulate a [Self]/[Key] effect clause ([All] clauses are batch
          ops, never steps) *)

(** A loop program over the live-row selection. *)
type t =
  | Halt
  | Pass of step list * t  (** one fused loop over the live rows, then continue *)
  | Agg_fill of { slot : int; agg_id : int; next : t }
      (** batch boundary: evaluate aggregate [agg_id] for every live row
          through the evaluator, landing the answers in [slot] *)
  | Aoe of Core_ir.effect_clause * t
      (** batch boundary: combine an area-of-effect clause over the live
          rows through the evaluator *)
  | Partition of Expr.t * t * t  (** split the live rows on a condition (σ) *)
  | Fanout of t list  (** run several programs over the same live rows *)

(** Acts reachable in the program, each tagged with its guard stack — at
    clause granularity, for the V003 lowering validation.  Guards carry
    the branch polarity like {!Plan.guarded_acts}. *)
val guarded_clauses : t -> ((bool * Expr.t) list * Core_ir.effect_clause) list

type stats = {
  passes : int;
  fused_steps : int;  (** steps across all passes; > passes means fusion happened *)
  agg_fills : int;
  partitions : int;
  aoes : int;
}

val stats : t -> stats
val pp : t Fmt.t

module Lower : sig
  (** [lower plan] translates an optimized plan to the loop IR, fusing
      adjacent scalar binds and self/key emissions into single passes —
      including across [Both] arms whose programs are pure passes.  The
      result is ⊕-equivalent to [plan] by construction; V003 checks it
      anyway. *)
  val lower : Plan.t -> t
end

module Compile : sig
  (** Everything a kernel needs at run time beyond the rows themselves.
      The evaluator is a parameter (not baked in at compile time) so one
      compiled kernel serves every tick, chunk and degraded retry.
      [cols]/[ids] give scalar binds a columnar fast path: when [cols]
      mirrors the tick's unit array and [ids.(i)] is the unit id behind
      working row [i], float-typed [Bind_col] steps load operands straight
      from the typed columns (bit-identical to the boxed evaluation; see
      {!boxed_binds} for the exact eligibility rules).  [cols = None]
      (or a mismatched id map) runs every step on the boxed path. *)
  type env = {
    evaluator : Eval.t;
    find_key : int -> Tuple.t option;
    acc : Combine.Acc.t;
    cols : Colstore.t option;
    ids : int array;
  }

  (** A specialized kernel: run the loop program over one group's
      full-width working rows and their per-row random streams,
      accumulating effects into [env.acc]. *)
  type kernel = env -> rows:Tuple.t array -> rands:(int -> int) array -> unit

  (** Compile a loop program once into composed closures.  Expression
      evaluation mirrors {!Sgl_relalg.Expr.eval} operation-for-operation
      (bit-identical results, including error behaviour), with
      [Random]-free constant subtrees folded at compile time.  [fold] is
      an external constant-folding oracle (interval facts): an expression
      it pins compiles to the constant even when the structural folder
      sees dynamic reads.  The oracle must only answer when every store
      the kernel can meet evaluates the expression to exactly that value
      — {!Sgl_analysis} derives such oracles from the abstract domain. *)
  val compile : ?fold:(Expr.t -> Value.t option) -> schema:Schema.t -> t -> kernel

  (** The scalar binds of [p] that stay on the boxed-row path even when a
      columnar mirror is available — i.e. the kernel materializes tuples
      inside its per-row loop for them.  A bind specializes to a column
      load only when its expression is float-guaranteed over column-backed
      schema attributes through [+ - * / neg abs sqrt min max] (operations
      whose float semantics are the plain primitives, keeping the two
      paths bit-identical) and no step of [p] writes a schema slot.  Perf
      lint P006 reports what this returns. *)
  val boxed_binds : schema:Schema.t -> t -> (int * Expr.t) list
end
