(* Set-at-a-time query plans (Section 5.1, Figure 6).

   A plan processes a *set* of unit rows top-down: [Bind] extends every row
   with a computed or aggregated column (the algebra's extended projection
   pi_{*, f}), [Select] partitions the set on a condition (sigma_phi /
   sigma_{not phi}), [Both] fans the same set into several consumers (the
   translation of sequencing, combined by (+)), and [Act] emits effects
   (act(+)).

   Slots are *absolute register indexes* into the row array: rewrites move
   binds without renumbering anything, because every bind site owns its
   index. *)

open Sgl_relalg
open Sgl_lang

type binder =
  | Bind_expr of Expr.t
  | Bind_agg of int (* aggregate instance id *)

type t =
  | Nop
  | Bind of int * binder * t
  | Select of Expr.t * t * t (* condition, then-plan, else-plan *)
  | Both of t list
  | Act of Core_ir.effect_clause list

(* ------------------------------------------------------------------ *)
(* Translation from the core IR (the [[.]](+) rules of Section 5.1).

   The resolver numbered let-slots by depth, which is exactly the absolute
   register index when rows are allocated at full width. *)

let of_core (schema : Schema.t) (body : Core_ir.t) : t =
  let rec go depth (a : Core_ir.t) : t =
    match a with
    | Core_ir.Skip -> Nop
    | Core_ir.Let (e, k) -> Bind (depth, Bind_expr e, go (depth + 1) k)
    | Core_ir.Let_agg (i, k) -> Bind (depth, Bind_agg i, go (depth + 1) k)
    | Core_ir.Seq (a1, a2) -> Both [ go depth a1; go depth a2 ]
    | Core_ir.If (c, a1, a2) -> Select (c, go depth a1, go depth a2)
    | Core_ir.Effects clauses -> Act clauses
  in
  go (Schema.arity schema) body

(* Width (register count) needed to execute the plan. *)
let width (schema : Schema.t) (p : t) : int =
  let top = ref (Schema.arity schema) in
  let rec go = function
    | Nop | Act _ -> ()
    | Bind (slot, _, k) ->
      if slot + 1 > !top then top := slot + 1;
      go k
    | Select (_, a, b) ->
      go a;
      go b
    | Both plans -> List.iter go plans
  in
  go p;
  !top

(* ------------------------------------------------------------------ *)
(* Usage analysis *)

let expr_uses slot e = List.mem slot (Expr.u_slots e)

let clause_uses slot (c : Core_ir.effect_clause) =
  (match c.Core_ir.target with
  | Core_ir.Self -> false
  | Core_ir.Key e -> expr_uses slot e
  | Core_ir.All p -> List.exists (expr_uses slot) (Predicate.conjuncts p))
  || List.exists (fun (_, e) -> expr_uses slot e) c.Core_ir.updates

(* Aggregate instances can reference earlier slots through inlined
   arguments (e.g. [let r = ...; let c = Count(u, r)]), so usage analysis
   must look inside them. *)
let agg_instance_slots (agg : Aggregate.t) : int list =
  let kind_exprs = function
    | Aggregate.Count -> []
    | Aggregate.Sum e | Aggregate.Avg e | Aggregate.Std_dev e | Aggregate.Min_agg e
    | Aggregate.Max_agg e ->
      [ e ]
    | Aggregate.Arg_min { objective; result } | Aggregate.Arg_max { objective; result } ->
      [ objective; result ]
    | Aggregate.Nearest { ex; ey; ux; uy; result } -> [ ex; ey; ux; uy; result ]
  in
  let exprs =
    List.concat_map kind_exprs agg.Aggregate.kinds
    @ Predicate.conjuncts agg.Aggregate.where_
    @ Option.to_list agg.Aggregate.default
  in
  List.sort_uniq compare (List.concat_map Expr.u_slots exprs)

let binder_uses ~(aggs : Aggregate.t array) slot = function
  | Bind_expr e -> expr_uses slot e
  | Bind_agg i -> List.mem slot (agg_instance_slots aggs.(i))

(* Does the plan read register [slot] anywhere? *)
let rec uses ~aggs slot = function
  | Nop -> false
  | Bind (_, b, k) -> binder_uses ~aggs slot b || uses ~aggs slot k
  | Select (c, a, b) -> expr_uses slot c || uses ~aggs slot a || uses ~aggs slot b
  | Both plans -> List.exists (uses ~aggs slot) plans
  | Act clauses -> List.exists (clause_uses slot) clauses

(* ------------------------------------------------------------------ *)
(* Guard-path introspection (for translation validation and EXPLAIN).

   Every [Act] is reported with the stack of selection conditions guarding
   it, each tagged with the branch polarity taken.  Binds do not affect
   reachability, so they are transparent here. *)

type guard = bool * Expr.t (* polarity (true = then-branch), condition *)

let guarded_acts (p : t) : (guard list * Core_ir.effect_clause list) list =
  let out = ref [] in
  let rec go guards = function
    | Nop -> ()
    | Bind (_, _, k) -> go guards k
    | Select (c, a, b) ->
      go ((true, c) :: guards) a;
      go ((false, c) :: guards) b
    | Both plans -> List.iter (go guards) plans
    | Act clauses -> out := (List.rev guards, clauses) :: !out
  in
  go [] p;
  List.rev !out

(* Statistics for reporting. *)
type stats = {
  binds : int;
  agg_binds : int;
  selects : int;
  acts : int;
}

let stats (p : t) : stats =
  let s = ref { binds = 0; agg_binds = 0; selects = 0; acts = 0 } in
  let rec go = function
    | Nop -> ()
    | Bind (_, Bind_expr _, k) ->
      s := { !s with binds = !s.binds + 1 };
      go k
    | Bind (_, Bind_agg _, k) ->
      s := { !s with binds = !s.binds + 1; agg_binds = !s.agg_binds + 1 };
      go k
    | Select (_, a, b) ->
      s := { !s with selects = !s.selects + 1 };
      go a;
      go b
    | Both plans -> List.iter go plans
    | Act _ -> s := { !s with acts = !s.acts + 1 }
  in
  go p;
  !s

let rec pp ppf = function
  | Nop -> Fmt.string ppf "nop"
  | Bind (slot, Bind_expr e, k) -> Fmt.pf ppf "@[<v>r%d := %a@,%a@]" slot Expr.pp e pp k
  | Bind (slot, Bind_agg i, k) -> Fmt.pf ppf "@[<v>r%d := agg#%d@,%a@]" slot i pp k
  | Select (c, a, Nop) -> Fmt.pf ppf "@[<v>select %a {@;<0 2>%a@,}@]" Expr.pp c pp a
  | Select (c, a, b) ->
    Fmt.pf ppf "@[<v>select %a {@;<0 2>%a@,} else {@;<0 2>%a@,}@]" Expr.pp c pp a pp b
  | Both plans ->
    Fmt.pf ppf "@[<v>both {@;<0 2>%a@,}@]" Fmt.(list ~sep:(any "@,---@,") pp) plans
  | Act clauses -> Fmt.pf ppf "act(%d clauses)" (List.length clauses)
