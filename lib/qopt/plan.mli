(** Set-at-a-time query plans (Section 5.1, Figure 6).

    Slots are absolute register indexes into full-width rows, so rewrites
    relocate binds without renumbering. *)

open Sgl_relalg
open Sgl_lang

type binder =
  | Bind_expr of Expr.t
  | Bind_agg of int (* aggregate instance id *)

type t =
  | Nop
  | Bind of int * binder * t
  | Select of Expr.t * t * t
  | Both of t list
  | Act of Core_ir.effect_clause list

(** Translate a core action into its initial plan (Figure 6 (a)). *)
val of_core : Schema.t -> Core_ir.t -> t

(** Register count needed to execute the plan. *)
val width : Schema.t -> t -> int

val expr_uses : int -> Expr.t -> bool
val clause_uses : int -> Core_ir.effect_clause -> bool

(** Unit slots an aggregate instance reads (through inlined arguments). *)
val agg_instance_slots : Aggregate.t -> int list

val binder_uses : aggs:Aggregate.t array -> int -> binder -> bool

(** Does the plan read register [slot] anywhere? *)
val uses : aggs:Aggregate.t array -> int -> t -> bool

type guard = bool * Expr.t (* branch polarity (true = then-branch), condition *)

(** Every [Act] with the selection conditions guarding it, root first.
    Binds are transparent: they never affect reachability. *)
val guarded_acts : t -> (guard list * Core_ir.effect_clause list) list

type stats = {
  binds : int;
  agg_binds : int;
  selects : int;
  acts : int;
}

val stats : t -> stats
val pp : t Fmt.t
