(* Algebraic plan rewriting (Section 5.2, Figure 6).

   The transformations realized here:

   - *Lazy aggregate placement* (Figure 6 (a) -> (b)): a [Bind] — crucially
     an aggregate bind — sinks below selections and fan-outs into exactly
     the branches that read its register, so the aggregate index is only
     probed for the units that satisfy the guarding condition.
   - *Dead-column elimination*: a bind nobody reads disappears (the pushed-
     up agg2 of Example 5.1 vanishing from the not-phi1 branch).
   - *Constant-condition pruning* and structural cleanups.

   Rules (8)-(10) of Figure 7 concern the combination with E; in this
   executor the final "(+) E" is structural (the post-processing step
   treats every unit as present with neutral effects), so act(+)(R) (+) R =
   act(+)(R) holds by construction — see Exec. *)

open Sgl_relalg

type rewrite_stats = {
  mutable sunk : int; (* binds pushed below a selection or fan-out *)
  mutable dropped : int; (* dead binds eliminated *)
  mutable pruned : int; (* constant selections resolved *)
}

let no_stats () = { sunk = 0; dropped = 0; pruned = 0 }

(* One pass of structural cleanups.  [prove] is an external decision
   procedure for selection conditions (interval facts from the analysis
   layer); a decided condition prunes exactly like a constant one, and
   translation validation discharges the corresponding guards with the
   same prover, so V002 equivalence is preserved by construction. *)
let rec simplify ?(prove = fun (_ : Expr.t) -> None) stats (p : Plan.t) : Plan.t =
  match p with
  | Plan.Nop -> Plan.Nop
  | Plan.Act clauses -> Plan.Act clauses
  | Plan.Bind (slot, b, k) -> begin
    match simplify ~prove stats k with
    | Plan.Nop ->
      stats.dropped <- stats.dropped + 1;
      Plan.Nop
    | k' -> Plan.Bind (slot, b, k')
  end
  | Plan.Select (c, a, b) -> begin
    let a = simplify ~prove stats a and b = simplify ~prove stats b in
    match c with
    | Expr.Const (Value.Bool true) ->
      stats.pruned <- stats.pruned + 1;
      a
    | Expr.Const (Value.Bool false) ->
      stats.pruned <- stats.pruned + 1;
      b
    | _ -> begin
      match prove c with
      | Some true ->
        stats.pruned <- stats.pruned + 1;
        a
      | Some false ->
        stats.pruned <- stats.pruned + 1;
        b
      | None -> if a = Plan.Nop && b = Plan.Nop then Plan.Nop else Plan.Select (c, a, b)
    end
  end
  | Plan.Both plans -> begin
    let plans =
      List.filter (fun q -> q <> Plan.Nop) (List.map (simplify ~prove stats) plans)
    in
    match plans with
    | [] -> Plan.Nop
    | [ q ] -> q
    | qs ->
      (* flatten nested fan-outs *)
      let flat =
        List.concat_map (function Plan.Both inner -> inner | other -> [ other ]) qs
      in
      Plan.Both flat
  end

(* Sink the bind at the root of [p] as deep as legality allows.  Returns
   the rewritten plan. *)
let rec sink stats ~aggs (p : Plan.t) : Plan.t =
  match p with
  | Plan.Nop | Plan.Act _ -> p
  | Plan.Select (c, a, b) -> Plan.Select (c, sink stats ~aggs a, sink stats ~aggs b)
  | Plan.Both plans -> Plan.Both (List.map (sink stats ~aggs) plans)
  | Plan.Bind (slot, binder, k) -> begin
    let k = sink stats ~aggs k in
    match k with
    | Plan.Nop ->
      stats.dropped <- stats.dropped + 1;
      Plan.Nop
    | Plan.Select (c, a, b) when not (Plan.expr_uses slot c) -> begin
      let used_a = Plan.uses ~aggs slot a and used_b = Plan.uses ~aggs slot b in
      match (used_a, used_b) with
      | false, false ->
        stats.dropped <- stats.dropped + 1;
        k
      | true, false ->
        stats.sunk <- stats.sunk + 1;
        Plan.Select (c, sink stats ~aggs (Plan.Bind (slot, binder, a)), b)
      | false, true ->
        stats.sunk <- stats.sunk + 1;
        Plan.Select (c, a, sink stats ~aggs (Plan.Bind (slot, binder, b)))
      | true, true -> Plan.Bind (slot, binder, k)
    end
    | Plan.Both plans -> begin
      let used = List.filter (Plan.uses ~aggs slot) plans in
      match used with
      | [] ->
        stats.dropped <- stats.dropped + 1;
        k
      | [ _ ] ->
        stats.sunk <- stats.sunk + 1;
        Plan.Both
          (List.map
             (fun q ->
               if Plan.uses ~aggs slot q then sink stats ~aggs (Plan.Bind (slot, binder, q))
               else q)
             plans)
      | _ :: _ :: _ -> Plan.Bind (slot, binder, k)
    end
    | _ ->
      if Plan.uses ~aggs slot k then Plan.Bind (slot, binder, k)
      else begin
        stats.dropped <- stats.dropped + 1;
        k
      end
  end

(* Fixpoint driver: simplify and sink until the plan stops changing. *)
let optimize ?(stats = no_stats ()) ?prove ~(aggs : Aggregate.t array) (p : Plan.t) : Plan.t =
  let rec fix p n =
    if n > 50 then p
    else begin
      let p' = sink stats ~aggs (simplify ?prove stats p) in
      if p' = p then p else fix p' (n + 1)
    end
  in
  fix p 0
