(** Algebraic plan rewriting (Section 5.2, Figure 6): lazy aggregate
    placement (binds sink below the selections into exactly the branches
    that read them), dead-column elimination, and constant-condition
    pruning. *)

open Sgl_relalg

type rewrite_stats = {
  mutable sunk : int;
  mutable dropped : int;
  mutable pruned : int;
}

val no_stats : unit -> rewrite_stats

(** One structural-cleanup pass. *)
val simplify : rewrite_stats -> Plan.t -> Plan.t

(** One sinking pass. *)
val sink : rewrite_stats -> aggs:Aggregate.t array -> Plan.t -> Plan.t

(** Fixpoint of [simplify] and [sink]. *)
val optimize : ?stats:rewrite_stats -> aggs:Aggregate.t array -> Plan.t -> Plan.t
