(** Algebraic plan rewriting (Section 5.2, Figure 6): lazy aggregate
    placement (binds sink below the selections into exactly the branches
    that read them), dead-column elimination, and constant-condition
    pruning. *)

open Sgl_relalg

type rewrite_stats = {
  mutable sunk : int;
  mutable dropped : int;
  mutable pruned : int;
}

val no_stats : unit -> rewrite_stats

(** One structural-cleanup pass.  [prove] decides selection conditions
    with facts the structural folder cannot see (interval analysis);
    a decided condition is pruned exactly like a constant one and counts
    toward [pruned].  Callers pairing this with translation validation
    must hand the same prover to the validator so the discharged guards
    match. *)
val simplify : ?prove:(Expr.t -> bool option) -> rewrite_stats -> Plan.t -> Plan.t

(** One sinking pass. *)
val sink : rewrite_stats -> aggs:Aggregate.t array -> Plan.t -> Plan.t

(** Fixpoint of [simplify] and [sink]. *)
val optimize :
  ?stats:rewrite_stats -> ?prove:(Expr.t -> bool option) -> aggs:Aggregate.t array -> Plan.t -> Plan.t
