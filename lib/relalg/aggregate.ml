(* Aggregate functions over the environment (form (5) of Section 4.3):

     SELECT a1(h1(u,e,r)), ..., ak(hk(u,e,r)) FROM E e WHERE phi(u,e,r)

   An aggregate returns a scalar, or a 2-d vector when it carries two
   components (the paper's centroid).  [eval_naive] is the reference O(n)
   scan; the indexed evaluators in [sgl_qopt] must agree with it exactly. *)

type kind =
  | Count
  | Sum of Expr.t
  | Avg of Expr.t
  | Std_dev of Expr.t (* population standard deviation *)
  | Min_agg of Expr.t
  | Max_agg of Expr.t
  | Arg_min of { objective : Expr.t; result : Expr.t }
  | Arg_max of { objective : Expr.t; result : Expr.t }
  | Nearest of { ex : Expr.t; ey : Expr.t; ux : Expr.t; uy : Expr.t; result : Expr.t }

type t = {
  name : string;
  kinds : kind list; (* one component (scalar) or two (vector) *)
  where_ : Predicate.t;
  default : Expr.t option; (* over u; the value when the selection is empty *)
}

exception Aggregate_error of string

let aggregate_error fmt = Fmt.kstr (fun s -> raise (Aggregate_error s)) fmt

let make ?default ~name ~kinds ~where_ () =
  (match kinds with
  | [ _ ] | [ _; _ ] -> ()
  | _ -> aggregate_error "aggregate %s must have one or two components" name);
  { name; kinds; where_; default }

(* ------------------------------------------------------------------ *)
(* Classification for the index planner (Section 5.3) *)

(* Divisible aggregates (Definition 5.1) reduce to sums of per-point
   statistics and therefore support the prefix-aggregate range tree. *)
let is_divisible = function
  | Count | Sum _ | Avg _ | Std_dev _ -> true
  | Min_agg _ | Max_agg _ | Arg_min _ | Arg_max _ | Nearest _ -> false

let is_extremal = function
  | Min_agg _ | Max_agg _ | Arg_min _ | Arg_max _ -> true
  | Count | Sum _ | Avg _ | Std_dev _ | Nearest _ -> false

let is_nearest = function
  | Nearest _ -> true
  | Count | Sum _ | Avg _ | Std_dev _ | Min_agg _ | Max_agg _ | Arg_min _ | Arg_max _ -> false

(* Per-point statistics a divisible kind needs (expressions over e).
   Raises for non-divisible kinds. *)
let stats_of_kind = function
  | Count -> [ Expr.Const (Value.Float 1.) ]
  | Sum e -> [ e ]
  | Avg e -> [ e; Expr.Const (Value.Float 1.) ]
  | Std_dev e -> [ e; Expr.Binop (Expr.Mul, e, e); Expr.Const (Value.Float 1.) ]
  | Min_agg _ | Max_agg _ | Arg_min _ | Arg_max _ | Nearest _ ->
    aggregate_error "stats_of_kind: aggregate is not divisible"

(* Turn accumulated statistics back into the aggregate value; [None] when
   the aggregate is undefined on the empty selection. *)
let finish_divisible kind (stats : float array) : Value.t option =
  match kind with
  | Count -> Some (Value.Int (int_of_float (Float.round stats.(0))))
  | Sum _ -> Some (Value.Float stats.(0))
  | Avg _ ->
    if stats.(1) = 0. then None else Some (Value.Float (stats.(0) /. stats.(1)))
  | Std_dev _ ->
    if stats.(2) = 0. then None
    else begin
      let mean = stats.(0) /. stats.(2) in
      let var = (stats.(1) /. stats.(2)) -. (mean *. mean) in
      Some (Value.Float (sqrt (Float.max 0. var)))
    end
  | Min_agg _ | Max_agg _ | Arg_min _ | Arg_max _ | Nearest _ ->
    aggregate_error "finish_divisible: aggregate is not divisible"

(* ------------------------------------------------------------------ *)
(* Reference evaluation by full scan *)

let eval_kind_naive ~(units : Tuple.t array) ~(ctx : Expr.ctx) ~(where_ : Predicate.t) kind :
    Value.t option =
  let with_e e = { ctx with Expr.e = Some e } in
  let selected f =
    Array.iter (fun e -> let c = with_e e in if Predicate.holds c where_ then f c) units
  in
  match kind with
  | Count ->
    let n = ref 0 in
    selected (fun _ -> incr n);
    Some (Value.Int !n)
  | Sum expr ->
    let acc = ref 0. in
    selected (fun c -> acc := !acc +. Expr.eval_float c expr);
    Some (Value.Float !acc)
  | Avg expr ->
    let acc = ref 0. and n = ref 0 in
    selected (fun c ->
        acc := !acc +. Expr.eval_float c expr;
        incr n);
    if !n = 0 then None else Some (Value.Float (!acc /. float_of_int !n))
  | Std_dev expr ->
    let s = ref 0. and s2 = ref 0. and n = ref 0 in
    selected (fun c ->
        let v = Expr.eval_float c expr in
        s := !s +. v;
        s2 := !s2 +. (v *. v);
        incr n);
    if !n = 0 then None
    else begin
      let nf = float_of_int !n in
      let mean = !s /. nf in
      Some (Value.Float (sqrt (Float.max 0. ((!s2 /. nf) -. (mean *. mean)))))
    end
  | Min_agg expr ->
    let best = ref None in
    selected (fun c ->
        let v = Expr.eval_float c expr in
        match !best with
        | Some b when b <= v -> ()
        | _ -> best := Some v);
    Option.map (fun v -> Value.Float v) !best
  | Max_agg expr ->
    let best = ref None in
    selected (fun c ->
        let v = Expr.eval_float c expr in
        match !best with
        | Some b when b >= v -> ()
        | _ -> best := Some v);
    Option.map (fun v -> Value.Float v) !best
  | Arg_min { objective; result } ->
    let best = ref None in
    selected (fun c ->
        let v = Expr.eval_float c objective in
        match !best with
        | Some (b, _) when b <= v -> ()
        | _ -> best := Some (v, Expr.eval c result));
    Option.map snd !best
  | Arg_max { objective; result } ->
    let best = ref None in
    selected (fun c ->
        let v = Expr.eval_float c objective in
        match !best with
        | Some (b, _) when b >= v -> ()
        | _ -> best := Some (v, Expr.eval c result));
    Option.map snd !best
  | Nearest { ex; ey; ux; uy; result } ->
    let px = Expr.eval_float ctx ux and py = Expr.eval_float ctx uy in
    let best = ref None in
    selected (fun c ->
        let dx = Expr.eval_float c ex -. px and dy = Expr.eval_float c ey -. py in
        let d2 = (dx *. dx) +. (dy *. dy) in
        match !best with
        | Some (b, _) when b <= d2 -> ()
        | _ -> best := Some (d2, Expr.eval c result));
    Option.map snd !best

(* Evaluate the whole aggregate for one unit context, resolving empty
   selections through the default expression. *)
let eval_naive ~(units : Tuple.t array) ~(ctx : Expr.ctx) (t : t) : Value.t =
  let on_empty () =
    match t.default with
    | Some d -> Expr.eval ctx d
    | None ->
      aggregate_error "aggregate %s is empty and declares no default" t.name
  in
  match t.kinds with
  | [ kind ] -> begin
    match eval_kind_naive ~units ~ctx ~where_:t.where_ kind with
    | Some v -> v
    | None -> on_empty ()
  end
  | [ k1; k2 ] -> begin
    match
      ( eval_kind_naive ~units ~ctx ~where_:t.where_ k1,
        eval_kind_naive ~units ~ctx ~where_:t.where_ k2 )
    with
    | Some a, Some b -> Value.make_vec a b
    | _ -> on_empty ()
  end
  | _ -> aggregate_error "aggregate %s has an invalid component count" t.name

let kind_name = function
  | Count -> "count"
  | Sum _ -> "sum"
  | Avg _ -> "avg"
  | Std_dev _ -> "stddev"
  | Min_agg _ -> "min"
  | Max_agg _ -> "max"
  | Arg_min _ -> "argmin"
  | Arg_max _ -> "argmax"
  | Nearest _ -> "nearest"

let pp ppf t =
  Fmt.pf ppf "%s[%a where %a]" t.name
    Fmt.(list ~sep:(any ", ") (of_to_string kind_name))
    t.kinds Predicate.pp t.where_
