(** Aggregate functions over the environment relation (Section 4.3, form
    (5)) and their planner-facing classification (Section 5.3). *)

type kind =
  | Count
  | Sum of Expr.t
  | Avg of Expr.t
  | Std_dev of Expr.t
  | Min_agg of Expr.t
  | Max_agg of Expr.t
  | Arg_min of { objective : Expr.t; result : Expr.t }
  | Arg_max of { objective : Expr.t; result : Expr.t }
  | Nearest of { ex : Expr.t; ey : Expr.t; ux : Expr.t; uy : Expr.t; result : Expr.t }

type t = {
  name : string;
  kinds : kind list;
  where_ : Predicate.t;
  default : Expr.t option;
}

exception Aggregate_error of string

(** Raises {!Aggregate_error} unless [kinds] has one or two components. *)
val make :
  ?default:Expr.t -> name:string -> kinds:kind list -> where_:Predicate.t -> unit -> t

(** Definition 5.1: supports the prefix-aggregate range tree. *)
val is_divisible : kind -> bool

(** MIN/MAX-style: candidates for the sweep-line index. *)
val is_extremal : kind -> bool

(** Spatial nearest-neighbour: candidate for the kD-tree. *)
val is_nearest : kind -> bool

(** Per-point statistics of a divisible kind (exprs over [e]).
    Raises {!Aggregate_error} on non-divisible kinds. *)
val stats_of_kind : kind -> Expr.t list

(** Recover the aggregate value from accumulated statistics; [None] when the
    selection was empty and the aggregate is undefined. *)
val finish_divisible : kind -> float array -> Value.t option

(** Reference full-scan evaluation of one component. *)
val eval_kind_naive :
  units:Tuple.t array -> ctx:Expr.ctx -> where_:Predicate.t -> kind -> Value.t option

(** Reference full-scan evaluation; empty selections fall back to [default].
    Raises {!Aggregate_error} if empty with no default. *)
val eval_naive : units:Tuple.t array -> ctx:Expr.ctx -> t -> Value.t

val kind_name : kind -> string
val pp : t Fmt.t
