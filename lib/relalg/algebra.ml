(* The executable bag algebra of Section 5.1: selection, projection /
   extension, product, multiset union, grouping with SQL aggregates, and the
   key-join used by rewrite rule (10).

   These operators serve the reference evaluation path and the algebraic-law
   test-suite; the optimized engine path specializes them away. *)

open Sgl_util

exception Algebra_error of string

let algebra_error fmt = Fmt.kstr (fun s -> raise (Algebra_error s)) fmt

(* sigma_phi(R): rows are bound as the unit record u. *)
let select ~rand (phi : Expr.t) (r : Relation.t) : Relation.t =
  Relation.filter_rows (fun row -> Expr.eval_bool { Expr.u = row; e = None; rand } phi) r

let select_pred ~rand (p : Predicate.t) (r : Relation.t) : Relation.t =
  Relation.filter_rows (fun row -> Predicate.holds { Expr.u = row; e = None; rand } p) r

(* pi_{*, f as B}(R): extend every row with computed columns. *)
let extend ~rand (exprs : Expr.t list) (r : Relation.t) : Relation.t =
  Relation.map_rows
    (fun row ->
      let ctx = { Expr.u = row; e = None; rand } in
      List.fold_left (fun acc e -> Tuple.extend acc (Expr.eval ctx e)) row exprs)
    r

(* pi over explicit slot indices (drops the rest). *)
let project (slots : int list) (r : Relation.t) : Relation.t =
  Relation.map_rows
    (fun row -> Array.of_list (List.map (fun i -> Tuple.get row i) slots))
    r

(* R x S as row concatenation. *)
let product (r : Relation.t) (s : Relation.t) : Relation.t =
  let out = Relation.create (Relation.schema r) in
  Relation.iter
    (fun a -> Relation.iter (fun b -> Relation.add out (Array.append a b)) s)
    r;
  out

(* R |+| S: multiset union. *)
let union (r : Relation.t) (s : Relation.t) : Relation.t =
  let out = Relation.create (Relation.schema r) in
  Relation.iter (Relation.add out) r;
  Relation.iter (Relation.add out) s;
  out

(* Natural join on the key attribute, for rule (10): both inputs must have
   the key functional (at most one row per key). *)
let join_key (r : Relation.t) (s : Relation.t) : (Tuple.t * Tuple.t) list =
  let schema = Relation.schema r in
  let index = Hashtbl.create (Relation.cardinality s) in
  Relation.iter
    (fun row ->
      let k = Tuple.key schema row in
      if Hashtbl.mem index k then algebra_error "join_key: duplicate key %d in right input" k;
      Hashtbl.add index k row)
    s;
  List.filter_map
    (fun row ->
      Option.map (fun other -> (row, other)) (Hashtbl.find_opt index (Tuple.key schema row)))
    (Relation.to_list r)

(* agg_{group, g}(R): SQL grouping used by tests of the translation. *)
type sql_agg =
  | Sql_count
  | Sql_sum of int (* slot *)
  | Sql_min of int
  | Sql_max of int
  | Sql_avg of int

let group_agg ~(group : int list) ~(aggs : sql_agg list) (r : Relation.t) :
    (Value.t list * Value.t list) list =
  let table : (Value.t list, Tuple.t Varray.t) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  Relation.iter
    (fun row ->
      let k = List.map (fun i -> Tuple.get row i) group in
      match Hashtbl.find_opt table k with
      | Some rows -> Varray.push rows row
      | None ->
        let rows = Varray.create [||] in
        Varray.push rows row;
        Hashtbl.add table k rows;
        order := k :: !order)
    r;
  let finish rows agg =
    let fold f init = Varray.fold_left f init rows in
    match agg with
    | Sql_count -> Value.Int (Varray.length rows)
    | Sql_sum slot -> fold (fun acc row -> Value.add acc (Tuple.get row slot)) (Value.Int 0)
    | Sql_min slot ->
      fold
        (fun acc row ->
          let v = Tuple.get row slot in
          if Value.compare_num v acc < 0 then v else acc)
        (Value.Float infinity)
    | Sql_max slot ->
      fold
        (fun acc row ->
          let v = Tuple.get row slot in
          if Value.compare_num v acc > 0 then v else acc)
        (Value.Float neg_infinity)
    | Sql_avg slot ->
      let total = fold (fun acc row -> acc +. Value.to_float (Tuple.get row slot)) 0. in
      Value.Float (total /. float_of_int (Varray.length rows))
  in
  List.rev_map
    (fun k ->
      let rows = Hashtbl.find table k in
      (k, List.map (finish rows) aggs))
    !order
