(** Executable bag algebra (Section 5.1). *)

exception Algebra_error of string

(** All operators that evaluate expressions take the per-tick random
    function [rand] so laws hold under randomness too. *)

val select : rand:(int -> int) -> Expr.t -> Relation.t -> Relation.t

val select_pred : rand:(int -> int) -> Predicate.t -> Relation.t -> Relation.t

(** Extend each row with computed columns (the algebra's extended
    projection). *)
val extend : rand:(int -> int) -> Expr.t list -> Relation.t -> Relation.t

val project : int list -> Relation.t -> Relation.t
val product : Relation.t -> Relation.t -> Relation.t
val union : Relation.t -> Relation.t -> Relation.t

(** Natural join on the key (rule (10) precondition: key functional on the
    right input; raises {!Algebra_error} otherwise). *)
val join_key : Relation.t -> Relation.t -> (Tuple.t * Tuple.t) list

type sql_agg =
  | Sql_count
  | Sql_sum of int
  | Sql_min of int
  | Sql_max of int
  | Sql_avg of int

val group_agg :
  group:int list -> aggs:sql_agg list -> Relation.t -> (Value.t list * Value.t list) list
