(* Struct-of-arrays relation storage.

   Layout: one typed array per schema attribute, indexed by row id, plus a
   boxed overflow column for let-extension slots and an optional per-row
   length sidecar for short (projected) rows.  A column starts in the typed
   representation its schema type suggests and is promoted to [Boxed] the
   first time a value of a different constructor is stored — materialized
   rows must reproduce the exact [Value.t] tags (the codec encodes tags, so
   [Int 0] and [Float 0.] are digest-distinct even though [Value.equal]
   identifies them). *)

open Sgl_util

type col =
  | Floats of float array
  | Ints of int array
  | Bools of Bytes.t
  | Boxed of Value.t array

type t = {
  schema : Schema.t;
  arity : int;
  mutable len : int;
  mutable cap : int;
  mutable cols : col array; (* one per schema attribute, each [cap] long *)
  mutable ext : Value.t array array; (* per-row slots beyond arity; [cap] long *)
  mutable lens : int array option; (* per-row lengths; None = derive *)
  mutable any_ext : bool;
}

let tel_column_copies = Telemetry.counter "relalg.column_copies"
let tel_cow_hits = Telemetry.counter "persist.snapshot_cow_hits"

let no_ext : Value.t array = [||]

let fresh_col ty cap =
  match ty with
  | Value.TFloat -> Floats (Array.make cap 0.)
  | Value.TInt -> Ints (Array.make cap 0)
  | Value.TBool -> Bools (Bytes.make cap '\000')
  | Value.TVec -> Boxed (Array.make cap (Value.Int 0))

let create ?(capacity = 16) schema =
  let arity = Schema.arity schema in
  let cap = max 1 capacity in
  {
    schema;
    arity;
    len = 0;
    cap;
    cols = Array.init arity (fun j -> fresh_col (Schema.ty_at schema j) cap);
    ext = Array.make cap no_ext;
    lens = None;
    any_ext = false;
  }

let schema t = t.schema
let length t = t.len

let grow_col cap' len = function
  | Floats a ->
    let b = Array.make cap' 0. in
    Array.blit a 0 b 0 len;
    Floats b
  | Ints a ->
    let b = Array.make cap' 0 in
    Array.blit a 0 b 0 len;
    Ints b
  | Bools a ->
    let b = Bytes.make cap' '\000' in
    Bytes.blit a 0 b 0 len;
    Bools b
  | Boxed a ->
    let b = Array.make cap' (Value.Int 0) in
    Array.blit a 0 b 0 len;
    Boxed b

let ensure_capacity t n =
  if n > t.cap then begin
    let cap' = max n (2 * t.cap) in
    t.cols <- Array.map (grow_col cap' t.len) t.cols;
    let ext' = Array.make cap' no_ext in
    Array.blit t.ext 0 ext' 0 t.len;
    t.ext <- ext';
    (match t.lens with
    | None -> ()
    | Some ls ->
      let ls' = Array.make cap' 0 in
      Array.blit ls 0 ls' 0 t.len;
      t.lens <- Some ls');
    t.cap <- cap'
  end

(* Promote column [j] to Boxed, reproducing the exact values stored so far.
   Slots past [len] (including short-row padding) are never materialized, so
   their boxed value is irrelevant. *)
let promote t j =
  let boxed = Array.make t.cap (Value.Int 0) in
  (match t.cols.(j) with
  | Floats a ->
    for i = 0 to t.len - 1 do
      boxed.(i) <- Value.Float a.(i)
    done
  | Ints a ->
    for i = 0 to t.len - 1 do
      boxed.(i) <- Value.Int a.(i)
    done
  | Bools a ->
    for i = 0 to t.len - 1 do
      boxed.(i) <- Value.Bool (Bytes.get a i <> '\000')
    done
  | Boxed a -> Array.blit a 0 boxed 0 t.len);
  t.cols.(j) <- Boxed boxed

let rec set_slot t j i (v : Value.t) =
  match (t.cols.(j), v) with
  | Floats a, Value.Float f -> a.(i) <- f
  | Ints a, Value.Int n -> a.(i) <- n
  | Bools a, Value.Bool b -> Bytes.set a i (if b then '\001' else '\000')
  | Boxed a, v -> a.(i) <- v
  | (Floats _ | Ints _ | Bools _), v ->
    promote t j;
    set_slot t j i v

let record_len t i n =
  match t.lens with
  | Some ls -> ls.(i) <- n
  | None ->
    if n <> t.arity + Array.length t.ext.(i) then begin
      (* first irregular row: backfill the sidecar *)
      let ls = Array.make t.cap 0 in
      for k = 0 to t.len - 1 do
        ls.(k) <- t.arity + Array.length t.ext.(k)
      done;
      ls.(i) <- n;
      t.lens <- Some ls
    end

let append t (row : Tuple.t) =
  let n = Array.length row in
  let i = t.len in
  ensure_capacity t (i + 1);
  let upto = min n t.arity in
  for j = 0 to upto - 1 do
    set_slot t j i row.(j)
  done;
  if n > t.arity then begin
    t.ext.(i) <- Array.sub row t.arity (n - t.arity);
    t.any_ext <- true
  end
  else t.ext.(i) <- no_ext;
  t.len <- i + 1;
  record_len t i n

let of_tuples schema rows =
  let t = create ~capacity:(max 16 (Array.length rows)) schema in
  Array.iter (append t) rows;
  t

let row_len t i =
  if i < 0 || i >= t.len then invalid_arg "Colstore.row_len";
  match t.lens with
  | Some ls -> ls.(i)
  | None -> t.arity + Array.length t.ext.(i)

let col_get t j i =
  match t.cols.(j) with
  | Floats a -> Value.Float a.(i)
  | Ints a -> Value.Int a.(i)
  | Bools a -> Value.Bool (Bytes.get a i <> '\000')
  | Boxed a -> a.(i)

let get t i j =
  if i < 0 || i >= t.len then invalid_arg "Colstore.get: row out of range";
  let n = row_len t i in
  if j < 0 || j >= n then invalid_arg "Colstore.get: slot out of range";
  if j < t.arity then col_get t j i else t.ext.(i).(j - t.arity)

let materialize t i =
  if i < 0 || i >= t.len then invalid_arg "Colstore.materialize";
  let n = row_len t i in
  Array.init n (fun j -> if j < t.arity then col_get t j i else t.ext.(i).(j - t.arity))

let iter f t =
  for i = 0 to t.len - 1 do
    f (materialize t i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i (materialize t i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc (materialize t i)
  done;
  !acc

let to_array t = Array.init t.len (materialize t)
let col t j = t.cols.(j)

let float_reader t j =
  match t.cols.(j) with
  | Floats a -> Some (fun i -> Array.unsafe_get a i)
  | Ints a -> Some (fun i -> float_of_int (Array.unsafe_get a i))
  | Bools _ | Boxed _ -> None

let int_reader t j =
  match t.cols.(j) with
  | Ints a -> Some (fun i -> Array.unsafe_get a i)
  | Floats _ | Bools _ | Boxed _ -> None

let rectangular t =
  (not t.any_ext)
  &&
  match t.lens with
  | None -> true
  | Some ls ->
    let ok = ref true in
    for i = 0 to t.len - 1 do
      if ls.(i) <> t.arity then ok := false
    done;
    !ok

(* Build a fresh column for attribute [j] straight from boxed rows — never
   mutates the previous array, so readers captured at an earlier tick keep
   seeing that tick's values. *)
let build_col schema j (rows : Tuple.t array) : col =
  let n = Array.length rows in
  let boxed () =
    let a = Array.make n (Value.Int 0) in
    for i = 0 to n - 1 do
      a.(i) <- rows.(i).(j)
    done;
    Boxed a
  in
  match Schema.ty_at schema j with
  | Value.TFloat ->
    let a = Array.make n 0. in
    let rec go i =
      if i >= n then Floats a
      else
        match rows.(i).(j) with
        | Value.Float f ->
          a.(i) <- f;
          go (i + 1)
        | _ -> boxed ()
    in
    go 0
  | Value.TInt ->
    let a = Array.make n 0 in
    let rec go i =
      if i >= n then Ints a
      else
        match rows.(i).(j) with
        | Value.Int v ->
          a.(i) <- v;
          go (i + 1)
        | _ -> boxed ()
    in
    go 0
  | Value.TBool ->
    let a = Bytes.make n '\000' in
    let rec go i =
      if i >= n then Bools a
      else
        match rows.(i).(j) with
        | Value.Bool b ->
          Bytes.set a i (if b then '\001' else '\000');
          go (i + 1)
        | _ -> boxed ()
    in
    go 0
  | Value.TVec -> boxed ()

let rebuild_all t rows =
  let n = Array.length rows in
  t.len <- n;
  t.cap <- max 1 n;
  t.cols <- Array.init t.arity (fun j -> build_col t.schema j rows);
  t.ext <- Array.make t.cap no_ext;
  t.lens <- None;
  t.any_ext <- false;
  Telemetry.Counter.add tel_column_copies t.arity

let refresh ?delta t rows =
  let rebuild () = rebuild_all t rows in
  let body () =
    match delta with
    | None -> rebuild ()
    | Some d ->
      if Delta.structural d || Array.length rows <> t.len || not (rectangular t) then rebuild ()
      else
        for j = 0 to t.arity - 1 do
          if Delta.dirty_attr d j then begin
            t.cols.(j) <- build_col t.schema j rows;
            Telemetry.Counter.incr tel_column_copies
          end
          else Telemetry.Counter.incr tel_cow_hits
        done
  in
  if Telemetry.Span.enabled () then Telemetry.Span.with_ ~cat:"col" "col:refresh" body
  else body ()

let snapshot t =
  {
    schema = t.schema;
    arity = t.arity;
    len = t.len;
    cap = t.cap;
    cols = Array.copy t.cols;
    ext = t.ext;
    lens = t.lens;
    any_ext = t.any_ext;
  }

let pp ppf t =
  let rep_name = function
    | Floats _ -> "floats"
    | Ints _ -> "ints"
    | Bools _ -> "bools"
    | Boxed _ -> "boxed"
  in
  Fmt.pf ppf "@[<v>colstore %d rows@,%a@]" t.len
    Fmt.(list ~sep:cut (pair ~sep:(any ": ") string string))
    (List.init t.arity (fun j -> (Schema.name_at t.schema j, rep_name t.cols.(j))))
