(** Struct-of-arrays storage for multiset relations.

    One typed column per schema attribute — [float array] / [int array] /
    packed [Bytes.t] for bools — indexed by row id, with a boxed overflow
    column for [let]-extension slots beyond the schema arity and a length
    sidecar for short (projected) rows.  Enum-like attributes are int-typed
    in this engine, so they ride in [Ints].

    The store is a faithful multiset of [Tuple.t] rows: {!materialize}
    reproduces every row bit-identically, including the [Value.t]
    constructor tags ([Int 0] and [Float 0.] compare equal but encode
    differently, so a column only uses a typed representation while every
    stored value matches it; a mismatched write promotes the column to
    [Boxed] without changing any materialized row). *)

(** A column's physical representation.  Arrays may be longer than the
    store's {!length} (capacity slack); slots at or beyond [length] are
    unspecified. *)
type col =
  | Floats of float array  (** every value is [Value.Float] *)
  | Ints of int array  (** every value is [Value.Int] *)
  | Bools of Bytes.t  (** every value is [Value.Bool]; ['\000'] = false *)
  | Boxed of Value.t array  (** mixed or vec-typed values *)

type t

val create : ?capacity:int -> Schema.t -> t
val of_tuples : Schema.t -> Tuple.t array -> t
val schema : t -> Schema.t
val length : t -> int

(** Append a row.  The row may be longer than the schema arity (extension
    slots go to the overflow column) or shorter (a projected row; missing
    slots are absent, not defaulted). *)
val append : t -> Tuple.t -> unit

(** Length of row [i] as appended (arity + extensions, or shorter). *)
val row_len : t -> int -> int

(** [get t i j] is slot [j] of row [i].  Raises [Invalid_argument] when out
    of range of the row as appended. *)
val get : t -> int -> int -> Value.t

(** Fresh boxed row equal (by {!Tuple.equal} and by codec bytes) to the row
    as appended.  Mutating the result does not write back. *)
val materialize : t -> int -> Tuple.t

val iter : (Tuple.t -> unit) -> t -> unit
val iteri : (int -> Tuple.t -> unit) -> t -> unit
val fold : ('acc -> Tuple.t -> 'acc) -> 'acc -> t -> 'acc
val to_array : t -> Tuple.t array

(** The current physical column for attribute [j] (a view, not a copy).
    Valid until the next {!append}/{!refresh} touching that column. *)
val col : t -> int -> col

(** [float_reader t j] is [Some read] when column [j] is numerically
    readable without boxing: [read i] equals
    [Value.to_float (get t i j)] for every [i < length t].  [None] for
    bool, vec and mixed columns — callers fall back to the boxed path
    (which also preserves the exact raise behavior). *)
val float_reader : t -> int -> (int -> float) option

(** [int_reader t j] is [Some read] only for pure int columns. *)
val int_reader : t -> int -> (int -> int) option

(** True when every row has exactly the schema arity (no extensions, no
    short rows) — the environment-store case the COW refresh requires. *)
val rectangular : t -> bool

(** [refresh ?delta t rows] makes [t] mirror [rows] (all of schema arity).
    With a non-structural [delta] of matching population, clean columns are
    kept as-is — their values are unchanged, so the previous arrays remain
    valid (counted as [persist.snapshot_cow_hits]) — and only dirty columns
    are rebuilt into fresh arrays (counted as [relalg.column_copies]).
    Rebuilds never mutate previously exposed arrays, so readers captured by
    cross-tick index structures stay coherent.  Without a delta, or on a
    structural tick, every column rebuilds. *)
val refresh : ?delta:Delta.t -> t -> Tuple.t array -> unit

(** Shallow snapshot sharing every column array with [t] — O(arity).
    Valid as long as [t] only advances through {!refresh} (which copies
    instead of mutating). *)
val snapshot : t -> t

val pp : t Fmt.t
