(* The combination operator (+) of Section 4.2.

   (+)R groups an effect relation by its key and const attributes and folds
   every group's effect attributes with the attribute's tag (sum for
   stackable effects, max/min for non-stackable ones).  The operator is
   associative, commutative and idempotent (equation (3)); the qcheck suite
   verifies those laws against this implementation. *)

(* Group identity: the key together with every const attribute, so two rows
   merge exactly when the paper's GROUP BY clause would merge them. *)
let group_key schema (row : Tuple.t) : Value.t list =
  List.map (fun i -> Tuple.get row i) (Schema.const_indices schema)

let combine (r : Relation.t) : Relation.t =
  let schema = Relation.schema r in
  let effect_attrs = Schema.effect_indices schema in
  let groups : (Value.t list, Tuple.t) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  Relation.iter
    (fun row ->
      let row = Tuple.restrict schema row in
      let k = group_key schema row in
      match Hashtbl.find_opt groups k with
      | None ->
        (* Seed the accumulator with neutral effect values, then merge the
           first contribution like any other, so f_j aggregates all rows. *)
        let acc = Tuple.copy row in
        List.iter (fun i -> Tuple.set acc i (Schema.neutral_of schema i)) effect_attrs;
        List.iter
          (fun i ->
            Tuple.set acc i (Schema.combine_values schema i (Tuple.get acc i) (Tuple.get row i)))
          effect_attrs;
        Hashtbl.add groups k acc;
        order := k :: !order
      | Some acc ->
        List.iter
          (fun i ->
            Tuple.set acc i (Schema.combine_values schema i (Tuple.get acc i) (Tuple.get row i)))
          effect_attrs)
    r;
  let out = Relation.create schema in
  List.iter (fun k -> Relation.add out (Hashtbl.find groups k)) (List.rev !order);
  out

(* R (+) S = (+)(R |+| S), per the paper's shorthand. *)
let union_combine (r : Relation.t) (s : Relation.t) : Relation.t =
  let schema = Relation.schema r in
  let both = Relation.create schema in
  Relation.iter (Relation.add both) r;
  Relation.iter (Relation.add both) s;
  combine both

(* Mutable per-key accumulator: the engine's O(1)-per-contribution
   implementation of (+).  Rows are identified by key alone, which is valid
   in the engine because const attributes are functionally determined by the
   key there. *)
module Acc = struct
  type t = {
    schema : Schema.t;
    effect_attrs : int list;
    table : (int, Tuple.t) Hashtbl.t;
    mutable order : int list;
    (* delta surface: effect attributes that received at least one
       contribution this tick (conservative for [add], exact for
       [add_attr]) — downstream phases use it to predict what a tick can
       possibly change before comparing values. *)
    touched : bool array;
  }

  let create schema =
    {
      schema;
      effect_attrs = Schema.effect_indices schema;
      table = Hashtbl.create 256;
      order = [];
      touched = Array.make (Schema.arity schema) false;
    }

  (* Merge the effect attributes of [row] into the accumulator. *)
  let add t (row : Tuple.t) =
    List.iter (fun i -> t.touched.(i) <- true) t.effect_attrs;
    let key = Tuple.key t.schema row in
    match Hashtbl.find_opt t.table key with
    | None ->
      let acc = Tuple.restrict t.schema (Tuple.copy row) in
      List.iter
        (fun i ->
          let neutral = Schema.neutral_of t.schema i in
          Tuple.set acc i (Schema.combine_values t.schema i neutral (Tuple.get row i)))
        t.effect_attrs;
      Hashtbl.add t.table key acc;
      t.order <- key :: t.order
    | Some acc ->
      List.iter
        (fun i ->
          Tuple.set acc i (Schema.combine_values t.schema i (Tuple.get acc i) (Tuple.get row i)))
        t.effect_attrs

  (* Contribute a single attribute's effect for [key]; the const part of the
     accumulator row is taken from [base] on first touch. *)
  let add_attr t ~base ~key attr v =
    t.touched.(attr) <- true;
    let acc =
      match Hashtbl.find_opt t.table key with
      | Some acc -> acc
      | None ->
        let acc = Tuple.restrict t.schema (Tuple.copy base) in
        List.iter (fun i -> Tuple.set acc i (Schema.neutral_of t.schema i)) t.effect_attrs;
        Hashtbl.add t.table key acc;
        t.order <- key :: t.order;
        acc
    in
    Tuple.set acc attr (Schema.combine_values t.schema attr (Tuple.get acc attr) v)

  let find_opt t key = Hashtbl.find_opt t.table key

  let to_relation t =
    let out = Relation.create t.schema in
    List.iter (fun k -> Relation.add out (Hashtbl.find t.table k)) (List.rev t.order);
    out

  let iter f t = List.iter (fun k -> f (Hashtbl.find t.table k)) (List.rev t.order)
  let cardinality t = Hashtbl.length t.table

  let touched_attr t attr = t.touched.(attr)

  let touched_attrs t =
    let out = ref [] in
    for i = Array.length t.touched - 1 downto 0 do
      if t.touched.(i) then out := i :: !out
    done;
    !out

  let tel_merge_ops = Sgl_util.Telemetry.counter "combine.merge_ops"

  (* Fold every group of [src] into [dst], in [src]'s insertion order.
     Each accumulated row is itself a combined contribution, so merging
     with [add] is exactly (+) — associativity and commutativity of the
     per-tag folds make the result independent of how contributions were
     partitioned across accumulators (the fact the parallel decision phase
     rests on; test_laws pins it on random partitions). *)
  let merge_into ~(dst : t) (src : t) : unit =
    Sgl_util.Telemetry.Counter.add tel_merge_ops (cardinality src);
    (* [add] conservatively marks every effect attribute; restore the
       union of the two exact touched sets afterwards so the merged bag
       reports no more than its parts did. *)
    let saved = Array.copy dst.touched in
    iter (add dst) src;
    Array.iteri (fun i v -> dst.touched.(i) <- v || src.touched.(i)) saved
end
