(** The effect-combination operator (+) of Section 4.2. *)

(** [combine r] is [(+)r]: group by key and const attributes, fold effect
    attributes by their tags. *)
val combine : Relation.t -> Relation.t

(** [union_combine r s] is [r (+) s = (+)(r |+| s)]. *)
val union_combine : Relation.t -> Relation.t -> Relation.t

val group_key : Schema.t -> Tuple.t -> Value.t list

(** Mutable per-key accumulator used by the engine: O(1) per contribution. *)
module Acc : sig
  type t

  val create : Schema.t -> t

  (** Merge a full effect row. *)
  val add : t -> Tuple.t -> unit

  (** Contribute one attribute for one key; [base] supplies const attributes
      on the group's first touch. *)
  val add_attr : t -> base:Tuple.t -> key:int -> int -> Value.t -> unit

  (** [merge_into ~dst src] folds every group of [src] into [dst]: the
      accumulator-level (+).  Because the per-tag folds are associative and
      commutative, folding per-partition accumulators in any order equals
      accumulating every contribution into one — the algebraic fact the
      parallel decision phase's chunk merge rests on. *)
  val merge_into : dst:t -> t -> unit

  val find_opt : t -> int -> Tuple.t option
  val to_relation : t -> Relation.t
  val iter : (Tuple.t -> unit) -> t -> unit
  val cardinality : t -> int

  (** Delta surface: did the attribute receive any contribution?  Exact for
      {!add_attr}; {!add} conservatively marks every effect attribute. *)
  val touched_attr : t -> int -> bool

  (** Touched attributes, ascending. *)
  val touched_attrs : t -> int list
end
