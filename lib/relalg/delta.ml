(* Per-tick delta summaries: which attributes changed, which unit keys were
   touched, and whether the tick changed the population structurally.

   The mutation phases (post-processing, movement, death handling) record
   into one summary as they run; the next tick's index cache validates its
   cross-tick structures against it.  The summary is deliberately coarse —
   one global dirty-attribute set plus one dirty-key set — because the
   cache only needs two sound facts:

   - an attribute absent from [dirty_attrs] has the same value on every
     unit as last tick, so any structure reading only clean attributes is
     reusable verbatim;
   - a key absent from [dirty_keys] identifies a unit none of whose
     attributes changed, so a partition containing no dirty key is
     reusable even when some of its input attributes are globally dirty.

   [structural] covers everything positional: units died, were resurrected,
   or the array order changed, so data ids no longer name the same units
   and every structure must be rebuilt.  Conservative over-reporting is
   always sound (it only costs rebuilds); under-reporting is a correctness
   bug, pinned by the differential suite's [of_tuples] cross-check. *)

type t = {
  schema : Schema.t;
  dirty_attrs : bool array; (* indexed by schema attribute *)
  mutable n_dirty_attrs : int;
  dirty_keys : (int, unit) Hashtbl.t;
  mutable structural : bool;
}

let create (schema : Schema.t) : t =
  {
    schema;
    dirty_attrs = Array.make (Schema.arity schema) false;
    n_dirty_attrs = 0;
    dirty_keys = Hashtbl.create 64;
    structural = false;
  }

let record (t : t) ~(attr : int) ~(key : int) : unit =
  if not t.dirty_attrs.(attr) then begin
    t.dirty_attrs.(attr) <- true;
    t.n_dirty_attrs <- t.n_dirty_attrs + 1
  end;
  if not (Hashtbl.mem t.dirty_keys key) then Hashtbl.add t.dirty_keys key ()

let record_structural (t : t) : unit = t.structural <- true

let structural (t : t) : bool = t.structural
let dirty_attr (t : t) (attr : int) : bool = t.dirty_attrs.(attr)
let dirty_key (t : t) (key : int) : bool = Hashtbl.mem t.dirty_keys key
let dirty_key_count (t : t) : int = Hashtbl.length t.dirty_keys

let dirty_attrs (t : t) : int list =
  let out = ref [] in
  for i = Array.length t.dirty_attrs - 1 downto 0 do
    if t.dirty_attrs.(i) then out := i :: !out
  done;
  !out

let is_clean (t : t) : bool =
  (not t.structural) && t.n_dirty_attrs = 0 && Hashtbl.length t.dirty_keys = 0

let reset (t : t) : unit =
  Array.fill t.dirty_attrs 0 (Array.length t.dirty_attrs) false;
  t.n_dirty_attrs <- 0;
  Hashtbl.reset t.dirty_keys;
  t.structural <- false

(* The ground-truth delta between two unit arrays, for tests: positional
   compare when the populations align, structural otherwise.  A recorded
   summary is sound iff it covers everything this reports. *)
let of_tuples ~(schema : Schema.t) ~(before : Tuple.t array) ~(after : Tuple.t array) : t =
  let d = create schema in
  if Array.length before <> Array.length after then record_structural d
  else
    Array.iteri
      (fun i b ->
        let a = after.(i) in
        if Tuple.key schema b <> Tuple.key schema a then record_structural d
        else
          for attr = 0 to Schema.arity schema - 1 do
            if not (Value.equal (Tuple.get b attr) (Tuple.get a attr)) then
              record d ~attr ~key:(Tuple.key schema b)
          done)
      before;
  d

(* [covers ~summary ~truth]: does the recorded summary account for every
   change the ground truth reports?  (The soundness obligation.) *)
let covers ~(summary : t) ~(truth : t) : bool =
  if truth.structural then summary.structural
  else
    summary.structural
    || (Array.for_all2 (fun s t -> s || not t) summary.dirty_attrs truth.dirty_attrs
       && Hashtbl.fold (fun k () ok -> ok && dirty_key summary k) truth.dirty_keys true)

let pp ppf (t : t) =
  if t.structural then Fmt.pf ppf "structural"
  else
    Fmt.pf ppf "attrs=[%s] keys=%d"
      (String.concat ","
         (List.map (fun i -> Schema.name_at t.schema i) (dirty_attrs t)))
      (Hashtbl.length t.dirty_keys)
