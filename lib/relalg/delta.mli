(** Per-tick delta summaries: which attributes changed on which unit keys,
    and whether the population changed structurally.  Mutation phases
    record; the cross-tick index cache validates against the result.
    Over-reporting is sound (costs rebuilds); under-reporting is a
    correctness bug. *)

type t

val create : Schema.t -> t

(** Mark [attr] dirty on the unit identified by [key]. *)
val record : t -> attr:int -> key:int -> unit

(** Mark the tick structural: units were added, removed, or reordered, so
    positional data ids no longer name the same units. *)
val record_structural : t -> unit

val structural : t -> bool
val dirty_attr : t -> int -> bool
val dirty_key : t -> int -> bool
val dirty_key_count : t -> int

(** Dirty attributes, ascending. *)
val dirty_attrs : t -> int list

val is_clean : t -> bool
val reset : t -> unit

(** Ground-truth delta between two unit arrays (positional compare;
    structural when populations differ or keys moved).  For tests. *)
val of_tuples : schema:Schema.t -> before:Tuple.t array -> after:Tuple.t array -> t

(** Does [summary] account for every change [truth] reports? *)
val covers : summary:t -> truth:t -> bool

val pp : t Fmt.t
