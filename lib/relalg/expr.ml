(* Resolved scalar expressions — the "terms" of SGL after name resolution.

   Expressions are evaluated against an evaluation context holding the
   current unit tuple [u] (possibly extended by let-bindings), optionally a
   scanned environment tuple [e] (inside aggregate bodies and effect
   clauses), and the per-tick random function. *)

type binop = Add | Sub | Mul | Div | Mod
type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Const of Value.t
  | UAttr of int (* slot of the current unit record (schema attr or let slot) *)
  | EAttr of int (* attribute of the scanned environment tuple *)
  | Binop of binop * t * t
  | Cmp of cmpop * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Neg of t
  | VecOf of t * t (* build a 2-d vector *)
  | VecX of t
  | VecY of t
  | Abs of t
  | Sqrt of t
  | MinOf of t * t
  | MaxOf of t * t
  | Random of t (* Random(i): stable within a tick *)

type ctx = {
  u : Tuple.t;
  e : Tuple.t option;
  rand : int -> int;
}

exception Eval_error of string

let eval_error fmt = Fmt.kstr (fun s -> raise (Eval_error s)) fmt

let rec eval ctx expr =
  match expr with
  | Const v -> v
  | UAttr i ->
    if i >= Array.length ctx.u then eval_error "unit slot %d out of range" i;
    ctx.u.(i)
  | EAttr i -> begin
    match ctx.e with
    | None -> eval_error "e.* reference outside an aggregate or effect body"
    | Some e ->
      if i >= Array.length e then eval_error "env attribute %d out of range" i;
      e.(i)
  end
  | Binop (op, a, b) ->
    let va = eval ctx a and vb = eval ctx b in
    apply_binop op va vb
  | Cmp (op, a, b) ->
    let va = eval ctx a and vb = eval ctx b in
    Value.Bool (apply_cmp op va vb)
  | And (a, b) -> Value.Bool (Value.to_bool (eval ctx a) && Value.to_bool (eval ctx b))
  | Or (a, b) -> Value.Bool (Value.to_bool (eval ctx a) || Value.to_bool (eval ctx b))
  | Not a -> Value.Bool (not (Value.to_bool (eval ctx a)))
  | Neg a -> Value.neg (eval ctx a)
  | VecOf (a, b) -> Value.make_vec (eval ctx a) (eval ctx b)
  | VecX a -> Value.vec_x (eval ctx a)
  | VecY a -> Value.vec_y (eval ctx a)
  | Abs a -> begin
    match eval ctx a with
    | Value.Int i -> Value.Int (abs i)
    | Value.Float f -> Value.Float (Float.abs f)
    | v -> eval_error "abs of non-number %a" Value.pp v
  end
  | Sqrt a -> Value.Float (sqrt (Value.to_float (eval ctx a)))
  | MinOf (a, b) ->
    let va = eval ctx a and vb = eval ctx b in
    if Value.compare_num va vb <= 0 then va else vb
  | MaxOf (a, b) ->
    let va = eval ctx a and vb = eval ctx b in
    if Value.compare_num va vb >= 0 then va else vb
  | Random a -> Value.Int (ctx.rand (Value.to_int (eval ctx a)))

and apply_binop op a b =
  match op with
  | Add -> Value.add a b
  | Sub -> Value.sub a b
  | Mul -> Value.mul a b
  | Div -> Value.div a b
  | Mod -> Value.modulo a b

and apply_cmp op a b =
  match op with
  | Eq -> Value.equal a b
  | Ne -> not (Value.equal a b)
  | Lt -> Value.compare_num a b < 0
  | Le -> Value.compare_num a b <= 0
  | Gt -> Value.compare_num a b > 0
  | Ge -> Value.compare_num a b >= 0

let eval_bool ctx expr = Value.to_bool (eval ctx expr)
let eval_float ctx expr = Value.to_float (eval ctx expr)
let eval_int ctx expr = Value.to_int (eval ctx expr)

(* Structural analysis used by the optimizer and the index planner. *)

let rec mentions_e = function
  | Const _ | UAttr _ -> false
  | EAttr _ -> true
  | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b)
  | VecOf (a, b) | MinOf (a, b) | MaxOf (a, b) ->
    mentions_e a || mentions_e b
  | Not a | Neg a | VecX a | VecY a | Abs a | Sqrt a | Random a -> mentions_e a

let rec mentions_u = function
  | Const _ | EAttr _ -> false
  | UAttr _ -> true
  | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b)
  | VecOf (a, b) | MinOf (a, b) | MaxOf (a, b) ->
    mentions_u a || mentions_u b
  | Not a | Neg a | VecX a | VecY a | Abs a | Sqrt a | Random a -> mentions_u a

let rec mentions_random = function
  | Const _ | EAttr _ | UAttr _ -> false
  | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b)
  | VecOf (a, b) | MinOf (a, b) | MaxOf (a, b) ->
    mentions_random a || mentions_random b
  | Not a | Neg a | VecX a | VecY a | Abs a | Sqrt a -> mentions_random a
  | Random _ -> true

(* Unit slots referenced by the expression (for lazy let placement). *)
let u_slots expr =
  let acc = ref [] in
  let rec go = function
    | Const _ | EAttr _ -> ()
    | UAttr i -> if not (List.mem i !acc) then acc := i :: !acc
    | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b)
    | VecOf (a, b) | MinOf (a, b) | MaxOf (a, b) ->
      go a;
      go b
    | Not a | Neg a | VecX a | VecY a | Abs a | Sqrt a | Random a -> go a
  in
  go expr;
  List.sort compare !acc

(* Environment slots referenced by the expression (the attributes an index
   structure evaluating it over data rows depends on). *)
let e_slots expr =
  let acc = ref [] in
  let rec go = function
    | Const _ | UAttr _ -> ()
    | EAttr i -> if not (List.mem i !acc) then acc := i :: !acc
    | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b)
    | VecOf (a, b) | MinOf (a, b) | MaxOf (a, b) ->
      go a;
      go b
    | Not a | Neg a | VecX a | VecY a | Abs a | Sqrt a | Random a -> go a
  in
  go expr;
  List.sort compare !acc

let cmp_name = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "mod"

let rec pp ppf = function
  | Const v -> Value.pp ppf v
  | UAttr i -> Fmt.pf ppf "u[%d]" i
  | EAttr i -> Fmt.pf ppf "e[%d]" i
  | Binop (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp a (binop_name op) pp b
  | Cmp (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp a (cmp_name op) pp b
  | And (a, b) -> Fmt.pf ppf "(%a and %a)" pp a pp b
  | Or (a, b) -> Fmt.pf ppf "(%a or %a)" pp a pp b
  | Not a -> Fmt.pf ppf "(not %a)" pp a
  | Neg a -> Fmt.pf ppf "(- %a)" pp a
  | VecOf (a, b) -> Fmt.pf ppf "(%a, %a)" pp a pp b
  | VecX a -> Fmt.pf ppf "%a.x" pp a
  | VecY a -> Fmt.pf ppf "%a.y" pp a
  | Abs a -> Fmt.pf ppf "abs(%a)" pp a
  | Sqrt a -> Fmt.pf ppf "sqrt(%a)" pp a
  | MinOf (a, b) -> Fmt.pf ppf "min(%a, %a)" pp a pp b
  | MaxOf (a, b) -> Fmt.pf ppf "max(%a, %a)" pp a pp b
  | Random a -> Fmt.pf ppf "random(%a)" pp a
