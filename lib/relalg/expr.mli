(** Resolved scalar expressions over the current unit [u] and, inside
    aggregate or effect bodies, a scanned environment tuple [e]. *)

type binop = Add | Sub | Mul | Div | Mod
type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Const of Value.t
  | UAttr of int
  | EAttr of int
  | Binop of binop * t * t
  | Cmp of cmpop * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Neg of t
  | VecOf of t * t
  | VecX of t
  | VecY of t
  | Abs of t
  | Sqrt of t
  | MinOf of t * t
  | MaxOf of t * t
  | Random of t

type ctx = {
  u : Tuple.t;
  e : Tuple.t option;
  rand : int -> int;
}

exception Eval_error of string

val eval : ctx -> t -> Value.t
val eval_bool : ctx -> t -> bool
val eval_float : ctx -> t -> float
val eval_int : ctx -> t -> int
val apply_cmp : cmpop -> Value.t -> Value.t -> bool
val apply_binop : binop -> Value.t -> Value.t -> Value.t

(** Does the expression reference [e.*]? *)
val mentions_e : t -> bool

(** Does the expression reference [u.*]? *)
val mentions_u : t -> bool

(** Does the expression call [Random]? *)
val mentions_random : t -> bool

(** Sorted unit slots referenced, for dependency analysis. *)
val u_slots : t -> int list

(** Sorted environment slots referenced — the attributes an index structure
    evaluating the expression over data rows depends on. *)
val e_slots : t -> int list

val cmp_name : cmpop -> string
val binop_name : binop -> string
val pp : t Fmt.t
