(* Conjunctive selection conditions over (u, e) and their classification.

   Section 5.3 assumes aggregate selections are conjunctive and splits the
   conjuncts into the parts an index can serve: categorical equalities
   (hash levels), orthogonal range bounds on continuous attributes (range
   tree / sweepline levels), and a residual that must be filtered tuple-at-
   a-time.  [classify] performs exactly that split. *)

type t = Expr.t list (* conjuncts; the empty list is "true" *)

let always_true : t = []
let conjuncts (p : t) = p
let of_conjuncts l : t = l

(* Flatten nested [And]s of a boolean expression into a conjunct list. *)
let rec of_expr (e : Expr.t) : t =
  match e with
  | Expr.And (a, b) -> of_expr a @ of_expr b
  | Expr.Const (Value.Bool true) -> []
  | other -> [ other ]

let to_expr (p : t) : Expr.t =
  match p with
  | [] -> Expr.Const (Value.Bool true)
  | c :: rest -> List.fold_left (fun acc c' -> Expr.And (acc, c')) c rest

let holds ctx (p : t) = List.for_all (Expr.eval_bool ctx) p

(* ------------------------------------------------------------------ *)
(* Classification *)

type bound = {
  value : Expr.t; (* expression over u only *)
  inclusive : bool;
}

type conjunct_class =
  | Cat_eq of int * Expr.t (* e.a = rhs(u) on an int attribute *)
  | Cat_ne of int * Expr.t (* e.a <> rhs(u) on an int attribute *)
  | Lower of int * bound (* e.a >= / > rhs(u) *)
  | Upper of int * bound (* e.a <= / < rhs(u) *)
  | Residual of Expr.t (* anything else *)

(* [e.a OP rhs] with [rhs] free of e.  The caller has already normalized the
   orientation so the environment attribute is on the left. *)
let classify_oriented op a rhs =
  match op with
  | Expr.Eq -> Cat_eq (a, rhs)
  | Expr.Ne -> Cat_ne (a, rhs)
  | Expr.Ge -> Lower (a, { value = rhs; inclusive = true })
  | Expr.Gt -> Lower (a, { value = rhs; inclusive = false })
  | Expr.Le -> Upper (a, { value = rhs; inclusive = true })
  | Expr.Lt -> Upper (a, { value = rhs; inclusive = false })

let flip_cmp = function
  | Expr.Eq -> Expr.Eq
  | Expr.Ne -> Expr.Ne
  | Expr.Lt -> Expr.Gt
  | Expr.Le -> Expr.Ge
  | Expr.Gt -> Expr.Lt
  | Expr.Ge -> Expr.Le

let classify_conjunct (c : Expr.t) : conjunct_class =
  match c with
  | Expr.Cmp (op, Expr.EAttr a, rhs) when not (Expr.mentions_e rhs) ->
    classify_oriented op a rhs
  | Expr.Cmp (op, lhs, Expr.EAttr a) when not (Expr.mentions_e lhs) ->
    classify_oriented (flip_cmp op) a lhs
  | other -> Residual other

type classified = {
  cat_eqs : (int * Expr.t) list;
  cat_nes : (int * Expr.t) list;
  lowers : (int * bound) list;
  uppers : (int * bound) list;
  residuals : Expr.t list;
}

let classify (p : t) : classified =
  let init = { cat_eqs = []; cat_nes = []; lowers = []; uppers = []; residuals = [] } in
  let step acc c =
    match classify_conjunct c with
    | Cat_eq (a, rhs) -> { acc with cat_eqs = (a, rhs) :: acc.cat_eqs }
    | Cat_ne (a, rhs) -> { acc with cat_nes = (a, rhs) :: acc.cat_nes }
    | Lower (a, b) -> { acc with lowers = (a, b) :: acc.lowers }
    | Upper (a, b) -> { acc with uppers = (a, b) :: acc.uppers }
    | Residual e -> { acc with residuals = e :: acc.residuals }
  in
  let acc = List.fold_left step init p in
  {
    cat_eqs = List.rev acc.cat_eqs;
    cat_nes = List.rev acc.cat_nes;
    lowers = List.rev acc.lowers;
    uppers = List.rev acc.uppers;
    residuals = List.rev acc.residuals;
  }

(* The continuous attributes constrained by range bounds, deduplicated and
   sorted: these become the dimensions of the layered range tree. *)
let range_attrs cls =
  let attrs = List.map fst cls.lowers @ List.map fst cls.uppers in
  List.sort_uniq compare attrs

let pp ppf (p : t) =
  match p with
  | [] -> Fmt.string ppf "true"
  | _ -> Fmt.(list ~sep:(any " and ") Expr.pp) ppf p
