(** Conjunctive predicates and their classification for index planning
    (Section 5.3). *)

type t = Expr.t list

val always_true : t
val conjuncts : t -> Expr.t list
val of_conjuncts : Expr.t list -> t

(** Split nested [And]s into a conjunct list. *)
val of_expr : Expr.t -> t

val to_expr : t -> Expr.t
val holds : Expr.ctx -> t -> bool

type bound = { value : Expr.t; inclusive : bool }

type conjunct_class =
  | Cat_eq of int * Expr.t
  | Cat_ne of int * Expr.t
  | Lower of int * bound
  | Upper of int * bound
  | Residual of Expr.t

(** Mirror a comparison operator across [=] (e.g. [<] becomes [>]). *)
val flip_cmp : Expr.cmpop -> Expr.cmpop

val classify_conjunct : Expr.t -> conjunct_class

type classified = {
  cat_eqs : (int * Expr.t) list;
  cat_nes : (int * Expr.t) list;
  lowers : (int * bound) list;
  uppers : (int * bound) list;
  residuals : Expr.t list;
}

val classify : t -> classified

(** Continuous attributes under range bounds — the range-tree dimensions. *)
val range_attrs : classified -> int list

val pp : t Fmt.t
