(* Multiset relations.

   The environment E is a multiset (Section 4: "it need not have keys"), and
   intermediate script relations carry let-extended rows, so rows may be
   longer than the schema arity; the schema always describes a prefix.

   Storage is columnar (struct-of-arrays, see {!Colstore}): one typed array
   per schema attribute plus a boxed overflow column for let-extension
   slots.  The row-oriented API below is a materializing view over it — a
   returned [Tuple.t] is a fresh boxed copy of the row, bit-identical to
   the row as added, and mutating it does not write back. *)

open Sgl_util

type t = { store : Colstore.t }

let create schema = { store = Colstore.create schema }

let of_tuples schema tuples =
  let t = create schema in
  List.iter (Colstore.append t.store) tuples;
  t

let of_rows schema rows =
  let t = create schema in
  Varray.iter (Colstore.append t.store) rows;
  t

let schema t = Colstore.schema t.store
let cardinality t = Colstore.length t.store
let add t row = Colstore.append t.store row
let row t i = Colstore.materialize t.store i
let iter f t = Colstore.iter f t.store
let iteri f t = Colstore.iteri f t.store
let fold f init t = Colstore.fold f init t.store
let to_list t = List.init (cardinality t) (row t)
let to_array t = Colstore.to_array t.store

let map_rows f t =
  let out = create (schema t) in
  iter (fun row -> add out (f row)) t;
  out

let filter_rows p t =
  let out = create (schema t) in
  iter (fun row -> if p row then add out row) t;
  out

module Col = struct
  let store t = t.store
  let float_reader t j = Colstore.float_reader t.store j
  let int_reader t j = Colstore.int_reader t.store j

  let float_get t ~attr ~row =
    match Colstore.col t.store attr with
    | Colstore.Floats a ->
      if row < 0 || row >= Colstore.length t.store then invalid_arg "Relation.Col.float_get";
      a.(row)
    | _ -> Value.to_float (Colstore.get t.store row attr)

  let unsafe_float_get t ~attr ~row =
    match Colstore.col t.store attr with
    | Colstore.Floats a -> Array.unsafe_get a row
    | _ -> Value.to_float (Colstore.get t.store row attr)

  let iter_floats t j f =
    match Colstore.float_reader t.store j with
    | Some read ->
      for i = 0 to Colstore.length t.store - 1 do
        f i (read i)
      done
    | None ->
      for i = 0 to Colstore.length t.store - 1 do
        f i (Value.to_float (Colstore.get t.store i j))
      done
end

(* Multiset equality up to row order: sort printable forms and compare.
   Only used by tests and assertions, so the cost is acceptable. *)
let equal_as_multiset a b =
  cardinality a = cardinality b
  &&
  let keyed r = List.sort compare (List.map Fmt.(str "%a" Tuple.pp) (to_list r)) in
  keyed a = keyed b

let pp ppf t =
  Fmt.pf ppf "@[<v>%a (%d rows)@,%a@]" Schema.pp (schema t) (cardinality t)
    Fmt.(list ~sep:cut Tuple.pp)
    (to_list t)
