(* Multiset relations.

   The environment E is a multiset (Section 4: "it need not have keys"), and
   intermediate script relations carry let-extended rows, so rows may be
   longer than the schema arity; the schema always describes a prefix. *)

open Sgl_util

type t = {
  schema : Schema.t;
  rows : Tuple.t Varray.t;
}

let empty_row : Tuple.t = [||]

let create schema = { schema; rows = Varray.create empty_row }

let of_tuples schema tuples =
  let t = create schema in
  List.iter (fun row -> Varray.push t.rows row) tuples;
  t

let of_rows schema rows = { schema; rows }
let schema t = t.schema
let cardinality t = Varray.length t.rows
let add t row = Varray.push t.rows row
let row t i = Varray.get t.rows i
let iter f t = Varray.iter f t.rows
let iteri f t = Varray.iteri f t.rows
let fold f init t = Varray.fold_left f init t.rows
let to_list t = Varray.to_list t.rows
let to_array t = Varray.to_array t.rows

let map_rows f t =
  let out = create t.schema in
  iter (fun row -> add out (f row)) t;
  out

let filter_rows p t =
  let out = create t.schema in
  iter (fun row -> if p row then add out row) t;
  out

(* Multiset equality up to row order: sort printable forms and compare.
   Only used by tests and assertions, so the cost is acceptable. *)
let equal_as_multiset a b =
  cardinality a = cardinality b
  &&
  let keyed r = List.sort compare (List.map Fmt.(str "%a" Tuple.pp) (to_list r)) in
  keyed a = keyed b

let pp ppf t =
  Fmt.pf ppf "@[<v>%a (%d rows)@,%a@]" Schema.pp t.schema (cardinality t)
    Fmt.(list ~sep:cut Tuple.pp)
    (to_list t)
