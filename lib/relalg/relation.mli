(** Multiset relations over a schema, stored columnar (struct-of-arrays,
    {!Colstore}) behind a materializing row view.

    Arity contract: the schema describes a {e prefix} of each row.  Rows
    may be longer than the schema arity — the extra slots are
    [let]-extension (or product-concatenation) overflow, kept in a
    dedicated boxed column — or shorter, when produced by projection.
    Every accessor that returns a [Tuple.t] materializes a fresh boxed row
    bit-identical to the row as added (same [Value.t] constructor tags,
    same length, extensions included); mutating a materialized row never
    writes back into the relation. *)

open Sgl_util

type t

val create : Schema.t -> t
val of_tuples : Schema.t -> Tuple.t list -> t
val of_rows : Schema.t -> Tuple.t Varray.t -> t
val schema : t -> Schema.t
val cardinality : t -> int

(** Appends a row of any length (see the arity contract above).  The row
    is decomposed into columns at add time; later mutation of the caller's
    array is not observed. *)
val add : t -> Tuple.t -> unit

val row : t -> int -> Tuple.t
val iter : (Tuple.t -> unit) -> t -> unit
val iteri : (int -> Tuple.t -> unit) -> t -> unit
val fold : ('acc -> Tuple.t -> 'acc) -> 'acc -> t -> 'acc
val to_list : t -> Tuple.t list
val to_array : t -> Tuple.t array

(** [map_rows f t] applies [f] to every materialized row — including its
    let-extension slots — and collects the results under the same schema.
    [f] may return rows of any length; extension slots in the result are
    preserved (they land in the overflow column, not truncated). *)
val map_rows : (Tuple.t -> Tuple.t) -> t -> t

(** [filter_rows p t] keeps the rows satisfying [p], preserving each row
    bit-identically — let-extension slots included. *)
val filter_rows : (Tuple.t -> bool) -> t -> t

(** Direct column access, bypassing row materialization.  Row ids are the
    add order, [0 .. cardinality-1]. *)
module Col : sig
  (** The backing columnar store (a view, not a copy). *)
  val store : t -> Colstore.t

  (** [float_reader t j] is [Some read] when attribute [j] is stored as a
      typed numeric column; [read i] avoids boxing entirely. *)
  val float_reader : t -> int -> (int -> float) option

  val int_reader : t -> int -> (int -> int) option

  (** Bounds-checked scalar read; falls back to the boxed path on
      non-float columns (preserving coercion errors). *)
  val float_get : t -> attr:int -> row:int -> float

  (** No bounds check on typed columns — caller guarantees
      [row < cardinality t]. *)
  val unsafe_float_get : t -> attr:int -> row:int -> float

  (** [iter_floats t j f] calls [f i x] for every row id [i] with the
      numeric value of attribute [j] — a contiguous scan on typed
      columns. *)
  val iter_floats : t -> int -> (int -> float -> unit) -> unit
end

(** Order-insensitive multiset equality (test helper). *)
val equal_as_multiset : t -> t -> bool

val pp : t Fmt.t
