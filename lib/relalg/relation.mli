(** Multiset relations over a schema.  Rows may be longer than the schema
    arity when they carry [let]-extension slots. *)

open Sgl_util

type t

val create : Schema.t -> t
val of_tuples : Schema.t -> Tuple.t list -> t
val of_rows : Schema.t -> Tuple.t Varray.t -> t
val schema : t -> Schema.t
val cardinality : t -> int
val add : t -> Tuple.t -> unit
val row : t -> int -> Tuple.t
val iter : (Tuple.t -> unit) -> t -> unit
val iteri : (int -> Tuple.t -> unit) -> t -> unit
val fold : ('acc -> Tuple.t -> 'acc) -> 'acc -> t -> 'acc
val to_list : t -> Tuple.t list
val to_array : t -> Tuple.t array
val map_rows : (Tuple.t -> Tuple.t) -> t -> t
val filter_rows : (Tuple.t -> bool) -> t -> t

(** Order-insensitive multiset equality (test helper). *)
val equal_as_multiset : t -> t -> bool

val pp : t Fmt.t
