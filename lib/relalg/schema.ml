(* Schemas for the environment relation E.

   Section 4.2: each attribute carries a combination tag.  [Const] attributes
   are unit state and may never be the direct subject of an effect; the
   remaining tags say how simultaneous effects on the attribute merge:
   [Sum] for stackable effects, [Max]/[Min] for non-stackable ones. *)

type tag = Const | Sum | Max | Min | Pmax

(* [range] is an optional declared value range [lo, hi] (inclusive, in the
   numeric order of {!Value.compare_num}) that every stored value of the
   attribute is promised to satisfy.  It is a contract, not an invariant the
   store enforces: the static analyses in [sgl_analysis] treat it as ground
   truth, so a schema should only declare ranges the engine actually
   maintains.  Ranges are advisory metadata — they take no part in schema
   equality for persistence and are not serialized. *)
type attr = { name : string; ty : Value.ty; tag : tag; range : (float * float) option }

type t = {
  attrs : attr array;
  by_name : (string, int) Hashtbl.t;
  key : int; (* index of the key attribute *)
}

exception Schema_error of string

let schema_error fmt = Fmt.kstr (fun s -> raise (Schema_error s)) fmt

let attr ?(tag = Const) ?range name ty = { name; ty; tag; range }

let create attrs =
  let attrs = Array.of_list attrs in
  let by_name = Hashtbl.create (Array.length attrs * 2) in
  Array.iteri
    (fun i a ->
      if Hashtbl.mem by_name a.name then schema_error "duplicate attribute %S" a.name;
      Hashtbl.add by_name a.name i)
    attrs;
  let key =
    match Hashtbl.find_opt by_name "key" with
    | None -> schema_error "schema must declare a \"key\" attribute"
    | Some i -> i
  in
  if attrs.(key).ty <> Value.TInt then schema_error "\"key\" must have type int";
  if attrs.(key).tag <> Const then schema_error "\"key\" must be const";
  { attrs; by_name; key }

let arity t = Array.length t.attrs
let key_index t = t.key
let attr_at t i = t.attrs.(i)
let name_at t i = t.attrs.(i).name
let ty_at t i = t.attrs.(i).ty
let tag_at t i = t.attrs.(i).tag
let range_at t i = t.attrs.(i).range
let find_opt t name = Hashtbl.find_opt t.by_name name

let find t name =
  match find_opt t name with
  | Some i -> i
  | None -> schema_error "unknown attribute %S" name

let mem t name = Hashtbl.mem t.by_name name
let attrs t = Array.to_list t.attrs

(* Indices of all non-const (effect) attributes, in schema order. *)
let effect_indices t =
  let acc = ref [] in
  for i = Array.length t.attrs - 1 downto 0 do
    if t.attrs.(i).tag <> Const then acc := i :: !acc
  done;
  !acc

let const_indices t =
  let acc = ref [] in
  for i = Array.length t.attrs - 1 downto 0 do
    if t.attrs.(i).tag = Const then acc := i :: !acc
  done;
  !acc

(* The neutral element for an effect attribute: contributing it leaves the
   combined effect unchanged (0 for sum, -inf for max, +inf for min). *)
let neutral_of t i =
  let a = t.attrs.(i) in
  match (a.tag, a.ty) with
  | Const, _ -> schema_error "attribute %S is const and has no neutral element" a.name
  | Sum, Value.TInt -> Value.Int 0
  | Sum, Value.TFloat -> Value.Float 0.
  | Sum, Value.TVec -> Value.Vec Sgl_util.Vec2.zero
  | Max, Value.TInt -> Value.Int min_int
  | Max, Value.TFloat -> Value.Float neg_infinity
  | Min, Value.TInt -> Value.Int max_int
  | Min, Value.TFloat -> Value.Float infinity
  | Pmax, Value.TVec -> Value.Vec (Sgl_util.Vec2.make neg_infinity 0.)
  | Pmax, (Value.TInt | Value.TFloat | Value.TBool) ->
    schema_error "priority-set attribute %S must have type vec (priority, value)" a.name
  | (Sum | Max | Min), Value.TBool -> schema_error "bool attribute %S cannot be an effect" a.name
  | (Max | Min), Value.TVec -> schema_error "vec attribute %S cannot combine by min/max" a.name

(* Merge one contribution into an accumulated effect value. *)
let combine_values t i acc v =
  match t.attrs.(i).tag with
  | Const ->
    if not (Value.equal acc v) then
      schema_error "conflicting values for const attribute %S" t.attrs.(i).name;
    acc
  | Sum -> Value.add acc v
  | Max -> if Value.compare_num v acc > 0 then v else acc
  | Min -> if Value.compare_num v acc < 0 then v else acc
  | Pmax ->
    (* Section 2.2: absolute "set" effects are non-stackable, determined by
       maximum priority (the x component); ties prefer the larger value so
       the result is order-independent. *)
    let px = Value.vec_x acc and vx = Value.vec_x v in
    let c = Value.compare_num vx px in
    if c > 0 then v
    else if c < 0 then acc
    else if Value.compare_num (Value.vec_y v) (Value.vec_y acc) > 0 then v
    else acc

let tag_name = function
  | Const -> "const"
  | Sum -> "sum"
  | Max -> "max"
  | Min -> "min"
  | Pmax -> "pmax"

let pp ppf t =
  let pp_attr ppf a = Fmt.pf ppf "%s:%s/%s" a.name (Value.ty_name a.ty) (tag_name a.tag) in
  Fmt.pf ppf "E(%a)" Fmt.(array ~sep:(any ", ") pp_attr) t.attrs
