(** Environment-relation schemas with effect-combination tags (Section 4.2).

    Every schema must declare an int-typed, const-tagged attribute named
    ["key"] identifying the unit. *)

(** [Pmax] realizes Section 2.2's absolute "set" effects: a vec-typed
    attribute holding (priority, value), combined by maximum priority. *)
type tag = Const | Sum | Max | Min | Pmax

(** [range] optionally declares an inclusive value range [(lo, hi)] every
    stored value of the attribute satisfies.  Advisory metadata consumed by
    the interval analyses in [sgl_analysis]; not serialized and excluded
    from persisted-schema equality. *)
type attr = { name : string; ty : Value.ty; tag : tag; range : (float * float) option }

type t

exception Schema_error of string

(** Raise a formatted {!Schema_error}. *)
val schema_error : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** [attr ?tag ?range name ty] builds an attribute description; [tag]
    defaults to [Const] and [range] to unconstrained. *)
val attr : ?tag:tag -> ?range:float * float -> string -> Value.ty -> attr

(** Raises {!Schema_error} on duplicate names or a missing/ill-typed key. *)
val create : attr list -> t

val arity : t -> int
val key_index : t -> int
val attr_at : t -> int -> attr
val name_at : t -> int -> string
val ty_at : t -> int -> Value.ty
val tag_at : t -> int -> tag

(** The attribute's declared value range, when one was given to {!attr}. *)
val range_at : t -> int -> (float * float) option
val find_opt : t -> string -> int option

(** Raises {!Schema_error} when the attribute does not exist. *)
val find : t -> string -> int

val mem : t -> string -> bool
val attrs : t -> attr list
val effect_indices : t -> int list
val const_indices : t -> int list

(** Identity element of the attribute's combination operation. *)
val neutral_of : t -> int -> Value.t

(** [combine_values t i acc v] merges contribution [v] into [acc] according
    to attribute [i]'s tag. *)
val combine_values : t -> int -> Value.t -> Value.t -> Value.t

val tag_name : tag -> string
val pp : t Fmt.t
