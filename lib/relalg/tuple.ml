(* Rows of the environment relation: a value per schema attribute.

   SGL [let]-bindings extend the current unit record (Section 4.3), so a
   tuple may carry extra slots beyond the schema arity during script
   evaluation; those slots are stripped before effects are combined. *)

type t = Value.t array

let create schema =
  Array.init (Schema.arity schema) (fun i -> Value.zero_of (Schema.ty_at schema i))

let of_list schema values =
  let arr = Array.of_list values in
  if Array.length arr <> Schema.arity schema then
    Schema.schema_error "tuple arity %d does not match schema arity %d"
      (Array.length arr) (Schema.arity schema);
  Array.iteri
    (fun i v ->
      let expected = Schema.ty_at schema i in
      let ok =
        match (expected, v) with
        | Value.TFloat, Value.Int _ -> true (* widen on construction *)
        | _ -> Value.ty_of v = expected
      in
      if not ok then
        Schema.schema_error "attribute %S expects %s, got %s"
          (Schema.name_at schema i)
          (Value.ty_name expected)
          (Value.ty_name (Value.ty_of v)))
    arr;
  Array.mapi
    (fun i v ->
      match (Schema.ty_at schema i, v) with
      | Value.TFloat, Value.Int n -> Value.Float (float_of_int n)
      | _ -> v)
    arr

let get (t : t) i = t.(i)
let set (t : t) i v = t.(i) <- v
let copy = Array.copy
let arity = Array.length
let key schema (t : t) = Value.to_int t.(Schema.key_index schema)

(* Extend with one extra slot (for a let-binding); returns a fresh tuple. *)
let extend (t : t) v =
  let n = Array.length t in
  let out = Array.make (n + 1) v in
  Array.blit t 0 out 0 n;
  out

(* Drop any slots beyond the schema arity. *)
let restrict schema (t : t) =
  let n = Schema.arity schema in
  if Array.length t = n then t else Array.sub t 0 n

let equal (a : t) (b : t) =
  Array.length a = Array.length b
  &&
  let rec go i = i >= Array.length a || (Value.equal a.(i) b.(i) && go (i + 1)) in
  go 0

let pp ppf (t : t) = Fmt.pf ppf "(%a)" Fmt.(array ~sep:(any ", ") Value.pp) t
