(** Rows of the environment relation. *)

type t = Value.t array

(** A tuple of zero values for the schema. *)
val create : Schema.t -> t

(** Builds and type-checks a tuple; ints widen into float-typed attributes.
    Raises {!Schema.Schema_error} on arity or type mismatch. *)
val of_list : Schema.t -> Value.t list -> t

val get : t -> int -> Value.t
val set : t -> int -> Value.t -> unit
val copy : t -> t
val arity : t -> int

(** The unit's key value. *)
val key : Schema.t -> t -> int

(** Fresh tuple with one appended slot (a [let] extension). *)
val extend : t -> Value.t -> t

(** Fresh tuple truncated to the schema arity (drops [let] extensions). *)
val restrict : Schema.t -> t -> t

val equal : t -> t -> bool
val pp : t Fmt.t
