(* Dynamically typed attribute values.

   The environment relation E stores unit state; SGL terms compute over it.
   Four runtime types suffice for the paper's workloads: integers (keys,
   health, cooldowns), floats (positions, distances), booleans (conditions)
   and 2-d vectors (centroids, movement vectors). *)

open Sgl_util

type ty = TInt | TFloat | TBool | TVec

type t =
  | Int of int
  | Float of float
  | Bool of bool
  | Vec of Vec2.t

exception Type_error of string

let type_error fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

let ty_of = function
  | Int _ -> TInt
  | Float _ -> TFloat
  | Bool _ -> TBool
  | Vec _ -> TVec

let ty_name = function
  | TInt -> "int"
  | TFloat -> "float"
  | TBool -> "bool"
  | TVec -> "vec"

let pp ppf = function
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.pf ppf "%g" f
  | Bool b -> Fmt.bool ppf b
  | Vec v -> Vec2.pp ppf v

let to_string v = Fmt.str "%a" pp v

(* Numeric access with implicit int->float widening, as in game scripting
   languages; everything else is a type error. *)
let to_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | (Bool _ | Vec _) as v -> type_error "expected a number, got %a" pp v

let to_int = function
  | Int i -> i
  | Float f -> int_of_float f
  | (Bool _ | Vec _) as v -> type_error "expected an int, got %a" pp v

let to_bool = function
  | Bool b -> b
  | (Int _ | Float _ | Vec _) as v -> type_error "expected a bool, got %a" pp v

let to_vec = function
  | Vec v -> v
  | (Int _ | Float _ | Bool _) as v -> type_error "expected a vec, got %a" pp v

let zero_of = function
  | TInt -> Int 0
  | TFloat -> Float 0.
  | TBool -> Bool false
  | TVec -> Vec Vec2.zero

let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Bool x, Bool y -> x = y
  | Vec x, Vec y -> Vec2.equal x y
  | Int x, Float y | Float y, Int x -> float_of_int x = y
  | (Int _ | Float _ | Bool _ | Vec _), _ -> false

(* Total order used by MIN/MAX-tagged effect combination and by aggregate
   evaluation.  Only numbers are ordered. *)
let compare_num a b = Float.compare (to_float a) (to_float b)

(* Arithmetic.  Int op Int stays Int (so keys and counters stay integral);
   any float operand widens the result.  Vectors support +, -, and scaling. *)
let add a b =
  match (a, b) with
  | Int x, Int y -> Int (x + y)
  | Vec x, Vec y -> Vec (Vec2.add x y)
  | (Int _ | Float _), (Int _ | Float _) -> Float (to_float a +. to_float b)
  | _ -> type_error "cannot add %a and %a" pp a pp b

let sub a b =
  match (a, b) with
  | Int x, Int y -> Int (x - y)
  | Vec x, Vec y -> Vec (Vec2.sub x y)
  | (Int _ | Float _), (Int _ | Float _) -> Float (to_float a -. to_float b)
  | _ -> type_error "cannot subtract %a from %a" pp b pp a

let mul a b =
  match (a, b) with
  | Int x, Int y -> Int (x * y)
  | (Int _ | Float _), Vec v -> Vec (Vec2.scale (to_float a) v)
  | Vec v, (Int _ | Float _) -> Vec (Vec2.scale (to_float b) v)
  | (Int _ | Float _), (Int _ | Float _) -> Float (to_float a *. to_float b)
  | _ -> type_error "cannot multiply %a and %a" pp a pp b

let div a b =
  match (a, b) with
  | Int x, Int y ->
    if y = 0 then type_error "integer division by zero" else Int (x / y)
  | Vec v, (Int _ | Float _) ->
    let k = to_float b in
    if k = 0. then type_error "vector division by zero" else Vec (Vec2.scale (1. /. k) v)
  | (Int _ | Float _), (Int _ | Float _) -> Float (to_float a /. to_float b)
  | _ -> type_error "cannot divide %a by %a" pp a pp b

let modulo a b =
  match (a, b) with
  | Int x, Int y ->
    if y = 0 then type_error "mod by zero"
    else Int (((x mod y) + abs y) mod abs y)
  | (Int _ | Float _ | Bool _ | Vec _), _ -> type_error "mod needs ints, got %a and %a" pp a pp b

let neg = function
  | Int x -> Int (-x)
  | Float x -> Float (-.x)
  | Vec v -> Vec (Vec2.scale (-1.) v)
  | Bool _ as v -> type_error "cannot negate %a" pp v

let vec_x v = Float (to_vec v).Vec2.x
let vec_y v = Float (to_vec v).Vec2.y
let make_vec a b = Vec (Vec2.make (to_float a) (to_float b))
