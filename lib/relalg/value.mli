(** Dynamically typed attribute values for the environment relation. *)

open Sgl_util

type ty = TInt | TFloat | TBool | TVec

type t =
  | Int of int
  | Float of float
  | Bool of bool
  | Vec of Vec2.t

(** Raised by any ill-typed operation or coercion. *)
exception Type_error of string

val ty_of : t -> ty
val ty_name : ty -> string
val pp : t Fmt.t
val to_string : t -> string

(** Numeric coercion; ints widen to floats. Raises {!Type_error} otherwise. *)
val to_float : t -> float

(** Floats truncate toward zero. Raises {!Type_error} for bool/vec. *)
val to_int : t -> int

val to_bool : t -> bool
val to_vec : t -> Vec2.t
val zero_of : ty -> t

(** Structural equality with int/float widening ([Int 2 = Float 2.]). *)
val equal : t -> t -> bool

(** Numeric comparison; raises {!Type_error} on non-numbers. *)
val compare_num : t -> t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t

(** Euclidean-style remainder on ints (result is always non-negative). *)
val modulo : t -> t -> t

val neg : t -> t
val vec_x : t -> t
val vec_y : t -> t
val make_vec : t -> t -> t
