(* The surface abstract syntax of SGL (Section 4.1).

   Names are unresolved here: [T_dot (T_var "u", "posx")] may be an attribute
   access or a vector-component access; the typechecker decides.  The
   [Resolve] pass lowers this AST into the closed core IR executed by both
   the reference interpreter and the optimizing compiler. *)

open Sgl_relalg

type pos = { line : int; col : int }

let no_pos = { line = 0; col = 0 }

(* Terms: constants, variables, attribute/component access, arithmetic,
   comparisons, boolean structure, vectors, built-in functions, and calls to
   user-declared aggregates. *)
type term =
  | T_int of int
  | T_float of float
  | T_bool of bool
  | T_var of string * pos
  | T_dot of term * string * pos (* u.posx, e.key, c.x *)
  | T_binop of Expr.binop * term * term
  | T_cmp of Expr.cmpop * term * term
  | T_and of term * term
  | T_or of term * term
  | T_not of term
  | T_neg of term
  | T_vec of term * term (* (x, y) vector literal *)
  | T_call of string * term list * pos (* aggregate call or built-in fn *)

(* Action functions (the paper's grammar, statement-list flavoured). *)
type action =
  | A_skip
  | A_let of string * term * action (* (let v = t) a *)
  | A_seq of action * action (* a1; a2 *)
  | A_if of term * action * action (* if c then a1 else a2 (else may be A_skip) *)
  | A_perform of string * term list * pos (* perform F(args) *)

(* One component of an aggregate declaration body (form (5)). *)
type agg_component =
  | G_count
  | G_sum of term
  | G_avg of term
  | G_stddev of term
  | G_min of term
  | G_max of term
  | G_argmin of term * term (* objective ; result *)
  | G_argmax of term * term
  | G_nearest of term * term * term * term * term (* e-x, e-y, u-x, u-y ; result *)

(* Effect clauses of an action declaration (form (4)). *)
type effect_target =
  | E_self
  | E_key of term
  | E_all of term (* condition over u and e *)

type effect_clause = {
  target : effect_target;
  updates : (string * term) list; (* attr <- contribution *)
}

type decl =
  | D_const of string * Value.t
  | D_aggregate of {
      name : string;
      params : string list; (* parameters beyond the implicit unit u *)
      components : agg_component list; (* 1 (scalar) or 2 (vector) *)
      where_ : term option;
      default : term option;
      pos : pos;
    }
  | D_action of {
      name : string;
      params : string list;
      clauses : effect_clause list;
      pos : pos;
    }
  | D_script of {
      name : string;
      params : string list;
      body : action;
      pos : pos;
    }

type program = decl list

let decl_name = function
  | D_const (n, _) -> n
  | D_aggregate { name; _ } -> name
  | D_action { name; _ } -> name
  | D_script { name; _ } -> name

let decl_pos = function
  | D_const _ -> no_pos
  | D_aggregate { pos; _ } -> pos
  | D_action { pos; _ } -> pos
  | D_script { pos; _ } -> pos

(* Find a declaration by name. *)
let find_decl (p : program) name = List.find_opt (fun d -> decl_name d = name) p

let scripts (p : program) =
  List.filter_map (function D_script s -> Some s.name | D_const _ | D_aggregate _ | D_action _ -> None) p

(* Best-effort source position of a term: the nearest positioned node,
   preferring the leftmost subterm (literals carry no position). *)
let rec pos_of_term = function
  | T_var (_, p) | T_dot (_, _, p) | T_call (_, _, p) -> p
  | T_int _ | T_float _ | T_bool _ -> no_pos
  | T_binop (_, a, b) | T_cmp (_, a, b) | T_and (a, b) | T_or (a, b) | T_vec (a, b) -> begin
    match pos_of_term a with
    | p when p = no_pos -> pos_of_term b
    | p -> p
  end
  | T_not a | T_neg a -> pos_of_term a

(* First positioned node of an action, for action-level diagnostics. *)
let rec pos_of_action = function
  | A_skip -> no_pos
  | A_let (_, t, k) -> begin
    match pos_of_term t with
    | p when p = no_pos -> pos_of_action k
    | p -> p
  end
  | A_if (c, a, b) -> begin
    match pos_of_term c with
    | p when p = no_pos -> begin
      match pos_of_action a with
      | p when p = no_pos -> pos_of_action b
      | p -> p
    end
    | p -> p
  end
  | A_seq (a, b) -> begin
    match pos_of_action a with
    | p when p = no_pos -> pos_of_action b
    | p -> p
  end
  | A_perform (_, _, p) -> p
