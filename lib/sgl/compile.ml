(* The compilation pipeline: source text -> checked, normalized, closed
   core IR.  This is the front half of Figure 2's "Compiler" box; the back
   half (planning and optimization) lives in [sgl_qopt]. *)

open Sgl_relalg

type error =
  | Lex of string
  | Parse of string
  | Type of string
  | Resolve of string

exception Compile_error of error

let error_to_string = function
  | Lex m -> "lexical error: " ^ m
  | Parse m -> "parse error: " ^ m
  | Type m -> "type error: " ^ m
  | Resolve m -> "resolution error: " ^ m

let () =
  Printexc.register_printer (function
    | Compile_error e -> Some ("Compile_error: " ^ error_to_string e)
    | _ -> None)

let compile_ast ?(consts : (string * Value.t) list = []) ~(schema : Schema.t)
    (ast : Ast.program) : Core_ir.program =
  (try Typecheck.check ~consts ~schema ast with
  | Typecheck.Type_error m -> raise (Compile_error (Type m)));
  let ast = Normalize.normalize ast in
  try Resolve.resolve ~consts ~schema ast with
  | Resolve.Resolve_error m -> raise (Compile_error (Resolve m))

let parse (src : string) : Ast.program =
  try Parser.parse_string src with
  | Lexer.Lex_error m -> raise (Compile_error (Lex m))
  | Parser.Parse_error m -> raise (Compile_error (Parse m))

(* [compile ?consts ~schema src] runs the full pipeline.  Raises
   {!Compile_error} describing the first failing stage. *)
let compile ?(consts : (string * Value.t) list = []) ~(schema : Schema.t) (src : string) :
    Core_ir.program =
  compile_ast ~consts ~schema (parse src)
