(** The compilation pipeline: source text -> parsed -> type-checked ->
    normalized -> resolved core IR. *)

open Sgl_relalg

type error =
  | Lex of string
  | Parse of string
  | Type of string
  | Resolve of string

exception Compile_error of error

val error_to_string : error -> string

(** Parse only.  Raises {!Compile_error} ([Lex] or [Parse]). *)
val parse : string -> Ast.program

(** Check, normalize and resolve an already-parsed program. *)
val compile_ast :
  ?consts:(string * Value.t) list -> schema:Schema.t -> Ast.program -> Core_ir.program

(** The full pipeline.  Raises {!Compile_error} naming the failing stage. *)
val compile : ?consts:(string * Value.t) list -> schema:Schema.t -> string -> Core_ir.program
