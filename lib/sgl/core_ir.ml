(* The closed core intermediate representation of SGL.

   After resolution, every name is gone: terms are slot-based [Expr]s, every
   aggregate call site has become an entry in the program's aggregate
   instance table, and every [perform] has been inlined down to primitive
   effect clauses.  Both the reference interpreter (Section 4.3 semantics)
   and the optimizing set-at-a-time compiler (Section 5) consume this IR. *)

open Sgl_relalg

type effect_target =
  | Self
  | Key of Expr.t (* expression over u naming the affected unit *)
  | All of Predicate.t (* conjunctive condition over u and e *)

type effect_clause = {
  target : effect_target;
  updates : (int * Expr.t) list; (* effect attribute slot <- contribution, over u and e *)
}

type t =
  | Skip
  | Let of Expr.t * t (* push one unit slot holding the term's value *)
  | Let_agg of int * t (* push one unit slot holding aggregate instance #i *)
  | Seq of t * t
  | If of Expr.t * t * t
  | Effects of effect_clause list (* one fully-resolved perform *)

type script = {
  name : string;
  body : t;
}

type program = {
  schema : Schema.t;
  (* Deduplicated aggregate call sites: scripts calling the same aggregate
     with the same arguments share the instance — and hence the index. *)
  aggregates : Aggregate.t array;
  scripts : script list;
}

let find_script p name = List.find_opt (fun s -> s.name = name) p.scripts

(* Aggregate instance ids used by an action, in first-use order. *)
let aggregates_used (a : t) : int list =
  let acc = ref [] in
  let rec go = function
    | Skip | Effects _ -> ()
    | Let (_, k) -> go k
    | Let_agg (i, k) ->
      if not (List.mem i !acc) then acc := i :: !acc;
      go k
    | Seq (a, b) | If (_, a, b) ->
      go a;
      go b
  in
  go a;
  List.rev !acc

(* Count of structural nodes, used by optimizer statistics. *)
let size (a : t) : int =
  let rec go = function
    | Skip -> 1
    | Effects _ -> 1
    | Let (_, k) | Let_agg (_, k) -> 1 + go k
    | Seq (a, b) | If (_, a, b) -> 1 + go a + go b
  in
  go a

let rec pp ppf = function
  | Skip -> Fmt.string ppf "skip"
  | Let (e, k) -> Fmt.pf ppf "@[<v>let _ = %a in@,%a@]" Expr.pp e pp k
  | Let_agg (i, k) -> Fmt.pf ppf "@[<v>let _ = agg#%d in@,%a@]" i pp k
  | Seq (a, b) -> Fmt.pf ppf "@[<v>%a;@,%a@]" pp a pp b
  | If (c, a, Skip) -> Fmt.pf ppf "@[<v>if %a then {@;<0 2>%a@,}@]" Expr.pp c pp a
  | If (c, a, b) ->
    Fmt.pf ppf "@[<v>if %a then {@;<0 2>%a@,} else {@;<0 2>%a@,}@]" Expr.pp c pp a pp b
  | Effects clauses ->
    let pp_target ppf = function
      | Self -> Fmt.string ppf "self"
      | Key e -> Fmt.pf ppf "key(%a)" Expr.pp e
      | All p -> Fmt.pf ppf "all(%a)" Predicate.pp p
    in
    let pp_clause ppf c =
      Fmt.pf ppf "on %a { %a }" pp_target c.target
        Fmt.(list ~sep:(any "; ") (pair ~sep:(any " <- ") int Expr.pp))
        c.updates
    in
    Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_clause) clauses
