(* Reference interpreter: the direct Section 4.3 semantics.

   Evaluates one unit's compiled script tuple-at-a-time against the full
   environment, computing every aggregate with a naive O(n) scan and
   emitting raw effect rows.  The optimizing executor in [sgl_qopt] must
   produce a combined environment identical to the combination of these
   rows; that equivalence is the core correctness property of the system. *)

open Sgl_relalg

(* An effect row is a copy of the target's row whose effect attributes are
   reset to their initialized (zero) values and then overwritten by the
   clause's updates; the combination operator later folds all rows. *)
let effect_row schema (target_row : Tuple.t) (updates : (int * Expr.t) list) ctx : Tuple.t =
  let row = Tuple.restrict schema (Tuple.copy target_row) in
  List.iter
    (fun i -> Tuple.set row i (Value.zero_of (Schema.ty_at schema i)))
    (Schema.effect_indices schema);
  List.iter (fun (i, expr) -> Tuple.set row i (Expr.eval ctx expr)) updates;
  row

let apply_effects ~(prog : Core_ir.program) ~(units : Tuple.t array)
    ~(find_key : int -> Tuple.t option) ~(rand : int -> int) ~(u : Tuple.t)
    (clauses : Core_ir.effect_clause list) ~(emit : Tuple.t -> unit) : unit =
  let schema = prog.Core_ir.schema in
  List.iter
    (fun (c : Core_ir.effect_clause) ->
      match c.Core_ir.target with
      | Core_ir.Self ->
        let ctx = { Expr.u; e = Some u; rand } in
        emit (effect_row schema u c.Core_ir.updates ctx)
      | Core_ir.Key key_expr -> begin
        let key = Expr.eval_int { Expr.u; e = None; rand } key_expr in
        match find_key key with
        | None -> () (* the designated unit does not exist; the effect fizzles *)
        | Some target ->
          let ctx = { Expr.u; e = Some target; rand } in
          emit (effect_row schema target c.Core_ir.updates ctx)
      end
      | Core_ir.All pred ->
        Array.iter
          (fun target ->
            let ctx = { Expr.u; e = Some target; rand } in
            if Predicate.holds ctx pred then emit (effect_row schema target c.Core_ir.updates ctx))
          units)
    clauses

(* Run one unit's action; [u] may grow let-extension slots as we descend. *)
let rec run_action ~(prog : Core_ir.program) ~(units : Tuple.t array)
    ~(find_key : int -> Tuple.t option) ~(rand : int -> int) ~(u : Tuple.t) (a : Core_ir.t)
    ~(emit : Tuple.t -> unit) : unit =
  match a with
  | Core_ir.Skip -> ()
  | Core_ir.Let (expr, k) ->
    let v = Expr.eval { Expr.u; e = None; rand } expr in
    run_action ~prog ~units ~find_key ~rand ~u:(Tuple.extend u v) k ~emit
  | Core_ir.Let_agg (i, k) ->
    let agg = prog.Core_ir.aggregates.(i) in
    let v = Aggregate.eval_naive ~units ~ctx:{ Expr.u; e = None; rand } agg in
    run_action ~prog ~units ~find_key ~rand ~u:(Tuple.extend u v) k ~emit
  | Core_ir.Seq (a1, a2) ->
    run_action ~prog ~units ~find_key ~rand ~u a1 ~emit;
    run_action ~prog ~units ~find_key ~rand ~u a2 ~emit
  | Core_ir.If (c, a1, a2) ->
    if Expr.eval_bool { Expr.u; e = None; rand } c then
      run_action ~prog ~units ~find_key ~rand ~u a1 ~emit
    else run_action ~prog ~units ~find_key ~rand ~u a2 ~emit
  | Core_ir.Effects clauses -> apply_effects ~prog ~units ~find_key ~rand ~u clauses ~emit

(* Build the key -> row map for one tick's environment. *)
let key_table schema (units : Tuple.t array) : (int, Tuple.t) Hashtbl.t =
  let table = Hashtbl.create (Array.length units * 2) in
  Array.iter (fun row -> Hashtbl.replace table (Tuple.key schema row) row) units;
  table

(* tick(E, rho) for one script over all units (equation (6)): every unit
   runs [script]; the result is the effect relation main(+) before the final
   combination with E (the engine performs that combination and the
   post-processing step). *)
let run_script ~(prog : Core_ir.program) ~(script : Core_ir.script) ~(units : Tuple.t array)
    ~(rand_for : Tuple.t -> int -> int) : Relation.t =
  let schema = prog.Core_ir.schema in
  let table = key_table schema units in
  let find_key k = Hashtbl.find_opt table k in
  let out = Relation.create schema in
  Array.iter
    (fun u ->
      run_action ~prog ~units ~find_key ~rand:(rand_for u) ~u script.Core_ir.body
        ~emit:(Relation.add out))
    units;
  out
