(** Reference interpreter: the direct Section 4.3 semantics, tuple-at-a-time
    with O(n) aggregate scans.  The optimizing executor is property-tested
    against it. *)

open Sgl_relalg

(** Build one effect row: the target's row with effect attributes reset to
    their initialized zeros and the clause's updates applied. *)
val effect_row : Schema.t -> Tuple.t -> (int * Expr.t) list -> Expr.ctx -> Tuple.t

(** Run one unit's compiled action, emitting raw effect rows. *)
val run_action :
  prog:Core_ir.program ->
  units:Tuple.t array ->
  find_key:(int -> Tuple.t option) ->
  rand:(int -> int) ->
  u:Tuple.t ->
  Core_ir.t ->
  emit:(Tuple.t -> unit) ->
  unit

(** Key -> row table for one tick's environment. *)
val key_table : Schema.t -> Tuple.t array -> (int, Tuple.t) Hashtbl.t

(** Run [script] for every unit (equation (6) before the final combination
    with E); returns the multiset of emitted effect rows. *)
val run_script :
  prog:Core_ir.program ->
  script:Core_ir.script ->
  units:Tuple.t array ->
  rand_for:(Tuple.t -> int -> int) ->
  Relation.t
