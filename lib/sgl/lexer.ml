(* Hand-written lexer for SGL concrete syntax.

   Comments: [#] and [//] to end of line.  Keywords are reserved; aggregate
   component names (count, sum, ...) stay ordinary identifiers and are
   recognized contextually by the parser. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  (* keywords *)
  | KW_let
  | KW_if
  | KW_then
  | KW_else
  | KW_perform
  | KW_skip
  | KW_on
  | KW_self
  | KW_key
  | KW_all
  | KW_aggregate
  | KW_action
  | KW_script
  | KW_const
  | KW_where
  | KW_default
  | KW_and
  | KW_or
  | KW_not
  | KW_mod
  | KW_true
  | KW_false
  (* punctuation *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | DOT
  | ARROW (* <- *)
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EOF

type lexed = { token : token; line : int; col : int }

exception Lex_error of string

let lex_error line col fmt =
  Fmt.kstr (fun s -> raise (Lex_error (Fmt.str "line %d, column %d: %s" line col s))) fmt

let keyword_of_string = function
  | "let" -> Some KW_let
  | "if" -> Some KW_if
  | "then" -> Some KW_then
  | "else" -> Some KW_else
  | "perform" -> Some KW_perform
  | "skip" -> Some KW_skip
  | "on" -> Some KW_on
  | "self" -> Some KW_self
  | "key" -> Some KW_key
  | "all" -> Some KW_all
  | "aggregate" -> Some KW_aggregate
  | "action" -> Some KW_action
  | "script" -> Some KW_script
  | "const" -> Some KW_const
  | "where" -> Some KW_where
  | "default" -> Some KW_default
  | "and" -> Some KW_and
  | "or" -> Some KW_or
  | "not" -> Some KW_not
  | "mod" -> Some KW_mod
  | "true" -> Some KW_true
  | "false" -> Some KW_false
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize (src : string) : lexed list =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let emit token l c = tokens := { token; line = l; col = c } :: !tokens in
  let advance () =
    if !i < n && src.[!i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col;
    incr i
  in
  let skip_line () =
    while !i < n && src.[!i] <> '\n' do
      advance ()
    done
  in
  while !i < n do
    let c = src.[!i] in
    let l0 = !line and c0 = !col in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '#' then skip_line ()
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then skip_line ()
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        advance ()
      done;
      let word = String.sub src start (!i - start) in
      match keyword_of_string word with
      | Some kw -> emit kw l0 c0
      | None -> emit (IDENT word) l0 c0
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        advance ()
      done;
      (* A '.' begins a fractional part only when followed by a digit, so
         field access like [3.x] still lexes as INT DOT IDENT. *)
      if !i + 1 < n && src.[!i] = '.' && is_digit src.[!i + 1] then begin
        advance ();
        while !i < n && is_digit src.[!i] do
          advance ()
        done;
        emit (FLOAT (float_of_string (String.sub src start (!i - start)))) l0 c0
      end
      else begin
        let digits = String.sub src start (!i - start) in
        match int_of_string_opt digits with
        | Some v -> emit (INT v) l0 c0
        | None -> lex_error l0 c0 "integer literal %s does not fit" digits
      end
    end
    else begin
      let two =
        if !i + 1 < n then Some (String.sub src !i 2) else None
      in
      match two with
      | Some "<-" ->
        advance ();
        advance ();
        emit ARROW l0 c0
      | Some "<=" ->
        advance ();
        advance ();
        emit LE l0 c0
      | Some ">=" ->
        advance ();
        advance ();
        emit GE l0 c0
      | Some "<>" ->
        advance ();
        advance ();
        emit NE l0 c0
      | Some "!=" ->
        advance ();
        advance ();
        emit NE l0 c0
      | Some "==" ->
        advance ();
        advance ();
        emit EQ l0 c0
      | _ ->
        advance ();
        let token =
          match c with
          | '(' -> LPAREN
          | ')' -> RPAREN
          | '{' -> LBRACE
          | '}' -> RBRACE
          | ',' -> COMMA
          | ';' -> SEMI
          | '.' -> DOT
          | '=' -> EQ
          | '<' -> LT
          | '>' -> GT
          | '+' -> PLUS
          | '-' -> MINUS
          | '*' -> STAR
          | '/' -> SLASH
          | _ -> lex_error l0 c0 "unexpected character %C" c
        in
        emit token l0 c0
    end
  done;
  emit EOF !line !col;
  List.rev !tokens

let token_name = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT i -> Printf.sprintf "integer %d" i
  | FLOAT f -> Printf.sprintf "float %g" f
  | KW_let -> "'let'"
  | KW_if -> "'if'"
  | KW_then -> "'then'"
  | KW_else -> "'else'"
  | KW_perform -> "'perform'"
  | KW_skip -> "'skip'"
  | KW_on -> "'on'"
  | KW_self -> "'self'"
  | KW_key -> "'key'"
  | KW_all -> "'all'"
  | KW_aggregate -> "'aggregate'"
  | KW_action -> "'action'"
  | KW_script -> "'script'"
  | KW_const -> "'const'"
  | KW_where -> "'where'"
  | KW_default -> "'default'"
  | KW_and -> "'and'"
  | KW_or -> "'or'"
  | KW_not -> "'not'"
  | KW_mod -> "'mod'"
  | KW_true -> "'true'"
  | KW_false -> "'false'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | COMMA -> "','"
  | SEMI -> "';'"
  | DOT -> "'.'"
  | ARROW -> "'<-'"
  | EQ -> "'='"
  | NE -> "'<>'"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | EOF -> "end of input"
