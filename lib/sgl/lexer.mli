(** Hand-written lexer for SGL concrete syntax. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | KW_let
  | KW_if
  | KW_then
  | KW_else
  | KW_perform
  | KW_skip
  | KW_on
  | KW_self
  | KW_key
  | KW_all
  | KW_aggregate
  | KW_action
  | KW_script
  | KW_const
  | KW_where
  | KW_default
  | KW_and
  | KW_or
  | KW_not
  | KW_mod
  | KW_true
  | KW_false
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | DOT
  | ARROW
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EOF

(** A token with its source position (1-based line and column). *)
type lexed = { token : token; line : int; col : int }

exception Lex_error of string

(** [tokenize src] lexes a whole source string; the result always ends with
    {!EOF}.  Comments run from [#] or [//] to end of line.  Raises
    {!Lex_error} on an unexpected character. *)
val tokenize : string -> lexed list

(** Human-readable token name for error messages. *)
val token_name : token -> string
