(* Normal-form transformation (Section 5.1): aggregate functions may only
   occur as the entire right-hand side of a let-statement.

   [if agg(...) = 3 then f] becomes [let __agg_0 = agg(...); if __agg_0 = 3
   then f].  The fresh names use the reserved "__" prefix, which the
   typechecker forbids in user programs. *)

module String_set = Set.Make (String)

let aggregate_names (p : Ast.program) : String_set.t =
  List.fold_left
    (fun acc d ->
      match d with
      | Ast.D_aggregate { name; _ } -> String_set.add name acc
      | Ast.D_const _ | Ast.D_action _ | Ast.D_script _ -> acc)
    String_set.empty p

let fresh counter =
  let n = !counter in
  incr counter;
  Printf.sprintf "__agg_%d" n

(* Hoist every aggregate call out of [t], innermost first.  Returns the
   bindings to emit (in order) and the residual term. *)
let rec hoist_term is_agg counter (t : Ast.term) : (string * Ast.term) list * Ast.term =
  match t with
  | Ast.T_int _ | Ast.T_float _ | Ast.T_bool _ | Ast.T_var _ -> ([], t)
  | Ast.T_dot (base, f, p) ->
    let bs, base' = hoist_term is_agg counter base in
    (bs, Ast.T_dot (base', f, p))
  | Ast.T_binop (op, a, b) ->
    let bsa, a' = hoist_term is_agg counter a in
    let bsb, b' = hoist_term is_agg counter b in
    (bsa @ bsb, Ast.T_binop (op, a', b'))
  | Ast.T_cmp (op, a, b) ->
    let bsa, a' = hoist_term is_agg counter a in
    let bsb, b' = hoist_term is_agg counter b in
    (bsa @ bsb, Ast.T_cmp (op, a', b'))
  | Ast.T_and (a, b) ->
    let bsa, a' = hoist_term is_agg counter a in
    let bsb, b' = hoist_term is_agg counter b in
    (bsa @ bsb, Ast.T_and (a', b'))
  | Ast.T_or (a, b) ->
    let bsa, a' = hoist_term is_agg counter a in
    let bsb, b' = hoist_term is_agg counter b in
    (bsa @ bsb, Ast.T_or (a', b'))
  | Ast.T_not a ->
    let bs, a' = hoist_term is_agg counter a in
    (bs, Ast.T_not a')
  | Ast.T_neg a ->
    let bs, a' = hoist_term is_agg counter a in
    (bs, Ast.T_neg a')
  | Ast.T_vec (a, b) ->
    let bsa, a' = hoist_term is_agg counter a in
    let bsb, b' = hoist_term is_agg counter b in
    (bsa @ bsb, Ast.T_vec (a', b'))
  | Ast.T_call (name, args, p) ->
    let bss, args' = List.split (List.map (hoist_term is_agg counter) args) in
    let bs = List.concat bss in
    if is_agg name then begin
      let v = fresh counter in
      (bs @ [ (v, Ast.T_call (name, args', p)) ], Ast.T_var (v, p))
    end
    else (bs, Ast.T_call (name, args', p))

let wrap bindings body =
  List.fold_right (fun (v, t) acc -> Ast.A_let (v, t, acc)) bindings body

(* Hoist for a let right-hand side: a top-level aggregate call stays put
   (it is already in normal form); only nested calls move. *)
let hoist_let_rhs is_agg counter (t : Ast.term) =
  match t with
  | Ast.T_call (name, args, p) when is_agg name ->
    let bss, args' = List.split (List.map (hoist_term is_agg counter) args) in
    (List.concat bss, Ast.T_call (name, args', p))
  | _ -> hoist_term is_agg counter t

let rec normalize_action is_agg counter (a : Ast.action) : Ast.action =
  match a with
  | Ast.A_skip -> Ast.A_skip
  | Ast.A_let (v, t, k) ->
    let bs, t' = hoist_let_rhs is_agg counter t in
    wrap bs (Ast.A_let (v, t', normalize_action is_agg counter k))
  | Ast.A_seq (a1, a2) ->
    Ast.A_seq (normalize_action is_agg counter a1, normalize_action is_agg counter a2)
  | Ast.A_if (c, a1, a2) ->
    let bs, c' = hoist_term is_agg counter c in
    wrap bs
      (Ast.A_if (c', normalize_action is_agg counter a1, normalize_action is_agg counter a2))
  | Ast.A_perform (name, args, p) ->
    let bss, args' = List.split (List.map (hoist_term is_agg counter) args) in
    wrap (List.concat bss) (Ast.A_perform (name, args', p))

let normalize (p : Ast.program) : Ast.program =
  let aggs = aggregate_names p in
  let is_agg name = String_set.mem name aggs in
  let counter = ref 0 in
  List.map
    (fun d ->
      match d with
      | Ast.D_script { name; params; body; pos } ->
        Ast.D_script { name; params; body = normalize_action is_agg counter body; pos }
      | Ast.D_const _ | Ast.D_aggregate _ | Ast.D_action _ -> d)
    p

(* Check the normal form: every aggregate call is the entire RHS of a let,
   and none appear inside aggregate or action declarations. *)
let is_normal (p : Ast.program) : bool =
  let aggs = aggregate_names p in
  let rec term_clean t =
    match t with
    | Ast.T_int _ | Ast.T_float _ | Ast.T_bool _ | Ast.T_var _ -> true
    | Ast.T_dot (b, _, _) | Ast.T_not b | Ast.T_neg b -> term_clean b
    | Ast.T_binop (_, a, b)
    | Ast.T_cmp (_, a, b)
    | Ast.T_and (a, b)
    | Ast.T_or (a, b)
    | Ast.T_vec (a, b) ->
      term_clean a && term_clean b
    | Ast.T_call (name, args, _) ->
      (not (String_set.mem name aggs)) && List.for_all term_clean args
  in
  let rec action_ok = function
    | Ast.A_skip -> true
    | Ast.A_let (_, Ast.T_call (name, args, _), k) when String_set.mem name aggs ->
      List.for_all term_clean args && action_ok k
    | Ast.A_let (_, t, k) -> term_clean t && action_ok k
    | Ast.A_seq (a, b) -> action_ok a && action_ok b
    | Ast.A_if (c, a, b) -> term_clean c && action_ok a && action_ok b
    | Ast.A_perform (_, args, _) -> List.for_all term_clean args
  in
  List.for_all
    (function
      | Ast.D_script { body; _ } -> action_ok body
      | Ast.D_const _ -> true
      | Ast.D_aggregate { components; where_; default; _ } ->
        let comp_terms = function
          | Ast.G_count -> []
          | Ast.G_sum t | Ast.G_avg t | Ast.G_stddev t | Ast.G_min t | Ast.G_max t -> [ t ]
          | Ast.G_argmin (a, b) | Ast.G_argmax (a, b) -> [ a; b ]
          | Ast.G_nearest (a, b, c, d, e) -> [ a; b; c; d; e ]
        in
        List.for_all term_clean (List.concat_map comp_terms components)
        && List.for_all term_clean (Option.to_list where_)
        && List.for_all term_clean (Option.to_list default)
      | Ast.D_action { clauses; _ } ->
        List.for_all
          (fun c ->
            (match c.Ast.target with
            | Ast.E_self -> true
            | Ast.E_key t | Ast.E_all t -> term_clean t)
            && List.for_all (fun (_, t) -> term_clean t) c.Ast.updates)
          clauses)
    p
