(** Normal-form transformation (Section 5.1): after [normalize], aggregate
    calls occur only as the entire right-hand side of a let.  Fresh names
    use the reserved ["__"] prefix. *)

(** Hoist every nested aggregate call into a preceding let. *)
val normalize : Ast.program -> Ast.program

(** Is the program already in normal form? *)
val is_normal : Ast.program -> bool

(** Names of all aggregate declarations in the program. *)
val aggregate_names : Ast.program -> Set.Make(String).t
