(* Recursive-descent parser for SGL concrete syntax.

   The grammar follows Section 4.1's action grammar with a statement-list
   surface: [let] statements scope over the remainder of their block, [;]
   separates sequenced actions, and declarations introduce constants,
   aggregate functions (form (5)), action functions (form (4)) and scripts. *)

open Sgl_relalg

exception Parse_error of string

type state = {
  tokens : Lexer.lexed array;
  mutable pos : int;
}

let parse_error (lx : Lexer.lexed) fmt =
  Fmt.kstr
    (fun s ->
      raise (Parse_error (Fmt.str "line %d, column %d: %s" lx.Lexer.line lx.Lexer.col s)))
    fmt

let peek st = st.tokens.(st.pos)

let next st =
  let t = st.tokens.(st.pos) in
  if st.pos < Array.length st.tokens - 1 then st.pos <- st.pos + 1;
  t

let expect st token =
  let t = next st in
  if t.Lexer.token <> token then
    parse_error t "expected %s but found %s" (Lexer.token_name token)
      (Lexer.token_name t.Lexer.token)

let pos_of (lx : Lexer.lexed) = { Ast.line = lx.Lexer.line; col = lx.Lexer.col }

let ident st =
  let t = next st in
  match t.Lexer.token with
  | Lexer.IDENT s -> (s, pos_of t)
  (* "key" is a keyword for effect targets but also the mandatory schema
     attribute, so accept it wherever an identifier is expected. *)
  | Lexer.KW_key -> ("key", pos_of t)
  | other -> parse_error t "expected an identifier but found %s" (Lexer.token_name other)

(* ------------------------------------------------------------------ *)
(* Terms, by descending precedence: or < and < not < comparison <
   additive < multiplicative < unary minus < postfix '.' < primary. *)

let rec term st = term_or st

and term_or st =
  let lhs = term_and st in
  if (peek st).Lexer.token = Lexer.KW_or then begin
    ignore (next st);
    Ast.T_or (lhs, term_or st)
  end
  else lhs

and term_and st =
  let lhs = term_not st in
  if (peek st).Lexer.token = Lexer.KW_and then begin
    ignore (next st);
    Ast.T_and (lhs, term_and st)
  end
  else lhs

and term_not st =
  if (peek st).Lexer.token = Lexer.KW_not then begin
    ignore (next st);
    Ast.T_not (term_not st)
  end
  else term_cmp st

and term_cmp st =
  let lhs = term_add st in
  let op =
    match (peek st).Lexer.token with
    | Lexer.EQ -> Some Expr.Eq
    | Lexer.NE -> Some Expr.Ne
    | Lexer.LT -> Some Expr.Lt
    | Lexer.LE -> Some Expr.Le
    | Lexer.GT -> Some Expr.Gt
    | Lexer.GE -> Some Expr.Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    ignore (next st);
    Ast.T_cmp (op, lhs, term_add st)

and term_add st =
  let lhs = ref (term_mul st) in
  let continue = ref true in
  while !continue do
    match (peek st).Lexer.token with
    | Lexer.PLUS ->
      ignore (next st);
      lhs := Ast.T_binop (Expr.Add, !lhs, term_mul st)
    | Lexer.MINUS ->
      ignore (next st);
      lhs := Ast.T_binop (Expr.Sub, !lhs, term_mul st)
    | _ -> continue := false
  done;
  !lhs

and term_mul st =
  let lhs = ref (term_unary st) in
  let continue = ref true in
  while !continue do
    match (peek st).Lexer.token with
    | Lexer.STAR ->
      ignore (next st);
      lhs := Ast.T_binop (Expr.Mul, !lhs, term_unary st)
    | Lexer.SLASH ->
      ignore (next st);
      lhs := Ast.T_binop (Expr.Div, !lhs, term_unary st)
    | Lexer.KW_mod ->
      ignore (next st);
      lhs := Ast.T_binop (Expr.Mod, !lhs, term_unary st)
    | _ -> continue := false
  done;
  !lhs

and term_unary st =
  if (peek st).Lexer.token = Lexer.MINUS then begin
    ignore (next st);
    Ast.T_neg (term_unary st)
  end
  else term_postfix st

and term_postfix st =
  let t = ref (term_primary st) in
  while (peek st).Lexer.token = Lexer.DOT do
    ignore (next st);
    let name, p = ident st in
    t := Ast.T_dot (!t, name, p)
  done;
  !t

and term_primary st =
  let lx = next st in
  match lx.Lexer.token with
  | Lexer.INT i -> Ast.T_int i
  | Lexer.FLOAT f -> Ast.T_float f
  | Lexer.KW_true -> Ast.T_bool true
  | Lexer.KW_false -> Ast.T_bool false
  | Lexer.IDENT name ->
    if (peek st).Lexer.token = Lexer.LPAREN then begin
      ignore (next st);
      let args = call_args st in
      expect st Lexer.RPAREN;
      Ast.T_call (name, args, pos_of lx)
    end
    else Ast.T_var (name, pos_of lx)
  | Lexer.LPAREN ->
    let first = term st in
    if (peek st).Lexer.token = Lexer.COMMA then begin
      ignore (next st);
      let second = term st in
      expect st Lexer.RPAREN;
      Ast.T_vec (first, second)
    end
    else begin
      expect st Lexer.RPAREN;
      first
    end
  | other -> parse_error lx "expected a term but found %s" (Lexer.token_name other)

and call_args st =
  if (peek st).Lexer.token = Lexer.RPAREN then []
  else begin
    let rec more acc =
      if (peek st).Lexer.token = Lexer.COMMA then begin
        ignore (next st);
        more (term st :: acc)
      end
      else List.rev acc
    in
    more [ term st ]
  end

(* ------------------------------------------------------------------ *)
(* Actions *)

let rec block st : Ast.action =
  expect st Lexer.LBRACE;
  let a = stmts st in
  expect st Lexer.RBRACE;
  a

(* Fold a statement list: [let] binds over the remaining statements. *)
and stmts st : Ast.action =
  match (peek st).Lexer.token with
  | Lexer.RBRACE -> Ast.A_skip
  | _ -> begin
    match stmt st with
    | `Let (name, t) ->
      let rest = stmts st in
      Ast.A_let (name, t, rest)
    | `Action a ->
      let rest = stmts st in
      if rest = Ast.A_skip then a else Ast.A_seq (a, rest)
  end

and stmt st =
  let lx = peek st in
  match lx.Lexer.token with
  | Lexer.KW_let ->
    ignore (next st);
    let name, _ = ident st in
    expect st Lexer.EQ;
    let t = term st in
    expect st Lexer.SEMI;
    `Let (name, t)
  | Lexer.KW_if ->
    ignore (next st);
    let cond = term st in
    (* 'then' is optional before a block, as in the paper's examples. *)
    if (peek st).Lexer.token = Lexer.KW_then then ignore (next st);
    let then_a = stmt_or_block st in
    let else_a =
      if (peek st).Lexer.token = Lexer.KW_else then begin
        ignore (next st);
        stmt_or_block st
      end
      else Ast.A_skip
    in
    `Action (Ast.A_if (cond, then_a, else_a))
  | Lexer.KW_perform ->
    ignore (next st);
    let name, p = ident st in
    expect st Lexer.LPAREN;
    let args = call_args st in
    expect st Lexer.RPAREN;
    expect st Lexer.SEMI;
    `Action (Ast.A_perform (name, args, p))
  | Lexer.KW_skip ->
    ignore (next st);
    expect st Lexer.SEMI;
    `Action Ast.A_skip
  | Lexer.LBRACE -> `Action (block st)
  | other -> parse_error lx "expected a statement but found %s" (Lexer.token_name other)

and stmt_or_block st : Ast.action =
  if (peek st).Lexer.token = Lexer.LBRACE then block st
  else begin
    match stmt st with
    | `Let (name, _) ->
      parse_error (peek st) "a 'let' cannot be the sole body of 'if' (binding %s is unused)" name
    | `Action a -> a
  end

(* ------------------------------------------------------------------ *)
(* Declarations *)

let params st =
  expect st Lexer.LPAREN;
  let rec more acc =
    match (peek st).Lexer.token with
    | Lexer.RPAREN ->
      ignore (next st);
      List.rev acc
    | Lexer.COMMA ->
      ignore (next st);
      let name, _ = ident st in
      more (name :: acc)
    | _ ->
      let name, _ = ident st in
      more (name :: acc)
  in
  more []

let agg_component st : Ast.agg_component =
  let name, p = ident st in
  expect st Lexer.LPAREN;
  let comp =
    match name with
    | "count" ->
      (* count of star, or bare count() *)
      if (peek st).Lexer.token = Lexer.STAR then ignore (next st);
      Ast.G_count
    | "sum" -> Ast.G_sum (term st)
    | "avg" -> Ast.G_avg (term st)
    | "stddev" -> Ast.G_stddev (term st)
    | "min" -> Ast.G_min (term st)
    | "max" -> Ast.G_max (term st)
    | "argmin" ->
      let objective = term st in
      expect st Lexer.SEMI;
      Ast.G_argmin (objective, term st)
    | "argmax" ->
      let objective = term st in
      expect st Lexer.SEMI;
      Ast.G_argmax (objective, term st)
    | "nearest" ->
      let ex = term st in
      expect st Lexer.COMMA;
      let ey = term st in
      expect st Lexer.COMMA;
      let ux = term st in
      expect st Lexer.COMMA;
      let uy = term st in
      expect st Lexer.SEMI;
      Ast.G_nearest (ex, ey, ux, uy, term st)
    | other ->
      raise
        (Parse_error
           (Fmt.str "line %d, column %d: unknown aggregate component %S" p.Ast.line p.Ast.col other))
  in
  expect st Lexer.RPAREN;
  comp

let literal st : Value.t =
  let lx = next st in
  match lx.Lexer.token with
  | Lexer.INT i -> Value.Int i
  | Lexer.FLOAT f -> Value.Float f
  | Lexer.KW_true -> Value.Bool true
  | Lexer.KW_false -> Value.Bool false
  | Lexer.MINUS -> begin
    let lx2 = next st in
    match lx2.Lexer.token with
    | Lexer.INT i -> Value.Int (-i)
    | Lexer.FLOAT f -> Value.Float (-.f)
    | other -> parse_error lx2 "expected a number after '-' but found %s" (Lexer.token_name other)
  end
  | other -> parse_error lx "expected a literal but found %s" (Lexer.token_name other)

let decl st : Ast.decl =
  let lx = next st in
  match lx.Lexer.token with
  | Lexer.KW_const ->
    let name, _ = ident st in
    expect st Lexer.EQ;
    let v = literal st in
    expect st Lexer.SEMI;
    Ast.D_const (name, v)
  | Lexer.KW_aggregate ->
    let name, pos = ident st in
    let params = params st in
    expect st Lexer.LBRACE;
    let components =
      if (peek st).Lexer.token = Lexer.LPAREN then begin
        ignore (next st);
        let c1 = agg_component st in
        expect st Lexer.COMMA;
        let c2 = agg_component st in
        expect st Lexer.RPAREN;
        [ c1; c2 ]
      end
      else [ agg_component st ]
    in
    let where_ =
      if (peek st).Lexer.token = Lexer.KW_where then begin
        ignore (next st);
        Some (term st)
      end
      else None
    in
    let default =
      if (peek st).Lexer.token = Lexer.KW_default then begin
        ignore (next st);
        Some (term st)
      end
      else None
    in
    expect st Lexer.RBRACE;
    Ast.D_aggregate { name; params; components; where_; default; pos }
  | Lexer.KW_action ->
    let name, pos = ident st in
    let params = params st in
    expect st Lexer.LBRACE;
    let clauses = ref [] in
    while (peek st).Lexer.token = Lexer.KW_on do
      ignore (next st);
      let target =
        match (next st).Lexer.token with
        | Lexer.KW_self -> Ast.E_self
        | Lexer.KW_key ->
          expect st Lexer.LPAREN;
          let t = term st in
          expect st Lexer.RPAREN;
          Ast.E_key t
        | Lexer.KW_all ->
          expect st Lexer.LPAREN;
          let t = term st in
          expect st Lexer.RPAREN;
          Ast.E_all t
        | other ->
          parse_error (peek st) "expected 'self', 'key' or 'all' but found %s"
            (Lexer.token_name other)
      in
      expect st Lexer.LBRACE;
      let updates = ref [] in
      while (peek st).Lexer.token <> Lexer.RBRACE do
        let attr, _ = ident st in
        expect st Lexer.ARROW;
        let t = term st in
        expect st Lexer.SEMI;
        updates := (attr, t) :: !updates
      done;
      expect st Lexer.RBRACE;
      clauses := { Ast.target; updates = List.rev !updates } :: !clauses
    done;
    expect st Lexer.RBRACE;
    Ast.D_action { name; params; clauses = List.rev !clauses; pos }
  | Lexer.KW_script ->
    let name, pos = ident st in
    let params = params st in
    let body = block st in
    Ast.D_script { name; params; body; pos }
  | other ->
    parse_error lx "expected 'const', 'aggregate', 'action' or 'script' but found %s"
      (Lexer.token_name other)

let program st : Ast.program =
  let decls = ref [] in
  while (peek st).Lexer.token <> Lexer.EOF do
    decls := decl st :: !decls
  done;
  List.rev !decls

(* Entry point: raises {!Parse_error} or {!Lexer.Lex_error}. *)
let parse_string (src : string) : Ast.program =
  let tokens = Array.of_list (Lexer.tokenize src) in
  let st = { tokens; pos = 0 } in
  program st

let parse_term_string (src : string) : Ast.term =
  let tokens = Array.of_list (Lexer.tokenize src) in
  let st = { tokens; pos = 0 } in
  let t = term st in
  expect st Lexer.EOF;
  t
