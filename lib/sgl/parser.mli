(** Recursive-descent parser for SGL (grammar of Section 4.1, statement-list
    surface). *)

exception Parse_error of string

(** Parse a whole program.  Raises {!Parse_error} or {!Lexer.Lex_error}. *)
val parse_string : string -> Ast.program

(** Parse a single term (used by tests and tools). *)
val parse_term_string : string -> Ast.term
