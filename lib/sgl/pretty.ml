(* Pretty-printer for the surface AST.  [Parser.parse_string] of the output
   yields the same AST up to positions — the round-trip property tested in
   the language suite. *)

open Sgl_relalg

let rec pp_term ppf (t : Ast.term) =
  match t with
  | Ast.T_int i -> Fmt.int ppf i
  | Ast.T_float f ->
    (* keep a dot so the token re-lexes as a float *)
    if Float.is_integer f then Fmt.pf ppf "%.1f" f else Fmt.pf ppf "%.17g" f
  | Ast.T_bool b -> Fmt.bool ppf b
  | Ast.T_var (n, _) -> Fmt.string ppf n
  | Ast.T_dot (b, f, _) -> Fmt.pf ppf "%a.%s" pp_term b f
  | Ast.T_binop (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp_term a (Expr.binop_name op) pp_term b
  | Ast.T_cmp (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp_term a (Expr.cmp_name op) pp_term b
  | Ast.T_and (a, b) -> Fmt.pf ppf "(%a and %a)" pp_term a pp_term b
  | Ast.T_or (a, b) -> Fmt.pf ppf "(%a or %a)" pp_term a pp_term b
  | Ast.T_not a -> Fmt.pf ppf "(not %a)" pp_term a
  | Ast.T_neg a -> Fmt.pf ppf "(- %a)" pp_term a
  | Ast.T_vec (a, b) -> Fmt.pf ppf "(%a, %a)" pp_term a pp_term b
  | Ast.T_call (n, args, _) -> Fmt.pf ppf "%s(%a)" n Fmt.(list ~sep:(any ", ") pp_term) args

let rec pp_action ppf (a : Ast.action) =
  match a with
  | Ast.A_skip -> Fmt.pf ppf "skip;"
  | Ast.A_let (v, t, k) -> Fmt.pf ppf "@[<v>let %s = %a;@,%a@]" v pp_term t pp_action k
  | Ast.A_seq (a1, a2) -> Fmt.pf ppf "@[<v>%a@,%a@]" pp_action a1 pp_action a2
  | Ast.A_if (c, a1, Ast.A_skip) ->
    Fmt.pf ppf "@[<v>if %a then {@;<0 2>@[<v>%a@]@,}@]" pp_term c pp_action a1
  | Ast.A_if (c, a1, a2) ->
    Fmt.pf ppf "@[<v>if %a then {@;<0 2>@[<v>%a@]@,} else {@;<0 2>@[<v>%a@]@,}@]" pp_term c
      pp_action a1 pp_action a2
  | Ast.A_perform (n, args, _) ->
    Fmt.pf ppf "perform %s(%a);" n Fmt.(list ~sep:(any ", ") pp_term) args

let pp_component ppf (c : Ast.agg_component) =
  match c with
  | Ast.G_count -> Fmt.string ppf "count(*)"
  | Ast.G_sum t -> Fmt.pf ppf "sum(%a)" pp_term t
  | Ast.G_avg t -> Fmt.pf ppf "avg(%a)" pp_term t
  | Ast.G_stddev t -> Fmt.pf ppf "stddev(%a)" pp_term t
  | Ast.G_min t -> Fmt.pf ppf "min(%a)" pp_term t
  | Ast.G_max t -> Fmt.pf ppf "max(%a)" pp_term t
  | Ast.G_argmin (o, r) -> Fmt.pf ppf "argmin(%a; %a)" pp_term o pp_term r
  | Ast.G_argmax (o, r) -> Fmt.pf ppf "argmax(%a; %a)" pp_term o pp_term r
  | Ast.G_nearest (ex, ey, ux, uy, r) ->
    Fmt.pf ppf "nearest(%a, %a, %a, %a; %a)" pp_term ex pp_term ey pp_term ux pp_term uy pp_term r

let pp_value ppf (v : Value.t) =
  match v with
  | Value.Int i -> Fmt.int ppf i
  | Value.Float f -> if Float.is_integer f then Fmt.pf ppf "%.1f" f else Fmt.pf ppf "%.17g" f
  | Value.Bool b -> Fmt.bool ppf b
  | Value.Vec v -> Fmt.pf ppf "(%.17g, %.17g)" v.Sgl_util.Vec2.x v.Sgl_util.Vec2.y

let pp_decl ppf (d : Ast.decl) =
  match d with
  | Ast.D_const (n, v) -> Fmt.pf ppf "const %s = %a;" n pp_value v
  | Ast.D_aggregate { name; params; components; where_; default; _ } ->
    let pp_components ppf = function
      | [ c ] -> pp_component ppf c
      | cs -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") pp_component) cs
    in
    Fmt.pf ppf "@[<v>aggregate %s(%a) {@;<0 2>@[<v>%a%a%a@]@,}@]" name
      Fmt.(list ~sep:(any ", ") string)
      params pp_components components
      Fmt.(option (fun ppf w -> Fmt.pf ppf "@,where %a" pp_term w))
      where_
      Fmt.(option (fun ppf d -> Fmt.pf ppf "@,default %a" pp_term d))
      default
  | Ast.D_action { name; params; clauses; _ } ->
    let pp_target ppf = function
      | Ast.E_self -> Fmt.string ppf "self"
      | Ast.E_key t -> Fmt.pf ppf "key(%a)" pp_term t
      | Ast.E_all t -> Fmt.pf ppf "all(%a)" pp_term t
    in
    let pp_clause ppf (c : Ast.effect_clause) =
      Fmt.pf ppf "@[<v>on %a {@;<0 2>@[<v>%a@]@,}@]" pp_target c.Ast.target
        Fmt.(
          list ~sep:cut (fun ppf (attr, t) -> Fmt.pf ppf "%s <- %a;" attr pp_term t))
        c.Ast.updates
    in
    Fmt.pf ppf "@[<v>action %s(%a) {@;<0 2>@[<v>%a@]@,}@]" name
      Fmt.(list ~sep:(any ", ") string)
      params
      Fmt.(list ~sep:cut pp_clause)
      clauses
  | Ast.D_script { name; params; body; _ } ->
    Fmt.pf ppf "@[<v>script %s(%a) {@;<0 2>@[<v>%a@]@,}@]" name
      Fmt.(list ~sep:(any ", ") string)
      params pp_action body

let pp_program ppf (p : Ast.program) = Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:(any "@,@,") pp_decl) p

let program_to_string p = Fmt.str "%a" pp_program p
let term_to_string t = Fmt.str "%a" pp_term t

(* Positions are synthetic after a round-trip; strip them for comparison.
   Negative literals are canonicalized to a negation of the positive
   literal, which is how the parser reads the printed "-1". *)
let rec strip_term (t : Ast.term) : Ast.term =
  match t with
  | Ast.T_int n when n < 0 -> Ast.T_neg (Ast.T_int (-n))
  | Ast.T_float f when f < 0. -> Ast.T_neg (Ast.T_float (-.f))
  | Ast.T_int _ | Ast.T_float _ | Ast.T_bool _ -> t
  | Ast.T_var (n, _) -> Ast.T_var (n, Ast.no_pos)
  | Ast.T_dot (b, f, _) -> Ast.T_dot (strip_term b, f, Ast.no_pos)
  | Ast.T_binop (op, a, b) -> Ast.T_binop (op, strip_term a, strip_term b)
  | Ast.T_cmp (op, a, b) -> Ast.T_cmp (op, strip_term a, strip_term b)
  | Ast.T_and (a, b) -> Ast.T_and (strip_term a, strip_term b)
  | Ast.T_or (a, b) -> Ast.T_or (strip_term a, strip_term b)
  | Ast.T_not a -> Ast.T_not (strip_term a)
  | Ast.T_neg a -> Ast.T_neg (strip_term a)
  | Ast.T_vec (a, b) -> Ast.T_vec (strip_term a, strip_term b)
  | Ast.T_call (n, args, _) -> Ast.T_call (n, List.map strip_term args, Ast.no_pos)

(* Statement-normal form: what printing and re-parsing produces.  Sequences
   associate right, skips disappear, and a let heading a sequence scopes
   over the sequence's tail (the printed text has exactly that reading). *)
let rec canon_action (a : Ast.action) : Ast.action =
  match a with
  | Ast.A_skip -> Ast.A_skip
  | Ast.A_let (v, t, k) -> Ast.A_let (v, t, canon_action k)
  | Ast.A_if (c, a1, a2) -> Ast.A_if (c, canon_action a1, canon_action a2)
  | Ast.A_perform _ -> a
  | Ast.A_seq (a1, a2) -> begin
    match canon_action a1 with
    | Ast.A_skip -> canon_action a2
    | Ast.A_let (v, t, k) -> Ast.A_let (v, t, canon_action (Ast.A_seq (k, a2)))
    | Ast.A_seq (x, y) -> canon_action (Ast.A_seq (x, Ast.A_seq (y, a2)))
    | other -> begin
      match canon_action a2 with
      | Ast.A_skip -> other
      | rest -> Ast.A_seq (other, rest)
    end
  end

let canon_decl (d : Ast.decl) : Ast.decl =
  match d with
  | Ast.D_const _ | Ast.D_aggregate _ | Ast.D_action _ -> d
  | Ast.D_script { name; params; body; pos } ->
    Ast.D_script { name; params; body = canon_action body; pos }

let canon_program (p : Ast.program) : Ast.program = List.map canon_decl p

let rec strip_action (a : Ast.action) : Ast.action =
  match a with
  | Ast.A_skip -> Ast.A_skip
  | Ast.A_let (v, t, k) -> Ast.A_let (v, strip_term t, strip_action k)
  | Ast.A_seq (a1, a2) -> Ast.A_seq (strip_action a1, strip_action a2)
  | Ast.A_if (c, a1, a2) -> Ast.A_if (strip_term c, strip_action a1, strip_action a2)
  | Ast.A_perform (n, args, _) -> Ast.A_perform (n, List.map strip_term args, Ast.no_pos)

let strip_component (c : Ast.agg_component) : Ast.agg_component =
  match c with
  | Ast.G_count -> Ast.G_count
  | Ast.G_sum t -> Ast.G_sum (strip_term t)
  | Ast.G_avg t -> Ast.G_avg (strip_term t)
  | Ast.G_stddev t -> Ast.G_stddev (strip_term t)
  | Ast.G_min t -> Ast.G_min (strip_term t)
  | Ast.G_max t -> Ast.G_max (strip_term t)
  | Ast.G_argmin (o, r) -> Ast.G_argmin (strip_term o, strip_term r)
  | Ast.G_argmax (o, r) -> Ast.G_argmax (strip_term o, strip_term r)
  | Ast.G_nearest (a, b, c, d, r) ->
    Ast.G_nearest (strip_term a, strip_term b, strip_term c, strip_term d, strip_term r)

let strip_decl (d : Ast.decl) : Ast.decl =
  match d with
  | Ast.D_const _ -> d
  | Ast.D_aggregate { name; params; components; where_; default; _ } ->
    Ast.D_aggregate
      {
        name;
        params;
        components = List.map strip_component components;
        where_ = Option.map strip_term where_;
        default = Option.map strip_term default;
        pos = Ast.no_pos;
      }
  | Ast.D_action { name; params; clauses; _ } ->
    Ast.D_action
      {
        name;
        params;
        clauses =
          List.map
            (fun (c : Ast.effect_clause) ->
              {
                Ast.target =
                  (match c.Ast.target with
                  | Ast.E_self -> Ast.E_self
                  | Ast.E_key t -> Ast.E_key (strip_term t)
                  | Ast.E_all t -> Ast.E_all (strip_term t));
                updates = List.map (fun (a, t) -> (a, strip_term t)) c.Ast.updates;
              })
            clauses;
        pos = Ast.no_pos;
      }
  | Ast.D_script { name; params; body; _ } ->
    Ast.D_script { name; params; body = strip_action body; pos = Ast.no_pos }

let strip_program (p : Ast.program) : Ast.program = List.map strip_decl p
