(* Name resolution and lowering: surface AST -> closed core IR.

   Responsibilities:
   - resolve attribute, variable, parameter and constant references to
     slot-based [Expr]s;
   - inline every [perform] of an SGL-defined script and every action
     declaration (functions are macros; [Random] is stable within a tick,
     so inlining is semantics-preserving);
   - instantiate each aggregate call site into a closed [Aggregate.t],
     deduplicating structurally identical instances so that scripts probing
     the same query share one index (the paper's multi-query optimization);
   - enforce the normal form produced by [Normalize].

   The input is assumed well-typed (see [Typecheck]); resolution still
   raises [Resolve_error] on anything inconsistent. *)

open Sgl_relalg

exception Resolve_error of string

let fail (p : Ast.pos) fmt =
  Fmt.kstr
    (fun s -> raise (Resolve_error (Fmt.str "line %d, column %d: %s" p.Ast.line p.Ast.col s)))
    fmt

type binding =
  | B_unit (* the current unit u *)
  | B_env (* the scanned environment tuple e *)
  | B_slot of int (* a let-bound unit slot *)
  | B_inline of Expr.t (* an inlined function argument *)

type state = {
  prog : Ast.program;
  schema : Schema.t;
  consts : (string, Value.t) Hashtbl.t;
  mutable instances : Aggregate.t list; (* reversed instance table *)
  mutable n_instances : int;
}

type scope = {
  vars : (string * binding) list;
  depth : int; (* current unit-record arity (schema + lets) *)
  e_allowed : bool;
  stack : string list; (* inlining stack, for recursion detection *)
}

let lookup scope name = List.assoc_opt name scope.vars

(* ------------------------------------------------------------------ *)
(* Terms *)

let rec resolve_term st scope (t : Ast.term) : Expr.t =
  match t with
  | Ast.T_int i -> Expr.Const (Value.Int i)
  | Ast.T_float f -> Expr.Const (Value.Float f)
  | Ast.T_bool b -> Expr.Const (Value.Bool b)
  | Ast.T_var (name, p) -> begin
    match lookup scope name with
    | Some (B_slot i) -> Expr.UAttr i
    | Some (B_inline e) -> e
    | Some B_unit -> fail p "the unit record %s cannot be used as a plain value" name
    | Some B_env -> fail p "the environment tuple %s cannot be used as a plain value" name
    | None -> begin
      match Hashtbl.find_opt st.consts name with
      | Some v -> Expr.Const v
      | None -> fail p "unknown variable %S" name
    end
  end
  | Ast.T_dot (Ast.T_var (base, bp), field, p) -> begin
    match lookup scope base with
    | Some B_unit -> begin
      match Schema.find_opt st.schema field with
      | Some i -> Expr.UAttr i
      | None -> fail p "unknown attribute %S" field
    end
    | Some B_env ->
      if not scope.e_allowed then
        fail bp "environment tuple %S is only available inside aggregate and action bodies" base
      else begin
        match Schema.find_opt st.schema field with
        | Some i -> Expr.EAttr i
        | None -> fail p "unknown attribute %S" field
      end
    | Some _ | None -> vec_field st scope (Ast.T_var (base, bp)) field p
  end
  | Ast.T_dot (base, field, p) -> vec_field st scope base field p
  | Ast.T_binop (op, a, b) -> Expr.Binop (op, resolve_term st scope a, resolve_term st scope b)
  | Ast.T_cmp (op, a, b) -> Expr.Cmp (op, resolve_term st scope a, resolve_term st scope b)
  | Ast.T_and (a, b) -> Expr.And (resolve_term st scope a, resolve_term st scope b)
  | Ast.T_or (a, b) -> Expr.Or (resolve_term st scope a, resolve_term st scope b)
  | Ast.T_not a -> Expr.Not (resolve_term st scope a)
  | Ast.T_neg a -> Expr.Neg (resolve_term st scope a)
  | Ast.T_vec (a, b) -> Expr.VecOf (resolve_term st scope a, resolve_term st scope b)
  | Ast.T_call (name, args, p) -> resolve_builtin st scope name args p

and vec_field st scope base field p =
  let b = resolve_term st scope base in
  match field with
  | "x" -> Expr.VecX b
  | "y" -> Expr.VecY b
  | other -> fail p "unknown vector component %S (expected .x or .y)" other

(* Built-in term functions.  Aggregate calls never reach here: the normal
   form restricts them to let right-hand sides handled in resolve_action. *)
and resolve_builtin st scope name args p : Expr.t =
  let arg i = List.nth args i in
  let r i = resolve_term st scope (arg i) in
  let arity n =
    if List.length args <> n then
      fail p "%s expects %d argument(s), got %d" name n (List.length args)
  in
  match name with
  | "abs" ->
    arity 1;
    Expr.Abs (r 0)
  | "sqrt" ->
    arity 1;
    Expr.Sqrt (r 0)
  | "min" ->
    arity 2;
    Expr.MinOf (r 0, r 1)
  | "max" ->
    arity 2;
    Expr.MaxOf (r 0, r 1)
  | "random" ->
    arity 1;
    Expr.Random (r 0)
  | "norm" ->
    arity 1;
    let v = r 0 in
    Expr.Sqrt
      (Expr.Binop
         ( Expr.Add,
           Expr.Binop (Expr.Mul, Expr.VecX v, Expr.VecX v),
           Expr.Binop (Expr.Mul, Expr.VecY v, Expr.VecY v) ))
  | "dist" ->
    arity 2;
    let a = r 0 and b = r 1 in
    let dx = Expr.Binop (Expr.Sub, Expr.VecX a, Expr.VecX b) in
    let dy = Expr.Binop (Expr.Sub, Expr.VecY a, Expr.VecY b) in
    Expr.Sqrt (Expr.Binop (Expr.Add, Expr.Binop (Expr.Mul, dx, dx), Expr.Binop (Expr.Mul, dy, dy)))
  | other -> begin
    match Ast.find_decl st.prog other with
    | Some (Ast.D_aggregate _) ->
      fail p "aggregate %S may only appear as the right-hand side of a let (run Normalize first)"
        other
    | Some _ -> fail p "%S is not usable in a term" other
    | None -> fail p "unknown function %S" other
  end

(* ------------------------------------------------------------------ *)
(* Aggregate instantiation *)

let intern_instance st (a : Aggregate.t) : int =
  let rec find i = function
    | [] -> -1
    | x :: rest ->
      if x.Aggregate.kinds = a.Aggregate.kinds
         && x.Aggregate.where_ = a.Aggregate.where_
         && x.Aggregate.default = a.Aggregate.default
      then st.n_instances - 1 - i
      else find (i + 1) rest
  in
  let existing = find 0 st.instances in
  if existing >= 0 then existing
  else begin
    st.instances <- a :: st.instances;
    st.n_instances <- st.n_instances + 1;
    st.n_instances - 1
  end

(* Bind a declaration's parameters to the caller's arguments.  The first
   parameter is the unit record and must receive the caller's unit. *)
let bind_params st scope ~(decl_name : string) ~(params : string list) ~(args : Ast.term list)
    (p : Ast.pos) : (string * binding) list =
  if List.length params <> List.length args then
    fail p "%s expects %d argument(s), got %d" decl_name (List.length params) (List.length args);
  match (params, args) with
  | [], _ | _, [] -> fail p "%s must declare the unit record as its first parameter" decl_name
  | unit_param :: rest_params, first_arg :: rest_args ->
    (match first_arg with
    | Ast.T_var (v, _) when lookup scope v = Some B_unit -> ()
    | _ -> fail p "the first argument of %s must be the unit record" decl_name);
    (unit_param, B_unit)
    :: List.map2
         (fun param arg -> (param, B_inline (resolve_term st scope arg)))
         rest_params rest_args

let resolve_aggregate_call st scope ~(name : string) ~(args : Ast.term list) (p : Ast.pos) : int =
  match Ast.find_decl st.prog name with
  | Some (Ast.D_aggregate { name; params; components; where_; default; pos = _ }) ->
    let bindings = bind_params st scope ~decl_name:name ~params ~args p in
    (* Body terms see the declaration's parameters, the caller's lets (only
       through inlined args), and the scanned tuple e. *)
    let body_scope =
      { scope with vars = ("e", B_env) :: bindings; e_allowed = true }
    in
    let rt t = resolve_term st body_scope t in
    let kind_of = function
      | Ast.G_count -> Aggregate.Count
      | Ast.G_sum t -> Aggregate.Sum (rt t)
      | Ast.G_avg t -> Aggregate.Avg (rt t)
      | Ast.G_stddev t -> Aggregate.Std_dev (rt t)
      | Ast.G_min t -> Aggregate.Min_agg (rt t)
      | Ast.G_max t -> Aggregate.Max_agg (rt t)
      | Ast.G_argmin (o, r) -> Aggregate.Arg_min { objective = rt o; result = rt r }
      | Ast.G_argmax (o, r) -> Aggregate.Arg_max { objective = rt o; result = rt r }
      | Ast.G_nearest (ex, ey, ux, uy, r) ->
        Aggregate.Nearest { ex = rt ex; ey = rt ey; ux = rt ux; uy = rt uy; result = rt r }
    in
    let kinds = List.map kind_of components in
    let where_ =
      match where_ with
      | None -> Predicate.always_true
      | Some t -> Predicate.of_expr (rt t)
    in
    (* The default sees u but not e. *)
    let default = Option.map (resolve_term st { body_scope with e_allowed = false }) default in
    intern_instance st (Aggregate.make ?default ~name ~kinds ~where_ ())
  | Some _ -> fail p "%S is not an aggregate" name
  | None -> fail p "unknown aggregate %S" name

(* ------------------------------------------------------------------ *)
(* Actions *)

let is_aggregate_call st = function
  | Ast.T_call (name, _, _) -> begin
    match Ast.find_decl st.prog name with
    | Some (Ast.D_aggregate _) -> true
    | Some _ | None -> false
  end
  | _ -> false

let rec resolve_action st scope (a : Ast.action) : Core_ir.t =
  match a with
  | Ast.A_skip -> Core_ir.Skip
  | Ast.A_let (v, rhs, k) when is_aggregate_call st rhs -> begin
    match rhs with
    | Ast.T_call (name, args, p) ->
      let agg_id = resolve_aggregate_call st scope ~name ~args p in
      let scope' =
        { scope with vars = (v, B_slot scope.depth) :: scope.vars; depth = scope.depth + 1 }
      in
      Core_ir.Let_agg (agg_id, resolve_action st scope' k)
    | _ -> assert false
  end
  | Ast.A_let (v, rhs, k) ->
    let e = resolve_term st scope rhs in
    let scope' =
      { scope with vars = (v, B_slot scope.depth) :: scope.vars; depth = scope.depth + 1 }
    in
    Core_ir.Let (e, resolve_action st scope' k)
  | Ast.A_seq (a1, a2) -> Core_ir.Seq (resolve_action st scope a1, resolve_action st scope a2)
  | Ast.A_if (c, a1, a2) ->
    Core_ir.If (resolve_term st scope c, resolve_action st scope a1, resolve_action st scope a2)
  | Ast.A_perform (name, args, p) -> resolve_perform st scope name args p

and resolve_perform st scope name args p : Core_ir.t =
  if List.mem name scope.stack then
    fail p "recursive perform of %S (inline stack: %s)" name (String.concat " -> " scope.stack);
  match Ast.find_decl st.prog name with
  | Some (Ast.D_action { name; params; clauses; pos = _ }) ->
    let bindings = bind_params st scope ~decl_name:name ~params ~args p in
    let clause_scope = { scope with vars = ("e", B_env) :: bindings; e_allowed = true } in
    let resolve_clause (c : Ast.effect_clause) : Core_ir.effect_clause =
      let target =
        match c.Ast.target with
        | Ast.E_self -> Core_ir.Self
        | Ast.E_key t ->
          (* The key designator sees u and parameters, not e. *)
          Core_ir.Key (resolve_term st { clause_scope with e_allowed = false } t)
        | Ast.E_all t -> Core_ir.All (Predicate.of_expr (resolve_term st clause_scope t))
      in
      let updates =
        List.map
          (fun (attr, t) ->
            match Schema.find_opt st.schema attr with
            | None -> fail p "unknown attribute %S in action %s" attr name
            | Some i ->
              if Schema.tag_at st.schema i = Schema.Const then
                fail p "attribute %S is const and cannot be the subject of an effect" attr;
              (i, resolve_term st clause_scope t))
          c.Ast.updates
      in
      { Core_ir.target; updates }
    in
    Core_ir.Effects (List.map resolve_clause clauses)
  | Some (Ast.D_script { name; params; body; pos = _ }) ->
    (* Inline the callee.  Its parameters are bound, its lets allocate slots
       above the caller's. *)
    let bindings = bind_params st scope ~decl_name:name ~params ~args p in
    let callee_scope = { scope with vars = bindings; stack = name :: scope.stack } in
    resolve_action st callee_scope body
  | Some _ -> fail p "%S cannot be performed" name
  | None -> fail p "unknown action function %S" name

(* ------------------------------------------------------------------ *)
(* Programs *)

let resolve ?(consts : (string * Value.t) list = []) ~(schema : Schema.t) (prog : Ast.program) :
    Core_ir.program =
  if not (Normalize.is_normal prog) then
    raise (Resolve_error "program is not in normal form; run Normalize.normalize first");
  let const_table = Hashtbl.create 16 in
  List.iter (fun (n, v) -> Hashtbl.replace const_table n v) consts;
  List.iter
    (function
      | Ast.D_const (n, v) -> Hashtbl.replace const_table n v
      | Ast.D_aggregate _ | Ast.D_action _ | Ast.D_script _ -> ())
    prog;
  let st = { prog; schema; consts = const_table; instances = []; n_instances = 0 } in
  let scripts =
    List.filter_map
      (function
        | Ast.D_script { name; params; body; pos } -> begin
          (* Only single-parameter scripts are entry points; helpers are
             inlined at their perform sites. *)
          match params with
          | [ unit_param ] ->
            let scope =
              {
                vars = [ (unit_param, B_unit) ];
                depth = Schema.arity schema;
                e_allowed = false;
                stack = [ name ];
              }
            in
            Some { Core_ir.name; body = resolve_action st scope body }
          | [] -> fail pos "script %s must take the unit record as a parameter" name
          | _ :: _ :: _ -> None
        end
        | Ast.D_const _ | Ast.D_aggregate _ | Ast.D_action _ -> None)
      prog
  in
  {
    Core_ir.schema;
    aggregates = Array.of_list (List.rev st.instances);
    scripts;
  }
