(** Name resolution and lowering: surface AST -> closed core IR.

    Inlines every [perform] (functions are macros — sound because [Random]
    is stable within a tick), turns aggregate call sites into deduplicated
    closed instances, and resolves all names to slots.  Expects the
    {!Normalize} normal form and a well-typed program. *)

open Sgl_relalg

exception Resolve_error of string

(** [resolve ?consts ~schema prog] lowers a normalized program.  [consts]
    supplies engine-provided named constants (merged with the program's own
    [const] declarations, which win on collision).
    Raises {!Resolve_error} on unknown names, arity errors, recursion, or a
    program not in normal form. *)
val resolve : ?consts:(string * Value.t) list -> schema:Schema.t -> Ast.program -> Core_ir.program
