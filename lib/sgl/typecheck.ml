(* Static checking of SGL programs, before normalization and resolution.

   Catches what a game designer actually gets wrong: misspelled attributes,
   wrong arities, conditions that are not boolean, effects on const
   attributes, recursive performs, vector/scalar confusion.  Parameters of
   aggregate and action declarations are checked generically (type [Any])
   and re-checked implicitly at each call site after inlining. *)

open Sgl_relalg

type ty = Ty_int | Ty_float | Ty_bool | Ty_vec | Ty_any

exception Type_error of string

(* One violation, with the source position it was detected at ([Ast.no_pos]
   for program-level violations such as duplicate declarations). *)
type diagnostic = { pos : Ast.pos; message : string }

let diagnostic_to_string (d : diagnostic) : string =
  if d.pos = Ast.no_pos then d.message
  else Fmt.str "line %d, column %d: %s" d.pos.Ast.line d.pos.Ast.col d.message

(* Internal: checks abort the declaration they are in with a positioned
   failure; [check_all] catches these and keeps going with the next one. *)
exception Fail of diagnostic

let fail (p : Ast.pos) fmt = Fmt.kstr (fun s -> raise (Fail { pos = p; message = s })) fmt

let ty_name = function
  | Ty_int -> "int"
  | Ty_float -> "float"
  | Ty_bool -> "bool"
  | Ty_vec -> "vec"
  | Ty_any -> "any"

let of_value_ty = function
  | Value.TInt -> Ty_int
  | Value.TFloat -> Ty_float
  | Value.TBool -> Ty_bool
  | Value.TVec -> Ty_vec

let is_numeric = function
  | Ty_int | Ty_float | Ty_any -> true
  | Ty_bool | Ty_vec -> false

(* The join of two numeric types (int widens to float). *)
let join_numeric p a b =
  match (a, b) with
  | Ty_any, other | other, Ty_any -> other
  | Ty_int, Ty_int -> Ty_int
  | (Ty_int | Ty_float), (Ty_int | Ty_float) -> Ty_float
  | _ -> fail p "expected numbers, got %s and %s" (ty_name a) (ty_name b)

type binding = V_unit | V_env | V_val of ty

type env = {
  prog : Ast.program;
  schema : Schema.t;
  consts : (string, ty) Hashtbl.t;
  vars : (string * binding) list;
  e_allowed : bool;
}

let reserved_name p name =
  if name = "e" then fail p "%S is reserved for the environment tuple" name;
  if String.length name >= 2 && String.sub name 0 2 = "__" then
    fail p "names starting with \"__\" are reserved (%S)" name

let bind env p name b =
  reserved_name p name;
  if List.mem_assoc name env.vars then fail p "%S is already bound" name;
  { env with vars = (name, b) :: env.vars }

(* Result type of an aggregate declaration's components. *)
let rec agg_result_ty env (d : Ast.decl) p : ty =
  match d with
  | Ast.D_aggregate { params; components; where_ = _; default = _; pos; _ } -> begin
    let param_bindings =
      match params with
      | [] -> fail pos "aggregate must declare the unit record as its first parameter"
      | unit_param :: rest -> (unit_param, V_unit) :: List.map (fun r -> (r, V_val Ty_any)) rest
    in
    (* The implicit [e] bypasses [bind]: its name is reserved for this. *)
    let body_env = { env with vars = ("e", V_env) :: param_bindings; e_allowed = true } in
    let component_ty = function
      | Ast.G_count -> Ty_int
      | Ast.G_sum _ | Ast.G_avg _ | Ast.G_stddev _ | Ast.G_min _ | Ast.G_max _ -> Ty_float
      | Ast.G_argmin (_, r) | Ast.G_argmax (_, r) -> term_ty body_env r
      | Ast.G_nearest (_, _, _, _, r) -> term_ty body_env r
    in
    match components with
    | [ c ] -> component_ty c
    | [ _; _ ] -> Ty_vec
    | _ -> fail p "aggregate must have one or two components"
  end
  | _ -> fail p "not an aggregate"

and call_ty env name args p : ty =
  let arg i = List.nth args i in
  let arity n =
    if List.length args <> n then
      fail p "%s expects %d argument(s), got %d" name n (List.length args)
  in
  let numeric i =
    let t = term_ty env (arg i) in
    if not (is_numeric t) then
      fail p "argument %d of %s must be a number, got %s" (i + 1) name (ty_name t);
    t
  in
  match name with
  | "abs" ->
    arity 1;
    numeric 0
  | "sqrt" ->
    arity 1;
    ignore (numeric 0);
    Ty_float
  | "min" | "max" ->
    arity 2;
    join_numeric p (numeric 0) (numeric 1)
  | "random" ->
    arity 1;
    ignore (numeric 0);
    Ty_int
  | "norm" ->
    arity 1;
    let t = term_ty env (arg 0) in
    if t <> Ty_vec && t <> Ty_any then fail p "norm expects a vec, got %s" (ty_name t);
    Ty_float
  | "dist" ->
    arity 2;
    List.iteri
      (fun i a ->
        let t = term_ty env a in
        if t <> Ty_vec && t <> Ty_any then
          fail p "argument %d of dist must be a vec, got %s" (i + 1) (ty_name t))
      args;
    Ty_float
  | other -> begin
    match Ast.find_decl env.prog other with
    | Some (Ast.D_aggregate _ as d) ->
      check_call_args env ~decl:d ~args p;
      agg_result_ty env d p
    | Some (Ast.D_action _) -> fail p "action %S can only be used with perform" other
    | Some (Ast.D_script _) -> fail p "script %S can only be used with perform" other
    | Some (Ast.D_const _) -> fail p "constant %S is not a function" other
    | None -> fail p "unknown function %S" other
  end

(* Arity and unit-record checks shared by aggregate calls and performs. *)
and check_call_args env ~(decl : Ast.decl) ~(args : Ast.term list) p : unit =
  let params =
    match decl with
    | Ast.D_aggregate { params; _ } | Ast.D_action { params; _ } | Ast.D_script { params; _ } ->
      params
    | Ast.D_const _ -> fail p "constants take no arguments"
  in
  let name = Ast.decl_name decl in
  if List.length params <> List.length args then
    fail p "%s expects %d argument(s), got %d" name (List.length params) (List.length args);
  (match args with
  | [] -> fail p "%s must be called with the unit record first" name
  | first :: rest ->
    (match first with
    | Ast.T_var (v, vp) -> begin
      match List.assoc_opt v env.vars with
      | Some V_unit -> ()
      | _ -> fail vp "the first argument of %s must be the unit record" name
    end
    | _ -> fail p "the first argument of %s must be the unit record" name);
    (* Remaining arguments are ordinary values. *)
    List.iter (fun a -> ignore (term_ty env a)) rest)

and term_ty env (t : Ast.term) : ty =
  match t with
  | Ast.T_int _ -> Ty_int
  | Ast.T_float _ -> Ty_float
  | Ast.T_bool _ -> Ty_bool
  | Ast.T_var (name, p) -> begin
    match List.assoc_opt name env.vars with
    | Some (V_val ty) -> ty
    | Some V_unit -> fail p "the unit record %S cannot be used as a plain value" name
    | Some V_env -> fail p "the environment tuple %S cannot be used as a plain value" name
    | None -> begin
      match Hashtbl.find_opt env.consts name with
      | Some ty -> ty
      | None -> fail p "unknown variable %S" name
    end
  end
  | Ast.T_dot (Ast.T_var (base, bp), field, p) -> begin
    match List.assoc_opt base env.vars with
    | Some V_unit -> attr_ty env p field
    | Some V_env ->
      if not env.e_allowed then
        fail bp "environment tuple %S is only available inside aggregate and action bodies" base
      else attr_ty env p field
    | Some _ | None -> field_ty env (Ast.T_var (base, bp)) field p
  end
  | Ast.T_dot (base, field, p) -> field_ty env base field p
  | Ast.T_binop (op, a, b) -> begin
    let ta = term_ty env a and tb = term_ty env b in
    match op with
    | Expr.Mod ->
      if ta <> Ty_int && ta <> Ty_any then fail (pos_of_term a) "mod needs ints";
      if tb <> Ty_int && tb <> Ty_any then fail (pos_of_term b) "mod needs ints";
      Ty_int
    | Expr.Add | Expr.Sub -> begin
      match (ta, tb) with
      | Ty_vec, Ty_vec -> Ty_vec
      | Ty_vec, Ty_any | Ty_any, Ty_vec -> Ty_vec
      | _ -> join_numeric (pos_of_term a) ta tb
    end
    | Expr.Mul -> begin
      match (ta, tb) with
      | Ty_vec, other when is_numeric other -> Ty_vec
      | other, Ty_vec when is_numeric other -> Ty_vec
      | _ -> join_numeric (pos_of_term a) ta tb
    end
    | Expr.Div -> begin
      match (ta, tb) with
      | Ty_vec, other when is_numeric other -> Ty_vec
      | _ ->
        ignore (join_numeric (pos_of_term a) ta tb);
        Ty_float
    end
  end
  | Ast.T_cmp (op, a, b) -> begin
    let ta = term_ty env a and tb = term_ty env b in
    (match op with
    | Expr.Eq | Expr.Ne -> () (* any pair of equal-kind values; vec allowed *)
    | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge -> ignore (join_numeric (pos_of_term a) ta tb));
    Ty_bool
  end
  | Ast.T_and (a, b) | Ast.T_or (a, b) ->
    expect_bool env a;
    expect_bool env b;
    Ty_bool
  | Ast.T_not a ->
    expect_bool env a;
    Ty_bool
  | Ast.T_neg a ->
    let t = term_ty env a in
    if t = Ty_vec then Ty_vec
    else if is_numeric t then t
    else fail (pos_of_term a) "cannot negate a %s" (ty_name t)
  | Ast.T_vec (a, b) ->
    let ta = term_ty env a and tb = term_ty env b in
    if not (is_numeric ta && is_numeric tb) then
      fail (pos_of_term a) "vector components must be numbers";
    Ty_vec
  | Ast.T_call (name, args, p) -> call_ty env name args p

and attr_ty env p field =
  match Schema.find_opt env.schema field with
  | Some i -> of_value_ty (Schema.ty_at env.schema i)
  | None -> fail p "unknown attribute %S" field

and field_ty env base field p =
  let t = term_ty env base in
  if t <> Ty_vec && t <> Ty_any then fail p "component access .%s needs a vec, got %s" field (ty_name t);
  match field with
  | "x" | "y" -> Ty_float
  | other -> fail p "unknown vector component %S (expected .x or .y)" other

and expect_bool env t =
  let ty = term_ty env t in
  if ty <> Ty_bool && ty <> Ty_any then
    fail (pos_of_term t) "expected a boolean condition, got %s" (ty_name ty)

and pos_of_term = function
  | Ast.T_var (_, p) | Ast.T_dot (_, _, p) | Ast.T_call (_, _, p) -> p
  | Ast.T_int _ | Ast.T_float _ | Ast.T_bool _ -> Ast.no_pos
  | Ast.T_binop (_, a, _)
  | Ast.T_cmp (_, a, _)
  | Ast.T_and (a, _)
  | Ast.T_or (a, _)
  | Ast.T_not a
  | Ast.T_neg a
  | Ast.T_vec (a, _) ->
    pos_of_term a

(* ------------------------------------------------------------------ *)
(* Actions *)

let rec check_action env (a : Ast.action) : unit =
  match a with
  | Ast.A_skip -> ()
  | Ast.A_let (v, t, k) ->
    let ty = term_ty env t in
    let env' = bind env (pos_of_term t) v (V_val ty) in
    check_action env' k
  | Ast.A_seq (a1, a2) ->
    check_action env a1;
    check_action env a2
  | Ast.A_if (c, a1, a2) ->
    expect_bool env c;
    check_action env a1;
    check_action env a2
  | Ast.A_perform (name, args, p) -> begin
    match Ast.find_decl env.prog name with
    | Some ((Ast.D_action _ | Ast.D_script _) as d) -> check_call_args env ~decl:d ~args p
    | Some (Ast.D_aggregate _) -> fail p "aggregate %S cannot be performed" name
    | Some (Ast.D_const _) -> fail p "constant %S cannot be performed" name
    | None -> fail p "unknown action function %S" name
  end

(* ------------------------------------------------------------------ *)
(* Declarations *)

let check_params pos params =
  match params with
  | [] -> fail pos "declaration must take the unit record as its first parameter"
  | _ ->
    List.iter (fun p -> reserved_name pos p) params;
    let sorted = List.sort compare params in
    let rec dup = function
      | a :: b :: _ when a = b -> fail pos "duplicate parameter %S" a
      | _ :: rest -> dup rest
      | [] -> ()
    in
    dup sorted

let decl_env env pos params =
  match params with
  | [] -> fail pos "declaration must take the unit record as its first parameter"
  | unit_param :: rest ->
    List.fold_left
      (fun acc r -> bind acc pos r (V_val Ty_any))
      (bind { env with vars = [] } pos unit_param V_unit)
      rest

let check_aggregate env ~name:_ ~params ~components ~where_ ~default pos =
  check_params pos params;
  (* The implicit [e] bypasses [bind]: the name is reserved for exactly
     this binding. *)
  let body_env =
    let base = decl_env env pos params in
    { base with vars = ("e", V_env) :: base.vars; e_allowed = true }
  in
  let check_component = function
    | Ast.G_count -> ()
    | Ast.G_sum t | Ast.G_avg t | Ast.G_stddev t | Ast.G_min t | Ast.G_max t ->
      let ty = term_ty body_env t in
      if not (is_numeric ty) then fail pos "aggregate component needs a numeric term"
    | Ast.G_argmin (o, r) | Ast.G_argmax (o, r) ->
      let ty = term_ty body_env o in
      if not (is_numeric ty) then fail pos "argmin/argmax objective must be numeric";
      ignore (term_ty body_env r)
    | Ast.G_nearest (ex, ey, ux, uy, r) ->
      List.iter
        (fun t ->
          let ty = term_ty body_env t in
          if not (is_numeric ty) then fail pos "nearest coordinates must be numeric")
        [ ex; ey; ux; uy ];
      ignore (term_ty body_env r)
  in
  (match components with
  | [ c ] -> check_component c
  | [ c1; c2 ] ->
    check_component c1;
    check_component c2
  | [] -> fail pos "aggregate must have at least one component"
  | _ -> fail pos "aggregate must have at most two components");
  Option.iter (fun w -> expect_bool body_env w) where_;
  (* The default may not mention e. *)
  Option.iter (fun d -> ignore (term_ty { body_env with e_allowed = false } d)) default

let check_action_decl env ~name:_ ~params ~clauses pos =
  check_params pos params;
  let base = decl_env env pos params in
  let clause_env =
    { { base with vars = ("e", V_env) :: base.vars } with e_allowed = true }
  in
  List.iter
    (fun (c : Ast.effect_clause) ->
      (match c.Ast.target with
      | Ast.E_self -> ()
      | Ast.E_key t ->
        let ty = term_ty { clause_env with e_allowed = false } t in
        if not (is_numeric ty) then fail pos "key target must be an integer expression"
      | Ast.E_all t -> expect_bool clause_env t);
      if c.Ast.updates = [] then fail pos "effect clause must update at least one attribute";
      List.iter
        (fun (attr, t) ->
          match Schema.find_opt env.schema attr with
          | None -> fail pos "unknown attribute %S" attr
          | Some i -> begin
            let ty = term_ty clause_env t in
            match Schema.tag_at env.schema i with
            | Schema.Const ->
              fail pos "attribute %S is const and cannot be the subject of an effect" attr
            | Schema.Pmax ->
              if ty <> Ty_vec && ty <> Ty_any then
                fail pos
                  "effect contribution for priority-set attribute %S must be a (priority, value) \
                   vec, got %s"
                  attr (ty_name ty)
            | Schema.Sum | Schema.Max | Schema.Min ->
              if not (is_numeric ty) then
                fail pos "effect contribution for %S must be numeric, got %s" attr (ty_name ty)
          end)
        c.Ast.updates)
    clauses

(* Perform-reachability cycle detection over scripts. *)
let check_no_recursion (prog : Ast.program) =
  let callees body =
    let acc = ref [] in
    let rec go = function
      | Ast.A_skip -> ()
      | Ast.A_let (_, _, k) -> go k
      | Ast.A_seq (a, b) | Ast.A_if (_, a, b) ->
        go a;
        go b
      | Ast.A_perform (n, _, _) -> acc := n :: !acc
    in
    go body;
    !acc
  in
  let graph =
    List.filter_map
      (function
        | Ast.D_script { name; body; pos; _ } -> Some (name, (pos, callees body))
        | Ast.D_const _ | Ast.D_aggregate _ | Ast.D_action _ -> None)
      prog
  in
  let rec dfs pos visiting name =
    if List.mem name visiting then fail pos "recursive perform cycle involving %S" name;
    match List.assoc_opt name graph with
    | None -> () (* action declaration or unknown: flagged elsewhere *)
    | Some (_, next) -> List.iter (dfs pos (name :: visiting)) next
  in
  List.iter (fun (name, (pos, _)) -> dfs pos [] name) graph

(* Collect every diagnostic instead of aborting at the first.  Granularity
   is one diagnostic per failing unit of work (declaration, duplicate name,
   recursion root): a declaration whose check raises contributes its first
   violation and checking continues with the next declaration. *)
let check_all ?(consts : (string * Value.t) list = []) ~(schema : Schema.t)
    (prog : Ast.program) : diagnostic list =
  let out = ref [] in
  let guard f = try f () with Fail d -> out := d :: !out in
  (* Duplicate declaration names *)
  let rec dup = function
    | (a, _) :: (b, pos) :: rest when a = b ->
      guard (fun () -> fail pos "duplicate declaration %S" a);
      dup (List.filter (fun (n, _) -> n <> a) rest)
    | _ :: rest -> dup rest
    | [] -> ()
  in
  dup (List.sort compare (List.map (fun d -> (Ast.decl_name d, Ast.decl_pos d)) prog));
  let const_table = Hashtbl.create 16 in
  let value_ty v = of_value_ty (Value.ty_of v) in
  List.iter (fun (n, v) -> Hashtbl.replace const_table n (value_ty v)) consts;
  List.iter
    (function
      | Ast.D_const (n, v) -> Hashtbl.replace const_table n (value_ty v)
      | Ast.D_aggregate _ | Ast.D_action _ | Ast.D_script _ -> ())
    prog;
  let env = { prog; schema; consts = const_table; vars = []; e_allowed = false } in
  List.iter
    (fun decl ->
      guard (fun () ->
          match decl with
          | Ast.D_const _ -> ()
          | Ast.D_aggregate { name; params; components; where_; default; pos } ->
            check_aggregate env ~name ~params ~components ~where_ ~default pos
          | Ast.D_action { name; params; clauses; pos } ->
            check_action_decl env ~name ~params ~clauses pos
          | Ast.D_script { name = _; params; body; pos } ->
            check_params pos params;
            check_action (decl_env env pos params) body))
    prog;
  guard (fun () -> check_no_recursion prog);
  List.rev !out

(* The historical raising interface: the first diagnostic, formatted with
   its position, as a {!Type_error}. *)
let check ?(consts : (string * Value.t) list = []) ~(schema : Schema.t) (prog : Ast.program) :
    unit =
  match check_all ~consts ~schema prog with
  | [] -> ()
  | d :: _ -> raise (Type_error (diagnostic_to_string d))
