(** Static checking of SGL programs (pre-normalization).

    Catches unknown attributes and variables, arity and unit-record
    violations, non-boolean conditions, effects on const attributes,
    vector/scalar confusion, reserved-name bindings ([e], ["__" ] prefix),
    duplicate declarations, rebinding, and recursive [perform] cycles. *)

open Sgl_relalg

type ty = Ty_int | Ty_float | Ty_bool | Ty_vec | Ty_any

exception Type_error of string

(** One violation and where it was detected ([Ast.no_pos] for program-level
    violations such as duplicate declarations). *)
type diagnostic = { pos : Ast.pos; message : string }

(** ["line L, column C: message"], or the bare message at {!Ast.no_pos}. *)
val diagnostic_to_string : diagnostic -> string

val ty_name : ty -> string

(** Collect every diagnostic (one per failing declaration or program-level
    check) instead of aborting at the first.  [[]] means well-typed. *)
val check_all :
  ?consts:(string * Value.t) list -> schema:Schema.t -> Ast.program -> diagnostic list

(** [check ?consts ~schema prog] raises {!Type_error} with the first
    diagnostic of {!check_all}, formatted by {!diagnostic_to_string}. *)
val check : ?consts:(string * Value.t) list -> schema:Schema.t -> Ast.program -> unit
