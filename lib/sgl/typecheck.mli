(** Static checking of SGL programs (pre-normalization).

    Catches unknown attributes and variables, arity and unit-record
    violations, non-boolean conditions, effects on const attributes,
    vector/scalar confusion, reserved-name bindings ([e], ["__" ] prefix),
    duplicate declarations, rebinding, and recursive [perform] cycles. *)

open Sgl_relalg

type ty = Ty_int | Ty_float | Ty_bool | Ty_vec | Ty_any

exception Type_error of string

val ty_name : ty -> string

(** [check ?consts ~schema prog] raises {!Type_error} on the first
    violation. *)
val check : ?consts:(string * Value.t) list -> schema:Schema.t -> Ast.program -> unit
