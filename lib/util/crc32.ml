(* CRC-32 (IEEE 802.3), the reflected 0xEDB88320 polynomial — the same
   digest zlib and gzip use, so persisted files can be checked with
   off-the-shelf tools.  Table-driven, one table shared process-wide;
   digests live in plain ints (always in [0, 2^32)), so no Int32 boxing
   on the per-byte path. *)

type t = int

let poly = 0xEDB88320

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 <> 0 then poly lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let empty : t = 0

let update_bytes (crc : t) (b : Bytes.t) ~(pos : int) ~(len : int) : t =
  if pos < 0 || len < 0 || pos > Bytes.length b - len then
    invalid_arg "Crc32.update: range out of bounds";
  let table = Lazy.force table in
  (* pre-condition with the final xor so [empty] is a valid digest *)
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let update (crc : t) (s : string) ~(pos : int) ~(len : int) : t =
  update_bytes crc (Bytes.unsafe_of_string s) ~pos ~len

let string (s : string) : t = update empty s ~pos:0 ~len:(String.length s)

(* Digest of a concatenation from the two digests and the second length
   alone (zlib's crc32_combine).  CRC is linear over GF(2): extending
   stream A by [len_b] zero bytes is a linear map on the 32-bit state,
   built by repeated squaring of the single-zero-bit matrix, and the
   pre/post-conditioning of the two halves cancels under the final xor.
   Cost is O(log len_b) 32x32 bit-matrix squarings — independent of the
   data, which is what makes column-incremental digests pay off. *)
let gf2_times (m : int array) (v : int) : int =
  let s = ref 0 and v = ref v and i = ref 0 in
  while !v <> 0 do
    if !v land 1 <> 0 then s := !s lxor m.(!i);
    v := !v lsr 1;
    incr i
  done;
  !s

let gf2_square (m : int array) : int array = Array.map (gf2_times m) m

let combine (a : t) (b : t) ~(len_b : int) : t =
  if len_b < 0 then invalid_arg "Crc32.combine: negative length";
  if len_b = 0 then a
  else begin
    (* one-zero-bit operator: state v |-> (v >> 1) xor (poly if v land 1) *)
    let bit = Array.make 32 0 in
    bit.(0) <- poly;
    for n = 1 to 31 do
      bit.(n) <- 1 lsl (n - 1)
    done;
    (* square up to the four-zero-bit operator; the loop's first squaring
       then lands on one whole zero byte *)
    let m = ref (gf2_square (gf2_square bit)) in
    let crc = ref a and len = ref len_b in
    let looping = ref true in
    while !looping do
      m := gf2_square !m;
      if !len land 1 <> 0 then crc := gf2_times !m !crc;
      len := !len lsr 1;
      if !len = 0 then looping := false
    done;
    !crc lxor b
  end

let to_hex (t : t) : string = Printf.sprintf "%08x" (t land 0xFFFFFFFF)
