(* CRC-32 (IEEE 802.3), the reflected 0xEDB88320 polynomial — the same
   digest zlib and gzip use, so persisted files can be checked with
   off-the-shelf tools.  Table-driven, one table shared process-wide;
   digests live in plain ints (always in [0, 2^32)), so no Int32 boxing
   on the per-byte path. *)

type t = int

let poly = 0xEDB88320

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 <> 0 then poly lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let empty : t = 0

let update_bytes (crc : t) (b : Bytes.t) ~(pos : int) ~(len : int) : t =
  if pos < 0 || len < 0 || pos > Bytes.length b - len then
    invalid_arg "Crc32.update: range out of bounds";
  let table = Lazy.force table in
  (* pre-condition with the final xor so [empty] is a valid digest *)
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let update (crc : t) (s : string) ~(pos : int) ~(len : int) : t =
  update_bytes crc (Bytes.unsafe_of_string s) ~pos ~len

let string (s : string) : t = update empty s ~pos:0 ~len:(String.length s)

let to_hex (t : t) : string = Printf.sprintf "%08x" (t land 0xFFFFFFFF)
