(** CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
    guarding every persisted section and journal record.  Pure OCaml,
    table-driven; digests are non-negative ints in [\[0, 2^32)]. *)

type t = int
(** A running CRC state (already pre/post-conditioned: [empty] is the
    digest of the empty string, and any [t] is a valid final digest). *)

val empty : t

(** [update crc s ~pos ~len] folds [s.[pos .. pos+len-1]] into [crc].
    @raise Invalid_argument when the range is out of bounds. *)
val update : t -> string -> pos:int -> len:int -> t

val update_bytes : t -> Bytes.t -> pos:int -> len:int -> t

(** [string s] is [update empty s ~pos:0 ~len:(String.length s)]. *)
val string : string -> t

(** [combine a b ~len_b] is the digest of the concatenation [A ^ B] given
    [a = string A], [b = string B] and [len_b = String.length B] — without
    touching the data (zlib's [crc32_combine], GF(2) matrix exponentiation,
    O(log len_b)).  The law [combine (string a) (string b)
    ~len_b:(String.length b) = string (a ^ b)] is what lets a composite
    digest be re-assembled from per-part digests when only some parts
    changed.
    @raise Invalid_argument on a negative [len_b]. *)
val combine : t -> t -> len_b:int -> t

val to_hex : t -> string
