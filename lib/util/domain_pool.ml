(* A fixed-size domain pool with static task assignment.

   Each worker owns one mailbox slot (mutex + condition + state machine):

     Idle --submit--> Running --worker--> Done --await--> Idle
                                                 \--shutdown--> Quit

   The caller hands every worker its closure, runs its own share of the
   work, then waits for each worker's Done.  All communication is through
   the slot's mutex, so the publication of task results to the caller is
   properly synchronized (no data races in the OCaml 5 memory model).
   There is deliberately no work queue and no stealing: determinism of the
   work assignment is part of the contract. *)

type failure = exn * Printexc.raw_backtrace

type state =
  | Idle
  | Running
  | Done of failure option
  | Quit

type slot = {
  lock : Mutex.t;
  cond : Condition.t;
  mutable job : (unit -> unit) option;
  mutable state : state;
}

type t = {
  lanes : int;
  slots : slot array; (* lanes - 1 *)
  domains : unit Domain.t array;
  mutable live : bool;
  mutable suppressed : int; (* extra lane failures hidden by the last re-raise *)
}

let max_lanes = 64

let worker_loop (s : slot) : unit =
  let rec loop () =
    Mutex.lock s.lock;
    let rec wait () =
      match s.state with
      | Running | Quit -> ()
      | Idle | Done _ ->
        Condition.wait s.cond s.lock;
        wait ()
    in
    wait ();
    match s.state with
    | Quit -> Mutex.unlock s.lock
    | Running ->
      let job = Option.get s.job in
      s.job <- None;
      Mutex.unlock s.lock;
      let outcome =
        try
          job ();
          None
        with e -> Some (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock s.lock;
      s.state <- Done outcome;
      Condition.broadcast s.cond;
      Mutex.unlock s.lock;
      loop ()
    | Idle | Done _ -> assert false
  in
  loop ()

let create ~domains =
  let lanes = max 1 (min domains max_lanes) in
  let slots =
    Array.init (lanes - 1) (fun _ ->
        { lock = Mutex.create (); cond = Condition.create (); job = None; state = Idle })
  in
  let domains = Array.map (fun s -> Domain.spawn (fun () -> worker_loop s)) slots in
  { lanes; slots; domains; live = true; suppressed = 0 }

let size t = t.lanes
let suppressed_failures t = t.suppressed

let submit (s : slot) (f : unit -> unit) : unit =
  Mutex.lock s.lock;
  (match s.state with
  | Idle -> ()
  | Running | Done _ | Quit ->
    Mutex.unlock s.lock;
    invalid_arg "Domain_pool: lane is busy or shut down");
  s.job <- Some f;
  s.state <- Running;
  Condition.broadcast s.cond;
  Mutex.unlock s.lock

let await (s : slot) : failure option =
  Mutex.lock s.lock;
  let rec wait () =
    match s.state with
    | Done outcome ->
      s.state <- Idle;
      outcome
    | Running -> Condition.wait s.cond s.lock; wait ()
    | Idle | Quit -> assert false
  in
  let outcome = wait () in
  Mutex.unlock s.lock;
  outcome

(* Telemetry: total busy nanoseconds across lanes, and the per-fan-out
   busy-time distribution (lane imbalance shows up as a wide histogram).
   Counters are atomic, so every lane records without locks. *)
let tel_busy_ns = Telemetry.counter "pool.lane_busy_ns"
let tel_fanouts = Telemetry.counter "pool.fanouts"
let tel_busy_hist = Telemetry.histogram "pool.lane_busy_s"

let parallel_map (t : t) (f : 'a -> 'b) (items : 'a array) : 'b array =
  if not t.live then invalid_arg "Domain_pool: pool is shut down";
  t.suppressed <- 0;
  let n = Array.length items in
  if n = 0 then [||]
  else begin
    let lanes = min t.lanes n in
    let results : 'b option array = Array.make n None in
    Telemetry.Counter.incr tel_fanouts;
    (* lane [l] owns items l, l + lanes, l + 2*lanes, ... *)
    let work lane () =
      let body () =
        let t0 = if Telemetry.enabled () then Timer.now_ns () else 0L in
        Fault_inject.hit "pool.lane";
        let finish () =
          if Telemetry.enabled () then begin
            let ns = Int64.sub (Timer.now_ns ()) t0 in
            Telemetry.Counter.add tel_busy_ns (Int64.to_int ns);
            Telemetry.Histogram.observe tel_busy_hist (Int64.to_float ns /. 1e9)
          end
        in
        match
          let i = ref lane in
          while !i < n do
            results.(!i) <- Some (f items.(!i));
            i := !i + lanes
          done
        with
        | () -> finish ()
        | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          finish ();
          Printexc.raise_with_backtrace e bt
      in
      (* Name construction only when tracing, so the disabled path stays
         allocation-free. *)
      if Telemetry.Span.enabled () then
        Telemetry.Span.with_ ~cat:"pool" (Printf.sprintf "lane:%d" lane) body
      else body ()
    in
    for l = 1 to lanes - 1 do
      submit t.slots.(l - 1) (work l)
    done;
    let caller_failure =
      try
        work 0 ();
        None
      with e -> Some (e, Printexc.get_raw_backtrace ())
    in
    (* Every lane is always awaited, so the pool stays consistent even when
       several fail.  The first failure in lane order is re-raised with its
       original backtrace; the rest are only counted, and the count stays
       readable through [suppressed_failures] for fault reporting. *)
    let failures = ref (Option.to_list caller_failure) in
    for l = 1 to lanes - 1 do
      match await t.slots.(l - 1) with
      | None -> ()
      | Some failure -> failures := failure :: !failures
    done;
    match List.rev !failures with
    | [] -> Array.map Option.get results
    | (e, bt) :: rest ->
      t.suppressed <- List.length rest;
      Printexc.raise_with_backtrace e bt
  end

let chunk_ranges ~n ~chunks =
  let chunks = max 1 chunks in
  Array.init chunks (fun c -> (c * n / chunks, (c + 1) * n / chunks))

let shutdown (t : t) : unit =
  if t.live then begin
    t.live <- false;
    Array.iter
      (fun s ->
        Mutex.lock s.lock;
        (* Wait out an in-flight job; discard a Done left by an aborted
           [parallel_map]. *)
        let rec drain () =
          match s.state with
          | Running -> Condition.wait s.cond s.lock; drain ()
          | Done _ -> s.state <- Idle; drain ()
          | Idle | Quit -> ()
        in
        drain ();
        s.state <- Quit;
        Condition.broadcast s.cond;
        Mutex.unlock s.lock)
      t.slots;
    Array.iter Domain.join t.domains
  end

(* ------------------------------------------------------------------ *)
(* The shared-pool registry *)

let registry : (int, t) Hashtbl.t = Hashtbl.create 4
let registry_lock = Mutex.create ()
let at_exit_installed = ref false

let shared ~domains =
  let lanes = max 1 (min domains max_lanes) in
  Mutex.lock registry_lock;
  let pool =
    match Hashtbl.find_opt registry lanes with
    | Some p -> p
    | None ->
      let p = create ~domains:lanes in
      Hashtbl.add registry lanes p;
      if not !at_exit_installed then begin
        at_exit_installed := true;
        at_exit (fun () ->
            Mutex.lock registry_lock;
            let pools = Hashtbl.fold (fun _ p acc -> p :: acc) registry [] in
            Hashtbl.reset registry;
            Mutex.unlock registry_lock;
            List.iter shutdown pools)
      end;
      p
  in
  Mutex.unlock registry_lock;
  pool
