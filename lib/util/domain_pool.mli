(** A fixed-size, work-stealing-free pool of OCaml 5 domains.

    The pool spawns [lanes - 1] worker domains once and reuses them for
    every subsequent call, so the per-tick cost of parallelism is two
    condition-variable handshakes per worker, not a domain spawn.  Work is
    distributed *statically*: task [i] always runs on lane [i mod lanes].
    There is no stealing and no shared queue, so the assignment of work to
    domains — and therefore any order-sensitive float arithmetic inside a
    task — is a pure function of the task array, never of scheduling. *)

type t

(** [create ~domains] spawns a pool of [domains] lanes: the caller plus
    [domains - 1] worker domains.  [domains] is clamped to [\[1, 64\]]; a
    1-lane pool runs everything on the caller and spawns nothing.  The
    requested count may exceed the physical core count (useful for
    determinism tests with prime lane counts). *)
val create : domains:int -> t

(** [shared ~domains] returns a process-wide pool of that size, creating it
    on first use.  Repeated simulations reuse the same worker domains
    instead of spawning fresh ones, which keeps the total number of live
    domains bounded by the sum of distinct sizes ever requested (the OCaml
    runtime caps live domains at ~128).  Shared pools are shut down at
    process exit. *)
val shared : domains:int -> t

(** Number of lanes, including the caller's. *)
val size : t -> int

(** [parallel_map t f items] is [Array.map f items], with [items.(i)]
    evaluated on lane [i mod size t].  The caller runs lane 0's share; the
    call returns when every lane has finished.  If any task raises, the
    first exception in lane order is re-raised after all lanes complete,
    with its original backtrace; further lane failures are counted and
    readable through {!suppressed_failures}.  Must not be called
    re-entrantly from inside a task. *)
val parallel_map : t -> ('a -> 'b) -> 'a array -> 'b array

(** Lane failures beyond the one re-raised by the *last* [parallel_map]
    (0 after a clean map).  Read it when catching that exception to report
    how many additional lanes failed alongside. *)
val suppressed_failures : t -> int

(** [chunk_ranges ~n ~chunks] splits [0, n) into [chunks] contiguous
    [(lo, hi)] half-open ranges whose lengths differ by at most one —
    the canonical deterministic partition of an array for [parallel_map]. *)
val chunk_ranges : n:int -> chunks:int -> (int * int) array

(** Join the workers.  The pool must be quiescent (no in-flight
    [parallel_map]).  Idempotent; using the pool afterwards raises. *)
val shutdown : t -> unit
