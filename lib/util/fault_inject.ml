(* A seeded fault-injection registry.

   Recovery code that is only exercised by real production failures is
   untested code.  This module lets the engine compile *named injection
   points* into its hot paths (e.g. "exec.group", "pool.lane"); a point is
   inert until armed with a firing spec, and an armed point raises
   [Injected] deterministically — by seeded probability or at an exact call
   count — so every fault-handling path is reproducible from a seed.

   The fast path is a single atomic load of an immutable array: with no
   point armed, [hit] costs one load and one length test.  Points may fire
   from worker domains, so per-point call counters are atomics and the
   armed set is published as a whole (arm/reset must not race with a
   running simulation; fire counts are then exact). *)

type spec =
  | Always
  | Prob of { p : float; seed : int } (* fire when hash(seed, point, n) < p *)
  | At_count of int (* fire on exactly the Nth call, 1-based *)

exception Injected of { point : string; count : int }

let () =
  Printexc.register_printer (function
    | Injected { point; count } ->
      Some (Printf.sprintf "Fault_inject.Injected(point %s, call %d)" point count)
    | _ -> None)

(* The points compiled into the engine.  [arm] validates against this
   list: a typo in a point name must fail loudly, not silently never fire. *)
let points =
  [
    "eval.member"; "exec.group"; "fused.kernel"; "index.build"; "io.checkpoint.write";
    "io.journal.append"; "io.restore.read"; "pool.lane"; "post.apply";
  ]

type point = {
  name : string;
  spec : spec;
  calls : int Atomic.t;
  fired : int Atomic.t;
}

let armed : point array Atomic.t = Atomic.make [||]

let reset () = Atomic.set armed [||]

let arm ~(point : string) (spec : spec) : unit =
  if not (List.mem point points) then
    invalid_arg
      (Printf.sprintf "Fault_inject.arm: unknown point %S (known: %s)" point
         (String.concat ", " points));
  let keep =
    List.filter (fun p -> not (String.equal p.name point)) (Array.to_list (Atomic.get armed))
  in
  let p = { name = point; spec; calls = Atomic.make 0; fired = Atomic.make 0 } in
  Atomic.set armed (Array.of_list (keep @ [ p ]))

let find name = Array.find_opt (fun p -> String.equal p.name name) (Atomic.get armed)
let calls name = match find name with None -> 0 | Some p -> Atomic.get p.calls
let fired name = match find name with None -> 0 | Some p -> Atomic.get p.fired
let armed_points () = Array.to_list (Array.map (fun p -> p.name) (Atomic.get armed))

let hit (name : string) : unit =
  let pts = Atomic.get armed in
  if Array.length pts <> 0 then
    Array.iter
      (fun p ->
        if String.equal p.name name then begin
          let n = 1 + Atomic.fetch_and_add p.calls 1 in
          let fire =
            match p.spec with
            | Always -> true
            | At_count k -> n = k
            | Prob { p; seed } -> Prng.float (Prng.create seed) [ Hashtbl.hash name; n ] < p
          in
          if fire then begin
            Atomic.incr p.fired;
            raise (Injected { point = name; count = n })
          end
        end)
      pts

(* ------------------------------------------------------------------ *)
(* CLI spec syntax: POINT:always | POINT:count=N | POINT:p=F[,seed=N] *)

let parse_spec (s : string) : (spec, string) result =
  let kv part =
    match String.index_opt part '=' with
    | None -> (part, "")
    | Some i ->
      (String.sub part 0 i, String.sub part (i + 1) (String.length part - i - 1))
  in
  match List.map kv (String.split_on_char ',' s) with
  | [ ("always", "") ] -> Ok Always
  | [ ("count", v) ] -> begin
    match int_of_string_opt v with
    | Some n when n >= 1 -> Ok (At_count n)
    | _ -> Error (Printf.sprintf "count=%S is not a positive integer" v)
  end
  | ("p", v) :: rest -> begin
    let seed =
      match rest with
      | [] -> Ok 0
      | [ ("seed", sv) ] -> begin
        match int_of_string_opt sv with
        | Some n -> Ok n
        | None -> Error (Printf.sprintf "seed=%S is not an integer" sv)
      end
      | _ -> Error "expected p=F[,seed=N]"
    in
    match (float_of_string_opt v, seed) with
    | _, Error e -> Error e
    | Some p, Ok seed when p >= 0. && p <= 1. -> Ok (Prob { p; seed })
    | _ -> Error (Printf.sprintf "p=%S is not a probability in [0, 1]" v)
  end
  | _ -> Error (Printf.sprintf "unknown spec %S (expected always, count=N or p=F[,seed=N])" s)

let parse_arg (s : string) : (string * spec, string) result =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "%S: expected POINT:SPEC" s)
  | Some i ->
    let point = String.sub s 0 i in
    let spec = String.sub s (i + 1) (String.length s - i - 1) in
    if point = "" then Error (Printf.sprintf "%S: empty point name" s)
    else Result.map (fun sp -> (point, sp)) (parse_spec spec)

let pp_spec ppf = function
  | Always -> Format.fprintf ppf "always"
  | At_count n -> Format.fprintf ppf "count=%d" n
  | Prob { p; seed } -> Format.fprintf ppf "p=%g,seed=%d" p seed
