(** Seeded, deterministic fault injection.

    The engine compiles named injection points into its phases; each point
    is a single [hit] call that is inert until armed.  Arming a point with
    a {!spec} makes it raise {!Injected} — always, at an exact call count,
    or by a seeded per-call probability — so every recovery path is
    testable and reproducible from a seed.

    Arm/reset are meant to run while no simulation is in flight; [hit] is
    safe to call from any domain. *)

type spec =
  | Always
  | Prob of { p : float; seed : int }
      (** Fire on calls where a pure hash of (seed, point, call number)
          lands below [p]: the same seed always fires on the same calls. *)
  | At_count of int  (** Fire on exactly the Nth call to the point, 1-based. *)

exception Injected of { point : string; count : int }

(** The injection points compiled into the engine:
    ["eval.member"] (indexed-evaluator aggregate batch),
    ["exec.group"] (per script group, per tick),
    ["fused.kernel"] (per kernel row batch of the fused evaluator),
    ["index.build"] (per-tick index construction),
    ["io.checkpoint.write"] (per section of a checkpoint being written),
    ["io.journal.append"] (per journal record appended),
    ["io.restore.read"] (per persisted file opened during recovery),
    ["pool.lane"] (per domain-pool lane, per fan-out),
    ["post.apply"] (the post-processing query). *)
val points : string list

(** [hit name] raises {!Injected} when [name] is armed and its spec fires;
    otherwise (and always when nothing is armed) it is a cheap no-op. *)
val hit : string -> unit

(** [arm ~point spec] arms (or re-arms, resetting counters) one point.
    Raises [Invalid_argument] when [point] is not in {!points}. *)
val arm : point:string -> spec -> unit

(** Disarm every point and forget all counters. *)
val reset : unit -> unit

(** Calls observed / faults raised by an armed point (0 when not armed). *)
val calls : string -> int

val fired : string -> int
val armed_points : unit -> string list

(** Parse the CLI syntax [POINT:SPEC] where SPEC is [always], [count=N] or
    [p=F[,seed=N]]. *)
val parse_arg : string -> (string * spec, string) result

val parse_spec : string -> (spec, string) result
val pp_spec : Format.formatter -> spec -> unit
