/* Monotonic clock for Timer: phase timings and telemetry span durations
   must survive wall-clock adjustments (NTP slew, manual resets), so they
   cannot be built on gettimeofday.  CLOCK_MONOTONIC where available,
   wall-clock fallback otherwise. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <stdint.h>
#include <time.h>
#include <sys/time.h>

static int64_t monotonic_ns(void)
{
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return (int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec;
#endif
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return (int64_t)tv.tv_sec * 1000000000 + (int64_t)tv.tv_usec * 1000;
  }
}

int64_t sgl_monotonic_ns_unboxed(value unit)
{
  (void)unit;
  return monotonic_ns();
}

CAMLprim value sgl_monotonic_ns(value unit)
{
  (void)unit;
  return caml_copy_int64(monotonic_ns());
}
