(* Deterministic pseudo-random number generation for the simulation engine.

   The paper's [Random(i)] primitive must return the same number for the same
   seed [i] within a single clock tick, but not necessarily across ticks
   (Section 4.1).  We realize this with a counter-mode splitmix64 generator:
   every draw is a pure function of (stream seed, tick, unit key, i), so the
   naive and indexed evaluators observe exactly the same random values and
   whole simulations are replayable from a single root seed. *)

type t = { seed : int64 }

let create seed = { seed = Int64.of_int seed }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_raw state counter =
  mix64 (Int64.add state (Int64.mul (Int64.of_int counter) golden_gamma))

(* Combine several integer coordinates into one 64-bit state.  Each component
   is mixed before xor so that nearby coordinates land far apart. *)
let combine t coords =
  let f acc c = mix64 (Int64.add (Int64.logxor acc (Int64.of_int c)) golden_gamma) in
  List.fold_left f t.seed coords

let bits t coords = next_raw (combine t coords) 1

(* A non-negative int in [0, bound).  Mask to 62 bits so the Int64 value
   always fits OCaml's native int without wrapping negative. *)
let int t ~bound coords =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let r = Int64.to_int (Int64.logand (bits t coords) 0x3FFFFFFFFFFFFFFFL) in
  r mod bound

(* A float uniform in [0, 1). *)
let float t coords =
  let r = Int64.to_float (Int64.shift_right_logical (bits t coords) 11) in
  r /. 9007199254740992.0 (* 2^53 *)

let float_range t ~lo ~hi coords =
  lo +. ((hi -. lo) *. float t coords)

(* The per-tick random function handed to scripts: [random tick key i]. *)
let script_random t ~tick ~key i = int t ~bound:1_000_000 [ 7; tick; key; i ]

(* Fisher-Yates shuffle of an array, deterministic in the coords. *)
let shuffle_in_place t coords arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t ~bound:(i + 1) (i :: coords) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
