(** Deterministic, replayable pseudo-random numbers.

    All draws are pure functions of the root seed and the supplied integer
    coordinates, implementing the paper's requirement that [Random(i)] is
    stable within a clock tick but varies across ticks. *)

type t

(** [create seed] makes a generator rooted at [seed]. *)
val create : int -> t

(** [bits t coords] returns 64 mixed bits determined by [coords]. *)
val bits : t -> int list -> int64

(** [int t ~bound coords] is uniform in [\[0, bound)].  Raises
    [Invalid_argument] if [bound <= 0]. *)
val int : t -> bound:int -> int list -> int

(** [float t coords] is uniform in [\[0, 1)]. *)
val float : t -> int list -> float

(** [float_range t ~lo ~hi coords] is uniform in [\[lo, hi)]. *)
val float_range : t -> lo:float -> hi:float -> int list -> float

(** [script_random t ~tick ~key i] is the SGL [Random(i)] primitive for the
    unit identified by [key] during [tick]: stable within the tick, fresh
    across ticks. *)
val script_random : t -> tick:int -> key:int -> int -> int

(** [shuffle_in_place t coords arr] permutes [arr] deterministically. *)
val shuffle_in_place : t -> int list -> 'a array -> unit
