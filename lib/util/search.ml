(* Binary searches over sorted float arrays.

   All the geometric indexes reduce range decomposition to lower/upper bound
   searches, so these live in one place and are tested once. *)

(* Index of the first element >= [x]; [Array.length arr] when none. *)
let lower_bound arr x =
  let rec go lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if arr.(mid) < x then go (mid + 1) hi else go lo mid
    end
  in
  go 0 (Array.length arr)

(* Index of the first element > [x]; [Array.length arr] when none. *)
let upper_bound arr x =
  let rec go lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if arr.(mid) <= x then go (mid + 1) hi else go lo mid
    end
  in
  go 0 (Array.length arr)

(* Count of elements in the closed interval [lo, hi]. *)
let count_in_range arr ~lo ~hi =
  let a = lower_bound arr lo and b = upper_bound arr hi in
  max 0 (b - a)

(* Generic lower bound on an abstract sorted sequence given by [get]/[len],
   with a custom key projection. *)
let lower_bound_by ~len ~get key x =
  let rec go lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if key (get mid) < x then go (mid + 1) hi else go lo mid
    end
  in
  go 0 len

let upper_bound_by ~len ~get key x =
  let rec go lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if key (get mid) <= x then go (mid + 1) hi else go lo mid
    end
  in
  go 0 len
