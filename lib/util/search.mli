(** Binary search over sorted data. *)

(** First index whose element is [>= x]; array length when none. *)
val lower_bound : float array -> float -> int

(** First index whose element is [> x]; array length when none. *)
val upper_bound : float array -> float -> int

(** Number of elements inside the closed interval [\[lo, hi\]]. *)
val count_in_range : float array -> lo:float -> hi:float -> int

val lower_bound_by : len:int -> get:(int -> 'a) -> ('a -> float) -> float -> int
val upper_bound_by : len:int -> get:(int -> 'a) -> ('a -> float) -> float -> int
