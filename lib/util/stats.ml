(* Streaming statistics: used by benchmark reporting and by the engine's
   per-phase timing accumulators. *)

(* Percentiles come from a fixed grid of logarithmic buckets (8 per
   octave, covering 2^-40 .. 2^40).  Because the grid is the same in
   every accumulator, merging is an exact count sum: percentiles of a
   merged accumulator are bit-identical no matter how the samples were
   partitioned — unlike sampling-based sketches.  Bucket 0 collects
   non-positive samples (durations are >= 0; an exact-zero tick simply
   reports the observed minimum). *)
let buckets_per_octave = 8
let octave_range = 40 (* 2^-40 .. 2^40 *)
let n_log_buckets = 2 * octave_range * buckets_per_octave (* 640 *)
let n_buckets = n_log_buckets + 1 (* + the x <= 0 bucket *)

let bucket_of x =
  if x <= 0. || Float.is_nan x then 0
  else begin
    let raw =
      int_of_float (Float.floor (float_of_int buckets_per_octave *. Float.log2 x))
    in
    let shifted = raw + (octave_range * buckets_per_octave) in
    1 + max 0 (min (n_log_buckets - 1) shifted)
  end

(* Geometric midpoint of bucket [i >= 1]; callers clamp to [min,max]. *)
let representative i =
  let lo = i - 1 - (octave_range * buckets_per_octave) in
  Float.exp2 ((float_of_int lo +. 0.5) /. float_of_int buckets_per_octave)

type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float; (* sum of squared deviations (Welford) *)
  mutable min : float;
  mutable max : float;
  buckets : int array; (* log-bucketed counts for percentiles *)
}

let create () =
  {
    n = 0;
    mean = 0.;
    m2 = 0.;
    min = infinity;
    max = neg_infinity;
    buckets = Array.make n_buckets 0;
  }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x;
  let b = bucket_of x in
  t.buckets.(b) <- t.buckets.(b) + 1

let count t = t.n
let mean t = if t.n = 0 then nan else t.mean
let total t = t.mean *. float_of_int t.n
let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min_value t = if t.n = 0 then nan else t.min
let max_value t = if t.n = 0 then nan else t.max

let reset t =
  t.n <- 0;
  t.mean <- 0.;
  t.m2 <- 0.;
  t.min <- infinity;
  t.max <- neg_infinity;
  Array.fill t.buckets 0 n_buckets 0

(* Nearest-rank percentile over the bucket counts.  The answer is the
   clamped geometric midpoint of the bucket holding the target rank, so
   the relative error is bounded by the bucket width (2^(1/8) ~ 9%) and
   the result depends only on the merged counts — never on merge order. *)
let percentile t q =
  if t.n = 0 then nan
  else if q <= 0. then t.min
  else if q >= 1. then t.max
  else begin
    let target = Float.max 1. (Float.round (q *. float_of_int t.n)) in
    let rank = int_of_float target in
    let idx = ref 0 in
    let cum = ref 0 in
    (try
       for i = 0 to n_buckets - 1 do
         cum := !cum + t.buckets.(i);
         if !cum >= rank then begin
           idx := i;
           raise Exit
         end
       done;
       idx := n_buckets - 1
     with Exit -> ());
    if !idx = 0 then t.min
    else Float.min t.max (Float.max t.min (representative !idx))
  end

(* Chan et al.'s parallel Welford combination: merging per-lane
   accumulators gives the same mean/M2 as folding every sample into one
   (up to float rounding), independent of how samples were partitioned.
   The qcheck merge-order-invariance law pins that. *)
let merge ~(into : t) (src : t) : unit =
  if src.n > 0 then begin
    if into.n = 0 then begin
      into.n <- src.n;
      into.mean <- src.mean;
      into.m2 <- src.m2;
      into.min <- src.min;
      into.max <- src.max
    end
    else begin
      let n = into.n + src.n in
      let delta = src.mean -. into.mean in
      let fn = float_of_int n in
      into.mean <- into.mean +. (delta *. float_of_int src.n /. fn);
      into.m2 <-
        into.m2 +. src.m2 +. (delta *. delta *. float_of_int into.n *. float_of_int src.n /. fn);
      into.n <- n;
      if src.min < into.min then into.min <- src.min;
      if src.max > into.max then into.max <- src.max
    end;
    for i = 0 to n_buckets - 1 do
      into.buckets.(i) <- into.buckets.(i) + src.buckets.(i)
    done
  end

let copy t =
  { n = t.n; mean = t.mean; m2 = t.m2; min = t.min; max = t.max; buckets = Array.copy t.buckets }

(* One-shot helpers over arrays; population variance to match the battle
   scripts' "standard deviation of all troop positions" aggregate. *)
let mean_of arr =
  let n = Array.length arr in
  if n = 0 then nan else Array.fold_left ( +. ) 0. arr /. float_of_int n

let population_variance_of arr =
  let n = Array.length arr in
  if n = 0 then nan
  else begin
    let m = mean_of arr in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. arr in
    acc /. float_of_int n
  end

let population_stddev_of arr = sqrt (population_variance_of arr)
