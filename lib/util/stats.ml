(* Streaming statistics: used by benchmark reporting and by the engine's
   per-phase timing accumulators. *)

type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float; (* sum of squared deviations (Welford) *)
  mutable min : float;
  mutable max : float;
}

let create () = { n = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = t.n
let mean t = if t.n = 0 then nan else t.mean
let total t = t.mean *. float_of_int t.n
let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min_value t = if t.n = 0 then nan else t.min
let max_value t = if t.n = 0 then nan else t.max

let reset t =
  t.n <- 0;
  t.mean <- 0.;
  t.m2 <- 0.;
  t.min <- infinity;
  t.max <- neg_infinity

(* Chan et al.'s parallel Welford combination: merging per-lane
   accumulators gives the same mean/M2 as folding every sample into one
   (up to float rounding), independent of how samples were partitioned.
   The qcheck merge-order-invariance law pins that. *)
let merge ~(into : t) (src : t) : unit =
  if src.n > 0 then begin
    if into.n = 0 then begin
      into.n <- src.n;
      into.mean <- src.mean;
      into.m2 <- src.m2;
      into.min <- src.min;
      into.max <- src.max
    end
    else begin
      let n = into.n + src.n in
      let delta = src.mean -. into.mean in
      let fn = float_of_int n in
      into.mean <- into.mean +. (delta *. float_of_int src.n /. fn);
      into.m2 <-
        into.m2 +. src.m2 +. (delta *. delta *. float_of_int into.n *. float_of_int src.n /. fn);
      into.n <- n;
      if src.min < into.min then into.min <- src.min;
      if src.max > into.max then into.max <- src.max
    end
  end

let copy t = { n = t.n; mean = t.mean; m2 = t.m2; min = t.min; max = t.max }

(* One-shot helpers over arrays; population variance to match the battle
   scripts' "standard deviation of all troop positions" aggregate. *)
let mean_of arr =
  let n = Array.length arr in
  if n = 0 then nan else Array.fold_left ( +. ) 0. arr /. float_of_int n

let population_variance_of arr =
  let n = Array.length arr in
  if n = 0 then nan
  else begin
    let m = mean_of arr in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. arr in
    acc /. float_of_int n
  end

let population_stddev_of arr = sqrt (population_variance_of arr)
