(** Streaming and one-shot statistics. *)

type t

val create : unit -> t

(** [add t x] folds the observation [x] into the accumulator (Welford). *)
val add : t -> float -> unit

val count : t -> int
val mean : t -> float
val total : t -> float

(** Sample variance (n-1 denominator); 0 when fewer than two samples. *)
val variance : t -> float

val stddev : t -> float
val min_value : t -> float
val max_value : t -> float

(** [percentile t q] estimates the [q]-quantile ([0. <= q <= 1.]) from a
    fixed grid of logarithmic buckets (8 per octave): the clamped
    geometric midpoint of the bucket containing the nearest rank, so the
    relative error is bounded by the bucket width (about 9%).  Because
    the grid is fixed, merged accumulators give bit-identical
    percentiles regardless of how samples were partitioned.  [nan] when
    empty; [q <= 0.]/[q >= 1.] return the exact min/max. *)
val percentile : t -> float -> float

val reset : t -> unit

(** [merge ~into src] folds [src]'s samples into [into] as if each had
    been [add]ed individually (Chan et al.'s parallel Welford update, so
    the result is independent of how samples were partitioned across
    accumulators, up to float rounding).  [src] is unchanged.  Used to
    aggregate per-lane telemetry histograms. *)
val merge : into:t -> t -> unit

val copy : t -> t

val mean_of : float array -> float
val population_variance_of : float array -> float
val population_stddev_of : float array -> float
