(** Streaming and one-shot statistics. *)

type t

val create : unit -> t

(** [add t x] folds the observation [x] into the accumulator (Welford). *)
val add : t -> float -> unit

val count : t -> int
val mean : t -> float
val total : t -> float

(** Sample variance (n-1 denominator); 0 when fewer than two samples. *)
val variance : t -> float

val stddev : t -> float
val min_value : t -> float
val max_value : t -> float
val reset : t -> unit

(** [merge ~into src] folds [src]'s samples into [into] as if each had
    been [add]ed individually (Chan et al.'s parallel Welford update, so
    the result is independent of how samples were partitioned across
    accumulators, up to float rounding).  [src] is unchanged.  Used to
    aggregate per-lane telemetry histograms. *)
val merge : into:t -> t -> unit

val copy : t -> t

val mean_of : float array -> float
val population_variance_of : float array -> float
val population_stddev_of : float array -> float
