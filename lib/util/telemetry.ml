(* Unified telemetry: a metrics registry and a span tracer.

   The engine's performance-critical subsystems (parallel decision phase,
   transactional ticks, incremental index cache) record what they do
   through this module, the way a query processor keeps runtime statistics
   behind EXPLAIN ANALYZE:

   - a *registry* of named metrics — atomic counters (worker lanes record
     without locks), gauges, and histograms backed by sharded Welford
     accumulators ({!Stats}) merged on read;
   - a *span tracer* that buffers (name, thread, start, duration) tuples
     and dumps them in Chrome trace-event format, so a tick can be opened
     in a trace viewer: tick > phase > script group > operator, with one
     timeline row per domain.

   Both are inert by default.  The disabled fast path is a single atomic
   load (the {!Fault_inject} pattern): handles are created once and held,
   and a record call on a disabled registry or tracer touches nothing
   else.  Nothing here feeds back into simulation state, so unit states
   are bit-identical with telemetry on, off, or under EXPLAIN — the
   differential suite pins that.

   Registries are first-class: the global {!default} registry carries the
   process-wide hot-path metrics (eval.*, exec.*, pool.*, combine.*, and
   the per-aggregate agg.* counters behind EXPLAIN), while a simulation
   owns a private always-on registry for its report counters, so
   concurrent simulations never share state. *)

(* ------------------------------------------------------------------ *)
(* Metric cells.  Every handle carries the owning registry's enabled
   flag; a disabled registry's metrics cost one atomic load to skip. *)

type counter = { c_name : string; c_cell : int Atomic.t; c_on : bool Atomic.t }

type gauge = { g_name : string; g_cell : float Atomic.t; g_on : bool Atomic.t }

(* Histograms shard by domain id so concurrent lanes hit distinct
   mutexes; [snapshot] merges the shards with [Stats.merge], which is
   partition-independent by construction. *)
let histogram_shards = 8

type histogram = {
  h_name : string;
  h_cells : (Mutex.t * Stats.t) array;
  h_on : bool Atomic.t;
}

type histogram_snapshot = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  total : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

module Counter = struct
  let name (c : counter) = c.c_name
  let incr (c : counter) : unit = if Atomic.get c.c_on then Atomic.incr c.c_cell

  let add (c : counter) (n : int) : unit =
    if Atomic.get c.c_on then ignore (Atomic.fetch_and_add c.c_cell n)

  (* Unconditional write, for counters that mirror engine state the report
     layer owns (rollback restores, retirement folds). *)
  let set (c : counter) (n : int) : unit = Atomic.set c.c_cell n
  let value (c : counter) : int = Atomic.get c.c_cell
end

module Gauge = struct
  let name (g : gauge) = g.g_name
  let set (g : gauge) (v : float) : unit = if Atomic.get g.g_on then Atomic.set g.g_cell v
  let value (g : gauge) : float = Atomic.get g.g_cell
end

module Histogram = struct
  let name (h : histogram) = h.h_name

  let observe (h : histogram) (v : float) : unit =
    if Atomic.get h.h_on then begin
      let lock, cell = h.h_cells.((Domain.self () :> int) mod histogram_shards) in
      Mutex.lock lock;
      Stats.add cell v;
      Mutex.unlock lock
    end

  let snapshot (h : histogram) : histogram_snapshot =
    let acc = Stats.create () in
    Array.iter
      (fun (lock, cell) ->
        Mutex.lock lock;
        let frozen = Stats.copy cell in
        Mutex.unlock lock;
        Stats.merge ~into:acc frozen)
      h.h_cells;
    let n = Stats.count acc in
    {
      count = n;
      mean = (if n = 0 then 0. else Stats.mean acc);
      stddev = Stats.stddev acc;
      min = (if n = 0 then 0. else Stats.min_value acc);
      max = (if n = 0 then 0. else Stats.max_value acc);
      total = Stats.total acc;
      p50 = (if n = 0 then 0. else Stats.percentile acc 0.50);
      p90 = (if n = 0 then 0. else Stats.percentile acc 0.90);
      p99 = (if n = 0 then 0. else Stats.percentile acc 0.99);
    }
end

(* ------------------------------------------------------------------ *)
(* JSON fragments (hand-rolled: the toolchain ships no JSON library). *)

let json_escape (s : string) : string =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_string (s : string) : string = "\"" ^ json_escape s ^ "\""

let json_float (f : float) : string =
  if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

(* ------------------------------------------------------------------ *)
(* The registry *)

module Registry = struct
  type t = {
    on : bool Atomic.t;
    lock : Mutex.t; (* guards registration maps, not metric cells *)
    counters : (string, counter) Hashtbl.t;
    gauges : (string, gauge) Hashtbl.t;
    histograms : (string, histogram) Hashtbl.t;
  }

  let create ?(enabled = false) () : t =
    {
      on = Atomic.make enabled;
      lock = Mutex.create ();
      counters = Hashtbl.create 32;
      gauges = Hashtbl.create 8;
      histograms = Hashtbl.create 8;
    }

  let enabled t = Atomic.get t.on
  let set_enabled t v = Atomic.set t.on v

  (* Registration is idempotent by name: the first call creates the cell,
     later calls return the same handle, so call sites may register
     eagerly at construction time and hold the handle for the run. *)
  let intern (type a) (table : (string, a) Hashtbl.t) (lock : Mutex.t) (name : string)
      (make : unit -> a) : a =
    Mutex.lock lock;
    let v =
      match Hashtbl.find_opt table name with
      | Some v -> v
      | None ->
        let v = make () in
        Hashtbl.add table name v;
        v
    in
    Mutex.unlock lock;
    v

  let counter (t : t) (name : string) : counter =
    intern t.counters t.lock name (fun () ->
        { c_name = name; c_cell = Atomic.make 0; c_on = t.on })

  let gauge (t : t) (name : string) : gauge =
    intern t.gauges t.lock name (fun () ->
        { g_name = name; g_cell = Atomic.make 0.; g_on = t.on })

  let histogram (t : t) (name : string) : histogram =
    intern t.histograms t.lock name (fun () ->
        {
          h_name = name;
          h_cells = Array.init histogram_shards (fun _ -> (Mutex.create (), Stats.create ()));
          h_on = t.on;
        })

  (* Zero every metric, keeping registrations (handles stay valid). *)
  let reset (t : t) : unit =
    Mutex.lock t.lock;
    Hashtbl.iter (fun _ c -> Atomic.set c.c_cell 0) t.counters;
    Hashtbl.iter (fun _ g -> Atomic.set g.g_cell 0.) t.gauges;
    Hashtbl.iter
      (fun _ h ->
        Array.iter
          (fun (lock, cell) ->
            Mutex.lock lock;
            Stats.reset cell;
            Mutex.unlock lock)
          h.h_cells)
      t.histograms;
    Mutex.unlock t.lock

  let sorted_bindings (type a) (table : (string, a) Hashtbl.t) (lock : Mutex.t) :
      (string * a) list =
    Mutex.lock lock;
    let out = Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [] in
    Mutex.unlock lock;
    List.sort (fun (a, _) (b, _) -> String.compare a b) out

  let counters (t : t) : (string * int) list =
    List.map (fun (k, c) -> (k, Counter.value c)) (sorted_bindings t.counters t.lock)

  let gauges (t : t) : (string * float) list =
    List.map (fun (k, g) -> (k, Gauge.value g)) (sorted_bindings t.gauges t.lock)

  let histograms (t : t) : (string * histogram_snapshot) list =
    List.map (fun (k, h) -> (k, Histogram.snapshot h)) (sorted_bindings t.histograms t.lock)

  (* The --metrics document: every metric of this registry, sorted by
     name so diffs are stable. *)
  let to_json (t : t) : string =
    let b = Buffer.create 1024 in
    let fields kind rows render =
      Buffer.add_string b (Printf.sprintf "  %s: {" (json_string kind));
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b "\n    ";
          Buffer.add_string b (json_string k);
          Buffer.add_string b ": ";
          Buffer.add_string b (render v))
        rows;
      if rows <> [] then Buffer.add_string b "\n  ";
      Buffer.add_string b "}"
    in
    Buffer.add_string b "{\n";
    fields "counters" (counters t) string_of_int;
    Buffer.add_string b ",\n";
    fields "gauges" (gauges t) json_float;
    Buffer.add_string b ",\n";
    fields "histograms" (histograms t) (fun (s : histogram_snapshot) ->
        Printf.sprintf
          "{\"count\": %d, \"mean\": %s, \"stddev\": %s, \"min\": %s, \"max\": %s, \"total\": %s, \"p50\": %s, \"p90\": %s, \"p99\": %s}"
          s.count (json_float s.mean) (json_float s.stddev) (json_float s.min) (json_float s.max)
          (json_float s.total) (json_float s.p50) (json_float s.p90) (json_float s.p99));
    Buffer.add_string b "\n}\n";
    Buffer.contents b

  let write_json (t : t) ~(path : string) : unit =
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_json t))
end

(* The process-wide ambient registry: hot-path metrics from the
   evaluator, executor, pool and combiner land here.  Disabled until a
   tool (--metrics, --explain, the bench telemetry section) opts in. *)
let default : Registry.t = Registry.create ()

let set_enabled v = Registry.set_enabled default v
let enabled () = Registry.enabled default
let counter name = Registry.counter default name
let gauge name = Registry.gauge default name
let histogram name = Registry.histogram default name
let reset () = Registry.reset default

(* ------------------------------------------------------------------ *)
(* The span tracer *)

module Span = struct
  type event = {
    ev_name : string;
    ev_cat : string;
    ev_tid : int;
    ev_ts_ns : int64; (* relative to trace start *)
    ev_dur_ns : int64; (* -1 for instant events *)
  }

  (* One process-wide tracer.  Spans are pushed from worker domains, so
     the buffer is mutex-protected; the cost only exists while tracing
     (the disabled path is the atomic load in [with_]). *)
  let on : bool Atomic.t = Atomic.make false
  let lock = Mutex.create ()
  let events : event list ref = ref [] (* newest first *)
  let n_events = ref 0
  let t0 : int64 ref = ref 0L

  let enabled () = Atomic.get on

  let start () =
    Mutex.lock lock;
    events := [];
    n_events := 0;
    t0 := Timer.now_ns ();
    Mutex.unlock lock;
    Atomic.set on true

  let stop () = Atomic.set on false

  let count () =
    Mutex.lock lock;
    let n = !n_events in
    Mutex.unlock lock;
    n

  let push (ev : event) : unit =
    Mutex.lock lock;
    events := ev :: !events;
    incr n_events;
    Mutex.unlock lock

  let record ~(cat : string) ~(name : string) ~(start_ns : int64) ~(end_ns : int64) : unit =
    push
      {
        ev_name = name;
        ev_cat = cat;
        ev_tid = (Domain.self () :> int);
        ev_ts_ns = Int64.sub start_ns !t0;
        ev_dur_ns = Int64.sub end_ns start_ns;
      }

  (* [with_ name f] runs [f] inside a span.  The span is recorded even
     when [f] raises: a faulting phase still shows up in the trace with
     the duration it burned before failing. *)
  let with_ ?(cat = "sgl") (name : string) (f : unit -> 'a) : 'a =
    if not (Atomic.get on) then f ()
    else begin
      let start_ns = Timer.now_ns () in
      match f () with
      | result ->
        record ~cat ~name ~start_ns ~end_ns:(Timer.now_ns ());
        result
      | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        record ~cat ~name ~start_ns ~end_ns:(Timer.now_ns ());
        Printexc.raise_with_backtrace e bt
    end

  (* A zero-duration marker (Chrome "instant" event): faults, rollbacks,
     demotions. *)
  let instant ?(cat = "sgl") (name : string) : unit =
    if Atomic.get on then begin
      let ts = Timer.now_ns () in
      push
        {
          ev_name = name;
          ev_cat = cat;
          ev_tid = (Domain.self () :> int);
          ev_ts_ns = Int64.sub ts !t0;
          ev_dur_ns = -1L;
        }
    end

  let us_of_ns (ns : int64) : string = Printf.sprintf "%.3f" (Int64.to_float ns /. 1e3)

  let event_json (ev : event) : string =
    let common =
      Printf.sprintf "\"name\": %s, \"cat\": %s, \"pid\": 0, \"tid\": %d, \"ts\": %s"
        (json_string ev.ev_name) (json_string ev.ev_cat) ev.ev_tid (us_of_ns ev.ev_ts_ns)
    in
    if Int64.compare ev.ev_dur_ns 0L < 0 then
      Printf.sprintf "{%s, \"ph\": \"i\", \"s\": \"t\"}" common
    else Printf.sprintf "{%s, \"ph\": \"X\", \"dur\": %s}" common (us_of_ns ev.ev_dur_ns)

  (* Chrome trace-event format: a JSON array of events, oldest first.
     Load it at chrome://tracing or https://ui.perfetto.dev. *)
  let to_json () : string =
    Mutex.lock lock;
    let evs = List.rev !events in
    Mutex.unlock lock;
    let b = Buffer.create 4096 in
    Buffer.add_string b "[\n";
    List.iteri
      (fun i ev ->
        if i > 0 then Buffer.add_string b ",\n";
        Buffer.add_string b "  ";
        Buffer.add_string b (event_json ev))
      evs;
    Buffer.add_string b "\n]\n";
    Buffer.contents b

  let write ~(path : string) : unit =
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_json ()))
end
