(** Unified telemetry: a metrics registry and a Chrome-trace span tracer.

    Metrics and spans are inert until enabled; the disabled fast path is a
    single atomic load per call site (the {!Fault_inject} pattern).
    Counters are atomics, so domain-pool lanes record without locks;
    histograms shard per domain and merge through {!Stats.merge} on read.
    Telemetry never feeds back into simulation state: unit states are
    bit-identical with telemetry on, off, or under EXPLAIN.

    The metric name catalogue lives in docs/INTERNALS.md ("Telemetry and
    EXPLAIN"). *)

type counter
type gauge
type histogram

type histogram_snapshot = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  total : float;
  p50 : float;  (** median, from {!Stats.percentile}'s merge-exact log buckets *)
  p90 : float;
  p99 : float;
}

module Counter : sig
  val name : counter -> string

  (** One atomic load when the owning registry is disabled. *)
  val incr : counter -> unit

  val add : counter -> int -> unit

  (** Unconditional write (ignores the enabled flag) — for counters that
      mirror engine-owned state, e.g. restoring a snapshot on rollback. *)
  val set : counter -> int -> unit

  val value : counter -> int
end

module Gauge : sig
  val name : gauge -> string
  val set : gauge -> float -> unit
  val value : gauge -> float
end

module Histogram : sig
  val name : histogram -> string

  (** Folds into the shard owned by the calling domain (per-shard mutex,
      so lanes rarely contend). *)
  val observe : histogram -> float -> unit

  (** Merge every shard ({!Stats.merge}) and summarize. *)
  val snapshot : histogram -> histogram_snapshot
end

(** {1 JSON fragments}

    Hand-rolled helpers (the toolchain ships no JSON library), shared
    with the observability layer's endpoint bodies. *)

val json_escape : string -> string

(** [json_escape] wrapped in quotes. *)
val json_string : string -> string

(** ["%.6g"]; non-finite floats render as [null]. *)
val json_float : float -> string

module Registry : sig
  type t

  (** [create ()] makes a private registry, disabled unless [enabled]. *)
  val create : ?enabled:bool -> unit -> t

  val enabled : t -> bool
  val set_enabled : t -> bool -> unit

  (** Registration is idempotent by name: later calls return the handle
      the first created.  Register eagerly, hold the handle. *)
  val counter : t -> string -> counter

  val gauge : t -> string -> gauge
  val histogram : t -> string -> histogram

  (** Zero every metric; registrations (and held handles) stay valid. *)
  val reset : t -> unit

  (** Current values, sorted by metric name. *)
  val counters : t -> (string * int) list

  val gauges : t -> (string * float) list
  val histograms : t -> (string * histogram_snapshot) list

  (** The --metrics document: {"counters": {...}, "gauges": {...},
      "histograms": {name: {count, mean, stddev, min, max, total}}}. *)
  val to_json : t -> string

  val write_json : t -> path:string -> unit
end

(** The process-wide ambient registry: the evaluator, executor, pool and
    combiner record here.  Disabled by default. *)
val default : Registry.t

(** Enable/disable {!default}. *)
val set_enabled : bool -> unit

val enabled : unit -> bool

(** [counter name] is [Registry.counter default name]; likewise the rest. *)
val counter : string -> counter

val gauge : string -> gauge
val histogram : string -> histogram

(** Zero every metric of {!default}. *)
val reset : unit -> unit

(** The span tracer: one process-wide buffer of (name, category, domain,
    start, duration) tuples, dumped in Chrome trace-event format (load at
    chrome://tracing or ui.perfetto.dev).  Each event's [tid] is the
    recording domain's id, so the parallel decision phase renders one
    timeline row per lane. *)
module Span : sig
  (** Clear the buffer, stamp the time origin, enable recording. *)
  val start : unit -> unit

  val stop : unit -> unit
  val enabled : unit -> bool

  (** Events recorded since [start]. *)
  val count : unit -> int

  (** [with_ name f] runs [f] inside a complete span ([ph:"X"]).  When
      tracing is off this is [f ()] after one atomic load.  The span is
      recorded even when [f] raises (then re-raises). *)
  val with_ : ?cat:string -> string -> (unit -> 'a) -> 'a

  (** A zero-duration marker ([ph:"i"]): faults, rollbacks, demotions. *)
  val instant : ?cat:string -> string -> unit

  val to_json : unit -> string
  val write : path:string -> unit
end
