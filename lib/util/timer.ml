(* Monotonic phase timing for the simulation engine and bench harness.

   All durations — engine phase splits, telemetry span durations, bench
   measurements — come from CLOCK_MONOTONIC (via the C stub), so they are
   immune to wall-clock adjustments.  The absolute value of [now] is
   meaningless across processes; only differences are. *)

external monotonic_ns : unit -> (int64[@unboxed])
  = "sgl_monotonic_ns" "sgl_monotonic_ns_unboxed"
[@@noalloc]

let now_ns () : int64 = monotonic_ns ()
let now () = Int64.to_float (monotonic_ns ()) /. 1e9

type t = { mutable elapsed : float; mutable started : float option }

let create () = { elapsed = 0.; started = None }

let start t =
  match t.started with
  | Some _ -> invalid_arg "Timer.start: already running"
  | None -> t.started <- Some (now ())

let stop t =
  match t.started with
  | None -> invalid_arg "Timer.stop: not running"
  | Some s ->
    t.elapsed <- t.elapsed +. (now () -. s);
    t.started <- None

let elapsed t =
  match t.started with
  | None -> t.elapsed
  | Some s -> t.elapsed +. (now () -. s)

let reset t =
  t.elapsed <- 0.;
  t.started <- None

(* [timed f] runs [f ()] and returns its result with the seconds it took. *)
let timed f =
  let t0 = now () in
  let result = f () in
  (result, now () -. t0)

(* Accumulate the run time of [f] into [t] even if [f] raises. *)
let record t f =
  start t;
  match f () with
  | result ->
    stop t;
    result
  | exception e ->
    stop t;
    raise e
