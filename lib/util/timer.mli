(** Wall-clock timers that accumulate across start/stop cycles. *)

type t

val create : unit -> t

(** Raises [Invalid_argument] if the timer is already running. *)
val start : t -> unit

(** Raises [Invalid_argument] if the timer is not running. *)
val stop : t -> unit

(** Total accumulated seconds, including the in-flight interval if running. *)
val elapsed : t -> float

val reset : t -> unit

(** [timed f] is [(f (), seconds_taken)]. *)
val timed : (unit -> 'a) -> 'a * float

(** [record t f] accumulates the run time of [f] into [t]. *)
val record : t -> (unit -> 'a) -> 'a

(** Current wall-clock time in seconds. *)
val now : unit -> float
