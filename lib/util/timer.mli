(** Monotonic timers that accumulate across start/stop cycles. *)

type t

val create : unit -> t

(** Raises [Invalid_argument] if the timer is already running. *)
val start : t -> unit

(** Raises [Invalid_argument] if the timer is not running. *)
val stop : t -> unit

(** Total accumulated seconds, including the in-flight interval if running. *)
val elapsed : t -> float

val reset : t -> unit

(** [timed f] is [(f (), seconds_taken)]. *)
val timed : (unit -> 'a) -> 'a * float

(** [record t f] accumulates the run time of [f] into [t]. *)
val record : t -> (unit -> 'a) -> 'a

(** Current monotonic time in seconds.  Only differences are meaningful:
    the epoch is arbitrary (typically boot time), but the value never jumps
    when the wall clock is adjusted. *)
val now : unit -> float

(** Monotonic nanoseconds; allocation-free.  The raw clock behind {!now},
    for callers (the telemetry span tracer) that cannot afford float
    conversion on the hot path. *)
val now_ns : unit -> int64
