(* A growable array (OCaml 5.1 predates Stdlib.Dynarray).

   Used wherever the engine accumulates an unknown number of rows: effect
   relations, index build buffers, event queues. *)

type 'a t = {
  mutable data : 'a array;
  mutable size : int;
  dummy : 'a; (* fills unused slots so we never hold stale references *)
}

let create ?(capacity = 16) dummy =
  let capacity = max capacity 1 in
  { data = Array.make capacity dummy; size = 0; dummy }

let length t = t.size

let ensure_capacity t n =
  if n > Array.length t.data then begin
    let cap = ref (Array.length t.data) in
    while !cap < n do
      cap := !cap * 2
    done;
    let data = Array.make !cap t.dummy in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let push t x =
  ensure_capacity t (t.size + 1);
  t.data.(t.size) <- x;
  t.size <- t.size + 1

let get t i =
  if i < 0 || i >= t.size then invalid_arg "Varray.get: index out of bounds";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.size then invalid_arg "Varray.set: index out of bounds";
  t.data.(i) <- x

let pop t =
  if t.size = 0 then invalid_arg "Varray.pop: empty";
  t.size <- t.size - 1;
  let x = t.data.(t.size) in
  t.data.(t.size) <- t.dummy;
  x

let clear t =
  Array.fill t.data 0 t.size t.dummy;
  t.size <- 0

let iter f t =
  for i = 0 to t.size - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.size - 1 do
    f i t.data.(i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec loop i = i < t.size && (p t.data.(i) || loop (i + 1)) in
  loop 0

let to_array t = Array.sub t.data 0 t.size
let to_list t = Array.to_list (to_array t)

let of_array dummy arr =
  let t = create ~capacity:(max 1 (Array.length arr)) dummy in
  Array.iter (fun x -> push t x) arr;
  t

(* Remove the element at [i] by swapping in the last element: O(1), does not
   preserve order.  Used by the movement phase's occupancy lists. *)
let swap_remove t i =
  if i < 0 || i >= t.size then invalid_arg "Varray.swap_remove: index out of bounds";
  t.size <- t.size - 1;
  let last = t.data.(t.size) in
  t.data.(t.size) <- t.dummy;
  if i < t.size then t.data.(i) <- last
