(** Growable arrays with amortized O(1) push. *)

type 'a t

(** [create ?capacity dummy] makes an empty array.  [dummy] fills unused
    slots; it is never observable through the API. *)
val create : ?capacity:int -> 'a -> 'a t

val length : 'a t -> int
val push : 'a t -> 'a -> unit

(** [get t i] and [set t i x] raise [Invalid_argument] when out of bounds. *)
val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit

(** Remove and return the last element.  Raises [Invalid_argument] if empty. *)
val pop : 'a t -> 'a

val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val of_array : 'a -> 'a array -> 'a t

(** O(1) unordered removal: the last element replaces slot [i]. *)
val swap_remove : 'a t -> int -> unit
