(* Two-dimensional vectors: unit positions, movement vectors, centroids. *)

type t = { x : float; y : float }

let make x y = { x; y }
let zero = { x = 0.; y = 0. }
let add a b = { x = a.x +. b.x; y = a.y +. b.y }
let sub a b = { x = a.x -. b.x; y = a.y -. b.y }
let scale k a = { x = k *. a.x; y = k *. a.y }
let dot a b = (a.x *. b.x) +. (a.y *. b.y)
let norm2 a = dot a a
let norm a = sqrt (norm2 a)
let dist2 a b = norm2 (sub a b)
let dist a b = sqrt (dist2 a b)

let normalize a =
  let n = norm a in
  if n = 0. then zero else scale (1. /. n) a

(* Clamp the length of [a] to at most [len]; used to cap per-tick movement. *)
let clamp_norm len a =
  let n = norm a in
  if n <= len || n = 0. then a else scale (len /. n) a

let lerp t a b = add (scale (1. -. t) a) (scale t b)
let equal a b = a.x = b.x && a.y = b.y
let pp ppf a = Fmt.pf ppf "(%g, %g)" a.x a.y
let to_string a = Fmt.str "%a" pp a
