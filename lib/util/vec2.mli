(** Two-dimensional float vectors. *)

type t = { x : float; y : float }

val make : float -> float -> t
val zero : t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val dot : t -> t -> float

(** Squared Euclidean norm. *)
val norm2 : t -> float

val norm : t -> float
val dist2 : t -> t -> float
val dist : t -> t -> float

(** Unit-length vector in the same direction; [zero] maps to [zero]. *)
val normalize : t -> t

(** [clamp_norm len a] shortens [a] to length [len] if it is longer. *)
val clamp_norm : float -> t -> t

val lerp : float -> t -> t -> t
val equal : t -> t -> bool
val pp : t Fmt.t
val to_string : t -> string
