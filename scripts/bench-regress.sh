#!/bin/sh
# Bench regression gate: re-run the sections held by the newest archived
# BENCH_*.json (or an explicitly named baseline) and fail when a pinned
# metric regresses by more than the threshold against the archive.
#
# Pinned metrics, per row (rows are matched on exact section + config):
#   - ticks_per_s        fails when fresh < baseline * (1 - threshold)
#   - phases.decision_s  fails when fresh > baseline * (1 + threshold)
#
# The threshold is deliberately generous (30%): shared runners are noisy,
# and this gate exists to catch accidental algorithmic regressions — an
# index rebuilt per probe, a lost fast path — not single-digit drift.
# Rows listed in scripts/bench-regress-skip.txt are excluded; keep that
# list explicit so every exclusion is visible in review.
#
# Usage: scripts/bench-regress.sh [baseline.json] [threshold]
set -eu

cd "$(dirname "$0")/.."

BASELINE="${1:-}"
THRESHOLD="${2:-0.30}"
SKIP_FILE="scripts/bench-regress-skip.txt"
FRESH="fresh-bench.json"

fail() {
  echo "bench-regress: FAIL: $*" >&2
  exit 1
}

if [ -z "$BASELINE" ]; then
  BASELINE="$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -n 1)"
  [ -n "$BASELINE" ] || fail "no archived BENCH_*.json to compare against"
fi
[ -f "$BASELINE" ] || fail "baseline $BASELINE not found"

SECTIONS="$(python3 -c "
import json, sys
rows = json.load(open('$BASELINE'))['rows']
seen = []
for r in rows:
    if r['section'] not in seen:
        seen.append(r['section'])
print(' '.join(seen))
")"
[ -n "$SECTIONS" ] || fail "baseline $BASELINE holds no rows"

echo "bench-regress: baseline $BASELINE, sections: $SECTIONS, threshold $THRESHOLD"
dune build bench/main.exe
_build/default/bench/main.exe $SECTIONS --json "$FRESH" > bench-regress.out 2>&1 \
  || { cat bench-regress.out >&2; fail "bench run failed"; }

python3 - "$BASELINE" "$FRESH" "$THRESHOLD" "$SKIP_FILE" <<'EOF' || exit 1
import json, sys

baseline_path, fresh_path, threshold, skip_path = sys.argv[1:5]
threshold = float(threshold)

def rows(path):
    return json.load(open(path))["rows"]

def key(row):
    return (row["section"], tuple(sorted(row["config"].items())))

def label(row):
    cfg = ", ".join("%s=%s" % kv for kv in sorted(row["config"].items()))
    return "%s[%s]" % (row["section"], cfg)

# skip file: one entry per line, `section` or `section key=value ...`;
# an entry skips rows of that section whose config matches every pair
skips = []
try:
    for line in open(skip_path):
        line = line.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        pairs = dict(p.split("=", 1) for p in parts[1:])
        skips.append((parts[0], pairs))
except FileNotFoundError:
    pass

def skipped(row):
    for section, pairs in skips:
        if row["section"] == section and all(
            row["config"].get(k) == v for k, v in pairs.items()
        ):
            return True
    return False

fresh = {key(r): r for r in rows(fresh_path)}
failures, compared, skipped_n = [], 0, 0

for base in rows(baseline_path):
    if skipped(base):
        skipped_n += 1
        continue
    got = fresh.get(key(base))
    if got is None:
        failures.append("%s: row missing from the fresh run" % label(base))
        continue
    compared += 1
    b, f = base.get("ticks_per_s", 0.0), got.get("ticks_per_s", 0.0)
    if b > 0 and f < b * (1.0 - threshold):
        failures.append(
            "%s: ticks_per_s %.1f -> %.1f (%.0f%% drop)"
            % (label(base), b, f, (1.0 - f / b) * 100.0)
        )
    b = base.get("phases", {}).get("decision_s", 0.0)
    f = got.get("phases", {}).get("decision_s", 0.0)
    if b > 0 and f > b * (1.0 + threshold):
        failures.append(
            "%s: decision_s %.4f -> %.4f (%.0f%% slower)"
            % (label(base), b, f, (f / b - 1.0) * 100.0)
        )

print(
    "bench-regress: %d row(s) compared, %d skipped by %s"
    % (compared, skipped_n, skip_path)
)
if failures:
    for f in failures:
        print("bench-regress: REGRESSION: " + f, file=sys.stderr)
    sys.exit(1)
print("bench-regress: OK (no pinned metric regressed past the threshold)")
EOF

rm -f "$FRESH" bench-regress.out
