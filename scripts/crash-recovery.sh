#!/bin/sh
# End-to-end crash recovery: kill battle_sim with SIGKILL mid-run, restart
# it with --restore, and require the final state line (tick, population,
# CRC-32 state digest, counters) to be bit-identical to an uninterrupted
# run.  Then corrupt the newest checkpoint generation on disk and require
# recovery to detect it by checksum, fall back a generation, and *still*
# land on the identical final state via journal chain replay.
#
# Usage: scripts/crash-recovery.sh [checkpoint-dir]
# The directory (default: a fresh ./crash-recovery-ckpt) is left in place
# on failure so CI can upload it for post-mortem.
set -eu

cd "$(dirname "$0")/.."

DIR="${1:-crash-recovery-ckpt}"
UNITS=300
TICKS=40
EVERY=10
ARGS="--units $UNITS --ticks $TICKS --evaluator indexed --seed 7 --checkpoint-every $EVERY"

SIM="_build/default/bin/battle_sim.exe"
[ -x "$SIM" ] || dune build bin/battle_sim.exe

rm -rf "$DIR"

fail() {
  echo "crash-recovery: FAIL: $*" >&2
  exit 1
}

final_state() {
  grep '^final state:' "$1" || fail "no final state line in $1"
}

# --- Leg 1: the uninterrupted reference run -------------------------------
echo "== reference run ($TICKS ticks, no interruption)"
"$SIM" $ARGS > ref.out 2>&1
REF="$(final_state ref.out)"
echo "$REF"

# --- Leg 2: kill -9 mid-run, then restore ---------------------------------
echo "== crashed run (SIGKILL mid-flight)"
"$SIM" $ARGS --checkpoint-dir "$DIR" --sleep-ms 30 > crash.out 2>&1 &
PID=$!
# let it commit a couple of checkpoint generations, then pull the plug
sleep 1.2
kill -9 "$PID" 2>/dev/null || fail "the victim exited before the kill; raise --sleep-ms"
wait "$PID" 2>/dev/null || true
ls "$DIR"/ckpt-*.sglc >/dev/null 2>&1 || fail "no checkpoint generation reached the disk"
echo "   killed pid $PID; directory holds: $(ls "$DIR" | tr '\n' ' ')"

echo "== restore and run to completion"
"$SIM" $ARGS --checkpoint-dir "$DIR" --restore > restore.out 2>&1
grep '^restored:' restore.out || fail "restore did not report recovery"
GOT="$(final_state restore.out)"
echo "$GOT"
[ "$GOT" = "$REF" ] || {
  echo "reference: $REF" >&2
  echo "recovered: $GOT" >&2
  fail "recovered final state differs from the uninterrupted run"
}
echo "   bit-identical to the reference"

# --- Leg 3: corrupt the newest generation; checksum must catch it ---------
echo "== corrupted newest checkpoint generation"
NEWEST="$(ls "$DIR"/ckpt-*.sglc | sort | tail -n 1)"
# stomp 4 bytes mid-file; the section CRC must reject the generation
printf 'XXXX' | dd of="$NEWEST" bs=1 seek=60 conv=notrunc 2>/dev/null
"$SIM" $ARGS --checkpoint-dir "$DIR" --restore > corrupt.out 2>&1
grep '^restored:' corrupt.out | grep 'fell back past' \
  || fail "corrupt generation was not detected/skipped (see corrupt.out)"
GOT="$(final_state corrupt.out)"
echo "$GOT"
[ "$GOT" = "$REF" ] || {
  echo "reference: $REF" >&2
  echo "recovered: $GOT" >&2
  fail "post-corruption recovery diverged from the uninterrupted run"
}
echo "   checksum caught the damage; fallback + journal replay matched the reference"

rm -rf "$DIR" ref.out crash.out restore.out corrupt.out
echo "crash-recovery: OK"
