#!/bin/sh
# End-to-end crash recovery: kill battle_sim with SIGKILL mid-run, restart
# it with --restore, and require the final state (tick, population, CRC-32
# state digest, counters) to be bit-identical to an uninterrupted run.
# Then corrupt the newest checkpoint generation on disk and require
# recovery to detect it by checksum, fall back a generation, and *still*
# land on the identical final state via journal chain replay.  Finally,
# the crashed run's streamed flight-recorder dump must load (torn tail
# tolerated) and its last record must sit on the journal's last committed
# tick (or one behind it: the kill can land between journal commit and
# the flight write of the same step).
#
# Final states are compared through --summary-json, not by grepping the
# human-readable output.
#
# Usage: scripts/crash-recovery.sh [checkpoint-dir]
# The directory (default: a fresh ./crash-recovery-ckpt) is left in place
# on failure so CI can upload it for post-mortem.
set -eu

cd "$(dirname "$0")/.."

DIR="${1:-crash-recovery-ckpt}"
UNITS=300
TICKS=40
EVERY=10
ARGS="--units $UNITS --ticks $TICKS --evaluator indexed --seed 7 --checkpoint-every $EVERY"

SIM="_build/default/bin/battle_sim.exe"
[ -x "$SIM" ] || dune build bin/battle_sim.exe

rm -rf "$DIR" crash-flight.dump

fail() {
  echo "crash-recovery: FAIL: $*" >&2
  exit 1
}

# Compare two summary documents field by field, ignoring wall-clock noise.
same_summary() {
  python3 - "$1" "$2" <<'EOF'
import json, sys
a = json.load(open(sys.argv[1]))
b = json.load(open(sys.argv[2]))
for k in ("elapsed_s", "ticks_per_s"):
    a.pop(k, None)
    b.pop(k, None)
if a != b:
    print("reference: %r" % a, file=sys.stderr)
    print("recovered: %r" % b, file=sys.stderr)
    sys.exit(1)
EOF
}

describe_summary() {
  python3 - "$1" <<'EOF'
import json, sys
s = json.load(open(sys.argv[1]))
print("   tick=%d units=%d digest=%s deaths=%d resurrections=%d"
      % (s["tick"], s["units"], s["digest"], s["deaths"], s["resurrections"]))
EOF
}

# --- Leg 1: the uninterrupted reference run -------------------------------
echo "== reference run ($TICKS ticks, no interruption)"
"$SIM" $ARGS --summary-json ref-summary.json > ref.out 2>&1
describe_summary ref-summary.json

# --- Leg 2: kill -9 mid-run, then restore ---------------------------------
echo "== crashed run (SIGKILL mid-flight, flight recorder streaming)"
"$SIM" $ARGS --checkpoint-dir "$DIR" --sleep-ms 30 \
    --dump-flight crash-flight.dump > crash.out 2>&1 &
PID=$!
# let it commit a couple of checkpoint generations, then pull the plug
sleep 1.2
kill -9 "$PID" 2>/dev/null || fail "the victim exited before the kill; raise --sleep-ms"
wait "$PID" 2>/dev/null || true
ls "$DIR"/ckpt-*.sglc >/dev/null 2>&1 || fail "no checkpoint generation reached the disk"
echo "   killed pid $PID; directory holds: $(ls "$DIR" | tr '\n' ' ')"

echo "== restore and run to completion"
"$SIM" $ARGS --checkpoint-dir "$DIR" --restore \
    --summary-json restore-summary.json > restore.out 2>&1
grep '^restored:' restore.out || fail "restore did not report recovery"
describe_summary restore-summary.json
same_summary ref-summary.json restore-summary.json \
  || fail "recovered final state differs from the uninterrupted run"
echo "   bit-identical to the reference"

# --- Leg 3: the flight dump left by the SIGKILL ---------------------------
echo "== flight recorder dump left by the crash"
[ -f crash-flight.dump ] || fail "crashed run left no flight dump"
"$SIM" --print-flight crash-flight.dump > flight-summary.json \
  || fail "flight dump did not load"
python3 - flight-summary.json restore.out <<'EOF' \
  || fail "flight dump does not line up with the journal (see flight-summary.json)"
import json, re, sys
flight = json.load(open(sys.argv[1]))
m = re.search(r"restored: checkpoint tick=(\d+), replayed (\d+) journal tick",
              open(sys.argv[2]).read())
assert m, "no restored: line to recover the journal position from"
committed = int(m.group(1)) + int(m.group(2))
assert flight["records"] > 0, "flight dump holds no records"
# the observer runs after journal commit inside the same step, so the
# last flight record is the last committed tick, or one behind it when
# the kill lands inside that window
assert flight["last_tick"] in (committed, committed - 1), (
    "flight last_tick=%d vs journal last committed tick=%d"
    % (flight["last_tick"], committed))
assert flight["last"]["tick"] == flight["last_tick"]
print("   flight: %d record(s)%s, last_tick=%d, journal committed tick=%d"
      % (flight["records"],
         " (torn tail)" if flight["torn"] else "",
         flight["last_tick"], committed))
EOF

# --- Leg 4: corrupt the newest generation; checksum must catch it ---------
echo "== corrupted newest checkpoint generation"
NEWEST="$(ls "$DIR"/ckpt-*.sglc | sort | tail -n 1)"
# stomp 4 bytes mid-file; the section CRC must reject the generation
printf 'XXXX' | dd of="$NEWEST" bs=1 seek=60 conv=notrunc 2>/dev/null
"$SIM" $ARGS --checkpoint-dir "$DIR" --restore \
    --summary-json corrupt-summary.json > corrupt.out 2>&1
grep '^restored:' corrupt.out | grep 'fell back past' \
  || fail "corrupt generation was not detected/skipped (see corrupt.out)"
describe_summary corrupt-summary.json
same_summary ref-summary.json corrupt-summary.json \
  || fail "post-corruption recovery diverged from the uninterrupted run"
echo "   checksum caught the damage; fallback + journal replay matched the reference"

rm -rf "$DIR" ref.out crash.out restore.out corrupt.out crash-flight.dump \
  ref-summary.json restore-summary.json corrupt-summary.json flight-summary.json
echo "crash-recovery: OK"
