#!/usr/bin/env bash
# Run the SGL lint engine over the shipped scripts and the seeded-defect
# fixtures, asserting:
#
#   1. every example script and the built-in battle scripts lint clean
#      under --werror (infos are allowed, they never gate);
#   2. every fixture in examples/lint_fixtures/ is flagged with exactly
#      the rule id encoded in its file name prefix (t001_..., r003_...);
#   3. every shipped script earns a shard-locality certificate and no
#      built-in battle script regresses to an unbounded footprint;
#   4. every JSON report parses (the emitter is hand-rolled, so this
#      script is the parser of record).
#
# JSON reports (lint diagnostics and footprint certificates) are
# collected under lint-reports/ for the CI artifact.
set -u

SGL_CHECK="dune exec --no-build bin/sgl_check.exe --"
OUT_DIR="lint-reports"
mkdir -p "$OUT_DIR"
failures=0

fail() {
  echo "FAIL: $*" >&2
  failures=$((failures + 1))
}

# -- 1. shipped scripts must be clean ---------------------------------------

for f in examples/scripts/*.sgl; do
  if $SGL_CHECK "$f" --lint --werror > /dev/null; then
    echo "ok: $f lints clean"
  else
    fail "$f should lint clean under --werror"
  fi
  $SGL_CHECK "$f" --lint-json > "$OUT_DIR/$(basename "$f" .sgl).json"
done

if $SGL_CHECK --battle --lint --werror > /dev/null; then
  echo "ok: battle built-ins lint clean"
else
  fail "battle built-in scripts should lint clean under --werror"
fi
$SGL_CHECK --battle --lint-json > "$OUT_DIR/battle.json"

# -- 2. shard-locality certificates -----------------------------------------
#
# Every shipped script gets a footprint certificate archived next to the
# lint reports, and the battle built-ins must all certify shard-local:
# a bounded→unbounded regression here means a script started writing
# outside any provable interaction radius.

for f in examples/scripts/*.sgl; do
  if $SGL_CHECK "$f" --footprint-json > "$OUT_DIR/$(basename "$f" .sgl)-footprint.json"; then
    echo "ok: $f certified"
  else
    fail "$f: footprint certification failed"
  fi
done

if $SGL_CHECK --battle --footprint-json > "$OUT_DIR/battle-footprint.json"; then
  if grep -q '"shard_local":false' "$OUT_DIR/battle-footprint.json"; then
    fail "a battle built-in script certifies unbounded (shard_local:false)"
  else
    echo "ok: battle built-ins all certify shard-local"
  fi
else
  fail "battle built-ins: footprint certification failed"
fi

# -- 3. each fixture must be flagged by its seeded rule ---------------------

for f in examples/lint_fixtures/*.sgl; do
  base=$(basename "$f" .sgl)
  rule=$(echo "${base%%_*}" | tr '[:lower:]' '[:upper:]')
  extra=""
  case "$base" in
    r004_*) extra="--no-post-reads" ;;  # R004 needs "no engine consumes effects"
  esac
  report="$OUT_DIR/fixture_$base.json"
  # shellcheck disable=SC2086
  $SGL_CHECK "$f" --lint-json $extra > "$report"
  if grep -q "\"rule\": \"$rule\"" "$report"; then
    echo "ok: $f flagged by $rule"
  else
    fail "$f: expected rule $rule in $report"
  fi
done

# -- 4. every report must be valid JSON -------------------------------------

for j in "$OUT_DIR"/*.json; do
  if python3 -m json.tool "$j" > /dev/null; then
    echo "ok: $j parses"
  else
    fail "$j is not valid JSON"
  fi
done

if [ "$failures" -gt 0 ]; then
  echo "$failures lint-fixture check(s) failed" >&2
  exit 1
fi
echo "all lint-fixture checks passed"
