#!/bin/sh
# Observability smoke: a 10 000-unit battle serving the live endpoint,
# curled mid-run (/metrics, /health, one /query), with the flight
# recorder streaming to disk — then the final state digest must be
# bit-identical to the same battle with observability disabled.  This is
# the end-to-end form of the differential guarantee the unit tests pin
# in-process: serving diagnostics never perturbs the simulation.
#
# Usage: scripts/obs-smoke.sh [port]
# Artifacts (obs-smoke-flight.dump, *.out, *.json) are left in place on
# failure so CI can upload them.
set -eu

cd "$(dirname "$0")/.."

PORT="${1:-8399}"
UNITS=10000
TICKS=30
ARGS="--units $UNITS --ticks $TICKS --evaluator indexed --seed 13"
BASE="http://127.0.0.1:$PORT"

SIM="_build/default/bin/battle_sim.exe"
[ -x "$SIM" ] || dune build bin/battle_sim.exe

rm -f obs-smoke-flight.dump

fail() {
  echo "obs-smoke: FAIL: $*" >&2
  exit 1
}

# --- the observability-off reference ---------------------------------------
echo "== reference run (observability off)"
"$SIM" $ARGS --summary-json obs-off-summary.json > obs-off.out 2>&1

# --- the observed run: server + streamed flight dump -----------------------
# --sleep-ms keeps the battle alive long enough for the curls to land
# mid-run rather than racing the final tick.
echo "== observed run (--obs-port $PORT, flight streaming)"
"$SIM" $ARGS --obs-port "$PORT" --dump-flight obs-smoke-flight.dump \
    --summary-json obs-on-summary.json --sleep-ms 20 > obs-on.out 2>&1 &
PID=$!

# /health answers 503 until the first tick commits; poll it to readiness
READY=0
for _ in $(seq 1 100); do
  if curl -fsS "$BASE/health" -o health.json 2>/dev/null; then
    READY=1
    break
  fi
  kill -0 "$PID" 2>/dev/null || fail "battle exited before the endpoint came up (see obs-on.out)"
  sleep 0.2
done
[ "$READY" = 1 ] || fail "endpoint never became ready on port $PORT"
echo "   /health: $(cat health.json)"

curl -fsS "$BASE/metrics" -o metrics.txt || fail "/metrics curl failed"
grep -q '^# TYPE sgl_' metrics.txt || fail "/metrics is not Prometheus exposition"
grep -q 'sgl_sim_tick_seconds' metrics.txt || fail "/metrics lacks the tick histogram"
echo "   /metrics: $(wc -l < metrics.txt) lines of exposition"

curl -fsS "$BASE/query?q=count(*)%20where%20e.health%20%3E%200" -o query.json \
  || fail "/query curl failed"
python3 - query.json <<'EOF' || fail "/query answer malformed (see query.json)"
import json, sys
doc = json.load(open(sys.argv[1]))
assert isinstance(doc["value"], int) and doc["value"] > 0, doc
assert doc["correlated"] is False
print("   /query: %d units alive at tick %d" % (doc["value"], doc["tick"]))
EOF

wait "$PID" || fail "observed run exited non-zero (see obs-on.out)"

# --- the differential guarantee, end to end --------------------------------
python3 - obs-off-summary.json obs-on-summary.json <<'EOF' \
  || fail "observability changed the simulation"
import json, sys
off = json.load(open(sys.argv[1]))
on = json.load(open(sys.argv[2]))
for k in ("tick", "units", "digest", "deaths", "resurrections"):
    assert off[k] == on[k], "%s: off=%r on=%r" % (k, off[k], on[k])
print("   digest %s identical with and without observability" % on["digest"])
EOF

# the streamed dump must load and cover the whole run
"$SIM" --print-flight obs-smoke-flight.dump > flight-summary.json \
  || fail "flight dump did not load"
python3 - flight-summary.json <<'EOF' || fail "flight dump incomplete"
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["torn"] is False and doc["records"] == 30 and doc["last_tick"] == 30, doc
print("   flight: %d record(s), ticks %d..%d"
      % (doc["records"], doc["first_tick"], doc["last_tick"]))
EOF

rm -f obs-off.out obs-on.out obs-off-summary.json obs-on-summary.json \
  health.json metrics.txt query.json flight-summary.json
echo "obs-smoke: OK"
