#!/bin/sh
# Perf sanity: the columnar environment store must keep a 100 000-unit
# battle viable end to end.  This is a scale smoke test, not a benchmark
# gate — shared runners are far too noisy to pin ratios, so the bound is
# generous (minutes, where the expected time is tens of seconds) and
# only catastrophic regressions fail it: an accidental O(n^2) path, a
# full-store copy per tick, an index rebuilt per probe.
#
# Usage: scripts/perf-sanity.sh [bound-seconds]
set -eu

cd "$(dirname "$0")/.."

BOUND="${1:-600}"
UNITS=100000
TICKS=5

SIM="_build/default/bin/battle_sim.exe"
[ -x "$SIM" ] || dune build bin/battle_sim.exe

echo "perf-sanity: $UNITS units, $TICKS ticks, indexed, bound ${BOUND}s"
start=$(date +%s)
if ! timeout "$BOUND" "$SIM" --units "$UNITS" --ticks "$TICKS" \
    --evaluator indexed --seed 11 --metrics perf-sanity-metrics.json; then
  echo "perf-sanity: FAIL: ${UNITS}-unit battle did not complete within ${BOUND}s" >&2
  exit 1
fi
elapsed=$(( $(date +%s) - start ))
echo "perf-sanity: completed in ${elapsed}s (bound ${BOUND}s)"

# The run must actually have taken the columnar access path: COW refresh
# commits count column keeps/copies every tick.
python3 - <<'EOF'
import json
doc = json.dumps(json.load(open("perf-sanity-metrics.json")))
assert "persist.snapshot_cow_hits" in doc or "relalg.column_copies" in doc, \
    "100k run recorded no columnar-store activity"
EOF
echo "perf-sanity: columnar store counters present"
