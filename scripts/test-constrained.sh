#!/bin/sh
# Run the full test suite pinned to two CPUs, so the domain-pool tests
# exercise the oversubscribed case (more domains than cores).  Falls back
# to an unconstrained run where taskset is unavailable (macOS, BSDs) or
# the machine has fewer than two CPUs.
set -eu

cd "$(dirname "$0")/.."

if command -v taskset >/dev/null 2>&1 && command -v nproc >/dev/null 2>&1 \
   && [ "$(nproc)" -ge 2 ]; then
  echo "running tests constrained to CPUs 0,1"
  exec taskset -c 0,1 dune runtest --force "$@"
else
  echo "taskset or a second CPU unavailable; running unconstrained"
  exec dune runtest --force "$@"
fi
