(* Abstract interpretation: domain laws, the qcheck soundness law tying
   concrete evaluation to the inferred intervals, the optimizer oracles
   (prove/fold) together with translation validation, the battle
   shard-locality certificates, and the incremental column digests the
   commit journal rides on (CRC combination law + differential pin). *)

open Sgl_relalg
open Sgl_lang
open Sgl_qopt
open Sgl_analysis
open Sgl_battle

let battle_schema () = Unit_types.schema ()

let compile_battle () =
  Compile.compile ~consts:Scripts.constants ~schema:(battle_schema ()) Scripts.source

(* ------------------------------------------------------------------ *)
(* Domain basics *)

let domain_basics () =
  let open Absint in
  let d = join (of_value (Value.Int 1)) (of_value (Value.Int 5)) in
  Alcotest.(check bool) "3 in [1,5]" true (mem (Value.Int 3) d);
  Alcotest.(check bool) "0 not in [1,5]" false (mem (Value.Int 0) d);
  Alcotest.(check bool) "float 3. not in the int join" false (mem (Value.Float 3.) d);
  Alcotest.(check bool) "[1,5] has no singleton" true (singleton d = None);
  (match singleton (of_value (Value.Float 2.5)) with
  | Some (Value.Float f) -> Alcotest.(check (float 0.)) "float singleton" 2.5 f
  | _ -> Alcotest.fail "of_value (Float 2.5) should be a singleton");
  Alcotest.(check bool) "bot is bot" true (is_bot bot);
  Alcotest.(check bool) "nothing in bot" false (mem (Value.Int 0) bot);
  Alcotest.(check bool) "everything in top" true
    (List.for_all
       (fun v -> mem v top)
       [ Value.Int 42; Value.Float nan; Value.Bool false; Value.Vec (Sgl_util.Vec2.make 1. 2.) ]);
  match num_bounds d with
  | Some (lo, hi) ->
    Alcotest.(check (float 0.)) "num lo" 1. lo;
    Alcotest.(check (float 0.)) "num hi" 5. hi
  | None -> Alcotest.fail "[1,5] has numeric bounds"

(* ------------------------------------------------------------------ *)
(* Soundness law: wherever concrete evaluation succeeds its value is a
   member of the abstract result, and an abstract "no error" verdict
   means concrete evaluation cannot raise.  Exercised over random
   expressions (type-sloppy on purpose: ill-typed subterms must be
   anticipated by the may-raise flag) against stores drawn from the
   abstract store's intervals. *)

(* Slot intervals the generator draws stores from. *)
let abstract_store =
  let open Absint in
  [|
    join (of_value (Value.Int (-10))) (of_value (Value.Int 10));
    join (of_value (Value.Float (-4.))) (of_value (Value.Float 4.));
    join (of_value (Value.Bool false)) (of_value (Value.Bool true));
    join (of_value (Value.Int 0)) (of_value (Value.Int 20));
  |]

let gen_store =
  let open QCheck.Gen in
  map
    (fun (((i0, f1), b2), i3) ->
      [| Value.Int i0; Value.Float f1; Value.Bool b2; Value.Int i3 |])
    (pair (pair (pair (int_range (-10) 10) (float_range (-4.) 4.)) bool) (int_range 0 20))

let gen_expr =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun i -> Expr.Const (Value.Int i)) (int_range (-20) 20);
        map (fun f -> Expr.Const (Value.Float f)) (float_range (-8.) 8.);
        map (fun b -> Expr.Const (Value.Bool b)) bool;
        map (fun i -> Expr.UAttr i) (int_range 0 3);
      ]
  in
  sized
    (fix (fun self n ->
         if n <= 0 then leaf
         else
           let sub = self (n / 2) in
           frequency
             [
               (2, leaf);
               ( 3,
                 map2
                   (fun op (a, b) -> Expr.Binop (op, a, b))
                   (oneofl [ Expr.Add; Expr.Sub; Expr.Mul; Expr.Div; Expr.Mod ])
                   (pair sub sub) );
               ( 2,
                 map2
                   (fun op (a, b) -> Expr.Cmp (op, a, b))
                   (oneofl [ Expr.Eq; Expr.Ne; Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge ])
                   (pair sub sub) );
               (1, map2 (fun a b -> Expr.And (a, b)) sub sub);
               (1, map2 (fun a b -> Expr.Or (a, b)) sub sub);
               (1, map (fun a -> Expr.Not a) sub);
               (1, map (fun a -> Expr.Neg a) sub);
               (1, map (fun a -> Expr.Abs a) sub);
               (1, map (fun a -> Expr.Sqrt a) sub);
               (1, map2 (fun a b -> Expr.MinOf (a, b)) sub sub);
               (1, map2 (fun a b -> Expr.MaxOf (a, b)) sub sub);
               (1, map2 (fun a b -> Expr.VecOf (a, b)) sub sub);
               (1, map (fun a -> Expr.VecX a) sub);
               (1, map (fun a -> Expr.VecY a) sub);
               (1, map (fun a -> Expr.Random a) sub);
             ]))

let eval_soundness =
  QCheck.Test.make ~name:"absint: concrete evaluation lands in the inferred interval"
    ~count:2000
    (QCheck.make
       ~print:(fun (e, u) ->
         Fmt.str "%a over [%a]" Expr.pp e Fmt.(array ~sep:(any "; ") Value.pp) u)
       QCheck.Gen.(pair gen_expr gen_store))
    (fun (e, u) ->
      let actx =
        {
          Absint.u =
            (fun i -> if i >= 0 && i < Array.length abstract_store then abstract_store.(i) else Absint.top);
          e = None;
        }
      in
      let d, may_err = Absint.eval actx e in
      let concrete =
        try Some (Expr.eval { Expr.u; e = None; rand = (fun i -> (i * 2654435761) land 0xFFFFF) } e)
        with _ -> None
      in
      match concrete with
      | Some v -> Absint.mem v d
      | None -> may_err)

(* ------------------------------------------------------------------ *)
(* The optimizer oracles: prove discharges interval-decided guards and
   the guard-discharging rewrite still passes translation validation
   with the same prover; fold pins interval singletons to constants. *)

let oracle_source =
  {|
action Advance(u) {
  on self { movevect_x <- 1.0; movevect_y <- 0.0; }
}

action Retreat(u) {
  on self { movevect_x <- 0.0 - 1.0; movevect_y <- 0.0; }
}

script cautious(u) {
  let roll = random(1) mod 20;
  if roll >= 0 then {
    perform Advance(u);
  } else {
    perform Retreat(u);
  }
}
|}

let oracle_prove_fold () =
  let schema = battle_schema () in
  let prog = Compile.compile ~consts:Scripts.constants ~schema oracle_source in
  let oracle = Absint.make_oracle ~trust_ranges:true prog in
  (* prove: roll is bound at the first register slot; [0,19] >= 0 *)
  let guard = Expr.Cmp (Expr.Ge, Expr.UAttr (Schema.arity schema), Expr.Const (Value.Int 0)) in
  Alcotest.(check bool) "prove decides the subsumed guard" true
    (oracle.Absint.prove "cautious" guard = Some true);
  Alcotest.(check bool) "prove stays silent on undecided guards" true
    (oracle.Absint.prove "cautious"
       (Expr.Cmp (Expr.Ge, Expr.UAttr (Schema.arity schema), Expr.Const (Value.Int 10)))
    = None);
  (* fold: a mod-1 draw has the singleton interval [0,0] *)
  (match
     oracle.Absint.fold "cautious"
       (Expr.Binop (Expr.Mod, Expr.Random (Expr.Const (Value.Int 1)), Expr.Const (Value.Int 1)))
   with
  | Some (Value.Int 0) -> ()
  | _ -> Alcotest.fail "fold should pin (random(1) mod 1) to 0");
  (* the prover-driven rewrite prunes the guard the structural folder
     cannot, and validates against the original with the same prover *)
  let unopt = Exec.compile ~optimize:false prog in
  let plan =
    match Exec.find_plan unopt "cautious" with
    | Some p -> p
    | None -> Alcotest.fail "no plan for cautious"
  in
  let plain = Rewrite.no_stats () in
  ignore (Rewrite.optimize ~stats:plain ~aggs:prog.Core_ir.aggregates plan);
  Alcotest.(check int) "structural folding alone cannot prune the guard" 0 plain.Rewrite.pruned;
  let stats = Rewrite.no_stats () in
  let opt =
    Rewrite.optimize ~stats ~prove:(oracle.Absint.prove "cautious") ~aggs:prog.Core_ir.aggregates
      plan
  in
  Alcotest.(check bool) "the prover pruned it" true (stats.Rewrite.pruned > 0);
  Alcotest.(check (list string)) "V002 silent with the same prover" []
    (List.map
       (fun (d : Diagnostic.t) -> d.Diagnostic.rule)
       (Plan_check.validate_rewrite ~script:"cautious" ~prove:(oracle.Absint.prove "cautious")
          ~original:plan ~optimized:opt ()));
  (* whole-program validation with the prover threaded through *)
  Alcotest.(check (list string)) "validate_program clean with prover" []
    (List.map
       (fun (d : Diagnostic.t) -> d.Diagnostic.rule)
       (Plan_check.validate_program ~prove:oracle.Absint.prove prog))

(* The untrusting oracle (engine side) must not believe declared ranges:
   schema slots are top, so a guard over an attribute stays undecided. *)
let oracle_untrusted () =
  let schema = battle_schema () in
  let prog = Compile.compile ~consts:Scripts.constants ~schema oracle_source in
  let oracle = Absint.make_oracle prog in
  let health = Schema.find schema "health" in
  Alcotest.(check bool) "untrusted oracle leaves attribute guards open" true
    (oracle.Absint.prove "cautious"
       (Expr.Cmp (Expr.Ge, Expr.UAttr health, Expr.Const (Value.Int 0)))
    = None);
  (* store-independent facts still fold *)
  Alcotest.(check bool) "store-independent singletons still fold" true
    (oracle.Absint.fold "cautious"
       (Expr.Binop (Expr.Mod, Expr.Random (Expr.Const (Value.Int 1)), Expr.Const (Value.Int 1)))
    = Some (Value.Int 0))

(* ------------------------------------------------------------------ *)
(* Battle certificates: every shipped script must certify shard-local,
   with the radii the scripts' windows imply. *)

let battle_certificates () =
  let prog = compile_battle () in
  let certs = Footprint.certify prog in
  Alcotest.(check int) "one certificate per script" (List.length prog.Core_ir.scripts)
    (List.length certs);
  List.iter
    (fun (c : Footprint.cert) ->
      Alcotest.(check bool) (c.Footprint.script ^ " certifies shard-local") true
        c.Footprint.shard_local)
    certs;
  let find name = List.find (fun (c : Footprint.cert) -> c.Footprint.script = name) certs in
  let knight = find "knight" in
  Alcotest.(check bool) "knight writes only self/key (radius 0)" true
    (knight.Footprint.write_radius = Some 0.);
  Alcotest.(check bool) "knight keyed strike proven inside the key range" true
    (List.exists (function Footprint.C_key true -> true | _ -> false) knight.Footprint.effects);
  (match List.assoc_opt "WeakestEnemyInMelee" knight.Footprint.regions with
  | Some (Footprint.R_windowed ws) ->
    List.iter (fun (_, r) -> Alcotest.(check (float 0.)) "melee window radius" 2. r) ws
  | _ -> Alcotest.fail "WeakestEnemyInMelee should be a windowed region");
  let healer = find "healer" in
  Alcotest.(check bool) "healer aura bounded at the heal range" true
    (healer.Footprint.write_radius = Some 6.);
  Alcotest.(check bool) "healer reads bounded by sight" true
    (healer.Footprint.read_radius = Some 20.);
  Alcotest.(check bool) "healer aura is a bounded all-target effect" true
    (List.exists
       (function Footprint.C_all_bounded _ -> true | _ -> false)
       healer.Footprint.effects)

(* ------------------------------------------------------------------ *)
(* CRC combination: the identity the columnar digest leans on. *)

let crc_combine () =
  let module C = Sgl_util.Crc32 in
  List.iter
    (fun (a, b) ->
      Alcotest.(check int)
        (Fmt.str "combine %S %S" a b)
        (C.string (a ^ b))
        (C.combine (C.string a) (C.string b) ~len_b:(String.length b)))
    [
      ("", "");
      ("a", "");
      ("", "b");
      ("hello, ", "world");
      (String.make 1000 'x', "tail\x00\xff\x7f");
    ]

let crc_combine_law =
  let module C = Sgl_util.Crc32 in
  QCheck.Test.make ~name:"crc32: combine (crc a) (crc b) = crc (a ^ b)" ~count:500
    QCheck.(pair string string)
    (fun (a, b) ->
      C.combine (C.string a) (C.string b) ~len_b:(String.length b) = C.string (a ^ b))

(* ------------------------------------------------------------------ *)
(* Incremental column digests: recomputing only the dirty columns must
   always land on the full digest. *)

let mk_unit i =
  [|
    Value.Int i;
    Value.Float (float_of_int i *. 0.5);
    Value.Bool (i mod 2 = 0);
    Value.Vec (Sgl_util.Vec2.make (float_of_int i) 1.0);
  |]

let digest_incremental () =
  let module Codec = Sgl_persist.Codec in
  let units = Array.init 64 mk_unit in
  let cache = Codec.units_digest_cache units in
  Alcotest.(check int) "cache denotes the full digest" (Codec.units_digest units)
    (Codec.digest_of_cache cache);
  Array.iteri
    (fun i u ->
      u.(0) <- Value.Int (i * 7);
      if i mod 3 = 0 then u.(2) <- Value.Bool false)
    units;
  let incr = Codec.units_digest_incremental cache ~dirty:[ 0; 2 ] units in
  Alcotest.(check int) "incremental = full after dirty-column writes" (Codec.units_digest units)
    (Codec.digest_of_cache incr);
  (* a clean column really is skipped: digests react to dirty marks *)
  let stale = Codec.units_digest_incremental cache ~dirty:[ 2 ] units in
  Alcotest.(check bool) "missing a dirty mark is visible" true
    (Codec.digest_of_cache stale <> Codec.units_digest units);
  (* population changes fall back to a full recompute *)
  let fewer = Array.sub units 0 40 in
  let shrunk = Codec.units_digest_incremental incr ~dirty:[] fewer in
  Alcotest.(check int) "shrunk population falls back to full" (Codec.units_digest fewer)
    (Codec.digest_of_cache shrunk)

let digest_incremental_law =
  let module Codec = Sgl_persist.Codec in
  QCheck.Test.make ~name:"codec: incremental column digest = full digest" ~count:300
    QCheck.(triple (int_range 1 80) (small_list (int_range 0 3)) small_int)
    (fun (n, dirty, seed) ->
      let units = Array.init n (fun i -> mk_unit (i + seed)) in
      let cache = Codec.units_digest_cache units in
      Array.iteri
        (fun i u ->
          List.iter (fun j -> u.(j) <- Value.Int (((i + 1) * (j + 3) * (seed + 11)) land 0xFFFF)) dirty)
        units;
      let incr = Codec.units_digest_incremental cache ~dirty units in
      Codec.digest_of_cache incr = Codec.units_digest units)

(* ------------------------------------------------------------------ *)

let suite =
  [
    ( "absint",
      [
        Alcotest.test_case "domain basics" `Quick domain_basics;
        QCheck_alcotest.to_alcotest eval_soundness;
        Alcotest.test_case "oracle prove/fold with validation" `Quick oracle_prove_fold;
        Alcotest.test_case "untrusting oracle ignores declared ranges" `Quick oracle_untrusted;
        Alcotest.test_case "battle shard-locality certificates" `Quick battle_certificates;
        Alcotest.test_case "crc32 combine identity" `Quick crc_combine;
        QCheck_alcotest.to_alcotest crc_combine_law;
        Alcotest.test_case "incremental column digest" `Quick digest_incremental;
        QCheck_alcotest.to_alcotest digest_incremental_law;
      ] );
  ]
