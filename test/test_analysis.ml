(* The static analyzer: diagnostics plumbing, the collect-all typechecker,
   the effect-race detector, the plan translation validator, the
   performance lints, the driver pipeline over the shipped scripts and the
   seeded-defect fixtures — and the differential pin tying a race-clean
   verdict to bit-identical evaluator outcomes. *)

open Sgl_relalg
open Sgl_lang
open Sgl_qopt
open Sgl_analysis
open Sgl_battle

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let battle_schema () = Unit_types.schema ()

let post_reads schema =
  List.sort_uniq compare
    (Schema.find schema "movevect_x" :: Schema.find schema "movevect_y"
    :: Sgl_engine.Postprocess.reads (Sgl_engine.Postprocess.battle_spec ~schema))

let analyze_file ?(no_post_reads = false) path : Diagnostic.t list =
  let ic = open_in_bin path in
  let source =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let schema = battle_schema () in
  let post_reads = if no_post_reads then [] else post_reads schema in
  match
    Driver.analyze_source ~consts:Scripts.constants ~post_reads ~schema source
  with
  | Ok diags -> diags
  | Error msg -> Alcotest.failf "%s failed to parse: %s" path msg

let rules_of diags = List.map (fun (d : Diagnostic.t) -> d.Diagnostic.rule) diags
let has_rule rule diags = List.mem rule (rules_of diags)

let example_files =
  [
    "../examples/scripts/kiting_archer.sgl";
    "../examples/scripts/patrol.sgl";
    "../examples/scripts/plague.sgl";
    "../examples/scripts/shield_wall.sgl";
  ]

(* ------------------------------------------------------------------ *)
(* Diagnostics and the rule catalogue *)

let catalogue () =
  let ids = List.map (fun (r : Rules.t) -> r.Rules.id) Rules.all in
  Alcotest.(check int) "no duplicate ids" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun id ->
      match Rules.find id with
      | Some r -> Alcotest.(check string) "find returns the rule" id r.Rules.id
      | None -> Alcotest.failf "rule %s missing from catalogue" id)
    [ "T001"; "R001"; "R002"; "R003"; "R004"; "V001"; "V002"; "V003"; "P001"; "P002"; "P003";
      "P004"; "P005"; "P006"; "S001"; "S002"; "S003"; "N001"; "N002"; "N003" ];
  Alcotest.(check bool) "unknown id reports as error" true
    (Rules.severity "Z999" = Diagnostic.Error);
  (* severities pinned: R003/R004/P001/P004/P005 warn, P002/P003 info, rest error *)
  List.iter
    (fun (id, sev) -> Alcotest.(check bool) id true (Rules.severity id = sev))
    [
      ("T001", Diagnostic.Error);
      ("R001", Diagnostic.Error);
      ("R002", Diagnostic.Error);
      ("R003", Diagnostic.Warn);
      ("R004", Diagnostic.Warn);
      ("V001", Diagnostic.Error);
      ("V002", Diagnostic.Error);
      ("V003", Diagnostic.Error);
      ("P001", Diagnostic.Warn);
      ("P002", Diagnostic.Info);
      ("P003", Diagnostic.Info);
      ("P004", Diagnostic.Warn);
      ("P005", Diagnostic.Warn);
      ("P006", Diagnostic.Info);
      ("S001", Diagnostic.Info);
      ("S002", Diagnostic.Warn);
      ("S003", Diagnostic.Warn);
      ("N001", Diagnostic.Warn);
      ("N002", Diagnostic.Warn);
      ("N003", Diagnostic.Warn);
    ];
  (* the INTERNALS catalogue table stays in sync: every rule id appears *)
  let ic = open_in_bin "../docs/INTERNALS.md" in
  let internals =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  List.iter
    (fun (r : Rules.t) ->
      Alcotest.(check bool)
        (r.Rules.id ^ " documented in INTERNALS.md")
        true
        (contains ~needle:r.Rules.id internals))
    Rules.all

let rendering () =
  let d =
    Diagnostic.make ~rule:"R001" ~severity:Diagnostic.Error
      ~pos:{ Ast.line = 3; col = 7 } ~context:"medic" "writes \"health\"\nbadly"
  in
  let line = Diagnostic.to_string ~file:"f.sgl" d in
  Alcotest.(check bool) "file:line:col prefix" true (contains ~needle:"f.sgl:3:7:" line);
  Alcotest.(check bool) "severity and rule" true (contains ~needle:"error R001" line);
  Alcotest.(check bool) "context" true (contains ~needle:"[medic]" line);
  let json = Diagnostic.to_json ~file:"f.sgl" [ d ] in
  Alcotest.(check bool) "escapes quotes" true (contains ~needle:"\\\"health\\\"" json);
  Alcotest.(check bool) "escapes newline" true (contains ~needle:"\\n" json);
  Alcotest.(check string) "empty array" "[]\n" (Diagnostic.to_json []);
  (* sort: position first, then severity, then rule *)
  let mk rule sev line = Diagnostic.make ~rule ~severity:sev ~pos:{ Ast.line; col = 1 } "m" in
  let sorted =
    Diagnostic.sort
      [ mk "P004" Diagnostic.Warn 9; mk "T001" Diagnostic.Error 2; mk "R003" Diagnostic.Warn 2 ]
  in
  Alcotest.(check (list string)) "stable order" [ "T001"; "R003"; "P004" ] (rules_of sorted);
  let c = Diagnostic.count sorted in
  Alcotest.(check (list int)) "counts" [ 1; 2; 0 ]
    [ c.Diagnostic.errors; c.Diagnostic.warnings; c.Diagnostic.infos ]

(* ------------------------------------------------------------------ *)
(* Collect-all typechecking *)

let multi_error_source =
  {|
action A(u) {
  on self { health <- 1.0; }
}

script one(u) {
  let x = u.mana;
  perform A(u);
}

script two(u) {
  let y = u.psi;
  if y > 0.0 then { perform A(u); }
}
|}

let collect_all () =
  let schema = battle_schema () in
  let prog = Compile.parse multi_error_source in
  let diags = Typecheck.check_all ~consts:Scripts.constants ~schema prog in
  Alcotest.(check bool) "several diagnostics" true (List.length diags >= 3);
  let messages = List.map (fun (d : Typecheck.diagnostic) -> d.Typecheck.message) diags in
  Alcotest.(check bool) "finds mana" true
    (List.exists (contains ~needle:"mana") messages);
  Alcotest.(check bool) "finds psi" true (List.exists (contains ~needle:"psi") messages);
  Alcotest.(check bool) "finds const write" true
    (List.exists (contains ~needle:"health") messages);
  List.iter
    (fun (d : Typecheck.diagnostic) ->
      Alcotest.(check bool) "every diagnostic is positioned" true (d.Typecheck.pos <> Ast.no_pos))
    diags;
  (* the raising wrapper reports the first collected diagnostic *)
  (match Typecheck.check ~consts:Scripts.constants ~schema prog with
  | () -> Alcotest.fail "check should raise"
  | exception Typecheck.Type_error m ->
    Alcotest.(check string) "check raises the first diagnostic"
      (Typecheck.diagnostic_to_string (List.hd diags))
      m);
  (* a clean program collects nothing *)
  let clean = Compile.parse Scripts.source in
  Alcotest.(check int) "battle scripts collect zero" 0
    (List.length (Typecheck.check_all ~consts:Scripts.constants ~schema clean))

(* ------------------------------------------------------------------ *)
(* Effect races *)

let race_summaries () =
  let schema = battle_schema () in
  let prog = Scripts.compile () in
  let summaries = Effect_race.summarize prog in
  Alcotest.(check bool) "one summary per script" true
    (List.length summaries = List.length prog.Core_ir.scripts);
  let damage = Schema.find schema "damage" in
  let writes_damage =
    List.filter
      (fun (s : Effect_race.summary) ->
        List.exists (fun (w : Effect_race.write) -> w.Effect_race.attr = damage) s.Effect_race.writes)
      summaries
  in
  Alcotest.(check bool) "someone writes damage" true (writes_damage <> [])

(* A const write-write race assembled through the library API: the
   typechecker never sees this program, the race detector must. *)
let const_conflict_program () : Core_ir.program =
  let schema = battle_schema () in
  let armor = Schema.find schema "armor" in
  let clause target = { Core_ir.target; updates = [ (armor, Expr.Const (Value.Int 1)) ] } in
  {
    Core_ir.schema;
    aggregates = [||];
    scripts =
      [
        { Core_ir.name = "sunder"; body = Core_ir.Effects [ clause (Core_ir.All Predicate.always_true) ] };
        { Core_ir.name = "rust"; body = Core_ir.Effects [ clause Core_ir.Self ] };
      ];
  }

let race_const_conflict () =
  let diags = Effect_race.check (const_conflict_program ()) in
  Alcotest.(check bool) "R001 per write site" true
    (List.length (List.filter (fun r -> r = "R001") (rules_of diags)) = 2);
  Alcotest.(check bool) "R002 write-write race" true (has_rule "R002" diags);
  let r2 = List.find (fun (d : Diagnostic.t) -> d.Diagnostic.rule = "R002") diags in
  Alcotest.(check bool) "R002 names both writers" true
    (contains ~needle:"sunder" r2.Diagnostic.message
    && contains ~needle:"rust" r2.Diagnostic.message);
  Alcotest.(check bool) "races are errors" true
    ((Diagnostic.count diags).Diagnostic.errors >= 3)

let race_pending_and_dead () =
  let schema = battle_schema () in
  let damage = Schema.find schema "damage" in
  let inaura = Schema.find schema "inaura" in
  let prog =
    {
      Core_ir.schema;
      aggregates = [||];
      scripts =
        [
          {
            Core_ir.name = "w";
            body =
              Core_ir.If
                ( Expr.Cmp (Expr.Gt, Expr.UAttr damage, Expr.Const (Value.Float 0.)),
                  Core_ir.Effects
                    [
                      {
                        Core_ir.target = Core_ir.Self;
                        updates =
                          [
                            (damage, Expr.Const (Value.Float 1.));
                            (inaura, Expr.Const (Value.Float 1.));
                          ];
                      };
                    ],
                  Core_ir.Skip );
          };
        ];
    }
  in
  let diags = Effect_race.check ~post_reads:[] prog in
  Alcotest.(check bool) "R003 pending read" true (has_rule "R003" diags);
  Alcotest.(check bool) "R004 dead inaura" true (has_rule "R004" diags);
  (* damage is read (by the script itself), so only inaura is dead *)
  let dead = List.filter (fun (d : Diagnostic.t) -> d.Diagnostic.rule = "R004") diags in
  Alcotest.(check int) "exactly one dead effect" 1 (List.length dead);
  Alcotest.(check bool) "the dead one is inaura" true
    (contains ~needle:"inaura" (List.hd dead).Diagnostic.message);
  (* post_reads consume inaura: R004 disappears *)
  let diags' = Effect_race.check ~post_reads:[ inaura ] prog in
  Alcotest.(check bool) "post-read silences R004" false (has_rule "R004" diags')

(* ------------------------------------------------------------------ *)
(* Plan validation *)

let plans_validate () =
  (* every optimizer output over the shipped scripts is shape-correct and
     ⊕-equivalent to its unrewritten translation *)
  let schema = battle_schema () in
  let check_source name source =
    let prog = Compile.compile ~consts:Scripts.constants ~schema source in
    match Plan_check.validate_program prog with
    | [] -> ()
    | ds ->
      Alcotest.failf "%s: validator rejected optimizer output: %s" name
        (String.concat "; " (List.map (fun d -> Diagnostic.to_string d) ds))
  in
  check_source "battle" Scripts.source;
  List.iter
    (fun path ->
      let ic = open_in_bin path in
      let src =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      check_source path src)
    example_files

let shape_rejects_broken () =
  let schema = battle_schema () in
  let arity = Schema.arity schema in
  let damage = Schema.find schema "damage" in
  let health = Schema.find schema "health" in
  (* reads a register nothing bound *)
  let unbound =
    Plan.Bind
      ( arity,
        Plan.Bind_expr (Expr.UAttr (arity + 5)),
        Plan.Act [ { Core_ir.target = Core_ir.Self; updates = [ (damage, Expr.UAttr arity) ] } ] )
  in
  let ds = Plan_check.validate_shape ~schema ~aggs:[||] ~script:"s" unbound in
  Alcotest.(check bool) "unbound register is V001" true (has_rule "V001" ds);
  (* effect on a const attribute *)
  let const_act =
    Plan.Act
      [ { Core_ir.target = Core_ir.Self; updates = [ (health, Expr.Const (Value.Float 1.)) ] } ]
  in
  let ds = Plan_check.validate_shape ~schema ~aggs:[||] ~script:"s" const_act in
  Alcotest.(check bool) "const effect is V001" true (has_rule "V001" ds);
  Alcotest.(check bool) "message names the attribute" true
    (List.exists (fun (d : Diagnostic.t) -> contains ~needle:"health" d.Diagnostic.message) ds);
  (* out-of-range aggregate instance *)
  let bad_agg = Plan.Bind (arity, Plan.Bind_agg 3, Plan.Nop) in
  let ds = Plan_check.validate_shape ~schema ~aggs:[||] ~script:"s" bad_agg in
  Alcotest.(check bool) "unknown instance is V001" true (has_rule "V001" ds);
  (* a well-formed plan passes *)
  let ok =
    Plan.Bind
      ( arity,
        Plan.Bind_expr (Expr.Const (Value.Float 2.)),
        Plan.Select
          ( Expr.Cmp (Expr.Gt, Expr.UAttr arity, Expr.Const (Value.Float 1.)),
            Plan.Act [ { Core_ir.target = Core_ir.Self; updates = [ (damage, Expr.UAttr arity) ] } ],
            Plan.Nop ) )
  in
  Alcotest.(check int) "clean plan has no findings" 0
    (List.length (Plan_check.validate_shape ~schema ~aggs:[||] ~script:"s" ok))

let rewrite_equivalence () =
  let schema = battle_schema () in
  let damage = Schema.find schema "damage" in
  let act = Plan.Act [ { Core_ir.target = Core_ir.Self; updates = [ (damage, Expr.Const (Value.Float 1.)) ] } ] in
  let cond = Expr.Cmp (Expr.Gt, Expr.UAttr (Schema.find schema "posx"), Expr.Const (Value.Float 0.)) in
  let original = Plan.Select (cond, act, Plan.Nop) in
  (* dropping the guarded act is caught *)
  let ds = Plan_check.validate_rewrite ~script:"s" ~original ~optimized:Plan.Nop () in
  Alcotest.(check (list string)) "dropped act is V002" [ "V002" ] (rules_of ds);
  (* constant-guard discharge is legal, matching the pruning rewrite *)
  let taut = Plan.Select (Expr.Const (Value.Bool true), act, Plan.Nop) in
  Alcotest.(check int) "tautological guard discharges" 0
    (List.length (Plan_check.validate_rewrite ~script:"s" ~original:taut ~optimized:act ()));
  let unsat = Plan.Select (Expr.Const (Value.Bool false), act, Plan.Nop) in
  Alcotest.(check int) "unsatisfiable guard prunes the act" 0
    (List.length (Plan_check.validate_rewrite ~script:"s" ~original:unsat ~optimized:Plan.Nop ()));
  (* but silently *changing* the guard is not equivalent *)
  let other = Plan.Select (Expr.Cmp (Expr.Lt, Expr.UAttr (Schema.find schema "posy"), Expr.Const (Value.Float 0.)), act, Plan.Nop) in
  Alcotest.(check bool) "guard change is V002" true
    (has_rule "V002" (Plan_check.validate_rewrite ~script:"s" ~original ~optimized:other ()))

(* ------------------------------------------------------------------ *)
(* Driver over shipped scripts and seeded fixtures *)

let shipped_scripts_clean () =
  List.iter
    (fun path ->
      let diags = analyze_file path in
      let c = Diagnostic.count diags in
      Alcotest.(check int) (path ^ ": errors") 0 c.Diagnostic.errors;
      Alcotest.(check int) (path ^ ": warnings") 0 c.Diagnostic.warnings)
    example_files;
  let schema = battle_schema () in
  match
    Driver.analyze_source ~consts:Scripts.constants ~post_reads:(post_reads schema) ~schema
      Scripts.source
  with
  | Error m -> Alcotest.failf "battle source: %s" m
  | Ok diags ->
    let c = Diagnostic.count diags in
    Alcotest.(check int) "battle: errors" 0 c.Diagnostic.errors;
    Alcotest.(check int) "battle: warnings" 0 c.Diagnostic.warnings

let fixtures_flagged () =
  let expect =
    [
      ("t001_unknown_attr", "T001", false);
      ("r001_const_write", "R001", false);
      ("r003_pending_read", "R003", false);
      ("r004_dead_effect", "R004", true);
      ("p001_naive_scan", "P001", false);
      ("p002_probe_residual", "P002", false);
      ("p003_unsweepable", "P003", false);
      ("p004_dead_let", "P004", false);
      ("p005_const_cond", "P005", false);
      ("p006_boxed_bind", "P006", false);
      ("s001_unbounded_read", "S001", false);
      ("s002_global_effect", "S002", false);
      ("s003_key_escape", "S003", false);
      ("n001_div_zero", "N001", false);
      ("n002_sqrt_neg", "N002", false);
      ("n003_subsumed_guard", "N003", false);
    ]
  in
  List.iter
    (fun (base, rule, no_post_reads) ->
      let path = "../examples/lint_fixtures/" ^ base ^ ".sgl" in
      let diags = analyze_file ~no_post_reads path in
      if not (has_rule rule diags) then
        Alcotest.failf "%s: expected %s, got [%s]" path rule (String.concat "; " (rules_of diags)))
    expect

(* P006 fires on what the fused backend actually compiles: a bind the
   kernel can load from typed columns stays silent, one it cannot is
   reported.  The fixture covers the firing side; this pins the clean
   side so the lint cannot degenerate into flagging every bind. *)
let p006_tracks_specialization () =
  let schema = battle_schema () in
  let analyze src =
    match
      Driver.analyze_source ~consts:Scripts.constants ~post_reads:(post_reads schema) ~schema src
    with
    | Error m -> Alcotest.failf "parse: %s" m
    | Ok diags -> diags
  in
  let clean =
    "action Go(u, dx) { on self { movevect_x <- dx; } }\n\
     script glider(u) { let dx = (0.0 - u.posx) * 0.5; perform Go(u, dx); }"
  in
  Alcotest.(check bool) "float-guaranteed bind loads columns (no P006)" false
    (has_rule "P006" (analyze clean));
  let boxed =
    "action Go(u, dx) { on self { movevect_x <- dx; } }\n\
     script jitter(u) { let dx = random(1) mod 3 - 1; perform Go(u, dx); }"
  in
  Alcotest.(check bool) "random bind stays boxed (P006)" true (has_rule "P006" (analyze boxed))

(* ------------------------------------------------------------------ *)
(* Pretty-printer round trip: parse . print = identity up to Core IR *)

let core_fingerprint ~schema ~consts (prog : Ast.program) : string =
  let core = Compile.compile_ast ~consts ~schema prog in
  let buf = Buffer.create 1024 in
  Array.iter
    (fun agg -> Buffer.add_string buf (Fmt.str "%a@." Aggregate.pp agg))
    core.Core_ir.aggregates;
  List.iter
    (fun (s : Core_ir.script) ->
      Buffer.add_string buf (Fmt.str "script %s:@.%a@." s.Core_ir.name Core_ir.pp s.Core_ir.body))
    core.Core_ir.scripts;
  Buffer.contents buf

let roundtrip_source name source =
  let schema = battle_schema () in
  let consts = Scripts.constants in
  let prog = Compile.parse source in
  let printed = Pretty.program_to_string prog in
  let reparsed =
    try Compile.parse printed
    with Compile.Compile_error e ->
      Alcotest.failf "%s: pretty output does not parse: %s@.%s" name (Compile.error_to_string e)
        printed
  in
  Alcotest.(check string)
    (name ^ ": same core IR after round trip")
    (core_fingerprint ~schema ~consts prog)
    (core_fingerprint ~schema ~consts reparsed)

let pretty_roundtrip () =
  roundtrip_source "battle" Scripts.source;
  List.iter
    (fun path ->
      let ic = open_in_bin path in
      let src =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      roundtrip_source path src)
    example_files

(* ------------------------------------------------------------------ *)
(* The differential pin: a race-clean verdict is what licenses the
   bit-identical-across-evaluators guarantee; a seeded const conflict is
   flagged statically, before any divergence could be observed. *)

let certified_differential () =
  let schema = battle_schema () in
  let prog = Scripts.compile () in
  let diags = Effect_race.check ~post_reads:(post_reads schema) prog in
  Alcotest.(check int) "battle program is race-certified" 0
    ((Diagnostic.count diags).Diagnostic.errors);
  Test_parallel.differential ~ticks:25 ~make_sim:(fun evaluator ->
      let scenario = Scenario.setup ~density:0.02 ~per_side:(Scenario.standard_mix 24) () in
      Scenario.simulation ~seed:23 ~evaluator scenario)

let conflict_flagged_statically () =
  (* the same check certifying the battle program rejects the seeded
     conflict — the lint gates before parallel execution, not after *)
  let diags = Effect_race.check (const_conflict_program ()) in
  Alcotest.(check bool) "const conflict is rejected" true
    ((Diagnostic.count diags).Diagnostic.errors > 0);
  Alcotest.(check bool) "by the write-write race rule" true (has_rule "R002" diags)

let suite =
  [
    ( "analysis",
      [
        Alcotest.test_case "rule catalogue" `Quick catalogue;
        Alcotest.test_case "diagnostic rendering and JSON" `Quick rendering;
        Alcotest.test_case "typecheck collects all diagnostics" `Quick collect_all;
        Alcotest.test_case "race summaries" `Quick race_summaries;
        Alcotest.test_case "const write-write race (R001/R002)" `Quick race_const_conflict;
        Alcotest.test_case "pending read and dead effect (R003/R004)" `Quick race_pending_and_dead;
        Alcotest.test_case "optimizer outputs validate" `Quick plans_validate;
        Alcotest.test_case "shape validator rejects broken plans (V001)" `Quick shape_rejects_broken;
        Alcotest.test_case "rewrite equivalence (V002)" `Quick rewrite_equivalence;
        Alcotest.test_case "shipped scripts lint clean" `Quick shipped_scripts_clean;
        Alcotest.test_case "seeded fixtures flagged by rule id" `Quick fixtures_flagged;
        Alcotest.test_case "P006 tracks kernel specialization" `Quick p006_tracks_specialization;
        Alcotest.test_case "pretty round trip preserves core IR" `Quick pretty_roundtrip;
        Alcotest.test_case "race-certified differential pin" `Slow certified_differential;
        Alcotest.test_case "const conflict flagged before divergence" `Quick conflict_flagged_statically;
      ] );
  ]
