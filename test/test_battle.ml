(* Tests for the battle case study: the d20 mechanics, the compiled SGL
   program, scenario construction, and — the system's headline integration
   property — bit-identical battles under the naive and indexed engines. *)

open Sgl_relalg
open Sgl_engine
open Sgl_battle

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* d20 mechanics *)

let test_d20_profiles () =
  Alcotest.(check bool) "knights are armored" true
    (D20.knight.D20.armor > D20.archer.D20.armor);
  Alcotest.(check bool) "knights hit harder" true
    (D20.knight.D20.damage_die > D20.archer.D20.damage_die);
  Alcotest.(check bool) "archers shoot farther" true
    (D20.archer.D20.attack_range > D20.knight.D20.attack_range);
  Alcotest.(check bool) "healers do not attack" true (D20.healer.D20.damage_die = 0);
  Alcotest.(check int) "class ids round-trip" 1 (D20.class_id (D20.class_of_id 1))

let test_d20_armor_class () = Alcotest.(check int) "AC" 14 (D20.armor_class 4)

let d20_attack_matches_script_formula =
  (* The OCaml rule and the SGL encoding must be the same function. *)
  QCheck.Test.make ~name:"attack damage = script formula" ~count:500
    QCheck.(pair (pair small_nat small_nat) (int_range 0 8))
    (fun ((roll_hit, roll_damage), target_armor) ->
      let p = D20.knight in
      let ocaml_dmg =
        D20.attack_damage ~attack_bonus:p.D20.attack_bonus ~damage_die:p.D20.damage_die
          ~damage_bonus:p.D20.damage_bonus ~target_armor ~roll_hit ~roll_damage
      in
      (* the arithmetic encoding used in MeleeStrike *)
      let hit = max 0 (min 1 ((roll_hit mod 20) + 2 + p.D20.attack_bonus - (10 + target_armor))) in
      let dmg = max 1 ((roll_damage mod p.D20.damage_die) + 1 + p.D20.damage_bonus - (target_armor / 2)) in
      ocaml_dmg = hit * dmg)

(* ------------------------------------------------------------------ *)
(* The compiled battle program *)

let test_battle_program_compiles () =
  let prog = Scripts.compile () in
  let names = List.map (fun (s : Sgl_lang.Core_ir.script) -> s.Sgl_lang.Core_ir.name) prog.Sgl_lang.Core_ir.scripts in
  List.iter
    (fun required ->
      Alcotest.(check bool) (required ^ " present") true (List.mem required names))
    [ "knight"; "archer"; "healer" ];
  (* roughly ten aggregate queries per unit per tick (Section 6) *)
  Alcotest.(check bool) "at least 12 aggregate instances" true
    (Array.length prog.Sgl_lang.Core_ir.aggregates >= 12)

let test_battle_strategies () =
  (* The instance table must exercise every index family from Section 5.3. *)
  let prog = Scripts.compile () in
  let schema = prog.Sgl_lang.Core_ir.schema in
  let names =
    Array.to_list
      (Array.map
         (fun agg -> Sgl_qopt.Agg_plan.strategy_name (Sgl_qopt.Agg_plan.analyze schema agg))
         prog.Sgl_lang.Core_ir.aggregates)
  in
  let count x = List.length (List.filter (( = ) x) names) in
  Alcotest.(check bool) "divisible indexes" true (count "indexed" >= 5);
  Alcotest.(check bool) "sweep-line argmins" true (count "indexed+sweep" >= 2);
  Alcotest.(check bool) "nothing forced naive" true (count "naive" = 0)

(* ------------------------------------------------------------------ *)
(* Scenario construction *)

let test_scenario_density () =
  let scenario = Scenario.setup ~density:0.01 ~per_side:(Scenario.standard_mix 100) () in
  let n = Array.length scenario.Scenario.units in
  Alcotest.(check int) "two armies" 200 n;
  let cells = scenario.Scenario.width * scenario.Scenario.height in
  let actual = float_of_int n /. float_of_int cells in
  Alcotest.(check bool) "density within 30% of target" true
    (actual > 0.007 && actual < 0.013)

let test_scenario_unique_cells_and_sides () =
  let scenario = Scenario.setup ~density:0.02 ~per_side:(Scenario.standard_mix 60) () in
  let s = scenario.Scenario.schema in
  let seen = Hashtbl.create 128 in
  Array.iter
    (fun u ->
      let p = Unit_types.pos_of s u in
      Alcotest.(check bool) "unique cell" false (Hashtbl.mem seen p);
      Hashtbl.add seen p ();
      let x, _ = p in
      Alcotest.(check bool) "in bounds" true (x >= 0. && x < float_of_int scenario.Scenario.width);
      (* player 0 deploys left of player 1 *)
      let mid = float_of_int scenario.Scenario.width /. 2. in
      if Unit_types.player_of s u = 0 then
        Alcotest.(check bool) "player 0 on the left" true (x < mid)
      else Alcotest.(check bool) "player 1 on the right" true (x > mid -. 1.))
    scenario.Scenario.units

let test_standard_mix () =
  let m = Scenario.standard_mix 100 in
  Alcotest.(check int) "adds up" 100 (Scenario.army_size m);
  Alcotest.(check bool) "knight-heavy" true (m.Scenario.knights >= m.Scenario.archers);
  Alcotest.(check bool) "healers exist" true (m.Scenario.healers > 0)

(* ------------------------------------------------------------------ *)
(* Integration: naive engine = indexed engine, tick by tick *)

let sorted_units sim =
  let units = Array.copy (Simulation.units sim) in
  Array.sort compare units;
  units

let check_engines_agree ~n ~ticks ~density =
  let scenario = Scenario.setup ~density ~per_side:(Scenario.standard_mix (n / 2)) () in
  let sim_n = Scenario.simulation ~evaluator:Simulation.Naive scenario in
  let sim_i = Scenario.simulation ~evaluator:Simulation.Indexed scenario in
  for t = 1 to ticks do
    Simulation.step sim_n;
    Simulation.step sim_i;
    if sorted_units sim_n <> sorted_units sim_i then
      Alcotest.failf "engines diverged at tick %d (n=%d)" t n
  done

let test_engines_agree_small () = check_engines_agree ~n:40 ~ticks:25 ~density:0.02
let test_engines_agree_medium () = check_engines_agree ~n:150 ~ticks:10 ~density:0.01
let test_engines_agree_dense () = check_engines_agree ~n:60 ~ticks:15 ~density:0.08

let engines_agree_property =
  QCheck.Test.make ~name:"engines agree on random army sizes" ~count:8
    QCheck.(int_range 10 60)
    (fun n ->
      check_engines_agree ~n:(2 * n) ~ticks:6 ~density:0.02;
      true)

(* The optimizer must not change behaviour either. *)
let test_optimizer_preserves_behaviour () =
  let scenario = Scenario.setup ~density:0.02 ~per_side:(Scenario.standard_mix 25) () in
  let sim_opt = Scenario.simulation ~optimize:true ~evaluator:Simulation.Indexed scenario in
  let sim_raw = Scenario.simulation ~optimize:false ~evaluator:Simulation.Indexed scenario in
  for t = 1 to 20 do
    Simulation.step sim_opt;
    Simulation.step sim_raw;
    if sorted_units sim_opt <> sorted_units sim_raw then
      Alcotest.failf "optimizer changed behaviour at tick %d" t
  done

(* Battles must actually fight: damage flows, healing happens. *)
let test_battle_is_lively () =
  let scenario = Scenario.setup ~density:0.03 ~per_side:(Scenario.standard_mix 30) () in
  let sim = Scenario.simulation ~evaluator:Simulation.Indexed scenario in
  let s = Simulation.schema sim in
  Simulation.run sim ~ticks:40;
  let wounded =
    Array.exists
      (fun u ->
        Unit_types.health_of s u
        < Value.to_float (Tuple.get u (Schema.find s "max_health")))
      (Simulation.units sim)
  in
  let r = Simulation.report sim in
  Alcotest.(check bool) "someone is wounded" true wounded;
  Alcotest.(check bool) "someone died" true (r.Simulation.deaths > 0)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "battle.d20",
      [
        tc "profiles" `Quick test_d20_profiles;
        tc "armor class" `Quick test_d20_armor_class;
        qtest d20_attack_matches_script_formula;
      ] );
    ( "battle.program",
      [
        tc "compiles with all scripts" `Quick test_battle_program_compiles;
        tc "exercises every index family" `Quick test_battle_strategies;
      ] );
    ( "battle.scenario",
      [
        tc "density" `Quick test_scenario_density;
        tc "unique cells and sides" `Quick test_scenario_unique_cells_and_sides;
        tc "standard mix" `Quick test_standard_mix;
      ] );
    ( "battle.integration",
      [
        tc "engines agree (small, 25 ticks)" `Quick test_engines_agree_small;
        tc "engines agree (medium)" `Quick test_engines_agree_medium;
        tc "engines agree (dense)" `Quick test_engines_agree_dense;
        qtest engines_agree_property;
        tc "optimizer preserves behaviour" `Quick test_optimizer_preserves_behaviour;
        tc "battle is lively" `Quick test_battle_is_lively;
      ] );
  ]
