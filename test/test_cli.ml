(* Integration tests for the command-line tools, run against the built
   executables (declared as test dependencies in test/dune). *)

let bin name = Filename.concat (Filename.concat ".." "bin") (name ^ ".exe")

(* Run a command, capturing stdout+stderr and the exit code. *)
let run_command cmd =
  let tmp = Filename.temp_file "sgl_cli" ".out" in
  let code = Sys.command (Printf.sprintf "%s > %s 2>&1" cmd tmp) in
  let ic = open_in tmp in
  let n = in_channel_length ic in
  let out = really_input_string ic n in
  close_in ic;
  Sys.remove tmp;
  (code, out)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let write_script path source =
  let oc = open_out path in
  output_string oc source;
  close_out oc

let good_script =
  {|
aggregate C(u) { count(*) where e.player <> u.player }
action A(u) { on self { damage <- 1; } }
script main(u) { let c = C(u); if c > 0 then { perform A(u); } }
|}

let bad_script = "script main(u) { let x = unknown_thing + 1; skip; }"

let test_sgl_check_accepts () =
  let path = Filename.temp_file "good" ".sgl" in
  write_script path good_script;
  let code, out = run_command (Printf.sprintf "%s %s" (bin "sgl_check") path) in
  Sys.remove path;
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "reports OK" true (contains ~needle:"OK" out);
  Alcotest.(check bool) "counts instances" true (contains ~needle:"1 aggregate instances" out)

let test_sgl_check_rejects () =
  let path = Filename.temp_file "bad" ".sgl" in
  write_script path bad_script;
  let code, out = run_command (Printf.sprintf "%s %s" (bin "sgl_check") path) in
  Sys.remove path;
  Alcotest.(check int) "exit 1" 1 code;
  Alcotest.(check bool) "names the unknown" true (contains ~needle:"unknown_thing" out)

let test_sgl_check_explain () =
  let path = Filename.temp_file "good" ".sgl" in
  write_script path good_script;
  let code, out = run_command (Printf.sprintf "%s %s --explain" (bin "sgl_check") path) in
  Sys.remove path;
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "shows instances" true (contains ~needle:"agg#0" out);
  Alcotest.(check bool) "shows plans" true (contains ~needle:"script main" out)

let test_sgl_check_dump_ast_reparses () =
  let path = Filename.temp_file "good" ".sgl" in
  write_script path good_script;
  let code, out = run_command (Printf.sprintf "%s %s --dump-ast" (bin "sgl_check") path) in
  Sys.remove path;
  Alcotest.(check int) "exit 0" 0 code;
  (* the dumped AST must itself be valid SGL *)
  ignore (Sgl_lang.Parser.parse_string out)

let test_sgl_check_lint_clean () =
  let code, out =
    run_command
      (Printf.sprintf "%s ../examples/scripts/plague.sgl --lint --werror" (bin "sgl_check"))
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "summary line" true (contains ~needle:"0 error(s)" out)

let test_sgl_check_lint_flags_fixture () =
  let code, out =
    run_command
      (Printf.sprintf "%s ../examples/lint_fixtures/r003_pending_read.sgl --lint --werror"
         (bin "sgl_check"))
  in
  Alcotest.(check int) "warnings gate under --werror" 1 code;
  Alcotest.(check bool) "names the rule" true (contains ~needle:"R003" out);
  (* without --werror the warning is reported but does not gate *)
  let code, _ =
    run_command
      (Printf.sprintf "%s ../examples/lint_fixtures/r003_pending_read.sgl --lint" (bin "sgl_check"))
  in
  Alcotest.(check int) "warning alone exits 0" 0 code

let test_sgl_check_lint_json () =
  let code, out =
    run_command
      (Printf.sprintf "%s ../examples/lint_fixtures/p004_dead_let.sgl --lint-json" (bin "sgl_check"))
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "JSON carries the rule" true (contains ~needle:"\"rule\": \"P004\"" out);
  Alcotest.(check bool) "JSON carries the position" true (contains ~needle:"\"line\":" out)

let test_battle_sim_runs () =
  let code, out =
    run_command (Printf.sprintf "%s --units 60 --ticks 5 --evaluator indexed" (bin "battle_sim"))
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "reports ticks" true (contains ~needle:"ticks=5" out);
  Alcotest.(check bool) "wall clock" true (contains ~needle:"wall clock" out)

let test_battle_sim_naive_matches () =
  let run ev =
    let _, out =
      run_command
        (Printf.sprintf "%s --units 40 --ticks 8 --evaluator %s --seed 9" (bin "battle_sim") ev)
    in
    (* the death count is state-dependent: equal counts mean equal battles *)
    out
  in
  (* extract the digits following "needle=" *)
  let pick needle out =
    let pat = needle ^ "=" in
    let pl = String.length pat and hl = String.length out in
    let rec find i = if i + pl > hl then None else if String.sub out i pl = pat then Some (i + pl) else find (i + 1) in
    match find 0 with
    | None -> "?"
    | Some start ->
      let stop = ref start in
      while !stop < hl && out.[!stop] >= '0' && out.[!stop] <= '9' do incr stop done;
      String.sub out start (!stop - start)
  in
  let a = run "naive" and b = run "indexed" in
  Alcotest.(check string) "same deaths" (pick "deaths" a) (pick "deaths" b)

let test_battle_sim_bad_evaluator () =
  let code, _ = run_command (Printf.sprintf "%s --evaluator warp9 --ticks 1" (bin "battle_sim")) in
  Alcotest.(check bool) "fails" true (code <> 0)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "cli.sgl_check",
      [
        tc "accepts a valid script" `Quick test_sgl_check_accepts;
        tc "rejects and names errors" `Quick test_sgl_check_rejects;
        tc "--explain shows plans" `Quick test_sgl_check_explain;
        tc "--dump-ast emits valid SGL" `Quick test_sgl_check_dump_ast_reparses;
        tc "--lint passes clean scripts" `Quick test_sgl_check_lint_clean;
        tc "--lint flags a fixture, --werror gates" `Quick test_sgl_check_lint_flags_fixture;
        tc "--lint-json emits rule and position" `Quick test_sgl_check_lint_json;
      ] );
    ( "cli.battle_sim",
      [
        tc "runs and reports" `Quick test_battle_sim_runs;
        tc "naive and indexed battles match" `Quick test_battle_sim_naive_matches;
        tc "bad evaluator rejected" `Quick test_battle_sim_bad_evaluator;
      ] );
  ]
