(* The columnar store (struct-of-arrays) behind [Relation]: the
   materializing view must reproduce every row bit-identically — same
   [Value.t] constructor tags, extensions and short rows included — and
   the copy-on-write [refresh] must land exactly on the new row array
   while keeping clean columns physically shared. *)

open Sgl_util
open Sgl_relalg

let qtest = QCheck_alcotest.to_alcotest

(* Tag-strict equality: [Value.equal] identifies [Int 2] with [Float 2.],
   but the store must preserve the exact constructor (the codec encodes
   tags, so they are digest-relevant). *)
let value_strict_eq (a : Value.t) (b : Value.t) : bool =
  match (a, b) with
  | Value.Int x, Value.Int y -> x = y
  | Value.Float x, Value.Float y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Value.Bool x, Value.Bool y -> x = y
  | Value.Vec u, Value.Vec v ->
    Int64.equal (Int64.bits_of_float u.Vec2.x) (Int64.bits_of_float v.Vec2.x)
    && Int64.equal (Int64.bits_of_float u.Vec2.y) (Int64.bits_of_float v.Vec2.y)
  | (Value.Int _ | Value.Float _ | Value.Bool _ | Value.Vec _), _ -> false

let row_strict_eq (a : Tuple.t) (b : Tuple.t) : bool =
  Array.length a = Array.length b && Array.for_all2 value_strict_eq a b

let rows_strict_eq (a : Tuple.t array) (b : Tuple.t array) : bool =
  Array.length a = Array.length b && Array.for_all2 row_strict_eq a b

(* ------------------------------------------------------------------ *)
(* Random schemas and rows: every type, plus mismatched tags (ints in
   float columns and vice versa — [Value.equal]-compatible but
   tag-distinct, exactly the promotion hazard), let-extension overflow
   and short (projected) rows. *)

let gen_ty : Value.ty QCheck.Gen.t =
  QCheck.Gen.oneofl [ Value.TInt; Value.TFloat; Value.TBool; Value.TVec ]

let gen_schema : Schema.t QCheck.Gen.t =
  QCheck.Gen.(
    let* extra = list_size (int_range 0 5) gen_ty in
    let attrs =
      Schema.attr "key" Value.TInt
      :: List.mapi (fun i ty -> Schema.attr (Printf.sprintf "a%d" i) ty) extra
    in
    return (Schema.create attrs))

(* A value for a slot of declared type [ty]; sometimes deliberately
   mismatched in a way the engine actually produces (numeric widening). *)
let gen_value_for (ty : Value.ty) : Value.t QCheck.Gen.t =
  QCheck.Gen.(
    let int_v = map (fun i -> Value.Int i) small_signed_int in
    let float_v = map (fun f -> Value.Float f) (float_range (-1e6) 1e6) in
    let bool_v = map (fun b -> Value.Bool b) bool in
    let vec_v =
      map2 (fun x y -> Value.Vec (Vec2.make x y)) (float_range (-100.) 100.)
        (float_range (-100.) 100.)
    in
    match ty with
    | Value.TInt -> frequency [ (4, int_v); (1, float_v) ]
    | Value.TFloat -> frequency [ (4, float_v); (1, int_v) ]
    | Value.TBool -> frequency [ (4, bool_v); (1, int_v) ]
    | Value.TVec -> vec_v)

(* Tag-exact values only: needed when a [Delta.of_tuples] ground truth
   must coincide with strict equality ([Value.equal] ignores tags). *)
let gen_exact_value_for (ty : Value.ty) : Value.t QCheck.Gen.t =
  QCheck.Gen.(
    match ty with
    | Value.TInt -> map (fun i -> Value.Int i) small_signed_int
    | Value.TFloat -> map (fun f -> Value.Float f) (float_range (-1e6) 1e6)
    | Value.TBool -> map (fun b -> Value.Bool b) bool
    | Value.TVec ->
      map2 (fun x y -> Value.Vec (Vec2.make x y)) (float_range (-100.) 100.)
        (float_range (-100.) 100.))

let gen_row (schema : Schema.t) : Tuple.t QCheck.Gen.t =
  QCheck.Gen.(
    let arity = Schema.arity schema in
    let slot j = gen_value_for (Schema.ty_at schema j) in
    let* shape = int_range 0 9 in
    let* ext = list_size (int_range 1 3) (gen_value_for Value.TFloat) in
    let full = List.init arity slot in
    let* base = flatten_l full in
    match shape with
    | 0 | 1 ->
      (* let-extension overflow *)
      return (Array.of_list (base @ ext))
    | 2 when arity > 1 ->
      (* short (projected) row *)
      let* keep = int_range 1 (arity - 1) in
      return (Array.of_list (List.filteri (fun j _ -> j < keep) base))
    | _ -> return (Array.of_list base))

let gen_store_input : (Schema.t * Tuple.t array) QCheck.Gen.t =
  QCheck.Gen.(
    let* schema = gen_schema in
    let* rows = array_size (int_range 0 60) (gen_row schema) in
    return (schema, rows))

let law_roundtrip =
  QCheck.Test.make ~name:"of_tuples/to_array round-trips bit-identically" ~count:500
    (QCheck.make gen_store_input) (fun (schema, rows) ->
      let store = Colstore.of_tuples schema rows in
      rows_strict_eq rows (Colstore.to_array store)
      && Colstore.length store = Array.length rows
      && Array.for_all2
           (fun row i -> Colstore.row_len store i = Array.length row)
           rows
           (Array.init (Array.length rows) Fun.id))

let law_get =
  QCheck.Test.make ~name:"get agrees with materialize on every slot" ~count:300
    (QCheck.make gen_store_input) (fun (schema, rows) ->
      let store = Colstore.of_tuples schema rows in
      Array.for_all
        (fun i ->
          let m = Colstore.materialize store i in
          Array.for_all
            (fun j -> value_strict_eq m.(j) (Colstore.get store i j))
            (Array.init (Array.length m) Fun.id))
        (Array.init (Array.length rows) Fun.id))

let law_float_reader =
  QCheck.Test.make ~name:"float_reader agrees with Value.to_float" ~count:300
    (QCheck.make gen_store_input) (fun (schema, rows) ->
      let store = Colstore.of_tuples schema rows in
      List.for_all
        (fun j ->
          match Colstore.float_reader store j with
          | None -> true
          | Some read ->
            Array.for_all
              (fun i ->
                (* short rows leave the slot unspecified — skip those *)
                Array.length rows.(i) <= j
                ||
                let direct = read i in
                let boxed = Value.to_float (Colstore.get store i j) in
                Int64.equal (Int64.bits_of_float direct) (Int64.bits_of_float boxed))
              (Array.init (Array.length rows) Fun.id))
        (List.init (Schema.arity schema) Fun.id))

(* ------------------------------------------------------------------ *)
(* COW refresh: rectangular rows, a mutation pass recorded in a delta.
   The refreshed store must land exactly on the new rows; clean columns
   must keep their physical arrays. *)

let gen_rect_input : (Schema.t * Tuple.t array) QCheck.Gen.t =
  QCheck.Gen.(
    let* schema = gen_schema in
    let arity = Schema.arity schema in
    let full_row =
      let slot j = gen_exact_value_for (Schema.ty_at schema j) in
      map Array.of_list (flatten_l (List.init arity slot))
    in
    let* rows = array_size (int_range 1 40) full_row in
    (* keys must be unique for a meaningful per-key delta *)
    Array.iteri (fun i row -> row.(0) <- Value.Int i) rows;
    return (schema, rows))

let law_refresh =
  QCheck.Test.make ~name:"refresh with the ground-truth delta lands on the new rows" ~count:300
    (QCheck.make
       QCheck.Gen.(
         let* schema, rows = gen_rect_input in
         let arity = Schema.arity schema in
         let* after =
           array_size (return (Array.length rows))
             (map Array.of_list
                (flatten_l (List.init arity (fun j -> gen_exact_value_for (Schema.ty_at schema j)))))
         in
         (* mutate a random subset of attrs, keep keys fixed *)
         let* dirty = list_size (int_range 0 arity) (int_range 1 (max 1 (arity - 1))) in
         let after =
           Array.mapi
             (fun i row ->
               let out = Tuple.copy rows.(i) in
               List.iter (fun j -> if j < arity then out.(j) <- row.(j)) dirty;
               out)
             after
         in
         return (schema, rows, after)))
    (fun (schema, rows, after) ->
      let store = Colstore.of_tuples schema rows in
      let delta = Delta.of_tuples ~schema ~before:rows ~after in
      let before_cols = List.init (Schema.arity schema) (Colstore.col store) in
      Colstore.refresh ~delta store after;
      rows_strict_eq after (Colstore.to_array store)
      && ((not (Colstore.rectangular store)) || Delta.structural delta
         || List.for_all2
              (fun j col0 ->
                Delta.dirty_attr delta j
                ||
                (* clean column: physically the same representation *)
                match (col0, Colstore.col store j) with
                | Colstore.Floats a, Colstore.Floats b -> a == b
                | Colstore.Ints a, Colstore.Ints b -> a == b
                | Colstore.Bools a, Colstore.Bools b -> a == b
                | Colstore.Boxed a, Colstore.Boxed b -> a == b
                | _ -> false)
              (List.init (Schema.arity schema) Fun.id)
              before_cols))

let test_refresh_shares_clean_columns () =
  let schema =
    Schema.create
      [ Schema.attr "key" Value.TInt; Schema.attr "x" Value.TFloat; Schema.attr "hp" Value.TInt ]
  in
  let rows =
    Array.init 32 (fun i -> [| Value.Int i; Value.Float (float_of_int i *. 0.5); Value.Int 100 |])
  in
  let store = Colstore.of_tuples schema rows in
  let x0 = Colstore.col store 1 and hp0 = Colstore.col store 2 in
  (* dirty only "x" *)
  let after =
    Array.map (fun r -> [| r.(0); Value.Float (Value.to_float r.(1) +. 1.); r.(2) |]) rows
  in
  let delta = Delta.create schema in
  Array.iteri (fun i _ -> Delta.record delta ~attr:1 ~key:i) rows;
  Colstore.refresh ~delta store after;
  Alcotest.(check bool) "lands on after" true (rows_strict_eq after (Colstore.to_array store));
  (match (hp0, Colstore.col store 2) with
  | Colstore.Ints a, Colstore.Ints b -> Alcotest.(check bool) "hp column shared" true (a == b)
  | _ -> Alcotest.fail "hp column not int-typed");
  (match (x0, Colstore.col store 1) with
  | Colstore.Floats a, Colstore.Floats b ->
    Alcotest.(check bool) "x column copied" true (a != b);
    (* the old array still holds the old tick's values for captured readers *)
    Alcotest.(check (float 0.) ) "old array untouched" 0.5 a.(1)
  | _ -> Alcotest.fail "x column not float-typed")

(* ------------------------------------------------------------------ *)
(* Relation view: map/filter preserve extension slots (satellite fix). *)

let test_relation_preserves_extensions () =
  let schema = Schema.create [ Schema.attr "key" Value.TInt; Schema.attr "x" Value.TFloat ] in
  let r = Relation.create schema in
  Relation.add r [| Value.Int 0; Value.Float 1.; Value.Float 10. |];
  Relation.add r [| Value.Int 1; Value.Float 2.; Value.Float 20.; Value.Bool true |];
  let mapped = Relation.map_rows (fun row -> row) r in
  Alcotest.(check int) "mapped ext slot count" 4 (Array.length (Relation.row mapped 1));
  Alcotest.(check bool) "mapped rows identical" true
    (rows_strict_eq (Relation.to_array r) (Relation.to_array mapped));
  let filtered = Relation.filter_rows (fun row -> Value.to_int row.(0) = 1 && Array.length row = 4) r in
  Alcotest.(check int) "filtered keeps the extended row" 1 (Relation.cardinality filtered);
  Alcotest.(check bool) "filtered row bit-identical" true
    (row_strict_eq (Relation.row r 1) (Relation.row filtered 0))

(* ------------------------------------------------------------------ *)
(* 100k-unit population smoke test: building the store, column scans and
   the materializing view all behave at the sharding-target scale. *)

let test_100k_population () =
  let schema =
    Schema.create
      [
        Schema.attr "key" Value.TInt;
        Schema.attr "posx" Value.TFloat;
        Schema.attr "posy" Value.TFloat;
        Schema.attr "health" Value.TInt;
        Schema.attr "alive" Value.TBool;
      ]
  in
  let n = 100_000 in
  let rows =
    Array.init n (fun i ->
        [|
          Value.Int i;
          Value.Float (float_of_int (i mod 317));
          Value.Float (float_of_int (i mod 119));
          Value.Int (50 + (i mod 50));
          Value.Bool (i mod 7 <> 0);
        |])
  in
  let store = Colstore.of_tuples schema rows in
  Alcotest.(check int) "length" n (Colstore.length store);
  Alcotest.(check bool) "rectangular" true (Colstore.rectangular store);
  (* contiguous column scan equals the boxed sum *)
  let read = Option.get (Colstore.float_reader store 1) in
  let sum = ref 0. in
  for i = 0 to n - 1 do
    sum := !sum +. read i
  done;
  let boxed_sum = ref 0. in
  Array.iter (fun row -> boxed_sum := !boxed_sum +. Value.to_float row.(1)) rows;
  Alcotest.(check (float 0.)) "column sum" !boxed_sum !sum;
  (* spot-check the materializing view *)
  List.iter
    (fun i -> Alcotest.(check bool) "row" true (row_strict_eq rows.(i) (Colstore.materialize store i)))
    [ 0; 1; 4_999; 77_777; n - 1 ]

(* ------------------------------------------------------------------ *)
(* Checkpoint compatibility: a version-1 (row-major UNIT) file must load
   to the same state the version-2 columnar writer round-trips. *)

module Codec = Sgl_persist.Codec
module Checkpoint = Sgl_persist.Checkpoint

let encode_v1 ~schema (st : Checkpoint.state) : string =
  let b = Buffer.create 4096 in
  Codec.write_header b ~magic:"SGLCKPT\x01" ~version:1;
  let section tag fill =
    let w = Codec.W.create () in
    fill w;
    Codec.write_section b ~tag (Codec.W.contents w)
  in
  section "META" (fun w ->
      Codec.W.int w st.Checkpoint.tick;
      Codec.W.int w st.Checkpoint.seed;
      Codec.W.int w st.Checkpoint.cache_epoch;
      Codec.W.u32 w (Array.length st.Checkpoint.units));
  section "SCHM" (fun w -> Codec.W.schema w schema);
  section "UNIT" (fun w ->
      Codec.W.u32 w (Array.length st.Checkpoint.units);
      Array.iter (Codec.W.tuple w) st.Checkpoint.units);
  section "QUAR" (fun w ->
      Codec.W.u16 w (List.length st.Checkpoint.quarantined);
      List.iter (Codec.W.str w) st.Checkpoint.quarantined);
  section "CNTR" (fun w ->
      Codec.W.u16 w (List.length st.Checkpoint.counters);
      List.iter
        (fun (name, v) ->
          Codec.W.str w name;
          Codec.W.int w v)
        st.Checkpoint.counters);
  section "DEGR" (fun w ->
      Codec.W.u32 w (List.length st.Checkpoint.degradations);
      List.iter
        (fun (tick, from_, to_) ->
          Codec.W.int w tick;
          Codec.W.str w from_;
          Codec.W.str w to_)
        st.Checkpoint.degradations);
  Codec.write_section b ~tag:Codec.end_tag "";
  Buffer.contents b

let test_checkpoint_v1_compat () =
  let schema =
    Schema.create
      [ Schema.attr "key" Value.TInt; Schema.attr "x" Value.TFloat; Schema.attr "up" Value.TBool ]
  in
  let units =
    Array.init 64 (fun i ->
        (* mixed tags in the float column: forces a boxed column in v2 *)
        let x = if i mod 9 = 0 then Value.Int i else Value.Float (float_of_int i *. 1.5) in
        [| Value.Int i; x; Value.Bool (i mod 2 = 0) |])
  in
  let st =
    {
      Checkpoint.tick = 42;
      seed = 7;
      cache_epoch = 3;
      units;
      quarantined = [ "healer" ];
      counters = [ ("sim.deaths", 5) ];
      degradations = [ (17, "parallel:4", "indexed") ];
    }
  in
  let dir = Filename.temp_file "sgl_ckpt_v1" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      (* v2 writer round-trips *)
      let p2 = Checkpoint.save ~dir ~fsync:false ~schema st in
      let got2 = Checkpoint.load ~schema p2 in
      Alcotest.(check bool) "v2 units round-trip" true (rows_strict_eq units got2.Checkpoint.units);
      Alcotest.(check int) "v2 tick" 42 got2.Checkpoint.tick;
      (* a v1 file (row-major UNIT) still loads, to the identical state *)
      let p1 = Filename.concat dir "ckpt-0000000041.sglc" in
      let oc = open_out_bin p1 in
      output_string oc (encode_v1 ~schema { st with Checkpoint.tick = 41 });
      close_out oc;
      let got1 = Checkpoint.load ~schema p1 in
      Alcotest.(check bool) "v1 units load identically" true
        (rows_strict_eq units got1.Checkpoint.units);
      Alcotest.(check int) "v1 tick" 41 got1.Checkpoint.tick;
      Alcotest.(check (list string)) "v1 quarantine" [ "healer" ] got1.Checkpoint.quarantined)

let suite =
  [
    ( "colstore",
      [
        qtest law_roundtrip;
        qtest law_get;
        qtest law_float_reader;
        qtest law_refresh;
        Alcotest.test_case "refresh shares clean columns" `Quick test_refresh_shares_clean_columns;
        Alcotest.test_case "relation map/filter preserve extensions" `Quick
          test_relation_preserves_extensions;
        Alcotest.test_case "100k-unit population" `Quick test_100k_population;
        Alcotest.test_case "checkpoint v1 compatibility" `Quick test_checkpoint_v1_compat;
      ] );
  ]
