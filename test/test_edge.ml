(* Edge cases and failure injection across the stack: degenerate inputs,
   pathological geometry, strict bounds, full grids, zero-size worlds. *)

open Sgl_relalg
open Sgl_lang
open Sgl_qopt
open Sgl_util

let schema () = Test_lang.schema ()

(* ------------------------------------------------------------------ *)
(* Lexer / parser degenerates *)

let test_empty_sources () =
  Alcotest.(check int) "empty program" 0 (List.length (Parser.parse_string ""));
  Alcotest.(check int) "comments only" 0
    (List.length (Parser.parse_string "# nothing\n// here either\n"))

let test_int_overflow_literal () =
  Alcotest.(check bool) "overflow rejected cleanly" true
    (try
       ignore (Lexer.tokenize "script m(u) { let x = 99999999999999999999999; skip; }");
       false
     with Lexer.Lex_error _ -> true)

let test_deep_nesting () =
  let deep = String.concat "" (List.init 60 (fun _ -> "(")) in
  let close = String.concat "" (List.init 60 (fun _ -> ")")) in
  let t = Parser.parse_term_string (deep ^ "1" ^ close) in
  Alcotest.(check bool) "parses" true (t = Ast.T_int 1)

let test_keyword_key_as_attribute () =
  (* "key" is a keyword but must still work as an attribute and argmin
     result *)
  let src =
    "aggregate A(u) { argmin(e.health; e.key) where e.player <> u.player default -1 } script \
     m(u) { let k = A(u); if u.key = k then { skip; } }"
  in
  ignore (Compile.compile ~schema:(schema ()) src)

(* ------------------------------------------------------------------ *)
(* Pathological geometry: the equivalence must survive it *)

let stacked_units s n =
  (* every unit on the same cell, alternating players *)
  Array.init n (fun i ->
      Test_lang.mk_unit s ~key:i ~player:(i mod 2) ~x:5. ~y:5. ~health:(10 + i) ~range:4.
        ~morale:2 ~cooldown:0)

let test_identical_positions () =
  let s = schema () in
  let prog = Compile.compile ~schema:s Test_lang.figure3_source in
  let units = stacked_units s 30 in
  let prng = Prng.create 3 in
  let rand_for_key ~key i = Prng.script_random prng ~tick:0 ~key i in
  let rand_for u i = rand_for_key ~key:(Tuple.key s u) i in
  let reference =
    Test_qopt.normalize_effects s
      (Combine.combine
         (Interp.run_script ~prog
            ~script:(Option.get (Core_ir.find_script prog "main"))
            ~units ~rand_for))
  in
  let indexed =
    Test_qopt.normalize_effects s
      (let compiled = Exec.compile prog in
       let groups = [ { Exec.script = "main"; members = Array.init 30 (fun i -> i) } ] in
       Combine.Acc.to_relation
         (Exec.run_tick compiled
            ~evaluator:(Eval.indexed ~schema:s ~aggregates:prog.Core_ir.aggregates ())
            ~units ~groups ~rand_for:rand_for_key))
  in
  Alcotest.(check bool) "stacked units agree" true (Relation.equal_as_multiset reference indexed)

let strict_bounds_source =
  {|
aggregate StrictCount(u) {
  count(*)
  where e.player <> u.player
    and e.posx > u.posx - 5.0 and e.posx < u.posx + 5.0
    and e.posy > u.posy - 5.0 and e.posy < u.posy + 5.0
}
action Tag(u) { on self { damage <- 1; } }
script main(u) {
  let c = StrictCount(u);
  if c > 0 then { perform Tag(u); }
}
|}

let test_strict_bounds_equivalence () =
  (* strict bounds on the lattice hit the boundary constantly: the interval
     logic must match the scan exactly *)
  Test_qopt.check_equivalence ~src:strict_bounds_source ~script:"main" ~n:80 ~seed:21 ()

let unbounded_source =
  {|
aggregate AllEnemies(u) { count(*) where e.player <> u.player }
action Tag(u) { on self { damage <- 1; } }
script main(u) {
  let c = AllEnemies(u);
  if c > 0 then { perform Tag(u); }
}
|}

let test_no_box_equivalence () =
  (* zero box dimensions: the Div_total partition path *)
  Test_qopt.check_equivalence ~src:unbounded_source ~script:"main" ~n:50 ~seed:22 ()

let half_open_source =
  {|
# only a lower bound: a half-open slab, not a box
aggregate EastOfMe(u) { count(*) where e.posx >= u.posx and e.player <> u.player }
action Tag(u) { on self { damage <- 1; } }
script main(u) {
  let c = EastOfMe(u);
  if c > 3 then { perform Tag(u); }
}
|}

let test_half_open_equivalence () =
  Test_qopt.check_equivalence ~src:half_open_source ~script:"main" ~n:60 ~seed:23 ()

(* ------------------------------------------------------------------ *)
(* Engine degenerates *)

let test_zero_tick_simulation () =
  let scenario =
    Sgl_battle.Scenario.setup ~density:0.02 ~per_side:(Sgl_battle.Scenario.standard_mix 10) ()
  in
  let sim = Sgl_battle.Scenario.simulation ~evaluator:Sgl_engine.Simulation.Indexed scenario in
  Sgl_engine.Simulation.run sim ~ticks:0;
  Alcotest.(check int) "no ticks" 0 (Sgl_engine.Simulation.tick_count sim)

let test_single_unit_battle () =
  (* one knight alone: nothing to fight, nothing to crash *)
  let scenario =
    Sgl_battle.Scenario.setup ~density:0.01
      ~per_side:{ Sgl_battle.Scenario.knights = 1; archers = 0; healers = 0 }
      ()
  in
  let sim = Sgl_battle.Scenario.simulation ~evaluator:Sgl_engine.Simulation.Indexed scenario in
  Sgl_engine.Simulation.run sim ~ticks:10;
  Alcotest.(check int) "both survive" 2 (Array.length (Sgl_engine.Simulation.units sim))

let test_full_grid_resurrection () =
  (* a grid too small for free cells: resurrection must degrade gracefully *)
  let s = Sgl_battle.Unit_types.schema () in
  let units =
    Array.init 4 (fun i ->
        Sgl_battle.Unit_types.make_unit s ~key:i ~player:(i mod 2) ~klass:Sgl_battle.D20.Knight
          ~x:(i mod 2) ~y:(i / 2))
  in
  let prog = Sgl_battle.Scripts.compile () in
  let config =
    {
      Sgl_engine.Simulation.prog;
      script_of = (fun _ -> Some "knight");
      postprocess = Sgl_engine.Postprocess.battle_spec ~schema:s;
      movement =
        Some
          {
            Sgl_engine.Movement.posx = Schema.find s "posx";
            posy = Schema.find s "posy";
            mvx = Schema.find s "movevect_x";
            mvy = Schema.find s "movevect_y";
            speed = 2.;
            speed_attr = None;
            width = 2;
            height = 2;
          };
      death =
        Sgl_engine.Simulation.Resurrect
          { health = Schema.find s "health"; max_health = Schema.find s "max_health" };
      seed = 5;
      optimize = true;
    }
  in
  let sim = Sgl_engine.Simulation.create config ~evaluator:Sgl_engine.Simulation.Indexed ~units in
  Sgl_engine.Simulation.run sim ~ticks:30;
  Alcotest.(check int) "population constant on a full grid" 4
    (Array.length (Sgl_engine.Simulation.units sim))

let test_aggregate_error_reports_name () =
  (* empty selection without default: the error must name the aggregate *)
  let s = schema () in
  let src =
    "aggregate Lonely(u) { min(e.health) where e.player <> u.player } script main(u) { let m = \
     Lonely(u); if m > 0 then { skip; } }"
  in
  let prog = Compile.compile ~schema:s src in
  let units = [| Test_lang.mk_unit s ~key:0 ~player:0 ~x:0. ~y:0. ~health:10 ~range:1. ~morale:0 ~cooldown:0 |] in
  let run () =
    ignore
      (Interp.run_script ~prog
         ~script:(Option.get (Core_ir.find_script prog "main"))
         ~units ~rand_for:(fun _ _ -> 0))
  in
  let contains ~needle haystack =
    let nl = String.length needle and hl = String.length haystack in
    let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "names Lonely" true
    (try
       run ();
       false
     with Aggregate.Aggregate_error m -> contains ~needle:"Lonely" m)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "edge.sources",
      [
        tc "empty and comment-only" `Quick test_empty_sources;
        tc "integer overflow literal" `Quick test_int_overflow_literal;
        tc "deep nesting" `Quick test_deep_nesting;
        tc "'key' as attribute" `Quick test_keyword_key_as_attribute;
      ] );
    ( "edge.geometry",
      [
        tc "all units stacked on one cell" `Quick test_identical_positions;
        tc "strict bounds on the lattice" `Quick test_strict_bounds_equivalence;
        tc "no box dimensions" `Quick test_no_box_equivalence;
        tc "half-open slab" `Quick test_half_open_equivalence;
      ] );
    ( "edge.engine",
      [
        tc "zero ticks" `Quick test_zero_tick_simulation;
        tc "single unit per side" `Quick test_single_unit_battle;
        tc "resurrection on a full grid" `Quick test_full_grid_resurrection;
        tc "aggregate error names the aggregate" `Quick test_aggregate_error_reports_name;
      ] );
  ]
