(* Tests for the extended effect model: priority-based absolute "set"
   effects (Section 2.2's freeze-spell semantics, tag Pmax) and per-unit
   movement speed, end to end through SGL scripts. *)

open Sgl_relalg
open Sgl_util
open Sgl_engine
open Sgl_lang

let qtest = QCheck_alcotest.to_alcotest
let value_t = Alcotest.testable Value.pp Value.equal

let schema () =
  Schema.create
    [
      Schema.attr "key" Value.TInt;
      Schema.attr "player" Value.TInt;
      Schema.attr "posx" Value.TFloat;
      Schema.attr "posy" Value.TFloat;
      Schema.attr "speed" Value.TFloat;
      Schema.attr ~tag:Schema.Sum "movevect_x" Value.TFloat;
      Schema.attr ~tag:Schema.Sum "movevect_y" Value.TFloat;
      Schema.attr ~tag:Schema.Pmax "setspeed" Value.TVec;
    ]

let a s name = Schema.find s name

let unit_row s ~key ~player ~x ~y ~speed =
  Tuple.of_list s
    [
      Value.Int key; Value.Int player; Value.Float x; Value.Float y; Value.Float speed;
      Value.Float 0.; Value.Float 0.;
      Value.Vec (Vec2.make 0. 0.);
    ]

(* ------------------------------------------------------------------ *)
(* Combination semantics *)

let test_pmax_combination () =
  let s = schema () in
  let i = a s "setspeed" in
  let v p x = Value.Vec (Vec2.make p x) in
  (* highest priority wins regardless of arrival order *)
  let acc = Schema.combine_values s i (v 1. 0.) (v 3. 7.) in
  let acc = Schema.combine_values s i acc (v 2. 99.) in
  Alcotest.check value_t "priority 3 wins" (v 3. 7.) acc;
  (* equal priority: larger value, so combination stays order-independent *)
  let tie = Schema.combine_values s i (v 2. 5.) (v 2. 9.) in
  Alcotest.check value_t "tie -> larger value" (v 2. 9.) tie;
  let tie' = Schema.combine_values s i (v 2. 9.) (v 2. 5.) in
  Alcotest.check value_t "order independent" (v 2. 9.) tie'

let test_pmax_requires_vec () =
  Alcotest.(check bool) "float pmax rejected" true
    (try
       let s =
         Schema.create
           [ Schema.attr "key" Value.TInt; Schema.attr ~tag:Schema.Pmax "f" Value.TFloat ]
       in
       ignore (Schema.neutral_of s 1);
       false
     with Schema.Schema_error _ -> true)

(* The (+) laws survive the new tag. *)
let pmax_relation_gen s =
  QCheck.Gen.(
    map
      (fun rows ->
        Relation.of_tuples s
          (List.map
             (fun (k, p, v) ->
               let row = Tuple.create s in
               Tuple.set row 0 (Value.Int (abs k mod 4));
               Tuple.set row (Schema.find s "setspeed")
                 (Value.Vec (Vec2.make (float_of_int (p mod 5)) (float_of_int v)));
               row)
             rows))
      (list_size (int_range 0 20) (tup3 small_int small_int (int_range 0 50))))

let pmax_combine_laws =
  let s = schema () in
  QCheck.Test.make ~name:"pmax keeps (+) commutative and idempotent" ~count:200
    (QCheck.make QCheck.Gen.(pair (pmax_relation_gen s) (pmax_relation_gen s)))
    (fun (r1, r2) ->
      Relation.equal_as_multiset (Combine.union_combine r1 r2) (Combine.union_combine r2 r1)
      && Relation.equal_as_multiset
           (Combine.combine (Combine.combine r1))
           (Combine.combine r1))

(* ------------------------------------------------------------------ *)
(* End to end: a freeze spell through SGL *)

let freeze_source =
  {|
action Freeze(u) {
  on all(e.player <> u.player
         and e.posx >= u.posx - 4.0 and e.posx <= u.posx + 4.0
         and e.posy >= u.posy - 4.0 and e.posy <= u.posy + 4.0) {
    setspeed <- (1.0, 0.0);   # priority 1: speed becomes 0
  }
}
action March(u) {
  on self { movevect_x <- 3; }
}
script mage(u) { perform Freeze(u); perform March(u); }
script grunt(u) { perform March(u); }
|}

let test_freeze_stops_movement () =
  let s = schema () in
  let prog = Compile.compile ~schema:s freeze_source in
  let units =
    [|
      unit_row s ~key:0 ~player:0 ~x:10. ~y:10. ~speed:2.; (* mage *)
      unit_row s ~key:1 ~player:1 ~x:12. ~y:10. ~speed:2.; (* frozen grunt *)
      unit_row s ~key:2 ~player:1 ~x:30. ~y:10. ~speed:2.; (* far grunt, unaffected *)
    |]
  in
  (* post-processing applies the set-effect: speed := value when a priority
     > 0 effect arrived, else the unit's own speed.  Encoded arithmetically:
     hit = min(1, max(0, priority)); speed := speed*(1-hit) + value*hit. *)
  let speed = a s "speed" and setspeed = a s "setspeed" in
  let open Expr in
  let hit = MinOf (Const (Value.Float 1.), MaxOf (Const (Value.Float 0.), VecX (EAttr setspeed))) in
  let new_speed =
    Binop
      ( Add,
        Binop (Mul, UAttr speed, Binop (Sub, Const (Value.Float 1.), hit)),
        Binop (Mul, VecY (EAttr setspeed), hit) )
  in
  let post =
    Postprocess.make ~schema:s ~updates:[ (speed, new_speed) ]
      ~remove_when:(Const (Value.Bool false))
  in
  let config =
    {
      Simulation.prog;
      script_of =
        (fun u -> Some (if Value.to_int (Tuple.get u (a s "player")) = 0 then "mage" else "grunt"));
      postprocess = post;
      movement =
        Some
          {
            Movement.posx = a s "posx";
            posy = a s "posy";
            mvx = a s "movevect_x";
            mvy = a s "movevect_y";
            speed = 3.;
            speed_attr = Some speed;
            width = 64;
            height = 32;
          };
      death = Simulation.Remove;
      seed = 1;
      optimize = true;
    }
  in
  let check evaluator =
    let sim = Simulation.create config ~evaluator ~units in
    Simulation.step sim;
    let after = Simulation.units sim in
    let x k = Value.to_float (Tuple.get after.(k) (a s "posx")) in
    let spd k = Value.to_float (Tuple.get after.(k) (a s "speed")) in
    (* the frozen grunt's speed collapsed to 0 but it still moved this tick
       (the freeze applies at post-processing, after movement) *)
    Alcotest.(check (float 1e-9)) "grunt frozen" 0. (spd 1);
    Alcotest.(check (float 1e-9)) "far grunt keeps speed" 2. (spd 2);
    (* second tick: the frozen grunt cannot move, the far one can *)
    let x1_before = x 1 and x2_before = x 2 in
    Simulation.step sim;
    let after2 = Simulation.units sim in
    let x' k = Value.to_float (Tuple.get after2.(k) (a s "posx")) in
    Alcotest.(check (float 1e-9)) "frozen grunt stuck" x1_before (x' 1);
    Alcotest.(check bool) "mobile grunt moved" true (x' 2 > x2_before)
  in
  check Simulation.Naive;
  check Simulation.Indexed

(* naive and indexed agree on Pmax AoE contributions *)
let test_freeze_engines_agree () =
  let s = schema () in
  let prog = Compile.compile ~schema:s freeze_source in
  let units =
    Array.init 40 (fun i ->
        unit_row s ~key:i ~player:(i mod 2)
          ~x:(float_of_int (5 + (i * 2 mod 30)))
          ~y:(float_of_int (5 + (i * 3 mod 20)))
          ~speed:2.)
  in
  let run evaluator =
    let ev =
      match evaluator with
      | `N -> Sgl_qopt.Eval.naive ~schema:s ~aggregates:prog.Core_ir.aggregates
      | `I -> Sgl_qopt.Eval.indexed ~schema:s ~aggregates:prog.Core_ir.aggregates ()
    in
    let compiled = Sgl_qopt.Exec.compile prog in
    let groups =
      [
        { Sgl_qopt.Exec.script = "mage";
          members =
            Array.of_list (List.filter (fun i -> i mod 2 = 0) (List.init 40 (fun i -> i))) };
      ]
    in
    let acc =
      Sgl_qopt.Exec.run_tick compiled ~evaluator:ev ~units ~groups ~rand_for:(fun ~key:_ _ -> 0)
    in
    Combine.Acc.to_relation acc
  in
  Alcotest.(check bool) "identical contributions" true
    (Relation.equal_as_multiset (run `N) (run `I))

let test_typecheck_pmax_contribution () =
  let s = schema () in
  Alcotest.(check bool) "scalar contribution rejected" true
    (try
       ignore
         (Compile.compile ~schema:s
            "action F(u) { on self { setspeed <- 1; } } script m(u) { perform F(u); }");
       false
     with Compile.Compile_error (Compile.Type _) -> true)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "effects.pmax",
      [
        tc "priority combination" `Quick test_pmax_combination;
        tc "pmax must be vec" `Quick test_pmax_requires_vec;
        qtest pmax_combine_laws;
        tc "freeze spell end to end" `Quick test_freeze_stops_movement;
        tc "naive = indexed on pmax AoE" `Quick test_freeze_engines_agree;
        tc "typechecker guards contributions" `Quick test_typecheck_pmax_contribution;
      ] );
  ]
