(* Tests for the discrete simulation engine: post-processing, movement with
   collision detection, resurrection, and tick orchestration. *)

open Sgl_relalg
open Sgl_util
open Sgl_engine

let schema () = Sgl_battle.Unit_types.schema ()

let knight s ~key ~player ~x ~y =
  Sgl_battle.Unit_types.make_unit s ~key ~player ~klass:Sgl_battle.D20.Knight ~x ~y

let a s name = Schema.find s name
let no_rand ~key:_ (_ : int) = 0

(* ------------------------------------------------------------------ *)
(* Postprocess *)

let test_post_health_and_death () =
  let s = schema () in
  let spec = Postprocess.battle_spec ~schema:s in
  let u0 = knight s ~key:0 ~player:0 ~x:1 ~y:1 in
  let u1 = knight s ~key:1 ~player:1 ~x:5 ~y:5 in
  let acc = Combine.Acc.create s in
  (* unit 0 takes 15 damage and 4 healing; unit 1 takes lethal damage *)
  Combine.Acc.add_attr acc ~base:u0 ~key:0 (a s "damage") (Value.Float 15.);
  Combine.Acc.add_attr acc ~base:u0 ~key:0 (a s "inaura") (Value.Float 4.);
  Combine.Acc.add_attr acc ~base:u1 ~key:1 (a s "damage") (Value.Float 1000.);
  let results = Postprocess.apply spec ~schema:s ~rand_for:no_rand ~units:[| u0; u1 |] ~acc in
  (match results.(0) with
  | row, true ->
    Alcotest.(check (float 1e-9)) "healed and hurt" 49. (Value.to_float (Tuple.get row (a s "health")))
  | _, false -> Alcotest.fail "unit 0 should survive");
  match results.(1) with
  | _, false -> ()
  | _, true -> Alcotest.fail "unit 1 should die"

let test_post_health_clamped_to_max () =
  let s = schema () in
  let spec = Postprocess.battle_spec ~schema:s in
  let u0 = knight s ~key:0 ~player:0 ~x:1 ~y:1 in
  let acc = Combine.Acc.create s in
  Combine.Acc.add_attr acc ~base:u0 ~key:0 (a s "inaura") (Value.Float 50.);
  let results = Postprocess.apply spec ~schema:s ~rand_for:no_rand ~units:[| u0 |] ~acc in
  let row, _ = results.(0) in
  Alcotest.(check (float 1e-9)) "clamped" 60. (Value.to_float (Tuple.get row (a s "health")))

let test_post_cooldown () =
  let s = schema () in
  let spec = Postprocess.battle_spec ~schema:s in
  let u0 = knight s ~key:0 ~player:0 ~x:1 ~y:1 in
  Tuple.set u0 (a s "cooldown") (Value.Int 3);
  let acc = Combine.Acc.create s in
  let results = Postprocess.apply spec ~schema:s ~rand_for:no_rand ~units:[| u0 |] ~acc in
  let row, _ = results.(0) in
  Alcotest.(check int) "decremented" 2 (Value.to_int (Tuple.get row (a s "cooldown")));
  (* fire at cooldown 0: restart from the unit's reload *)
  Tuple.set u0 (a s "cooldown") (Value.Int 0);
  let acc = Combine.Acc.create s in
  Combine.Acc.add_attr acc ~base:u0 ~key:0 (a s "weaponused") (Value.Int 1);
  let results = Postprocess.apply spec ~schema:s ~rand_for:no_rand ~units:[| u0 |] ~acc in
  let row, _ = results.(0) in
  Alcotest.(check int) "reloaded" Sgl_battle.D20.knight.Sgl_battle.D20.reload
    (Value.to_int (Tuple.get row (a s "cooldown")))

let test_post_rejects_effect_attr () =
  let s = schema () in
  Alcotest.(check bool) "damage is not state" true
    (try
       ignore
         (Postprocess.make ~schema:s
            ~updates:[ (a s "damage", Expr.Const (Value.Float 0.)) ]
            ~remove_when:(Expr.Const (Value.Bool false)));
       false
     with Postprocess.Postprocess_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Movement *)

let movement_config s ~width ~height =
  {
    Movement.posx = a s "posx";
    posy = a s "posy";
    mvx = a s "movevect_x";
    mvy = a s "movevect_y";
    speed = 2.;
    speed_attr = None;
    width;
    height;
  }

let move_one s config ~units ~vectors =
  let acc = Combine.Acc.create s in
  List.iter
    (fun (key, vx, vy) ->
      let u = Array.get units key in
      Combine.Acc.add_attr acc ~base:u ~key (a s "movevect_x") (Value.Float vx);
      Combine.Acc.add_attr acc ~base:u ~key (a s "movevect_y") (Value.Float vy))
    vectors;
  let prng = Prng.create 1 in
  Movement.run config ~schema:s ~prng ~tick:0 ~units ~acc

let test_movement_moves_and_clamps () =
  let s = schema () in
  let config = movement_config s ~width:20 ~height:20 in
  let units = [| knight s ~key:0 ~player:0 ~x:5 ~y:5 |] in
  ignore (move_one s config ~units ~vectors:[ (0, 10., 0.) ]);
  (* vector length 10 clamped to speed 2 *)
  Alcotest.(check (float 1e-9)) "clamped x" 7.
    (Value.to_float (Tuple.get units.(0) (a s "posx")));
  Alcotest.(check (float 1e-9)) "y unchanged" 5.
    (Value.to_float (Tuple.get units.(0) (a s "posy")))

let test_movement_collision () =
  let s = schema () in
  let config = movement_config s ~width:20 ~height:20 in
  (* unit 1 sits exactly where unit 0 wants to go; x-only and half-step
     candidates collide too, so unit 0 ends up sliding or staying *)
  let units = [| knight s ~key:0 ~player:0 ~x:5 ~y:5; knight s ~key:1 ~player:0 ~x:7 ~y:5 |] in
  ignore (move_one s config ~units ~vectors:[ (0, 2., 0.) ]);
  let x0 = Value.to_float (Tuple.get units.(0) (a s "posx")) in
  let y0 = Value.to_float (Tuple.get units.(0) (a s "posy")) in
  Alcotest.(check bool) "did not stack" true (not (x0 = 7. && y0 = 5.));
  (* the half-step candidate (6, 5) is free: simple pathfinding takes it *)
  Alcotest.(check (float 1e-9)) "slid to half step" 6. x0

let test_movement_bounds () =
  let s = schema () in
  let config = movement_config s ~width:10 ~height:10 in
  let units = [| knight s ~key:0 ~player:0 ~x:9 ~y:9 |] in
  ignore (move_one s config ~units ~vectors:[ (0, 5., 5.) ]);
  let x = Value.to_float (Tuple.get units.(0) (a s "posx")) in
  let y = Value.to_float (Tuple.get units.(0) (a s "posy")) in
  Alcotest.(check bool) "stays in bounds" true (x < 10. && y < 10.)

let test_movement_zero_vector_stays () =
  let s = schema () in
  let config = movement_config s ~width:10 ~height:10 in
  let units = [| knight s ~key:0 ~player:0 ~x:4 ~y:4 |] in
  ignore (move_one s config ~units ~vectors:[]);
  Alcotest.(check (float 1e-9)) "no move" 4. (Value.to_float (Tuple.get units.(0) (a s "posx")))

let test_random_free_cell () =
  let s = schema () in
  let config = movement_config s ~width:4 ~height:1 in
  let units =
    [| knight s ~key:0 ~player:0 ~x:0 ~y:0; knight s ~key:1 ~player:0 ~x:1 ~y:0;
       knight s ~key:2 ~player:0 ~x:2 ~y:0 |]
  in
  let g = move_one s config ~units ~vectors:[] in
  let prng = Prng.create 3 in
  (match Movement.random_free_cell g prng ~tick:0 ~salt:0 with
  | Some (x, y) ->
    Alcotest.(check (pair int int)) "only free cell" (3, 0) (x, y)
  | None -> Alcotest.fail "expected a free cell")

(* ------------------------------------------------------------------ *)
(* Simulation orchestration *)

let test_simulation_resurrect_keeps_population () =
  let scenario =
    Sgl_battle.Scenario.setup ~density:0.02
      ~per_side:(Sgl_battle.Scenario.standard_mix 20) ()
  in
  let sim = Sgl_battle.Scenario.simulation ~evaluator:Simulation.Indexed scenario in
  let n0 = Array.length (Simulation.units sim) in
  Simulation.run sim ~ticks:30;
  Alcotest.(check int) "population constant" n0 (Array.length (Simulation.units sim));
  let r = Simulation.report sim in
  Alcotest.(check int) "ticks advanced" 30 r.Simulation.ticks;
  Alcotest.(check int) "resurrections = deaths" r.Simulation.deaths r.Simulation.resurrections;
  Alcotest.(check bool) "battle actually happened" true (r.Simulation.deaths > 0)

let test_simulation_no_position_stacking () =
  let scenario =
    Sgl_battle.Scenario.setup ~density:0.05
      ~per_side:(Sgl_battle.Scenario.standard_mix 25) ()
  in
  let sim = Sgl_battle.Scenario.simulation ~evaluator:Simulation.Indexed scenario in
  Simulation.run sim ~ticks:15;
  let s = Simulation.schema sim in
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun u ->
      let p = Sgl_battle.Unit_types.pos_of s u in
      if Hashtbl.mem seen p then Alcotest.failf "two units on cell (%g, %g)" (fst p) (snd p);
      Hashtbl.add seen p ())
    (Simulation.units sim)

let test_simulation_health_invariants () =
  let scenario =
    Sgl_battle.Scenario.setup ~density:0.03
      ~per_side:(Sgl_battle.Scenario.standard_mix 20) ()
  in
  let sim = Sgl_battle.Scenario.simulation ~evaluator:Simulation.Naive scenario in
  let s = Simulation.schema sim in
  for _ = 1 to 25 do
    Simulation.step sim;
    Array.iter
      (fun u ->
        let h = Value.to_float (Tuple.get u (a s "health")) in
        let m = Value.to_float (Tuple.get u (a s "max_health")) in
        Alcotest.(check bool) "alive units have positive health" true (h > 0.);
        Alcotest.(check bool) "health never exceeds max" true (h <= m);
        let cd = Value.to_int (Tuple.get u (a s "cooldown")) in
        Alcotest.(check bool) "cooldown non-negative" true (cd >= 0))
      (Simulation.units sim)
  done

let test_simulation_deterministic_same_seed () =
  let scenario =
    Sgl_battle.Scenario.setup ~density:0.02
      ~per_side:(Sgl_battle.Scenario.standard_mix 15) ()
  in
  let run () =
    let sim = Sgl_battle.Scenario.simulation ~seed:7 ~evaluator:Simulation.Indexed scenario in
    Simulation.run sim ~ticks:15;
    let units = Array.copy (Simulation.units sim) in
    Array.sort compare units;
    units
  in
  Alcotest.(check bool) "same seed, same battle" true (run () = run ())

let test_simulation_seed_changes_outcome () =
  let scenario =
    Sgl_battle.Scenario.setup ~density:0.02
      ~per_side:(Sgl_battle.Scenario.standard_mix 15) ()
  in
  let run seed =
    let sim = Sgl_battle.Scenario.simulation ~seed ~evaluator:Simulation.Indexed scenario in
    Simulation.run sim ~ticks:15;
    let units = Array.copy (Simulation.units sim) in
    Array.sort compare units;
    units
  in
  Alcotest.(check bool) "different seed, different battle" false (run 1 = run 2)

let base_suite =
  let tc = Alcotest.test_case in
  [
    ( "engine.postprocess",
      [
        tc "health and death" `Quick test_post_health_and_death;
        tc "health clamped to max" `Quick test_post_health_clamped_to_max;
        tc "cooldown and reload" `Quick test_post_cooldown;
        tc "rejects effect attrs" `Quick test_post_rejects_effect_attr;
      ] );
    ( "engine.movement",
      [
        tc "moves and clamps speed" `Quick test_movement_moves_and_clamps;
        tc "collision detection" `Quick test_movement_collision;
        tc "bounds" `Quick test_movement_bounds;
        tc "no vector, no move" `Quick test_movement_zero_vector_stays;
        tc "random free cell" `Quick test_random_free_cell;
      ] );
    ( "engine.simulation",
      [
        tc "resurrection keeps population" `Quick test_simulation_resurrect_keeps_population;
        tc "one unit per cell" `Quick test_simulation_no_position_stacking;
        tc "health and cooldown invariants" `Quick test_simulation_health_invariants;
        tc "deterministic under a seed" `Quick test_simulation_deterministic_same_seed;
        tc "seed changes the battle" `Quick test_simulation_seed_changes_outcome;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* Trace recording *)

let test_trace_records_csv () =
  let scenario =
    Sgl_battle.Scenario.setup ~density:0.02 ~per_side:(Sgl_battle.Scenario.standard_mix 10) ()
  in
  let sim = Sgl_battle.Scenario.simulation ~evaluator:Simulation.Indexed scenario in
  let path = Filename.temp_file "sgl_trace" ".csv" in
  let rows = Trace.run_traced ~path ~attrs:[ "key"; "posx"; "posy"; "health" ] sim ~ticks:4 in
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  let lines = List.rev !lines in
  (* 5 recorded states (initial + 4 ticks) x 20 units, plus the header *)
  Alcotest.(check int) "rows counted" rows (List.length lines - 1);
  Alcotest.(check int) "all states recorded" (5 * 20) rows;
  Alcotest.(check string) "header" "tick,key,posx,posy,health" (List.hd lines);
  (* every data row has 5 comma-separated fields *)
  List.iteri
    (fun i line ->
      if i > 0 then
        Alcotest.(check int)
          (Printf.sprintf "fields in row %d" i)
          5
          (List.length (String.split_on_char ',' line)))
    lines

let test_trace_unknown_attribute () =
  let s = schema () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Trace.create ~path:(Filename.temp_file "t" ".csv") ~schema:s ~attrs:[ "mana" ]);
       false
     with Trace.Trace_error _ -> true)

let trace_suite =
  [
    ( "engine.trace",
      [
        Alcotest.test_case "records CSV rows" `Quick test_trace_records_csv;
        Alcotest.test_case "unknown attribute rejected" `Quick test_trace_unknown_attribute;
      ] );
  ]

let suite = base_suite @ trace_suite
