(* Fault tolerance: the injection registry, transactional ticks, and the
   three fault policies.

   The differential contract under test mirrors test_parallel: because
   every PRNG draw is keyed by [~tick ~key] and parallel = indexed = naive
   bit-for-bit, a [Degrade] run that demotes mid-flight must land on
   exactly the states of a fault-free run of the weaker evaluator. *)

open Sgl_util
open Sgl_engine
open Sgl_battle

(* Every test that arms a point must disarm on any exit, or it poisons
   whichever test runs next. *)
let with_injection f = Fun.protect ~finally:Fault_inject.reset f

(* ------------------------------------------------------------------ *)
(* The injection registry *)

let inject_counting () =
  with_injection (fun () ->
      Fault_inject.reset ();
      (* unarmed points are inert *)
      Fault_inject.hit "eval.member";
      Alcotest.(check int) "unarmed: no calls recorded" 0 (Fault_inject.calls "eval.member");
      Fault_inject.arm ~point:"eval.member" (Fault_inject.At_count 3);
      Alcotest.(check (list string)) "armed list" [ "eval.member" ] (Fault_inject.armed_points ());
      Fault_inject.hit "eval.member";
      Fault_inject.hit "eval.member";
      let fired =
        try
          Fault_inject.hit "eval.member";
          false
        with Fault_inject.Injected { point; count } ->
          Alcotest.(check string) "point name" "eval.member" point;
          Alcotest.(check int) "fires on the 3rd call" 3 count;
          true
      in
      Alcotest.(check bool) "At_count fires" true fired;
      (* exactly once: the 4th call passes *)
      Fault_inject.hit "eval.member";
      Alcotest.(check int) "calls counted" 4 (Fault_inject.calls "eval.member");
      Alcotest.(check int) "fired once" 1 (Fault_inject.fired "eval.member");
      (* other points stay inert while one is armed *)
      Fault_inject.hit "exec.group";
      Fault_inject.reset ();
      Alcotest.(check (list string)) "reset disarms" [] (Fault_inject.armed_points ());
      Fault_inject.hit "eval.member";
      Alcotest.(check int) "reset forgets counters" 0 (Fault_inject.calls "eval.member"))

let inject_always () =
  with_injection (fun () ->
      Fault_inject.arm ~point:"pool.lane" Fault_inject.Always;
      for i = 1 to 5 do
        match Fault_inject.hit "pool.lane" with
        | () -> Alcotest.failf "call %d did not fire" i
        | exception Fault_inject.Injected { count; _ } ->
          Alcotest.(check int) "call number" i count
      done;
      Alcotest.(check int) "every call fires" 5 (Fault_inject.fired "pool.lane"))

let inject_prob_deterministic () =
  let pattern seed =
    with_injection (fun () ->
        Fault_inject.arm ~point:"post.apply" (Fault_inject.Prob { p = 0.3; seed });
        List.init 200 (fun _ ->
            match Fault_inject.hit "post.apply" with
            | () -> false
            | exception Fault_inject.Injected _ -> true))
  in
  let a = pattern 7 in
  Alcotest.(check (list bool)) "same seed, same firing calls" a (pattern 7);
  let fires l = List.length (List.filter Fun.id l) in
  Alcotest.(check bool) "p=0.3 fires sometimes, not always" true
    (fires a > 0 && fires a < 200);
  Alcotest.(check bool) "different seeds differ" true (a <> pattern 8)

let inject_parse () =
  let ok = Alcotest.(result (pair string (of_pp Fault_inject.pp_spec)) string) in
  let check_ok msg arg expected =
    match Fault_inject.parse_arg arg with
    | Ok (point, spec) ->
      Alcotest.check ok msg (Ok expected) (Ok (point, spec));
      Alcotest.(check bool) "specs equal" true (snd expected = spec);
      Alcotest.(check string) "points equal" (fst expected) point
    | Error e -> Alcotest.failf "%s: unexpected parse error %s" msg e
  in
  check_ok "always" "eval.member:always" ("eval.member", Fault_inject.Always);
  check_ok "count" "exec.group:count=3" ("exec.group", Fault_inject.At_count 3);
  check_ok "prob with seed" "pool.lane:p=0.25,seed=9"
    ("pool.lane", Fault_inject.Prob { p = 0.25; seed = 9 });
  let is_error = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "missing colon" true (is_error (Fault_inject.parse_arg "evalmember"));
  Alcotest.(check bool) "bad spec" true (is_error (Fault_inject.parse_arg "eval.member:sometimes"));
  Alcotest.(check bool) "bad count" true (is_error (Fault_inject.parse_arg "eval.member:count=x"));
  Alcotest.(check bool) "p out of range" true (is_error (Fault_inject.parse_arg "eval.member:p=1.5"))

let inject_unknown_point () =
  with_injection (fun () ->
      let rejected =
        try
          Fault_inject.arm ~point:"no.such.point" Fault_inject.Always;
          false
        with Invalid_argument _ -> true
      in
      Alcotest.(check bool) "arm rejects unknown points" true rejected)

(* ------------------------------------------------------------------ *)
(* The fault log *)

let log_bounded () =
  let log = Fault.Log.create ~capacity:3 () in
  let fault i =
    Fault.make ~tick:i ~phase:Fault.Post ~evaluator:"indexed" (Failure (Fmt.str "f%d" i))
      (Printexc.get_callstack 0)
  in
  for i = 1 to 10 do
    Fault.Log.push log (fault i)
  done;
  Alcotest.(check int) "total counts everything" 10 (Fault.Log.total log);
  Alcotest.(check int) "dropped past capacity" 7 (Fault.Log.dropped log);
  Alcotest.(check (list int)) "keeps the first faults verbatim" [ 1; 2; 3 ]
    (List.map (fun f -> f.Fault.tick) (Fault.Log.to_list log))

(* ------------------------------------------------------------------ *)
(* Satellite error paths *)

let trace_after_close () =
  let path = Filename.temp_file "sgl_trace" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let s = Unit_types.schema () in
      let t = Trace.create ~path ~schema:s ~attrs:[ "key"; "posx" ] in
      Trace.close t;
      Trace.close t (* idempotent *);
      let raised =
        try
          Trace.record t ~tick:1 [||];
          false
        with Trace.Trace_error _ -> true
      in
      Alcotest.(check bool) "record after close raises Trace_error" true raised)

let trace_unknown_attr () =
  let s = Unit_types.schema () in
  let contains ~sub s =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    n = 0 || go 0
  in
  let raised =
    try
      ignore (Trace.create ~path:"/tmp/never_created.csv" ~schema:s ~attrs:[ "key"; "charisma" ]);
      false
    with Trace.Trace_error msg ->
      Alcotest.(check bool) "message names the attribute" true (contains ~sub:"charisma" msg);
      true
  in
  Alcotest.(check bool) "unknown attribute raises Trace_error" true raised

let exec_unknown_script () =
  let open Sgl_qopt in
  let prog = Scripts.compile () in
  let compiled = Exec.compile prog in
  let schema = prog.Sgl_lang.Core_ir.schema in
  let units =
    [| Unit_types.make_unit schema ~key:0 ~player:0 ~klass:D20.Knight ~x:1 ~y:1 |]
  in
  let evaluator = Eval.indexed ~schema ~aggregates:prog.Sgl_lang.Core_ir.aggregates () in
  let contains ~sub s =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    n = 0 || go 0
  in
  let raised =
    try
      ignore
        (Exec.run_tick compiled ~evaluator ~units
           ~groups:[ { Exec.script = "necromancer"; members = [| 0 |] } ]
           ~rand_for:(fun ~key:_ _ -> 0));
      false
    with Exec.Exec_error msg ->
      Alcotest.(check bool) "message names the script" true (contains ~sub:"necromancer" msg);
      true
  in
  Alcotest.(check bool) "unknown script raises Exec_error" true raised

(* ------------------------------------------------------------------ *)
(* Policy behaviour on the battle scenario *)

let battle_sim ?fault_policy ~evaluator () =
  let scenario = Scenario.setup ~density:0.02 ~per_side:(Scenario.standard_mix 40) () in
  Scenario.simulation ~seed:11 ?fault_policy ~evaluator scenario

let sorted_units (sim : Simulation.t) =
  let s = Simulation.schema sim in
  let out = Array.map Sgl_relalg.Tuple.copy (Simulation.units sim) in
  Array.sort (fun a b -> compare (Sgl_relalg.Tuple.key s a) (Sgl_relalg.Tuple.key s b)) out;
  out

let check_states ~(msg : string) expected got =
  Alcotest.(check int) (msg ^ ": population") (Array.length expected) (Array.length got);
  Array.iteri
    (fun i e ->
      if compare e got.(i) <> 0 then
        Alcotest.failf "%s: unit %d diverged@.expected %s@.got      %s" msg i
          (Fmt.str "%a" Sgl_relalg.Tuple.pp e)
          (Fmt.str "%a" Sgl_relalg.Tuple.pp got.(i)))
    expected

(* Fail: the tick rolls back, the error carries context, and the
   simulation is still usable once the injection is disarmed. *)
let fail_policy_rolls_back () =
  with_injection (fun () ->
      let sim = battle_sim ~evaluator:Simulation.Indexed () in
      Simulation.step sim;
      Simulation.step sim;
      let before = sorted_units sim in
      Fault_inject.arm ~point:"post.apply" (Fault_inject.At_count 1);
      let fault =
        match Simulation.step sim with
        | () -> Alcotest.fail "step did not raise under the fail policy"
        | exception Fault.Error f -> f
      in
      Alcotest.(check int) "fault tick" 2 fault.Fault.tick;
      Alcotest.(check string) "fault phase" "post" (Fault.phase_name fault.Fault.phase);
      Alcotest.(check string) "fault evaluator" "indexed" fault.Fault.evaluator;
      Alcotest.(check int) "tick counter unchanged" 2 (Simulation.tick_count sim);
      check_states ~msg:"state rolled back" before (sorted_units sim);
      Alcotest.(check int) "fault logged" 1 (Simulation.fault_count sim);
      (* disarm and keep going: the failed tick reruns cleanly *)
      Fault_inject.reset ();
      Simulation.step sim;
      Alcotest.(check int) "recovers after disarm" 3 (Simulation.tick_count sim))

(* Quarantine: a script group that faults is excluded and the run
   completes every requested tick. *)
let quarantine_completes () =
  with_injection (fun () ->
      let sim = battle_sim ~fault_policy:Simulation.Quarantine_script ~evaluator:Simulation.Indexed () in
      Fault_inject.arm ~point:"exec.group" (Fault_inject.At_count 7);
      Simulation.run sim ~ticks:20;
      Alcotest.(check int) "all ticks ran" 20 (Simulation.tick_count sim);
      let quarantined = Simulation.quarantined_scripts sim in
      Alcotest.(check int) "one group quarantined" 1 (List.length quarantined);
      let known = [ "knight"; "knight_move"; "archer"; "archer_reposition"; "healer" ] in
      Alcotest.(check bool) "a real battle script" true (List.mem (List.hd quarantined) known);
      let r = Simulation.report sim in
      Alcotest.(check int) "reported" 1 r.Simulation.faults;
      Alcotest.(check (list string)) "report lists the group" quarantined r.Simulation.quarantined;
      match Simulation.faults sim with
      | [ f ] ->
        Alcotest.(check (option string)) "fault names the script" (Some (List.hd quarantined))
          f.Fault.script
      | fs -> Alcotest.failf "expected one logged fault, got %d" (List.length fs))

(* Quarantine under the parallel evaluator: group guards must compose
   with chunked evaluation. *)
let quarantine_parallel () =
  with_injection (fun () ->
      let sim =
        battle_sim ~fault_policy:Simulation.Quarantine_script
          ~evaluator:(Simulation.Parallel { domains = 3 })
          ()
      in
      Fault_inject.arm ~point:"exec.group" (Fault_inject.At_count 4);
      Simulation.run sim ~ticks:10;
      Alcotest.(check int) "all ticks ran" 10 (Simulation.tick_count sim);
      Alcotest.(check bool) "a group was quarantined" true
        (Simulation.quarantined_scripts sim <> []))

(* Degrade: a parallel run whose pool faults must land on exactly the
   states of a fault-free indexed run. *)
let degrade_parallel_to_indexed () =
  let clean =
    let sim = battle_sim ~evaluator:Simulation.Indexed () in
    Simulation.run sim ~ticks:30;
    sorted_units sim
  in
  with_injection (fun () ->
      Fault_inject.arm ~point:"pool.lane" Fault_inject.Always;
      let sim =
        battle_sim ~fault_policy:Simulation.Degrade
          ~evaluator:(Simulation.Parallel { domains = 2 })
          ()
      in
      Simulation.run sim ~ticks:30;
      Alcotest.(check int) "all ticks ran" 30 (Simulation.tick_count sim);
      Alcotest.(check string) "landed on indexed" "indexed"
        (Simulation.evaluator_name (Simulation.current_evaluator sim));
      Alcotest.(check int) "one retry" 1 (Simulation.retries sim);
      (match Simulation.degradations sim with
      | [ (tick, from_, to_) ] ->
        Alcotest.(check int) "demoted on the first tick" 0 tick;
        Alcotest.(check string) "from parallel" "parallel:2" from_;
        Alcotest.(check string) "to indexed" "indexed" to_
      | ds -> Alcotest.failf "expected one demotion, got %d" (List.length ds));
      check_states ~msg:"degraded parallel vs clean indexed" clean (sorted_units sim))

(* Degrade all the way down: a fault inside the indexed evaluator itself
   demotes to naive; states match a fault-free naive run. *)
let degrade_to_naive () =
  let clean =
    let sim = battle_sim ~evaluator:Simulation.Naive () in
    Simulation.run sim ~ticks:15;
    sorted_units sim
  in
  with_injection (fun () ->
      Fault_inject.arm ~point:"eval.member" Fault_inject.Always;
      let sim =
        battle_sim ~fault_policy:Simulation.Degrade
          ~evaluator:(Simulation.Parallel { domains = 2 })
          ()
      in
      Simulation.run sim ~ticks:15;
      Alcotest.(check int) "all ticks ran" 15 (Simulation.tick_count sim);
      Alcotest.(check string) "landed on naive" "naive"
        (Simulation.evaluator_name (Simulation.current_evaluator sim));
      Alcotest.(check int) "two retries" 2 (Simulation.retries sim);
      check_states ~msg:"degraded parallel vs clean naive" clean (sorted_units sim));
  (* the same chain entered one rung down: indexed -> naive mid-run *)
  with_injection (fun () ->
      Fault_inject.arm ~point:"index.build" (Fault_inject.At_count 30);
      let sim = battle_sim ~fault_policy:Simulation.Degrade ~evaluator:Simulation.Indexed () in
      Simulation.run sim ~ticks:15;
      Alcotest.(check int) "all ticks ran" 15 (Simulation.tick_count sim);
      Alcotest.(check string) "landed on naive" "naive"
        (Simulation.evaluator_name (Simulation.current_evaluator sim));
      Alcotest.(check bool) "demoted after tick 0" true
        (match Simulation.degradations sim with [ (t, _, _) ] -> t > 0 | _ -> false);
      check_states ~msg:"mid-run demotion vs clean naive" clean (sorted_units sim))

(* Quarantine decisions must not depend on the backend: [exec.group] is
   hit once per script group under both the interpreted and the fused
   tick, so the same call count quarantines the same script. *)
let quarantine_fused_differential () =
  let quarantined evaluator =
    with_injection (fun () ->
        Fault_inject.arm ~point:"exec.group" (Fault_inject.At_count 7);
        let sim = battle_sim ~fault_policy:Simulation.Quarantine_script ~evaluator () in
        Simulation.run sim ~ticks:20;
        Alcotest.(check int) "all ticks ran" 20 (Simulation.tick_count sim);
        Simulation.quarantined_scripts sim)
  in
  let indexed = quarantined Simulation.Indexed in
  let fused = quarantined Simulation.Fused in
  Alcotest.(check int) "one group quarantined under fused" 1 (List.length fused);
  Alcotest.(check (list string)) "same script quarantined" indexed fused

(* The fused-only injection point: a faulting kernel is reported under its
   script name and excluded like any other group failure — and the
   interpreted backend never reaches the point at all. *)
let quarantine_fused_kernel_point () =
  with_injection (fun () ->
      Fault_inject.arm ~point:"fused.kernel" (Fault_inject.At_count 7);
      let sim =
        battle_sim ~fault_policy:Simulation.Quarantine_script ~evaluator:Simulation.Fused ()
      in
      Simulation.run sim ~ticks:20;
      Alcotest.(check int) "all ticks ran" 20 (Simulation.tick_count sim);
      let quarantined = Simulation.quarantined_scripts sim in
      Alcotest.(check int) "one group quarantined" 1 (List.length quarantined);
      let known = [ "knight"; "knight_move"; "archer"; "archer_reposition"; "healer" ] in
      Alcotest.(check bool) "a real battle script" true (List.mem (List.hd quarantined) known);
      (match Simulation.faults sim with
      | [ f ] ->
        Alcotest.(check (option string)) "fault names the script" (Some (List.hd quarantined))
          f.Fault.script
      | fs -> Alcotest.failf "expected one logged fault, got %d" (List.length fs));
      let calls_before = Fault_inject.calls "fused.kernel" in
      let sim2 = battle_sim ~evaluator:Simulation.Indexed () in
      Simulation.run sim2 ~ticks:5;
      Alcotest.(check int) "indexed never hits fused.kernel" calls_before
        (Fault_inject.calls "fused.kernel"))

(* Degrade out of the fused backend: a kernel fault demotes fused ->
   indexed, and the retried run lands on exactly the states of a clean
   indexed run — the kernels share the evaluator, so nothing is lost. *)
let degrade_fused_to_indexed () =
  let clean =
    let sim = battle_sim ~evaluator:Simulation.Indexed () in
    Simulation.run sim ~ticks:30;
    sorted_units sim
  in
  with_injection (fun () ->
      Fault_inject.arm ~point:"fused.kernel" Fault_inject.Always;
      let sim = battle_sim ~fault_policy:Simulation.Degrade ~evaluator:Simulation.Fused () in
      Simulation.run sim ~ticks:30;
      Alcotest.(check int) "all ticks ran" 30 (Simulation.tick_count sim);
      Alcotest.(check string) "landed on indexed" "indexed"
        (Simulation.evaluator_name (Simulation.current_evaluator sim));
      Alcotest.(check int) "one retry" 1 (Simulation.retries sim);
      (match Simulation.degradations sim with
      | [ (tick, from_, to_) ] ->
        Alcotest.(check int) "demoted on the first tick" 0 tick;
        Alcotest.(check string) "from fused" "fused" from_;
        Alcotest.(check string) "to indexed" "indexed" to_
      | ds -> Alcotest.failf "expected one demotion, got %d" (List.length ds));
      check_states ~msg:"degraded fused vs clean indexed" clean (sorted_units sim))

(* Degrade exhausted: when even naive faults, step re-raises in context. *)
let degrade_exhausted () =
  with_injection (fun () ->
      Fault_inject.arm ~point:"exec.group" Fault_inject.Always;
      let sim = battle_sim ~fault_policy:Simulation.Degrade ~evaluator:Simulation.Indexed () in
      let raised =
        try
          Simulation.step sim;
          false
        with Fault.Error f ->
          Alcotest.(check string) "final evaluator was naive" "naive" f.Fault.evaluator;
          true
      in
      Alcotest.(check bool) "re-raises once the chain is exhausted" true raised;
      Alcotest.(check int) "nothing half-applied" 0 (Simulation.tick_count sim))

(* Guarded execution is bit-identical to unguarded when nothing fires:
   per-group accumulators merge through (+), which is exact here. *)
let quarantine_faultfree_identical () =
  let run policy =
    let sim = battle_sim ?fault_policy:policy ~evaluator:Simulation.Indexed () in
    Simulation.run sim ~ticks:25;
    sorted_units sim
  in
  let baseline = run None in
  check_states ~msg:"quarantine (fault-free) vs fail" baseline
    (run (Some Simulation.Quarantine_script));
  check_states ~msg:"degrade (fault-free) vs fail" baseline (run (Some Simulation.Degrade))

(* Domain_pool surfaces the first lane failure and counts the rest. *)
let pool_suppressed_count () =
  let pool = Domain_pool.create ~domains:4 in
  Fun.protect
    ~finally:(fun () -> Domain_pool.shutdown pool)
    (fun () ->
      let raised =
        try
          ignore
            (Domain_pool.parallel_map pool
               (fun x -> if x mod 2 = 0 then failwith (Fmt.str "lane%d" x) else x)
               (Array.init 8 (fun i -> i)));
          false
        with Failure _ -> true
      in
      Alcotest.(check bool) "first failure re-raised" true raised;
      Alcotest.(check bool) "other lane failures counted" true
        (Domain_pool.suppressed_failures pool >= 1);
      (* a clean map resets the count *)
      ignore (Domain_pool.parallel_map pool (fun x -> x) [| 1; 2 |]);
      Alcotest.(check int) "clean map clears suppressed" 0
        (Domain_pool.suppressed_failures pool))

let suite =
  [
    ( "fault.inject",
      [
        Alcotest.test_case "counting and At_count" `Quick inject_counting;
        Alcotest.test_case "Always fires every call" `Quick inject_always;
        Alcotest.test_case "Prob is deterministic per seed" `Quick inject_prob_deterministic;
        Alcotest.test_case "parse POINT:SPEC" `Quick inject_parse;
        Alcotest.test_case "arm rejects unknown points" `Quick inject_unknown_point;
      ] );
    ( "fault.log",
      [ Alcotest.test_case "bounded log keeps first, counts rest" `Quick log_bounded ] );
    ( "fault.errors",
      [
        Alcotest.test_case "Trace.record after close raises" `Quick trace_after_close;
        Alcotest.test_case "Trace.create rejects unknown attributes" `Quick trace_unknown_attr;
        Alcotest.test_case "Exec.run_tick names the unknown script" `Quick exec_unknown_script;
        Alcotest.test_case "Domain_pool counts suppressed lane failures" `Quick
          pool_suppressed_count;
      ] );
    ( "fault.policy",
      [
        Alcotest.test_case "fail: rollback, context, recovery" `Quick fail_policy_rolls_back;
        Alcotest.test_case "quarantine: excluded group, run completes" `Quick quarantine_completes;
        Alcotest.test_case "quarantine composes with parallel chunks" `Slow quarantine_parallel;
        Alcotest.test_case "quarantine: fused = indexed on the faulting script" `Slow
          quarantine_fused_differential;
        Alcotest.test_case "fused.kernel point quarantines in context" `Slow
          quarantine_fused_kernel_point;
        Alcotest.test_case "degrade: fused -> indexed, bit-identical" `Slow
          degrade_fused_to_indexed;
        Alcotest.test_case "degrade: parallel -> indexed, bit-identical" `Slow
          degrade_parallel_to_indexed;
        Alcotest.test_case "degrade: down to naive, bit-identical" `Slow degrade_to_naive;
        Alcotest.test_case "degrade: exhausted chain re-raises" `Quick degrade_exhausted;
        Alcotest.test_case "guards are bit-identical when nothing fires" `Slow
          quarantine_faultfree_identical;
      ] );
  ]
