(* The fused compiled backend: Lower/Compile unit tests against the
   interpreted executor, the four-way conformance differential, and qcheck
   fuzzing of randomized scripts through all four evaluators.

   The contract under test extends test_parallel's: [Simulation.Fused]
   produces *bit-identical* unit states to [Naive], [Indexed] and
   [Parallel] — the kernels mirror [Expr.eval] operation-for-operation,
   and the reordering introduced by operator fusion only permutes
   contributions to the commutative ⊕-accumulator.  The kernel-level tests
   pin each plan shape (naive scan, enumeration probe, range probe,
   extremal window, uniform) against the interpreted plan walker on a
   fixed 100-row store, including empty / single-row / duplicate-key
   stores mirroring test_index's edge cases. *)

open Sgl_relalg
open Sgl_lang
open Sgl_qopt
open Sgl_util

let schema () = Test_lang.schema ()

(* ------------------------------------------------------------------ *)
(* Kernel vs interpreter: one fixed store per plan shape *)

(* Run one script over [units] through the fused path: compile, lower,
   specialize, execute — the exact startup sequence [Simulation] uses. *)
let effects_fused ?(optimize = true) prog script_name units rand_for_key =
  let compiled = Exec.compile ~optimize prog in
  let fused = Exec.fuse compiled in
  let evaluator =
    Eval.indexed ~schema:prog.Core_ir.schema ~aggregates:prog.Core_ir.aggregates ()
  in
  let groups =
    [ { Exec.script = script_name; members = Array.init (Array.length units) (fun i -> i) } ]
  in
  Combine.Acc.to_relation
    (Exec.run_tick_fused compiled ~fused ~evaluator ~units ~groups ~rand_for:rand_for_key)

(* The per-row random stream is a pure function of (tick, key, draw), so
   the same closure drives both backends without coupling them. *)
let check_kernel_on ~(src : string) ~script (units : Tuple.t array) ~seed =
  let s = schema () in
  let prog = Compile.compile ~schema:s src in
  let prng = Prng.create (seed * 7919) in
  let rand_for_key ~key i = Prng.script_random prng ~tick:0 ~key i in
  let interpreted =
    let ev = Eval.indexed ~schema:s ~aggregates:prog.Core_ir.aggregates () in
    Test_qopt.normalize_effects s
      (Test_qopt.effects_exec ~optimize:true ~evaluator:ev prog script units rand_for_key)
  in
  let fused = Test_qopt.normalize_effects s (effects_fused prog script units rand_for_key) in
  if not (Relation.equal_as_multiset interpreted fused) then
    Alcotest.failf "fused kernel diverged from interpreted plan@.interp:@.%a@.fused:@.%a"
      Relation.pp interpreted Relation.pp fused

let check_kernel ?(src = Test_lang.figure3_source) ~script ~n ~seed () =
  check_kernel_on ~src ~script (Test_qopt.random_units (schema ()) ~n ~seed) ~seed

(* One test per plan shape, each on a 100-row store. *)
let kernel_figure3 () = check_kernel ~script:"main" ~n:100 ~seed:31 ()
let kernel_enum () = check_kernel ~src:Test_qopt.enum_source ~script:"main" ~n:100 ~seed:32 ()
let kernel_range_aoe () = check_kernel ~src:Test_qopt.aoe_source ~script:"main" ~n:100 ~seed:33 ()
let kernel_sweep () = check_kernel ~src:Test_qopt.sweep_source ~script:"main" ~n:100 ~seed:34 ()
let kernel_uniform () =
  check_kernel ~src:Test_qopt.uniform_source ~script:"main" ~n:100 ~seed:35 ()

let edge_sources =
  [
    Test_lang.figure3_source;
    Test_qopt.aoe_source;
    Test_qopt.sweep_source;
    Test_qopt.enum_source;
  ]

let kernel_empty () =
  List.iter (fun src -> check_kernel ~src ~script:"main" ~n:0 ~seed:41 ()) edge_sources

let kernel_single_row () =
  List.iter (fun src -> check_kernel ~src ~script:"main" ~n:1 ~seed:42 ()) edge_sources

(* Duplicate keys: key-targeted strikes and key-resulting aggregates must
   resolve them identically under both backends (both resolve through the
   tick's shared key table). *)
let kernel_duplicate_keys () =
  let s = schema () in
  let mk key player x health =
    Test_lang.mk_unit s ~key ~player ~x ~y:(x +. 1.) ~health ~range:4. ~morale:2 ~cooldown:0
  in
  let units =
    [| mk 3 0 5. 50; mk 3 1 6. 40; mk 3 0 7. 90; mk 7 1 5. 30; mk 7 0 9. 80; mk 9 1 8. 20 |]
  in
  List.iter (fun src -> check_kernel_on ~src ~script:"main" units ~seed:43) edge_sources

(* ------------------------------------------------------------------ *)
(* Lowering: fusion shape and guarded-clause structure *)

let self_clause s v =
  {
    Core_ir.target = Core_ir.Self;
    updates = [ (Schema.find s "damage", Expr.Const (Value.Int v)) ];
  }

let lower_fuses_straight_line () =
  let s = schema () in
  let plan =
    Plan.Bind
      ( 12,
        Plan.Bind_expr (Expr.Const (Value.Int 1)),
        Plan.Bind (13, Plan.Bind_expr (Expr.UAttr 12), Plan.Act [ self_clause s 1 ]) )
  in
  let st = Loop_ir.stats (Loop_ir.Lower.lower plan) in
  Alcotest.(check int) "two binds + emit fuse into one pass" 1 st.Loop_ir.passes;
  Alcotest.(check int) "three fused steps" 3 st.Loop_ir.fused_steps;
  Alcotest.(check int) "no batch boundaries" 0 (st.Loop_ir.agg_fills + st.Loop_ir.aoes)

let lower_fuses_both_arms () =
  let s = schema () in
  let both = Plan.Both [ Plan.Act [ self_clause s 1 ]; Plan.Act [ self_clause s 2 ] ] in
  let st = Loop_ir.stats (Loop_ir.Lower.lower both) in
  Alcotest.(check int) "pure-pass arms merge into one pass" 1 st.Loop_ir.passes;
  Alcotest.(check int) "both emissions kept" 2 st.Loop_ir.fused_steps

let lower_splits_area_clauses () =
  let s = schema () in
  let aoe =
    {
      Core_ir.target = Core_ir.All [ Expr.Cmp (Expr.Ne, Expr.EAttr 1, Expr.UAttr 1) ];
      updates = [ (Schema.find s "damage", Expr.Const (Value.Int 2)) ];
    }
  in
  let st = Loop_ir.stats (Loop_ir.Lower.lower (Plan.Act [ self_clause s 1; aoe; self_clause s 3 ])) in
  Alcotest.(check int) "area clause becomes a batch op" 1 st.Loop_ir.aoes;
  Alcotest.(check int) "self clauses fuse into one pass" 1 st.Loop_ir.passes;
  Alcotest.(check int) "both self emissions kept" 2 st.Loop_ir.fused_steps

(* The real figure-3 plan: the optimizer sinks the centroid and nearest
   binds under their branches, so lowering must keep all three aggregate
   batch boundaries with partitions between them. *)
let lower_figure3_shape () =
  let prog = Compile.compile ~schema:(schema ()) Test_lang.figure3_source in
  let compiled = Exec.compile prog in
  let plan = Option.get (Exec.find_plan compiled "main") in
  let st = Loop_ir.stats (Loop_ir.Lower.lower plan) in
  Alcotest.(check int) "every aggregate bind becomes a fill" 3 st.Loop_ir.agg_fills;
  Alcotest.(check bool) "the selection survives as a partition" true (st.Loop_ir.partitions >= 1)

let guarded_clause_polarity () =
  let s = schema () in
  let c = Expr.Cmp (Expr.Gt, Expr.UAttr 4, Expr.Const (Value.Int 0)) in
  let yes = self_clause s 1 and no = self_clause s 2 in
  let prog = Loop_ir.Lower.lower (Plan.Select (c, Plan.Act [ yes ], Plan.Act [ no ])) in
  match Loop_ir.guarded_clauses prog with
  | [ (g1, c1); (g2, c2) ] ->
    Alcotest.(check bool) "then arm under a positive guard" true (g1 = [ (true, c) ] && c1 = yes);
    Alcotest.(check bool) "else arm under a negated guard" true (g2 = [ (false, c) ] && c2 = no)
  | l -> Alcotest.failf "expected two guarded clauses, got %d" (List.length l)

(* V003 end-to-end: every optimized plan of every shape validates clean. *)
let lowering_validates () =
  let s = schema () in
  List.iter
    (fun src ->
      let prog = Compile.compile ~schema:s src in
      let compiled = Exec.compile prog in
      List.iter
        (fun (name, plan) ->
          match Sgl_analysis.Plan_check.validate_lowering ~script:name plan with
          | [] -> ()
          | ds ->
            Alcotest.failf "V003 fired on %s: %a" name
              Fmt.(list ~sep:cut (fun ppf d -> Sgl_analysis.Diagnostic.pp ppf d))
              ds)
        compiled.Exec.plans)
    (Test_qopt.uniform_source :: edge_sources)

(* ------------------------------------------------------------------ *)
(* Four-way conformance: naive = indexed = parallel = fused *)

let differential4 ~(ticks : int) ~(make_sim : Sgl_engine.Simulation.evaluator_kind -> Sgl_engine.Simulation.t) =
  let open Sgl_engine in
  let run evaluator =
    let sim = make_sim evaluator in
    Simulation.run sim ~ticks;
    Alcotest.(check int) "tick count" ticks (Simulation.tick_count sim);
    Test_parallel.sorted_units sim
  in
  let baseline = run Simulation.Naive in
  Test_parallel.check_states ~msg:"indexed vs naive" baseline (run Simulation.Indexed);
  Test_parallel.check_states ~msg:"parallel:3 vs naive" baseline
    (run (Simulation.Parallel { domains = 3 }));
  Test_parallel.check_states ~msg:"fused vs naive" baseline (run Simulation.Fused)

let formation_battle () =
  differential4 ~ticks:50 ~make_sim:(fun evaluator ->
      let scenario =
        Sgl_battle.Scenario.setup ~density:0.02 ~per_side:(Sgl_battle.Scenario.standard_mix 60) ()
      in
      Sgl_battle.Scenario.simulation ~seed:11 ~evaluator scenario)

let frost_mage () = differential4 ~ticks:50 ~make_sim:Test_parallel.frost_mage_sim

(* ------------------------------------------------------------------ *)
(* Fuzzing: randomized scripts through all four evaluators *)

(* Single-tick effects: the fused kernels against the naive and indexed
   plan walkers on the same generated program (test_fuzz's generators; its
   own property already pins interp = naive = indexed). *)
let fused_tick_equivalence =
  QCheck.Test.make ~name:"fuzz: naive = indexed = fused (one tick)" ~count:40
    (QCheck.pair Test_fuzz.arb_program (QCheck.int_range 0 1000))
    (fun (ast, seed) ->
      let s = schema () in
      let prog = Compile.compile_ast ~schema:s ast in
      let units = Test_qopt.random_units s ~n:35 ~seed:(seed + 1) in
      let prng = Prng.create (seed + 5000) in
      let rand_for_key ~key i = Prng.script_random prng ~tick:0 ~key i in
      let exec ev =
        Test_qopt.normalize_effects s
          (Test_qopt.effects_exec ~optimize:true ~evaluator:ev prog "main" units rand_for_key)
      in
      let naive = exec (Eval.naive ~schema:s ~aggregates:prog.Core_ir.aggregates) in
      let indexed = exec (Eval.indexed ~schema:s ~aggregates:prog.Core_ir.aggregates ()) in
      let fused =
        Test_qopt.normalize_effects s (effects_fused prog "main" units rand_for_key)
      in
      Relation.equal_as_multiset naive fused && Relation.equal_as_multiset indexed fused)

(* Full-simulation churn: random movement, deaths and key-targeted
   effects for 20 ticks under [Naive] and [Fused] from the same seed must
   leave identical unit states — the fused mirror of test_fuzz's
   parallel_sim_equivalence. *)
let fused_sim_equivalence =
  QCheck.Test.make ~name:"fuzz: 20-tick simulation, naive = fused" ~count:25
    (QCheck.pair Test_fuzz.arb_program (QCheck.int_range 0 1000))
    (fun (ast, seed) ->
      let s = schema () in
      let prog = Compile.compile_ast ~schema:s ast in
      let units = Test_qopt.random_units s ~n:30 ~seed:(seed + 1) in
      let config =
        {
          Sgl_engine.Simulation.prog;
          script_of = (fun _ -> Some "main");
          postprocess =
            Sgl_engine.Postprocess.make ~schema:s ~updates:[]
              ~remove_when:(Expr.Const (Value.Bool false));
          movement =
            Some
              {
                Sgl_engine.Movement.posx = Schema.find s "posx";
                posy = Schema.find s "posy";
                mvx = Schema.find s "movevect_x";
                mvy = Schema.find s "movevect_y";
                speed = 3.;
                speed_attr = None;
                width = 64;
                height = 64;
              };
          death = Sgl_engine.Simulation.Remove;
          seed = seed + 9000;
          optimize = true;
        }
      in
      let final evaluator =
        let sim = Sgl_engine.Simulation.create config ~evaluator ~units in
        Sgl_engine.Simulation.run sim ~ticks:20;
        let out = Array.map Tuple.copy (Sgl_engine.Simulation.units sim) in
        Array.sort (fun a b -> compare (Tuple.key s a) (Tuple.key s b)) out;
        out
      in
      let naive = final Sgl_engine.Simulation.Naive in
      let fused = final Sgl_engine.Simulation.Fused in
      compare naive fused = 0)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "fused.kernel",
      [
        tc "figure 3 (sunk aggregate) vs interpreter" `Quick kernel_figure3;
        tc "enumeration residual vs interpreter" `Quick kernel_enum;
        tc "range probe + AoE vs interpreter" `Quick kernel_range_aoe;
        tc "sweep-line argmin vs interpreter" `Quick kernel_sweep;
        tc "uniform stddev vs interpreter" `Quick kernel_uniform;
        tc "empty store" `Quick kernel_empty;
        tc "single row" `Quick kernel_single_row;
        tc "duplicate keys" `Quick kernel_duplicate_keys;
      ] );
    ( "fused.lower",
      [
        tc "straight-line binds fuse into one pass" `Quick lower_fuses_straight_line;
        tc "pure-pass Both arms merge" `Quick lower_fuses_both_arms;
        tc "area clauses split into batch ops" `Quick lower_splits_area_clauses;
        tc "figure 3: two fills around a partition" `Quick lower_figure3_shape;
        tc "guarded clauses carry branch polarity" `Quick guarded_clause_polarity;
        tc "V003 clean on every plan shape" `Quick lowering_validates;
      ] );
    ( "fused.differential",
      [
        tc "formation battle: naive = indexed = parallel = fused" `Slow formation_battle;
        tc "frost mage (Pmax): naive = indexed = parallel = fused" `Slow frost_mage;
      ] );
    ( "fused.fuzz",
      [
        QCheck_alcotest.to_alcotest fused_tick_equivalence;
        QCheck_alcotest.to_alcotest fused_sim_equivalence;
      ] );
  ]
